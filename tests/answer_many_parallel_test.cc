// The batched, parallel answering pipeline (ViewCache::AnswerMany): for
// every worker count the batch must be indistinguishable from a sequential
// Answer loop — identical answers, identical cache statistics — while the
// shared oracle ends up at least as warm. The randomized stress test doubles
// as the ThreadSanitizer target of the CI tsan job.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "views/view_cache.h"
#include "workload/generator.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

void ExpectSameAnswer(const CacheAnswer& actual, const CacheAnswer& expected,
                      size_t index) {
  EXPECT_EQ(actual.hit, expected.hit) << index;
  EXPECT_EQ(actual.view_name, expected.view_name) << index;
  EXPECT_EQ(actual.outputs, expected.outputs) << index;
  EXPECT_EQ(actual.rewriting.CanonicalEncoding(),
            expected.rewriting.CanonicalEncoding())
      << index;
}

/// Answers `queries` through `reference` one by one and through a batched
/// cache with `num_workers`, then asserts identical answers and statistics.
void CheckBatchAgainstLoop(const Tree& doc,
                           const std::vector<ViewDefinition>& views,
                           const std::vector<Pattern>& queries,
                           int num_workers) {
  ViewCache batched(doc);
  ViewCache sequential(doc);
  for (const ViewDefinition& view : views) {
    batched.AddView(view);
    sequential.AddView(view);
  }
  std::vector<CacheAnswer> answers = batched.AnswerMany(queries, num_workers);
  ASSERT_EQ(answers.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    CacheAnswer expected = sequential.Answer(queries[i]);
    ExpectSameAnswer(answers[i], expected, i);
    if (!queries[i].IsEmpty()) {
      // End-to-end identity: every answer equals direct evaluation.
      EXPECT_EQ(answers[i].outputs, Eval(queries[i], doc)) << i;
    }
  }
  EXPECT_EQ(batched.stats().queries, sequential.stats().queries);
  EXPECT_EQ(batched.stats().hits, sequential.stats().hits);
  EXPECT_EQ(batched.stats().rewrite_unknown,
            sequential.stats().rewrite_unknown);
}

TEST(AnswerManyParallelTest, MatchesSequentialLoopOnMixedWorkload) {
  Tree doc = Doc(
      "<a><b><c/><c><d/></c></b><b><c/><e/></b><x><b><c/></b><y/></x></a>");
  std::vector<ViewDefinition> views = {
      {"b-view", MustParseXPath("a/b")},
      {"x-view", MustParseXPath("a/x")},
      {"deep", MustParseXPath("a/b/c")},
  };
  std::vector<Pattern> queries = {
      MustParseXPath("a/b/c"),      // Hit.
      MustParseXPath("a/b/c"),      // Duplicate.
      MustParseXPath("a/x/y"),      // Hit on the second view.
      MustParseXPath("a//b/c"),     // Not answerable by prefix views.
      Pattern::Empty(),             // Empty query.
      MustParseXPath("a/b/c/d"),    // Deeper hit.
      MustParseXPath("q/r"),        // Root mismatch: all views pruned.
      MustParseXPath("a/b/c"),      // Another duplicate.
      MustParseXPath("a/b[e]/c"),   // Branch under the view.
  };
  for (int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE(workers);
    CheckBatchAgainstLoop(doc, views, queries, workers);
  }
}

TEST(AnswerManyParallelTest, OracleHitsNoWorseThanSequentialLoop) {
  // On a duplicate-free batch the warm-up precomputes the forward
  // containment tests, so the batched cache's oracle must end up at least
  // as hit-rich as a plain Answer loop's.
  Tree doc = Doc("<a><b><c/><d/></b><b><c><e/></c></b></a>");
  std::vector<ViewDefinition> views = {{"b-view", MustParseXPath("a/b")}};
  std::vector<Pattern> queries = {
      MustParseXPath("a/b/c"),   MustParseXPath("a/b/d"),
      MustParseXPath("a/b/c/e"), MustParseXPath("a/b//e"),
      MustParseXPath("a/b"),
  };
  ViewCache batched(doc);
  ViewCache sequential(doc);
  for (const ViewDefinition& view : views) {
    batched.AddView(view);
    sequential.AddView(view);
  }
  (void)batched.AnswerMany(queries, 4);  // discard: drives the shared oracle; only its counters are asserted
  for (const Pattern& query : queries) (void)sequential.Answer(query);  // discard: drives the shared oracle; only its counters are asserted
  EXPECT_GE(batched.oracle().hits(), sequential.oracle().hits());
}

TEST(AnswerManyParallelTest, RepeatedBatchesReadThroughSharedOracle) {
  // The second identical batch must answer its containment questions from
  // the absorbed shared oracle via the shards' read-through fallback: no
  // new misses.
  Tree doc = Doc("<a><b><c/></b><b><d/></b></a>");
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  std::vector<Pattern> queries = {MustParseXPath("a/b/c"),
                                  MustParseXPath("a/b/d"),
                                  MustParseXPath("a/b")};
  std::vector<CacheAnswer> first = cache.AnswerMany(queries, 3);
  const uint64_t misses_after_first = cache.oracle().misses();
  std::vector<CacheAnswer> second = cache.AnswerMany(queries, 3);
  EXPECT_EQ(cache.oracle().misses(), misses_after_first);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameAnswer(second[i], first[i], i);
  }
}

TEST(AnswerManyParallelTest, RandomizedStress) {
  // Randomized workloads from the generator, answered in repeated batches
  // with 4 workers against a long-lived cache and checked against a
  // sequential twin. Run under ThreadSanitizer by the CI tsan job.
  Rng rng(20260730);
  PatternGenOptions pattern_options;
  pattern_options.min_depth = 2;
  pattern_options.max_depth = 4;
  pattern_options.max_branches = 2;
  TreeGenOptions tree_options;
  tree_options.max_nodes = 300;

  for (int round = 0; round < 3; ++round) {
    // A document seeded with matches of a few base patterns.
    std::vector<Pattern> base;
    for (int i = 0; i < 4; ++i) {
      base.push_back(RandomPattern(rng, pattern_options));
    }
    Tree doc = DocumentWithMatches(rng, base[0], tree_options, 3);

    ViewCache batched(doc);
    ViewCache sequential(doc);
    int added = 0;
    for (const Pattern& p : base) {
      int k = 0;
      Pattern view = PrefixView(rng, p, &k);
      if (SummarizeSelection(view).depth == 0) continue;  // Whole-doc view.
      std::string name = "v" + std::to_string(added++);
      batched.AddView({name, view});
      sequential.AddView({name, view});
    }

    for (int batch = 0; batch < 3; ++batch) {
      std::vector<Pattern> queries;
      for (int i = 0; i < 24; ++i) {
        const uint64_t pick = rng.Next() % 4;
        if (pick == 0) {
          queries.push_back(RandomPattern(rng, pattern_options));
        } else {
          // Repeats of the base patterns make the batch duplicate-heavy.
          queries.push_back(base[static_cast<size_t>(rng.Next() % 4)]);
        }
      }
      std::vector<CacheAnswer> answers = batched.AnswerMany(queries, 4);
      ASSERT_EQ(answers.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        CacheAnswer expected = sequential.Answer(queries[i]);
        ExpectSameAnswer(answers[i], expected, i);
      }
      EXPECT_EQ(batched.stats().queries, sequential.stats().queries);
      EXPECT_EQ(batched.stats().hits, sequential.stats().hits);
    }
  }
}

TEST(ThreadPoolTest, RunsAllTasksAcrossWaitCycles) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&results, i] { results[static_cast<size_t>(i)] += i; });
    }
    pool.Wait();
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], 3 * i);
  }
}

}  // namespace
}  // namespace xpv
