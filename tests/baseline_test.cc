#include "rewrite/baseline.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"

namespace xpv {
namespace {

TEST(HomEquivalentTest, AgreesOnSubFragmentPairs) {
  // Within XP^{//,[]} homomorphism equivalence is genuine equivalence.
  EXPECT_TRUE(HomEquivalent(MustParseXPath("a[b][b]/c"),
                            MustParseXPath("a[b]/c")));
  EXPECT_FALSE(HomEquivalent(MustParseXPath("a/b"), MustParseXPath("a//b")));
}

TEST(HomEquivalentTest, IncompleteOutsideFragments) {
  // a/*//b ≡ a//*/b but no homomorphism exists either way.
  Pattern p1 = MustParseXPath("a/*//b");
  Pattern p2 = MustParseXPath("a//*/b");
  ASSERT_TRUE(Equivalent(p1, p2));
  EXPECT_FALSE(HomEquivalent(p1, p2));
}

TEST(BaselineTest, NoWildcardFragmentFound) {
  BaselineResult r = HomomorphismBaselineRewrite(
      MustParseXPath("a//b[x]/c"), MustParseXPath("a//b[x]"));
  ASSERT_TRUE(r.applicable);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(Equivalent(
      Compose(r.rewriting, MustParseXPath("a//b[x]")),
      MustParseXPath("a//b[x]/c")));
}

TEST(BaselineTest, NoWildcardFragmentNotExists) {
  BaselineResult r = HomomorphismBaselineRewrite(
      MustParseXPath("a//b/c"), MustParseXPath("a//b[z]"));
  ASSERT_TRUE(r.applicable);
  EXPECT_FALSE(r.found);
}

TEST(BaselineTest, NoDescendantFragment) {
  BaselineResult found = HomomorphismBaselineRewrite(
      MustParseXPath("a/*[b]/c"), MustParseXPath("a/*[b]"));
  ASSERT_TRUE(found.applicable);
  EXPECT_TRUE(found.found);

  BaselineResult missing = HomomorphismBaselineRewrite(
      MustParseXPath("a/*/c"), MustParseXPath("a/*[b]"));
  ASSERT_TRUE(missing.applicable);
  EXPECT_FALSE(missing.found);
}

TEST(BaselineTest, LinearFragmentIsOutOfScope) {
  // The linear fragment's PTIME containment is not homomorphism-based
  // (a/*//b ≡ a//*/b has no homomorphism), so the baseline must refuse:
  // here the true answer is Found (R = *//b) but homomorphism equivalence
  // would wrongly reject it.
  BaselineResult r = HomomorphismBaselineRewrite(MustParseXPath("a//*/b"),
                                                 MustParseXPath("a/*"));
  EXPECT_FALSE(r.applicable);
  // The full engine handles it.
  RewriteResult full =
      DecideRewrite(MustParseXPath("a//*/b"), MustParseXPath("a/*"));
  ASSERT_EQ(full.status, RewriteStatus::kFound);
  EXPECT_TRUE(Isomorphic(full.rewriting, MustParseXPath("*//b")));
}

TEST(BaselineTest, NotApplicableOutsideFragments) {
  BaselineResult r = HomomorphismBaselineRewrite(
      MustParseXPath("a[*]//b/c"), MustParseXPath("a[*]//b"));
  EXPECT_FALSE(r.applicable);
}

TEST(BaselineTest, NecessaryViolationHandled) {
  BaselineResult r = HomomorphismBaselineRewrite(MustParseXPath("a/b"),
                                                 MustParseXPath("a/b/c"));
  ASSERT_TRUE(r.applicable);
  EXPECT_FALSE(r.found);
}

TEST(BaselineTest, AgreesWithFullEngineOnSubFragments) {
  const char* instances[][2] = {
      {"a/b/c", "a/b"},        {"a//b//c", "a//b"},
      {"a//b/c", "a//b[z]"},   {"a/*[b]/c", "a/*[b]"},
      {"a//*/b", "a/*"},       {"a/b[x][y]/c", "a/b[x]"},
      {"a//*//*", "a//*"},     {"a/b", "a/b[x]"},
  };
  for (auto& inst : instances) {
    Pattern p = MustParseXPath(inst[0]);
    Pattern v = MustParseXPath(inst[1]);
    BaselineResult baseline = HomomorphismBaselineRewrite(p, v);
    if (!baseline.applicable) continue;
    RewriteResult full = DecideRewrite(p, v);
    ASSERT_NE(full.status, RewriteStatus::kUnknown)
        << inst[0] << " / " << inst[1];
    EXPECT_EQ(baseline.found, full.status == RewriteStatus::kFound)
        << inst[0] << " / " << inst[1];
  }
}

}  // namespace
}  // namespace xpv
