// Edge cases across modules, plus a parameterized known-truth containment
// table that pins down the decision procedures on hand-verified pairs.

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

// ---------------------------------------------------------------------------
// Known-truth containment table (hand-verified semantics).
// ---------------------------------------------------------------------------

struct ContainmentCase {
  const char* name;
  const char* p1;
  const char* p2;
  bool forward;   // p1 ⊑ p2.
  bool backward;  // p2 ⊑ p1.
};

class ContainmentTableTest
    : public ::testing::TestWithParam<ContainmentCase> {};

TEST_P(ContainmentTableTest, BothDirectionsMatchGroundTruth) {
  const ContainmentCase& c = GetParam();
  Pattern p1 = MustParseXPath(c.p1);
  Pattern p2 = MustParseXPath(c.p2);
  EXPECT_EQ(Contained(p1, p2), c.forward) << c.p1 << " vs " << c.p2;
  EXPECT_EQ(Contained(p2, p1), c.backward) << c.p2 << " vs " << c.p1;
}

INSTANTIATE_TEST_SUITE_P(
    KnownPairs, ContainmentTableTest,
    ::testing::Values(
        ContainmentCase{"child_vs_desc", "a/b", "a//b", true, false},
        ContainmentCase{"depth2_chains", "a/b/c", "a//c", true, false},
        ContainmentCase{"star_between", "a/b/c", "a/*/c", true, false},
        ContainmentCase{"classic_star_desc", "a/*//b", "a//*/b", true,
                        true},
        ContainmentCase{"depth_ge2_vs_ge3", "a/*/*//b", "a/*//b", true,
                        false},
        ContainmentCase{"branch_subsume", "a[b/c]", "a[b]", true, false},
        ContainmentCase{"branch_desc_subsume", "a[b/c]", "a[//c]", true,
                        false},
        ContainmentCase{"branch_independent", "a[b]", "a[c]", false,
                        false},
        ContainmentCase{"output_vs_branch", "a/b", "a[b]", false, false},
        ContainmentCase{"double_branch", "a[b][b]", "a[b]", true, true},
        ContainmentCase{"nested_vs_flat", "a[b[c]]", "a[b][//c]", true,
                        false},
        ContainmentCase{"desc_chain_merge", "a//b//c", "a//c", true,
                        false},
        ContainmentCase{"wildcard_output", "a/b", "a/*", true, false},
        ContainmentCase{"star_root_anchor", "a/b", "*/b", true, false},
        ContainmentCase{"incomparable_depths", "a/b", "a/b/c", false,
                        false},
        ContainmentCase{"desc_into_branchy", "a//b[c][d]", "a//b[c]",
                        true, false},
        ContainmentCase{"long_star_chain", "a/*/*/*/b", "a//b", true,
                        false},
        ContainmentCase{"desc_then_child", "a//b/c", "a//*/c", true,
                        false}),
    [](const ::testing::TestParamInfo<ContainmentCase>& tpi) {
      return tpi.param.name;
    });

// ---------------------------------------------------------------------------
// Serializer edges.
// ---------------------------------------------------------------------------

TEST(SerializerEdgeTest, SingleChildChainsInlineInPredicates) {
  Pattern p = MustParseXPath("a[b/c/d]/e");
  EXPECT_EQ(ToXPath(p), "a[b/c/d]/e");
}

TEST(SerializerEdgeTest, DescendantOnlyBranch) {
  Pattern p = MustParseXPath("a[//b]");
  EXPECT_EQ(ToXPath(p), "a[//b]");
}

TEST(SerializerEdgeTest, OutputAtRootWithBranches) {
  Pattern p = MustParseXPath("a[b][c//d]");
  Pattern round = MustParseXPath(ToXPath(p));
  EXPECT_TRUE(Isomorphic(p, round));
  EXPECT_EQ(round.output(), round.root());
}

TEST(SerializerEdgeTest, BranchForkSerializesAsNestedPredicates) {
  // A branch node with two children cannot inline; both nest.
  Pattern p(L("a"));
  NodeId b = p.AddChild(p.root(), L("b"), EdgeType::kChild);
  p.AddChild(b, L("x"), EdgeType::kChild);
  p.AddChild(b, L("y"), EdgeType::kDescendant);
  NodeId out = p.AddChild(p.root(), L("z"), EdgeType::kChild);
  p.set_output(out);
  Pattern round = MustParseXPath(ToXPath(p));
  EXPECT_TRUE(Isomorphic(p, round)) << ToXPath(p);
}

// ---------------------------------------------------------------------------
// Evaluator edges.
// ---------------------------------------------------------------------------

TEST(EvaluatorEdgeTest, PatternDeeperThanDocument) {
  auto doc = ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(Eval(MustParseXPath("a/b/c/d"), doc.value()).empty());
  EXPECT_TRUE(Eval(MustParseXPath("a//b//c"), doc.value()).empty());
}

TEST(EvaluatorEdgeTest, SingleNodeDocAndPattern) {
  auto doc = ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Eval(MustParseXPath("a"), doc.value()),
            (std::vector<NodeId>{0}));
  EXPECT_EQ(Eval(MustParseXPath("*"), doc.value()),
            (std::vector<NodeId>{0}));
  EXPECT_TRUE(Eval(MustParseXPath("b"), doc.value()).empty());
  EXPECT_TRUE(Eval(MustParseXPath("a[b]"), doc.value()).empty());
}

TEST(EvaluatorEdgeTest, WeakOutputsIncludeStrongOutputs) {
  auto doc = ParseXml("<a><b><a><b/></a></b></a>");
  ASSERT_TRUE(doc.ok());
  Pattern p = MustParseXPath("a/b");
  std::vector<NodeId> strong = Eval(p, doc.value());
  std::vector<NodeId> weak = EvalWeak(p, doc.value());
  EXPECT_TRUE(std::includes(weak.begin(), weak.end(), strong.begin(),
                            strong.end()));
  EXPECT_GT(weak.size(), strong.size());
}

TEST(EvaluatorEdgeTest, SelfOutputRootPattern) {
  // Output at the root: P(t) is {root} or empty.
  auto doc = ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Eval(MustParseXPath("a[b]"), doc.value()),
            (std::vector<NodeId>{0}));
  EXPECT_TRUE(Eval(MustParseXPath("a[c]"), doc.value()).empty());
}

// ---------------------------------------------------------------------------
// Extension / lifting boundary cases.
// ---------------------------------------------------------------------------

TEST(ExtensionEdgeTest, SingleNodePattern) {
  Pattern p = MustParseXPath("a");
  LabelId mu = Labels().Fresh("mu_edge");
  Pattern extended = Extend(p, mu);
  // Root is both a leaf and the output: only the mu child is added.
  EXPECT_EQ(extended.size(), 2);
  EXPECT_EQ(extended.label(1), mu);
  EXPECT_EQ(extended.output(), extended.root());
}

TEST(ExtensionEdgeTest, LiftToRoot) {
  Pattern p = MustParseXPath("a/b/c");
  Pattern lifted = LiftOutput(p, 0);
  EXPECT_EQ(lifted.output(), lifted.root());
  SelectionInfo info(lifted);
  EXPECT_EQ(info.depth(), 0);
  // The whole former spine is now a branch.
  EXPECT_EQ(lifted.size(), 3);
}

TEST(ExtensionEdgeTest, EngineHandlesLiftBoundaryJEqualsK) {
  // j = k: Thm 5.9's boundary. The transformed instance has k' = d'.
  Pattern p = MustParseXPath("a/b/c");
  Pattern v = MustParseXPath("a/b");
  LabelId mu = Labels().Fresh("mu_edge2");
  Pattern p_prime = LiftOutput(Extend(p, mu), 1);
  Pattern v_prime = Extend(v, LabelStore::kWildcard);
  RewriteResult result = DecideRewrite(p_prime, v_prime);
  // (P^{+µ})^{1→} using V^{+*}: both depth 1; a rewriting exists iff the
  // original admits one at that level; here it does.
  EXPECT_EQ(result.status, RewriteStatus::kFound);
}

// ---------------------------------------------------------------------------
// Composition edges.
// ---------------------------------------------------------------------------

TEST(CompositionEdgeTest, BothSingleNodes) {
  Pattern a = MustParseXPath("a");
  Pattern star = MustParseXPath("*");
  Pattern aa = Compose(a, a);
  EXPECT_EQ(aa.size(), 1);
  EXPECT_EQ(aa.label(0), L("a"));
  Pattern as = Compose(a, star);
  EXPECT_EQ(as.label(0), L("a"));
  Pattern sa = Compose(star, a);
  EXPECT_EQ(sa.label(0), L("a"));
  EXPECT_TRUE(Compose(a, MustParseXPath("b")).IsEmpty());
}

TEST(CompositionEdgeTest, OutputBranchesMergeWithRootBranches) {
  Pattern v = MustParseXPath("v/m[x][y]");
  Pattern r = MustParseXPath("m[z]");
  Pattern rv = Compose(r, v);
  EXPECT_TRUE(Isomorphic(rv, MustParseXPath("v/m[x][y][z]")));
  // Output is the merged node.
  EXPECT_EQ(rv.label(rv.output()), L("m"));
}

}  // namespace
}  // namespace xpv
