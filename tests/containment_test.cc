#include "containment/containment.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

bool C(const char* p1, const char* p2) {
  return Contained(MustParseXPath(p1), MustParseXPath(p2));
}

bool E(const char* p1, const char* p2) {
  return Equivalent(MustParseXPath(p1), MustParseXPath(p2));
}

TEST(ContainmentTest, Reflexive) {
  for (const char* expr : {"a", "a//b[c]/*", "*[*]//a"}) {
    EXPECT_TRUE(C(expr, expr)) << expr;
  }
}

TEST(ContainmentTest, ChildWithinDescendant) {
  EXPECT_TRUE(C("a/b", "a//b"));
  EXPECT_FALSE(C("a//b", "a/b"));
}

TEST(ContainmentTest, MoreBranchesAreMoreSpecific) {
  EXPECT_TRUE(C("a[b][c]", "a[b]"));
  EXPECT_FALSE(C("a[b]", "a[b][c]"));
}

TEST(ContainmentTest, SigmaWithinWildcard) {
  EXPECT_TRUE(C("a/b", "a/*"));
  EXPECT_FALSE(C("a/*", "a/b"));
}

TEST(ContainmentTest, OutputPositionMatters) {
  EXPECT_FALSE(C("a/b", "a[b]"));
  EXPECT_FALSE(C("a[b]", "a/b"));
}

TEST(ContainmentTest, ClassicStarDescendantEquivalence) {
  // The textbook case where containment holds with no homomorphism:
  // a/*//b ≡ a//*/b (both select b at depth >= 2 under an a root).
  EXPECT_TRUE(E("a/*//b", "a//*/b"));
}

TEST(ContainmentTest, StarChainVariants) {
  EXPECT_TRUE(E("a/*/*//b", "a//*/*/b"));
  EXPECT_TRUE(E("a/*//*/b", "a//*/*/b"));
  EXPECT_FALSE(E("a/*//b", "a//*/*/b"));  // Depth >= 2 vs depth >= 3.
  EXPECT_TRUE(C("a//*/*/b", "a/*//b"));
}

TEST(ContainmentTest, DescendantTransitivity) {
  EXPECT_TRUE(C("a/b//c", "a//c"));
  EXPECT_TRUE(C("a//b/c", "a//c"));
  EXPECT_TRUE(C("a//b//c", "a//c"));
  EXPECT_FALSE(C("a//c", "a//b//c"));
}

TEST(ContainmentTest, BranchWithPath) {
  EXPECT_TRUE(C("a[b/c]", "a[b]"));
  EXPECT_TRUE(C("a[b/c]", "a[//c]"));
  EXPECT_FALSE(C("a[b]", "a[b/c]"));
}

TEST(ContainmentTest, EmptyPattern) {
  Pattern a = MustParseXPath("a");
  EXPECT_TRUE(Contained(Pattern::Empty(), a));
  EXPECT_TRUE(Contained(Pattern::Empty(), Pattern::Empty()));
  EXPECT_FALSE(Contained(a, Pattern::Empty()));
}

TEST(ContainmentTest, WitnessIsGenuine) {
  Pattern p1 = MustParseXPath("a//b");
  Pattern p2 = MustParseXPath("a/b");
  ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
  ASSERT_FALSE(Contained(p1, p2, &witness));
  EXPECT_TRUE(ProducesOutput(p1, witness.tree, witness.output));
  EXPECT_FALSE(ProducesOutput(p2, witness.tree, witness.output));
}

TEST(ContainmentTest, WitnessForBranchMismatch) {
  Pattern p1 = MustParseXPath("a[b]/c");
  Pattern p2 = MustParseXPath("a[b[d]]/c");
  ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
  ASSERT_FALSE(Contained(p1, p2, &witness));
  EXPECT_TRUE(ProducesOutput(p1, witness.tree, witness.output));
  EXPECT_FALSE(ProducesOutput(p2, witness.tree, witness.output));
}

TEST(ContainmentTest, StatsReportHomomorphismHit) {
  ContainmentStats stats;
  EXPECT_TRUE(Contained(MustParseXPath("a/b"), MustParseXPath("a//b"),
                        nullptr, &stats));
  EXPECT_TRUE(stats.homomorphism_hit);
  EXPECT_EQ(stats.models_checked, 0u);
}

TEST(ContainmentTest, StatsReportModelEnumeration) {
  ContainmentStats stats;
  ContainmentOptions options;
  options.use_homomorphism_fast_path = false;
  EXPECT_TRUE(Contained(MustParseXPath("a/b"), MustParseXPath("a//b"),
                        nullptr, &stats, options));
  EXPECT_FALSE(stats.homomorphism_hit);
  EXPECT_GT(stats.models_checked, 0u);
}

TEST(ContainmentTest, HomFreePathAgreesWithFastPath) {
  ContainmentOptions no_hom;
  no_hom.use_homomorphism_fast_path = false;
  const char* pairs[][2] = {
      {"a/b", "a//b"},   {"a//b", "a/b"},     {"a[b][c]", "a[b]"},
      {"a/*//b", "a//*/b"}, {"a[b/c]", "a[//c]"}, {"a//c", "a//b//c"},
  };
  for (auto& pair : pairs) {
    Pattern p1 = MustParseXPath(pair[0]);
    Pattern p2 = MustParseXPath(pair[1]);
    EXPECT_EQ(Contained(p1, p2),
              Contained(p1, p2, nullptr, nullptr, no_hom))
        << pair[0] << " vs " << pair[1];
  }
}

TEST(WeakContainmentTest, ClassicUnstableExample) {
  // */b and *//b are weakly equivalent but not equivalent ([10]).
  Pattern p1 = MustParseXPath("*/b");
  Pattern p2 = MustParseXPath("*//b");
  EXPECT_TRUE(WeaklyEquivalent(p1, p2));
  EXPECT_FALSE(Equivalent(p1, p2));
}

TEST(WeakContainmentTest, EquivalenceImpliesWeakEquivalence) {
  Pattern p1 = MustParseXPath("a/*//b");
  Pattern p2 = MustParseXPath("a//*/b");
  ASSERT_TRUE(Equivalent(p1, p2));
  EXPECT_TRUE(WeaklyEquivalent(p1, p2));
}

TEST(WeakContainmentTest, LabeledRootsBlockWeakCollapse) {
  // a/b vs a//b: weak containment still fails (depth of output under the
  // a-anchor differs); actually weak: outputs of a/b = b with a-parent;
  // a//b = b with proper a-ancestor. The former is contained in the latter
  // weakly but not vice versa.
  EXPECT_TRUE(WeaklyContained(MustParseXPath("a/b"), MustParseXPath("a//b")));
  EXPECT_FALSE(WeaklyContained(MustParseXPath("a//b"),
                               MustParseXPath("a/b")));
}

TEST(WeakContainmentTest, WitnessIsGenuine) {
  Pattern p1 = MustParseXPath("*//b");
  Pattern p2 = MustParseXPath("*/*/b");
  ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
  ASSERT_FALSE(WeaklyContained(p1, p2, &witness));
  EXPECT_TRUE(WeaklyProducesOutput(p1, witness.tree, witness.output));
  EXPECT_FALSE(WeaklyProducesOutput(p2, witness.tree, witness.output));
}

TEST(WeakContainmentTest, SingleNodePatterns) {
  EXPECT_TRUE(WeaklyContained(MustParseXPath("a"), MustParseXPath("*")));
  EXPECT_FALSE(WeaklyContained(MustParseXPath("*"), MustParseXPath("a")));
}

TEST(ExpansionBoundTest, GrowsWithStarChains) {
  EXPECT_EQ(ExpansionBound(MustParseXPath("a/b")), 2);
  EXPECT_EQ(ExpansionBound(MustParseXPath("a/*/b")), 3);
  EXPECT_EQ(ExpansionBound(MustParseXPath("a/*/*/*/b")), 5);
}

}  // namespace
}  // namespace xpv
