#include "rewrite/candidates.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(CandidatesTest, SubPatternAndRelaxation) {
  Pattern p = MustParseXPath("a//*[b]/d[e]");
  NaturalCandidates c = MakeNaturalCandidates(p, 1);
  EXPECT_TRUE(Isomorphic(c.sub, MustParseXPath("*[b]/d[e]")));
  EXPECT_TRUE(Isomorphic(c.relaxed, MustParseXPath("*[//b]//d[e]")));
  EXPECT_FALSE(c.coincide);
}

TEST(CandidatesTest, CoincideWhenRootEdgesAreDescendant) {
  Pattern p = MustParseXPath("a/b[//x]//c");
  NaturalCandidates c = MakeNaturalCandidates(p, 1);
  EXPECT_TRUE(c.coincide);
  EXPECT_TRUE(Isomorphic(c.sub, c.relaxed));
}

TEST(CandidatesTest, DepthZeroViewGivesWholeQuery) {
  Pattern p = MustParseXPath("a[x]/b");
  NaturalCandidates c = MakeNaturalCandidates(p, 0);
  EXPECT_TRUE(Isomorphic(c.sub, p));
}

TEST(CandidatesTest, FullDepthGivesOutputSubtree) {
  Pattern p = MustParseXPath("a/b/c[z]");
  NaturalCandidates c = MakeNaturalCandidates(p, 2);
  EXPECT_TRUE(Isomorphic(c.sub, MustParseXPath("c[z]")));
  EXPECT_TRUE(c.coincide != (c.sub.size() > 1 &&
                             c.sub.edge(1) == EdgeType::kChild));
}

TEST(CandidatesTest, SubIsContainedInRelaxed) {
  // Q ⊑ Q_r// (noted in Section 4).
  for (const char* expr : {"a[x]/b/c", "a/*[b][c]//d", "*[p/q]/r"}) {
    Pattern p = MustParseXPath(expr);
    NaturalCandidates c = MakeNaturalCandidates(p, 0);
    EXPECT_TRUE(Contained(c.sub, c.relaxed)) << expr;
  }
}

TEST(CandidatesTest, SingleNodeCandidate) {
  Pattern p = MustParseXPath("a/b");
  NaturalCandidates c = MakeNaturalCandidates(p, 1);
  EXPECT_EQ(c.sub.size(), 1);
  EXPECT_TRUE(c.coincide);
}

}  // namespace
}  // namespace xpv
