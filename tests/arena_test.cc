// The bump-allocator contract the kernel scratch paths rely on: aligned
// allocations, block retention across Reset (a warm arena never calls
// the system allocator again), and geometric growth for oversized asks.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.h"

namespace xpv {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  int* a = arena.AllocateArray<int>(10);
  double* b = arena.AllocateArray<double>(3);
  char* c = arena.AllocateArray<char>(5);
  int64_t* d = arena.AllocateArray<int64_t>(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(int64_t), 0u);
  // Disjointness: writing each region fully must not corrupt the others.
  for (int i = 0; i < 10; ++i) a[i] = i;
  for (int i = 0; i < 3; ++i) b[i] = 0.5 * i;
  std::memset(c, 0x7F, 5);
  *d = -1;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a[i], i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], 0.5 * i);
  EXPECT_EQ(*d, -1);
}

TEST(ArenaTest, ResetRecyclesTheSameBlock) {
  Arena arena(1 << 12);
  void* first = arena.Allocate(100, 8);
  const size_t blocks = arena.BlockCount();
  const size_t capacity = arena.CapacityBytes();
  arena.Reset();
  void* again = arena.Allocate(100, 8);
  // Same storage, no new block: Reset rewinds, it does not free.
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.BlockCount(), blocks);
  EXPECT_EQ(arena.CapacityBytes(), capacity);
}

TEST(ArenaTest, WarmArenaStopsGrowing) {
  Arena arena(1 << 10);
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    for (int i = 0; i < 100; ++i) {
      arena.AllocateArray<uint64_t>(64);
    }
  }
  const size_t warm_blocks = arena.BlockCount();
  const size_t warm_capacity = arena.CapacityBytes();
  for (int round = 0; round < 20; ++round) {
    arena.Reset();
    for (int i = 0; i < 100; ++i) {
      arena.AllocateArray<uint64_t>(64);
    }
  }
  EXPECT_EQ(arena.BlockCount(), warm_blocks);
  EXPECT_EQ(arena.CapacityBytes(), warm_capacity);
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena(1 << 10);  // 1 KiB blocks.
  uint64_t* big = arena.AllocateArray<uint64_t>(1 << 12);  // 32 KiB ask.
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(1 << 12) - 1] = 2;
  EXPECT_GE(arena.CapacityBytes(), size_t{1} << 15);
  // The arena stays usable for small allocations afterwards.
  int* small = arena.AllocateArray<int>(4);
  ASSERT_NE(small, nullptr);
  small[0] = 7;
  EXPECT_EQ(big[0], 1u);
  EXPECT_EQ(big[(1 << 12) - 1], 2u);
}

TEST(ArenaTest, StrictAlignmentRequestsAreHonored) {
  Arena arena;
  arena.Allocate(1, 1);  // Knock the bump pointer off alignment.
  for (size_t align : {size_t{8}, size_t{16}, size_t{32}, size_t{64}}) {
    void* p = arena.Allocate(24, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
    arena.Allocate(3, 1);  // Re-skew before the next request.
  }
}

}  // namespace
}  // namespace xpv
