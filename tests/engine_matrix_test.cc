// Systematic Found/NotExists matrix: for every completeness condition the
// engine implements, one instance where the certified candidate succeeds
// and one where it fails (certifying nonexistence). NotExists verdicts on
// small instances are cross-checked against bounded brute force.

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/bruteforce.h"
#include "rewrite/engine.h"

namespace xpv {
namespace {

struct MatrixCase {
  const char* name;
  const char* query;
  const char* view;
  RewriteStatus expected;
};

class EngineMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrixTest, DecisionMatchesAndIsSound) {
  const MatrixCase& c = GetParam();
  Pattern p = MustParseXPath(c.query);
  Pattern v = MustParseXPath(c.view);
  RewriteResult result = DecideRewrite(p, v);
  ASSERT_EQ(result.status, c.expected)
      << c.name << ": " << result.explanation;

  if (result.status == RewriteStatus::kFound) {
    // Independent soundness check.
    EXPECT_TRUE(Equivalent(Compose(result.rewriting, v), p))
        << c.name << " R=" << ToXPath(result.rewriting);
  } else if (result.status == RewriteStatus::kNotExists && p.size() <= 6) {
    // Cross-check small NotExists instances with enumeration.
    BruteForceOptions options;
    options.max_nodes = 4;
    options.budget = 600;
    BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
    EXPECT_FALSE(outcome.found.has_value())
        << c.name << ": brute force found " << ToXPath(*outcome.found);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rules, EngineMatrixTest,
    ::testing::Values(
        // Prop 3.1 necessary conditions.
        MatrixCase{"depth_exceeded", "a/b", "a/b/c",
                   RewriteStatus::kNotExists},
        MatrixCase{"sigma_mismatch", "a/b/c", "a/x",
                   RewriteStatus::kNotExists},
        MatrixCase{"star_vs_sigma", "a/*/c/d", "a/b/c",
                   RewriteStatus::kNotExists},
        MatrixCase{"root_mismatch", "a/b", "x/b",
                   RewriteStatus::kNotExists},
        MatrixCase{"out_label_incompatible", "a/*/c", "a/b",
                   RewriteStatus::kNotExists},
        // k = d.
        MatrixCase{"equal_depth_found", "a/b[c]", "a/b",
                   RewriteStatus::kFound},
        MatrixCase{"equal_depth_not", "a/b", "a/b[x]",
                   RewriteStatus::kNotExists},
        // k = 0 (Prop 3.5).
        MatrixCase{"root_view_found", "a[b]/c", "a[b]",
                   RewriteStatus::kFound},
        MatrixCase{"root_view_not", "a/c", "a[x]",
                   RewriteStatus::kNotExists},
        // Thm 4.3 (stable P>=k).
        MatrixCase{"stable_found", "a//b[c]/d", "a//b",
                   RewriteStatus::kFound},
        MatrixCase{"stable_not", "a//b//d", "a//b[x]",
                   RewriteStatus::kNotExists},
        // Thm 4.4 (child-only query prefix).
        MatrixCase{"query_prefix_found", "a/b//c", "a/b",
                   RewriteStatus::kFound},
        MatrixCase{"query_prefix_not", "a/b//c", "a/b[x]",
                   RewriteStatus::kNotExists},
        // Thm 4.9 (descendant into out(V)).
        MatrixCase{"desc_out_found", "a//b/c", "a//b",
                   RewriteStatus::kFound},
        MatrixCase{"desc_out_not", "a//*/c//c", "a//*[z]",
                   RewriteStatus::kNotExists},
        // Thm 4.10 (child-only view path; relaxed candidate).
        MatrixCase{"view_path_found_relaxed", "a//*/b", "a/*",
                   RewriteStatus::kFound},
        MatrixCase{"view_path_not", "a//*/b", "a/*[z]",
                   RewriteStatus::kNotExists},
        // Thm 4.16 (corresponding last descendant).
        MatrixCase{"correspond_found", "a//*/*/c", "a//*/*",
                   RewriteStatus::kFound},
        MatrixCase{"correspond_not", "a//*/*/c", "a//*[z]/*",
                   RewriteStatus::kNotExists},
        // Cor 5.2 (stable reduction).
        MatrixCase{"stable_reduce_found", "a//b/*//*[x]/x", "a//b/*",
                   RewriteStatus::kFound},
        MatrixCase{"stable_reduce_not", "a//b/*//*[x]/x", "a//b/*[zz]",
                   RewriteStatus::kNotExists},
        // Cor 5.7 (suffix reduction). Both views below are structurally
        // unable to reproduce P's depth-1 [b] branch, and the suffix
        // machinery certifies it; the Found side uses the true prefix.
        MatrixCase{"suffix_prefix_found", "a//*[b]/*/*/b", "a//*[b]/*/*",
                   RewriteStatus::kFound},
        MatrixCase{"suffix_not_plain", "a//*[b]/*/*/b", "a/*//*/*",
                   RewriteStatus::kNotExists},
        MatrixCase{"suffix_not_branch", "a//*[b]/*/*/b", "a/*//*[q]/*",
                   RewriteStatus::kNotExists},
        // Thm 5.4 (GNF/*).
        MatrixCase{"gnf_found", "a//*//*//*", "a//*/*",
                   RewriteStatus::kFound},
        MatrixCase{"gnf_not", "a//*//*//*", "a//*[q]/*",
                   RewriteStatus::kNotExists},
        // Section 5.3 (extension + lifting).
        MatrixCase{"lift_not", "a//*/*/c//*[x]/x", "a//*[zz]/*",
                   RewriteStatus::kNotExists},
        // Open zone.
        MatrixCase{"unknown", "a//*[b//x]/*//*[b//x]/*",
                   "a//*[b//x]/*[w]", RewriteStatus::kUnknown}),
    [](const ::testing::TestParamInfo<MatrixCase>& tpi) {
      return tpi.param.name;
    });

}  // namespace
}  // namespace xpv
