// Deterministic fault-injection chaos suite (PR 7). Built two ways:
//
//   default build        — the injector is compiled OUT: this file asserts
//                          zero overhead (fault::kEnabled == false, no
//                          faults ever fire) and runs a slim smoke pass.
//   -DXPV_FAULT_INJECTION=on (CI chaos leg, + TSan) — >= 1000 seeded
//                          scenarios at 1/2/4 workers drive every Service
//                          entry point while the injector randomly throws
//                          at allocation-heavy sites. Invariants:
//                            * no crash, no deadlock, no raw exception
//                              escapes the facade — every failure is a
//                              structured ServiceError;
//                            * handles stay valid: a fault never corrupts
//                              the slot tables;
//                            * after Disarm() the same Service answers
//                              correctly (compared against a fault-free
//                              twin) — faults are absorbed, not sticky.
//
// Scenarios are pure functions of their seed (util/rng.h splitmix64), so
// any failure replays exactly from the seed printed in the assertion.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "api/service.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

bool IsStructured(const ServiceError& error) {
  switch (error.code) {
    case ServiceErrorCode::kParseError:
    case ServiceErrorCode::kUnknownDocument:
    case ServiceErrorCode::kDuplicateViewName:
    case ServiceErrorCode::kEmptyPattern:
    case ServiceErrorCode::kInvalidDelta:
    case ServiceErrorCode::kStaleHandle:
    case ServiceErrorCode::kDeadlineExceeded:
    case ServiceErrorCode::kCancelled:
    case ServiceErrorCode::kOverloaded:
    case ServiceErrorCode::kInternal:
      return true;
  }
  return false;
}

/// Every fault::Point site the library defines. The invariant linter
/// (tools/lint_invariants.py, rule R5) cross-checks this list against the
/// `fault::Point("...")` literals in src/ — adding a hook without chaos
/// coverage fails the lint gate.
constexpr const char* kKnownFaultSites[] = {
    "service.add_view",
    "service.memo_write",
    "service.update",
    "oracle.fill",
    "pool.task",
};

// ------------------------------------------------ default-build contract

TEST(FaultInjectionTest, HooksCompiledOutInDefaultBuild) {
  if (fault::kEnabled) {
    GTEST_SKIP() << "fault-injection build: hooks are compiled in";
  }
  // The default build must carry ZERO injector state: Arm() is an inline
  // no-op, Point() compiles to nothing, and no fault can ever fire.
  fault::Arm(/*seed=*/123, /*per_million=*/1000000);
  EXPECT_EQ(fault::InjectedCount(), 0u);
  Service service;
  auto doc = service.AddDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(service.AddView(doc.value(), "v", "a/b").ok());
  ServiceResult<Answer> answer = service.Answer(doc.value(), "a/b/c");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(fault::InjectedCount(), 0u);
  fault::Disarm();
}

// ------------------------------------------------------- chaos scenarios

/// One seeded chaos scenario: build a small corpus, hammer the facade with
/// the injector armed, then disarm and prove the Service recovered.
void RunChaosScenario(uint64_t seed, int workers) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " workers=" + std::to_string(workers));
  Rng rng(seed * 2654435761u + static_cast<uint64_t>(workers));
  PatternGenOptions pattern_gen;
  pattern_gen.max_depth = 4;
  pattern_gen.max_branches = 2;
  TreeGenOptions tree_gen;
  tree_gen.max_nodes = 60;

  ServiceOptions options;
  options.default_workers = workers;
  if (rng.Chance(0.3)) options.answer_cache_capacity = 8;
  if (rng.Chance(0.25)) options.memory_budget_bytes = 1u << rng.IntIn(10, 14);
  if (rng.Chance(0.2)) options.max_queued_tasks = 2;
  Service service(std::move(options));

  // Phase 1 (faults OFF): a stable corpus the recovery check can rely on.
  const int num_docs = rng.IntIn(1, 3);
  std::vector<DocumentId> docs;
  std::vector<Pattern> anchors;
  for (int d = 0; d < num_docs; ++d) {
    Pattern anchor = RandomPattern(rng, pattern_gen);
    docs.push_back(
        service.AddDocument(DocumentWithMatches(rng, anchor, tree_gen, 2)));
    anchors.push_back(std::move(anchor));
  }

  // Phase 2 (faults ON): drive every entry point; assert structure only.
  fault::Arm(seed, /*per_million=*/rng.Chance(0.5) ? 200000 : 30000);
  const int ops = rng.IntIn(8, 20);
  int minted_views = 0;
  for (int op = 0; op < ops; ++op) {
    const DocumentId doc = docs[rng.Below(docs.size())];
    switch (rng.Below(7)) {
      case 0: {  // AddView — may absorb an injected fault as kInternal.
        int k = 0;
        Pattern view = PrefixView(rng, anchors[rng.Below(anchors.size())], &k);
        if (view.IsEmpty()) break;
        auto added = service.AddView(
            doc, "chaos" + std::to_string(minted_views++), std::move(view));
        if (!added.ok()) { EXPECT_TRUE(IsStructured(added.error())); }
        break;
      }
      case 1: {  // Single answer.
        auto answer = service.Answer(doc, RandomPattern(rng, pattern_gen));
        if (!answer.ok()) { EXPECT_TRUE(IsStructured(answer.error())); }
        break;
      }
      case 2: {  // Batch answer, sometimes parallel, sometimes deadlined.
        std::vector<BatchItem> items;
        const int n = rng.IntIn(1, 6);
        for (int i = 0; i < n; ++i) {
          items.push_back(BatchItem{docs[rng.Below(docs.size())],
                                    Query(RandomPattern(rng, pattern_gen))});
        }
        CallOptions call;
        call.num_workers = workers;
        if (rng.Chance(0.3)) {
          call.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(rng.IntIn(0, 2));
        }
        auto batch = service.AnswerBatch(items, call);
        if (batch.ok()) {
          ASSERT_EQ(batch.value().answers.size(), items.size());
          for (const auto& item : batch.value().answers) {
            if (!item.ok()) { EXPECT_TRUE(IsStructured(item.error())); }
          }
        } else {
          EXPECT_TRUE(IsStructured(batch.error()));
        }
        break;
      }
      case 3: {  // Replace a document in place.
        auto replaced = service.ReplaceDocument(
            doc, RandomTree(rng, tree_gen));
        if (!replaced.ok()) { EXPECT_TRUE(IsStructured(replaced.error())); }
        break;
      }
      case 6: {  // In-place incremental update ("service.update" hook).
        const Tree* current = service.document(doc);
        if (current == nullptr) break;
        DeltaGenOptions delta_gen;
        delta_gen.max_ops = 3;
        auto updated = service.UpdateDocument(
            doc, RandomDelta(rng, *current, delta_gen));
        // The hook fires strictly BEFORE mutation, so a failed update left
        // the document exactly as it was — phase 3's fault-free twin
        // (built from the survivor tree) verifies consistency either way.
        if (!updated.ok()) { EXPECT_TRUE(IsStructured(updated.error())); }
        break;
      }
      case 4: {  // Stale-handle probe: a foreign handle must stay rejected.
        DocumentId bogus = doc;
        bogus.generation += 7;
        auto answer = service.Answer(bogus, "a/b");
        ASSERT_FALSE(answer.ok());
        EXPECT_EQ(answer.error().code, ServiceErrorCode::kStaleHandle);
        break;
      }
      default: {  // Telemetry under fire must never throw or tear.
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.documents, docs.size());
        break;
      }
    }
  }

  // Phase 3 (faults OFF): the Service must have absorbed everything —
  // handles valid, answers correct against a fault-free twin document.
  fault::Disarm();
  for (size_t d = 0; d < docs.size(); ++d) {
    ASSERT_NE(service.document(docs[d]), nullptr) << "handle died, doc " << d;
  }
  Rng verify_rng(seed ^ 0x5DEECE66DULL);
  Service twin;
  const Tree* survivor = service.document(docs[0]);
  DocumentId twin_doc = twin.AddDocument(*survivor);
  for (int q = 0; q < 4; ++q) {
    Pattern query = RandomPattern(verify_rng, pattern_gen);
    ServiceResult<Answer> got = service.Answer(docs[0], query);
    ServiceResult<Answer> want = twin.Answer(twin_doc, query);
    ASSERT_TRUE(got.ok()) << "post-recovery answer failed";
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got.value().outputs, want.value().outputs)
        << "post-recovery answer diverged from a fault-free twin";
  }
}

TEST(FaultInjectionTest, ChaosScenariosAreStructuredAndRecover) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "default build: injector compiled out (covered by "
                    "HooksCompiledOutInDefaultBuild)";
  }
  // >= 1000 scenarios across 1/2/4 workers. Seeds are dense integers so a
  // CI failure names the exact replay.
  const int kScenariosPerWorkerCount = 334;
  for (int workers : {1, 2, 4}) {
    for (int s = 0; s < kScenariosPerWorkerCount; ++s) {
      RunChaosScenario(static_cast<uint64_t>(s), workers);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The armed phases at 20% / 3% rates over ~1000 scenarios make a silent
  // no-op injector (wrong define plumbing) statistically impossible.
  EXPECT_GT(fault::InjectedCount(), 0u);
}

TEST(FaultInjectionTest, InjectedFaultSurfacesAsInternalError) {
  if (!fault::kEnabled) GTEST_SKIP() << "default build";
  // With the injector at 100%, the very first fault point a call crosses
  // throws — the facade must return kInternal, and after Disarm() the SAME
  // call must succeed (nothing sticky, nothing corrupted).
  Service service;
  auto doc = service.AddDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  fault::Arm(/*seed=*/42, /*per_million=*/1000000);
  auto view = service.AddView(doc.value(), "v", "a/b");
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ServiceErrorCode::kInternal);
  fault::Disarm();
  view = service.AddView(doc.value(), "v", "a/b");
  ASSERT_TRUE(view.ok()) << "fault left the view slot wedged";
  ServiceResult<Answer> answer = service.Answer(doc.value(), "a/b/c");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(service.stats().internal_errors, 1u);
}

TEST(FaultInjectionTest, KnownFaultSitesAreDistinct) {
  // Companion to lint rule R5: the registry above must stay duplicate-free
  // (each site appears once; the linter checks src/ literals against it).
  const size_t n = sizeof(kKnownFaultSites) / sizeof(kKnownFaultSites[0]);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_STRNE(kKnownFaultSites[i], kKnownFaultSites[j]);
    }
  }
}

TEST(FaultInjectionTest, UpdateFaultLeavesTheDocumentUntouched) {
  if (!fault::kEnabled) GTEST_SKIP() << "default build";
  // The "service.update" hook sits strictly before the first mutated byte:
  // at a 100% injection rate the update fails as kInternal with the
  // document, its views and its memoized answers untouched, and after
  // Disarm() the SAME delta applies and matches a fault-free twin.
  Service service;
  auto doc = service.AddDocument("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(service.AddView(doc.value(), "v", "a/b").ok());
  ServiceResult<Answer> before = service.Answer(doc.value(), "a/b");
  ASSERT_TRUE(before.ok());

  DocumentDelta delta;
  delta.InsertSubtree(0, []{
    Tree sub(L("b"));
    sub.AddChild(sub.root(), L("c"));
    return sub;
  }());
  delta.Relabel(2, L("z"));

  fault::Arm(/*seed=*/11, /*per_million=*/1000000);
  DocumentDelta failing = delta;  // DeltaOp holds a Tree: deep copy is fine.
  auto failed = service.UpdateDocument(doc.value(), std::move(failing));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ServiceErrorCode::kInternal);
  fault::Disarm();
  EXPECT_EQ(service.document(doc.value())->size(), 3);
  EXPECT_EQ(service.stats().updates_applied, 0u);

  ASSERT_TRUE(service.UpdateDocument(doc.value(), std::move(delta)).ok());
  Service twin;
  DocumentId twin_doc = twin.AddDocument(*service.document(doc.value()));
  ASSERT_TRUE(twin.AddView(twin_doc, "v", "a/b").ok());
  for (const char* q : {"a/b", "a/b/c", "a//c", "a/z"}) {
    ServiceResult<Answer> got = service.Answer(doc.value(), q);
    ServiceResult<Answer> want = twin.Answer(twin_doc, q);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got.value().outputs, want.value().outputs) << q;
  }
}

TEST(FaultInjectionTest, MemoWriteFaultStillServesTheAnswer) {
  if (!fault::kEnabled) GTEST_SKIP() << "default build";
  // A fault in the memo-write path ("service.memo_write") is absorbed
  // entirely: the computed answer is returned, only memoization is lost.
  Service service;
  auto doc = service.AddDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(service.AddView(doc.value(), "v", "a/b").ok());
  ServiceResult<Answer> expected = service.Answer(doc.value(), "a/b/c");
  ASSERT_TRUE(expected.ok());
  fault::Arm(/*seed=*/7, /*per_million=*/1000000);
  // A fresh query computes and tries to memoize; the publish fault must
  // not surface. (The oracle/view fill sites may fire first and yield
  // kInternal — also legal; the invariant is "structured or correct".)
  ServiceResult<Answer> under_fault = service.Answer(doc.value(), "a/b");
  if (under_fault.ok()) {
    EXPECT_EQ(under_fault.value().outputs,
              service.Answer(doc.value(), "a/b").value().outputs);
  } else {
    EXPECT_EQ(under_fault.error().code, ServiceErrorCode::kInternal);
  }
  fault::Disarm();
  ServiceResult<Answer> after = service.Answer(doc.value(), "a/b/c");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().outputs, expected.value().outputs);
}

}  // namespace
}  // namespace xpv
