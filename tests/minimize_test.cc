#include "containment/minimize.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(RemoveSubtreeTest, RemovesBranch) {
  Pattern p = MustParseXPath("a[b/c][d]/e");
  // Parse order: a=0, b=1, c=2, d=3, e=4. Remove b's subtree.
  Pattern without = RemoveSubtree(p, 1);
  EXPECT_TRUE(Isomorphic(without, MustParseXPath("a[d]/e")));
}

TEST(RemoveSubtreeTest, PreservesOutput) {
  Pattern p = MustParseXPath("a[b]/c[d]");
  Pattern without = RemoveSubtree(p, 1);
  EXPECT_EQ(without.label(without.output()), L("c"));
}

TEST(MinimizeTest, DuplicateBranchIsRedundant) {
  Pattern p = MustParseXPath("a[b][b]/c");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, MustParseXPath("a[b]/c")));
  EXPECT_TRUE(Equivalent(p, min));
}

TEST(MinimizeTest, SubsumedBranchIsRedundant) {
  // a[b][b/c]: the bare b branch is implied by b/c... it is redundant.
  Pattern p = MustParseXPath("a[b][b/c]/d");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, MustParseXPath("a[b/c]/d")));
}

TEST(MinimizeTest, DescendantBranchSubsumedByChildBranch) {
  // a[//b][b]: the descendant branch is implied by the child branch.
  Pattern p = MustParseXPath("a[//b][b]/c");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, MustParseXPath("a[b]/c")));
}

TEST(MinimizeTest, IndependentBranchesAreKept) {
  Pattern p = MustParseXPath("a[b][c]/d");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, p));
}

TEST(MinimizeTest, NeverTouchesSelectionPath) {
  Pattern p = MustParseXPath("a/b/c");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, p));
}

TEST(MinimizeTest, WildcardBranchSubsumedBySigmaBranch) {
  // a[*][b]: the wildcard branch is implied by [b].
  Pattern p = MustParseXPath("a[*][b]/c");
  Pattern min = RemoveRedundantBranches(p);
  EXPECT_TRUE(Isomorphic(min, MustParseXPath("a[b]/c")));
}

TEST(MinimizeTest, ResultIsAlwaysEquivalent) {
  for (const char* expr :
       {"a[b][b][b]/c", "a[*][b/c][b]/d", "a[//x][y/x]//z", "a[b[c]][b]/e"}) {
    Pattern p = MustParseXPath(expr);
    Pattern min = RemoveRedundantBranches(p);
    EXPECT_TRUE(Equivalent(p, min)) << expr;
    EXPECT_LE(min.size(), p.size()) << expr;
  }
}

}  // namespace
}  // namespace xpv
