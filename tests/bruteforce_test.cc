#include "rewrite/bruteforce.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(BruteForceTest, FindsSimpleRewriting) {
  Pattern p = MustParseXPath("a/b/c");
  Pattern v = MustParseXPath("a/b");
  BruteForceOutcome outcome = BruteForceRewrite(p, v);
  ASSERT_TRUE(outcome.found.has_value());
  EXPECT_TRUE(Equivalent(Compose(*outcome.found, v), p))
      << ToXPath(*outcome.found);
}

TEST(BruteForceTest, FindsRelaxedCandidateShape) {
  // The rewriting here must use a descendant edge: R = *//b.
  Pattern p = MustParseXPath("a//*/b");
  Pattern v = MustParseXPath("a/*");
  BruteForceOutcome outcome = BruteForceRewrite(p, v);
  ASSERT_TRUE(outcome.found.has_value());
  EXPECT_TRUE(Equivalent(Compose(*outcome.found, v), p))
      << ToXPath(*outcome.found);
}

TEST(BruteForceTest, ExhaustsWhenNoRewritingExists) {
  // V has a branch absent from P: no rewriting. With small bounds the
  // enumeration completes and reports exhaustion.
  Pattern p = MustParseXPath("a/b");
  Pattern v = MustParseXPath("a/b[x]");
  BruteForceOptions options;
  options.max_nodes = 3;
  BruteForceOutcome outcome = BruteForceRewrite(p, v);
  EXPECT_FALSE(outcome.found.has_value());
  EXPECT_TRUE(outcome.exhausted_max_nodes);
  EXPECT_GT(outcome.candidates_tested, 0u);
}

TEST(BruteForceTest, DepthMismatchShortCircuits) {
  Pattern p = MustParseXPath("a/b");
  Pattern v = MustParseXPath("a/b/c");
  BruteForceOutcome outcome = BruteForceRewrite(p, v);
  EXPECT_FALSE(outcome.found.has_value());
  EXPECT_EQ(outcome.candidates_tested, 0u);
}

TEST(BruteForceTest, BudgetIsRespected) {
  Pattern p = MustParseXPath("a//*[b]/c//d");
  Pattern v = MustParseXPath("a//*[b]");
  BruteForceOptions options;
  options.max_nodes = 5;
  options.budget = 25;
  BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
  EXPECT_LE(outcome.candidates_tested, 25u);
}

TEST(BruteForceTest, RespectsRootLabelCompatibility) {
  // out(V) = b forces the rewriting root to compose to the k-node label b;
  // candidates with other Σ roots are never generated, so the search stays
  // small and still finds R = b/c.
  Pattern p = MustParseXPath("a/b/c");
  Pattern v = MustParseXPath("a/b");
  BruteForceOptions options;
  options.max_nodes = 3;
  BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
  ASSERT_TRUE(outcome.found.has_value());
  LabelId root_label = outcome.found->label(outcome.found->root());
  EXPECT_TRUE(root_label == L("b") || root_label == LabelStore::kWildcard);
}

TEST(BruteForceTest, FindsBranchyRewriting) {
  Pattern p = MustParseXPath("a/b/c[x]");
  Pattern v = MustParseXPath("a/b");
  BruteForceOptions options;
  options.max_nodes = 4;
  BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
  ASSERT_TRUE(outcome.found.has_value());
  EXPECT_TRUE(Equivalent(Compose(*outcome.found, v), p))
      << ToXPath(*outcome.found);
}

}  // namespace
}  // namespace xpv
