#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

TEST(EvaluatorTest, SimpleChildMatch) {
  Tree t = Doc("<a><b/><c/></a>");
  EXPECT_EQ(Eval(MustParseXPath("a/b"), t), (std::vector<NodeId>{1}));
  EXPECT_EQ(Eval(MustParseXPath("a/c"), t), (std::vector<NodeId>{2}));
  EXPECT_TRUE(Eval(MustParseXPath("a/d"), t).empty());
}

TEST(EvaluatorTest, RootMustMatch) {
  Tree t = Doc("<a><b/></a>");
  EXPECT_TRUE(Eval(MustParseXPath("x/b"), t).empty());
  EXPECT_EQ(Eval(MustParseXPath("*/b"), t), (std::vector<NodeId>{1}));
}

TEST(EvaluatorTest, DescendantSelectsAllDepths) {
  Tree t = Doc("<a><b><b/></b><c><b/></c></a>");
  // Nodes: a=0, b=1, b=2, c=3, b=4.
  EXPECT_EQ(Eval(MustParseXPath("a//b"), t), (std::vector<NodeId>{1, 2, 4}));
  EXPECT_EQ(Eval(MustParseXPath("a/b"), t), (std::vector<NodeId>{1}));
}

TEST(EvaluatorTest, DescendantIsProper) {
  Tree t = Doc("<a/>");
  EXPECT_TRUE(Eval(MustParseXPath("a//a"), t).empty());
}

TEST(EvaluatorTest, WildcardMatchesAnyLabel) {
  Tree t = Doc("<a><b/><c/></a>");
  EXPECT_EQ(Eval(MustParseXPath("a/*"), t), (std::vector<NodeId>{1, 2}));
}

TEST(EvaluatorTest, BranchesFilterWithoutProducing) {
  Tree t = Doc("<a><b><x/></b><b/></a>");
  // Only the b with an x child qualifies.
  EXPECT_EQ(Eval(MustParseXPath("a/b[x]"), t), (std::vector<NodeId>{1}));
}

TEST(EvaluatorTest, BranchesAreIndependent) {
  // a/b[x][y]: both branches must hold at the same b, from different
  // children.
  Tree t1 = Doc("<a><b><x/><y/></b></a>");
  Tree t2 = Doc("<a><b><x/></b><b><y/></b></a>");
  EXPECT_EQ(Eval(MustParseXPath("a/b[x][y]"), t1).size(), 1u);
  EXPECT_TRUE(Eval(MustParseXPath("a/b[x][y]"), t2).empty());
}

TEST(EvaluatorTest, DeepBranchPredicate) {
  Tree t = Doc("<a><b><c><d/></c></b></a>");
  EXPECT_EQ(Eval(MustParseXPath("a[b/c/d]"), t), (std::vector<NodeId>{0}));
  EXPECT_EQ(Eval(MustParseXPath("a[//d]"), t), (std::vector<NodeId>{0}));
  EXPECT_TRUE(Eval(MustParseXPath("a[b/d]"), t).empty());
}

TEST(EvaluatorTest, ClassicStarDescendantEquivalence) {
  // a/*//b and a//*/b both select b nodes at depth >= 2 in a-rooted trees.
  Tree t = Doc("<a><x><b/><y><b/></y></x><b/></a>");
  // Nodes: a=0, x=1, b=2, y=3, b=4, b=5.
  std::vector<NodeId> expected = {2, 4};
  EXPECT_EQ(Eval(MustParseXPath("a/*//b"), t), expected);
  EXPECT_EQ(Eval(MustParseXPath("a//*/b"), t), expected);
}

TEST(EvaluatorTest, MultipleEmbeddingsOfSameOutput) {
  // Two different x-witnesses produce the same output node once.
  Tree t = Doc("<a><x><x><b/></x></x></a>");
  EXPECT_EQ(Eval(MustParseXPath("a//x//b"), t).size(), 1u);
}

TEST(EvaluatorTest, OutputsAnchoredAtSubtree) {
  Tree t = Doc("<r><a><b/></a><a><c/></a></r>");
  // Nodes: r=0, a=1, b=2, a=3, c=4.
  Pattern p = MustParseXPath("a/*");
  Evaluator ev(p, t);
  EXPECT_EQ(ev.OutputsAnchoredAt(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(ev.OutputsAnchoredAt(3), (std::vector<NodeId>{4}));
  EXPECT_TRUE(ev.OutputsAnchoredAt(0).empty());  // r is not labeled a.
}

TEST(EvaluatorTest, WeakOutputsIgnoreRootAnchor) {
  Tree t = Doc("<r><a><b/></a><x><a><b/></a></x></r>");
  // Nodes: r=0, a=1, b=2, x=3, a=4, b=5.
  Pattern p = MustParseXPath("a/b");
  EXPECT_TRUE(Eval(p, t).empty());
  EXPECT_EQ(EvalWeak(p, t), (std::vector<NodeId>{2, 5}));
}

TEST(EvaluatorTest, WeakVsStrongOnRootMatch) {
  Tree t = Doc("<a><a><b/></a></a>");
  // Strong: b at depth 2 via inner a; a/b needs b child of root -> none.
  EXPECT_TRUE(Eval(MustParseXPath("a/b"), t).empty());
  EXPECT_EQ(EvalWeak(MustParseXPath("a/b"), t), (std::vector<NodeId>{2}));
}

TEST(EvaluatorTest, EmptyPattern) {
  Tree t = Doc("<a/>");
  EXPECT_TRUE(Eval(Pattern::Empty(), t).empty());
  EXPECT_TRUE(EvalWeak(Pattern::Empty(), t).empty());
  EXPECT_FALSE(IsModel(Pattern::Empty(), t));
}

TEST(EvaluatorTest, ProducesOutputHelpers) {
  Tree t = Doc("<a><b/></a>");
  EXPECT_TRUE(ProducesOutput(MustParseXPath("a/b"), t, 1));
  EXPECT_FALSE(ProducesOutput(MustParseXPath("a/b"), t, 0));
  EXPECT_TRUE(WeaklyProducesOutput(MustParseXPath("b"), t, 1));
}

TEST(EvaluatorTest, CanEmbedAtMatrix) {
  Tree t = Doc("<a><b><c/></b></a>");
  Pattern p = MustParseXPath("b/c");
  Evaluator ev(p, t);
  EXPECT_TRUE(ev.CanEmbedAt(0, 1));   // b at the b node.
  EXPECT_FALSE(ev.CanEmbedAt(0, 0));  // b cannot sit at a.
  EXPECT_TRUE(ev.CanEmbedAt(1, 2));   // c at the c node.
}

TEST(EvaluatorTest, LargeFlatDocument) {
  std::string xml = "<a>";
  for (int i = 0; i < 500; ++i) xml += "<b><c/></b>";
  xml += "</a>";
  Tree t = Doc(xml.c_str());
  EXPECT_EQ(Eval(MustParseXPath("a/b/c"), t).size(), 500u);
  EXPECT_EQ(Eval(MustParseXPath("a//c"), t).size(), 500u);
}

}  // namespace
}  // namespace xpv
