#include "rewrite/nf.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "rewrite/gnf.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(NfTest, ChildOnlyPatternsAreInNf) {
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a/b[c]/d")));
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a")));
}

TEST(NfTest, DescendantIntoSigmaNodeIsFine) {
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a//b[c]/d")));
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a[//b]/c")));
}

TEST(NfTest, DescendantIntoLinearWildcardIsFine) {
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a//*/b")));
  EXPECT_TRUE(IsInNormalFormNfStar(MustParseXPath("a//*//*")));
}

TEST(NfTest, DescendantIntoBranchingWildcardViolates) {
  EXPECT_FALSE(IsInNormalFormNfStar(MustParseXPath("a//*[b]/c")));
  // Even when the branching wildcard is itself inside a branch (NF/*
  // constrains the whole query, not just the selection path).
  EXPECT_FALSE(IsInNormalFormNfStar(MustParseXPath("a[x//*[b]/c]/d")));
}

TEST(NfTest, NfImpliesGnfAlways) {
  // The containment the paper states: NF/* ⊆ GNF/*.
  Rng rng(31337);
  PatternGenOptions options;
  options.max_depth = 4;
  options.max_branches = 3;
  options.wildcard_prob = 0.4;
  options.descendant_prob = 0.4;
  for (int i = 0; i < 200; ++i) {
    Pattern p = RandomPattern(rng, options);
    if (IsInNormalFormNfStar(p)) {
      EXPECT_TRUE(IsInGeneralizedNormalForm(p));
    }
  }
}

TEST(NfTest, GnfIsStrictlyLarger) {
  // A descendant edge enters the branching wildcard *[e]/b whose fresh
  // branch label e makes it stable: in GNF/* (Prop 4.1 case 3) but not in
  // NF/*.
  Pattern p = MustParseXPath("a//*[e]/b");
  EXPECT_TRUE(IsInGeneralizedNormalForm(p));
  EXPECT_FALSE(IsInNormalFormNfStar(p));

  // Branch-node violations don't affect GNF/* (selection path only).
  Pattern q = MustParseXPath("a[x//*[b]/c]/d");
  EXPECT_TRUE(IsInGeneralizedNormalForm(q));
  EXPECT_FALSE(IsInNormalFormNfStar(q));
}

TEST(NfTest, EmptyPatternIsInNeither) {
  EXPECT_FALSE(IsInNormalFormNfStar(Pattern::Empty()));
  EXPECT_FALSE(IsInGeneralizedNormalForm(Pattern::Empty()));
}

}  // namespace
}  // namespace xpv
