// Overload-safe serving (PR 7): deadlines and cancellation, the O(items)
// already-expired fast path, partial-batch determinism, admission control
// (kOverloaded + retry-after hint), and the shared memory budget's
// degradation ladder. Everything here is tier-1 and sanitizer-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

using std::chrono::steady_clock;

Tree Doc(const std::string& xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << xml;
  return std::move(result).value();
}

steady_clock::time_point Past() {
  return steady_clock::now() - std::chrono::seconds(1);
}

/// A service with `docs` random documents, each carrying a few prefix
/// views (rewrites exist), plus the batch of random queries over them.
/// Seed-deterministic: two calls with the same seed build twins.
struct Workload {
  Service service;
  std::vector<BatchItem> items;
};

void BuildWorkload(uint64_t seed, int docs, int queries_per_doc,
                   Workload* out, ServiceOptions options = {}) {
  out->service = Service(std::move(options));
  Rng rng(seed);
  PatternGenOptions pattern_gen;
  pattern_gen.max_depth = 5;
  pattern_gen.max_branches = 2;
  TreeGenOptions tree_gen;
  tree_gen.max_nodes = 300;
  for (int d = 0; d < docs; ++d) {
    Pattern anchor = RandomPattern(rng, pattern_gen);
    DocumentId id = out->service.AddDocument(
        DocumentWithMatches(rng, anchor, tree_gen, 3));
    for (int v = 0; v < 3; ++v) {
      int k = 0;
      Pattern query = RandomPattern(rng, pattern_gen);
      Pattern view = PrefixView(rng, query, &k);
      if (view.IsEmpty()) continue;
      (void)out->service.AddView(id, "v" + std::to_string(v), view);
    }
    for (int q = 0; q < queries_per_doc; ++q) {
      out->items.push_back(BatchItem{id, Query(RandomPattern(rng, pattern_gen))});
    }
  }
}

// ------------------------------------------------------------ deadlines

TEST(DeadlineTest, ExpiredBatchFailsFastRegardlessOfSize) {
  // The fast path: an already-expired call must fail every item with a
  // structured error in O(items) — no parsing, no planning, no locks —
  // regardless of batch or document size.
  Workload w;
  BuildWorkload(/*seed=*/1, /*docs=*/4, /*queries_per_doc=*/4, &w);
  std::vector<BatchItem> big;
  for (int r = 0; r < 500; ++r) {
    big.push_back(w.items[static_cast<size_t>(r) % w.items.size()]);
  }
  const uint64_t queries_before = w.service.stats().queries;
  CallOptions call;
  call.deadline = Past();
  const auto start = steady_clock::now();
  ServiceResult<BatchAnswers> result = w.service.AnswerBatch(big, call);
  const auto elapsed = steady_clock::now() - start;
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().answers.size(), big.size());
  for (const auto& item : result.value().answers) {
    ASSERT_FALSE(item.ok());
    EXPECT_EQ(item.error().code, ServiceErrorCode::kDeadlineExceeded);
  }
  // No work was planned or executed: serving counters did not move. The
  // elapsed bound is generous for sanitizer builds; the structural
  // no-work assertions are the real check (native runs are ~microseconds).
  EXPECT_EQ(w.service.stats().queries, queries_before);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);
  EXPECT_EQ(w.service.stats().deadline_exceeded, big.size());
}

TEST(DeadlineTest, ExpiredSingleAnswerFailsFast) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  CallOptions call;
  call.deadline = Past();
  ServiceResult<Answer> result = service.Answer(doc, "a/b", call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ServiceErrorCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
  // Without a deadline the same call answers normally.
  ASSERT_TRUE(service.Answer(doc, "a/b").ok());
}

TEST(DeadlineTest, PreCancelledTokenReportsCancelledNotDeadline) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  CallOptions call;
  call.cancel = CancelToken::Cancellable();
  call.cancel.Cancel();
  ServiceResult<Answer> result = service.Answer(doc, "a/b", call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ServiceErrorCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().deadline_exceeded, 0u);
}

TEST(DeadlineTest, PartialResultsAreBitIdenticalToUnconstrainedRun) {
  // Twin workloads (same seed): one runs unconstrained, one under a tight
  // deadline. Whatever prefix the constrained run answered must be
  // bit-identical to the unconstrained twin — answers are pure functions
  // of (document, view set, query), so a deadline can only cut the batch
  // short, never change an answered item.
  Workload reference;
  BuildWorkload(/*seed=*/7, /*docs=*/6, /*queries_per_doc=*/8, &reference);
  ServiceResult<BatchAnswers> expected =
      reference.service.AnswerBatch(reference.items, 1);
  ASSERT_TRUE(expected.ok());

  Workload constrained;
  BuildWorkload(/*seed=*/7, /*docs=*/6, /*queries_per_doc=*/8, &constrained);
  CallOptions call;
  call.deadline = steady_clock::now() + std::chrono::milliseconds(2);
  ServiceResult<BatchAnswers> got =
      constrained.service.AnswerBatch(constrained.items, call);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().answers.size(), expected.value().answers.size());
  size_t answered = 0;
  for (size_t i = 0; i < got.value().answers.size(); ++i) {
    const auto& item = got.value().answers[i];
    if (item.ok()) {
      ++answered;
      ASSERT_TRUE(expected.value().answers[i].ok());
      EXPECT_EQ(item.value().outputs,
                expected.value().answers[i].value().outputs)
          << "item " << i << " diverged from the unconstrained run";
    } else {
      EXPECT_EQ(item.error().code, ServiceErrorCode::kDeadlineExceeded);
    }
  }
  // Both outcomes are legal per item (the machine may be fast or slow);
  // the invariant is the bit-identity above plus structured errors below.
  SCOPED_TRACE("answered " + std::to_string(answered) + "/" +
               std::to_string(got.value().answers.size()));
}

TEST(DeadlineTest, MidFlightCancelAbortsWithoutHanging) {
  // A cancel fired from another thread mid-batch must abort the call at
  // its next poll: the call RETURNS (never hangs), answered items stand,
  // unanswered items carry kCancelled.
  Workload reference;
  BuildWorkload(/*seed=*/11, /*docs=*/8, /*queries_per_doc=*/10, &reference);
  ServiceResult<BatchAnswers> expected =
      reference.service.AnswerBatch(reference.items, 1);
  ASSERT_TRUE(expected.ok());

  Workload w;
  ServiceOptions options;
  options.answer_cache_capacity = 0;  // No memo: every item computes.
  BuildWorkload(/*seed=*/11, /*docs=*/8, /*queries_per_doc=*/10, &w, options);
  CallOptions call;
  call.cancel = CancelToken::Cancellable();
  std::thread canceller([&call] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    call.cancel.Cancel();
  });
  ServiceResult<BatchAnswers> got = w.service.AnswerBatch(w.items, call);
  canceller.join();
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < got.value().answers.size(); ++i) {
    const auto& item = got.value().answers[i];
    if (item.ok()) {
      EXPECT_EQ(item.value().outputs,
                expected.value().answers[i].value().outputs);
    } else {
      EXPECT_EQ(item.error().code, ServiceErrorCode::kCancelled);
    }
  }
}

TEST(DeadlineTest, ParallelBatchHonorsDeadline) {
  // Deadline + worker pool: the token reaches pool workers (each chunk
  // re-installs the submitting call's scope), so a parallel batch aborts
  // cooperatively too — and the TaskGroup turns worker cancellation into
  // skips, not crashes.
  Workload w;
  BuildWorkload(/*seed=*/13, /*docs=*/6, /*queries_per_doc=*/12, &w);
  CallOptions call;
  call.num_workers = 4;
  call.deadline = steady_clock::now() + std::chrono::milliseconds(2);
  ServiceResult<BatchAnswers> got = w.service.AnswerBatch(w.items, call);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().answers.size(), w.items.size());
  for (const auto& item : got.value().answers) {
    if (!item.ok()) {
      EXPECT_EQ(item.error().code, ServiceErrorCode::kDeadlineExceeded);
    }
  }
}

// ----------------------------------------------------- admission control

TEST(DeadlineTest, AdmissionControlFailsFastWithRetryHint) {
  // max_inflight_calls = 1: while a long cancellable batch occupies the
  // slot, every further call is refused with kOverloaded and a positive
  // retry-after hint — fail-fast, no queueing, no lock contention.
  Workload w;
  ServiceOptions options;
  options.max_inflight_calls = 1;
  options.answer_cache_capacity = 0;  // Keep the occupant busy computing.
  // The occupant must stay in flight long enough for the main thread to
  // observe a refusal: many DISTINCT queries (the planner dedups repeats
  // by fingerprint, and the memo is off, so each one computes), ended
  // early by cancellation once the refusal is in hand.
  BuildWorkload(/*seed=*/17, /*docs=*/8, /*queries_per_doc=*/300, &w,
                options);
  CallOptions occupant;
  occupant.cancel = CancelToken::Cancellable();
  std::atomic<bool> occupant_done{false};
  std::thread holder([&] {
    (void)w.service.AnswerBatch(w.items, occupant);
    occupant_done.store(true);
  });
  // Wait until the occupant is admitted, then observe the refusal.
  while (w.service.stats().inflight_calls == 0 && !occupant_done.load()) {
    std::this_thread::yield();
  }
  bool saw_overload = false;
  int64_t hint = -1;
  DocumentId doc = w.items[0].document;
  for (int attempt = 0; attempt < 10000 && !occupant_done.load(); ++attempt) {
    ServiceResult<Answer> r = w.service.Answer(doc, w.items[0].query, {});
    if (!r.ok() && r.error().code == ServiceErrorCode::kOverloaded) {
      saw_overload = true;
      hint = r.error().retry_after_ms;
      break;
    }
  }
  occupant.cancel.Cancel();
  holder.join();
  ASSERT_TRUE(saw_overload) << "occupant finished before any refusal";
  EXPECT_GE(hint, 1);
  EXPECT_GE(w.service.stats().overloaded, 1u);
  // The slot drains: with the occupant gone the same call is admitted.
  ServiceResult<Answer> after = w.service.Answer(doc, w.items[0].query, {});
  EXPECT_TRUE(after.ok() ||
              after.error().code != ServiceErrorCode::kOverloaded);
}

// --------------------------------------------------------- memory budget

TEST(DeadlineTest, MemoryLadderShrinksMemoUnderPressure) {
  // A budget the view set fits under but the answer memo outgrows: the
  // ladder's first rung (shrink the memo) must fire mid-stream — and
  // every request keeps succeeding with correct answers throughout.
  Workload reference;
  BuildWorkload(/*seed=*/23, /*docs=*/3, /*queries_per_doc=*/30, &reference);

  Workload w;
  ServiceOptions options;
  options.memory_budget_bytes = 8192;  // Views fit; memo appetite doesn't.
  BuildWorkload(/*seed=*/23, /*docs=*/3, /*queries_per_doc=*/30, &w, options);
  for (size_t i = 0; i < w.items.size(); ++i) {
    ServiceResult<Answer> got =
        w.service.Answer(w.items[i].document, w.items[i].query);
    ServiceResult<Answer> want = reference.service.Answer(
        reference.items[i].document, reference.items[i].query);
    ASSERT_EQ(got.ok(), want.ok()) << "item " << i;
    if (got.ok()) {
      EXPECT_EQ(got.value().outputs, want.value().outputs) << "item " << i;
    }
  }
  const ServiceStats stats = w.service.stats();
  EXPECT_EQ(stats.memory_limit_bytes, 8192u);
  EXPECT_GT(stats.memory_used_bytes, 0u);
  EXPECT_GE(stats.memory_memo_shrinks, 1u);
  EXPECT_EQ(stats.internal_errors, 0u);
}

TEST(DeadlineTest, MemoryLadderPausesAdmissionWhenShrinkingIsNotEnough) {
  // A budget even the materialized views exceed: shrinking caches cannot
  // relieve the pressure, so the ladder reaches its terminal, reversible
  // rung — pause memo admission. No write is ever refused; every query
  // still answers correctly, it just stops being memoized.
  Workload reference;
  BuildWorkload(/*seed=*/23, /*docs=*/3, /*queries_per_doc=*/30, &reference);

  Workload w;
  ServiceOptions options;
  options.memory_budget_bytes = 2048;  // Below even the views' bytes.
  BuildWorkload(/*seed=*/23, /*docs=*/3, /*queries_per_doc=*/30, &w, options);
  for (size_t i = 0; i < w.items.size(); ++i) {
    ServiceResult<Answer> got =
        w.service.Answer(w.items[i].document, w.items[i].query);
    ServiceResult<Answer> want = reference.service.Answer(
        reference.items[i].document, reference.items[i].query);
    ASSERT_EQ(got.ok(), want.ok()) << "item " << i;
    if (got.ok()) {
      EXPECT_EQ(got.value().outputs, want.value().outputs) << "item " << i;
    }
  }
  const ServiceStats stats = w.service.stats();
  EXPECT_GE(stats.memory_admission_pauses, 1u);
  // Memoization was skipped (counted), never refused as an error.
  EXPECT_GE(stats.answer_cache_admission_drops, 1u);
  EXPECT_EQ(stats.internal_errors, 0u);
  EXPECT_EQ(stats.failed_requests, 0u);
}

TEST(DeadlineTest, MemoAdmissionResumesWithHysteresis) {
  // Pause under pressure, then release the pressure (drop the documents
  // whose views/memo hold the bytes): the next serving call re-admits the
  // memo once usage is below the low watermark.
  Workload w;
  ServiceOptions options;
  // Tight enough that shrinking alone cannot relieve the pressure (memo
  // entries grew a per-view validity stamp in PR 9, which made each
  // shrink free more bytes — 4096 no longer reaches the pause rung).
  options.memory_budget_bytes = 3400;
  BuildWorkload(/*seed=*/29, /*docs=*/3, /*queries_per_doc=*/30, &w, options);
  for (const BatchItem& item : w.items) {
    ASSERT_TRUE(w.service.Answer(item.document, item.query).ok());
  }
  ASSERT_GE(w.service.stats().memory_admission_pauses, 1u);
  // Drop every document: views and memoized answers release their bytes.
  DocumentId keep = w.service.AddDocument(Doc("<a><b/></a>"));
  for (const BatchItem& item : w.items) {
    (void)w.service.RemoveDocument(item.document);
  }
  // Each serving call runs one ladder pass; residual memo/oracle bytes
  // halve per pass until usage is below the low watermark, at which point
  // memo admission resumes.
  for (int i = 0; i < 50 && w.service.stats().memory_admission_resumes == 0;
       ++i) {
    ASSERT_TRUE(w.service.Answer(keep, "a/b").ok());
  }
  const ServiceStats stats = w.service.stats();
  EXPECT_LT(stats.memory_used_bytes, stats.memory_limit_bytes);
  EXPECT_GE(stats.memory_admission_resumes, 1u);
}

TEST(DeadlineTest, UnlimitedBudgetNeverDegrades) {
  Workload w;
  BuildWorkload(/*seed=*/31, /*docs=*/3, /*queries_per_doc=*/20, &w);
  for (const BatchItem& item : w.items) {
    ASSERT_TRUE(w.service.Answer(item.document, item.query).ok());
  }
  const ServiceStats stats = w.service.stats();
  EXPECT_EQ(stats.memory_limit_bytes, 0u);
  EXPECT_GT(stats.memory_used_bytes, 0u);  // Accounting still runs.
  EXPECT_EQ(stats.memory_memo_shrinks, 0u);
  EXPECT_EQ(stats.memory_oracle_shrinks, 0u);
  EXPECT_EQ(stats.memory_admission_pauses, 0u);
}

}  // namespace
}  // namespace xpv
