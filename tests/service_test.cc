// The multi-document serving facade: handle interning, Result-typed
// failure paths (nothing aborts on user input), equivalence with direct
// per-document ViewCache use, and the cross-document batch pipeline.

#include "api/service.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "views/view_cache.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

TEST(ServiceTest, AddDocumentFromXmlAndAnswer) {
  Service service;
  ServiceResult<DocumentId> doc =
      service.AddDocument("<a><b><c/><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_TRUE(doc.value().valid());
  EXPECT_EQ(service.num_documents(), 1);

  ServiceResult<ViewId> view = service.AddView(doc.value(), "b-view", "a/b");
  ASSERT_TRUE(view.ok()) << view.error().message;
  EXPECT_TRUE(view.value().valid());
  EXPECT_EQ(service.view(view.value())->name, "b-view");

  ServiceResult<Answer> answer = service.Answer(doc.value(), "a/b/c");
  ASSERT_TRUE(answer.ok()) << answer.error().message;
  EXPECT_TRUE(answer.value().hit);
  EXPECT_EQ(answer.value().view_name, "b-view");
  EXPECT_EQ(answer.value().outputs,
            Eval(MustParseXPath("a/b/c"), *service.document(doc.value())));
}

TEST(ServiceTest, MalformedXmlDocumentIsAParseError) {
  Service service;
  ServiceResult<DocumentId> doc = service.AddDocument("<a><b></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().code, ServiceErrorCode::kParseError);
  EXPECT_EQ(service.num_documents(), 0);
  EXPECT_EQ(service.stats().failed_requests, 1u);
}

TEST(ServiceTest, MalformedViewXPathCarriesOffset) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  ServiceResult<ViewId> view = service.AddView(doc, "bad", "a[b//]");
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ServiceErrorCode::kParseError);
  EXPECT_EQ(view.error().offset, 5);
  EXPECT_NE(view.error().message.find("position 5: expected step"),
            std::string::npos)
      << view.error().message;
  // The caret context line points at the offending byte.
  EXPECT_NE(view.error().message.find("a[b//]"), std::string::npos);
  EXPECT_EQ(service.num_views(doc), 0);
}

TEST(ServiceTest, DuplicateViewNameIsRejected) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/><c/></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  ServiceResult<ViewId> dup = service.AddView(doc, "v", "a/c");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ServiceErrorCode::kDuplicateViewName);
  EXPECT_EQ(service.num_views(doc), 1);
  // The same name is fine on a different document.
  DocumentId other = service.AddDocument(Doc("<a><b/></a>"));
  EXPECT_TRUE(service.AddView(other, "v", "a/b").ok());
}

TEST(ServiceTest, UnknownDocumentIsRejected) {
  Service service;
  DocumentId real = service.AddDocument(Doc("<a><b/></a>"));
  DocumentId bogus{7};
  ServiceResult<ViewId> view = service.AddView(bogus, "v", "a/b");
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ServiceErrorCode::kUnknownDocument);

  ServiceResult<Answer> answer = service.Answer(bogus, "a/b");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.error().code, ServiceErrorCode::kUnknownDocument);

  EXPECT_EQ(service.document(bogus), nullptr);
  EXPECT_EQ(service.document(DocumentId{}), nullptr);
  EXPECT_NE(service.document(real), nullptr);
}

TEST(ServiceTest, EmptyViewPatternIsRejected) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a/>"));
  ServiceResult<ViewId> view = service.AddView(doc, "v", Pattern::Empty());
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ServiceErrorCode::kEmptyPattern);
}

TEST(ServiceTest, EmptyPatternQueryAnswersLikeViewCache) {
  // Υ selects nothing; the facade mirrors ViewCache::Answer instead of
  // erroring, so pattern-level callers keep the same semantics.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  ServiceResult<Answer> answer = service.Answer(doc, Pattern::Empty());
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().hit);
  EXPECT_TRUE(answer.value().outputs.empty());
}

TEST(ServiceTest, AnswerEquivalentToDirectViewCachePerDocument) {
  const char* xml =
      "<a><b><c/><c><d/></c></b><b><c/><e/></b><x><b><c/></b><y/></x></a>";
  const char* views[] = {"a/b", "a/x"};
  const char* queries[] = {"a/b/c",  "a/b",   "a//b/c", "a/x/y",
                           "a/b[e]", "a/q/r", "a/b/c/d"};

  Service service;
  DocumentId doc = service.AddDocument(Doc(xml));
  Tree direct_doc = Doc(xml);
  ViewCache direct(direct_doc);
  int vi = 0;
  for (const char* view : views) {
    ASSERT_TRUE(
        service.AddView(doc, "v" + std::to_string(vi++), view).ok());
    direct.AddView({"v" + std::to_string(vi - 1), MustParseXPath(view)});
  }
  for (const char* query : queries) {
    ServiceResult<Answer> answer = service.Answer(doc, query);
    ASSERT_TRUE(answer.ok()) << query;
    CacheAnswer expected = direct.Answer(MustParseXPath(query));
    EXPECT_EQ(answer.value().hit, expected.hit) << query;
    EXPECT_EQ(answer.value().view_name, expected.view_name) << query;
    EXPECT_EQ(answer.value().outputs, expected.outputs) << query;
    EXPECT_EQ(answer.value().rewriting.CanonicalEncoding(),
              expected.rewriting.CanonicalEncoding())
        << query;
  }
  EXPECT_EQ(service.stats().queries, direct.stats().queries);
  EXPECT_EQ(service.stats().hits, direct.stats().hits);
}

TEST(ServiceTest, BatchFailedSlotsDoNotDisturbTheOthers) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items = {
      {doc, "a/b/c"},
      {doc, "a[b//"},     // Malformed: fails alone.
      {DocumentId{42}, "a/b"},  // Unknown document: fails alone.
      {doc, "a/b"},
  };
  ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 2);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), items.size());

  EXPECT_TRUE(batch.value().answers[0].ok());
  EXPECT_TRUE(batch.value().answers[0].value().hit);

  ASSERT_FALSE(batch.value().answers[1].ok());
  EXPECT_EQ(batch.value().answers[1].error().code,
            ServiceErrorCode::kParseError);
  EXPECT_GE(batch.value().answers[1].error().offset, 0);

  ASSERT_FALSE(batch.value().answers[2].ok());
  EXPECT_EQ(batch.value().answers[2].error().code,
            ServiceErrorCode::kUnknownDocument);

  EXPECT_TRUE(batch.value().answers[3].ok());
  EXPECT_TRUE(batch.value().answers[3].value().hit);

  EXPECT_EQ(service.stats().failed_requests, 2u);
  EXPECT_EQ(service.stats().queries, 2u);
}

TEST(ServiceTest, CrossDocumentBatchMatchesPerDocumentAnswerManyLoops) {
  // Service::AnswerBatch over N documents must return exactly what a
  // per-document ViewCache::AnswerMany loop returns, for every worker
  // count (the acceptance bar of the api_redesign issue).
  struct DocSpec {
    const char* xml;
    std::vector<const char*> views;
  };
  const DocSpec specs[] = {
      {"<a><b><c/><c><d/></c></b><b><e/></b></a>", {"a/b"}},
      {"<a><x><b><c/></b></x><b><c/></b></a>", {"a//b", "a/x"}},
      {"<r><s><t/><t><u/></t></s></r>", {"r/s"}},
  };
  const char* queries[] = {"a/b/c",   "a/b",   "a//b/c", "r/s/t",
                           "a/x/b/c", "r/s/t/u", "a/b/c", "q/z"};

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(workers);
    Service service;
    std::vector<DocumentId> ids;
    // Direct per-document twins, sharing nothing with the service.
    std::vector<Tree> twin_docs;
    twin_docs.reserve(3);
    std::vector<ViewCache> twins;
    twins.reserve(3);
    for (const DocSpec& spec : specs) {
      DocumentId id = service.AddDocument(Doc(spec.xml));
      ids.push_back(id);
      twin_docs.push_back(Doc(spec.xml));
      twins.emplace_back(twin_docs.back());
      int vi = 0;
      for (const char* view : spec.views) {
        std::string name = "v" + std::to_string(vi++);
        ASSERT_TRUE(service.AddView(id, name, view).ok());
        twins.back().AddView({name, MustParseXPath(view)});
      }
    }

    // Round-robin the queries over the documents.
    std::vector<BatchItem> items;
    std::vector<std::vector<Pattern>> per_doc(3);
    for (size_t i = 0; i < std::size(queries); ++i) {
      const size_t d = i % 3;
      items.push_back({ids[d], queries[i]});
      per_doc[d].push_back(MustParseXPath(queries[i]));
    }

    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, workers);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().size(), items.size());

    std::vector<std::vector<CacheAnswer>> expected;
    for (size_t d = 0; d < 3; ++d) {
      expected.push_back(twins[d].AnswerMany(per_doc[d], workers));
    }
    std::vector<size_t> next(3, 0);
    for (size_t i = 0; i < items.size(); ++i) {
      const size_t d = i % 3;
      ASSERT_TRUE(batch.value().answers[i].ok()) << i;
      const Answer& actual = batch.value().answers[i].value();
      const CacheAnswer& want = expected[d][next[d]++];
      EXPECT_EQ(actual.hit, want.hit) << i;
      EXPECT_EQ(actual.view_name, want.view_name) << i;
      EXPECT_EQ(actual.outputs, want.outputs) << i;
      EXPECT_EQ(actual.rewriting.CanonicalEncoding(),
                want.rewriting.CanonicalEncoding())
          << i;
    }
    // Aggregated statistics equal the sum of the per-document loops.
    uint64_t want_queries = 0, want_hits = 0;
    for (const ViewCache& twin : twins) {
      want_queries += twin.stats().queries;
      want_hits += twin.stats().hits;
    }
    EXPECT_EQ(service.stats().queries, want_queries);
    EXPECT_EQ(service.stats().hits, want_hits);
    EXPECT_EQ(service.stats().documents, 3u);
    EXPECT_EQ(service.stats().views, 4u);
  }
}

TEST(ServiceTest, SharedOracleAmortizesAcrossDocuments) {
  // Two documents with the same view/query shapes: the second document's
  // equivalence tests must be answered from the shared oracle (its miss
  // count does not grow).
  Service service;
  DocumentId d1 = service.AddDocument(Doc("<a><b><c/></b></a>"));
  DocumentId d2 = service.AddDocument(Doc("<a><b><c/><c/></b><b/></a>"));
  ASSERT_TRUE(service.AddView(d1, "v", "a/b").ok());
  ASSERT_TRUE(service.AddView(d2, "v", "a/b").ok());

  ASSERT_TRUE(service.Answer(d1, "a/b/c").ok());
  const uint64_t misses_after_first = service.oracle().misses();
  ServiceResult<Answer> second = service.Answer(d2, "a/b/c");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().hit);
  EXPECT_EQ(service.oracle().misses(), misses_after_first);
  EXPECT_GT(service.oracle().hits(), 0u);
}

TEST(ServiceTest, QueriesDeduplicateByCanonicalFingerprint) {
  // Textually different XPaths with isomorphic patterns are answered as
  // one distinct query by the batch pipeline.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items = {
      {doc, "a[b/c]/b"},
      {doc, " a [ b / c ] / b "},  // Same pattern, different spelling.
      {doc, Query(MustParseXPath("a[b/c]/b"))},
  };
  ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
  ASSERT_TRUE(batch.ok());
  for (const auto& slot : batch.value().answers) {
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot.value().outputs,
              batch.value().answers[0].value().outputs);
  }
  // Three requests counted, one scan performed: hits/misses accrued once.
  EXPECT_EQ(service.stats().queries, 3u);
  ASSERT_NE(service.cache(doc), nullptr);
  EXPECT_EQ(service.cache(doc)->num_active_views(), 1);
}

TEST(ServiceTest, NullCStringQueryIsAParseErrorNotUB) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  const char* null_xpath = nullptr;
  ServiceResult<Answer> answer = service.Answer(doc, null_xpath);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.error().code, ServiceErrorCode::kParseError);
}

TEST(ServiceTest, HugeWorkerCountIsCappedNotFatal) {
  // The shard partition depends on num_workers, but the thread pool is
  // capped by the hardware — an absurd request must neither spawn that
  // many threads nor change the answers.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items = {
      {doc, "a/b/c"}, {doc, "a/b/d"}, {doc, "a/b"}};
  ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1 << 20);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(batch.value().answers[i].ok()) << i;
    ServiceResult<Answer> single =
        service.Answer(doc, items[i].query);
    ASSERT_TRUE(single.ok()) << i;
    EXPECT_EQ(batch.value().answers[i].value().outputs,
              single.value().outputs)
        << i;
  }
}

TEST(ServiceTest, RepeatedBatchesAnswerFromTheMemoIdentically) {
  // The acceptance bar of the batch-planner issue: the memoized/deduped
  // AnswerBatch must return answers AND serving stats identical to the
  // unmemoized pipeline, for 1/2/4 workers — while repeated batches
  // actually hit the memo.
  const char* xmls[] = {
      "<a><b><c/><c><d/></c></b><b><e/></b></a>",
      "<a><b><c/></b><x><b><c/></b></x></a>",
      "<a><b/><b><c/></b></a>",
  };
  const char* queries[] = {"a/b/c", "a/b", "a//b/c", "a/b/c", "q/z"};

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(workers);
    Service memoized;  // Default: answer memo on.
    ServiceOptions off;
    off.answer_cache_capacity = 0;  // The unmemoized baseline.
    Service baseline(off);
    std::vector<DocumentId> mids, bids;
    for (const char* xml : xmls) {
      mids.push_back(memoized.AddDocument(Doc(xml)));
      bids.push_back(baseline.AddDocument(Doc(xml)));
      ASSERT_TRUE(memoized.AddView(mids.back(), "v", "a/b").ok());
      ASSERT_TRUE(baseline.AddView(bids.back(), "v", "a/b").ok());
    }
    // Every query over every document — the cross-document dedup regime.
    std::vector<BatchItem> mitems, bitems;
    for (size_t d = 0; d < mids.size(); ++d) {
      for (const char* q : queries) {
        mitems.push_back({mids[d], q});
        bitems.push_back({bids[d], q});
      }
    }

    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE(round);
      ServiceResult<BatchAnswers> got = memoized.AnswerBatch(mitems, workers);
      ServiceResult<BatchAnswers> want = baseline.AnswerBatch(bitems, workers);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(want.ok());
      ASSERT_EQ(got.value().size(), want.value().size());
      for (size_t i = 0; i < got.value().size(); ++i) {
        ASSERT_TRUE(got.value().answers[i].ok()) << i;
        ASSERT_TRUE(want.value().answers[i].ok()) << i;
        const Answer& g = got.value().answers[i].value();
        const Answer& w = want.value().answers[i].value();
        EXPECT_EQ(g.hit, w.hit) << i;
        EXPECT_EQ(g.view_name, w.view_name) << i;
        EXPECT_EQ(g.outputs, w.outputs) << i;
        EXPECT_EQ(g.rewriting.CanonicalEncoding(),
                  w.rewriting.CanonicalEncoding())
            << i;
      }
      // Serving counters are memo-invariant: hits replay the stored scan's
      // delta, so the two services agree query for query.
      EXPECT_EQ(memoized.stats().queries, baseline.stats().queries);
      EXPECT_EQ(memoized.stats().hits, baseline.stats().hits);
      EXPECT_EQ(memoized.stats().rewrite_unknown,
                baseline.stats().rewrite_unknown);
    }
    // The memo worked: repeated batches hit, the baseline never does.
    EXPECT_GT(memoized.stats().answer_cache_hits, 0u);
    EXPECT_GT(memoized.stats().answer_cache_entries, 0u);
    EXPECT_EQ(baseline.stats().answer_cache_hits, 0u);
    EXPECT_EQ(baseline.stats().answer_cache_entries, 0u);
  }
}

TEST(ServiceTest, SingleAnswersShareTheMemoWithBatches) {
  // Answer and AnswerBatch key the same memo: a batch fills it, a single
  // repeat of one of its queries hits without a new scan (and both paths
  // replay identical serving stats).
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items = {{doc, "a/b/c"}, {doc, "a/b"}};
  ASSERT_TRUE(service.AnswerBatch(items, 1).ok());
  const uint64_t hits_before = service.stats().answer_cache_hits;
  const uint64_t oracle_misses_before = service.stats().oracle_misses;

  ServiceResult<Answer> repeat = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().hit);
  EXPECT_GT(service.stats().answer_cache_hits, hits_before);
  // A memo hit runs no equivalence tests at all.
  EXPECT_EQ(service.stats().oracle_misses, oracle_misses_before);
  EXPECT_EQ(service.stats().queries, items.size() + 1);
}

TEST(ServiceTest, MemoInvalidatesOnViewAndDocumentMutations) {
  // The epoch contract: AddView/RemoveView/ReplaceDocument each bump the
  // document's epoch, so memoized answers from before the mutation are
  // unreachable — answers always reflect the current view set/document.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ServiceResult<Answer> miss = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().hit);
  ASSERT_TRUE(service.Answer(doc, "a/b/c").ok());  // Memoize the miss.

  // AddView: the same query must now answer through the view.
  ServiceResult<ViewId> view = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(view.ok());
  ServiceResult<Answer> hit = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().hit);
  EXPECT_EQ(hit.value().outputs, miss.value().outputs);

  // RemoveView: back to a direct-evaluation miss, not the stale hit.
  ASSERT_TRUE(service.RemoveView(view.value()).ok());
  ServiceResult<Answer> miss_again = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(miss_again.ok());
  EXPECT_FALSE(miss_again.value().hit);
  EXPECT_EQ(miss_again.value().outputs, miss.value().outputs);

  // ReplaceDocument: outputs must track the new tree immediately.
  ASSERT_TRUE(
      service.ReplaceDocument(doc, Doc("<a><b><c/><c/></b></a>")).ok());
  ServiceResult<Answer> replaced = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value().outputs.size(), 2u);
  EXPECT_EQ(replaced.value().outputs,
            Eval(MustParseXPath("a/b/c"), *service.document(doc)));
}

TEST(ServiceTest, ServiceIsMovable) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());

  Service moved = std::move(service);
  ServiceResult<Answer> answer = moved.Answer(doc, "a/b/c");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().hit);
}

TEST(ServiceTest, ErrorCodeNames) {
  EXPECT_STREQ(ToString(ServiceErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(ToString(ServiceErrorCode::kUnknownDocument),
               "unknown_document");
  EXPECT_STREQ(ToString(ServiceErrorCode::kDuplicateViewName),
               "duplicate_view_name");
  EXPECT_STREQ(ToString(ServiceErrorCode::kEmptyPattern), "empty_pattern");
}

}  // namespace
}  // namespace xpv
