// Thread-safety of the serving facade: concurrent Answer/AnswerBatch
// callers against one Service, with and without interleaved
// AddView/RemoveView/ReplaceDocument writers.
//
// Two invariants are asserted:
//   1. With a fixed view set, every concurrently-produced answer is
//      IDENTICAL to a serial replay of the same requests (hit, view,
//      rewriting, outputs — and the aggregated statistics).
//   2. Under view churn, every answer's outputs still equal direct
//      evaluation against the document (a query observes the view set
//      before or after a mutation, never a torn state).
//
// The CI tsan job runs this file explicitly under ThreadSanitizer.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "util/thread_pool.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

struct DocSpec {
  const char* xml;
  std::vector<const char*> views;
};

const DocSpec kSpecs[] = {
    {"<a><b><c/><c><d/></c></b><b><e/></b></a>", {"a/b"}},
    {"<a><x><b><c/></b></x><b><c/></b></a>", {"a//b", "a/x"}},
    {"<r><s><t/><t><u/></t></s></r>", {"r/s"}},
};

const char* kQueries[] = {"a/b/c",   "a/b",     "a//b/c", "r/s/t",
                          "a/x/b/c", "r/s/t/u", "a/b/c",  "q/z"};

std::vector<DocumentId> Populate(Service* service) {
  std::vector<DocumentId> ids;
  for (const DocSpec& spec : kSpecs) {
    DocumentId id = service->AddDocument(Doc(spec.xml));
    int vi = 0;
    for (const char* view : spec.views) {
      EXPECT_TRUE(
          service->AddView(id, "v" + std::to_string(vi++), view).ok());
    }
    ids.push_back(id);
  }
  return ids;
}

void ExpectSameAnswer(const Answer& actual, const Answer& want,
                      const std::string& context) {
  EXPECT_EQ(actual.hit, want.hit) << context;
  EXPECT_EQ(actual.view_name, want.view_name) << context;
  EXPECT_EQ(actual.outputs, want.outputs) << context;
  EXPECT_EQ(actual.rewriting.CanonicalEncoding(),
            want.rewriting.CanonicalEncoding())
      << context;
}

TEST(ServiceConcurrencyTest, ParallelAnswersMatchSerialReplay) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 12;
  const size_t n_queries = std::size(kQueries);

  Service concurrent;
  std::vector<DocumentId> ids = Populate(&concurrent);

  // Each thread owns a deterministic request schedule: per round, one
  // single Answer and one 4-item AnswerBatch (round-robin over documents
  // and queries, offset by the thread id).
  auto request = [&](int thread, int round, int k) {
    const size_t q = static_cast<size_t>(thread + 3 * round + k) % n_queries;
    const size_t d = static_cast<size_t>(thread + round + k) % ids.size();
    return BatchItem{ids[d], kQueries[q]};
  };

  std::vector<std::vector<Answer>> single(kThreads);
  std::vector<std::vector<Answer>> batched(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          BatchItem one = request(t, round, 0);
          ServiceResult<Answer> answer =
              concurrent.Answer(one.document, one.query);
          ASSERT_TRUE(answer.ok());
          single[static_cast<size_t>(t)].push_back(answer.take());

          std::vector<BatchItem> items;
          for (int k = 1; k <= 4; ++k) items.push_back(request(t, round, k));
          ServiceResult<BatchAnswers> batch =
              concurrent.AnswerBatch(items, /*num_workers=*/2);
          ASSERT_TRUE(batch.ok());
          for (auto& slot : batch.value().answers) {
            ASSERT_TRUE(slot.ok());
            batched[static_cast<size_t>(t)].push_back(slot.take());
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Serial replay: the same schedule, thread by thread, on a fresh twin.
  Service serial;
  std::vector<DocumentId> twin_ids = Populate(&serial);
  auto twin_request = [&](int thread, int round, int k) {
    BatchItem item = request(thread, round, k);
    for (size_t d = 0; d < ids.size(); ++d) {
      if (item.document == ids[d]) return BatchItem{twin_ids[d], item.query};
    }
    ADD_FAILURE() << "unmapped document";
    return item;
  };
  for (int t = 0; t < kThreads; ++t) {
    size_t si = 0, bi = 0;
    for (int round = 0; round < kRounds; ++round) {
      BatchItem one = twin_request(t, round, 0);
      ServiceResult<Answer> answer = serial.Answer(one.document, one.query);
      ASSERT_TRUE(answer.ok());
      ExpectSameAnswer(single[static_cast<size_t>(t)][si++], answer.value(),
                       "thread " + std::to_string(t) + " round " +
                           std::to_string(round));
      std::vector<BatchItem> items;
      for (int k = 1; k <= 4; ++k) items.push_back(twin_request(t, round, k));
      ServiceResult<BatchAnswers> batch = serial.AnswerBatch(items, 2);
      ASSERT_TRUE(batch.ok());
      for (auto& slot : batch.value().answers) {
        ASSERT_TRUE(slot.ok());
        ExpectSameAnswer(batched[static_cast<size_t>(t)][bi++], slot.value(),
                         "thread " + std::to_string(t) + " round " +
                             std::to_string(round) + " (batch)");
      }
    }
  }

  // Aggregated counters equal the serial replay's.
  EXPECT_EQ(concurrent.stats().queries, serial.stats().queries);
  EXPECT_EQ(concurrent.stats().hits, serial.stats().hits);
  EXPECT_EQ(concurrent.stats().rewrite_unknown,
            serial.stats().rewrite_unknown);
  EXPECT_EQ(concurrent.stats().failed_requests, 0u);
}

TEST(ServiceConcurrencyTest, AnswersStayCorrectUnderViewChurn) {
  // Readers hammer a stable document and a churned one while a writer
  // interleaves AddView/RemoveView and same-content ReplaceDocument on
  // the churned document. Outputs must always equal direct evaluation;
  // the stable document's answers must not change at all.
  constexpr int kReaders = 3;
  constexpr int kReaderRounds = 60;
  constexpr int kWriterRounds = 40;

  const char* stable_xml = "<a><b><c/><c/></b><b><d/></b></a>";
  const char* churn_xml = "<r><s><t/></s><s><t/><u/></s></r>";
  const char* stable_queries[] = {"a/b/c", "a/b", "a/b/d"};
  const char* churn_queries[] = {"r/s/t", "r/s", "r//u"};

  Service service;
  DocumentId stable = service.AddDocument(Doc(stable_xml));
  ASSERT_TRUE(service.AddView(stable, "v", "a/b").ok());
  DocumentId churn = service.AddDocument(Doc(churn_xml));
  ASSERT_TRUE(service.AddView(churn, "keep", "r/s").ok());

  // Ground truth, computed before any thread starts. Node ids are stable
  // across the same-content replaces (identical parse).
  Tree stable_twin = Doc(stable_xml);
  Tree churn_twin = Doc(churn_xml);
  std::vector<std::vector<NodeId>> stable_expected, churn_expected;
  for (const char* q : stable_queries) {
    stable_expected.push_back(Eval(MustParseXPath(q), stable_twin));
  }
  for (const char* q : churn_queries) {
    churn_expected.push_back(Eval(MustParseXPath(q), churn_twin));
  }

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);

  // Writer: add/remove a rotating view on the churned document, and every
  // few rounds replace the document with identical content (shard swap
  // under load; the handle stays valid).
  threads.emplace_back([&] {
    for (int i = 0; i < kWriterRounds; ++i) {
      std::string name = "w" + std::to_string(i % 3);
      ServiceResult<ViewId> added =
          service.AddView(churn, name, i % 2 == 0 ? "r/s" : "r//s");
      ASSERT_TRUE(added.ok()) << added.error().message;
      ASSERT_TRUE(service.RemoveView(added.value()).ok());
      if (i % 8 == 7) {
        ASSERT_TRUE(service.ReplaceDocument(churn, Doc(churn_xml)).ok());
        // The replace dropped every view; restore the resident one.
        ASSERT_TRUE(service.AddView(churn, "keep", "r/s").ok());
      }
    }
  });

  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&, reader] {
      for (int round = 0; round < kReaderRounds; ++round) {
        // Stable document: full answer equality every time.
        const size_t sq = static_cast<size_t>(reader + round) %
                          std::size(stable_queries);
        ServiceResult<Answer> s =
            service.Answer(stable, stable_queries[sq]);
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(s.value().outputs, stable_expected[sq]);

        // Churned document: outputs invariant (hit/miss may vary with the
        // writer's interleaving).
        const size_t cq = static_cast<size_t>(reader + 2 * round) %
                          std::size(churn_queries);
        ServiceResult<Answer> c = service.Answer(churn, churn_queries[cq]);
        ASSERT_TRUE(c.ok());
        EXPECT_EQ(c.value().outputs, churn_expected[cq]) << churn_queries[cq];

        // Cross-document batches against both under churn.
        std::vector<BatchItem> items = {{stable, stable_queries[sq]},
                                        {churn, churn_queries[cq]}};
        ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 2);
        ASSERT_TRUE(batch.ok());
        ASSERT_TRUE(batch.value().answers[0].ok());
        EXPECT_EQ(batch.value().answers[0].value().outputs,
                  stable_expected[sq]);
        ASSERT_TRUE(batch.value().answers[1].ok());
        EXPECT_EQ(batch.value().answers[1].value().outputs,
                  churn_expected[cq]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Quiesced: the resident view answers, the churn views are gone.
  EXPECT_EQ(service.num_views(churn), 1);
  ServiceResult<Answer> final_answer = service.Answer(churn, "r/s/t");
  ASSERT_TRUE(final_answer.ok());
  EXPECT_TRUE(final_answer.value().hit);
  EXPECT_EQ(final_answer.value().outputs, churn_expected[0]);
}

TEST(ServiceConcurrencyTest, ConcurrentDocumentLifecycleKeepsOthersServing) {
  // One thread churns whole documents (add → answer → remove) while
  // readers keep answering on their own stable documents; stale handles
  // surface as kStaleHandle, never as wrong answers.
  Service service;
  DocumentId stable = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(stable, "v", "a/b").ok());
  Tree twin = Doc("<a><b><c/></b></a>");
  const std::vector<NodeId> expected = Eval(MustParseXPath("a/b/c"), twin);

  std::thread churner([&] {
    for (int i = 0; i < 40; ++i) {
      DocumentId doc = service.AddDocument(Doc("<x><y><z/></y></x>"));
      ASSERT_TRUE(service.AddView(doc, "w", "x/y").ok());
      ServiceResult<Answer> answer = service.Answer(doc, "x/y/z");
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer.value().outputs.size(), 1u);
      ASSERT_TRUE(service.RemoveDocument(doc).ok());
      ServiceResult<Answer> stale = service.Answer(doc, "x/y/z");
      ASSERT_FALSE(stale.ok());
      EXPECT_EQ(stale.error().code, ServiceErrorCode::kStaleHandle);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 60; ++i) {
        ServiceResult<Answer> answer = service.Answer(stable, "a/b/c");
        ASSERT_TRUE(answer.ok());
        EXPECT_TRUE(answer.value().hit);
        EXPECT_EQ(answer.value().outputs, expected);
      }
    });
  }
  churner.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(service.num_documents(), 1);
}

TEST(ServiceConcurrencyTest, RepeatedBatchesStayCorrectUnderChurnWithMemo) {
  // The answer-memo stress: readers re-issue the SAME cross-document
  // batch (maximal memo-hit contention on shared AnswerCache entries)
  // while a writer churns one document's views and periodically replaces
  // the document (same content). Every answer must equal direct
  // evaluation — a stale memo entry surviving an epoch bump would fail
  // here deterministically, because the churned view set flips queries
  // between hit and miss while outputs stay fixed.
  constexpr int kReaders = 3;
  constexpr int kReaderRounds = 50;
  constexpr int kWriterRounds = 30;

  const char* stable_xml = "<a><b><c/><c/></b><b><d/></b></a>";
  const char* churn_xml = "<r><s><t/></s><s><t/><u/></s></r>";

  Service service;
  DocumentId stable = service.AddDocument(Doc(stable_xml));
  ASSERT_TRUE(service.AddView(stable, "v", "a/b").ok());
  DocumentId churn = service.AddDocument(Doc(churn_xml));
  ASSERT_TRUE(service.AddView(churn, "keep", "r/s").ok());

  const char* batch_queries[] = {"a/b/c", "r/s/t", "a/b", "r//u",
                                 "a/b/c", "r/s/t"};
  std::vector<BatchItem> items;
  std::vector<std::vector<NodeId>> expected;
  {
    Tree stable_twin = Doc(stable_xml);
    Tree churn_twin = Doc(churn_xml);
    for (size_t i = 0; i < std::size(batch_queries); ++i) {
      const bool on_stable = batch_queries[i][0] == 'a';
      items.push_back({on_stable ? stable : churn, batch_queries[i]});
      expected.push_back(Eval(MustParseXPath(batch_queries[i]),
                              on_stable ? stable_twin : churn_twin));
    }
  }

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kWriterRounds; ++i) {
      ServiceResult<ViewId> added =
          service.AddView(churn, "w", i % 2 == 0 ? "r/s" : "r//s");
      ASSERT_TRUE(added.ok()) << added.error().message;
      ASSERT_TRUE(service.RemoveView(added.value()).ok());
      if (i % 10 == 9) {
        ASSERT_TRUE(service.ReplaceDocument(churn, Doc(churn_xml)).ok());
        ASSERT_TRUE(service.AddView(churn, "keep", "r/s").ok());
      }
    }
  });
  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&, reader] {
      for (int round = 0; round < kReaderRounds; ++round) {
        ServiceResult<BatchAnswers> batch =
            service.AnswerBatch(items, 1 + (reader + round) % 3);
        ASSERT_TRUE(batch.ok());
        for (size_t i = 0; i < items.size(); ++i) {
          ASSERT_TRUE(batch.value().answers[i].ok()) << i;
          EXPECT_EQ(batch.value().answers[i].value().outputs, expected[i])
              << batch_queries[i];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The repeated batches actually exercised the memo.
  EXPECT_GT(service.stats().answer_cache_hits, 0u);
  // Quiesced sanity: one final batch still equals direct evaluation.
  ServiceResult<BatchAnswers> last = service.AnswerBatch(items, 2);
  ASSERT_TRUE(last.ok());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(last.value().answers[i].ok());
    EXPECT_EQ(last.value().answers[i].value().outputs, expected[i]);
  }
}

TEST(ServiceConcurrencyTest, AnswerCacheStressTinyCapacityStaysSound) {
  // TSan-targeted stress of the AnswerCache itself: a tiny capacity keeps
  // the eviction sweep firing constantly while readers hit/miss/insert
  // from many threads and a writer bumps epochs — the shared-probe /
  // exclusive-fill discipline and the ref-bit atomics must hold up, and
  // answers must stay correct throughout.
  ServiceOptions options;
  options.answer_cache_capacity = 4;  // Far below the working set.
  Service service(options);
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  const char* queries[] = {"a/b/c", "a/b/d", "a/b", "a//c", "a//d",
                           "a/b/c", "a/*"};
  Tree twin = Doc("<a><b><c/></b><b><d/></b></a>");
  std::vector<std::vector<NodeId>> expected;
  for (const char* q : queries) {
    expected.push_back(Eval(MustParseXPath(q), twin));
  }

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < 60; ++i) {
      ServiceResult<ViewId> added = service.AddView(doc, "w", "a//b");
      ASSERT_TRUE(added.ok());
      ASSERT_TRUE(service.RemoveView(added.value()).ok());
    }
  });
  for (int reader = 0; reader < 4; ++reader) {
    threads.emplace_back([&, reader] {
      for (int round = 0; round < 80; ++round) {
        const size_t q = static_cast<size_t>(reader + round) %
                         std::size(queries);
        ServiceResult<Answer> answer = service.Answer(doc, queries[q]);
        ASSERT_TRUE(answer.ok());
        EXPECT_EQ(answer.value().outputs, expected[q]) << queries[q];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The table respected its bound under the whole stress.
  EXPECT_LE(service.stats().answer_cache_entries, 4u);
}

TEST(ServiceConcurrencyTest, AlternatingBatchSizesReuseOneGrowingPool) {
  // Regression for EnsurePool: a larger worker count used to REPLACE the
  // live pool (join + re-spawn per batch in alternating-size workloads,
  // and a use-after-free hazard under concurrency). The pool must be one
  // object that only grows.
  Service service;
  DocumentId doc =
      service.AddDocument(Doc("<a><b><c/></b><b><d/></b><e/></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items;
  for (const char* q : {"a/b/c", "a/b/d", "a/b", "a/e", "a//c", "a//d",
                        "a/b/c", "a/e"}) {
    items.push_back({doc, q});
  }

  ASSERT_TRUE(service.AnswerBatch(items, 2).ok());
  const ThreadPool* pool = service.pool_for_testing();
  ASSERT_NE(pool, nullptr);
  const int small = pool->num_threads();

  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(service.AnswerBatch(items, round % 2 == 0 ? 8 : 2).ok());
    // Same pool object every time — threads were reused, not re-spawned.
    EXPECT_EQ(service.pool_for_testing(), pool);
    EXPECT_GE(pool->num_threads(), small);  // Grow-only.
  }
  EXPECT_EQ(service.stats().pool_threads,
            static_cast<uint64_t>(pool->num_threads()));
}

}  // namespace
}  // namespace xpv
