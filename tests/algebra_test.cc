#include "pattern/algebra.h"

#include <gtest/gtest.h>

#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(ComposeTest, MergesOutputWithRoot) {
  // V = a/b (output b), R = b/c. R∘V = a/b/c.
  Pattern v = MustParseXPath("a/b");
  Pattern r = MustParseXPath("b/c");
  Pattern rv = Compose(r, v);
  EXPECT_TRUE(Isomorphic(rv, MustParseXPath("a/b/c")));
}

TEST(ComposeTest, GlbLabelingWildcardWildcard) {
  // Both merged endpoints labeled '*': merged node stays '*' (Figure 1).
  Pattern v = MustParseXPath("a/*");
  Pattern r = MustParseXPath("*/c");
  Pattern rv = Compose(r, v);
  EXPECT_TRUE(Isomorphic(rv, MustParseXPath("a/*/c")));
}

TEST(ComposeTest, GlbLabelingWildcardSigma) {
  Pattern v = MustParseXPath("a/*");
  Pattern r = MustParseXPath("b/c");
  EXPECT_TRUE(Isomorphic(Compose(r, v), MustParseXPath("a/b/c")));
  Pattern v2 = MustParseXPath("a/b");
  Pattern r2 = MustParseXPath("*/c");
  EXPECT_TRUE(Isomorphic(Compose(r2, v2), MustParseXPath("a/b/c")));
}

TEST(ComposeTest, IncompatibleLabelsYieldEmpty) {
  Pattern v = MustParseXPath("a/b");
  Pattern r = MustParseXPath("c/d");
  EXPECT_TRUE(Compose(r, v).IsEmpty());
}

TEST(ComposeTest, EmptyOperandsYieldEmpty) {
  Pattern a = MustParseXPath("a");
  EXPECT_TRUE(Compose(Pattern::Empty(), a).IsEmpty());
  EXPECT_TRUE(Compose(a, Pattern::Empty()).IsEmpty());
}

TEST(ComposeTest, MergedNodeGetsChildrenOfBoth) {
  // V = a/b[x], R = b[y]/c: merged node has branches x and y plus spine c.
  Pattern v = MustParseXPath("a/b[x]");
  Pattern r = MustParseXPath("b[y]/c");
  EXPECT_TRUE(Isomorphic(Compose(r, v), MustParseXPath("a/b[x][y]/c")));
}

TEST(ComposeTest, SingleNodeRewritingOutputIsMergedNode) {
  // root(R) == out(R): the merged node is the output of R∘V.
  Pattern v = MustParseXPath("a/b[x]");
  Pattern r = MustParseXPath("b[y]");
  Pattern rv = Compose(r, v);
  EXPECT_TRUE(Isomorphic(rv, MustParseXPath("a/b[x][y]")));
  SelectionInfo info(rv);
  EXPECT_EQ(info.depth(), 1);
}

TEST(ComposeTest, EdgeTypesPreserved) {
  Pattern v = MustParseXPath("a//b");
  Pattern r = MustParseXPath("b//c[//d]");
  EXPECT_TRUE(Isomorphic(Compose(r, v), MustParseXPath("a//b//c[//d]")));
}

TEST(ComposeTest, DepthAdds) {
  Pattern v = MustParseXPath("a/b/c");
  Pattern r = MustParseXPath("c/d//e");
  SelectionInfo info(Compose(r, v));
  EXPECT_EQ(info.depth(), 4);
}

TEST(SubPatternTest, Basics) {
  Pattern p = MustParseXPath("a[q]/b[x//y]/c[z]");
  Pattern p1 = SubPattern(p, 1);
  EXPECT_TRUE(Isomorphic(p1, MustParseXPath("b[x//y]/c[z]")));
  Pattern p2 = SubPattern(p, 2);
  EXPECT_TRUE(Isomorphic(p2, MustParseXPath("c[z]")));
  Pattern p0 = SubPattern(p, 0);
  EXPECT_TRUE(Isomorphic(p0, p));
}

TEST(UpperPatternTest, Basics) {
  Pattern p = MustParseXPath("a[q]/b[x]/c[z]");
  Pattern up1 = UpperPattern(p, 1);
  EXPECT_TRUE(Isomorphic(up1, MustParseXPath("a[q]/b[x]")));
  Pattern up0 = UpperPattern(p, 0);
  EXPECT_TRUE(Isomorphic(up0, MustParseXPath("a[q]")));
  Pattern up2 = UpperPattern(p, 2);
  EXPECT_TRUE(Isomorphic(up2, p));
}

TEST(UpperPatternTest, KeepsBranchesOfKNode) {
  Pattern p = MustParseXPath("a/b[x][y]/c");
  Pattern up = UpperPattern(p, 1);
  EXPECT_TRUE(Isomorphic(up, MustParseXPath("a/b[x][y]")));
}

TEST(SubUpperTest, CombineReassemblesWhenDescendantEntersKNode) {
  // If a descendant edge enters the k-node, P^{<k} (k-1)=> P^{>=k} is P.
  Pattern p = MustParseXPath("a/b//c/d");
  Pattern upper = UpperPattern(p, 1);  // P^{<2} = P^{<=1}.
  Pattern lower = SubPattern(p, 2);
  Pattern recombined = Combine(upper, 1, lower);
  EXPECT_TRUE(Isomorphic(recombined, p));
}

TEST(RelaxTest, RelaxesOnlyRootEdges) {
  Pattern q = MustParseXPath("a[b/c]/d/e");
  Pattern relaxed = RelaxRootEdges(q);
  EXPECT_TRUE(Isomorphic(relaxed, MustParseXPath("a[//b/c]//d/e")));
}

TEST(RelaxTest, NoEdgesNoChange) {
  Pattern q = MustParseXPath("a");
  EXPECT_TRUE(Isomorphic(RelaxRootEdges(q), q));
}

TEST(ExtendTest, AddsOutputChildAndLeafWildcards) {
  // Q = a[b]/c, leaves are b and c (c is the output).
  Pattern q = MustParseXPath("a[b]/c");
  Pattern extended = Extend(q, L("mu_label"));
  EXPECT_TRUE(Isomorphic(extended, MustParseXPath("a[b/*]/c[mu_label]")));
  // Output unchanged (still the c node).
  EXPECT_EQ(extended.label(extended.output()), L("c"));
}

TEST(ExtendTest, OutputLeafGetsOnlyTheLChild) {
  Pattern q = MustParseXPath("a/b");
  Pattern extended = Extend(q, L("mu_label"));
  // b is a leaf and the output: it gets mu only; a is not a leaf.
  EXPECT_TRUE(Isomorphic(extended, MustParseXPath("a/b[mu_label]")));
}

TEST(ExtendTest, NonLeafOutputGetsLChildToo) {
  Pattern q = MustParseXPath("a/b[c]");
  Pattern extended = Extend(q, L("mu_label"));
  EXPECT_TRUE(Isomorphic(extended,
                         MustParseXPath("a/b[c/*][mu_label]")));
}

TEST(LiftOutputTest, MovesOutputToJNode) {
  Pattern q = MustParseXPath("a/b/c");
  Pattern lifted = LiftOutput(q, 1);
  SelectionInfo info(lifted);
  EXPECT_EQ(info.depth(), 1);
  EXPECT_EQ(lifted.label(lifted.output()), L("b"));
  // Lifting to the current depth is the identity.
  EXPECT_TRUE(Isomorphic(LiftOutput(q, 2), q));
}

TEST(DescendantPrefixTest, Basics) {
  Pattern q = MustParseXPath("b[x]/c");
  Pattern prefixed = DescendantPrefix(LabelStore::kWildcard, q);
  EXPECT_TRUE(Isomorphic(prefixed, MustParseXPath("*//b[x]/c")));
  SelectionInfo info(prefixed);
  EXPECT_EQ(info.depth(), 2);
}

TEST(AlgebraTest, SerializerShowsComposition) {
  Pattern v = MustParseXPath("a[e]/*");
  Pattern r = MustParseXPath("*//b");
  EXPECT_EQ(ToXPath(Compose(r, v)), "a[e]/*//b");
}

}  // namespace
}  // namespace xpv
