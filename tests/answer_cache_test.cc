// The epoch-keyed answer memo: key semantics (scope/epoch/fingerprint
// isolation), the stored stats-delta contract, bounded capacity with
// second-chance eviction, and the capacity-0 disabled mode.

#include "views/answer_cache.h"

#include <gtest/gtest.h>

namespace xpv {
namespace {

AnswerCache::Entry MakeEntry(NodeId output, uint64_t hits) {
  AnswerCache::Entry entry;
  entry.answer.hit = hits > 0;
  entry.answer.view_name = hits > 0 ? "v" : "";
  entry.answer.outputs = {output};
  entry.delta.queries = 1;
  entry.delta.hits = hits;
  return entry;
}

TEST(AnswerCacheTest, LookupReturnsExactlyWhatWasInserted) {
  AnswerCache cache;
  const AnswerCache::Key key{1, 7, 42};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakeEntry(5, 1));

  std::shared_ptr<const AnswerCache::Entry> probe = cache.Lookup(key);
  ASSERT_NE(probe, nullptr);
  EXPECT_TRUE(probe->answer.hit);
  EXPECT_EQ(probe->answer.view_name, "v");
  EXPECT_EQ(probe->answer.outputs, std::vector<NodeId>{5});
  EXPECT_EQ(probe->delta.queries, 1u);
  EXPECT_EQ(probe->delta.hits, 1u);

  const AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCacheTest, KeysIsolateScopeEpochAndFingerprint) {
  AnswerCache cache;
  cache.Insert({1, 7, 42}, MakeEntry(5, 1));
  // Any differing component is a distinct answer space: another document
  // slot, a bumped view-set epoch, another query.
  EXPECT_EQ(cache.Lookup({2, 7, 42}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 8, 42}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 7, 43}), nullptr);
  EXPECT_NE(cache.Lookup({1, 7, 42}), nullptr);
}

TEST(AnswerCacheTest, ReinsertKeepsTheFirstEntry) {
  // Two racing fillers compute the same answer; the second publish must
  // not double-count or replace (answers are deterministic per key).
  AnswerCache cache;
  cache.Insert({1, 1, 1}, MakeEntry(3, 1));
  cache.Insert({1, 1, 1}, MakeEntry(9, 0));
  std::shared_ptr<const AnswerCache::Entry> probe = cache.Lookup({1, 1, 1});
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->answer.outputs, std::vector<NodeId>{3});
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCacheTest, LookupSurvivesEvictionOfItsEntry) {
  // A returned entry is shared ownership: sweeping it out of the table
  // must not invalidate a reader still holding it.
  AnswerCache cache(2);
  cache.Insert({1, 1, 1}, MakeEntry(7, 0));
  std::shared_ptr<const AnswerCache::Entry> held = cache.Lookup({1, 1, 1});
  ASSERT_NE(held, nullptr);
  cache.Clear();  // Strongest form of eviction.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(held->answer.outputs, std::vector<NodeId>{7});
}

TEST(AnswerCacheTest, CapacityBoundsResidencyAndEvictsColdFirst) {
  AnswerCache cache(8);
  for (uint64_t fp = 0; fp < 8; ++fp) {
    cache.Insert({1, 1, fp}, MakeEntry(static_cast<NodeId>(fp), 0));
  }
  EXPECT_EQ(cache.size(), 8u);
  // Touch one entry so the clock's reference bit spares it.
  ASSERT_NE(cache.Lookup({1, 1, 3}), nullptr);

  // Overflow: the sweep evicts cold entries, the hot one survives.
  cache.Insert({1, 1, 100}, MakeEntry(100, 0));
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_NE(cache.Lookup({1, 1, 3}), nullptr);
  EXPECT_NE(cache.Lookup({1, 1, 100}), nullptr);
}

TEST(AnswerCacheTest, SustainedChurnStaysBounded) {
  // Epoch churn (the invalidation pattern): entries keyed on superseded
  // epochs can never be referenced again; residency must stay <= capacity
  // no matter how many epochs pass.
  AnswerCache cache(16);
  for (uint64_t epoch = 0; epoch < 100; ++epoch) {
    for (uint64_t fp = 0; fp < 4; ++fp) {
      cache.Insert({1, epoch, fp}, MakeEntry(static_cast<NodeId>(fp), 0));
    }
  }
  EXPECT_LE(cache.size(), 16u);
  // The newest epoch's entries are resident (stale ones were evicted).
  EXPECT_NE(cache.Lookup({1, 99, 3}), nullptr);
}

TEST(AnswerCacheTest, EraseScopeDropsAllEpochsOfOneScopeOnly) {
  AnswerCache cache;
  cache.Insert({1, 1, 10}, MakeEntry(1, 0));
  cache.Insert({1, 2, 10}, MakeEntry(2, 0));  // Same scope, later epoch.
  cache.Insert({2, 1, 10}, MakeEntry(3, 0));  // Another document.
  EXPECT_EQ(cache.EraseScope(1), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().erased, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // Not capacity pressure.
  EXPECT_EQ(cache.Lookup({1, 1, 10}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 2, 10}), nullptr);
  EXPECT_NE(cache.Lookup({2, 1, 10}), nullptr);
}

TEST(AnswerCacheTest, ZeroCapacityDisablesTheCache) {
  AnswerCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert({1, 1, 1}, MakeEntry(3, 1));
  EXPECT_EQ(cache.Lookup({1, 1, 1}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // Disabled mode is silent: no counters accrue.
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(AnswerCacheTest, ClearDropsEntriesAndCounters) {
  AnswerCache cache;
  cache.Insert({1, 1, 1}, MakeEntry(3, 1));
  ASSERT_NE(cache.Lookup({1, 1, 1}), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({1, 1, 1}), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);  // The post-Clear probe.
}

TEST(AnswerCacheTest, DoorkeeperOffAdmitsFirstSeenKeysUnderPressure) {
  // Default construction: no doorkeeper, inserts under pressure evict
  // immediately (the pre-admission behavior, pinned).
  AnswerCache cache(4);
  for (uint64_t fp = 0; fp < 4; ++fp) {
    cache.Insert({1, 1, fp}, MakeEntry(static_cast<NodeId>(fp), 0));
  }
  cache.Insert({1, 1, 100}, MakeEntry(100, 0));
  EXPECT_NE(cache.Lookup({1, 1, 100}), nullptr);
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 0u);
  EXPECT_FALSE(cache.doorkeeper_enabled());
}

TEST(AnswerCacheTest, DoorkeeperRejectsFirstPresentationAdmitsSecond) {
  AnswerCache cache(4, /*doorkeeper=*/true);
  EXPECT_TRUE(cache.doorkeeper_enabled());
  for (uint64_t fp = 0; fp < 4; ++fp) {
    cache.Insert({1, 1, fp}, MakeEntry(static_cast<NodeId>(fp), 0));
  }
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 0u);  // Below capacity: free.
  // First presentation of a new key at capacity: turned away, nothing
  // evicted, the resident set untouched.
  cache.Insert({1, 1, 100}, MakeEntry(100, 0));
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.Lookup({1, 1, 100}), nullptr);
  EXPECT_EQ(cache.size(), 4u);
  // Second presentation: the key proved it recurs — admitted, and now
  // eviction may make room.
  cache.Insert({1, 1, 100}, MakeEntry(100, 0));
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 1u);
  EXPECT_NE(cache.Lookup({1, 1, 100}), nullptr);
  EXPECT_LE(cache.size(), 4u);
}

TEST(AnswerCacheTest, DoorkeeperShieldsHotEntriesFromOneOffScan) {
  // The motivating workload: a resident hot set plus a scan of
  // singletons. Every singleton is rejected once and never returns, so
  // the hot set survives the entire scan untouched.
  AnswerCache cache(4, /*doorkeeper=*/true);
  for (uint64_t fp = 0; fp < 4; ++fp) {
    cache.Insert({1, 1, fp}, MakeEntry(static_cast<NodeId>(fp), 0));
    ASSERT_NE(cache.Lookup({1, 1, fp}), nullptr);  // Mark hot.
  }
  for (uint64_t fp = 1000; fp < 1100; ++fp) {
    cache.Insert({1, 1, fp}, MakeEntry(7, 0));
  }
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (uint64_t fp = 0; fp < 4; ++fp) {
    EXPECT_NE(cache.Lookup({1, 1, fp}), nullptr) << fp;
  }
}

TEST(AnswerCacheTest, ClearResetsTheDoorkeeper) {
  AnswerCache cache(2, /*doorkeeper=*/true);
  cache.Insert({1, 1, 1}, MakeEntry(1, 0));
  cache.Insert({1, 1, 2}, MakeEntry(2, 0));
  cache.Insert({1, 1, 3}, MakeEntry(3, 0));  // Rejected (remembered).
  ASSERT_EQ(cache.stats().doorkeeper_rejects, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().doorkeeper_rejects, 0u);
  // Post-Clear the table is empty, so the same key inserts pressure-free.
  cache.Insert({1, 1, 3}, MakeEntry(3, 0));
  EXPECT_NE(cache.Lookup({1, 1, 3}), nullptr);
}

}  // namespace
}  // namespace xpv
