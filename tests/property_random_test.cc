// Randomized property sweeps (parameterized by seed). These cross-validate
// independent components against each other:
//   * containment oracle vs. direct evaluation on sampled documents;
//   * homomorphism test soundness and sub-fragment completeness;
//   * engine soundness (every Found rewriting truly composes to P) and
//     certificate soundness (NotExists confirmed by bounded brute force);
//   * weak containment consistency with containment;
//   * algebraic identities (composition depth, candidate containment).

#include <algorithm>
#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/bruteforce.h"
#include "rewrite/engine.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

bool Subset(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// Containment oracle vs. sampled evaluation.
// ---------------------------------------------------------------------------

using ContainmentSamplingTest = SeededTest;

TEST_P(ContainmentSamplingTest, ContainmentAgreesWithSampledEvaluation) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 40;
  topts.alphabet_size = 3;

  for (int round = 0; round < 12; ++round) {
    Pattern p1 = RandomPattern(rng, popts);
    Pattern p2 = RandomPattern(rng, popts);
    ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
    if (Contained(p1, p2, &witness)) {
      // No sampled counterexample may exist: P1(t) ⊆ P2(t) on documents
      // seeded with matches of p1.
      for (int s = 0; s < 6; ++s) {
        Tree t = DocumentWithMatches(rng, p1, topts, 2);
        EXPECT_TRUE(Subset(Eval(p1, t), Eval(p2, t)))
            << ToXPath(p1) << " vs " << ToXPath(p2);
      }
    } else {
      EXPECT_TRUE(ProducesOutput(p1, witness.tree, witness.output))
          << ToXPath(p1);
      EXPECT_FALSE(ProducesOutput(p2, witness.tree, witness.output))
          << ToXPath(p1) << " vs " << ToXPath(p2);
    }
  }
}

TEST_P(ContainmentSamplingTest, WeakContainmentAgreesWithSampledEvaluation) {
  Rng rng(GetParam() ^ 0x5eedULL);
  PatternGenOptions popts;
  popts.max_depth = 2;
  popts.max_branches = 1;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 30;
  topts.alphabet_size = 3;

  for (int round = 0; round < 10; ++round) {
    Pattern p1 = RandomPattern(rng, popts);
    Pattern p2 = RandomPattern(rng, popts);
    ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
    if (WeaklyContained(p1, p2, &witness)) {
      for (int s = 0; s < 5; ++s) {
        Tree t = DocumentWithMatches(rng, p1, topts, 2);
        EXPECT_TRUE(Subset(EvalWeak(p1, t), EvalWeak(p2, t)))
            << ToXPath(p1) << " vs " << ToXPath(p2);
      }
    } else {
      EXPECT_TRUE(WeaklyProducesOutput(p1, witness.tree, witness.output));
      EXPECT_FALSE(WeaklyProducesOutput(p2, witness.tree, witness.output));
    }
  }
}

TEST_P(ContainmentSamplingTest, ContainmentImpliesWeakContainment) {
  // The paper (Section 2.2): containment implies weak containment when the
  // patterns have equal depths (outputs at matching selection depths); in
  // general we verify the counterexample direction: weak non-containment
  // implies non-containment never fails for equal-depth pairs.
  Rng rng(GetParam() ^ 0xabcdULL);
  PatternGenOptions popts;
  popts.max_depth = 2;
  popts.max_branches = 1;
  popts.alphabet_size = 2;
  for (int round = 0; round < 15; ++round) {
    Pattern p1 = RandomPattern(rng, popts);
    Pattern p2 = RandomPattern(rng, popts);
    SelectionInfo i1(p1), i2(p2);
    if (i1.depth() != i2.depth()) continue;
    if (Equivalent(p1, p2)) {
      EXPECT_TRUE(WeaklyEquivalent(p1, p2))
          << ToXPath(p1) << " vs " << ToXPath(p2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSamplingTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Homomorphism: always sound; complete on the three sub-fragments.
// ---------------------------------------------------------------------------

using HomomorphismPropertyTest = SeededTest;

TEST_P(HomomorphismPropertyTest, HomomorphismImpliesContainment) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 2;
  ContainmentOptions no_hom;
  no_hom.use_homomorphism_fast_path = false;
  for (int round = 0; round < 20; ++round) {
    Pattern p1 = RandomPattern(rng, popts);
    Pattern p2 = RandomPattern(rng, popts);
    if (ExistsPatternHomomorphism(p2, p1)) {
      EXPECT_TRUE(Contained(p1, p2, nullptr, nullptr, no_hom))
          << ToXPath(p1) << " vs " << ToXPath(p2);
    }
  }
}

TEST_P(HomomorphismPropertyTest, CompleteOnSubFragments) {
  Rng rng(GetParam() ^ 0xf00dULL);
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 2;
  // Fragment 2 (linear) is excluded: homomorphisms are not complete there.
  for (int fragment = 0; fragment < 2; ++fragment) {
    for (int round = 0; round < 8; ++round) {
      Pattern p1 = RandomSubFragmentPattern(rng, popts, fragment);
      Pattern p2 = RandomSubFragmentPattern(rng, popts, fragment);
      bool hom = ExistsPatternHomomorphism(p2, p1);
      ContainmentOptions no_hom;
      no_hom.use_homomorphism_fast_path = false;
      bool contained = Contained(p1, p2, nullptr, nullptr, no_hom);
      EXPECT_EQ(hom, contained)
          << "fragment " << fragment << ": " << ToXPath(p1) << " vs "
          << ToXPath(p2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomomorphismPropertyTest,
                         ::testing::Values(7u, 17u, 27u));

// ---------------------------------------------------------------------------
// Engine soundness and certificate validity.
// ---------------------------------------------------------------------------

using EnginePropertyTest = SeededTest;

TEST_P(EnginePropertyTest, FoundRewritingsCompose) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 50;
  topts.alphabet_size = 3;

  for (int round = 0; round < 12; ++round) {
    Pattern p = RandomPattern(rng, popts);
    int k = -1;
    Pattern v = PerturbedView(rng, p, &k);
    RewriteResult result = DecideRewrite(p, v);
    if (result.status != RewriteStatus::kFound) continue;
    // Independent verification 1: the equivalence oracle.
    EXPECT_TRUE(Equivalent(Compose(result.rewriting, v), p))
        << "P=" << ToXPath(p) << " V=" << ToXPath(v)
        << " R=" << ToXPath(result.rewriting);
    // Independent verification 2: evaluation on sampled documents,
    // including the R(V(t)) = P(t) end-to-end identity.
    for (int s = 0; s < 3; ++s) {
      Tree t = DocumentWithMatches(rng, p, topts, 2);
      std::vector<NodeId> direct = Eval(p, t);
      std::vector<NodeId> via_view;
      Evaluator r_eval(result.rewriting, t);
      for (NodeId o : Eval(v, t)) {
        auto part = r_eval.OutputsAnchoredAt(o);
        via_view.insert(via_view.end(), part.begin(), part.end());
      }
      std::sort(via_view.begin(), via_view.end());
      via_view.erase(std::unique(via_view.begin(), via_view.end()),
                     via_view.end());
      EXPECT_EQ(direct, via_view)
          << "P=" << ToXPath(p) << " V=" << ToXPath(v);
    }
  }
}

TEST_P(EnginePropertyTest, NotExistsConfirmedByBruteForce) {
  Rng rng(GetParam() ^ 0xbeefULL);
  PatternGenOptions popts;
  popts.max_depth = 2;
  popts.max_branches = 1;
  popts.max_branch_size = 1;
  popts.alphabet_size = 2;
  int checked = 0;
  for (int round = 0; round < 25 && checked < 8; ++round) {
    Pattern p = RandomPattern(rng, popts);
    int k = -1;
    Pattern v = PerturbedView(rng, p, &k);
    RewriteResult result = DecideRewrite(p, v);
    if (result.status != RewriteStatus::kNotExists) continue;
    ++checked;
    BruteForceOptions bf;
    bf.max_nodes = 4;
    bf.budget = 400;
    BruteForceOutcome outcome = BruteForceRewrite(p, v, bf);
    EXPECT_FALSE(outcome.found.has_value())
        << "engine said NotExists but brute force found "
        << ToXPath(*outcome.found) << " for P=" << ToXPath(p)
        << " V=" << ToXPath(v);
  }
}

TEST_P(EnginePropertyTest, PrefixViewsAlwaysRewrite) {
  Rng rng(GetParam() ^ 0xcafeULL);
  PatternGenOptions popts;
  popts.max_depth = 4;
  popts.max_branches = 3;
  popts.alphabet_size = 3;
  for (int round = 0; round < 15; ++round) {
    Pattern p = RandomPattern(rng, popts);
    int k = -1;
    Pattern v = PrefixView(rng, p, &k);
    RewriteResult result = DecideRewrite(p, v);
    EXPECT_EQ(result.status, RewriteStatus::kFound)
        << "P=" << ToXPath(p) << " V=" << ToXPath(v) << ": "
        << result.explanation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(5u, 15u, 25u, 35u));

// ---------------------------------------------------------------------------
// Packed multi-pattern evaluation: one shared DP pass must be
// indistinguishable from evaluating every pattern on its own.
// ---------------------------------------------------------------------------

using MultiEvalPropertyTest = SeededTest;

TEST_P(MultiEvalPropertyTest, PackedEvaluationMatchesPerPatternEvaluation) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 60;
  topts.alphabet_size = 3;

  for (int round = 0; round < 10; ++round) {
    std::vector<Pattern> group;
    const int n = rng.IntIn(2, 6);
    for (int i = 0; i < n; ++i) group.push_back(RandomPattern(rng, popts));
    // Seed the document with matches of one group member so the packed
    // tables are exercised on nonempty results, not only misses.
    Tree t = DocumentWithMatches(
        rng, group[static_cast<size_t>(rng.IntIn(0, n - 1))], topts, 2);
    std::vector<const Pattern*> ptrs;
    for (const Pattern& p : group) ptrs.push_back(&p);
    MultiEvaluator multi(ptrs, t);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(multi.Outputs(static_cast<size_t>(i)),
                Eval(group[static_cast<size_t>(i)], t))
          << "i=" << i << " P=" << ToXPath(group[static_cast<size_t>(i)]);
    }
  }
}

TEST_P(MultiEvalPropertyTest, PackedAnchoredEvaluationMatchesSingle) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 60;
  topts.alphabet_size = 3;

  for (int round = 0; round < 10; ++round) {
    std::vector<Pattern> group;
    const int n = rng.IntIn(2, 5);
    for (int i = 0; i < n; ++i) group.push_back(RandomPattern(rng, popts));
    Tree t = DocumentWithMatches(
        rng, group[static_cast<size_t>(rng.IntIn(0, n - 1))], topts, 2);
    // A handful of random anchors (duplicates and nestings welcome — the
    // anchored walk must deduplicate them).
    std::vector<NodeId> anchors;
    const int na = rng.IntIn(1, 5);
    for (int a = 0; a < na; ++a) {
      anchors.push_back(static_cast<NodeId>(rng.Below(
          static_cast<uint64_t>(t.size()))));
    }
    std::vector<const Pattern*> ptrs;
    for (const Pattern& p : group) ptrs.push_back(&p);
    MultiEvaluator multi(ptrs, t, anchors);
    for (int i = 0; i < n; ++i) {
      const Pattern& p = group[static_cast<size_t>(i)];
      Evaluator single(p, t, anchors);
      EXPECT_EQ(multi.OutputsAnchoredAtAll(static_cast<size_t>(i), anchors),
                single.OutputsAnchoredAtAll(anchors))
          << "i=" << i << " P=" << ToXPath(p);
    }
  }
}

TEST_P(MultiEvalPropertyTest, UnionSweepMatchesPerAnchorUnion) {
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  popts.alphabet_size = 3;
  TreeGenOptions topts;
  topts.max_nodes = 60;
  topts.alphabet_size = 3;

  for (int round = 0; round < 10; ++round) {
    Pattern p = RandomPattern(rng, popts);
    Tree t = DocumentWithMatches(rng, p, topts, 2);
    std::vector<NodeId> anchors;
    const int na = rng.IntIn(1, 6);
    for (int a = 0; a < na; ++a) {
      anchors.push_back(static_cast<NodeId>(rng.Below(
          static_cast<uint64_t>(t.size()))));
    }
    Evaluator ev(p, t, anchors);
    // The multi-anchor sweep must equal the sorted, deduplicated union of
    // the per-anchor sweeps.
    std::vector<NodeId> expected;
    for (NodeId a : anchors) {
      std::vector<NodeId> one = ev.OutputsAnchoredAt(a);
      expected.insert(expected.end(), one.begin(), one.end());
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(ev.OutputsAnchoredAtAll(anchors), expected) << ToXPath(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiEvalPropertyTest,
                         ::testing::Values(7u, 17u, 27u, 37u));

// ---------------------------------------------------------------------------
// Algebraic identities on random patterns.
// ---------------------------------------------------------------------------

using AlgebraPropertyTest = SeededTest;

TEST_P(AlgebraPropertyTest, SubComposePrefixReassemblesP) {
  // Compose(P>=k, P<=k) duplicates the k-node's off-path branches (both
  // operands carry them), so the reassembly is equivalent to P always, and
  // isomorphic exactly when the k-node has no off-path branches.
  Rng rng(GetParam());
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  for (int round = 0; round < 10; ++round) {
    Pattern p = RandomPattern(rng, popts);
    SelectionInfo info(p);
    for (int k = 0; k <= info.depth(); ++k) {
      Pattern reassembled = Compose(SubPattern(p, k), UpperPattern(p, k));
      EXPECT_TRUE(Equivalent(reassembled, p)) << ToXPath(p) << " at k=" << k;
      NodeId knode = info.KNode(k);
      size_t off_path = p.children(knode).size() -
                        (k < info.depth() ? 1 : 0);
      if (off_path == 0) {
        EXPECT_TRUE(Isomorphic(reassembled, p))
            << ToXPath(p) << " at k=" << k;
      }
    }
  }
}

TEST_P(AlgebraPropertyTest, CompositionDepthAdds) {
  Rng rng(GetParam() ^ 0x9999ULL);
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.wildcard_prob = 0.5;
  for (int round = 0; round < 20; ++round) {
    Pattern r = RandomPattern(rng, popts);
    Pattern v = RandomPattern(rng, popts);
    Pattern rv = Compose(r, v);
    if (rv.IsEmpty()) continue;
    SelectionInfo ri(r), vi(v), ci(rv);
    EXPECT_EQ(ci.depth(), ri.depth() + vi.depth());
  }
}

TEST_P(AlgebraPropertyTest, SerializerRoundTripsRandomPatterns) {
  Rng rng(GetParam() ^ 0x1111ULL);
  PatternGenOptions popts;
  popts.max_depth = 5;
  popts.max_branches = 4;
  for (int round = 0; round < 40; ++round) {
    Pattern p = RandomPattern(rng, popts);
    Pattern reparsed = MustParseXPath(ToXPath(p));
    EXPECT_TRUE(Isomorphic(p, reparsed)) << ToXPath(p);
  }
}

TEST_P(AlgebraPropertyTest, RelaxationWeakensThePattern) {
  Rng rng(GetParam() ^ 0x2222ULL);
  PatternGenOptions popts;
  popts.max_depth = 3;
  popts.max_branches = 2;
  for (int round = 0; round < 12; ++round) {
    Pattern p = RandomPattern(rng, popts);
    EXPECT_TRUE(Contained(p, RelaxRootEdges(p))) << ToXPath(p);
  }
}

TEST_P(AlgebraPropertyTest, ExtensionPreservesEquivalenceBothWays) {
  // Prop 5.8: P1 ≡ P2 iff P1^{+µ} ≡ P2^{+µ}. Test the forward direction on
  // pattern/minimized-pattern pairs and the backward on perturbed pairs.
  Rng rng(GetParam() ^ 0x3333ULL);
  PatternGenOptions popts;
  popts.max_depth = 2;
  popts.max_branches = 2;
  popts.alphabet_size = 2;
  LabelId mu = Labels().Fresh("mu_prop");
  for (int round = 0; round < 10; ++round) {
    Pattern p1 = RandomPattern(rng, popts);
    Pattern p2 = RandomPattern(rng, popts);
    EXPECT_EQ(Equivalent(p1, p2), Equivalent(Extend(p1, mu), Extend(p2, mu)))
        << ToXPath(p1) << " vs " << ToXPath(p2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Values(3u, 13u, 23u));

}  // namespace
}  // namespace xpv
