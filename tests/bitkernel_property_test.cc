// Randomized equivalence between the bit-parallel kernel (and the
// incremental canonical-model containment loop built on it) and the
// retained naive reference implementations in eval/reference.h.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "containment/oracle.h"
#include "eval/evaluator.h"
#include "eval/reference.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(BitKernelPropertyTest, EvalAgreesWithNaiveReference) {
  Rng rng(20260730);
  PatternGenOptions pattern_options;
  pattern_options.max_depth = 4;
  pattern_options.max_branches = 3;
  pattern_options.wildcard_prob = 0.4;   // Exercise the wildcard mask path.
  pattern_options.descendant_prob = 0.5; // Exercise the sub() table.
  TreeGenOptions tree_options;
  tree_options.max_nodes = 160;
  for (int i = 0; i < 60; ++i) {
    Pattern p = RandomPattern(rng, pattern_options);
    Tree t = RandomTree(rng, tree_options);
    EXPECT_EQ(Eval(p, t), reference::Eval(p, t)) << p.ToAscii();
    EXPECT_EQ(EvalWeak(p, t), reference::EvalWeak(p, t)) << p.ToAscii();
  }
}

TEST(BitKernelPropertyTest, EvalAgreesOnDocumentsWithPlantedMatches) {
  Rng rng(99);
  PatternGenOptions pattern_options;
  pattern_options.max_depth = 3;
  TreeGenOptions tree_options;
  tree_options.max_nodes = 120;
  for (int i = 0; i < 40; ++i) {
    Pattern p = RandomPattern(rng, pattern_options);
    Tree t = DocumentWithMatches(rng, p, tree_options, 3);
    std::vector<NodeId> fast = Eval(p, t);
    EXPECT_EQ(fast, reference::Eval(p, t)) << p.ToAscii();
    // Planted canonical models must be found by both.
    EXPECT_FALSE(reference::EvalWeak(p, t).empty()) << p.ToAscii();
    EXPECT_EQ(EvalWeak(p, t), reference::EvalWeak(p, t)) << p.ToAscii();
  }
}

TEST(BitKernelPropertyTest, EvalHandlesPatternsWiderThanOneWord) {
  // > 64 pattern nodes forces the multi-word rows of the kernel.
  Pattern p(L("a"));
  NodeId spine = p.root();
  for (int i = 0; i < 40; ++i) {
    spine = p.AddChild(spine, LabelStore::kWildcard,
                       i % 3 == 0 ? EdgeType::kDescendant : EdgeType::kChild);
    p.AddChild(spine, L("side"), EdgeType::kChild);
  }
  p.set_output(spine);
  ASSERT_GT(p.size(), 64);
  Rng rng(7);
  TreeGenOptions tree_options;
  tree_options.max_nodes = 300;
  tree_options.max_depth = 60;
  Tree t = DocumentWithMatches(rng, p, tree_options, 2);
  EXPECT_EQ(Eval(p, t), reference::Eval(p, t));
  EXPECT_EQ(EvalWeak(p, t), reference::EvalWeak(p, t));
}

TEST(BitKernelPropertyTest, HomomorphismAgreesWithNaiveReference) {
  Rng rng(4242);
  PatternGenOptions options;
  options.max_depth = 4;
  options.max_branches = 3;
  options.alphabet_size = 3;
  for (int i = 0; i < 200; ++i) {
    Pattern a = RandomPattern(rng, options);
    Pattern b = RandomPattern(rng, options);
    EXPECT_EQ(ExistsPatternHomomorphism(a, b),
              reference::ExistsPatternHomomorphism(a, b))
        << a.ToAscii() << "\nvs\n"
        << b.ToAscii();
  }
}

TEST(BitKernelPropertyTest, ContainmentAgreesWithNaiveReference) {
  Rng rng(31337);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 2;
  options.wildcard_prob = 0.35;
  options.descendant_prob = 0.4;
  ContainmentOptions no_fast_path;
  no_fast_path.use_homomorphism_fast_path = false;
  for (int i = 0; i < 80; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    const bool expected = reference::Contained(p1, p2);
    // With the fast path (sound) and without (pure incremental loop).
    EXPECT_EQ(Contained(p1, p2), expected) << p1.ToAscii() << p2.ToAscii();
    EXPECT_EQ(Contained(p1, p2, nullptr, nullptr, no_fast_path), expected)
        << p1.ToAscii() << p2.ToAscii();
    EXPECT_EQ(WeaklyContained(p1, p2), reference::WeaklyContained(p1, p2))
        << p1.ToAscii() << p2.ToAscii();
  }
}

TEST(BitKernelPropertyTest, ContainmentReusesOneContextAcrossManyCalls) {
  // The same ContainmentContext must give fresh answers call after call
  // (scratch reuse may never leak state between unrelated instances).
  Rng rng(555);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 2;
  ContainmentContext context;
  for (int i = 0; i < 60; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    EXPECT_EQ(context.Contained(p1, p2), reference::Contained(p1, p2))
        << p1.ToAscii() << p2.ToAscii();
  }
}

TEST(BitKernelPropertyTest, DirectedEdgeCases) {
  // Wildcards, //-chains and output positions that exercised bugs in
  // hand-analysis: each pair checked in both directions and both
  // semantics against the reference.
  const char* patterns[] = {
      "a",           "*",            "a//b",        "a/b",
      "a/*//b",      "a//*/b",       "a//*//b",     "a/*/*/b",
      "*//*",        "a[b]/c",       "a[b][c]//d",  "a[*//b]/c",
      "a//b[c/*]//d", "a/b[//c]",    "*[*]/*",      "a//a//a",
  };
  for (const char* e1 : patterns) {
    for (const char* e2 : patterns) {
      Pattern p1 = MustParseXPath(e1);
      Pattern p2 = MustParseXPath(e2);
      EXPECT_EQ(Contained(p1, p2), reference::Contained(p1, p2))
          << e1 << " vs " << e2;
      EXPECT_EQ(WeaklyContained(p1, p2), reference::WeaklyContained(p1, p2))
          << e1 << " vs " << e2;
    }
  }
}

TEST(BitKernelPropertyTest, OutputNodePlacementEdgeCases) {
  // Same pattern shape, output designated at the root / middle / leaf.
  Pattern base = MustParseXPath("a//b/*//c");
  Rng rng(808);
  TreeGenOptions tree_options;
  tree_options.max_nodes = 100;
  for (NodeId out = 0; out < base.size(); ++out) {
    Pattern p = base;
    p.set_output(out);
    Tree t = DocumentWithMatches(rng, p, tree_options, 2);
    EXPECT_EQ(Eval(p, t), reference::Eval(p, t)) << "output at " << out;
    EXPECT_EQ(EvalWeak(p, t), reference::EvalWeak(p, t))
        << "output at " << out;
    // Containment against a shifted-output variant is sensitive to the
    // output-preservation constraint.
    Pattern q = base;
    q.set_output(base.size() - 1 - out);
    EXPECT_EQ(Contained(p, q), reference::Contained(p, q))
        << "outputs " << out << " / " << base.size() - 1 - out;
  }
}

TEST(BitKernelPropertyTest, WitnessesRemainValidCounterexamples) {
  Rng rng(1234);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 2;
  int refuted = 0;
  for (int i = 0; i < 60 || refuted < 5; ++i) {
    ASSERT_LT(i, 400) << "generator never produced refuted containments";
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
    if (!Contained(p1, p2, &witness)) {
      ++refuted;
      // The witness produced by the scratch-reuse loop must genuinely
      // separate the patterns.
      EXPECT_TRUE(reference::ProducesOutput(p1, witness.tree, witness.output));
      EXPECT_FALSE(
          reference::ProducesOutput(p2, witness.tree, witness.output));
    }
  }
}

TEST(BitKernelPropertyTest, EvalScratchUpdateGrowsBeyondInitialCapacity) {
  // Exercises the grow-and-copy branch of EvalScratch::Update directly:
  // Compute with no row-capacity hint, then grow the tree and update.
  Pattern p = MustParseXPath("a//b[c]/d");
  Tree t(L("a"));
  NodeId b = t.AddChild(t.root(), L("b"));
  t.AddChild(b, L("c"));
  EvalScratch scratch;
  scratch.Compute(p, t);  // Capacity = 3 rows, no hint.

  const NodeId suffix_start = t.size();
  NodeId mid = t.AddChild(b, L("x"));
  NodeId b2 = t.AddChild(mid, L("b"));
  t.AddChild(b2, L("c"));
  t.AddChild(b2, L("d"));
  scratch.Update(t, suffix_start, {b, t.root()});

  EvalScratch fresh;
  fresh.Compute(p, t);
  for (NodeId v = 0; v < t.size(); ++v) {
    for (NodeId q = 0; q < p.size(); ++q) {
      EXPECT_EQ(scratch.Down(v, q), fresh.Down(v, q)) << v << "," << q;
      EXPECT_EQ(scratch.Sub(v, q), fresh.Sub(v, q)) << v << "," << q;
    }
  }
}

TEST(BitKernelPropertyTest, TreeTruncateToRestoresPrefix) {
  Tree t(L("r"));
  NodeId a = t.AddChild(t.root(), L("a"));
  NodeId b = t.AddChild(t.root(), L("b"));
  NodeId c = t.AddChild(a, L("c"));
  const int prefix_size = t.size();
  t.AddChild(c, L("x"));
  t.AddChild(b, L("y"));
  t.AddChild(t.root(), L("z"));
  t.TruncateTo(prefix_size);
  EXPECT_EQ(t.size(), prefix_size);
  EXPECT_EQ(t.children(t.root()), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(t.children(a), std::vector<NodeId>{c});
  EXPECT_TRUE(t.children(b).empty());
  EXPECT_TRUE(t.children(c).empty());
  // The truncated slots must be reusable.
  NodeId d = t.AddChild(b, L("d"));
  EXPECT_EQ(d, prefix_size);
  EXPECT_EQ(t.children(b), std::vector<NodeId>{d});
}

}  // namespace
}  // namespace xpv
