#include "rewrite/engine.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

RewriteResult Decide(const char* p, const char* v, RewriteOptions options = {}) {
  return DecideRewrite(MustParseXPath(p), MustParseXPath(v), options);
}

/// Every kFound result must satisfy R ∘ V ≡ P; verify with an independent
/// containment call.
void ExpectSound(const char* p, const char* v, const RewriteResult& result) {
  ASSERT_EQ(result.status, RewriteStatus::kFound) << result.explanation;
  EXPECT_TRUE(
      Equivalent(Compose(result.rewriting, MustParseXPath(v)),
                 MustParseXPath(p)))
      << "R = " << ToXPath(result.rewriting);
}

TEST(EngineTest, PrefixViewAlwaysRewrites) {
  // V = P<=k: the candidate P>=k recomposes P exactly.
  RewriteResult r = Decide("a[e]/b//c[x]/d", "a[e]/b");
  ExpectSound("a[e]/b//c[x]/d", "a[e]/b", r);
  EXPECT_TRUE(Isomorphic(r.rewriting, MustParseXPath("b//c[x]/d")));
  EXPECT_EQ(r.stats.equivalence_tests, 1);
}

TEST(EngineTest, FigureTwoStyleRelaxedCandidateWins) {
  // P = a//*/b, V = a/*: P>=1 = */b composes to a/*/b ≢ P, but the relaxed
  // candidate *//b composes to a/*//b ≡ a//*/b (Thm 4.10's example shape).
  RewriteResult r = Decide("a//*/b", "a/*");
  ExpectSound("a//*/b", "a/*", r);
  EXPECT_TRUE(Isomorphic(r.rewriting, MustParseXPath("*//b")));
  EXPECT_EQ(r.stats.equivalence_tests, 2);
}

TEST(EngineTest, DepthExceededIsNotExists) {
  RewriteResult r = Decide("a/b", "a/b/c");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->rule, RuleId::kDepthExceeded);
  EXPECT_EQ(r.stats.equivalence_tests, 0);
}

TEST(EngineTest, LabelMismatchIsNotExists) {
  RewriteResult r = Decide("a/b/c", "a/x");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->rule, RuleId::kSelectionLabelMismatch);
}

TEST(EngineTest, WildcardKNodeWithSigmaViewOutputIsNotExists) {
  // Noted after Thm 4.3: if the k-node of P is '*' and out(V) is not,
  // there is no rewriting.
  RewriteResult r = Decide("a/*/c", "a/b");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
}

TEST(EngineTest, EqualDepthFound) {
  RewriteResult r = Decide("a/b[c]", "a/b");
  ExpectSound("a/b[c]", "a/b", r);
  // The rewriting is the single node b[c].
  EXPECT_TRUE(Isomorphic(r.rewriting, MustParseXPath("b[c]")));
}

TEST(EngineTest, EqualDepthNotExists) {
  // V requires a branch that P lacks: R∘V always keeps V's [x] branch, so
  // P ⊑ R∘V fails; with k = d the candidate is potential, so NotExists.
  RewriteResult r = Decide("a/b", "a/b[x]");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kEqualDepths);
}

TEST(EngineTest, ViewOutputAtRootFound) {
  // k = 0 (Prop 3.5): R = P itself works when V's constraints are implied.
  RewriteResult r = Decide("a[b]/c", "a[b]");
  ExpectSound("a[b]/c", "a[b]", r);
}

TEST(EngineTest, ViewOutputAtRootNotExists) {
  // V = a[x] constrains the root with x, which P = a/c does not imply.
  RewriteResult r = Decide("a/c", "a[x]");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kViewOutputIsRoot);
}

TEST(EngineTest, StableRuleNotExists) {
  // P>=1 = b//d is stable; candidate fails because V carries an extra [x].
  RewriteResult r = Decide("a//b//d", "a//b[x]");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kStableSubPattern);
}

TEST(EngineTest, DescendantIntoViewOutputFound) {
  RewriteResult r = Decide("a//b/c", "a//b");
  ExpectSound("a//b/c", "a//b", r);
}

TEST(EngineTest, ChildOnlyQueryPrefixNotExists) {
  // Thm 4.4 certifies: P's first k selection edges are child edges, the
  // candidate fails (V has an extra branch), so no rewriting exists.
  RewriteResult r = Decide("a/b//c", "a/b[x]");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.completeness.has_value());
}

TEST(EngineTest, CorrespondingLastDescendantNotExists) {
  // Thm 4.16: P's last selection // (depth 1) corresponds to V's // at
  // depth 1; candidates fail because of V's extra [z] branch.
  RewriteResult r = Decide("a//*/*/c", "a//*[z]/*");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(),
            RuleId::kCorrespondingLastDescendant);
}

TEST(EngineTest, SuffixReductionNotExists) {
  // Cor 5.7 via the *// reduction; see rules_test for the condition
  // analysis. V's branch [q] under the output makes the candidates fail.
  RewriteResult r = Decide("a//*[b]/*/*/b", "a/*//*[q]/*");
  EXPECT_EQ(r.status, RewriteStatus::kNotExists);
}

TEST(EngineTest, UnknownWhenNothingApplies) {
  RewriteResult r =
      Decide("a//*[b//x]/*//*[b//x]/*", "a//*[b//x]/*[w]");
  // Both candidates genuinely fail here; no condition applies. Without
  // brute force the engine must admit ignorance rather than guess.
  EXPECT_EQ(r.status, RewriteStatus::kUnknown);
}

TEST(EngineTest, BruteForceUpgradesUnknownToFound) {
  // Hand-crafted instance where the natural candidates fail but a
  // *smaller* rewriting exists: impossible under the completeness
  // conditions; instead verify brute force on a case where candidates
  // succeed is not even reached, and on an Unknown case it terminates.
  RewriteOptions options;
  options.enable_brute_force = true;
  options.brute_force_max_nodes = 4;
  options.brute_force_budget = 500;
  RewriteResult r =
      Decide("a//*[b//x]/*//*[b//x]/*", "a//*[b//x]/*[w]", options);
  EXPECT_TRUE(r.status == RewriteStatus::kUnknown ||
              r.status == RewriteStatus::kFound);
  EXPECT_TRUE(r.stats.used_brute_force);
  EXPECT_GT(r.stats.bruteforce_candidates, 0u);
}

TEST(EngineTest, ExplanationsAreInformative) {
  RewriteResult found = Decide("a/b/c", "a/b");
  EXPECT_NE(found.explanation.find("found"), std::string::npos);
  RewriteResult missing = Decide("a/b", "a/b/c");
  EXPECT_NE(missing.explanation.find("no rewriting"), std::string::npos);
}

TEST(EngineTest, WildcardViewChainsCompose) {
  // V = a/*/*: pure wildcard prefix view; P = a/*/*/d.
  RewriteResult r = Decide("a/*/*/d", "a/*/*");
  ExpectSound("a/*/*/d", "a/*/*", r);
  EXPECT_TRUE(Isomorphic(r.rewriting, MustParseXPath("*/d")));
}

TEST(EngineTest, ViewWithExtraBranchStillRewritesWhenImplied) {
  // V's extra branch [b] is implied by P itself, so the candidate works.
  RewriteResult r = Decide("a[b]/c/d", "a[b]/c");
  ExpectSound("a[b]/c/d", "a[b]/c", r);
}

TEST(EngineTest, DescendantViewEdgeMatchingQuery) {
  RewriteResult r = Decide("a//b//c//d", "a//b//c");
  ExpectSound("a//b//c//d", "a//b//c", r);
}

TEST(EngineTest, OutputSubtreeBranchesSurvive) {
  RewriteResult r = Decide("a/b/c[x][y/z]", "a/b");
  ExpectSound("a/b/c[x][y/z]", "a/b", r);
  EXPECT_TRUE(Isomorphic(r.rewriting, MustParseXPath("b/c[x][y/z]")));
}

}  // namespace
}  // namespace xpv
