#include "views/view_selection.h"

#include <gtest/gtest.h>

#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

std::vector<WorkloadQuery> LibraryWorkload() {
  return {
      {MustParseXPath("lib/shelf/book/title"), 10.0},
      {MustParseXPath("lib/shelf/book/author"), 8.0},
      {MustParseXPath("lib/shelf/book[award]/title"), 2.0},
      {MustParseXPath("lib/admin/log/entry"), 1.0},
  };
}

TEST(ViewSelectionTest, CandidateEnumerationCoversPrefixes) {
  std::vector<CandidateView> candidates =
      EnumerateCandidateViews(LibraryWorkload());
  // Every candidate answers at least one query.
  for (const CandidateView& c : candidates) {
    EXPECT_FALSE(c.answers.empty()) << ToXPath(c.pattern);
    EXPECT_GT(c.covered_weight, 0.0);
  }
  // The shared prefix lib/shelf/book must be among the candidates and
  // must answer the three book queries.
  bool found_book_view = false;
  for (const CandidateView& c : candidates) {
    if (ToXPath(c.pattern) == "lib/shelf/book") {
      found_book_view = true;
      EXPECT_EQ(c.answers.size(), 3u);
      EXPECT_DOUBLE_EQ(c.covered_weight, 20.0);
    }
  }
  EXPECT_TRUE(found_book_view);
}

TEST(ViewSelectionTest, GreedyPicksTheSharedPrefixFirst) {
  ViewSelectionOptions options;
  options.max_views = 1;
  ViewSelectionResult result = SelectViews(LibraryWorkload(), options);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_DOUBLE_EQ(result.chosen[0].covered_weight, 20.0);
  EXPECT_DOUBLE_EQ(result.covered_weight, 20.0);
  EXPECT_DOUBLE_EQ(result.total_weight, 21.0);
}

TEST(ViewSelectionTest, SecondViewCoversTheRemainder) {
  ViewSelectionOptions options;
  options.max_views = 2;
  ViewSelectionResult result = SelectViews(LibraryWorkload(), options);
  ASSERT_EQ(result.chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(result.covered_weight, 21.0);  // Full coverage.
}

TEST(ViewSelectionTest, StopsWhenNothingLeftToCover) {
  ViewSelectionOptions options;
  options.max_views = 10;
  ViewSelectionResult result = SelectViews(LibraryWorkload(), options);
  // Two views suffice; further rounds add no gain and must not be chosen.
  EXPECT_EQ(result.chosen.size(), 2u);
}

TEST(ViewSelectionTest, WeightsDriveTheChoice) {
  std::vector<WorkloadQuery> workload = {
      {MustParseXPath("a/b/c"), 1.0},
      {MustParseXPath("x/y/z"), 100.0},
  };
  ViewSelectionOptions options;
  options.max_views = 1;
  ViewSelectionResult result = SelectViews(workload, options);
  ASSERT_EQ(result.chosen.size(), 1u);
  // The chosen view must answer the heavy query.
  bool answers_heavy = false;
  for (int qi : result.chosen[0].answers) {
    if (qi == 1) answers_heavy = true;
  }
  EXPECT_TRUE(answers_heavy);
}

TEST(ViewSelectionTest, EmptyWorkload) {
  ViewSelectionResult result = SelectViews({});
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

TEST(ViewSelectionTest, DepthZeroQueriesYieldNoPrefixViews) {
  std::vector<WorkloadQuery> workload = {{MustParseXPath("a[b]"), 1.0}};
  // The only prefix would be k < depth = 0: none.
  EXPECT_TRUE(EnumerateCandidateViews(workload).empty());
}

}  // namespace
}  // namespace xpv
