#include "rewrite/contained.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(ContainedRewriteTest, EquivalentRewritingIsFoundAndMaximal) {
  Pattern p = MustParseXPath("a/b//c/d");
  Pattern v = MustParseXPath("a/b");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.is_equivalent);
  EXPECT_TRUE(Equivalent(Compose(result.rewriting, v), p));
}

TEST(ContainedRewriteTest, RelaxedCandidateCase) {
  Pattern p = MustParseXPath("a//*/b");
  Pattern v = MustParseXPath("a/*");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.is_equivalent);
}

TEST(ContainedRewriteTest, ProperlyContainedWhenViewOverConstrains) {
  // V = a/b[x]: every composition keeps the [x] branch, so only contained
  // (never equivalent) rewritings of P = a/b/c exist.
  Pattern p = MustParseXPath("a/b/c");
  Pattern v = MustParseXPath("a/b[x]");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.is_equivalent);
  Pattern composition = Compose(result.rewriting, v);
  EXPECT_TRUE(Contained(composition, p));
  EXPECT_FALSE(Contained(p, composition));
}

TEST(ContainedRewriteTest, NoContainedRewritingWhenUpperBranchMissing) {
  // P requires an [x] branch at the root that no R attached at out(V) can
  // enforce: every nonempty composition has models outside P.
  Pattern p = MustParseXPath("a[x]/b");
  Pattern v = MustParseXPath("a/*");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  EXPECT_FALSE(result.found);
}

TEST(ContainedRewriteTest, DepthMismatch) {
  Pattern p = MustParseXPath("a/b");
  Pattern v = MustParseXPath("a/b/c");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_examined, 0);
}

TEST(ContainedRewriteTest, BranchDeletionGrowsTheAnswer) {
  // P = a/b/c, V = a/b: P>=1 = b/c is equivalent already; but force the
  // interesting path by over-constraining P's sub-pattern: P has a branch
  // [y] below k that V cannot see — deletion variants are generated, and
  // the undeleted candidate (equivalent) must win as maximal.
  Pattern p = MustParseXPath("a/b/c[y]");
  Pattern v = MustParseXPath("a/b");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.is_equivalent);
  EXPECT_TRUE(Isomorphic(result.rewriting, MustParseXPath("b/c[y]")));
}

TEST(ContainedRewriteTest, MaximalAmongExaminedIsNotDominated) {
  Rng rng(99);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 3;
  for (int round = 0; round < 10; ++round) {
    Pattern p = RandomPattern(rng, options);
    int k = -1;
    Pattern v = PerturbedView(rng, p, &k);
    ContainedRewriteResult result = FindContainedRewriting(p, v);
    if (!result.found) continue;
    Pattern winner = Compose(result.rewriting, v);
    // Soundness: winner ⊑ P.
    EXPECT_TRUE(Contained(winner, p))
        << "P=" << ToXPath(p) << " V=" << ToXPath(v);
    // The natural candidate P>=k must not strictly dominate the winner
    // while being contained (it is always in the pool).
    Pattern sub_comp = Compose(SubPattern(p, k), v);
    if (!sub_comp.IsEmpty() && Contained(sub_comp, p)) {
      EXPECT_FALSE(Contained(winner, sub_comp) &&
                   !Contained(sub_comp, winner))
          << "P=" << ToXPath(p) << " V=" << ToXPath(v);
    }
  }
}

TEST(ContainedRewriteTest, StatsAreReported) {
  Pattern p = MustParseXPath("a/b[x][y]/c");
  Pattern v = MustParseXPath("a/b");
  ContainedRewriteResult result = FindContainedRewriting(p, v);
  EXPECT_GT(result.candidates_examined, 1);
  EXPECT_GE(result.candidates_contained, 1);
  EXPECT_FALSE(result.note.empty());
}

}  // namespace
}  // namespace xpv
