#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/xpath_parser.h"
#include "rewrite/gnf.h"
#include "rewrite/stability.h"

namespace xpv {
namespace {

TEST(StabilityTest, NonWildcardRootIsStable) {
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("a//b/*")));
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("b")));
}

TEST(StabilityTest, DepthZeroIsStable) {
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("*[a][b]")));
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("*")));
}

TEST(StabilityTest, FreshBranchLabelIsStable) {
  // Root *, depth >= 1, and the branch label e does not occur in Q>=1.
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("*[e]/b")));
  EXPECT_TRUE(IsStableSufficient(MustParseXPath("*[e//f]/b[c]")));
}

TEST(StabilityTest, InconclusiveCases) {
  // */b: the only Σ-label b occurs in Q>=1 — no sufficient condition.
  EXPECT_FALSE(IsStableSufficient(MustParseXPath("*/b")));
  // *[b]/b: branch label b also appears below the 1-node.
  EXPECT_FALSE(IsStableSufficient(MustParseXPath("*[b]/b")));
  // *//b likewise.
  EXPECT_FALSE(IsStableSufficient(MustParseXPath("*//b")));
}

TEST(StabilityTest, UnstableWitness) {
  // */b is genuinely unstable: */b ≡w *//b but */b ≢ *//b, so the
  // sufficient conditions rightly fail for it.
  Pattern p1 = MustParseXPath("*/b");
  Pattern p2 = MustParseXPath("*//b");
  EXPECT_TRUE(WeaklyEquivalent(p1, p2));
  EXPECT_FALSE(Equivalent(p1, p2));
}

TEST(GnfTest, ChildEdgesOnlyIsInGnf) {
  EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath("a/b[c]/d")));
}

TEST(GnfTest, LinearSuffixSatisfiesGnf) {
  // Descendant edges enter the 1- and 2-nodes, but every Q>=i is linear.
  EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath("a//*//*")));
  EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath("*//*//b")));
}

TEST(GnfTest, StableSuffixSatisfiesGnf) {
  // A descendant edge enters the 1-node b[c]/d, which is stable (root b).
  EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath("a//b[c]/d")));
}

TEST(GnfTest, MixedConditionsPerDepth) {
  // Depth 1: child edge (ok). Depth 2: descendant edge into c[x]/d — the
  // sub-pattern is stable (root c).
  EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath("a/b//c[x]/d")));
}

TEST(GnfTest, ViolatingPattern) {
  // A descendant edge enters the 1-node, which is a branching wildcard
  // sub-pattern *[b]/b: not linear, not stable by the sufficient
  // conditions.
  EXPECT_FALSE(IsInGeneralizedNormalForm(MustParseXPath("a//*[b]/b")));
}

TEST(GnfTest, NfStarPatternsAreAlsoGnf) {
  // Every pattern of NF/* (child edges into non-wildcard spine nodes,
  // wildcards only in linear tails) is in GNF/*; spot-check shapes.
  for (const char* expr : {"a/b/c", "a//b/c[d]", "a/b//c", "a//*"}) {
    EXPECT_TRUE(IsInGeneralizedNormalForm(MustParseXPath(expr))) << expr;
  }
}

}  // namespace
}  // namespace xpv
