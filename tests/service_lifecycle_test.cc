// Generation-tagged handle lifecycle of the serving facade:
// RemoveDocument/RemoveView/ReplaceDocument recycle slots through free
// lists while every outstanding handle stays *detectably* stale
// (kStaleHandle), including handles minted by a different Service
// instance — a recycled or foreign handle must never silently resolve to
// the wrong document or view.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

TEST(ServiceLifecycleTest, RemoveDocumentInvalidatesEveryEntryPoint) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ServiceResult<ViewId> view = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(service.Answer(doc, "a/b/c").ok());

  ASSERT_TRUE(service.RemoveDocument(doc).ok());
  EXPECT_EQ(service.num_documents(), 0);

  // Every lookup on the dead handle reports kStaleHandle (or null for the
  // pointer-returning escape hatches).
  ServiceResult<Answer> answer = service.Answer(doc, "a/b/c");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.error().code, ServiceErrorCode::kStaleHandle);
  EXPECT_EQ(service.document(doc), nullptr);
  EXPECT_EQ(service.cache(doc), nullptr);
  EXPECT_EQ(service.num_views(doc), 0);
  EXPECT_EQ(service.view(view.value()), nullptr);

  ServiceResult<ViewId> add = service.AddView(doc, "w", "a/b");
  ASSERT_FALSE(add.ok());
  EXPECT_EQ(add.error().code, ServiceErrorCode::kStaleHandle);

  // Removing twice is stale, not a crash or a double free.
  ServiceStatus again = service.RemoveDocument(doc);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ServiceErrorCode::kStaleHandle);
}

TEST(ServiceLifecycleTest, RecycledDocumentSlotRejectsTheOldHandle) {
  Service service;
  DocumentId first = service.AddDocument(Doc("<a><b/></a>"));
  ASSERT_TRUE(service.RemoveDocument(first).ok());

  // The freed slot is recycled for the next document...
  DocumentId second = service.AddDocument(Doc("<r><s/></r>"));
  EXPECT_EQ(second.slot, first.slot);
  // ...under a different generation, so the handles stay distinct and the
  // old one keeps failing instead of resolving to the new document.
  EXPECT_NE(second.generation, first.generation);
  EXPECT_NE(first, second);
  EXPECT_EQ(service.document(first), nullptr);
  ServiceResult<Answer> stale = service.Answer(first, "a/b");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, ServiceErrorCode::kStaleHandle);

  ASSERT_NE(service.document(second), nullptr);
  EXPECT_TRUE(service.Answer(second, "r/s").ok());
  EXPECT_EQ(service.num_documents(), 1);
}

TEST(ServiceLifecycleTest, ForeignServiceHandleIsRejected) {
  // Regression: both Services mint slot 0 first, so a dense un-tagged
  // handle from one used on the other silently returned the WRONG
  // document. The instance tag now rejects it with kStaleHandle.
  Service one;
  Service two;
  DocumentId doc_one = one.AddDocument(Doc("<a><b/></a>"));
  DocumentId doc_two = two.AddDocument(Doc("<x><y/></x>"));
  EXPECT_EQ(doc_one.slot, doc_two.slot);
  EXPECT_NE(doc_one, doc_two);

  EXPECT_EQ(two.document(doc_one), nullptr);
  EXPECT_EQ(one.document(doc_two), nullptr);

  ServiceResult<Answer> crossed = two.Answer(doc_one, "a/b");
  ASSERT_FALSE(crossed.ok());
  EXPECT_EQ(crossed.error().code, ServiceErrorCode::kStaleHandle);

  ServiceResult<ViewId> crossed_view = two.AddView(doc_one, "v", "a/b");
  ASSERT_FALSE(crossed_view.ok());
  EXPECT_EQ(crossed_view.error().code, ServiceErrorCode::kStaleHandle);

  ServiceStatus crossed_remove = two.RemoveDocument(doc_one);
  ASSERT_FALSE(crossed_remove.ok());
  EXPECT_EQ(crossed_remove.error().code, ServiceErrorCode::kStaleHandle);

  // View handles carry the foreign document and are rejected the same way.
  ServiceResult<ViewId> view_one = one.AddView(doc_one, "v", "a/b");
  ASSERT_TRUE(view_one.ok());
  EXPECT_EQ(two.view(view_one.value()), nullptr);
  ServiceStatus crossed_view_remove = two.RemoveView(view_one.value());
  ASSERT_FALSE(crossed_view_remove.ok());
  EXPECT_EQ(crossed_view_remove.error().code,
            ServiceErrorCode::kStaleHandle);

  // Both Services still serve their own handles.
  EXPECT_TRUE(one.Answer(doc_one, "a/b").ok());
  EXPECT_TRUE(two.Answer(doc_two, "x/y").ok());
}

TEST(ServiceLifecycleTest, NeverMintedHandleIsUnknownNotStale) {
  Service service;
  (void)service.AddDocument(Doc("<a/>"));  // discard: the handle is deliberately lost — the test probes never-minted handles
  // Default and hand-rolled handles were never minted by ANY Service:
  // they report kUnknownDocument (stale is reserved for handles that once
  // resolved here or were minted elsewhere).
  ServiceResult<Answer> unknown = service.Answer(DocumentId{}, "a");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ServiceErrorCode::kUnknownDocument);
  ServiceResult<Answer> forged = service.Answer(DocumentId{7}, "a");
  ASSERT_FALSE(forged.ok());
  EXPECT_EQ(forged.error().code, ServiceErrorCode::kUnknownDocument);
}

TEST(ServiceLifecycleTest, RemoveViewStopsAnsweringAndRecyclesTheSlot) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b><d/></a>"));
  ServiceResult<ViewId> view = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(view.ok());
  ServiceResult<Answer> before = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().hit);

  ASSERT_TRUE(service.RemoveView(view.value()).ok());
  EXPECT_EQ(service.num_views(doc), 0);
  EXPECT_EQ(service.view(view.value()), nullptr);

  // The query still answers (direct evaluation), just not through the
  // dead view — and outputs stay correct.
  ServiceResult<Answer> after = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().hit);
  EXPECT_EQ(after.value().outputs, before.value().outputs);

  // Double remove is stale.
  ServiceStatus again = service.RemoveView(view.value());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ServiceErrorCode::kStaleHandle);

  // The name and the slot are recycled — under a fresh generation, so the
  // old handle still fails instead of resolving to the new view.
  ServiceResult<ViewId> reused = service.AddView(doc, "v", "a/d");
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(reused.value().slot, view.value().slot);
  EXPECT_NE(reused.value().generation, view.value().generation);
  EXPECT_EQ(service.view(view.value()), nullptr);
  ASSERT_NE(service.view(reused.value()), nullptr);
  EXPECT_EQ(service.view(reused.value())->name, "v");
  EXPECT_EQ(service.num_views(doc), 1);

  // The recycled slot answers for its new definition.
  ServiceResult<Answer> via_new = service.Answer(doc, "a/d");
  ASSERT_TRUE(via_new.ok());
  EXPECT_TRUE(via_new.value().hit);
  EXPECT_EQ(via_new.value().view_name, "v");
}

TEST(ServiceLifecycleTest, RemovedViewNoLongerShadowsLaterViews) {
  // ScanViews probes slots in order; a removed slot must be skipped, not
  // answered from its tombstone.
  Service service;
  DocumentId doc =
      service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ServiceResult<ViewId> v0 = service.AddView(doc, "v0", "a/b");
  ASSERT_TRUE(v0.ok());
  ServiceResult<ViewId> v1 = service.AddView(doc, "v1", "a//b");
  ASSERT_TRUE(v1.ok());

  ServiceResult<Answer> first = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().view_name, "v0");

  ASSERT_TRUE(service.RemoveView(v0.value()).ok());
  ServiceResult<Answer> second = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().outputs, first.value().outputs);
}

TEST(ServiceLifecycleTest, ReplaceDocumentKeepsHandleDropsViews) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ServiceResult<ViewId> view = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(view.ok());

  ASSERT_TRUE(service.ReplaceDocument(doc, Doc("<a><b><c/><c/></b></a>")).ok());

  // The document handle survives and serves the new tree.
  ASSERT_NE(service.document(doc), nullptr);
  ServiceResult<Answer> answer = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().outputs.size(), 2u);
  EXPECT_EQ(answer.value().outputs,
            Eval(MustParseXPath("a/b/c"), *service.document(doc)));

  // The views died with the old tree: handle stale, count zero.
  EXPECT_EQ(service.num_views(doc), 0);
  EXPECT_EQ(service.view(view.value()), nullptr);
  ServiceStatus removed = service.RemoveView(view.value());
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.error().code, ServiceErrorCode::kStaleHandle);

  // A re-added view reuses slot 0 under a NEVER-seen generation: the
  // pre-replace handle still cannot resolve to it.
  ServiceResult<ViewId> reborn = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(reborn.ok());
  EXPECT_EQ(reborn.value().slot, view.value().slot);
  EXPECT_NE(reborn.value().generation, view.value().generation);
  EXPECT_EQ(service.view(view.value()), nullptr);
  ASSERT_NE(service.view(reborn.value()), nullptr);
}

TEST(ServiceLifecycleTest, ReplaceDocumentParseErrorLeavesTheOldDocument) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  ServiceStatus bad = service.ReplaceDocument(doc, "<a><b></a>");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ServiceErrorCode::kParseError);
  // The old document still serves.
  ASSERT_NE(service.document(doc), nullptr);
  EXPECT_TRUE(service.Answer(doc, "a/b").ok());
}

TEST(ServiceLifecycleTest, BatchSlotsFailAloneOnStaleHandles) {
  Service service;
  DocumentId live = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(live, "v", "a/b").ok());
  DocumentId dead = service.AddDocument(Doc("<x><y/></x>"));
  ASSERT_TRUE(service.RemoveDocument(dead).ok());

  Service other;
  DocumentId foreign = other.AddDocument(Doc("<q><r/></q>"));

  std::vector<BatchItem> items = {
      {live, "a/b/c"},
      {dead, "x/y"},     // Stale: fails alone.
      {foreign, "q/r"},  // Foreign: fails alone.
      {live, "a/b"},
  };
  ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 2);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), items.size());
  EXPECT_TRUE(batch.value().answers[0].ok());
  ASSERT_FALSE(batch.value().answers[1].ok());
  EXPECT_EQ(batch.value().answers[1].error().code,
            ServiceErrorCode::kStaleHandle);
  ASSERT_FALSE(batch.value().answers[2].ok());
  EXPECT_EQ(batch.value().answers[2].error().code,
            ServiceErrorCode::kStaleHandle);
  EXPECT_TRUE(batch.value().answers[3].ok());
  EXPECT_TRUE(batch.value().answers[3].value().hit);
}

TEST(ServiceLifecycleTest, StatsTrackTheLiveSetOnly) {
  Service service;
  DocumentId d1 = service.AddDocument(Doc("<a><b/></a>"));
  DocumentId d2 = service.AddDocument(Doc("<a><b/><c/></a>"));
  ASSERT_TRUE(service.AddView(d1, "v", "a/b").ok());
  ASSERT_TRUE(service.AddView(d2, "v", "a/b").ok());
  ServiceResult<ViewId> w = service.AddView(d2, "w", "a/c");
  ASSERT_TRUE(w.ok());

  EXPECT_EQ(service.stats().documents, 2u);
  EXPECT_EQ(service.stats().views, 3u);

  ASSERT_TRUE(service.RemoveView(w.value()).ok());
  EXPECT_EQ(service.stats().views, 2u);

  ASSERT_TRUE(service.RemoveDocument(d1).ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents, 1u);
  EXPECT_EQ(stats.views, 1u);
  EXPECT_EQ(service.num_documents(), 1);
  // The failed_requests counter survives mutations (none failed here).
  EXPECT_EQ(stats.failed_requests, 0u);
}

TEST(ServiceLifecycleTest, ServingCountersStayCumulativeAcrossRemovals) {
  // stats() totals are monotonic: a removed or replaced document retires
  // its counters into the Service instead of taking them to the grave.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.Answer(doc, "a/b/c").ok());
  ASSERT_EQ(service.stats().queries, 3u);
  const uint64_t hits_before = service.stats().hits;

  ASSERT_TRUE(service.ReplaceDocument(doc, Doc("<a><b/></a>")).ok());
  EXPECT_EQ(service.stats().queries, 3u);
  EXPECT_EQ(service.stats().hits, hits_before);
  ASSERT_TRUE(service.Answer(doc, "a/b").ok());
  EXPECT_EQ(service.stats().queries, 4u);

  ASSERT_TRUE(service.RemoveDocument(doc).ok());
  EXPECT_EQ(service.stats().queries, 4u);
  EXPECT_EQ(service.stats().hits, hits_before);
  EXPECT_EQ(service.stats().documents, 0u);
}

TEST(ServiceLifecycleTest, ViewPointersSurviveLaterAddViews) {
  // The documented contract: a ViewDefinition* from view() stays valid
  // until THAT view is removed or replaced — later AddViews must not
  // invalidate it (view slots live in a deque, not a reallocating
  // vector).
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/><c/><d/><e/></a>"));
  ServiceResult<ViewId> first = service.AddView(doc, "first", "a/b");
  ASSERT_TRUE(first.ok());
  const ViewDefinition* held = service.view(first.value());
  ASSERT_NE(held, nullptr);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        service.AddView(doc, "v" + std::to_string(i), "a/c").ok());
  }
  EXPECT_EQ(held->name, "first");
  EXPECT_EQ(held, service.view(first.value()));
}

TEST(ServiceLifecycleTest, ReAddingARemovedViewNameMintsAFreshHandle) {
  // Regression (tombstone hygiene): re-adding a view under a name freed
  // by RemoveView must succeed with a FRESH ViewId — neither failing
  // kDuplicateViewName (the name is free) nor resurrecting the dead
  // slot's generation (the old handle must stay stale forever).
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b><d/></a>"));
  ServiceResult<ViewId> first = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(service.RemoveView(first.value()).ok());

  ServiceResult<ViewId> second = service.AddView(doc, "v", "a/b");
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_NE(second.value(), first.value());
  EXPECT_NE(second.value().generation, first.value().generation);
  EXPECT_EQ(service.view(first.value()), nullptr);
  ASSERT_NE(service.view(second.value()), nullptr);
  EXPECT_EQ(service.view(second.value())->name, "v");

  // The old handle cannot remove/resolve the reborn view.
  ServiceStatus stale = service.RemoveView(first.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, ServiceErrorCode::kStaleHandle);
  EXPECT_EQ(service.num_views(doc), 1);
  ServiceResult<Answer> answer = service.Answer(doc, "a/b/c");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().hit);
  EXPECT_EQ(answer.value().view_name, "v");
}

TEST(ServiceLifecycleTest, ViewChurnKeepsTheSlotTableBounded) {
  // Service-level half of the tombstone-recycling regression: sustained
  // AddView/RemoveView churn must not grow the per-document view table
  // (or the index every ScanViews loop walks) without bound.
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ServiceResult<ViewId> resident = service.AddView(doc, "keep", "a/b");
  ASSERT_TRUE(resident.ok());
  ASSERT_NE(service.cache(doc), nullptr);
  const size_t slots_before = service.cache(doc)->views().size();

  for (int i = 0; i < 200; ++i) {
    ServiceResult<ViewId> churn =
        service.AddView(doc, "w" + std::to_string(i % 2), "a//b");
    ASSERT_TRUE(churn.ok());
    ASSERT_TRUE(service.RemoveView(churn.value()).ok());
  }
  // One extra slot (the churn views recycle it), not 200.
  EXPECT_LE(service.cache(doc)->views().size(), slots_before + 1);
  EXPECT_EQ(service.cache(doc)->index().size(),
            static_cast<int>(service.cache(doc)->views().size()));
  EXPECT_EQ(service.num_views(doc), 1);
  EXPECT_TRUE(service.Answer(doc, "a/b/c").value().hit);
}

TEST(ServiceLifecycleTest, RecycledDocumentSlotNeverServesMemoizedAnswers) {
  // The answer memo keys on (slot, epoch, fingerprint); the slot's epoch
  // is monotonic across occupants, so a recycled slot can never serve an
  // answer memoized for the document it replaced — even for the same
  // query under a new handle.
  Service service;
  DocumentId first = service.AddDocument(Doc("<a><b><c/></b></a>"));
  ServiceResult<Answer> original = service.Answer(first, "a/b/c");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original.value().outputs.size(), 1u);
  ASSERT_TRUE(service.Answer(first, "a/b/c").ok());  // Memoized now.
  ASSERT_GT(service.stats().answer_cache_entries, 0u);
  ASSERT_TRUE(service.RemoveDocument(first).ok());
  // The dead document's memo entries are purged eagerly, not left to pin
  // their answer vectors until capacity pressure.
  EXPECT_EQ(service.stats().answer_cache_entries, 0u);

  DocumentId second = service.AddDocument(Doc("<a><b><c/><c/></b></a>"));
  ASSERT_EQ(second.slot, first.slot);  // Recycled.
  ServiceResult<Answer> fresh = service.Answer(second, "a/b/c");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().outputs.size(), 2u);
  EXPECT_EQ(fresh.value().outputs,
            Eval(MustParseXPath("a/b/c"), *service.document(second)));
}

TEST(ServiceLifecycleTest, StaleHandleErrorCodeName) {
  EXPECT_STREQ(ToString(ServiceErrorCode::kStaleHandle), "stale_handle");
}

}  // namespace
}  // namespace xpv
