#include "xml/xml_parser.h"

#include <gtest/gtest.h>

#include "xml/xml_writer.h"

namespace xpv {
namespace {

TEST(XmlParserTest, SingleElement) {
  auto result = ParseXml("<doc/>");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().size(), 1);
  EXPECT_EQ(result.value().label(0), L("doc"));
}

TEST(XmlParserTest, NestedElements) {
  auto result = ParseXml("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(result.ok()) << result.error();
  const Tree& t = result.value();
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.label(t.root()), L("a"));
  ASSERT_EQ(t.children(t.root()).size(), 2u);
}

TEST(XmlParserTest, SkipsTextContent) {
  auto result = ParseXml("<a>hello <b>world</b> bye</a>");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().size(), 2);
}

TEST(XmlParserTest, SkipsAttributesCommentsAndDeclaration) {
  auto result = ParseXml(
      "<?xml version=\"1.0\"?><!-- head --><a x=\"1\" y='two'>"
      "<!-- inner --><b z=\"3\"/></a>");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().size(), 2);
}

TEST(XmlParserTest, SkipsDoctype) {
  auto result = ParseXml("<!DOCTYPE a><a/>");
  ASSERT_TRUE(result.ok()) << result.error();
}

TEST(XmlParserTest, RejectsMismatchedTags) {
  auto result = ParseXml("<a><b></a></b>");
  EXPECT_FALSE(result.ok());
}

TEST(XmlParserTest, RejectsUnclosedElement) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
}

TEST(XmlParserTest, RejectsMultipleRoots) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("   \n ").ok());
}

TEST(XmlParserTest, RejectsTextOutsideRoot) {
  EXPECT_FALSE(ParseXml("stray <a/>").ok());
}

TEST(XmlParserTest, RejectsReservedTagNames) {
  EXPECT_FALSE(ParseXml("<a><#bot/></a>").ok());
}

TEST(XmlParserTest, RejectsMalformedAttribute) {
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());
  EXPECT_FALSE(ParseXml("<a attr=novalue></a>").ok());
}

TEST(XmlParserTest, WriterRoundTrip) {
  auto original = ParseXml("<lib><shelf><book/><book/></shelf><desk/></lib>");
  ASSERT_TRUE(original.ok());
  auto reparsed = ParseXml(WriteXml(original.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(original.value().CanonicalEncoding(0),
            reparsed.value().CanonicalEncoding(0));
}

TEST(XmlParserTest, DeeplyNestedRoundTrip) {
  std::string open, close;
  for (int i = 0; i < 40; ++i) {
    open += "<n" + std::to_string(i) + ">";
    close = "</n" + std::to_string(i) + ">" + close;
  }
  auto result = ParseXml(open + close);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().size(), 40);
  EXPECT_EQ(result.value().SubtreeHeight(0), 39);
}

}  // namespace
}  // namespace xpv
