#include "pattern/canonical.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(TauTest, ReplacesWildcardsWithBottom) {
  Pattern p = MustParseXPath("a/*[b]");
  CanonicalModel model = Tau(p);
  EXPECT_EQ(model.tree.size(), 3);
  EXPECT_EQ(model.tree.label(model.tree.root()), L("a"));
  // The * node became ⊥.
  NodeId star_img = model.pattern_to_tree[1];
  EXPECT_EQ(model.tree.label(star_img), LabelStore::kBottom);
}

TEST(TauTest, DescendantEdgesBecomeSingleEdges) {
  Pattern p = MustParseXPath("a//b//c");
  CanonicalModel model = Tau(p);
  EXPECT_EQ(model.tree.size(), 3);
  EXPECT_EQ(model.tree.Depth(model.output), 2);
}

TEST(TauTest, OutputTracksPatternOutput) {
  Pattern p = MustParseXPath("a/b[c]");
  CanonicalModel model = Tau(p);
  EXPECT_EQ(model.output, model.pattern_to_tree[1]);
  EXPECT_EQ(model.tree.label(model.output), L("b"));
}

TEST(CanonicalEnumTest, CountsAndSizes) {
  Pattern p = MustParseXPath("a//b//c");
  CanonicalModelEnumerator en(p, /*max_len=*/3);
  EXPECT_EQ(en.TotalCount(), 9u);
  int count = 0;
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  int max_size = 0;
  while (en.Next(&model)) {
    ++count;
    max_size = std::max(max_size, model.tree.size());
  }
  EXPECT_EQ(count, 9);
  // Longest model: both edges expanded to 3 -> 3 pattern nodes + 4 interior.
  EXPECT_EQ(max_size, 7);
}

TEST(CanonicalEnumTest, NoDescendantEdgesYieldsOneModel) {
  Pattern p = MustParseXPath("a/b[c]");
  CanonicalModelEnumerator en(p, 4);
  EXPECT_EQ(en.TotalCount(), 1u);
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  EXPECT_TRUE(en.Next(&model));
  EXPECT_FALSE(en.Next(&model));
  EXPECT_EQ(model.tree.size(), 3);
}

TEST(CanonicalEnumTest, EveryCanonicalModelIsAModel) {
  Pattern p = MustParseXPath("a//*[b]/c//d");
  CanonicalModelEnumerator en(p, 3);
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  int checked = 0;
  while (en.Next(&model)) {
    EXPECT_TRUE(IsModel(p, model.tree));
    EXPECT_TRUE(ProducesOutput(p, model.tree, model.output));
    ++checked;
  }
  EXPECT_EQ(checked, 9);
}

TEST(CanonicalEnumTest, BuildWithExplicitLengths) {
  Pattern p = MustParseXPath("a//b");
  CanonicalModelEnumerator en(p, 5);
  CanonicalModel model = en.Build({4});
  // Path a -> ⊥ -> ⊥ -> ⊥ -> b.
  EXPECT_EQ(model.tree.size(), 5);
  EXPECT_EQ(model.tree.Depth(model.output), 4);
  EXPECT_EQ(model.tree.label(model.output), L("b"));
  EXPECT_EQ(model.tree.label(1), LabelStore::kBottom);
}

TEST(CanonicalEnumTest, InteriorLabelOverride) {
  Pattern p = MustParseXPath("a//b");
  LabelId fresh = Labels().Fresh("path");
  CanonicalModelEnumerator en(p, 3, fresh);
  CanonicalModel model = en.Build({3});
  EXPECT_EQ(model.tree.label(1), fresh);
  EXPECT_EQ(model.tree.label(2), fresh);
  EXPECT_EQ(model.tree.label(3), L("b"));
}

TEST(CanonicalEnumTest, PatternToTreeMapIsComplete) {
  Pattern p = MustParseXPath("a[x]//b[y/z]");
  CanonicalModelEnumerator en(p, 2);
  CanonicalModel model = en.Build({2});
  for (NodeId n = 0; n < p.size(); ++n) {
    NodeId img = model.pattern_to_tree[static_cast<size_t>(n)];
    ASSERT_NE(img, kNoNode);
    if (p.label(n) != LabelStore::kWildcard) {
      EXPECT_EQ(model.tree.label(img), p.label(n));
    }
  }
}

}  // namespace
}  // namespace xpv
