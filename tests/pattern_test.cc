#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(PatternTest, EmptyPattern) {
  Pattern e = Pattern::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.size(), 0);
  EXPECT_EQ(e.CanonicalEncoding(), "<empty>");
}

TEST(PatternTest, SingleNodeIsRootAndOutput) {
  Pattern p(L("a"));
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_EQ(p.root(), p.output());
  EXPECT_EQ(p.label(p.root()), L("a"));
}

TEST(PatternTest, AddChildTracksEdgesAndParents) {
  Pattern p(L("a"));
  NodeId b = p.AddChild(p.root(), L("b"), EdgeType::kChild);
  NodeId c = p.AddChild(b, L("c"), EdgeType::kDescendant);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.parent(c), b);
  EXPECT_EQ(p.edge(b), EdgeType::kChild);
  EXPECT_EQ(p.edge(c), EdgeType::kDescendant);
}

TEST(PatternTest, HeightOfChainAndStar) {
  Pattern chain = MustParseXPath("a/b/c/d");
  EXPECT_EQ(chain.Height(), 3);
  Pattern star = MustParseXPath("a[b][c][d]");
  EXPECT_EQ(star.Height(), 1);
}

TEST(PatternTest, SubtreeNodesPreorder) {
  Pattern p = MustParseXPath("a[b/c]/d");
  // Parsing order: a=0, b=1, c=2, d=3.
  EXPECT_EQ(p.SubtreeNodes(p.root()), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(p.SubtreeNodes(1), (std::vector<NodeId>{1, 2}));
}

TEST(PatternIsomorphismTest, SiblingOrderIsIgnored) {
  Pattern p1 = MustParseXPath("a[b][c]/d");
  Pattern p2 = MustParseXPath("a[c][b]/d");
  EXPECT_TRUE(Isomorphic(p1, p2));
}

TEST(PatternIsomorphismTest, EdgeTypesMatter) {
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  EXPECT_FALSE(Isomorphic(p1, p2));
}

TEST(PatternIsomorphismTest, OutputDesignationMatters) {
  // a/b with output b vs a[b] with output a: same tree, different output.
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a[b]");
  EXPECT_FALSE(Isomorphic(p1, p2));
}

TEST(PatternIsomorphismTest, LabelsMatter) {
  EXPECT_FALSE(Isomorphic(MustParseXPath("a/b"), MustParseXPath("a/c")));
  EXPECT_FALSE(Isomorphic(MustParseXPath("a/*"), MustParseXPath("a/b")));
}

TEST(PatternIsomorphismTest, EmptyPatterns) {
  EXPECT_TRUE(Isomorphic(Pattern::Empty(), Pattern::Empty()));
  EXPECT_FALSE(Isomorphic(Pattern::Empty(), MustParseXPath("a")));
}

TEST(PatternTest, AsciiMarksOutput) {
  Pattern p = MustParseXPath("a/b[c]");
  std::string art = p.ToAscii();
  EXPECT_NE(art.find("output"), std::string::npos);
}

TEST(PatternTest, SetLabelAndEdgeMutators) {
  Pattern p = MustParseXPath("a/b");
  p.set_label(1, LabelStore::kWildcard);
  p.set_edge(1, EdgeType::kDescendant);
  EXPECT_TRUE(Isomorphic(p, MustParseXPath("a//*")));
}

}  // namespace
}  // namespace xpv
