#include "views/view_index.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "rewrite/rules.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(ViewIndexTest, SummaryCapturesSelectionPath) {
  // The [c] branch is a predicate, not a selection step: the selection
  // path is a -> b -> d -> e.
  Pattern p = MustParseXPath("a/b[c]//d/e");
  SelectionSummary summary = SummarizeSelection(p);
  EXPECT_EQ(summary.depth, 3);
  ASSERT_EQ(summary.path_labels.size(), 4u);
  EXPECT_EQ(summary.path_labels[0], L("a"));
  EXPECT_EQ(summary.path_labels[3], L("e"));
}

TEST(ViewIndexTest, AdmissibleMatchesHandPickedCases) {
  struct Case {
    const char* query;
    const char* view;
    bool admissible;
  };
  const Case cases[] = {
      {"a/b/c", "a/b", true},
      {"a/b/c", "a/x", false},      // Selection-label clash at depth 1.
      {"a/b", "a/b/c", false},      // View deeper than query.
      {"a/b/c", "a/*", true},       // Wildcard output matches anything.
      {"a/*/c", "a/b", false},      // '*' and 'b' differ as symbols.
      {"a/*/c", "a/*", true},
      {"a//b/c", "a//b", true},     // Edge types don't matter for Prop 3.1.
      {"x/y/z", "x/y", true},
  };
  for (const Case& c : cases) {
    SelectionSummary q = SummarizeSelection(MustParseXPath(c.query));
    SelectionSummary v = SummarizeSelection(MustParseXPath(c.view));
    EXPECT_EQ(AdmissibleBySummaries(q, v), c.admissible)
        << c.query << " over " << c.view;
  }
}

TEST(ViewIndexTest, AdmissibleEquivalentToNecessaryConditions) {
  // The pruning index must agree exactly with the engine's step-1 check on
  // random instances — it replaces it on the serving path.
  Rng rng(4242);
  PatternGenOptions options;
  options.min_depth = 1;
  options.max_depth = 4;
  options.max_branches = 2;
  options.wildcard_prob = 0.4;
  options.alphabet_size = 3;
  for (int i = 0; i < 300; ++i) {
    Pattern query = RandomPattern(rng, options);
    Pattern view = RandomPattern(rng, options);
    const bool admissible = AdmissibleBySummaries(SummarizeSelection(query),
                                                  SummarizeSelection(view));
    const bool violates =
        ViolatesBasicNecessaryConditions(query, view).has_value();
    EXPECT_EQ(admissible, !violates) << "iteration " << i;
  }
}

TEST(ViewIndexTest, FirstAdmissibleAndListsAgree) {
  ViewIndex index;
  index.Add(MustParseXPath("a/x"));
  index.Add(MustParseXPath("a/b"));
  index.Add(MustParseXPath("a/b/c"));
  SelectionSummary q = SummarizeSelection(MustParseXPath("a/b/c/d"));
  EXPECT_EQ(index.FirstAdmissible(q), 1);
  std::vector<int> admissible;
  index.AppendAdmissible(q, &admissible);
  EXPECT_EQ(admissible, (std::vector<int>{1, 2}));
  SelectionSummary none = SummarizeSelection(MustParseXPath("z"));
  EXPECT_EQ(index.FirstAdmissible(none), -1);
}

}  // namespace
}  // namespace xpv
