// Incremental document updates (PR 9), layer by layer: tree deltas
// (ApplyDelta report, id remapping, validation), per-view dirtiness
// (SelectionSummary fields + DeltaMayAffectView), incremental view
// maintenance (ViewCache::ApplyUpdate outcomes and epochs), memo validity
// stamps (AnswerCache replace-on-differing-validity, CountScope), and the
// Service facade (UpdateDocument correctness vs. a from-scratch rebuild,
// per-view epoch memo preservation, fallback, counters).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "views/answer_cache.h"
#include "views/view_cache.h"
#include "views/view_index.h"
#include "workload/generator.h"
#include "xml/tree.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

/// From-scratch reference for ApplyDelta: replays the ops naively (inserts
/// append, deletes only record marks), propagates death downward (nodes
/// inserted under a deleted node die with it), and rebuilds the survivor
/// tree in id order — the same order-preserving compaction ApplyDelta
/// promises.
Tree ReferenceApply(const Tree& doc, const DocumentDelta& delta) {
  Tree work = doc;
  std::vector<uint8_t> dead(static_cast<size_t>(work.size()), 0);
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOp::Kind::kInsertSubtree:
        work.GraftCopy(op.node, *op.subtree);
        dead.resize(static_cast<size_t>(work.size()), 0);
        break;
      case DeltaOp::Kind::kDeleteSubtree:
        for (NodeId n : work.SubtreeNodes(op.node)) {
          dead[static_cast<size_t>(n)] = 1;
        }
        break;
      case DeltaOp::Kind::kRelabel:
        work.set_label(op.node, op.label);
        break;
    }
  }
  for (NodeId n = 1; n < work.size(); ++n) {
    if (dead[static_cast<size_t>(work.parent(n))]) {
      dead[static_cast<size_t>(n)] = 1;
    }
  }
  Tree out(work.label(0));
  std::vector<NodeId> map(static_cast<size_t>(work.size()), kNoNode);
  map[0] = out.root();
  for (NodeId n = 1; n < work.size(); ++n) {
    if (dead[static_cast<size_t>(n)]) continue;
    map[static_cast<size_t>(n)] =
        out.AddChild(map[static_cast<size_t>(work.parent(n))], work.label(n));
  }
  return out;
}

void ExpectSameTree(const Tree& got, const Tree& want) {
  ASSERT_EQ(got.size(), want.size());
  for (NodeId n = 0; n < got.size(); ++n) {
    EXPECT_EQ(got.label(n), want.label(n)) << "node " << n;
    EXPECT_EQ(got.parent(n), want.parent(n)) << "node " << n;
  }
}

// ---------------------------------------------------------------- tree layer

TEST(TreeDeltaTest, InsertKeepsExistingIdsStable) {
  Tree t = Doc("<a><b/><c/></a>");
  DocumentDelta delta;
  delta.InsertSubtree(1, Doc("<d><e/></d>"));
  const Tree before = t;
  TreeDeltaReport report = t.ApplyDelta(delta);

  EXPECT_FALSE(report.compacted);
  EXPECT_TRUE(report.remap.empty());
  EXPECT_EQ(report.old_size, 3);
  EXPECT_EQ(report.new_size, 5);
  EXPECT_EQ(report.suffix_start, 3);
  EXPECT_EQ(report.touched_nodes, 2);
  // Every pre-existing node keeps its id and label.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(t.label(n), before.label(n));
    EXPECT_EQ(t.parent(n), before.parent(n));
  }
  // The inserted subtree hangs under node 1 at the id tail.
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_EQ(t.parent(4), 3);
  EXPECT_EQ(t.label(3), L("d"));
  // The insert parent (and its ancestors) are the dirty prefix, descending.
  EXPECT_EQ(report.dirty_prefix_desc, (std::vector<NodeId>{1, 0}));
  // Inserts can only change embeddings at the new nodes' depths and below.
  EXPECT_EQ(report.min_affected_depth, 2);
  // Inserted labels are bloomed.
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("d")), 0u);
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("e")), 0u);
}

TEST(TreeDeltaTest, DeleteCompactsOrderPreserving) {
  Tree t = Doc("<a><b><c/></b><d/></a>");
  DocumentDelta delta;
  delta.DeleteSubtree(1);  // Kills b and its child c.
  TreeDeltaReport report = t.ApplyDelta(delta);

  EXPECT_TRUE(report.compacted);
  EXPECT_EQ(report.new_size, 2);
  ASSERT_EQ(report.remap.size(), 4u);
  EXPECT_EQ(report.remap[0], 0);
  EXPECT_EQ(report.remap[1], kNoNode);
  EXPECT_EQ(report.remap[2], kNoNode);
  EXPECT_EQ(report.remap[3], 1);  // d slides down, order preserved.
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.label(1), L("d"));
  EXPECT_EQ(t.parent(1), 0);
  // Deleted labels are bloomed (the disjointness test must see them).
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("b")), 0u);
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("c")), 0u);
}

TEST(TreeDeltaTest, RelabelReportsBothLabels) {
  Tree t = Doc("<a><b/></a>");
  DocumentDelta delta;
  delta.Relabel(1, L("z"));
  TreeDeltaReport report = t.ApplyDelta(delta);

  EXPECT_FALSE(report.compacted);
  EXPECT_EQ(t.label(1), L("z"));
  EXPECT_EQ(report.touched_nodes, 1);
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("b")), 0u);
  EXPECT_NE(report.label_bloom & LabelBloomBit(L("z")), 0u);
  EXPECT_EQ(report.min_affected_depth, 1);
}

TEST(TreeDeltaTest, ValidateDeltaRejectsBadOps) {
  Tree t = Doc("<a><b/></a>");
  std::string why;

  DocumentDelta root_delete;
  root_delete.DeleteSubtree(0);
  EXPECT_FALSE(t.ValidateDelta(root_delete, &why));
  EXPECT_NE(why.find("root"), std::string::npos);

  DocumentDelta out_of_range;
  out_of_range.Relabel(7, L("x"));
  EXPECT_FALSE(t.ValidateDelta(out_of_range, &why));
  EXPECT_NE(why.find("op 0"), std::string::npos);

  DocumentDelta bad_insert;
  bad_insert.ops.push_back(DeltaOp{DeltaOp::Kind::kInsertSubtree, 0, 0, {}});
  EXPECT_FALSE(t.ValidateDelta(bad_insert, &why));

  // Ops reference the EVOLVING id space: an op may target a node an
  // earlier op of the same delta inserted.
  DocumentDelta evolving;
  evolving.InsertSubtree(1, Doc("<c/>"));
  evolving.Relabel(2, L("d"));  // Node 2 exists only after the insert.
  EXPECT_TRUE(t.ValidateDelta(evolving, &why)) << why;
}

TEST(TreeDeltaTest, InsertUnderDeletedNodeDiesWithIt) {
  Tree t = Doc("<a><b/></a>");
  DocumentDelta delta;
  delta.InsertSubtree(1, Doc("<c/>"));
  delta.DeleteSubtree(1);  // Takes the freshly inserted c down too.
  TreeDeltaReport report = t.ApplyDelta(delta);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(report.new_size, 1);
}

TEST(TreeDeltaTest, RandomDeltasMatchTheReferenceApplier) {
  Rng rng(20260807);
  TreeGenOptions tree_options;
  tree_options.max_nodes = 40;
  DeltaGenOptions delta_options;
  for (int round = 0; round < 200; ++round) {
    Tree t = RandomTree(rng, tree_options);
    DocumentDelta delta = RandomDelta(rng, t, delta_options);
    std::string why;
    ASSERT_TRUE(t.ValidateDelta(delta, &why)) << why;
    const Tree want = ReferenceApply(t, delta);
    TreeDeltaReport report = t.ApplyDelta(delta);
    ExpectSameTree(t, want);
    EXPECT_EQ(report.new_size, t.size());
    if (!report.compacted) {
      EXPECT_TRUE(report.remap.empty());
    } else {
      // Order-preserving: survivor targets are strictly increasing.
      NodeId prev = -1;
      for (NodeId to : report.remap) {
        if (to == kNoNode) continue;
        EXPECT_GT(to, prev);
        prev = to;
      }
    }
  }
}

// ----------------------------------------------------------- dirtiness layer

TEST(DeltaDirtinessTest, SummaryCarriesTheDirtinessFields) {
  SelectionSummary plain = SummarizeSelection(MustParseXPath("a/b[c]"));
  EXPECT_EQ(plain.max_node_depth, 2);  // The branch node c sits at depth 2.
  EXPECT_FALSE(plain.has_wildcard);
  EXPECT_FALSE(plain.has_descendant);
  EXPECT_NE(plain.label_bloom & LabelBloomBit(L("a")), 0u);
  EXPECT_NE(plain.label_bloom & LabelBloomBit(L("b")), 0u);
  EXPECT_NE(plain.label_bloom & LabelBloomBit(L("c")), 0u);

  SelectionSummary deep = SummarizeSelection(MustParseXPath("a//*"));
  EXPECT_TRUE(deep.has_wildcard);
  EXPECT_TRUE(deep.has_descendant);
}

TEST(DeltaDirtinessTest, DepthBoundProvesShallowViewsUntouched) {
  SelectionSummary view = SummarizeSelection(MustParseXPath("a/b"));
  TreeDeltaReport report;
  report.touched_nodes = 1;
  report.label_bloom = view.label_bloom;  // Overlapping labels on purpose.
  report.min_affected_depth = 4;          // Deep in the tree.
  // Child-only embeddings map depth-k pattern nodes to depth-k tree nodes:
  // a delta strictly below the pattern's reach cannot change anything.
  EXPECT_FALSE(DeltaMayAffectView(view, report));

  SelectionSummary descendant = SummarizeSelection(MustParseXPath("a//b"));
  report.label_bloom = descendant.label_bloom;
  EXPECT_TRUE(DeltaMayAffectView(descendant, report));
}

TEST(DeltaDirtinessTest, LabelDisjointnessProvesViewsUntouched) {
  SelectionSummary view = SummarizeSelection(MustParseXPath("a//b"));
  TreeDeltaReport report;
  report.touched_nodes = 1;
  report.min_affected_depth = 0;
  report.label_bloom = LabelBloomBit(L("zz1")) | LabelBloomBit(L("zz2"));
  EXPECT_FALSE(DeltaMayAffectView(view, report));

  report.label_bloom |= LabelBloomBit(L("b"));
  EXPECT_TRUE(DeltaMayAffectView(view, report));

  // A wildcard matches every label: the bloom test cannot clear it.
  SelectionSummary wild = SummarizeSelection(MustParseXPath("a//*"));
  report.label_bloom = LabelBloomBit(L("zz1"));
  EXPECT_TRUE(DeltaMayAffectView(wild, report));
}

// ----------------------------------------------------------- view-cache layer

TEST(ViewCacheUpdateTest, PatchesTouchedViewsAndSkipsUntouchedOnes) {
  Tree t = Doc("<a><b/><b/><c><d/></c></a>");
  ViewCache cache(t);
  const int vb = cache.AddView(ViewDefinition{"b", MustParseXPath("a/b")});
  const int vd = cache.AddView(ViewDefinition{"d", MustParseXPath("a//d")});
  const uint64_t vb_epoch = cache.view_epoch(vb);
  const uint64_t vd_epoch = cache.view_epoch(vd);

  // Insert another b under the root: touches view b (label overlap),
  // provably misses view d (labels disjoint, bloom test).
  DocumentDelta delta;
  delta.InsertSubtree(0, Doc("<b/>"));
  TreeDeltaReport report = t.ApplyDelta(delta);
  ViewUpdateStats stats = cache.ApplyUpdate(report, /*fallback_fraction=*/2.0);

  EXPECT_FALSE(stats.fell_back);
  // First dirty update finds cold DP state: a full pass, counted as a
  // re-materialization.
  EXPECT_EQ(stats.views_rematerialized, 1);
  EXPECT_EQ(stats.views_patched, 0);
  EXPECT_EQ(stats.views_untouched, 1);
  EXPECT_GT(cache.view_epoch(vb), vb_epoch);
  EXPECT_EQ(cache.view_epoch(vd), vd_epoch);
  EXPECT_EQ(cache.views()[static_cast<size_t>(vb)].outputs(),
            Eval(MustParseXPath("a/b"), t));
  EXPECT_EQ(cache.views()[static_cast<size_t>(vd)].outputs(),
            Eval(MustParseXPath("a//d"), t));

  // Second dirty update reuses the persistent DP state: a genuine patch.
  DocumentDelta again;
  again.InsertSubtree(0, Doc("<b/>"));
  report = t.ApplyDelta(again);
  stats = cache.ApplyUpdate(report, 2.0);
  EXPECT_EQ(stats.views_patched, 1);
  EXPECT_EQ(stats.views_rematerialized, 0);
  EXPECT_EQ(stats.views_untouched, 1);
  EXPECT_EQ(cache.views()[static_cast<size_t>(vb)].outputs(),
            Eval(MustParseXPath("a/b"), t));
}

TEST(ViewCacheUpdateTest, OversizedDeltaFallsBackToFullRematerialization) {
  Tree t = Doc("<a><b/></a>");
  ViewCache cache(t);
  const int vb = cache.AddView(ViewDefinition{"b", MustParseXPath("a/b")});
  DocumentDelta delta;
  delta.InsertSubtree(0, Doc("<b><b/><b/><b/></b>"));
  TreeDeltaReport report = t.ApplyDelta(delta);
  ViewUpdateStats stats = cache.ApplyUpdate(report, /*fallback_fraction=*/0.01);
  EXPECT_TRUE(stats.fell_back);
  EXPECT_EQ(stats.views_rematerialized, 1);
  EXPECT_EQ(cache.views()[static_cast<size_t>(vb)].outputs(),
            Eval(MustParseXPath("a/b"), t));
}

TEST(ViewCacheUpdateTest, CompactionRemapsUntouchedViewOutputs) {
  Tree t = Doc("<a><b/><c><d/></c></a>");
  ViewCache cache(t);
  const int vd = cache.AddView(ViewDefinition{"d", MustParseXPath("a//d")});
  const uint64_t shape_epoch = cache.epoch();

  // Delete the b leaf: view d is label-disjoint from the dead region but
  // its output ids slide down — the remap (not an evaluation) fixes them.
  DocumentDelta delta;
  delta.DeleteSubtree(1);
  TreeDeltaReport report = t.ApplyDelta(delta);
  ViewUpdateStats stats = cache.ApplyUpdate(report, 2.0);
  EXPECT_EQ(stats.views_untouched, 1);
  EXPECT_EQ(cache.views()[static_cast<size_t>(vd)].outputs(),
            Eval(MustParseXPath("a//d"), t));
  // Compaction re-keys node ids: the shape epoch must orphan every
  // memoized answer for this document.
  EXPECT_GT(cache.epoch(), shape_epoch);
}

// ---------------------------------------------------------------- memo layer

AnswerCache::Entry MakeEntry(uint64_t validity, NodeId output) {
  AnswerCache::Entry entry;
  entry.answer.outputs = {output};
  entry.validity = validity;
  return entry;
}

TEST(AnswerCacheValidityTest, InsertReplacesOnlyWhenStampsDiffer) {
  AnswerCache cache(/*capacity=*/16, /*doorkeeper=*/false, nullptr);
  const AnswerCache::Key key{1, 1, 42};
  cache.Insert(key, MakeEntry(/*validity=*/5, /*output=*/1));
  // Equal stamps: a racing filler of the same generation — keep the first.
  cache.Insert(key, MakeEntry(5, 2));
  EXPECT_EQ(cache.Lookup(key)->answer.outputs, (std::vector<NodeId>{1}));
  // Differing stamp: a stale-refresh — the fresher answer takes the slot.
  cache.Insert(key, MakeEntry(6, 3));
  EXPECT_EQ(cache.Lookup(key)->answer.outputs, (std::vector<NodeId>{3}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCacheValidityTest, CountScopeFiltersByScopeAndPredicate) {
  AnswerCache cache(16, false, nullptr);
  cache.Insert(AnswerCache::Key{1, 1, 1}, MakeEntry(7, 0));
  cache.Insert(AnswerCache::Key{1, 1, 2}, MakeEntry(8, 0));
  cache.Insert(AnswerCache::Key{2, 1, 3}, MakeEntry(7, 0));
  EXPECT_EQ(cache.CountScope(
                1, [](const AnswerCache::Key&, const AnswerCache::Entry& e) {
                  return e.validity == 7;
                }),
            1u);
  EXPECT_EQ(cache.CountScope(
                1, [](const AnswerCache::Key&, const AnswerCache::Entry&) {
                  return true;
                }),
            2u);
}

// ------------------------------------------------------------- service layer

TEST(ServiceUpdateTest, InvalidDeltaLeavesTheDocumentUntouched) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  DocumentDelta delta;
  delta.DeleteSubtree(0);
  ServiceStatus status = service.UpdateDocument(doc, std::move(delta));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ServiceErrorCode::kInvalidDelta);
  EXPECT_EQ(std::string(ToString(status.error().code)), "invalid_delta");
  EXPECT_EQ(service.document(doc)->size(), 2);
  EXPECT_EQ(service.stats().updates_applied, 0u);
  EXPECT_EQ(service.stats().failed_requests, 1u);
}

TEST(ServiceUpdateTest, StaleHandleIsRejected) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a/>"));
  ASSERT_TRUE(service.RemoveDocument(doc).ok());
  DocumentDelta delta;
  delta.Relabel(0, L("b"));
  ServiceStatus status = service.UpdateDocument(doc, std::move(delta));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ServiceErrorCode::kStaleHandle);
}

TEST(ServiceUpdateTest, ExpiredDeadlineFailsBeforeMutation) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  CallOptions call;
  call.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  DocumentDelta delta;
  delta.Relabel(1, L("z"));
  ServiceStatus status = service.UpdateDocument(doc, std::move(delta), call);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ServiceErrorCode::kDeadlineExceeded);
  EXPECT_EQ(service.document(doc)->label(1), L("b"));
}

TEST(ServiceUpdateTest, ViewHandlesSurviveUpdatesUnlikeReplace) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  ServiceResult<ViewId> view = service.AddView(doc, "b", "a/b");
  ASSERT_TRUE(view.ok());
  DocumentDelta delta;
  delta.InsertSubtree(0, Doc("<b/>"));
  ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok());
  EXPECT_NE(service.view(view.value()), nullptr);
  EXPECT_EQ(service.num_views(doc), 1);
  ServiceResult<Answer> answer = service.Answer(doc, "a/b");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().hit);
  EXPECT_EQ(answer.value().outputs,
            Eval(MustParseXPath("a/b"), *service.document(doc)));
}

TEST(ServiceUpdateTest, AnswersMatchAFreshServiceAfterEveryDelta) {
  Service service;
  DocumentId doc = service.AddDocument(
      Doc("<a><b><c/></b><b/><d><e/><e/></d></a>"));
  ASSERT_TRUE(service.AddView(doc, "b", "a/b").ok());
  ASSERT_TRUE(service.AddView(doc, "e", "a//e").ok());
  const std::vector<std::string> queries = {"a/b", "a/b/c", "a//e", "a/d/e",
                                            "a//*", "a/b[c]"};

  std::vector<DocumentDelta> deltas;
  DocumentDelta d1;
  d1.InsertSubtree(1, Doc("<c><f/></c>"));
  deltas.push_back(std::move(d1));
  DocumentDelta d2;
  d2.Relabel(2, L("e"));
  deltas.push_back(std::move(d2));
  DocumentDelta d3;
  d3.DeleteSubtree(4);  // A subtree delete forces compaction.
  d3.InsertSubtree(0, Doc("<b/>"));
  deltas.push_back(std::move(d3));

  for (DocumentDelta& delta : deltas) {
    ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok());
    // Twin: a fresh service built from the CURRENT document with the same
    // views — the incremental path must be bit-identical to it.
    Service fresh;
    DocumentId fresh_doc = fresh.AddDocument(*service.document(doc));
    ASSERT_TRUE(fresh.AddView(fresh_doc, "b", "a/b").ok());
    ASSERT_TRUE(fresh.AddView(fresh_doc, "e", "a//e").ok());
    for (const std::string& q : queries) {
      ServiceResult<Answer> got = service.Answer(doc, q);
      ServiceResult<Answer> want = fresh.Answer(fresh_doc, q);
      ASSERT_TRUE(got.ok()) << q;
      ASSERT_TRUE(want.ok()) << q;
      EXPECT_EQ(got.value().outputs, want.value().outputs) << q;
      EXPECT_EQ(got.value().hit, want.value().hit) << q;
      EXPECT_EQ(got.value().view_name, want.value().view_name) << q;
    }
  }
}

TEST(ServiceUpdateTest, UntouchedViewMemoSurvivesAsCacheHits) {
  ServiceOptions options;
  options.update_fallback_fraction = 2.0;  // Never fall back here.
  Service service(std::move(options));
  DocumentId doc = service.AddDocument(
      Doc("<a><b/><b/><b/><c><c/><c/></c></a>"));
  ASSERT_TRUE(service.AddView(doc, "b", "a/b").ok());
  ASSERT_TRUE(service.AddView(doc, "c", "a//c").ok());

  // Memoize one answer per view.
  ServiceResult<Answer> qa = service.Answer(doc, "a/b");
  ServiceResult<Answer> qb = service.Answer(doc, "a//c");
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  ASSERT_TRUE(qa.value().hit);
  ASSERT_TRUE(qb.value().hit);

  // Insert + relabel only (no compaction), all labels disjoint from view
  // b's {a, b}: view b is provably untouched; view c is dirty.
  DocumentDelta delta;
  delta.InsertSubtree(4, Doc("<c/>"));
  delta.Relabel(5, L("f"));
  ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok());

  ServiceStats after_update = service.stats();
  EXPECT_EQ(after_update.updates_applied, 1u);
  EXPECT_EQ(after_update.update_views_untouched, 1u);
  EXPECT_EQ(after_update.update_fallbacks, 0u);
  // The untouched view's memo entry is still keyed AND still fresh.
  EXPECT_GE(after_update.update_memo_entries_preserved, 1u);

  // THE PIN: re-answering the untouched view's query replays the memo —
  // no new answer-cache miss, no new oracle miss, and the answer is
  // bit-identical to a fresh evaluation.
  ServiceResult<Answer> qa2 = service.Answer(doc, "a/b");
  ASSERT_TRUE(qa2.ok());
  ServiceStats after_replay = service.stats();
  EXPECT_EQ(after_replay.answer_cache_misses, after_update.answer_cache_misses);
  EXPECT_EQ(after_replay.oracle_misses, after_update.oracle_misses);
  EXPECT_GT(after_replay.answer_cache_hits, after_update.answer_cache_hits);
  EXPECT_EQ(qa2.value().outputs,
            Eval(MustParseXPath("a/b"), *service.document(doc)));

  // The touched view's stale entry is refreshed, not served: the answer
  // reflects the post-delta document.
  ServiceResult<Answer> qb2 = service.Answer(doc, "a//c");
  ASSERT_TRUE(qb2.ok());
  EXPECT_EQ(qb2.value().outputs,
            Eval(MustParseXPath("a//c"), *service.document(doc)));
  // And the refreshed entry serves the NEXT probe without recomputing.
  ServiceStats after_refresh = service.stats();
  ServiceResult<Answer> qb3 = service.Answer(doc, "a//c");
  ASSERT_TRUE(qb3.ok());
  EXPECT_EQ(qb3.value().outputs, qb2.value().outputs);
  EXPECT_EQ(service.stats().answer_cache_misses,
            after_refresh.answer_cache_misses);
}

TEST(ServiceUpdateTest, CompactionInvalidatesTheWholeDocumentMemo) {
  Service service;
  DocumentId doc = service.AddDocument(Doc("<a><b/><c/></a>"));
  ASSERT_TRUE(service.AddView(doc, "b", "a/b").ok());
  ASSERT_TRUE(service.Answer(doc, "a/b").ok());
  ASSERT_GT(service.stats().answer_cache_entries, 0u);

  DocumentDelta delta;
  delta.DeleteSubtree(2);  // Compaction re-keys node ids.
  ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok());
  EXPECT_EQ(service.stats().answer_cache_entries, 0u);

  ServiceResult<Answer> answer = service.Answer(doc, "a/b");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().outputs,
            Eval(MustParseXPath("a/b"), *service.document(doc)));
}

TEST(ServiceUpdateTest, FallbackIsCountedAndStillCorrect) {
  ServiceOptions options;
  options.update_fallback_fraction = 0.01;
  Service service(std::move(options));
  DocumentId doc = service.AddDocument(Doc("<a><b/></a>"));
  ASSERT_TRUE(service.AddView(doc, "b", "a/b").ok());
  DocumentDelta delta;
  delta.InsertSubtree(0, Doc("<b><b/><b/><b/></b>"));
  ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.update_fallbacks, 1u);
  EXPECT_GE(stats.update_views_rematerialized, 1u);
  ServiceResult<Answer> answer = service.Answer(doc, "a/b");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().outputs,
            Eval(MustParseXPath("a/b"), *service.document(doc)));
}

}  // namespace
}  // namespace xpv
