#include "pattern/dot.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

TEST(DotTest, PatternRenderingHasNodesAndEdges) {
  Pattern p = MustParseXPath("a//b[c]/d");
  std::string dot = PatternToDot(p, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // The // edge.
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // The output.
  // Three edges for four nodes.
  size_t arrows = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 3u);
}

TEST(DotTest, EmptyPattern) {
  std::string dot = PatternToDot(Pattern::Empty());
  EXPECT_NE(dot.find("empty"), std::string::npos);
}

TEST(DotTest, WildcardLabelsAreQuotedSafely) {
  Pattern p = MustParseXPath("*/*");
  std::string dot = PatternToDot(p);
  EXPECT_NE(dot.find("label=\"*\""), std::string::npos);
}

TEST(DotTest, TreeRenderingWithHighlight) {
  auto doc = ParseXml("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  std::string dot = TreeToDot(doc.value(), "t", 1);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

TEST(DotTest, TreeRenderingWithoutHighlight) {
  auto doc = ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  std::string dot = TreeToDot(doc.value());
  EXPECT_EQ(dot.find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace xpv
