#include "pattern/xpath_parser.h"

#include <gtest/gtest.h>

#include "pattern/properties.h"
#include "pattern/serializer.h"

namespace xpv {
namespace {

TEST(XPathParserTest, SingleLabel) {
  Pattern p = MustParseXPath("a");
  EXPECT_EQ(p.size(), 1);
  EXPECT_EQ(p.label(0), L("a"));
  EXPECT_EQ(p.output(), p.root());
}

TEST(XPathParserTest, SingleWildcard) {
  Pattern p = MustParseXPath("*");
  EXPECT_EQ(p.label(0), LabelStore::kWildcard);
}

TEST(XPathParserTest, ChildAndDescendantSteps) {
  Pattern p = MustParseXPath("a/b//c");
  ASSERT_EQ(p.size(), 3);
  EXPECT_EQ(p.edge(1), EdgeType::kChild);
  EXPECT_EQ(p.edge(2), EdgeType::kDescendant);
  EXPECT_EQ(p.output(), 2);
}

TEST(XPathParserTest, LeadingSlashIsAccepted) {
  EXPECT_TRUE(Isomorphic(MustParseXPath("/a/b"), MustParseXPath("a/b")));
}

TEST(XPathParserTest, LeadingDoubleSlashAddsWildcardRoot) {
  Pattern p = MustParseXPath("//a");
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.label(0), LabelStore::kWildcard);
  EXPECT_EQ(p.edge(1), EdgeType::kDescendant);
  EXPECT_EQ(p.output(), 1);
}

TEST(XPathParserTest, PredicatesAttachAsBranches) {
  Pattern p = MustParseXPath("a[b][c]/d");
  ASSERT_EQ(p.size(), 4);
  EXPECT_EQ(p.parent(1), 0);
  EXPECT_EQ(p.parent(2), 0);
  EXPECT_EQ(p.parent(3), 0);
  EXPECT_EQ(p.output(), 3);
  SelectionInfo info(p);
  EXPECT_EQ(info.depth(), 1);
}

TEST(XPathParserTest, PredicateWithPath) {
  Pattern p = MustParseXPath("a[b/c//d]/e");
  SelectionInfo info(p);
  EXPECT_EQ(info.depth(), 1);
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.edge(3), EdgeType::kDescendant);  // c//d.
}

TEST(XPathParserTest, PredicateLeadingDescendant) {
  Pattern p = MustParseXPath("a[//b]");
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.edge(1), EdgeType::kDescendant);
  EXPECT_EQ(p.output(), 0);  // Output stays at the root step.
}

TEST(XPathParserTest, NestedPredicates) {
  Pattern p = MustParseXPath("a[b[c][d]]/e");
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.parent(2), 1);
  EXPECT_EQ(p.parent(3), 1);
}

TEST(XPathParserTest, OutputIsLastTopLevelStepEvenWithPredicates) {
  Pattern p = MustParseXPath("a/b[c]");
  EXPECT_EQ(p.output(), 1);
  EXPECT_EQ(p.label(p.output()), L("b"));
}

TEST(XPathParserTest, WhitespaceTolerated) {
  EXPECT_TRUE(Isomorphic(MustParseXPath(" a / b [ c ] "),
                         MustParseXPath("a/b[c]")));
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("a[").ok());
  EXPECT_FALSE(ParseXPath("a]").ok());
  EXPECT_FALSE(ParseXPath("a/").ok());
  EXPECT_FALSE(ParseXPath("/").ok());
  EXPECT_FALSE(ParseXPath("a[]").ok());
  EXPECT_FALSE(ParseXPath("a//[b]").ok());
  EXPECT_FALSE(ParseXPath("1abc").ok());
  EXPECT_FALSE(ParseXPath("a b").ok());
}

TEST(XPathParserTest, ErrorsCarryByteOffsets) {
  struct Case {
    const char* input;
    size_t offset;
  };
  const Case cases[] = {
      {"", 0},        // Empty expression.
      {"a[b//]", 5},  // ']' where a step was expected.
      {"a[", 2},      // Input ends where a step was expected.
      {"a[b", 3},     // Unterminated predicate.
      {"a/", 2},      // Trailing '/' without a step.
      {"a]", 1},      // Stray ']'.
      {"1abc", 0},    // Names cannot start with a digit.
      {"a b", 2},     // Stray second name.
  };
  for (const Case& c : cases) {
    Result<Pattern, XPathParseError> result = ParseXPathDetailed(c.input);
    ASSERT_FALSE(result.ok()) << c.input;
    EXPECT_EQ(result.error().offset, c.offset)
        << c.input << ": " << result.error().message;
  }
}

TEST(XPathParserTest, ErrorFormatHasSummaryAndCaretContext) {
  Result<Pattern, XPathParseError> result = ParseXPathDetailed("a[b//]");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().Summary(), "position 5: expected step");
  EXPECT_EQ(result.error().Format("a[b//]"),
            "position 5: expected step\n"
            "  a[b//]\n"
            "       ^");
  // The string-typed wrapper carries the same rendering.
  Result<Pattern> wrapped = ParseXPath("a[b//]");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_NE(wrapped.error().find("position 5: expected step"),
            std::string::npos);
}

TEST(XPathParserTest, ErrorFormatSlicesToTheOffendingLine) {
  // Newlines are legal whitespace; the caret context shows only the line
  // containing the error, with the caret aligned within it.
  Result<Pattern, XPathParseError> result = ParseXPathDetailed("a[\nb//]");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().offset, 6u);  // The ']' on the second line.
  EXPECT_EQ(result.error().Format("a[\nb//]"),
            "position 6: expected step\n"
            "  b//]\n"
            "     ^");
}

TEST(XPathParserTest, NonAsciiLabelsParse) {
  // NAME accepts non-ASCII UTF-8 bytes: labels are interned as byte
  // strings, matching the XML side (element names are not restricted to
  // ASCII in practice).
  Result<Pattern, XPathParseError> result = ParseXPathDetailed("café/日本");
  ASSERT_TRUE(result.ok()) << result.error().Summary();
  const Pattern& p = result.value();
  EXPECT_EQ(LabelName(p.label(p.root())), "café");
  EXPECT_EQ(LabelName(p.label(p.output())), "日本");
}

TEST(XPathParserTest, ErrorCaretCountsDisplayColumnsNotBytes) {
  // Regression: the caret column was counted in bytes, so multi-byte
  // UTF-8 labels before the error pushed the caret right of the
  // offending character. "café/" is 6 bytes but 5 display columns: the
  // byte offset stays 6 (the struct's contract), the caret sits at
  // column 5.
  Result<Pattern, XPathParseError> result = ParseXPathDetailed("café/");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().offset, 6u);  // Byte offset, past the 'é'.
  EXPECT_EQ(result.error().Format("café/"),
            "position 6: expected step\n"
            "  café/\n"
            "       ^");  // 5 columns of text under "  ", caret at the 6th.

  // Mixed with the line slicing: only the offending line counts.
  Result<Pattern, XPathParseError> multiline =
      ParseXPathDetailed("café[\n日本//]");
  ASSERT_FALSE(multiline.ok());
  EXPECT_EQ(multiline.error().offset, 15u);  // ']' byte offset.
  EXPECT_EQ(multiline.error().Format("café[\n日本//]"),
            "position 15: expected step\n"
            "  日本//]\n"
            "      ^");  // 2 ideographs + 2 slashes = 4 columns.
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, SerializeThenParseIsIdentity) {
  Pattern p = MustParseXPath(GetParam());
  std::string xpath = ToXPath(p);
  Pattern reparsed = MustParseXPath(xpath);
  EXPECT_TRUE(Isomorphic(p, reparsed))
      << GetParam() << " -> " << xpath << " -> " << ToXPath(reparsed);
}

INSTANTIATE_TEST_SUITE_P(
    Various, RoundTripTest,
    ::testing::Values(
        "a", "*", "a/b", "a//b", "a/*//b", "a[b]", "a[//b]", "a[b][c]",
        "a[b/c]/d", "a[b//c][d]/e//f", "*[*]/*", "a[b[c[d]]]//e",
        "x//y//z[w]", "a[b][c][d][e]", "a//*[b]/*[c]//d",
        "root[p/q][//r]/s[t]//u"));

}  // namespace
}  // namespace xpv
