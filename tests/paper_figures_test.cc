// Executable reproductions of the paper's Figures 1-4.
//
// The figures are worked examples; the archival text of the figure art is
// not machine-readable, so each test reconstructs an instance with exactly
// the properties the prose attributes to the figure and verifies every
// stated claim mechanically (see EXPERIMENTS.md, experiments F1-F4).

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"
#include "rewrite/engine.h"
#include "rewrite/rules.h"

namespace xpv {
namespace {

// ---------------------------------------------------------------------------
// Figure 1 (Sections 2.3-2.4): patterns V, P, R and the composition R ∘ V.
// Claims: (a) the merged node m of R∘V is labeled '*' because both out(V)
// and root(R) are labeled '*'; (b) R is an equivalent rewriting of P using
// V; (c) had one endpoint carried a Σ-label, the merged node would get it.
// ---------------------------------------------------------------------------

TEST(Figure1Test, CompositionMergedNodeLabeling) {
  Pattern v = MustParseXPath("a[e]/*");   // out(V) labeled '*'.
  Pattern r = MustParseXPath("*//b[d]");  // root(R) labeled '*'.
  Pattern rv = Compose(r, v);
  ASSERT_FALSE(rv.IsEmpty());
  // The merged node is the 1-node of R∘V and keeps the wildcard label.
  SelectionInfo info(rv);
  EXPECT_EQ(rv.label(info.KNode(1)), LabelStore::kWildcard);
  EXPECT_TRUE(Isomorphic(rv, MustParseXPath("a[e]/*//b[d]")));
}

TEST(Figure1Test, MergedNodeGetsSigmaLabelWhenOneEndpointHasIt) {
  // "Had one of these two nodes been labeled with l ∈ Σ and the other with
  // either * or l, then l would have been the label of m."
  Pattern v_sigma = MustParseXPath("a[e]/c");
  Pattern r_star = MustParseXPath("*//b[d]");
  Pattern rv = Compose(r_star, v_sigma);
  SelectionInfo info(rv);
  EXPECT_EQ(rv.label(info.KNode(1)), L("c"));

  Pattern v_star = MustParseXPath("a[e]/*");
  Pattern r_sigma = MustParseXPath("c//b[d]");
  Pattern rv2 = Compose(r_sigma, v_star);
  SelectionInfo info2(rv2);
  EXPECT_EQ(rv2.label(info2.KNode(1)), L("c"));
}

TEST(Figure1Test, RIsARewritingOfPUsingV) {
  // Reconstructed instance with the figure's character: V has a child
  // selection edge into a wildcard output, P starts with a descendant
  // edge, and the rewriting R needs a descendant root edge.
  Pattern v = MustParseXPath("a[e]/*");
  Pattern p = MustParseXPath("a[e]//*/b[d]");
  Pattern r = MustParseXPath("*//b[d]");
  EXPECT_TRUE(Equivalent(Compose(r, v), p));
  // And the engine discovers it.
  RewriteResult result = DecideRewrite(p, v);
  ASSERT_EQ(result.status, RewriteStatus::kFound);
  EXPECT_TRUE(Equivalent(Compose(result.rewriting, v), p));
}

// ---------------------------------------------------------------------------
// Figure 2 (Section 4): the natural candidates P>=1 and P>=1_r// w.r.t.
// the Figure-1 patterns, and their compositions with V. Claims: P>=1 is
// NOT a rewriting although a rewriting exists; P>=1_r// IS one (the
// motivating example for Theorem 4.10).
// ---------------------------------------------------------------------------

class Figure2Test : public ::testing::Test {
 protected:
  Pattern v_ = MustParseXPath("a[e]/*");
  Pattern p_ = MustParseXPath("a[e]//*/b[d]");
};

TEST_F(Figure2Test, NaturalCandidateConstruction) {
  NaturalCandidates c = MakeNaturalCandidates(p_, 1);
  EXPECT_TRUE(Isomorphic(c.sub, MustParseXPath("*/b[d]")));
  EXPECT_TRUE(Isomorphic(c.relaxed, MustParseXPath("*//b[d]")));
  EXPECT_FALSE(c.coincide);
}

TEST_F(Figure2Test, SubCandidateIsNotARewriting) {
  NaturalCandidates c = MakeNaturalCandidates(p_, 1);
  Pattern composed = Compose(c.sub, v_);
  EXPECT_TRUE(Isomorphic(composed, MustParseXPath("a[e]/*/b[d]")));
  EXPECT_FALSE(Equivalent(composed, p_));
  // It is contained in P's direction but not equivalent.
  EXPECT_TRUE(Contained(composed, p_));
}

TEST_F(Figure2Test, RelaxedCandidateIsARewriting) {
  NaturalCandidates c = MakeNaturalCandidates(p_, 1);
  Pattern composed = Compose(c.relaxed, v_);
  EXPECT_TRUE(Isomorphic(composed, MustParseXPath("a[e]/*//b[d]")));
  EXPECT_TRUE(Equivalent(composed, p_));
}

TEST_F(Figure2Test, TheoremFourTenGuaranteesCompleteness) {
  // The selection path of V has only child edges, so by Thm 4.10 one of
  // the two natural candidates is a potential rewriting — consistent with
  // the relaxed candidate being an actual one.
  SelectionInfo vi(v_);
  EXPECT_TRUE(vi.ChildOnlyRange(0, vi.depth()));
}

// ---------------------------------------------------------------------------
// Figure 3 (Lemma 4.12): a branch B, the pattern B' obtained by pushing
// the child edge of the root down a maximal wildcard child-path, and
// B_r//. Claim chain: B ⊑ B_r// ⊑ B' ≡ B, hence B ≡ B_r//.
// ---------------------------------------------------------------------------

TEST(Figure3Test, BranchRelaxationChain) {
  // B reconstructs the figure's shape: a root with one child-edge branch
  // whose maximal child path runs through wildcards only (Lemma 4.11's
  // situation), ending at a wildcard with descendant-only outgoing edges.
  Pattern b = MustParseXPath("*[*/*[//a][//b]]");
  // B': the incoming child edges along the maximal wildcard path are
  // replaced by descendant edges, bottom-up, ending with the root's
  // outgoing edge (the "last replacement" of the lemma's proof).
  Pattern b_prime = MustParseXPath("*[//*//*[//a][//b]]");
  Pattern b_relaxed = RelaxRootEdges(b);

  EXPECT_TRUE(Contained(b, b_relaxed));
  EXPECT_TRUE(Contained(b_relaxed, b_prime));
  EXPECT_TRUE(Equivalent(b_prime, b));
  // Conclusion of the lemma:
  EXPECT_TRUE(Equivalent(b, b_relaxed));
}

TEST(Figure3Test, LemmaFailsWithSigmaLabelOnThePath) {
  // Lemma 4.11 requires the child path to carry only wildcards; with a
  // Σ-label the chain breaks and relaxation is NOT equivalence-preserving.
  Pattern b = MustParseXPath("*[c/*[//a]]");
  Pattern b_relaxed = RelaxRootEdges(b);
  EXPECT_TRUE(Contained(b, b_relaxed));
  EXPECT_FALSE(Equivalent(b, b_relaxed));
}

// ---------------------------------------------------------------------------
// Figure 4 (Sections 4.1.3 and 5.3): correlation between query and view,
// label extension and output lifting. Claims: (V, P1) satisfies Thm 4.16;
// (V, P3) does not satisfy it directly but satisfies Cor 5.7; (V, P2)
// satisfies neither, and needs the extension/lifting technique, after
// which P2>=k is a potential rewriting.
// ---------------------------------------------------------------------------

class Figure4Test : public ::testing::Test {
 protected:
  // V: selection path a / * // * / * (descendant edge at depth 2).
  Pattern v_ = MustParseXPath("a/*//*[b]/*");
  // P1: last descendant selection edge at depth 2, like V.
  Pattern p1_ = MustParseXPath("a/*//*[b]/*/*/e");
  // P2: a descendant edge at depth 5, below the k-node (k = 3), with the
  // non-* label c at depth 4 between the k-node and that edge.
  Pattern p2_ = MustParseXPath("a/*//*[b]/*/c//b");
  // P3: P3's deepest selection // is at depth 1 where V has a child edge,
  // so Thm 4.16 does not apply directly (the prose's point about (V, P3));
  // V's deepest // (depth 2) is at least as deep, so Cor 5.7 applies.
  Pattern p3_ = MustParseXPath("a//*[b]/*/*/*/e");
};

TEST_F(Figure4Test, P1SatisfiesTheorem416) {
  SelectionInfo pi(p1_);
  SelectionInfo vi(v_);
  int j = pi.DeepestDescendantSelectionEdge();
  ASSERT_EQ(j, 2);
  EXPECT_EQ(vi.SelectionEdge(j), EdgeType::kDescendant);
  // And the engine solves the instance (prefix view => rewriting exists).
  EXPECT_EQ(DecideRewrite(p1_, v_).status, RewriteStatus::kFound);
}

TEST_F(Figure4Test, P2DoesNotSatisfyTheorem416Directly) {
  SelectionInfo pi(p2_);
  SelectionInfo vi(v_);
  int j = pi.DeepestDescendantSelectionEdge();
  EXPECT_GT(j, vi.depth());  // No corresponding edge of V exists.
}

TEST_F(Figure4Test, P3ViolatesCorrespondenceButSatisfiesCor57) {
  SelectionInfo pi(p3_);
  SelectionInfo vi(v_);
  int j = pi.DeepestDescendantSelectionEdge();
  ASSERT_EQ(j, 1);
  // Thm 4.16 does not apply: V's edge at depth 1 is a child edge.
  EXPECT_EQ(vi.SelectionEdge(j), EdgeType::kChild);
  // Cor 5.7 does: V's deepest descendant edge (2) is at least as deep.
  EXPECT_GE(vi.DeepestDescendantSelectionEdge(), j);
  // The conditions engine certifies completeness (here GNF/* already
  // covers P3 — its 1-sub-pattern is stable via the fresh branch label b —
  // which is consistent with Cor 5.7's guarantee).
  ConditionsReport report = EvaluateConditions(p3_, v_);
  ASSERT_TRUE(report.completeness.has_value());
}

TEST_F(Figure4Test, P2IsHandledByExtensionAndLifting) {
  // Section 5.3: because the non-* label c appears on P2's selection path
  // between the k-node and the deep descendant edge, that edge can be
  // ignored; the conditions engine reaches a completeness certificate
  // through the extend/lift (and possibly suffix) transformations.
  ConditionsReport report = EvaluateConditions(p2_, v_);
  ASSERT_TRUE(report.completeness.has_value());
  bool used_section5 = false;
  for (RuleId id : report.completeness->chain) {
    if (id == RuleId::kExtendLiftReduction ||
        id == RuleId::kSuffixReduction || id == RuleId::kStableReduction) {
      used_section5 = true;
    }
  }
  EXPECT_TRUE(used_section5);
}

TEST_F(Figure4Test, ExtensionAndLiftingShapesMatchSection53) {
  // (P2^{+µ})^{4→}: the output moves to the c-node at depth 4 and every
  // leaf gains a wildcard child except the old output, which gains µ.
  LabelId mu = Labels().Fresh("mu_fig4");
  Pattern extended = Extend(p2_, mu);
  Pattern lifted = LiftOutput(extended, 4);
  SelectionInfo li(lifted);
  EXPECT_EQ(li.depth(), 4);
  EXPECT_EQ(lifted.label(lifted.output()), L("c"));
  // µ occurs exactly once, below the old output.
  int mu_count = 0;
  for (NodeId n = 0; n < lifted.size(); ++n) {
    if (lifted.label(n) == mu) ++mu_count;
  }
  EXPECT_EQ(mu_count, 1);

  // V^{+*}: out(V) gains a wildcard child; depth unchanged.
  Pattern v_ext = Extend(v_, LabelStore::kWildcard);
  SelectionInfo ve(v_ext);
  EXPECT_EQ(ve.depth(), 3);
  EXPECT_GT(v_ext.size(), v_.size());
}

TEST_F(Figure4Test, AllThreeInstancesDecideWithPrefixLikeViews) {
  // End-to-end: with V being each P's own prefix the engine finds
  // rewritings; with a poisoned view (extra branch) it certifies
  // nonexistence for P1 and P3 (whose conditions hold).
  for (const Pattern* p : {&p1_, &p3_}) {
    Pattern prefix = UpperPattern(*p, 3);
    EXPECT_EQ(DecideRewrite(*p, prefix).status, RewriteStatus::kFound);
  }
  Pattern poisoned = MustParseXPath("a/*//*[b][zz]/*");
  EXPECT_EQ(DecideRewrite(p1_, poisoned).status, RewriteStatus::kNotExists);
}

}  // namespace
}  // namespace xpv
