#include "pattern/properties.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(SelectionInfoTest, DepthAndKNodes) {
  Pattern p = MustParseXPath("a/b[x]//c/d");
  SelectionInfo info(p);
  EXPECT_EQ(info.depth(), 3);
  EXPECT_EQ(p.label(info.KNode(0)), L("a"));
  EXPECT_EQ(p.label(info.KNode(1)), L("b"));
  EXPECT_EQ(p.label(info.KNode(2)), L("c"));
  EXPECT_EQ(p.label(info.KNode(3)), L("d"));
}

TEST(SelectionInfoTest, SelectionEdges) {
  Pattern p = MustParseXPath("a/b//c/d");
  SelectionInfo info(p);
  EXPECT_EQ(info.SelectionEdge(1), EdgeType::kChild);
  EXPECT_EQ(info.SelectionEdge(2), EdgeType::kDescendant);
  EXPECT_EQ(info.SelectionEdge(3), EdgeType::kChild);
  EXPECT_EQ(info.DeepestDescendantSelectionEdge(), 2);
  EXPECT_TRUE(info.ChildOnlyRange(2, 3));
  EXPECT_FALSE(info.ChildOnlyRange(0, 2));
  EXPECT_TRUE(info.ChildOnlyRange(0, 1));
}

TEST(SelectionInfoTest, DepthZeroPattern) {
  Pattern p = MustParseXPath("a[b][c//d]");
  SelectionInfo info(p);
  EXPECT_EQ(info.depth(), 0);
  EXPECT_EQ(info.KNode(0), p.root());
  EXPECT_EQ(info.DeepestDescendantSelectionEdge(), 0);
}

TEST(SelectionInfoTest, NodeDepthOfBranchNodes) {
  // Branch [x/y] hangs off b (depth 1): both x and y have depth 1.
  Pattern p = MustParseXPath("a/b[x/y]/c");
  SelectionInfo info(p);
  EXPECT_EQ(info.NodeDepth(p.root()), 0);
  // Parse order: a=0 b=1 x=2 y=3 c=4.
  EXPECT_EQ(info.NodeDepth(2), 1);
  EXPECT_EQ(info.NodeDepth(3), 1);
  EXPECT_EQ(info.NodeDepth(4), 2);
}

TEST(SelectionInfoTest, OnPath) {
  Pattern p = MustParseXPath("a/b[x]/c");
  SelectionInfo info(p);
  EXPECT_TRUE(info.OnPath(0));
  EXPECT_TRUE(info.OnPath(1));
  EXPECT_FALSE(info.OnPath(2));  // x.
  EXPECT_TRUE(info.OnPath(3));   // c.
}

TEST(PropertiesTest, SigmaLabelsExcludeWildcards) {
  Pattern p = MustParseXPath("a[*]/b//*");
  std::set<LabelId> labels = SigmaLabels(p);
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_TRUE(labels.count(L("a")));
  EXPECT_TRUE(labels.count(L("b")));
}

TEST(PropertiesTest, SigmaLabelsInSubtree) {
  Pattern p = MustParseXPath("a[e]/b[c]/d");
  std::set<LabelId> below = SigmaLabelsInSubtree(p, 2);  // b node? id check.
  // Parse order: a=0, e=1, b=2, c=3, d=4. Subtree of b: {b, c, d}.
  EXPECT_TRUE(below.count(L("b")));
  EXPECT_TRUE(below.count(L("c")));
  EXPECT_TRUE(below.count(L("d")));
  EXPECT_FALSE(below.count(L("e")));
}

TEST(PropertiesTest, Linearity) {
  EXPECT_TRUE(IsLinear(MustParseXPath("a/b//c")));
  EXPECT_FALSE(IsLinear(MustParseXPath("a[b]/c")));
  EXPECT_TRUE(IsLinearSubtree(MustParseXPath("a[b][c/d]"), 2));
}

TEST(PropertiesTest, StarChainLength) {
  EXPECT_EQ(StarChainLength(MustParseXPath("a/b/c")), 0);
  EXPECT_EQ(StarChainLength(MustParseXPath("a/*/b")), 1);
  EXPECT_EQ(StarChainLength(MustParseXPath("a/*/*/*/b")), 3);
  // A descendant edge breaks the chain.
  EXPECT_EQ(StarChainLength(MustParseXPath("a/*/*//*/b")), 2);
  // Chains in branches count too.
  EXPECT_EQ(StarChainLength(MustParseXPath("a[*/*/*]/b")), 3);
  // Wildcard root starts a chain.
  EXPECT_EQ(StarChainLength(MustParseXPath("*/*/a")), 2);
}

TEST(PropertiesTest, DescendantEdgeCount) {
  EXPECT_EQ(CountDescendantEdges(MustParseXPath("a/b/c")), 0);
  EXPECT_EQ(CountDescendantEdges(MustParseXPath("a//b[//c]//d")), 3);
}

TEST(PropertiesTest, FragmentClassification) {
  Pattern no_star = MustParseXPath("a//b[c]/d");
  EXPECT_TRUE(HasNoWildcard(no_star));
  EXPECT_FALSE(HasNoDescendantEdge(no_star));
  EXPECT_TRUE(InHomomorphismFragment(no_star));

  Pattern no_desc = MustParseXPath("a/*[b]/c");
  EXPECT_TRUE(HasNoDescendantEdge(no_desc));
  EXPECT_FALSE(HasNoWildcard(no_desc));
  EXPECT_TRUE(InHomomorphismFragment(no_desc));

  Pattern linear = MustParseXPath("a//*/b");
  EXPECT_TRUE(HasNoBranch(linear));
  // Linear patterns have PTIME containment but no homomorphism
  // characterization (a/*//b ≡ a//*/b with no homomorphism), so they are
  // not in the homomorphism fragment.
  EXPECT_FALSE(InHomomorphismFragment(linear));

  Pattern full = MustParseXPath("a[*]//b");
  EXPECT_FALSE(InHomomorphismFragment(full));
}

}  // namespace
}  // namespace xpv
