#include "util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xpv {
namespace {

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  Result<int> bad = Result<int>::Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
}

TEST(ResultTest, TakeReturnsByValue) {
  // take() must hand back an owning T, not a reference into the spent
  // result: the returned object stays alive independently of the Result.
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> taken = [](Result<std::vector<int>> r) {
    return r.take();  // `r` dies at the end of the lambda.
  }(std::move(result));
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));

  // Move-only payloads move out.
  Result<std::unique_ptr<int>> owner(std::make_unique<int>(42));
  std::unique_ptr<int> p = owner.take();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(3);
  EXPECT_EQ(ok.value_or(9), 3);
  EXPECT_EQ(Result<int>::Error("x").value_or(9), 9);

  Result<std::string> err = Result<std::string>::Error("boom");
  EXPECT_EQ(err.value_or("fallback"), "fallback");
}

TEST(ResultTest, StringPayloadIsUnambiguous) {
  // T == E == std::string: the boxed error keeps the variant well-formed.
  Result<std::string> ok(std::string("payload"));
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "payload");
  Result<std::string> bad = Result<std::string>::Error("message");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "message");
}

TEST(ResultTest, StructuredErrorType) {
  struct ParseFailure {
    int offset;
    std::string what;
  };
  Result<int, ParseFailure> bad =
      Result<int, ParseFailure>::Error({5, "expected step"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().offset, 5);
  EXPECT_EQ(bad.error().what, "expected step");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusTest, DefaultIsOkAndErrorCarriesMessage) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(OkStatus().ok());

  Status failed = Status::Error("disk on fire");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), "disk on fire");

  struct Code {
    int value;
  };
  Result<void, Code> typed = Result<void, Code>::Error({404});
  EXPECT_FALSE(typed.ok());
  EXPECT_EQ(typed.error().value, 404);
}

}  // namespace
}  // namespace xpv
