#include "xml/tree.h"

#include <gtest/gtest.h>

namespace xpv {
namespace {

Tree Chain(const char* a, const char* b, const char* c) {
  Tree t(L(a));
  NodeId nb = t.AddChild(t.root(), L(b));
  t.AddChild(nb, L(c));
  return t;
}

TEST(TreeTest, SingleNode) {
  Tree t(L("r"));
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(t.root()), kNoNode);
  EXPECT_TRUE(t.children(t.root()).empty());
  EXPECT_EQ(t.Depth(t.root()), 0);
  EXPECT_EQ(t.SubtreeHeight(t.root()), 0);
}

TEST(TreeTest, ChainDepthsAndHeight) {
  Tree t = Chain("a", "b", "c");
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.Depth(2), 2);
  EXPECT_EQ(t.SubtreeHeight(t.root()), 2);
  EXPECT_EQ(t.SubtreeHeight(1), 1);
}

TEST(TreeTest, ParentChildIdsAreTopological) {
  Tree t(L("a"));
  NodeId b = t.AddChild(t.root(), L("b"));
  NodeId c = t.AddChild(b, L("c"));
  NodeId d = t.AddChild(t.root(), L("d"));
  EXPECT_LT(t.parent(b), b);
  EXPECT_LT(t.parent(c), c);
  EXPECT_LT(t.parent(d), d);
}

TEST(TreeTest, IsAncestorOrSelf) {
  Tree t = Chain("a", "b", "c");
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 2));
  EXPECT_TRUE(t.IsAncestorOrSelf(2, 2));
  EXPECT_FALSE(t.IsAncestorOrSelf(2, 0));
}

TEST(TreeTest, SubtreeNodesPreorder) {
  Tree t(L("a"));
  NodeId b = t.AddChild(t.root(), L("b"));
  t.AddChild(b, L("c"));
  t.AddChild(t.root(), L("d"));
  std::vector<NodeId> all = t.SubtreeNodes(t.root());
  EXPECT_EQ(all, (std::vector<NodeId>{0, 1, 2, 3}));
  std::vector<NodeId> sub = t.SubtreeNodes(b);
  EXPECT_EQ(sub, (std::vector<NodeId>{1, 2}));
}

TEST(TreeTest, ExtractSubtreeDeepCopies) {
  Tree t = Chain("a", "b", "c");
  Tree sub = t.ExtractSubtree(1);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.label(sub.root()), L("b"));
  EXPECT_EQ(sub.label(1), L("c"));
}

TEST(TreeTest, GraftCopyAppends) {
  Tree t(L("a"));
  Tree sub = Chain("x", "y", "z");
  NodeId grafted = t.GraftCopy(t.root(), sub);
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.label(grafted), L("x"));
  EXPECT_EQ(t.Depth(grafted), 1);
  EXPECT_EQ(t.SubtreeHeight(t.root()), 3);
}

TEST(TreeTest, CanonicalEncodingIgnoresSiblingOrder) {
  Tree t1(L("a"));
  t1.AddChild(t1.root(), L("b"));
  t1.AddChild(t1.root(), L("c"));
  Tree t2(L("a"));
  t2.AddChild(t2.root(), L("c"));
  t2.AddChild(t2.root(), L("b"));
  EXPECT_EQ(t1.CanonicalEncoding(t1.root()), t2.CanonicalEncoding(t2.root()));
}

TEST(TreeTest, CanonicalEncodingDistinguishesStructure) {
  Tree t1 = Chain("a", "b", "c");
  Tree t2(L("a"));
  t2.AddChild(t2.root(), L("b"));
  t2.AddChild(t2.root(), L("c"));
  EXPECT_NE(t1.CanonicalEncoding(t1.root()), t2.CanonicalEncoding(t2.root()));
}

TEST(TreeTest, AsciiRenderingMentionsLabels) {
  Tree t = Chain("root", "mid", "leaf");
  std::string art = t.ToAscii();
  EXPECT_NE(art.find("root"), std::string::npos);
  EXPECT_NE(art.find("mid"), std::string::npos);
  EXPECT_NE(art.find("leaf"), std::string::npos);
}

}  // namespace
}  // namespace xpv
