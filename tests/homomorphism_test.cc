#include "containment/homomorphism.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(HomomorphismTest, IdentityAlwaysExists) {
  for (const char* expr : {"a", "a/b", "a//b[c]/d", "*[*]//*"}) {
    Pattern p = MustParseXPath(expr);
    EXPECT_TRUE(ExistsPatternHomomorphism(p, p)) << expr;
  }
}

TEST(HomomorphismTest, ChildMapsIntoChildOnly) {
  // a/b -> a//b: the descendant edge of a//b may map onto the child edge.
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a//b"),
                                        MustParseXPath("a/b")));
  // a//b -> a/b is impossible: a child edge cannot stretch.
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a/b"),
                                         MustParseXPath("a//b")));
}

TEST(HomomorphismTest, DescendantMapsOntoLongerPaths) {
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a//c"),
                                        MustParseXPath("a/b/c")));
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a//c"),
                                        MustParseXPath("a//b//c")));
}

TEST(HomomorphismTest, WildcardMapsAnywhere) {
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a/*"),
                                        MustParseXPath("a/b")));
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a/b"),
                                         MustParseXPath("a/*")));
}

TEST(HomomorphismTest, BranchesMayCollapse) {
  // a[b][b] -> a[b]: both branch copies map to the single b.
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a[b][b]"),
                                        MustParseXPath("a[b]")));
  // a[b] -> a[b][c] trivially (ignore c).
  EXPECT_TRUE(ExistsPatternHomomorphism(MustParseXPath("a[b]"),
                                        MustParseXPath("a[b][c]")));
  // a[b][c] -> a[b]: c has no image.
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a[b][c]"),
                                         MustParseXPath("a[b]")));
}

TEST(HomomorphismTest, OutputMustBePreserved) {
  // Same trees, different outputs: no homomorphism.
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a/b"),
                                         MustParseXPath("a[b]")));
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a[b]"),
                                         MustParseXPath("a/b")));
}

TEST(HomomorphismTest, RootMustBePreserved) {
  // b (root=output b) vs a/b: root b cannot map to root a.
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("b"),
                                         MustParseXPath("a/b")));
}

TEST(HomomorphismTest, ClassicStarDescendantAsymmetry) {
  // a/*//b ≡ a//*/b as queries, but only one direction has a homomorphism:
  // from a//*/b into a/*//b there is none (the child edge into b cannot map
  // onto the descendant edge), while from a/*//b into a//*/b there is none
  // either (the child edge into * cannot map onto the descendant edge).
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a//*/b"),
                                         MustParseXPath("a/*//b")));
  EXPECT_FALSE(ExistsPatternHomomorphism(MustParseXPath("a/*//b"),
                                         MustParseXPath("a//*/b")));
}

TEST(HomomorphismTest, EmptyPatterns) {
  Pattern a = MustParseXPath("a");
  EXPECT_FALSE(ExistsPatternHomomorphism(Pattern::Empty(), a));
  EXPECT_FALSE(ExistsPatternHomomorphism(a, Pattern::Empty()));
}

TEST(HomomorphismTest, DeepNestedPredicates) {
  Pattern specific = MustParseXPath("a[b[c[d]]]//e");
  Pattern general = MustParseXPath("a[b]//e");
  EXPECT_TRUE(ExistsPatternHomomorphism(general, specific));
  EXPECT_FALSE(ExistsPatternHomomorphism(specific, general));
}

}  // namespace
}  // namespace xpv
