#include "views/view_cache.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/xpath_parser.h"
#include "util/thread_pool.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Tree Doc(const char* xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

TEST(MaterializedViewTest, OutputsMatchDirectEvaluation) {
  Tree doc = Doc("<a><b><c/></b><b><d/></b><x><b/></x></a>");
  MaterializedView view({"v", MustParseXPath("a//b")}, doc);
  EXPECT_EQ(view.outputs(), Eval(MustParseXPath("a//b"), doc));
}

TEST(MaterializedViewTest, CopiesAreSubtrees) {
  Tree doc = Doc("<a><b><c/></b><b><d/></b></a>");
  MaterializedView view({"v", MustParseXPath("a/b")}, doc);
  std::vector<Tree> copies = view.MaterializeCopies();
  ASSERT_EQ(copies.size(), 2u);
  EXPECT_EQ(copies[0].CanonicalEncoding(0),
            doc.ExtractSubtree(1).CanonicalEncoding(0));
}

TEST(MaterializedViewTest, ApplyEqualsCompositionEvaluation) {
  // Proposition 2.4 at the evaluation level: R(V(t)) = (R ∘ V)(t).
  Tree doc = Doc(
      "<a><b><c><d/></c></b><b><c/></b><x><c><d/></c></x></a>");
  Pattern v = MustParseXPath("a/b");
  Pattern r = MustParseXPath("b/c");
  MaterializedView view({"v", v}, doc);
  EXPECT_EQ(view.Apply(r), Eval(Compose(r, v), doc));
}

TEST(MaterializedViewTest, ApplyWithDescendantRewriting) {
  Tree doc = Doc("<a><b><x><d/></x></b><b><d/></b></a>");
  Pattern v = MustParseXPath("a/b");
  Pattern r = MustParseXPath("b//d");
  MaterializedView view({"v", v}, doc);
  EXPECT_EQ(view.Apply(r), Eval(Compose(r, v), doc));
}

TEST(MaterializedViewTest, EmptyViewResult) {
  Tree doc = Doc("<a><c/></a>");
  MaterializedView view({"v", MustParseXPath("a/b")}, doc);
  EXPECT_TRUE(view.outputs().empty());
  EXPECT_TRUE(view.Apply(MustParseXPath("b/c")).empty());
}

TEST(ViewCacheTest, HitAnswersFromView) {
  Tree doc = Doc("<a><b><c/><c/></b><b/></a>");
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  CacheAnswer answer = cache.Answer(MustParseXPath("a/b/c"));
  EXPECT_TRUE(answer.hit);
  EXPECT_EQ(answer.view_name, "b-view");
  EXPECT_EQ(answer.outputs, Eval(MustParseXPath("a/b/c"), doc));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ViewCacheTest, MissFallsBackToDirectEvaluation) {
  Tree doc = Doc("<a><b><c/></b><x><y/></x></a>");
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  // No rewriting of a/x/y using a/b (label mismatch at depth 1).
  CacheAnswer answer = cache.Answer(MustParseXPath("a/x/y"));
  EXPECT_FALSE(answer.hit);
  EXPECT_EQ(answer.outputs, Eval(MustParseXPath("a/x/y"), doc));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().queries, 1u);
}

TEST(ViewCacheTest, PicksAViewThatWorks) {
  Tree doc = Doc("<a><b><c><d/></c></b></a>");
  ViewCache cache(doc);
  cache.AddView({"x-view", MustParseXPath("a/x")});
  cache.AddView({"bc-view", MustParseXPath("a/b/c")});
  CacheAnswer answer = cache.Answer(MustParseXPath("a/b/c/d"));
  EXPECT_TRUE(answer.hit);
  EXPECT_EQ(answer.view_name, "bc-view");
  EXPECT_EQ(answer.outputs, Eval(MustParseXPath("a/b/c/d"), doc));
}

TEST(ViewCacheTest, HitAgreesWithDirectOnWildcardViews) {
  Tree doc = Doc(
      "<a><u><b/></u><v><b><b/></b></v><w><x><b/></x></w></a>");
  ViewCache cache(doc);
  cache.AddView({"star", MustParseXPath("a/*")});
  // Query a//*/b rewrites over a/* via the relaxed candidate *//b.
  CacheAnswer answer = cache.Answer(MustParseXPath("a//*/b"));
  EXPECT_TRUE(answer.hit);
  EXPECT_EQ(answer.outputs, Eval(MustParseXPath("a//*/b"), doc));
}

TEST(ViewCacheTest, StatsAccumulate) {
  Tree doc = Doc("<a><b><c/></b></a>");
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  (void)cache.Answer(MustParseXPath("a/b/c"));   // Hit.  // discard: only the stats counters are asserted
  (void)cache.Answer(MustParseXPath("a/b"));     // Hit (k = d).  // discard: only the stats counters are asserted
  (void)cache.Answer(MustParseXPath("x/y"));     // Miss (root mismatch).  // discard: only the stats counters are asserted
  EXPECT_EQ(cache.stats().queries, 3u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(ViewCacheTest, CacheIsMovable) {
  // The oracle lives behind a stable pointer (owned heap allocation or an
  // injected external one), so a cache can move — e.g. into the vector of
  // per-document shards the Service layer keeps.
  Tree doc = Doc("<a><b><c/></b><b/></a>");
  ViewCache original(doc);
  original.AddView({"b-view", MustParseXPath("a/b")});
  CacheAnswer before = original.Answer(MustParseXPath("a/b/c"));

  ViewCache moved = std::move(original);
  CacheAnswer after = moved.Answer(MustParseXPath("a/b/c"));
  EXPECT_EQ(after.hit, before.hit);
  EXPECT_EQ(after.outputs, before.outputs);
  EXPECT_EQ(moved.stats().queries, 2u);
  // The second answer reuses the oracle entries warmed before the move.
  EXPECT_GT(moved.oracle().hits(), 0u);

  ViewCache assigned(doc);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.Answer(MustParseXPath("a/b/c")).outputs, before.outputs);
}

TEST(ViewCacheTest, ExternalOracleIsSharedAcrossCaches) {
  Tree doc1 = Doc("<a><b><c/></b></a>");
  Tree doc2 = Doc("<a><b><c/><c/></b></a>");
  ContainmentOracle oracle;
  ViewCache cache1(doc1, RewriteOptions{}, &oracle);
  ViewCache cache2(doc2, RewriteOptions{}, &oracle);
  cache1.AddView({"v", MustParseXPath("a/b")});
  cache2.AddView({"v", MustParseXPath("a/b")});

  EXPECT_TRUE(cache1.Answer(MustParseXPath("a/b/c")).hit);
  const uint64_t misses = oracle.misses();
  // The same (query, view) shape on another document reuses the shared
  // oracle's entries: no new containment computations.
  EXPECT_TRUE(cache2.Answer(MustParseXPath("a/b/c")).hit);
  EXPECT_EQ(oracle.misses(), misses);
  EXPECT_EQ(&cache1.oracle(), &oracle);
}

TEST(ViewCacheTest, AnswerManyUsesExternalPool) {
  Tree doc = Doc("<a><b><c/></b><b><c/><d/></b></a>");
  ThreadPool pool(2);
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  std::vector<Pattern> queries = {MustParseXPath("a/b/c"),
                                  MustParseXPath("a/b/d"),
                                  MustParseXPath("a/b")};
  std::vector<CacheAnswer> answers = cache.AnswerMany(queries, 4, &pool);
  ViewCache sequential(doc);
  sequential.AddView({"b-view", MustParseXPath("a/b")});
  ASSERT_EQ(answers.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    CacheAnswer expected = sequential.Answer(queries[i]);
    EXPECT_EQ(answers[i].hit, expected.hit) << i;
    EXPECT_EQ(answers[i].outputs, expected.outputs) << i;
  }
}

TEST(ViewCacheTest, AnswerManyMatchesSequentialAnswers) {
  Tree doc = Doc("<a><b><c/></b><b><c/><d/></b><x><b><c/></b></x></a>");
  std::vector<Pattern> queries = {
      MustParseXPath("a/b/c"), MustParseXPath("a/b"),
      MustParseXPath("a//b/d"), MustParseXPath("x/y"),
      MustParseXPath("a/b/c")};

  ViewCache batched(doc);
  batched.AddView({"b-view", MustParseXPath("a/b")});
  std::vector<CacheAnswer> answers = batched.AnswerMany(queries);

  ViewCache sequential(doc);
  sequential.AddView({"b-view", MustParseXPath("a/b")});
  ASSERT_EQ(answers.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    CacheAnswer expected = sequential.Answer(queries[i]);
    EXPECT_EQ(answers[i].hit, expected.hit) << i;
    EXPECT_EQ(answers[i].outputs, expected.outputs) << i;
  }
  EXPECT_EQ(batched.stats().queries, queries.size());
  // The warm-up batch precomputed the equivalence tests, so the per-query
  // scans answered containment questions from the oracle's cache.
  EXPECT_GT(batched.oracle().hits(), 0u);
}

TEST(ViewCacheTest, RemoveAndReplaceViewLifecycle) {
  Tree doc = Doc("<a><b><c/></b><d><e/></d></a>");
  ViewCache cache(doc);
  const int b_slot = cache.AddView({"b-view", MustParseXPath("a/b")});
  EXPECT_EQ(cache.num_active_views(), 1);
  EXPECT_TRUE(cache.view_active(b_slot));
  EXPECT_TRUE(cache.Answer(MustParseXPath("a/b/c")).hit);

  cache.RemoveView(b_slot);
  EXPECT_EQ(cache.num_active_views(), 0);
  EXPECT_FALSE(cache.view_active(b_slot));
  // The tombstoned slot is skipped, the answer still correct (direct).
  CacheAnswer miss = cache.Answer(MustParseXPath("a/b/c"));
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.outputs, Eval(MustParseXPath("a/b/c"), doc));
  // The materialized data was dropped with the tombstone.
  EXPECT_TRUE(cache.views()[static_cast<size_t>(b_slot)].outputs().empty());

  cache.ReplaceView(b_slot, {"d-view", MustParseXPath("a/d")});
  EXPECT_EQ(cache.num_active_views(), 1);
  EXPECT_TRUE(cache.view_active(b_slot));
  CacheAnswer hit = cache.Answer(MustParseXPath("a/d/e"));
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.view_name, "d-view");
  EXPECT_EQ(hit.outputs, Eval(MustParseXPath("a/d/e"), doc));
}

TEST(ViewCacheTest, AddRemoveChurnRecyclesTombstonedSlots) {
  // Regression: AddView used to append a brand-new slot forever, so
  // add/remove churn grew views_/active_/ViewIndex without bound (and
  // every ScanViews loop with them). Tombstoned slots must be recycled.
  Tree doc = Doc("<a><b><c/></b><d/></a>");
  ViewCache cache(doc);
  const int slot = cache.AddView({"v0", MustParseXPath("a/b")});
  const size_t slots_after_first = cache.views().size();
  const int index_after_first = cache.index().size();

  for (int i = 0; i < 100; ++i) {
    cache.RemoveView(slot);
    const int reused =
        cache.AddView({"v" + std::to_string(i + 1), MustParseXPath("a/b")});
    // The same slot comes back; nothing grows.
    EXPECT_EQ(reused, slot);
    EXPECT_EQ(cache.views().size(), slots_after_first);
    EXPECT_EQ(cache.index().size(), index_after_first);
    EXPECT_EQ(cache.num_active_views(), 1);
  }
  // The recycled slot answers for its current definition.
  CacheAnswer hit = cache.Answer(MustParseXPath("a/b/c"));
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.view_name, "v100");
  EXPECT_EQ(hit.outputs, Eval(MustParseXPath("a/b/c"), doc));
}

TEST(ViewCacheTest, ReplaceViewUnlinksTheSlotFromTheFreeList) {
  // ReplaceView revives a tombstone directly (the Service's historical
  // slot-reuse path); a later AddView must NOT recycle that slot again
  // and clobber the live view.
  Tree doc = Doc("<a><b><c/></b><d><e/></d></a>");
  ViewCache cache(doc);
  const int slot = cache.AddView({"b-view", MustParseXPath("a/b")});
  cache.RemoveView(slot);
  cache.ReplaceView(slot, {"d-view", MustParseXPath("a/d")});
  ASSERT_TRUE(cache.view_active(slot));

  const int fresh = cache.AddView({"b-again", MustParseXPath("a/b")});
  EXPECT_NE(fresh, slot);
  EXPECT_EQ(cache.num_active_views(), 2);
  EXPECT_TRUE(cache.Answer(MustParseXPath("a/d/e")).hit);
  EXPECT_TRUE(cache.Answer(MustParseXPath("a/b/c")).hit);
}

TEST(ViewCacheTest, EpochBumpsOnEveryViewSetMutation) {
  // The AnswerCache invalidation contract: every AddView/ReplaceView/
  // RemoveView moves the epoch strictly forward (RemoveView of a
  // tombstone is a no-op and must not).
  Tree doc = Doc("<a><b/><d/></a>");
  ViewCache cache(doc);
  uint64_t last = cache.epoch();
  const int slot = cache.AddView({"v", MustParseXPath("a/b")});
  EXPECT_GT(cache.epoch(), last);
  last = cache.epoch();
  cache.ReplaceView(slot, {"w", MustParseXPath("a/d")});
  EXPECT_GT(cache.epoch(), last);
  last = cache.epoch();
  cache.RemoveView(slot);
  EXPECT_GT(cache.epoch(), last);
  last = cache.epoch();
  cache.RemoveView(slot);  // Already tombstoned: no state change.
  EXPECT_EQ(cache.epoch(), last);
  cache.AddView({"x", MustParseXPath("a/b")});  // Recycles the slot.
  EXPECT_GT(cache.epoch(), last);
}

TEST(ViewCacheTest, ConcurrentEntryPointsMatchMutatingOnes) {
  // The const AnswerThrough/AnswerConcurrent/AnswerManyConcurrent paths
  // (the thread-safe Service's route) must produce exactly the answers
  // and statistics of the mutating Answer/AnswerMany.
  Tree doc = Doc("<a><b><c/></b><b><c/><d/></b><x><b><c/></b></x></a>");
  std::vector<Pattern> queries = {
      MustParseXPath("a/b/c"), MustParseXPath("a/b"),
      MustParseXPath("a//b/d"), MustParseXPath("x/y"),
      MustParseXPath("a/b/c")};

  ViewCache mutating(doc);
  mutating.AddView({"b-view", MustParseXPath("a/b")});

  const ViewCache concurrent_cache = [&doc] {
    ViewCache cache(doc);
    cache.AddView({"b-view", MustParseXPath("a/b")});
    return cache;
  }();
  SynchronizedOracle shared;
  CacheStats delta;

  for (const Pattern& query : queries) {
    CacheAnswer expected = mutating.Answer(query);
    CacheAnswer actual =
        concurrent_cache.AnswerConcurrent(query, &shared, &delta);
    EXPECT_EQ(actual.hit, expected.hit);
    EXPECT_EQ(actual.view_name, expected.view_name);
    EXPECT_EQ(actual.outputs, expected.outputs);
  }
  EXPECT_EQ(delta.queries, mutating.stats().queries);
  EXPECT_EQ(delta.hits, mutating.stats().hits);
  EXPECT_EQ(delta.rewrite_unknown, mutating.stats().rewrite_unknown);
  // The concurrent path never touched the cache's own state.
  EXPECT_EQ(concurrent_cache.stats().queries, 0u);
  EXPECT_EQ(concurrent_cache.oracle().size(), 0u);

  // Batch flavor, against a pool-backed AnswerMany.
  ThreadPool pool(2);
  std::vector<CacheAnswer> expected_batch =
      mutating.AnswerMany(queries, 2, &pool);
  CacheStats batch_delta;
  std::vector<CacheAnswer> actual_batch =
      concurrent_cache.AnswerManyConcurrent(queries, 2, &pool, &shared,
                                            &batch_delta);
  ASSERT_EQ(actual_batch.size(), expected_batch.size());
  for (size_t i = 0; i < expected_batch.size(); ++i) {
    EXPECT_EQ(actual_batch[i].hit, expected_batch[i].hit) << i;
    EXPECT_EQ(actual_batch[i].outputs, expected_batch[i].outputs) << i;
  }
  EXPECT_EQ(batch_delta.queries, queries.size());
}

TEST(ViewCacheTest, PlannedPipelineMatchesAnswerManyForEveryWorkerCount) {
  // AnswerPlannedConcurrent (the Service batch planner's entry point:
  // distinct queries, caller-built summaries) must produce exactly the
  // answers and per-scan deltas of AnswerManyConcurrent on the same
  // distinct queries, for every worker count.
  Tree doc = Doc("<a><b><c/></b><b><c/><d/></b><x><b><c/></b></x></a>");
  ViewCache cache(doc);
  cache.AddView({"b-view", MustParseXPath("a/b")});
  std::vector<Pattern> distinct = {
      MustParseXPath("a/b/c"), MustParseXPath("a/b"),
      MustParseXPath("a//b/d"), MustParseXPath("x/y")};
  std::vector<SelectionSummary> summaries;
  summaries.reserve(distinct.size());
  for (const Pattern& q : distinct) summaries.push_back(SummarizeSelection(q));
  std::vector<PlannedQuery> plan;
  for (size_t i = 0; i < distinct.size(); ++i) {
    plan.push_back(PlannedQuery{&distinct[i], &summaries[i]});
  }

  ThreadPool pool(4);
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(workers);
    SynchronizedOracle reference_oracle;
    CacheStats reference_delta;
    std::vector<CacheAnswer> reference = cache.AnswerManyConcurrent(
        distinct, workers, &pool, &reference_oracle, &reference_delta);

    SynchronizedOracle planned_oracle;
    std::vector<PlannedAnswer> planned =
        cache.AnswerPlannedConcurrent(plan, workers, &pool, &planned_oracle);

    ASSERT_EQ(planned.size(), reference.size());
    CacheStats total;
    for (size_t i = 0; i < planned.size(); ++i) {
      EXPECT_EQ(planned[i].answer.hit, reference[i].hit) << i;
      EXPECT_EQ(planned[i].answer.view_name, reference[i].view_name) << i;
      EXPECT_EQ(planned[i].answer.outputs, reference[i].outputs) << i;
      EXPECT_EQ(planned[i].delta.queries, 1u) << i;
      total.queries += planned[i].delta.queries;
      total.hits += planned[i].delta.hits;
      total.rewrite_unknown += planned[i].delta.rewrite_unknown;
    }
    EXPECT_EQ(total.queries, reference_delta.queries);
    EXPECT_EQ(total.hits, reference_delta.hits);
    EXPECT_EQ(total.rewrite_unknown, reference_delta.rewrite_unknown);
  }
}

}  // namespace
}  // namespace xpv
