#include "xml/label.h"

#include <gtest/gtest.h>

namespace xpv {
namespace {

TEST(LabelTest, InterningIsIdempotent) {
  LabelId a1 = L("alpha");
  LabelId a2 = L("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(LabelName(a1), "alpha");
}

TEST(LabelTest, DistinctNamesGetDistinctIds) {
  EXPECT_NE(L("beta"), L("gamma"));
}

TEST(LabelTest, ReservedSymbols) {
  EXPECT_EQ(Labels().Intern("*"), LabelStore::kWildcard);
  EXPECT_EQ(Labels().Intern("#bot"), LabelStore::kBottom);
  EXPECT_EQ(LabelName(LabelStore::kWildcard), "*");
}

TEST(LabelTest, FreshLabelsAreDistinct) {
  LabelId f1 = Labels().Fresh("mu");
  LabelId f2 = Labels().Fresh("mu");
  EXPECT_NE(f1, f2);
  EXPECT_NE(f1, LabelStore::kWildcard);
  EXPECT_NE(f1, LabelStore::kBottom);
}

TEST(LabelTest, IsSigmaClassification) {
  EXPECT_TRUE(Labels().IsSigma(L("delta")));
  EXPECT_FALSE(Labels().IsSigma(LabelStore::kWildcard));
  EXPECT_FALSE(Labels().IsSigma(LabelStore::kBottom));
  EXPECT_FALSE(Labels().IsSigma(Labels().Fresh("x")));
}

TEST(LabelGlbTest, EqualLabels) {
  LabelId out = -1;
  ASSERT_TRUE(LabelGlb(L("a"), L("a"), &out));
  EXPECT_EQ(out, L("a"));
}

TEST(LabelGlbTest, WildcardIsTop) {
  LabelId out = -1;
  ASSERT_TRUE(LabelGlb(LabelStore::kWildcard, L("a"), &out));
  EXPECT_EQ(out, L("a"));
  ASSERT_TRUE(LabelGlb(L("a"), LabelStore::kWildcard, &out));
  EXPECT_EQ(out, L("a"));
  ASSERT_TRUE(LabelGlb(LabelStore::kWildcard, LabelStore::kWildcard, &out));
  EXPECT_EQ(out, LabelStore::kWildcard);
}

TEST(LabelGlbTest, DistinctSigmaLabelsHaveNoGlb) {
  LabelId out = -1;
  EXPECT_FALSE(LabelGlb(L("a"), L("b"), &out));
}

}  // namespace
}  // namespace xpv
