#include "rewrite/multiview.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

TEST(MultiViewTest, PicksASingleViewWhenPossible) {
  Pattern p = MustParseXPath("a/b/c/d");
  std::vector<Pattern> views = {MustParseXPath("a/x"),
                                MustParseXPath("a/b/c")};
  MultiViewRewriteResult result = DecideRewriteMultiView(p, views);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.view_chain, (std::vector<int>{1}));
  EXPECT_TRUE(Equivalent(Compose(result.rewriting, views[1]), p));
}

TEST(MultiViewTest, ChainsTwoViews) {
  // Neither view alone reaches depth 3 usefully... construct: V0 = a/b,
  // V1 = b/c (a view defined over V0's results). P = a/b/c/d needs the
  // chain W = V1 ∘ V0 = a/b/c.
  Pattern p = MustParseXPath("a/b/c/d");
  std::vector<Pattern> views = {MustParseXPath("a/b"),
                                MustParseXPath("b/c")};
  // V1 alone fails at the root (b vs a); V0 alone works actually (R =
  // b/c/d), so to force chaining make V0 unusable alone by requiring...
  // V0 alone DOES work here; verify the engine prefers the single view.
  MultiViewRewriteResult single = DecideRewriteMultiView(p, views);
  ASSERT_TRUE(single.found);
  EXPECT_EQ(single.view_chain.size(), 1u);

  // Now make the query require both: P' = a[q]/b[r]/c/d with V0 = a[q]/b[r]
  // and V1 = b/c. V1 alone mismatches the root; V0 alone works again...
  // Single views subsume chains whenever the engine solves them, so the
  // chain case only arises when every single view fails: use views whose
  // single-view decisions are NotExists: V0 = a/b[r] with P lacking r is
  // hopeless. Instead: P = a/b/c/d, views = {a/b[z], b/c}: V0 fails (z
  // not in P), V1 fails (root mismatch), chain V1∘V0 = a/b[z]/c fails
  // too (z). Negative case:
  std::vector<Pattern> bad = {MustParseXPath("a/b[z]"),
                              MustParseXPath("b/c")};
  EXPECT_FALSE(DecideRewriteMultiView(p, bad).found);

  // Positive chain case: P = a/b[r]/c/d, views = {a/b[r], b/c}. V0 alone
  // gives R = b/c/d directly, again single. A genuine chain-only case:
  // P = a/b/c/d, views = {a/*, */c} — V0 alone: P>=1 = b/c/d composes to
  // a/b/c/d ≡ P, works again! Single views are hard to defeat with
  // prefix-like views; force it with depth: views = {a/b/c/x-ish}...
  // Simplest genuine chain-only: make each view's output label block the
  // other part: V0 = a/*, V1 = b/c/d with P = a/b/c/d... V1∘V0 =
  // a/b/c/d, R = single node d? R = d: d∘(V1∘V0) = a/b/c/d ≡ P, and V0
  // alone also rewrites (R = b/c/d). Accept: chains are a fallback; test
  // the fallback order explicitly below.
}

TEST(MultiViewTest, ChainOnlyInstance) {
  // V0 = a//b (descendant view), V1 = b/c. P = a//b/c.
  // V0 alone: P>=1 = ... k=1: candidates b/c; composition a//b/c ≡ P —
  // works. To force chain-only, poison V0 for direct use but keep it
  // useful as a base: V0 = a//b[x], P = a//b[x]/c/d, V1 = b/c.
  // V0 alone: candidates c/d -> a//b[x]/c/d ≡ P: works again (branch [x]
  // matches P). Chain-only truly requires every single view to fail:
  // give V1 the deep part and make V0's depth too small for R to... any
  // single-view failure with chain success needs W = V1∘V0 ≢ any Vi.
  // P = a/b/c[q]/d, V0 = a/b, V1 = b/c[q]: V0 alone: R = b/c[q]/d works.
  // Concede: with equivalent rewritings, if W = V1∘V0 admits R, then V0
  // admits R∘V1 — chains never strictly add power, matching the header's
  // remark. Verify that equivalence concretely:
  Pattern p = MustParseXPath("a/b/c[q]/d");
  Pattern v0 = MustParseXPath("a/b");
  Pattern v1 = MustParseXPath("b/c[q]");
  Pattern w = Compose(v1, v0);
  RewriteResult over_chain = DecideRewrite(p, w);
  ASSERT_EQ(over_chain.status, RewriteStatus::kFound);
  // R∘V1 is a rewriting of P using V0 alone.
  Pattern r_v1 = Compose(over_chain.rewriting, v1);
  EXPECT_TRUE(Equivalent(Compose(r_v1, v0), p));
}

TEST(MultiViewTest, ChainsRespectDepthBudget) {
  Pattern p = MustParseXPath("a/b");  // Depth 1.
  std::vector<Pattern> views = {MustParseXPath("a/x[z]"),
                                MustParseXPath("x/y")};
  MultiViewOptions options;
  options.try_chains = true;
  // depth(V0) + depth(V1) = 2 > 1: the chain must not even be attempted;
  // no crash, clean not-found.
  MultiViewRewriteResult result = DecideRewriteMultiView(p, views, options);
  EXPECT_FALSE(result.found);
}

TEST(MultiViewTest, EmptyViewsAreSkipped) {
  Pattern p = MustParseXPath("a/b");
  std::vector<Pattern> views = {Pattern::Empty(), MustParseXPath("a")};
  MultiViewRewriteResult result = DecideRewriteMultiView(p, views);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.view_chain, (std::vector<int>{1}));
}

TEST(MultiViewTest, ExplanationNamesTheViews) {
  Pattern p = MustParseXPath("a/b/c");
  std::vector<Pattern> views = {MustParseXPath("a/b")};
  MultiViewRewriteResult result = DecideRewriteMultiView(p, views);
  ASSERT_TRUE(result.found);
  EXPECT_NE(result.explanation.find("#0"), std::string::npos);
}

}  // namespace
}  // namespace xpv
