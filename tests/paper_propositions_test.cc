// Mechanical re-verification of the paper's propositions and theorems on
// hand-built instances. Each test names the result it exercises.

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

// ---------------------------------------------------------------------------
// Proposition 2.4: R ∘ V (t) = R(V(t)) for all trees t.
// ---------------------------------------------------------------------------

TEST(Prop24Test, CompositionEqualsSequentialApplication) {
  Rng rng(42);
  PatternGenOptions vopts;
  vopts.max_depth = 2;
  vopts.max_branches = 1;
  TreeGenOptions topts;
  topts.max_nodes = 60;
  for (int round = 0; round < 40; ++round) {
    Pattern v = RandomPattern(rng, vopts);
    Pattern r = RandomPattern(rng, vopts);
    Pattern rv = Compose(r, v);
    Tree t = DocumentWithMatches(rng, v, topts, 2);

    // R(V(t)): apply v, then apply r anchored at each output.
    std::vector<NodeId> v_out = Eval(v, t);
    std::vector<NodeId> sequential;
    if (!r.IsEmpty()) {
      Evaluator r_eval(r, t);
      for (NodeId o : v_out) {
        std::vector<NodeId> part = r_eval.OutputsAnchoredAt(o);
        sequential.insert(sequential.end(), part.begin(), part.end());
      }
    }
    std::sort(sequential.begin(), sequential.end());
    sequential.erase(std::unique(sequential.begin(), sequential.end()),
                     sequential.end());

    EXPECT_EQ(Eval(rv, t), sequential)
        << "R = " << ToXPath(r) << ", V = " << ToXPath(v);
  }
}

// ---------------------------------------------------------------------------
// Proposition 3.1: weakly equivalent patterns have equal depths, weakly
// equivalent k-sub-patterns, and identical k-node labels.
// ---------------------------------------------------------------------------

TEST(Prop31Test, HoldsForEquivalentPairs) {
  // Equivalence implies weak equivalence, so equivalent pairs must satisfy
  // all three parts.
  const char* pairs[][2] = {
      {"a/*//b", "a//*/b"},
      {"a/*/*//b", "a//*/*/b"},
      {"a[x][x]/b//c", "a[x]/b//c"},
  };
  for (auto& pair : pairs) {
    Pattern p1 = MustParseXPath(pair[0]);
    Pattern p2 = MustParseXPath(pair[1]);
    ASSERT_TRUE(Equivalent(p1, p2)) << pair[0] << " vs " << pair[1];
    SelectionInfo i1(p1), i2(p2);
    ASSERT_EQ(i1.depth(), i2.depth());  // Part 1.
    for (int k = 0; k <= i1.depth(); ++k) {
      EXPECT_TRUE(WeaklyEquivalent(SubPattern(p1, k), SubPattern(p2, k)))
          << pair[0] << " vs " << pair[1] << " at k=" << k;  // Part 2.
      EXPECT_EQ(p1.label(i1.KNode(k)), p2.label(i2.KNode(k)))
          << " at k=" << k;  // Part 3.
    }
  }
}

TEST(Prop31Test, HoldsForWeaklyEquivalentPair) {
  // */b ≡w *//b (the classic unstable pair).
  Pattern p1 = MustParseXPath("*/b");
  Pattern p2 = MustParseXPath("*//b");
  ASSERT_TRUE(WeaklyEquivalent(p1, p2));
  SelectionInfo i1(p1), i2(p2);
  EXPECT_EQ(i1.depth(), i2.depth());
  EXPECT_EQ(p1.label(p1.output()), p2.label(p2.output()));
  EXPECT_TRUE(WeaklyEquivalent(SubPattern(p1, 1), SubPattern(p2, 1)));
}

// ---------------------------------------------------------------------------
// Proposition 3.2 / Corollary 3.3: replacing the k-sub-pattern below a
// descendant edge with a weakly equivalent pattern preserves equivalence.
// ---------------------------------------------------------------------------

TEST(Prop32Test, SubPatternReplacementBelowDescendantEdge) {
  // P = a[x]//b[c]/d: a descendant edge enters the 1-node.
  Pattern p = MustParseXPath("a[x]//b[c]/d");
  Pattern upper = UpperPattern(p, 0);  // P^{<1}.
  Pattern q = SubPattern(p, 1);        // Weakly equivalent to itself.
  EXPECT_TRUE(Equivalent(Combine(upper, 0, q), p));
}

TEST(Prop32Test, ReplacementWithWeaklyEquivalentVariant) {
  // P = a//*/b: descendant edge enters the 1-node; P>=1 = */b ≡w *//b,
  // so replacing yields an equivalent pattern a//*//b... note
  // a//(*//b) = a//*//b and indeed a//*/b ≡ a//*//b? No: a//*/b selects b
  // at depth >= 2 and a//*//b selects b at depth >= 2 as well — replacing
  // under the descendant edge preserves equivalence exactly as Prop 3.2
  // states.
  Pattern p = MustParseXPath("a//*/b");
  Pattern upper = UpperPattern(p, 0);
  Pattern q = MustParseXPath("*//b");
  ASSERT_TRUE(WeaklyEquivalent(SubPattern(p, 1), q));
  EXPECT_TRUE(Equivalent(Combine(upper, 0, q), p));
}

TEST(Cor33Test, CrossReplacementBetweenEquivalentPatterns) {
  Pattern p1 = MustParseXPath("a//*/*/b");
  Pattern p2 = MustParseXPath("a//*/*/b");
  ASSERT_TRUE(Equivalent(p1, p2));
  // Descendant edge enters the 1-node of p1; swap in p2's 1-sub-pattern.
  Pattern swapped = Combine(UpperPattern(p1, 0), 0, SubPattern(p2, 1));
  EXPECT_TRUE(Equivalent(swapped, p1));
}

// ---------------------------------------------------------------------------
// Proposition 3.5: if root(V) = out(V) and R ∘ V ≡ P then R ∘ V ≡ P ∘ V.
// ---------------------------------------------------------------------------

TEST(Prop35Test, RootOutputViewComposition) {
  Pattern v = MustParseXPath("a[x]");
  Pattern p = MustParseXPath("a[x]/b");
  Pattern r = MustParseXPath("a/b");  // R ∘ V = a[x]/b ≡ P.
  Pattern rv = Compose(r, v);
  ASSERT_TRUE(Equivalent(rv, p));
  EXPECT_TRUE(Equivalent(rv, Compose(p, v)));
}

TEST(Prop35Test, PvContainedInPAlways) {
  // First half of the proof: P ∘ V ⊑ P whenever root(V) = out(V).
  const char* views[] = {"a", "a[x]", "a[x//y][z]"};
  const char* queries[] = {"a/b", "a//b[c]", "a[q]/r//s"};
  for (const char* vexpr : views) {
    for (const char* pexpr : queries) {
      Pattern v = MustParseXPath(vexpr);
      Pattern p = MustParseXPath(pexpr);
      Pattern pv = Compose(p, v);
      EXPECT_TRUE(Contained(pv, p)) << vexpr << " " << pexpr;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 4.3 (stability) soundness: when P>=k is stable and a rewriting
// exists, P>=k itself is one.
// ---------------------------------------------------------------------------

TEST(Thm43Test, StableSubPatternIsThePotentialRewriting) {
  // P>=1 = b[c]/d is stable; V = a//b is a prefix-like view: rewriting
  // exists, so P>=1 must be one.
  Pattern p = MustParseXPath("a//b[c]/d");
  Pattern v = MustParseXPath("a//b");
  RewriteResult result = DecideRewrite(p, v);
  ASSERT_EQ(result.status, RewriteStatus::kFound);
  EXPECT_TRUE(Isomorphic(result.rewriting, SubPattern(p, 1)));
}

// ---------------------------------------------------------------------------
// Theorem 4.9: descendant edge into out(V).
// ---------------------------------------------------------------------------

TEST(Thm49Test, FoundAndNotExistsSides) {
  // V's branch [z] is not implied by P, so the candidates fail and Thm 4.9
  // (descendant edge into out(V)) certifies nonexistence. (With [c]
  // instead of [z] the branch would be implied by P's own c-child and a
  // rewriting would exist.)
  EXPECT_EQ(DecideRewrite(MustParseXPath("a//*/c//c"),
                          MustParseXPath("a//*[z]"))
                .status,
            RewriteStatus::kNotExists);
  RewriteResult found =
      DecideRewrite(MustParseXPath("a//b/c"), MustParseXPath("a//b"));
  EXPECT_EQ(found.status, RewriteStatus::kFound);
}

// ---------------------------------------------------------------------------
// Theorem 4.10: child-only view selection path; the relaxed candidate can
// be required (Figure 2's phenomenon).
// ---------------------------------------------------------------------------

TEST(Thm410Test, RelaxedCandidateIsThePotentialOne) {
  Pattern p = MustParseXPath("a//*/b");
  Pattern v = MustParseXPath("a/*");
  // P>=1 is NOT a rewriting:
  EXPECT_FALSE(Equivalent(Compose(SubPattern(p, 1), v), p));
  // but P>=1_r// is:
  Pattern relaxed = RelaxRootEdges(SubPattern(p, 1));
  EXPECT_TRUE(Equivalent(Compose(relaxed, v), p));
}

// ---------------------------------------------------------------------------
// Theorem 4.16 and Corollary 5.7 (correspondence of last descendant edges).
// ---------------------------------------------------------------------------

TEST(Thm416Test, PositiveInstance) {
  // Last // of P at depth 1 corresponds to V's // at depth 1.
  Pattern p = MustParseXPath("a//*/*/c");
  Pattern v = MustParseXPath("a//*/*");
  RewriteResult result = DecideRewrite(p, v);
  ASSERT_EQ(result.status, RewriteStatus::kFound);
  EXPECT_TRUE(Isomorphic(result.rewriting, MustParseXPath("*/c")));
}

TEST(Cor57Test, DeeperViewDescendantCertifiesNonexistence) {
  // V's deepest // (2) >= P's deepest // (1); candidates fail due to V's
  // [q] branch => certified NotExists.
  RewriteResult result = DecideRewrite(MustParseXPath("a//*[b]/*/*/b"),
                                       MustParseXPath("a/*//*[q]/*"));
  EXPECT_EQ(result.status, RewriteStatus::kNotExists);
  ASSERT_TRUE(result.completeness.has_value());
}

// ---------------------------------------------------------------------------
// Proposition 5.1: with P>=i stable, rewritings of (P, V) and of
// (P>=i, V>=i) coincide.
// ---------------------------------------------------------------------------

TEST(Prop51Test, ReducedInstanceHasSameRewriting) {
  Pattern p = MustParseXPath("a//b/c/d");
  Pattern v = MustParseXPath("a//b/c");
  // P>=1 = b/c/d is stable (root b). Reduced instance: (b/c/d, b/c).
  Pattern rp = SubPattern(p, 1);
  Pattern rv = SubPattern(v, 1);
  RewriteResult full = DecideRewrite(p, v);
  RewriteResult reduced = DecideRewrite(rp, rv);
  ASSERT_EQ(full.status, RewriteStatus::kFound);
  ASSERT_EQ(reduced.status, RewriteStatus::kFound);
  EXPECT_TRUE(Isomorphic(full.rewriting, reduced.rewriting));
  // And the rewriting works for both instances.
  EXPECT_TRUE(Equivalent(Compose(reduced.rewriting, v), p));
}

// ---------------------------------------------------------------------------
// Proposition 5.6: ignoring everything above the last descendant edge on
// V's selection path preserves rewritings.
// ---------------------------------------------------------------------------

TEST(Prop56Test, SuffixReductionPreservesRewriting) {
  Pattern p = MustParseXPath("x/y//b/c/d");
  Pattern v = MustParseXPath("x/y//b/c");
  SelectionInfo vi(v);
  int i = vi.DeepestDescendantSelectionEdge();
  ASSERT_EQ(i, 2);
  Pattern p_prime = DescendantPrefix(LabelStore::kWildcard, SubPattern(p, i));
  Pattern v_prime = DescendantPrefix(LabelStore::kWildcard, SubPattern(v, i));
  RewriteResult full = DecideRewrite(p, v);
  RewriteResult primed = DecideRewrite(p_prime, v_prime);
  ASSERT_EQ(full.status, RewriteStatus::kFound);
  ASSERT_EQ(primed.status, RewriteStatus::kFound);
  // Part 1 of Prop 5.6: the original rewriting also rewrites the primed
  // instance.
  EXPECT_TRUE(Equivalent(Compose(full.rewriting, v_prime), p_prime));
  // Part 2: the primed rewriting is a rewriting of the original (one
  // exists, so "potential" means actual).
  EXPECT_TRUE(Equivalent(Compose(primed.rewriting, v), p));
}

// ---------------------------------------------------------------------------
// Theorem 5.9 / Proposition 5.8: extension and output lifting.
// ---------------------------------------------------------------------------

TEST(Prop58Test, ExtensionPreservesEquivalence) {
  LabelId mu = Labels().Fresh("mu58");
  const char* pairs[][2] = {
      {"a/*//b", "a//*/b"},
      {"a[x][x]/b", "a[x]/b"},
  };
  for (auto& pair : pairs) {
    Pattern p1 = MustParseXPath(pair[0]);
    Pattern p2 = MustParseXPath(pair[1]);
    ASSERT_TRUE(Equivalent(p1, p2));
    EXPECT_TRUE(Equivalent(Extend(p1, mu), Extend(p2, mu)))
        << pair[0] << " vs " << pair[1];
  }
  // And the converse direction on an inequivalent pair.
  EXPECT_FALSE(Equivalent(Extend(MustParseXPath("a/b"), mu),
                          Extend(MustParseXPath("a//b"), mu)));
}

TEST(Thm59Test, LiftedInstanceRewritesIffOriginalDoes) {
  // P = a/b/c/d with j = 2 (label c non-*), V = a/b.
  Pattern p = MustParseXPath("a/b/c/d");
  Pattern v = MustParseXPath("a/b");
  LabelId mu = Labels().Fresh("mu59");
  Pattern p_prime = LiftOutput(Extend(p, mu), 2);
  Pattern v_prime = Extend(v, LabelStore::kWildcard);
  RewriteResult original = DecideRewrite(p, v);
  RewriteResult lifted = DecideRewrite(p_prime, v_prime);
  EXPECT_EQ(original.status, RewriteStatus::kFound);
  EXPECT_EQ(lifted.status, RewriteStatus::kFound);

  // A non-existence instance stays non-existent after the transform.
  Pattern p2 = MustParseXPath("a/b/c/d");
  Pattern v2 = MustParseXPath("a/b[zz]");
  Pattern p2_prime = LiftOutput(Extend(p2, mu), 2);
  Pattern v2_prime = Extend(v2, LabelStore::kWildcard);
  EXPECT_EQ(DecideRewrite(p2, v2).status, RewriteStatus::kNotExists);
  EXPECT_EQ(DecideRewrite(p2_prime, v2_prime).status,
            RewriteStatus::kNotExists);
}

// ---------------------------------------------------------------------------
// Section 4 pre-analysis: k = d and k > d.
// ---------------------------------------------------------------------------

TEST(Section4Test, EqualDepthPotentialAndDepthExceeded) {
  EXPECT_EQ(DecideRewrite(MustParseXPath("a/b[c]"), MustParseXPath("a/b"))
                .status,
            RewriteStatus::kFound);
  EXPECT_EQ(
      DecideRewrite(MustParseXPath("a/b"), MustParseXPath("a/b/c")).status,
      RewriteStatus::kNotExists);
}

}  // namespace
}  // namespace xpv
