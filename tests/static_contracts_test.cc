// Compile-time pins for the library's error-discipline and move-semantics
// contracts (PR 10). Everything here is a static_assert: the test binary
// existing at all IS the test — the single runtime TEST below only keeps
// gtest from flagging an empty TU.
//
// Why pin noexcept moves: containers relocate. A `std::vector` of a type
// whose move constructor is potentially-throwing *copies* on growth
// (std::move_if_noexcept), silently changing the complexity and allocation
// profile of the serving paths that batch these types. Several of these
// types also cross thread boundaries through the pool, where a throwing
// move would lose the task. A refactor that adds a throwing member (e.g.
// a std::string default argument captured by value) breaks the build here
// instead of regressing quietly.

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include <gtest/gtest.h>

#include "api/service.h"
#include "containment/oracle.h"
#include "pattern/pattern.h"
#include "util/cancel.h"
#include "util/memory_budget.h"
#include "util/result.h"
#include "views/answer_cache.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {
namespace {

// --------------------------------------------------------------- movability
// Value types that ride in vectors on hot paths or cross the thread pool.

template <typename T>
inline constexpr bool kNothrowMovable =
    std::is_nothrow_move_constructible_v<T> &&
    std::is_nothrow_move_assignable_v<T>;

static_assert(kNothrowMovable<Tree>,
              "Tree moves between shards and through deltas by value");
static_assert(kNothrowMovable<Pattern>,
              "Pattern is batched in candidate vectors");
static_assert(kNothrowMovable<Service>,
              "Service is handed to threads by value in tests");
static_assert(kNothrowMovable<MaterializedView>,
              "MaterializedView lives in ViewCache's vector");
static_assert(kNothrowMovable<ViewCache>,
              "ViewCache moves on shard construction");
static_assert(kNothrowMovable<AnswerCache::Entry>,
              "memo entries are moved into Publish/Insert");
static_assert(kNothrowMovable<AnswerCache::Fill>,
              "fills are returned by value from BeginFill");
static_assert(kNothrowMovable<ScopedCharge>,
              "charges are returned by value from Charge()");
static_assert(kNothrowMovable<CancelToken>,
              "tokens are captured by pool task closures");
static_assert(std::is_nothrow_move_constructible_v<ServiceResult<Answer>>,
              "results are returned by value from every facade call");
static_assert(std::is_nothrow_move_constructible_v<ServiceStatus>,
              "statuses are returned by value from every mutation");
static_assert(std::is_nothrow_move_constructible_v<Result<int>> &&
                  std::is_nothrow_move_constructible_v<Status>,
              "the Result family is the library-wide return currency");

// `SingleFlight`/`ThreadPool`/`AnswerCache` hold mutexes and are
// deliberately immovable; pin that too so nobody "fixes" it by adding a
// move that would tear the lock out from under waiters.
static_assert(!std::is_move_constructible_v<AnswerCache>,
              "AnswerCache owns a lock + flight registry; must stay pinned");
static_assert(!std::is_move_constructible_v<ContainmentOracle>,
              "the oracle's memo is referenced by concurrent readers");

// ------------------------------------------------------------- nodiscard
// The [[nodiscard]] sweep is enforced by -Werror=unused-result at every
// call site; here we pin the *class-level* attribute on the Result family
// so it cannot be dropped from the template without failing this TU.
// (There is no is_nodiscard trait; instead tests/compile_fail/
// discarded_service_result_fail.cc proves the rejection end to end.)

// A Result must still be cheap: one discriminated union, no virtual
// anything. Guards against someone "enriching" the error channel with
// allocation on the success path.
static_assert(sizeof(Result<bool>) <= sizeof(std::variant<bool, std::string>) +
                                          alignof(std::max_align_t),
              "Result<bool> should stay a thin variant");
static_assert(std::is_trivially_destructible_v<Result<int, int>> ==
                  std::is_trivially_destructible_v<std::variant<int, int>>,
              "Result adds no destructor of its own");

TEST(StaticContracts, CompileTimePinsHold) {
  // All assertions above are compile-time; reaching here means they held.
  SUCCEED();
}

}  // namespace
}  // namespace xpv
