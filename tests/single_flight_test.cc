// Single-flight cache fills: the SingleFlight primitive itself, the
// AnswerCache fill protocol built on it, the SynchronizedOracle
// containment write-through, and the end-to-end Service guarantee that a
// stampede of identical cold queries runs the expensive pipeline once.
// The threaded tests here are part of the TSan CI leg.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "containment/oracle.h"
#include "pattern/xpath_parser.h"
#include "util/cancel.h"
#include "util/single_flight.h"
#include "views/answer_cache.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

Pattern MustParse(const std::string& xpath) {
  auto result = ParseXPath(xpath);
  EXPECT_TRUE(result.ok()) << xpath;
  return std::move(result).value();
}

Tree Doc(const std::string& xml) {
  auto result = ParseXml(xml);
  EXPECT_TRUE(result.ok()) << xml;
  return std::move(result).value();
}

// ------------------------------------------------------------ primitive

TEST(SingleFlightTest, LeaderPublishesFollowerReceives) {
  SingleFlight<int, int> flights;
  auto lead = flights.Join(7);
  ASSERT_FALSE(lead.immediate.has_value());
  ASSERT_TRUE(lead.ticket.leader());
  auto follow = flights.Join(7);
  ASSERT_FALSE(follow.immediate.has_value());
  ASSERT_FALSE(follow.ticket.leader());
  flights.Publish(lead.ticket, 42);
  std::optional<int> got = flights.Wait(follow.ticket);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(flights.leads(), 1u);
  EXPECT_EQ(flights.joins(), 1u);
  EXPECT_EQ(flights.pending(), 0u);
}

TEST(SingleFlightTest, DistinctKeysFlyIndependently) {
  SingleFlight<int, int> flights;
  auto a = flights.Join(1);
  auto b = flights.Join(2);
  EXPECT_TRUE(a.ticket.leader());
  EXPECT_TRUE(b.ticket.leader());  // Different key: its own flight.
  flights.Publish(a.ticket, 10);
  flights.Publish(b.ticket, 20);
  EXPECT_EQ(flights.leads(), 2u);
  EXPECT_EQ(flights.joins(), 0u);
}

TEST(SingleFlightTest, ProbeShortCircuitsUnderTheRegistryLock) {
  SingleFlight<int, int> flights;
  auto jr = flights.Join(5, [] { return std::optional<int>(99); });
  ASSERT_TRUE(jr.immediate.has_value());
  EXPECT_EQ(*jr.immediate, 99);
  EXPECT_FALSE(jr.ticket.valid());
  EXPECT_EQ(flights.leads(), 0u);  // Never led: the probe answered.
}

TEST(SingleFlightTest, AbandonedLeaderWakesWaitersEmptyHanded) {
  SingleFlight<int, int> flights;
  SingleFlight<int, int>::JoinResult follow;
  {
    auto lead = flights.Join(3);
    ASSERT_TRUE(lead.ticket.leader());
    follow = flights.Join(3);
    ASSERT_FALSE(follow.ticket.leader());
    // `lead.ticket` goes out of scope unpublished: exception-unwind path.
  }
  std::optional<int> got = flights.Wait(follow.ticket);
  EXPECT_FALSE(got.has_value());  // Compute for yourself.
  EXPECT_EQ(flights.abandons(), 1u);
  EXPECT_EQ(flights.pending(), 0u);
  // The key is free again: the next Join leads a fresh flight.
  auto retry = flights.Join(3);
  EXPECT_TRUE(retry.ticket.leader());
  flights.Publish(retry.ticket, 1);
}

TEST(SingleFlightTest, ThreadedStampedeComputesOnce) {
  SingleFlight<int, int> flights;
  std::atomic<int> computes{0};
  std::atomic<int> sum{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto jr = flights.Join(1);
      int value;
      if (jr.immediate.has_value()) {
        value = *jr.immediate;
      } else if (jr.ticket.leader()) {
        computes.fetch_add(1);
        value = 1234;
        flights.Publish(jr.ticket, value);
      } else {
        std::optional<int> got = flights.Wait(jr.ticket);
        ASSERT_TRUE(got.has_value());
        value = *got;
      }
      sum.fetch_add(value);
    });
  }
  for (std::thread& t : threads) t.join();
  // Without a backing store every generation of the key may elect one
  // leader after the previous flight closed; with the threads racing one
  // flight the common case is exactly one compute, but the guarantee is
  // "every thread got the value some leader computed".
  EXPECT_GE(computes.load(), 1);
  EXPECT_EQ(sum.load(), kThreads * 1234);
  EXPECT_EQ(flights.pending(), 0u);
}

// ------------------------------------------------------- answer cache

AnswerCache::Entry MakeEntry(NodeId node) {
  AnswerCache::Entry entry;
  entry.answer.outputs = {node};
  entry.delta.queries = 1;
  return entry;
}

TEST(SingleFlightTest, AnswerCacheFillProtocol) {
  AnswerCache cache(16);
  const AnswerCache::Key key{1, 1, 77};
  AnswerCache::Fill lead = cache.BeginFill(key);
  ASSERT_FALSE(lead.hit());
  ASSERT_TRUE(lead.leader());
  AnswerCache::Fill follow = cache.BeginFill(key);
  ASSERT_FALSE(follow.hit());
  ASSERT_FALSE(follow.leader());
  std::shared_ptr<const AnswerCache::Entry> published =
      cache.Publish(lead, MakeEntry(5));
  std::shared_ptr<const AnswerCache::Entry> received = follow.Wait();
  ASSERT_NE(received, nullptr);
  // Leader, waiter, and table share ONE entry allocation.
  EXPECT_EQ(received, published);
  EXPECT_EQ(cache.Lookup(key), published);
  EXPECT_EQ(cache.fill_stats().leads, 1u);
  EXPECT_EQ(cache.fill_stats().joins, 1u);
  // A later BeginFill is a plain hit — no new flight.
  AnswerCache::Fill again = cache.BeginFill(key);
  EXPECT_TRUE(again.hit());
  EXPECT_EQ(cache.fill_stats().leads, 1u);
}

TEST(SingleFlightTest, AnswerCacheAbandonedFillPromotesWaiter) {
  AnswerCache cache(16);
  const AnswerCache::Key key{1, 1, 88};
  AnswerCache::Fill follow;
  {
    AnswerCache::Fill lead = cache.BeginFill(key);
    ASSERT_TRUE(lead.leader());
    follow = cache.BeginFill(key);
    ASSERT_FALSE(follow.leader());
    // Leader destroyed unpublished (exception unwind).
  }
  // The waiter is re-elected: Wait() returns null with leader() now true,
  // and the waiter publishes through its promoted fill like any leader.
  EXPECT_EQ(follow.Wait(), nullptr);
  EXPECT_TRUE(follow.leader());
  std::shared_ptr<const AnswerCache::Entry> published =
      cache.Publish(follow, MakeEntry(9));
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(cache.Lookup(key), published);
  EXPECT_EQ(cache.fill_stats().abandons, 1u);
}

TEST(SingleFlightTest, LeaderDiesMidFlightExactlyOneWaiterRetries) {
  // The leader-dies-mid-flight regression: N threads join a fill whose
  // leader unwinds without publishing. All waiters must wake (no hang),
  // EXACTLY ONE must come back promoted (computes and publishes), and
  // every other thread must receive the retried value.
  AnswerCache cache(64);
  const AnswerCache::Key key{1, 1, 99};
  AnswerCache::Fill lead = cache.BeginFill(key);
  ASSERT_TRUE(lead.leader());
  constexpr int kWaiters = 6;
  std::atomic<int> promoted{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  std::atomic<int> joined{0};
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      AnswerCache::Fill fill = cache.BeginFill(key);
      std::shared_ptr<const AnswerCache::Entry> entry;
      if (fill.hit()) {
        entry = fill.entry();  // Raced past the promoted publisher.
      } else if (fill.leader()) {
        // Possible only after the abandon below (the original leader
        // holds the flight until then) — counts as a promotion too.
        promoted.fetch_add(1);
        entry = cache.Publish(fill, MakeEntry(4));
      } else {
        joined.fetch_add(1);
        entry = fill.Wait();
        if (entry == nullptr) {
          // Promoted by re-election after the abandon.
          EXPECT_TRUE(fill.leader());
          promoted.fetch_add(1);
          entry = cache.Publish(fill, MakeEntry(4));
        }
      }
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->answer.outputs, std::vector<NodeId>{4});
      received.fetch_add(1);
    });
  }
  // Wait until every thread is parked on the flight, then kill the leader
  // (unwind without publishing) — the abandon must wake all of them.
  while (joined.load() + promoted.load() < kWaiters) {
    std::this_thread::yield();
  }
  { AnswerCache::Fill dying = std::move(lead); }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(received.load(), kWaiters);    // Nobody hung, nobody errored.
  EXPECT_GE(promoted.load(), 1);           // Someone retried...
  EXPECT_EQ(cache.stats().insertions, 1u); // ...and only one landed.
  ASSERT_NE(cache.Lookup(key), nullptr);
  EXPECT_GE(cache.fill_stats().abandons, 1u);
}

TEST(SingleFlightTest, JoinerDeadlineUnblocksWhileFlightStaysPending) {
  // A joiner with an expired deadline must abandon the WAIT (structured
  // CancelledError), while the flight itself stays pending: the leader
  // can still publish and later waiters still receive the value.
  AnswerCache cache(16);
  const AnswerCache::Key key{1, 1, 55};
  AnswerCache::Fill lead = cache.BeginFill(key);
  ASSERT_TRUE(lead.leader());
  AnswerCache::Fill follow = cache.BeginFill(key);
  ASSERT_FALSE(follow.leader());
  {
    const CancelToken token = CancelToken::WithDeadline(
        std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
    CancelScope scope(token);
    EXPECT_THROW(follow.Wait(), CancelledError);
  }
  // The flight survived the joiner's timeout: publish and verify a fresh
  // waiter (no deadline) receives the entry.
  AnswerCache::Fill late = cache.BeginFill(key);
  std::shared_ptr<const AnswerCache::Entry> published =
      cache.Publish(lead, MakeEntry(6));
  std::shared_ptr<const AnswerCache::Entry> got =
      late.hit() ? late.entry() : late.Wait();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got, published);
}

TEST(SingleFlightTest, AnswerCacheStampedeInsertsOnce) {
  AnswerCache cache(64);
  const AnswerCache::Key key{1, 1, 123};
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      AnswerCache::Fill fill = cache.BeginFill(key);
      std::shared_ptr<const AnswerCache::Entry> entry;
      if (fill.hit()) {
        entry = fill.entry();
      } else if (fill.leader()) {
        computes.fetch_add(1);
        entry = cache.Publish(fill, MakeEntry(3));
      } else {
        entry = fill.Wait();
      }
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->answer.outputs, std::vector<NodeId>{3});
    });
  }
  for (std::thread& t : threads) t.join();
  // Here exactness holds: once the leader publishes, the entry is in the
  // table BEFORE the flight closes, so late arrivals hit (in Lookup or in
  // the registry-lock re-probe) instead of leading a second flight.
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.fill_stats().leads, 1u);
}

// ------------------------------------------------------------- oracle

TEST(SingleFlightTest, OracleStampedeRunsTheDpOnce) {
  // N shards attached to one SynchronizedOracle ask the same directional
  // containment question concurrently. The write-through publish means at
  // most one flight can EVER be led for the pair: later arrivals find the
  // direction in the shared table (fallback probe or registry re-probe).
  SynchronizedOracle shared;
  Pattern p1 = MustParse("a/b/c");
  Pattern p2 = MustParse("a//c");
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ContainmentOracle shard;
      shared.AttachShard(&shard);
      EXPECT_TRUE(shard.Contained(p1, p2));
      shared.Absorb(shard);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared.single_flight_leads(), 1u);
  EXPECT_EQ(shared.single_flight_abandons(), 0u);
  // The direction is resident in the shared table (write-through).
  EXPECT_GE(shared.size(), 1u);
}

// ------------------------------------------------------------ service

TEST(SingleFlightTest, ServiceAnswerStampedeFillsOnce) {
  Service service;
  DocumentId doc =
      service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  const std::vector<NodeId> expected =
      service.Answer(doc, "a/b/c").value().outputs;
  // Fresh service per stampede round so the memo is cold.
  Service cold;
  DocumentId doc2 =
      cold.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(cold.AddView(doc2, "v", "a/b").ok());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ServiceResult<Answer> answer = cold.Answer(doc2, "a/b/c");
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer.value().outputs, expected);
    });
  }
  for (std::thread& t : threads) t.join();
  // One insert, one flight led; every other thread either joined the
  // flight or hit the published entry.
  EXPECT_EQ(cold.answer_cache().stats().insertions, 1u);
  EXPECT_EQ(cold.answer_cache().fill_stats().leads, 1u);
  EXPECT_EQ(cold.stats().answer_cache_entries, 1u);
}

TEST(SingleFlightTest, ServiceBatchStampedeSharesFills) {
  // Two concurrent AnswerBatch calls over the same document and query
  // set: the slices join each other's fills (compute-then-wait ordering
  // makes this deadlock-free) and the memo ends with one entry per
  // distinct query, each filled exactly once.
  Service service;
  DocumentId doc =
      service.AddDocument(Doc("<a><b><c/></b><b><d/></b></a>"));
  ASSERT_TRUE(service.AddView(doc, "v", "a/b").ok());
  std::vector<BatchItem> items;
  for (const char* q : {"a/b/c", "a/b/d", "a//c", "a/b/c"}) {
    items.push_back(BatchItem{doc, Query(q)});
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(batch.value().answers.size(), items.size());
      for (const auto& answer : batch.value().answers) {
        ASSERT_TRUE(answer.ok());
      }
      // Duplicate items agree within one batch.
      EXPECT_EQ(batch.value().answers[0].value().outputs,
                batch.value().answers[3].value().outputs);
    });
  }
  for (std::thread& t : threads) t.join();
  // 3 distinct queries → exactly 3 fills led and 3 insertions, no matter
  // how the four batches interleaved.
  EXPECT_EQ(service.answer_cache().stats().insertions, 3u);
  EXPECT_EQ(service.answer_cache().fill_stats().leads, 3u);
  EXPECT_EQ(service.answer_cache().fill_stats().abandons, 0u);
}

}  // namespace
}  // namespace xpv
