#include "workload/generator.h"

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "rewrite/engine.h"

namespace xpv {
namespace {

TEST(GeneratorTest, PatternsRespectDepthBounds) {
  Rng rng(1);
  PatternGenOptions options;
  options.min_depth = 2;
  options.max_depth = 5;
  for (int i = 0; i < 50; ++i) {
    Pattern p = RandomPattern(rng, options);
    SelectionInfo info(p);
    EXPECT_GE(info.depth(), 2);
    EXPECT_LE(info.depth(), 5);
  }
}

TEST(GeneratorTest, ZeroProbabilitiesAreRespected) {
  Rng rng(2);
  PatternGenOptions options;
  options.wildcard_prob = 0.0;
  options.descendant_prob = 0.0;
  for (int i = 0; i < 30; ++i) {
    Pattern p = RandomPattern(rng, options);
    EXPECT_TRUE(HasNoWildcard(p)) << ToXPath(p);
    EXPECT_TRUE(HasNoDescendantEdge(p)) << ToXPath(p);
  }
}

TEST(GeneratorTest, SubFragmentPatternsStayInFragment) {
  Rng rng(3);
  PatternGenOptions options;
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(HasNoWildcard(RandomSubFragmentPattern(rng, options, 0)));
    EXPECT_TRUE(
        HasNoDescendantEdge(RandomSubFragmentPattern(rng, options, 1)));
    EXPECT_TRUE(IsLinear(RandomSubFragmentPattern(rng, options, 2)));
  }
}

TEST(GeneratorTest, TreesRespectBounds) {
  Rng rng(4);
  TreeGenOptions options;
  options.max_nodes = 50;
  options.max_depth = 4;
  for (int i = 0; i < 20; ++i) {
    Tree t = RandomTree(rng, options);
    EXPECT_LE(t.size(), 50);
    EXPECT_LE(t.SubtreeHeight(t.root()), 4);
    EXPECT_GE(t.size(), 1);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  PatternGenOptions options;
  Rng rng1(99), rng2(99);
  for (int i = 0; i < 10; ++i) {
    Pattern p1 = RandomPattern(rng1, options);
    Pattern p2 = RandomPattern(rng2, options);
    EXPECT_TRUE(Isomorphic(p1, p2));
  }
}

TEST(GeneratorTest, PrefixViewIsUpperPattern) {
  Rng rng(5);
  PatternGenOptions options;
  for (int i = 0; i < 30; ++i) {
    Pattern p = RandomPattern(rng, options);
    int k = -1;
    Pattern v = PrefixView(rng, p, &k);
    SelectionInfo pv(v);
    EXPECT_EQ(pv.depth(), k);
    EXPECT_TRUE(Isomorphic(v, UpperPattern(p, k)));
  }
}

TEST(GeneratorTest, PrefixViewInstancesAlwaysRewrite) {
  Rng rng(6);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  for (int i = 0; i < 15; ++i) {
    Pattern p = RandomPattern(rng, options);
    int k = -1;
    Pattern v = PrefixView(rng, p, &k);
    RewriteResult result = DecideRewrite(p, v);
    EXPECT_EQ(result.status, RewriteStatus::kFound)
        << "P = " << ToXPath(p) << ", V = " << ToXPath(v) << ": "
        << result.explanation;
  }
}

TEST(GeneratorTest, DocumentWithMatchesContainsWeakMatches) {
  Rng rng(7);
  PatternGenOptions popts;
  popts.wildcard_prob = 0.2;
  TreeGenOptions topts;
  topts.max_nodes = 40;
  for (int i = 0; i < 10; ++i) {
    Pattern p = RandomPattern(rng, popts);
    Tree doc = DocumentWithMatches(rng, p, topts, /*copies=*/2);
    EXPECT_FALSE(EvalWeak(p, doc).empty()) << ToXPath(p);
  }
}

TEST(GeneratorTest, GenLabelIsStable) {
  EXPECT_EQ(GenLabel(0), L("a0"));
  EXPECT_EQ(GenLabel(3), L("a3"));
}

}  // namespace
}  // namespace xpv
