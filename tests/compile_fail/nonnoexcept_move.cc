// Negative-compile case: a value type whose move constructor is
// potentially-throwing, pinned by the same static_assert shape as
// tests/static_contracts_test.cc. Containers relocate via
// std::move_if_noexcept — a throwing move silently turns vector growth
// into deep copies, so the pins turn that regression into a build break.
//
// Default build: VIOLATES (user-declared move without noexcept) — the
// static_assert must fire on every compiler.
// -DXPV_EXPECT_OK: corrected variant (noexcept move) — must compile.

#include <string>
#include <type_traits>
#include <utility>

namespace {

// Stand-in for a library value type (an answer row, a memo entry): a
// buffer plus bookkeeping, with a user-declared move constructor — the
// situation where forgetting `noexcept` is easiest, because the default
// would have derived it.
class Row {
 public:
  Row() = default;
#if defined(XPV_EXPECT_OK)
  Row(Row&& other) noexcept
      : payload_(std::move(other.payload_)), generation_(other.generation_) {}
  Row& operator=(Row&& other) noexcept {
#else
  Row(Row&& other)  // BUG: no noexcept — vectors of Row now copy on growth.
      : payload_(std::move(other.payload_)), generation_(other.generation_) {}
  Row& operator=(Row&& other) {
#endif
    payload_ = std::move(other.payload_);
    generation_ = other.generation_;
    return *this;
  }

 private:
  std::string payload_;
  int generation_ = 0;
};

// The pin, exactly as the static-contracts suite spells it.
static_assert(std::is_nothrow_move_constructible_v<Row> &&
                  std::is_nothrow_move_assignable_v<Row>,
              "Row must be nothrow-movable: it rides in serving-path "
              "vectors that relocate via std::move_if_noexcept");

}  // namespace

int main() { return 0; }
