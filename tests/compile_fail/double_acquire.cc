// Negative-compile case: acquiring a non-reentrant mutex the scope
// already holds — a guaranteed deadlock with std::mutex. Typically
// introduced by an inner helper growing its own lock after being inlined
// into a locked caller (the failure mode -Wshadow also patrols when the
// inner lock shadows the outer one).
//
// Default build: VIOLATES (second MutexLock on a held capability) —
// clang must reject.
// -DXPV_EXPECT_OK: corrected variant (single acquisition) — must compile.

#include "util/sync.h"

namespace {

class Widget {
 public:
  int Touch() {
    xpv::MutexLock outer(mu_);
#if !defined(XPV_EXPECT_OK)
    xpv::MutexLock inner(mu_);  // BUG: mu_ already held — self-deadlock.
#endif
    return ++state_;
  }

 private:
  xpv::Mutex mu_;
  int state_ XPV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  return w.Touch();
}
