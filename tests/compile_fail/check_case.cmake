# Runs one negative-compile case (see CMakeLists.txt in this directory).
#
# Inputs (all -D):
#   COMPILER     - C++ compiler executable
#   COMPILER_ID  - CMAKE_CXX_COMPILER_ID of that compiler
#   SOURCE       - the case's .cc file
#   INCLUDE_DIR  - repo src/ root (for "util/sync.h")
#   MODE         - "ok": corrected variant must compile everywhere;
#                  "fail": violating variant must be rejected
#   ANALYSIS     - which gate the case exercises:
#                    tsa          clang -Werror=thread-safety (clang-only:
#                                 fail mode skips on other compilers)
#                    nodiscard    -Werror=unused-result ([[nodiscard]]
#                                 sweep; enforced on GCC and clang)
#                    staticassert compile-time static_assert pins
#                                 (enforced on every compiler)

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})

# Per-analysis: extra flags, the stderr signature the rejection must carry
# (so a case failing for an unrelated reason — a typo, a missing include —
# cannot masquerade as the gate working), and whether only clang has the
# analysis at all.
if(ANALYSIS STREQUAL "tsa")
  set(analysis_flags -Wthread-safety -Werror=thread-safety)
  set(expect_re "thread-safety")
  set(clang_only TRUE)
elseif(ANALYSIS STREQUAL "nodiscard")
  set(analysis_flags -Werror=unused-result)
  # GCC: "declared with attribute 'nodiscard'"; clang: "declared with
  # 'nodiscard' attribute".
  set(expect_re "nodiscard")
  set(clang_only FALSE)
elseif(ANALYSIS STREQUAL "staticassert")
  set(analysis_flags "")
  # GCC/new clang: "static assertion failed"; old clang: "static_assert
  # failed".
  set(expect_re "static.?assert")
  set(clang_only FALSE)
else()
  message(FATAL_ERROR "unknown ANALYSIS '${ANALYSIS}'")
endif()

if(MODE STREQUAL "ok")
  set(flags ${base_flags} -DXPV_EXPECT_OK=1)
  if(COMPILER_ID MATCHES "Clang" OR NOT clang_only)
    # The corrected variant must also be analysis-clean, not merely
    # syntactically valid.
    list(APPEND flags ${analysis_flags})
  endif()
  execute_process(COMMAND ${COMPILER} ${flags} ${SOURCE}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "corrected variant of ${SOURCE} failed to compile:\n${err}")
  endif()
  message(STATUS "corrected variant compiles")
elseif(MODE STREQUAL "fail")
  if(clang_only AND NOT COMPILER_ID MATCHES "Clang")
    message(STATUS "[SKIP] ${ANALYSIS} analysis requires clang; "
                   "compiler is ${COMPILER_ID}")
    return()
  endif()
  execute_process(COMMAND ${COMPILER} ${base_flags} ${analysis_flags}
                          ${SOURCE}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "violating variant of ${SOURCE} COMPILED — the ${ANALYSIS} "
            "gate is not enforcing anything")
  endif()
  if(NOT err MATCHES "${expect_re}")
    message(FATAL_ERROR
            "violating variant of ${SOURCE} failed for a reason other "
            "than the ${ANALYSIS} gate (expected stderr matching "
            "'${expect_re}'):\n${err}")
  endif()
  message(STATUS "violation rejected by the ${ANALYSIS} gate")
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
