# Runs one negative-compile case (see CMakeLists.txt in this directory).
#
# Inputs (all -D):
#   COMPILER     - C++ compiler executable
#   COMPILER_ID  - CMAKE_CXX_COMPILER_ID of that compiler
#   SOURCE       - the case's .cc file
#   INCLUDE_DIR  - repo src/ root (for "util/sync.h")
#   MODE         - "ok": corrected variant must compile everywhere;
#                  "fail": violating variant must be rejected by clang's
#                  thread-safety analysis (skips on other compilers)

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
set(tsa_flags -Wthread-safety -Werror=thread-safety)

if(MODE STREQUAL "ok")
  set(flags ${base_flags} -DXPV_EXPECT_OK=1)
  if(COMPILER_ID MATCHES "Clang")
    # The corrected variant must also be annotation-clean, not merely
    # syntactically valid.
    list(APPEND flags ${tsa_flags})
  endif()
  execute_process(COMMAND ${COMPILER} ${flags} ${SOURCE}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "corrected variant of ${SOURCE} failed to compile:\n${err}")
  endif()
  message(STATUS "corrected variant compiles")
elseif(MODE STREQUAL "fail")
  if(NOT COMPILER_ID MATCHES "Clang")
    message(STATUS "[SKIP] thread-safety analysis requires clang; "
                   "compiler is ${COMPILER_ID}")
    return()
  endif()
  execute_process(COMMAND ${COMPILER} ${base_flags} ${tsa_flags} ${SOURCE}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "violating variant of ${SOURCE} COMPILED — the annotations "
            "are not enforcing anything")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
            "violating variant of ${SOURCE} failed for a reason other "
            "than thread-safety analysis:\n${err}")
  endif()
  message(STATUS "violation rejected by -Werror=thread-safety")
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
