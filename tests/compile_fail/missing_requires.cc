// Negative-compile case: calling a function annotated XPV_REQUIRES
// without holding the required capability. This is the "Locked-suffix
// helper called from a new unlocked entry point" mistake — the exact
// shape of Service's EvictSome/AdmitUnderPressure helpers.
//
// Default build: VIOLATES (caller skips the lock) — clang must reject.
// -DXPV_EXPECT_OK: corrected variant (caller locks first) — must compile.

#include "util/sync.h"

namespace {

class Registry {
 public:
  void Add(int v) {
    xpv::MutexLock lock(mu_);
    AddLocked(v);
  }

  void AddFast(int v) {
#if defined(XPV_EXPECT_OK)
    xpv::MutexLock lock(mu_);
    AddLocked(v);
#else
    AddLocked(v);  // BUG: callee requires mu_, caller never locked.
#endif
  }

  int total() const {
    xpv::MutexLock lock(mu_);
    return total_;
  }

 private:
  void AddLocked(int v) XPV_REQUIRES(mu_) { total_ += v; }

  mutable xpv::Mutex mu_;
  int total_ XPV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Add(1);
  r.AddFast(2);
  return r.total();
}
