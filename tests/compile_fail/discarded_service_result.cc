// Negative-compile case: dropping a ServiceResult on the floor. The
// Result family is class-level [[nodiscard]] (src/util/result.h) and the
// project builds with -Werror=unused-result, so a facade call whose error
// is never examined must not compile — on GCC and clang alike. This is
// the end-to-end proof behind the static_contracts_test pins.
//
// Default build: VIOLATES (return value ignored) — must be rejected.
// -DXPV_EXPECT_OK: corrected variant (status checked) — must compile.

#include "api/service.h"

namespace {

// A realistic mutation wrapper: the kind of helper where the original
// call's status quietly vanishes when the author forgets to thread it.
int RemoveAll(xpv::Service& service, xpv::DocumentId id) {
#if defined(XPV_EXPECT_OK)
  xpv::ServiceStatus status = service.RemoveDocument(id);
  return status.ok() ? 0 : 1;
#else
  service.RemoveDocument(id);  // BUG: failure (stale handle, ...) dropped.
  return 0;
#endif
}

}  // namespace

int main() {
  xpv::Service service;
  return RemoveAll(service, xpv::DocumentId{});
}
