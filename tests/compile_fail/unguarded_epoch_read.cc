// Negative-compile case (PR 9): reading per-view epoch state without the
// document stripe. The incremental-update design hangs memo freshness off
// per-view epochs that UpdateDocument bumps under the exclusive stripe; a
// reader that forgets to hold the stripe (even in shared mode) can observe
// a torn epoch/answer pair and serve a stale memo entry as fresh.
//
// Default build: VIOLATES (epoch read outside the stripe) — clang must
// reject. -DXPV_EXPECT_OK: corrected variant (read under a shared lock) —
// must compile everywhere.

#include <cstdint>
#include <vector>

#include "util/sync.h"

namespace {

/// A miniature of the Service's DocSlot: one stripe guarding the per-view
/// epoch vector the memo-validity check reads.
class DocSlot {
 public:
  void BumpViewEpoch(int slot) {
    xpv::WriterLock lock(mu_);
    ++view_epochs_[static_cast<unsigned>(slot)];
  }

  /// The freshness stamp a to-be-memoized answer must carry.
  uint64_t MemoValidity(int slot) const {
#if defined(XPV_EXPECT_OK)
    xpv::ReaderLock lock(mu_);
    return view_epochs_[static_cast<unsigned>(slot)];
#else
    // BUG: per-view epoch read without the stripe — races UpdateDocument.
    return view_epochs_[static_cast<unsigned>(slot)];
#endif
  }

 private:
  mutable xpv::SharedMutex mu_;
  std::vector<uint64_t> view_epochs_ XPV_GUARDED_BY(mu_) = {1, 1};
};

}  // namespace

int main() {
  DocSlot slot;
  slot.BumpViewEpoch(0);
  return static_cast<int>(slot.MemoValidity(0) & 1);
}
