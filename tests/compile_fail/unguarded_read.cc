// Negative-compile case: reading a field annotated XPV_GUARDED_BY without
// holding its capability. This is the bread-and-butter mistake the
// annotations exist to catch — e.g. a stats accessor added next to a
// locked mutator, forgetting that the field is shared.
//
// Default build: VIOLATES (read outside the lock) — clang must reject.
// -DXPV_EXPECT_OK: corrected variant (read under the lock) — must compile.

#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    xpv::MutexLock lock(mu_);
    ++value_;
  }

  int Read() const {
#if defined(XPV_EXPECT_OK)
    xpv::MutexLock lock(mu_);
    return value_;
#else
    return value_;  // BUG: guarded read, mu_ not held.
#endif
  }

 private:
  mutable xpv::Mutex mu_;
  int value_ XPV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read();
}
