// Engine + oracle integration: memoized equivalence tests across repeated
// decisions, and the ViewCache's built-in oracle.

#include <gtest/gtest.h>

#include "containment/oracle.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"
#include "views/view_cache.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

TEST(EngineOracleTest, RepeatedDecisionsHitTheOracle) {
  ContainmentOracle oracle;
  RewriteOptions options;
  options.oracle = &oracle;
  Pattern p = MustParseXPath("a//*/b");
  Pattern v = MustParseXPath("a/*");

  RewriteResult first = DecideRewrite(p, v, options);
  ASSERT_EQ(first.status, RewriteStatus::kFound);
  uint64_t misses_after_first = oracle.misses();
  EXPECT_GT(misses_after_first, 0u);

  RewriteResult second = DecideRewrite(p, v, options);
  ASSERT_EQ(second.status, RewriteStatus::kFound);
  EXPECT_EQ(oracle.misses(), misses_after_first);  // All cached.
  EXPECT_GT(oracle.hits(), 0u);
}

TEST(EngineOracleTest, OracleDoesNotChangeAnswers) {
  ContainmentOracle oracle;
  RewriteOptions with;
  with.oracle = &oracle;
  const char* instances[][2] = {
      {"a/b/c", "a/b"},     {"a//*/b", "a/*"},     {"a/b", "a/b[x]"},
      {"a//b//d", "a//b[x]"}, {"a/*/c", "a/b"},
  };
  for (auto& inst : instances) {
    Pattern p = MustParseXPath(inst[0]);
    Pattern v = MustParseXPath(inst[1]);
    RewriteResult plain = DecideRewrite(p, v);
    RewriteResult memoized = DecideRewrite(p, v, with);
    EXPECT_EQ(plain.status, memoized.status) << inst[0] << " " << inst[1];
  }
}

TEST(EngineOracleTest, ViewCacheAmortizesAcrossQueries) {
  auto doc = ParseXml("<a><b><c/></b><b><c/><d/></b></a>");
  ASSERT_TRUE(doc.ok());
  ViewCache cache(doc.value());
  cache.AddView({"b-view", MustParseXPath("a/b")});
  Pattern q = MustParseXPath("a/b/c");
  (void)cache.Answer(q);  // discard: drives the memo; only the cache counters are asserted
  uint64_t misses_after_first = cache.oracle().misses();
  (void)cache.Answer(q);  // discard: drives the memo; only the cache counters are asserted
  (void)cache.Answer(q);  // discard: drives the memo; only the cache counters are asserted
  EXPECT_EQ(cache.oracle().misses(), misses_after_first);
  EXPECT_GT(cache.oracle().hits(), 0u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

}  // namespace
}  // namespace xpv
