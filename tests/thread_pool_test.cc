// ThreadPool growth semantics: `EnsureThreads` grows the pool IN PLACE —
// existing workers keep running and are reused — and never shrinks.
// Regression for the serving layer's alternating-batch-size workloads,
// where a larger worker count used to join and re-spawn the whole pool.

#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace xpv {
namespace {

/// Runs `n` tasks that rendezvous (all must be running simultaneously
/// before any finishes), proving `n` distinct live workers; returns their
/// thread ids.
std::set<std::thread::id> RendezvousWorkerIds(ThreadPool* pool, int n) {
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::set<std::thread::id> ids;
  for (int i = 0; i < n; ++i) {
    pool->Submit([&mu, &cv, &arrived, &ids, n] {
      std::unique_lock<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&arrived, n] { return arrived >= n; });
    });
  }
  pool->Wait();
  return ids;
}

TEST(ThreadPoolTest, EnsureThreadsGrowsInPlaceAndReusesWorkers) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  const std::set<std::thread::id> before = RendezvousWorkerIds(&pool, 2);
  ASSERT_EQ(before.size(), 2u);

  pool.EnsureThreads(8);
  EXPECT_EQ(pool.num_threads(), 8);
  // Alternating small requests never shrink the pool.
  pool.EnsureThreads(2);
  EXPECT_EQ(pool.num_threads(), 8);

  // An 8-way rendezvous requires all 8 workers alive at once; the two
  // original workers are among them — they were reused, not joined and
  // re-spawned.
  const std::set<std::thread::id> after = RendezvousWorkerIds(&pool, 8);
  ASSERT_EQ(after.size(), 8u);
  for (std::thread::id id : before) {
    EXPECT_EQ(after.count(id), 1u) << "original worker was not reused";
  }
}

TEST(ThreadPoolTest, EnsureThreadsIsSafeWhileTasksRun) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  // Grow while the single worker is blocked inside a task.
  pool.EnsureThreads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  // The new workers drain the queue even though the first is busy.
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < 4) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace xpv
