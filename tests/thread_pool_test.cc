// ThreadPool growth semantics: `EnsureThreads` grows the pool IN PLACE —
// existing workers keep running and are reused — and never shrinks.
// Regression for the serving layer's alternating-batch-size workloads,
// where a larger worker count used to join and re-spawn the whole pool.

#include "util/thread_pool.h"

#include <atomic>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "util/cancel.h"
#include "util/sync.h"

namespace xpv {
namespace {

/// Runs `n` tasks that rendezvous (all must be running simultaneously
/// before any finishes), proving `n` distinct live workers; returns their
/// thread ids.
std::set<std::thread::id> RendezvousWorkerIds(ThreadPool* pool, int n) {
  Mutex mu;
  CondVar cv;
  int arrived = 0;
  std::set<std::thread::id> ids;
  for (int i = 0; i < n; ++i) {
    pool->Submit([&mu, &cv, &arrived, &ids, n] {
      MutexLock lock(mu);
      ids.insert(std::this_thread::get_id());
      ++arrived;
      cv.NotifyAll();
      while (arrived < n) cv.Wait(mu);
    });
  }
  pool->Wait();
  return ids;
}

TEST(ThreadPoolTest, EnsureThreadsGrowsInPlaceAndReusesWorkers) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  const std::set<std::thread::id> before = RendezvousWorkerIds(&pool, 2);
  ASSERT_EQ(before.size(), 2u);

  pool.EnsureThreads(8);
  EXPECT_EQ(pool.num_threads(), 8);
  // Alternating small requests never shrink the pool.
  pool.EnsureThreads(2);
  EXPECT_EQ(pool.num_threads(), 8);

  // An 8-way rendezvous requires all 8 workers alive at once; the two
  // original workers are among them — they were reused, not joined and
  // re-spawned.
  const std::set<std::thread::id> after = RendezvousWorkerIds(&pool, 8);
  ASSERT_EQ(after.size(), 8u);
  for (std::thread::id id : before) {
    EXPECT_EQ(after.count(id), 1u) << "original worker was not reused";
  }
}

TEST(ThreadPoolTest, EnsureThreadsIsSafeWhileTasksRun) {
  ThreadPool pool(1);
  Mutex mu;
  CondVar cv;
  bool release = false;
  pool.Submit([&] {
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
  });
  // Grow while the single worker is blocked inside a task.
  pool.EnsureThreads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  // The new workers drain the queue even though the first is busy.
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < 4) std::this_thread::yield();
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  pool.Wait();
  EXPECT_EQ(done.load(), 4);
}

// --------------------------------------------- task-exception safety

TEST(ThreadPoolTest, TaskGroupCapturesExceptionInsteadOfTerminating) {
  // A throwing task must fail the group STRUCTURALLY: the worker survives,
  // Wait() returns, ok() flips, and RethrowIfFailed() re-raises the
  // ORIGINAL exception type on the awaiting thread.
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("task boom"); });
  group.Wait();
  EXPECT_FALSE(group.ok());
  try {
    group.RethrowIfFailed();
    FAIL() << "expected the task's exception to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // The pool is intact: a fresh group still runs to completion.
  std::atomic<int> ran{0};
  ThreadPool::TaskGroup after(&pool);
  after.Submit([&ran] { ran.fetch_add(1); });
  after.Wait();
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, TaskGroupFailureCancelsQueuedSiblings) {
  // After one task fails, queued siblings are SKIPPED (they count as
  // complete without running) — a failed batch stops burning CPU on work
  // whose result will be thrown away.
  ThreadPool pool(1);  // Single worker: strict queue order.
  Mutex mu;
  CondVar cv;
  bool release = false;
  ThreadPool::TaskGroup group(&pool);
  group.Submit([&] {
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
    throw std::runtime_error("first fails");
  });
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.Submit([&ran] { ran.fetch_add(1); });
  }
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  group.Wait();
  EXPECT_FALSE(group.ok());
  EXPECT_EQ(ran.load(), 0);       // All siblings were queued behind it...
  EXPECT_EQ(group.skipped(), 8u); // ...and skipped after the failure.
}

TEST(ThreadPoolTest, TaskGroupExternalCancelSkipsTasks) {
  ThreadPool pool(1);
  CancelToken cancel = CancelToken::Cancellable();
  cancel.Cancel();  // Dead before any task starts.
  std::atomic<int> ran{0};
  {
    CancelScope scope(cancel);
    ThreadPool::TaskGroup group(&pool, CancelScope::Current());
    for (int i = 0; i < 4; ++i) {
      group.Submit([&ran] { ran.fetch_add(1); });
    }
    group.Wait();
    EXPECT_TRUE(group.ok());  // Cancellation is not a task failure.
    EXPECT_EQ(group.skipped(), 4u);
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, RawSubmitEscapeeIsCountedNotFatal) {
  // Raw Submit (no group) has nowhere to deliver an exception; the worker
  // must swallow and count it rather than std::terminate the process.
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("escapee"); });
  pool.Wait();
  EXPECT_EQ(pool.uncaught_task_exceptions(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });  // Worker still alive.
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

// --------------------------------------------------- bounded admission

TEST(ThreadPoolTest, BoundedQueueRefusesWithoutConsumingTheTask) {
  ThreadPool pool(1, /*max_queue=*/2);
  Mutex mu;
  CondVar cv;
  bool release = false;
  // Wedge the single worker so submissions pile into the queue — and WAIT
  // until the worker holds the wedge, so it no longer occupies a queue
  // slot (otherwise the fill below races the dequeue).
  std::atomic<bool> wedged{false};
  pool.Submit([&] {
    MutexLock lock(mu);
    wedged.store(true);
    cv.NotifyAll();
    while (!release) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    while (!wedged.load()) cv.Wait(mu);
  }
  // Fill the bounded queue, then overflow it.
  std::atomic<int> ran{0};
  auto count = [&ran] { ran.fetch_add(1); };
  std::function<void()> task = count;
  ASSERT_TRUE(pool.TrySubmit(task));
  task = count;
  ASSERT_TRUE(pool.TrySubmit(task));
  task = count;
  EXPECT_FALSE(pool.TrySubmit(task));
  ASSERT_NE(task, nullptr);  // Refusal does NOT consume the task...
  task();                    // ...so the caller can run it inline.
  EXPECT_EQ(pool.queue_rejections(), 1u);
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);  // 2 pooled + 1 inline.
}

TEST(ThreadPoolTest, TaskGroupDegradesToInlineOnFullQueue) {
  // TaskGroup::Submit over a full queue runs the chunk on the SUBMITTING
  // thread (caller-pays backpressure): every task still completes exactly
  // once and the group drains normally.
  ThreadPool pool(1, /*max_queue=*/1);
  Mutex mu;
  CondVar cv;
  bool release = false;
  std::atomic<bool> wedged{false};
  pool.Submit([&] {
    MutexLock lock(mu);
    wedged.store(true);
    cv.NotifyAll();
    while (!release) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    while (!wedged.load()) cv.Wait(mu);
  }
  std::atomic<int> ran{0};
  const std::thread::id submitter = std::this_thread::get_id();
  std::atomic<int> inline_runs{0};
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 6; ++i) {
    group.Submit([&ran, &inline_runs, submitter] {
      ran.fetch_add(1);
      if (std::this_thread::get_id() == submitter) inline_runs.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  group.Wait();
  EXPECT_TRUE(group.ok());
  EXPECT_EQ(ran.load(), 6);
  EXPECT_GE(inline_runs.load(), 1);  // The overflow ran caller-side.
  EXPECT_GE(pool.queue_rejections(), 1u);
}

}  // namespace
}  // namespace xpv
