// Property/fuzz suite for incremental updates (PR 9): seeded random delta
// sequences driven through `Service::UpdateDocument` must be
// indistinguishable — answers AND serving counters — from (a) a twin that
// goes the heavyweight `ReplaceDocument` + re-`AddView` route, and (b) a
// from-scratch service built off the final document after every step.
// Each round runs at 1/2/4 batch workers and the three runs must agree
// bit-for-bit, so the worker count can never leak into results. A final
// concurrent-reader scenario races `Answer` against a delta stream for
// the TSan leg.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "pattern/serializer.h"
#include "workload/generator.h"
#include "xml/tree.h"

namespace xpv {
namespace {

struct ViewSpec {
  std::string name;
  std::string xpath;
};

void AddViews(Service& service, DocumentId doc,
              const std::vector<ViewSpec>& views) {
  for (const ViewSpec& v : views) {
    ASSERT_TRUE(service.AddView(doc, v.name, v.xpath).ok()) << v.xpath;
  }
}

/// Everything one fuzz round observes. Two rounds with the same seed but
/// different worker counts must produce equal outcomes.
struct RoundOutcome {
  std::vector<std::vector<NodeId>> outputs;  ///< Per probe, across steps.
  std::vector<bool> hits;
  std::vector<std::string> view_names;
  uint64_t queries = 0;  ///< Serving counters of the incremental twin.
  uint64_t view_hits = 0;
  uint64_t rewrite_unknown = 0;

  bool operator==(const RoundOutcome& o) const {
    return outputs == o.outputs && hits == o.hits &&
           view_names == o.view_names && queries == o.queries &&
           view_hits == o.view_hits && rewrite_unknown == o.rewrite_unknown;
  }
};

/// One seeded round: a random document, views with guaranteed rewritings
/// (prefix views of the probe patterns), then `steps` random deltas. After
/// every delta the same probe batch runs on the incremental service, the
/// replace twin and a from-scratch service; all three must agree per item.
void RunRound(uint64_t seed, int workers, int steps, RoundOutcome* out) {
  RoundOutcome& outcome = *out;
  Rng rng(seed);

  TreeGenOptions tree_gen;
  tree_gen.max_nodes = 36;
  tree_gen.max_depth = 5;
  PatternGenOptions pat_gen;
  pat_gen.max_depth = 3;
  pat_gen.max_branches = 2;

  // Probe patterns + their prefix views (so the hit path gets exercised),
  // plus the raw patterns themselves as extra probes with no matching view.
  std::vector<ViewSpec> views;
  std::vector<std::string> probes;
  for (int i = 0; i < 3; ++i) {
    Pattern p = RandomPattern(rng, pat_gen);
    int k = 0;
    Pattern v = PrefixView(rng, p, &k);
    views.push_back({"v" + std::to_string(i), ToXPath(v)});
    probes.push_back(ToXPath(p));
  }
  probes.push_back("a0//*");
  probes.push_back("a1");

  Tree doc0 = RandomTree(rng, tree_gen);

  Service inc;
  DocumentId inc_doc = inc.AddDocument(doc0);
  AddViews(inc, inc_doc, views);
  Service rep;
  DocumentId rep_doc = rep.AddDocument(doc0);
  AddViews(rep, rep_doc, views);

  DeltaGenOptions delta_gen;
  delta_gen.max_ops = 3;
  delta_gen.max_insert_nodes = 5;

  CallOptions call;
  call.num_workers = workers;

  for (int step = 0; step < steps; ++step) {
    DocumentDelta delta = RandomDelta(rng, *inc.document(inc_doc), delta_gen);
    ASSERT_TRUE(inc.UpdateDocument(inc_doc, std::move(delta)).ok()) << step;

    // Replace twin: same final tree via the sledgehammer (drops views, so
    // they must be re-added). From-scratch twin: a brand-new service.
    const Tree& current = *inc.document(inc_doc);
    ASSERT_TRUE(rep.ReplaceDocument(rep_doc, current).ok()) << step;
    AddViews(rep, rep_doc, views);
    Service fresh;
    DocumentId fresh_doc = fresh.AddDocument(current);
    AddViews(fresh, fresh_doc, views);

    auto batch_for = [&probes](DocumentId d) {
      std::vector<BatchItem> items;
      items.reserve(probes.size());
      for (const std::string& q : probes) items.push_back({d, Query(q)});
      return items;
    };
    ServiceResult<BatchAnswers> got = inc.AnswerBatch(batch_for(inc_doc), call);
    ServiceResult<BatchAnswers> rep_got =
        rep.AnswerBatch(batch_for(rep_doc), call);
    ServiceResult<BatchAnswers> fresh_got =
        fresh.AnswerBatch(batch_for(fresh_doc), call);
    ASSERT_TRUE(got.ok() && rep_got.ok() && fresh_got.ok()) << step;
    ASSERT_EQ(got.value().size(), probes.size());

    for (size_t i = 0; i < probes.size(); ++i) {
      const ServiceResult<Answer>& a = got.value().answers[i];
      const ServiceResult<Answer>& b = rep_got.value().answers[i];
      const ServiceResult<Answer>& c = fresh_got.value().answers[i];
      ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << probes[i];
      EXPECT_EQ(a.value().outputs, b.value().outputs)
          << "replace twin diverged: " << probes[i] << " step " << step;
      EXPECT_EQ(a.value().outputs, c.value().outputs)
          << "from-scratch twin diverged: " << probes[i] << " step " << step;
      EXPECT_EQ(a.value().hit, b.value().hit) << probes[i];
      EXPECT_EQ(a.value().hit, c.value().hit) << probes[i];
      EXPECT_EQ(a.value().view_name, b.value().view_name) << probes[i];
      EXPECT_EQ(a.value().view_name, c.value().view_name) << probes[i];
      outcome.outputs.push_back(a.value().outputs);
      outcome.hits.push_back(a.value().hit);
      outcome.view_names.push_back(a.value().view_name);
    }

    // Serving counters (memo-independent by contract) must match the
    // replace twin exactly: the incremental path may save memo/oracle
    // work, never change what was served.
    ServiceStats inc_stats = inc.stats();
    ServiceStats rep_stats = rep.stats();
    EXPECT_EQ(inc_stats.queries, rep_stats.queries) << step;
    EXPECT_EQ(inc_stats.hits, rep_stats.hits) << step;
    EXPECT_EQ(inc_stats.rewrite_unknown, rep_stats.rewrite_unknown) << step;
  }

  ServiceStats final_stats = inc.stats();
  outcome.queries = final_stats.queries;
  outcome.view_hits = final_stats.hits;
  outcome.rewrite_unknown = final_stats.rewrite_unknown;
  EXPECT_EQ(final_stats.updates_applied, static_cast<uint64_t>(steps));
}

TEST(UpdateFuzzTest, DeltaSequencesMatchBothTwinsAtEveryWorkerCount) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RoundOutcome w1, w2, w4;
    RunRound(seed, /*workers=*/1, /*steps=*/4, &w1);
    RunRound(seed, /*workers=*/2, /*steps=*/4, &w2);
    RunRound(seed, /*workers=*/4, /*steps=*/4, &w4);
    EXPECT_TRUE(w1 == w2) << "seed " << seed;
    EXPECT_TRUE(w1 == w4) << "seed " << seed;
  }
}

TEST(UpdateFuzzTest, WriteFractionMixesReadsAndWritesDeterministically) {
  // The generator's read-write mix knob: the same seed must always carve
  // the same request stream into reads and writes, and the stream must
  // actually mix (both kinds occur at a 0.3 fraction over 200 draws).
  DeltaGenOptions gen;
  gen.write_fraction = 0.3;
  Rng a(42), b(42);
  int writes = 0;
  for (int i = 0; i < 200; ++i) {
    bool wa = a.Chance(gen.write_fraction);
    bool wb = b.Chance(gen.write_fraction);
    ASSERT_EQ(wa, wb) << i;
    writes += wa ? 1 : 0;
  }
  EXPECT_GT(writes, 20);
  EXPECT_LT(writes, 120);
}

TEST(UpdateFuzzTest, ConcurrentReadersRaceTheDeltaStream) {
  // TSan scenario: readers hammer `Answer` on two fixed probes while the
  // main thread applies a long random delta stream. Every read must be a
  // structured success whose outputs match SOME consistent document state
  // — concretely, it must never throw, tear, or fail; exact values are
  // checked by the sequential twins above.
  Service service;
  Rng rng(20260807);
  TreeGenOptions tree_gen;
  tree_gen.max_nodes = 32;
  DocumentId doc = service.AddDocument(RandomTree(rng, tree_gen));
  ASSERT_TRUE(service.AddView(doc, "v0", "a0").ok());
  ASSERT_TRUE(service.AddView(doc, "v1", "a0//a1").ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&service, doc, &done, &reads] {
      const char* probes[] = {"a0//a1", "a0/*", "a0//a2[a1]"};
      int i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        ServiceResult<Answer> answer = service.Answer(doc, probes[i++ % 3]);
        ASSERT_TRUE(answer.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Keep the delta stream flowing until the readers have demonstrably
  // overlapped with it (updates are microseconds; thread startup is not),
  // with a generous cap so a wedged reader cannot hang the test.
  DeltaGenOptions delta_gen;
  delta_gen.max_ops = 2;
  delta_gen.max_insert_nodes = 4;
  uint64_t steps = 0;
  while (steps < 60 ||
         (reads.load(std::memory_order_relaxed) < 200 && steps < 5000)) {
    DocumentDelta delta = RandomDelta(rng, *service.document(doc), delta_gen);
    ASSERT_TRUE(service.UpdateDocument(doc, std::move(delta)).ok()) << steps;
    ++steps;
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(service.stats().updates_applied, steps);
}

}  // namespace
}  // namespace xpv
