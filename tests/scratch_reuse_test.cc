// The buffer-banking contracts behind the zero-malloc cold path: Tree
// truncation that keeps child-list buffers, Pattern reset-in-place, the
// in-place algebra (`*Into`) matching the value-returning originals on
// random inputs, and BundlePool rebuilds matching fresh bundles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pattern/algebra.h"
#include "pattern/pattern.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "xml/tree.h"

namespace xpv {
namespace {

Pattern MustParse(const std::string& xpath) {
  auto result = ParseXPath(xpath);
  EXPECT_TRUE(result.ok()) << xpath;
  return std::move(result).value();
}

// ------------------------------------------------------------ tree bank

TEST(ScratchReuseTest, TreeTruncateThenRegrowIsEquivalentToFresh) {
  // The canonical-model odometer pattern: grow, truncate to a prefix,
  // grow differently — the result must be indistinguishable from a tree
  // built fresh, even though the child-list buffers are recycled.
  Tree reused(1);
  NodeId a = reused.AddChild(reused.root(), 2);
  reused.AddChild(a, 3);
  reused.AddChild(a, 4);
  reused.AddChild(reused.root(), 5);

  reused.TruncateTo(2);  // Keep root and `a` only.
  NodeId x = reused.AddChild(a, 7);
  reused.AddChild(x, 8);

  Tree fresh(1);
  NodeId fa = fresh.AddChild(fresh.root(), 2);
  NodeId fx = fresh.AddChild(fa, 7);
  fresh.AddChild(fx, 8);

  ASSERT_EQ(reused.size(), fresh.size());
  for (NodeId n = 0; n < reused.size(); ++n) {
    EXPECT_EQ(reused.label(n), fresh.label(n)) << n;
    EXPECT_EQ(reused.children(n), fresh.children(n)) << n;
  }
}

TEST(ScratchReuseTest, TreeTruncateSweepKeepsEveryPrefixConsistent) {
  // Odometer sweep: repeatedly truncate to every prefix length and
  // regrow a chain; stale banked children must never resurface.
  Tree t(1);
  NodeId tip = t.root();
  for (int i = 0; i < 6; ++i) tip = t.AddChild(tip, 2);
  for (int keep = t.size(); keep >= 1; --keep) {
    t.TruncateTo(keep);
    ASSERT_EQ(t.size(), keep);
    for (NodeId n = 0; n < t.size(); ++n) {
      for (NodeId c : t.children(n)) {
        ASSERT_LT(c, t.size()) << "banked child leaked after truncate";
      }
    }
    // Regrow one node and re-truncate: the bank absorbs and re-issues.
    t.AddChild(static_cast<NodeId>(keep - 1), 9);
    ASSERT_EQ(t.label(static_cast<NodeId>(keep)), 9);
    t.TruncateTo(keep);
  }
}

// --------------------------------------------------------- pattern bank

TEST(ScratchReuseTest, PatternResetToRootReusesStorage) {
  Pattern p = MustParse("a/b[c]//d");
  p.ResetToRoot(42);
  EXPECT_EQ(p.size(), 1);
  EXPECT_EQ(p.label(p.root()), 42);
  EXPECT_TRUE(p.children(p.root()).empty());
  // Regrow into the banked buffers; the result is a normal pattern.
  NodeId b = p.AddChild(p.root(), 7, EdgeType::kChild);
  p.AddChild(b, 8, EdgeType::kDescendant);
  EXPECT_EQ(p.size(), 3);
  Pattern fresh(42);
  NodeId fb = fresh.AddChild(fresh.root(), 7, EdgeType::kChild);
  fresh.AddChild(fb, 8, EdgeType::kDescendant);
  EXPECT_EQ(p.CanonicalEncoding(), fresh.CanonicalEncoding());
}

// ------------------------------------------------------- algebra *Into

TEST(ScratchReuseTest, IntoVariantsMatchValueVariantsOnRandomPatterns) {
  Rng rng(20260813);
  PatternGenOptions options;
  options.max_depth = 4;
  options.max_branches = 3;
  options.descendant_prob = 0.5;
  options.wildcard_prob = 0.3;
  // One set of recycled outputs across every iteration — the point is
  // that reuse across differently-shaped inputs leaves no residue.
  Pattern sub_out = Pattern::Empty();
  Pattern relaxed_out = Pattern::Empty();
  Pattern compose_out = Pattern::Empty();
  std::vector<NodeId> map;
  for (int i = 0; i < 60; ++i) {
    Pattern p = RandomPattern(rng, options);
    Pattern v = RandomPattern(rng, options);
    const int depth = SelectionInfo(p).depth();
    for (int k = 0; k <= depth; ++k) {
      SubPatternInto(p, k, &sub_out, &map);
      EXPECT_EQ(sub_out.CanonicalEncoding(),
                SubPattern(p, k).CanonicalEncoding())
          << ToXPath(p) << " k=" << k;
    }
    RelaxRootEdgesInto(p, &relaxed_out, &map);
    EXPECT_EQ(relaxed_out.CanonicalEncoding(),
              RelaxRootEdges(p).CanonicalEncoding())
        << ToXPath(p);
    ComposeInto(p, v, &compose_out, &map);
    EXPECT_EQ(compose_out.CanonicalEncoding(),
              Compose(p, v).CanonicalEncoding())
        << ToXPath(p) << " o " << ToXPath(v);
  }
}

TEST(ScratchReuseTest, ComposeIntoHandlesFailureThenSuccessInOneBuffer) {
  // A failed composition (label glb mismatch) resets the output; the
  // same buffer must then hold a subsequent successful composition.
  Pattern out = Pattern::Empty();
  std::vector<NodeId> map;
  Pattern a = MustParse("a/b");
  Pattern c = MustParse("c");
  ComposeInto(a, c, &out, &map);  // a vs c at the seam: no composition.
  EXPECT_TRUE(out.IsEmpty());
  Pattern v = MustParse("a");
  ComposeInto(a, v, &out, &map);
  EXPECT_EQ(out.CanonicalEncoding(), Compose(a, v).CanonicalEncoding());
}

// ---------------------------------------------------------- bundle pool

TEST(ScratchReuseTest, BundlePoolRebuildsMatchFreshBundles) {
  Rng rng(20260814);
  PatternGenOptions options;
  options.max_depth = 4;
  options.max_branches = 3;
  options.descendant_prob = 0.5;
  BundlePool pool;
  for (int round = 0; round < 10; ++round) {
    pool.Rewind();
    std::vector<const CandidateBundle*> built;
    std::vector<Pattern> queries;
    std::vector<Pattern> views;
    for (int i = 0; i < 8; ++i) {
      queries.push_back(RandomPattern(rng, options));
      views.push_back(RandomPattern(rng, options));
    }
    for (int i = 0; i < 8; ++i) {
      const int depth = SelectionInfo(views[static_cast<size_t>(i)]).depth();
      const int k = std::min(depth,
                             SelectionInfo(queries[static_cast<size_t>(i)]).depth());
      built.push_back(&pool.Build(queries[static_cast<size_t>(i)],
                                  views[static_cast<size_t>(i)], k));
    }
    // Addresses stay stable until Rewind, and every recycled bundle
    // matches a from-scratch build of the same pair.
    for (int i = 0; i < 8; ++i) {
      const int depth = SelectionInfo(views[static_cast<size_t>(i)]).depth();
      const int k = std::min(depth,
                             SelectionInfo(queries[static_cast<size_t>(i)]).depth());
      CandidateBundle fresh = MakeCandidateBundle(
          queries[static_cast<size_t>(i)], views[static_cast<size_t>(i)], k);
      const CandidateBundle& reused = *built[static_cast<size_t>(i)];
      EXPECT_EQ(reused.natural.sub.CanonicalEncoding(),
                fresh.natural.sub.CanonicalEncoding());
      EXPECT_EQ(reused.natural.coincide, fresh.natural.coincide);
      EXPECT_EQ(reused.sub_composition.CanonicalEncoding(),
                fresh.sub_composition.CanonicalEncoding());
      if (!fresh.natural.coincide) {
        EXPECT_EQ(reused.natural.relaxed.CanonicalEncoding(),
                  fresh.natural.relaxed.CanonicalEncoding());
        EXPECT_EQ(reused.relaxed_composition.CanonicalEncoding(),
                  fresh.relaxed_composition.CanonicalEncoding());
      }
    }
  }
  EXPECT_LE(pool.capacity(), 8u);  // Rewind recycled; no growth per round.
}

}  // namespace
}  // namespace xpv
