// Pins the wide (SIMD) bit-row operations bit-identical to the scalar
// reference implementations. The scalar `*Scalar` functions are compiled
// in BOTH build modes (`XPV_SIMD=avx2` and `off`), so this suite is the
// property check that the AVX2 lanes + scalar tails compute exactly the
// same words — on every word count around the 4-word lane boundary, on
// unaligned offsets, and on adversarial bit patterns.

#include <gtest/gtest.h>

#include <vector>

#include "containment/bitmatrix.h"
#include "util/rng.h"

namespace xpv {
namespace {

std::vector<BitWord> RandomRow(Rng& rng, int words) {
  std::vector<BitWord> row(static_cast<size_t>(words));
  for (BitWord& w : row) {
    // Mix dense, sparse, and structured words so carries of the subset
    // test and the tail masks all get exercised.
    switch (rng.Below(4)) {
      case 0:
        w = rng.Next();
        break;
      case 1:
        w = rng.Next() & rng.Next() & rng.Next();  // Sparse.
        break;
      case 2:
        w = rng.Next() | rng.Next() | rng.Next();  // Dense.
        break;
      default:
        w = (rng.Below(2) != 0) ? ~BitWord{0} : BitWord{0};
        break;
    }
  }
  return row;
}

// Word counts straddling the AVX2 lane width (4 words): below-lane rows
// (the public names dispatch those straight to the scalar loop),
// exact-lane rows, and lane+tail rows.
const int kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 31};

TEST(SimdRowsTest, OrRowMatchesScalar) {
  Rng rng(20260807);
  for (int words : kWordCounts) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<BitWord> src = RandomRow(rng, words);
      std::vector<BitWord> wide = RandomRow(rng, words);
      std::vector<BitWord> scalar = wide;
      OrRow(wide.data(), src.data(), words);
      OrRowScalar(scalar.data(), src.data(), words);
      EXPECT_EQ(wide, scalar) << "words=" << words;
    }
  }
}

TEST(SimdRowsTest, AndRowMatchesScalar) {
  Rng rng(20260808);
  for (int words : kWordCounts) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<BitWord> src = RandomRow(rng, words);
      std::vector<BitWord> wide = RandomRow(rng, words);
      std::vector<BitWord> scalar = wide;
      AndRow(wide.data(), src.data(), words);
      AndRowScalar(scalar.data(), src.data(), words);
      EXPECT_EQ(wide, scalar) << "words=" << words;
    }
  }
}

TEST(SimdRowsTest, OrRowsIntoMatchesScalar) {
  Rng rng(20260809);
  for (int words : kWordCounts) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<BitWord> a = RandomRow(rng, words);
      std::vector<BitWord> b = RandomRow(rng, words);
      std::vector<BitWord> wide(static_cast<size_t>(words), 0xDEAD);
      std::vector<BitWord> scalar(static_cast<size_t>(words), 0xBEEF);
      OrRowsInto(wide.data(), a.data(), b.data(), words);
      OrRowsIntoScalar(scalar.data(), a.data(), b.data(), words);
      EXPECT_EQ(wide, scalar) << "words=" << words;
    }
  }
}

TEST(SimdRowsTest, ContainsAllBitsMatchesScalar) {
  Rng rng(20260810);
  for (int words : kWordCounts) {
    for (int iter = 0; iter < 120; ++iter) {
      std::vector<BitWord> row = RandomRow(rng, words);
      std::vector<BitWord> required = RandomRow(rng, words);
      // Bias half the iterations toward true subsets (the interesting
      // direction): required ⊆ row by construction.
      if (iter % 2 == 0) {
        for (int w = 0; w < words; ++w) {
          required[static_cast<size_t>(w)] &= row[static_cast<size_t>(w)];
        }
      }
      EXPECT_EQ(ContainsAllBits(row.data(), required.data(), words),
                ContainsAllBitsScalar(row.data(), required.data(), words))
          << "words=" << words;
    }
  }
}

TEST(SimdRowsTest, ContainsAllBitsCatchesSingleMissingBit) {
  // The sharpest failure mode of a bad tail mask: one required bit set in
  // the very last word (or any single word) that the row lacks.
  for (int words : kWordCounts) {
    std::vector<BitWord> row(static_cast<size_t>(words), ~BitWord{0});
    std::vector<BitWord> required(static_cast<size_t>(words), ~BitWord{0});
    for (int w = 0; w < words; ++w) {
      for (int bit : {0, 17, 63}) {
        row[static_cast<size_t>(w)] &= ~(BitWord{1} << bit);
        EXPECT_FALSE(ContainsAllBits(row.data(), required.data(), words))
            << "words=" << words << " w=" << w << " bit=" << bit;
        EXPECT_EQ(ContainsAllBits(row.data(), required.data(), words),
                  ContainsAllBitsScalar(row.data(), required.data(), words));
        row[static_cast<size_t>(w)] |= BitWord{1} << bit;
      }
    }
    EXPECT_TRUE(ContainsAllBits(row.data(), required.data(), words));
  }
}

TEST(SimdRowsTest, AnyBitMatchesScalar) {
  Rng rng(20260811);
  for (int words : kWordCounts) {
    // All-zero rows: the false case on every word count.
    std::vector<BitWord> zero(static_cast<size_t>(words), 0);
    EXPECT_FALSE(AnyBit(zero.data(), words)) << "words=" << words;
    EXPECT_EQ(AnyBit(zero.data(), words), AnyBitScalar(zero.data(), words));
    // One bit anywhere: true, found regardless of which lane holds it.
    for (int w = 0; w < words; ++w) {
      for (int bit : {0, 31, 63}) {
        std::vector<BitWord> one(static_cast<size_t>(words), 0);
        one[static_cast<size_t>(w)] = BitWord{1} << bit;
        EXPECT_TRUE(AnyBit(one.data(), words))
            << "words=" << words << " w=" << w << " bit=" << bit;
      }
    }
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<BitWord> row = RandomRow(rng, words);
      EXPECT_EQ(AnyBit(row.data(), words), AnyBitScalar(row.data(), words))
          << "words=" << words;
    }
  }
}

TEST(SimdRowsTest, BitMatrixLayoutContract) {
  // The wide kernel uses unaligned loads and so never *requires* alignment,
  // but the BitMatrix layout contract is pinned here: the backing buffer is
  // 32-byte aligned, rows keep their natural word stride (padding each row
  // to a whole lane bloated narrow DP matrices 4x for no kernel benefit),
  // and whenever that stride is a whole number of lanes — e.g. the 256-bit
  // packed evaluation groups — every row lands on a lane boundary.
  for (int cols : {1, 63, 64, 65, 200, 256, 1000}) {
    BitMatrix m;
    m.Reset(7, cols);
    EXPECT_EQ(m.words_per_row(), BitWordsFor(cols)) << "cols=" << cols;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.row(0)) % kRowByteAlign, 0u)
        << "cols=" << cols;
    if (m.words_per_row() % kRowWordAlign == 0) {
      for (int r = 0; r < 7; ++r) {
        EXPECT_EQ(reinterpret_cast<uintptr_t>(m.row(r)) % kRowByteAlign, 0u)
            << "cols=" << cols << " row=" << r;
      }
    }
  }
}

TEST(SimdRowsTest, UnalignedSourceRowsStillMatchScalar) {
  // PatternMasks rows live in plain vectors at arbitrary alignment; the
  // wide ops must accept them (loadu). Force misalignment by offsetting
  // into an over-allocated buffer.
  Rng rng(20260812);
  for (int words : {3, 4, 5, 8, 9}) {
    std::vector<BitWord> backing = RandomRow(rng, words + 1);
    // `backing.data() + 1` is 8-byte aligned but (almost surely) not
    // 32-byte aligned.
    const BitWord* src = backing.data() + 1;
    std::vector<BitWord> wide = RandomRow(rng, words);
    std::vector<BitWord> scalar = wide;
    OrRow(wide.data(), src, words);
    OrRowScalar(scalar.data(), src, words);
    EXPECT_EQ(wide, scalar) << "words=" << words;
    EXPECT_EQ(ContainsAllBits(src, wide.data(), words),
              ContainsAllBitsScalar(src, wide.data(), words));
  }
}

}  // namespace
}  // namespace xpv
