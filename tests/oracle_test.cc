#include "containment/oracle.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(OracleTest, AgreesWithDirectContainment) {
  ContainmentOracle oracle;
  const char* pairs[][2] = {
      {"a/b", "a//b"},      {"a//b", "a/b"},   {"a[b][c]", "a[b]"},
      {"a/*//b", "a//*/b"}, {"a[b]", "a[b][c]"},
  };
  for (auto& pair : pairs) {
    Pattern p1 = MustParseXPath(pair[0]);
    Pattern p2 = MustParseXPath(pair[1]);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2))
        << pair[0] << " vs " << pair[1];
  }
}

TEST(OracleTest, CachesRepeatedQueries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/*//b[c]");
  Pattern p2 = MustParseXPath("a//*/b");
  (void)oracle.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 0u);
  for (int i = 0; i < 5; ++i) (void)oracle.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 5u);
}

TEST(OracleTest, KeyIsDirectional) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  EXPECT_TRUE(oracle.Contained(p1, p2));
  EXPECT_FALSE(oracle.Contained(p2, p1));
  EXPECT_EQ(oracle.size(), 2u);
}

TEST(OracleTest, IsomorphicPatternsShareEntries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a[b][c]/d");
  Pattern p1_shuffled = MustParseXPath("a[c][b]/d");
  Pattern p2 = MustParseXPath("a//d");
  (void)oracle.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  (void)oracle.Contained(p1_shuffled, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 1u);
}

TEST(OracleTest, EquivalentUsesTwoEntries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/*//b");
  Pattern p2 = MustParseXPath("a//*/b");
  EXPECT_TRUE(oracle.Equivalent(p1, p2));
  EXPECT_EQ(oracle.size(), 2u);
  EXPECT_TRUE(oracle.Equivalent(p2, p1));  // Mirrored keys already cached.
  EXPECT_EQ(oracle.size(), 2u);
  EXPECT_EQ(oracle.hits(), 2u);
}

TEST(OracleTest, ClearResets) {
  ContainmentOracle oracle;
  (void)oracle.Contained(MustParseXPath("a"), MustParseXPath("*"));  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  oracle.Clear();
  EXPECT_EQ(oracle.size(), 0u);
  EXPECT_EQ(oracle.hits(), 0u);
  EXPECT_EQ(oracle.misses(), 0u);
}

TEST(OracleTest, ContainedManyMatchesScalarCalls) {
  ContainmentOracle oracle;
  Pattern a = MustParseXPath("a/b");
  Pattern b = MustParseXPath("a//b");
  Pattern c = MustParseXPath("a//*/b");
  std::vector<char> results =
      oracle.ContainedMany({{&a, &b}, {&b, &a}, {&a, &c}, {&a, &b}});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0] != 0, Contained(a, b));
  EXPECT_EQ(results[1] != 0, Contained(b, a));
  EXPECT_EQ(results[2] != 0, Contained(a, c));
  EXPECT_EQ(results[3] != 0, Contained(a, b));
  // The duplicate pair answers from the entry filled by its first
  // occurrence.
  EXPECT_EQ(oracle.misses(), 3u);
  EXPECT_EQ(oracle.hits(), 1u);
}

TEST(OracleTest, CanonicalFingerprintRespectsIsomorphism) {
  EXPECT_EQ(MustParseXPath("a[b][c]/d").CanonicalFingerprint(),
            MustParseXPath("a[c][b]/d").CanonicalFingerprint());
  // Distinct edge types, labels and output nodes must all separate.
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            MustParseXPath("a//b").CanonicalFingerprint());
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            MustParseXPath("a/c").CanonicalFingerprint());
  Pattern out_at_root = MustParseXPath("a/b");
  out_at_root.set_output(out_at_root.root());
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            out_at_root.CanonicalFingerprint());
  EXPECT_EQ(Pattern::Empty().CanonicalFingerprint(),
            Pattern::Empty().CanonicalFingerprint());
}

TEST(OracleTest, BoundedCacheEvictsAndKeepsAnswering) {
  ContainmentOracle oracle(/*capacity=*/8);
  Rng rng(42);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 4;
  for (int i = 0; i < 64; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
  }
  EXPECT_LE(oracle.size(), 2 * oracle.capacity());
  EXPECT_GT(oracle.evictions(), 0u);
}

TEST(OracleTest, SecondChanceEvictionKeepsHotEntries) {
  // Second-chance (clock) eviction: entries that answered a lookup since
  // the last sweep survive an eviction cycle, cold entries go first.
  ContainmentOracle oracle(/*capacity=*/8);
  std::vector<std::pair<Pattern, Pattern>> pairs;
  for (int i = 0; i < 8; ++i) {
    std::string label = "l" + std::to_string(i);
    pairs.emplace_back(MustParseXPath(label + "/b"),
                       MustParseXPath(label + "//b"));
  }
  for (auto& [p1, p2] : pairs) (void)oracle.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  ASSERT_EQ(oracle.misses(), 8u);
  // Mark entries 0..2 hot.
  for (int i = 0; i < 3; ++i) {
    (void)oracle.Contained(pairs[static_cast<size_t>(i)].first,  // discard: drives the memo; only the hit/miss/eviction counters are asserted
                     pairs[static_cast<size_t>(i)].second);
  }
  ASSERT_EQ(oracle.hits(), 3u);
  // The 9th distinct pair triggers an eviction cycle.
  Pattern extra1 = MustParseXPath("extra/b");
  Pattern extra2 = MustParseXPath("extra//b");
  (void)oracle.Contained(extra1, extra2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  EXPECT_GT(oracle.evictions(), 0u);
  // The hot entries survived: re-querying them hits without new misses.
  const uint64_t misses_before = oracle.misses();
  for (int i = 0; i < 3; ++i) {
    (void)oracle.Contained(pairs[static_cast<size_t>(i)].first,  // discard: drives the memo; only the hit/miss/eviction counters are asserted
                     pairs[static_cast<size_t>(i)].second);
  }
  EXPECT_EQ(oracle.misses(), misses_before);
  EXPECT_EQ(oracle.hits(), 6u);
}

TEST(OracleTest, AbsorbFromMergesEntriesAndCounters) {
  ContainmentOracle a;
  ContainmentOracle b;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  Pattern p3 = MustParseXPath("a[c]/b");
  EXPECT_TRUE(a.Contained(p1, p2));
  EXPECT_TRUE(b.Contained(p3, p2));
  b.AbsorbFrom(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.misses(), 2u);  // Own miss plus a's folded-in miss.
  // a's entry now answers from b's cache.
  const uint64_t misses_before = b.misses();
  EXPECT_TRUE(b.Contained(p1, p2));
  EXPECT_EQ(b.misses(), misses_before);
}

TEST(OracleTest, FallbackReadThrough) {
  ContainmentOracle shared;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  EXPECT_TRUE(shared.Contained(p1, p2));

  ContainmentOracle shard;
  shard.set_fallback(&shared);
  // The shard answers from the frozen shared table without computing.
  EXPECT_TRUE(shard.Contained(p1, p2));
  EXPECT_EQ(shard.misses(), 0u);
  EXPECT_EQ(shard.hits(), 1u);
  // New pairs computed in the shard stay local until absorbed.
  Pattern p3 = MustParseXPath("a[c]/b");
  EXPECT_TRUE(shard.Contained(p3, p2));
  EXPECT_EQ(shard.misses(), 1u);
  EXPECT_EQ(shared.size(), 1u);  // Unchanged by the shard's activity.
  shared.AbsorbFrom(shard);
  const uint64_t misses_before = shared.misses();
  EXPECT_TRUE(shared.Contained(p3, p2));
  EXPECT_EQ(shared.misses(), misses_before);
}

TEST(OracleTest, AbsorbFromNearCapacityKeepsMergedEntriesResident) {
  // Regression: AbsorbFrom used to insert through InsertEntry, so merging
  // a large shard into a near-capacity destination fired EvictHalf
  // MID-merge and could evict the batch's own entries absorbed moments
  // earlier. The capacity-aware merge makes room once, up front, sparing
  // every key the shard contributes.
  ContainmentOracle dest(/*capacity=*/8);
  for (int i = 0; i < 7; ++i) {
    std::string label = "d" + std::to_string(i);
    Pattern p1 = MustParseXPath(label + "/b");
    Pattern p2 = MustParseXPath(label + "//b");
    (void)dest.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  }
  ContainmentOracle shard(/*capacity=*/8);
  std::vector<std::pair<Pattern, Pattern>> hot;
  for (int i = 0; i < 6; ++i) {
    std::string label = "s" + std::to_string(i);
    hot.emplace_back(MustParseXPath(label + "/b"),
                     MustParseXPath(label + "//b"));
  }
  for (auto& [p1, p2] : hot) (void)shard.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted

  dest.AbsorbFrom(shard);
  // 7 + 6 > 8: room was made from the destination's cold entries only —
  // every merged entry is resident and answers without recomputation.
  const uint64_t misses_before = dest.misses();
  for (auto& [p1, p2] : hot) EXPECT_TRUE(dest.Contained(p1, p2));
  EXPECT_EQ(dest.misses(), misses_before);
  EXPECT_EQ(dest.evictions(), 5u);  // Exactly the excess, from dest's side.
}

TEST(OracleTest, AbsorbFromDoesNotDoubleReportShardChurn) {
  // Regression: `evictions_ += other.evictions_` reported the shard's own
  // churn as destination churn. The shard's evicted entries were (at
  // worst) read-through copies — they are not evictions of this table.
  ContainmentOracle shard(/*capacity=*/4);
  for (int i = 0; i < 16; ++i) {
    std::string label = "c" + std::to_string(i);
    Pattern p1 = MustParseXPath(label + "/b");
    Pattern p2 = MustParseXPath(label + "//b");
    (void)shard.Contained(p1, p2);  // discard: drives the memo; only the hit/miss/eviction counters are asserted
  }
  ASSERT_GT(shard.evictions(), 0u);

  ContainmentOracle dest(/*capacity=*/64);
  dest.AbsorbFrom(shard);
  EXPECT_EQ(dest.evictions(), 0u);
  // Hit/miss statistics still fold (the batch's counters survive).
  EXPECT_EQ(dest.misses(), shard.misses());
  EXPECT_EQ(dest.hits(), shard.hits());
}

TEST(OracleTest, SynchronizedOracleShardRoundTrip) {
  // The concurrent-Service wiring: shards attach to a SynchronizedOracle,
  // read through it under the shared lock, and are absorbed back.
  SynchronizedOracle shared;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  {
    ContainmentOracle warm;
    shared.AttachShard(&warm);
    EXPECT_TRUE(warm.Contained(p1, p2));
    EXPECT_EQ(warm.misses(), 1u);
    shared.Absorb(warm);
  }
  EXPECT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared.misses(), 1u);
  {
    ContainmentOracle shard;
    shared.AttachShard(&shard);
    // Answered from the shared table through the locked read-through.
    EXPECT_TRUE(shard.Contained(p1, p2));
    EXPECT_EQ(shard.misses(), 0u);
    EXPECT_EQ(shard.hits(), 1u);
    shared.Absorb(shard);
  }
  EXPECT_EQ(shared.hits(), 1u);
  EXPECT_EQ(shared.misses(), 1u);
}

TEST(OracleTest, RandomizedAgreement) {
  ContainmentOracle oracle;
  Rng rng(777);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 2;
  for (int i = 0; i < 30; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
    // Second pass must hit the cache with the same answers.
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
  }
  EXPECT_GT(oracle.hits(), 0u);
}

}  // namespace
}  // namespace xpv
