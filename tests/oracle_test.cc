#include "containment/oracle.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(OracleTest, AgreesWithDirectContainment) {
  ContainmentOracle oracle;
  const char* pairs[][2] = {
      {"a/b", "a//b"},      {"a//b", "a/b"},   {"a[b][c]", "a[b]"},
      {"a/*//b", "a//*/b"}, {"a[b]", "a[b][c]"},
  };
  for (auto& pair : pairs) {
    Pattern p1 = MustParseXPath(pair[0]);
    Pattern p2 = MustParseXPath(pair[1]);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2))
        << pair[0] << " vs " << pair[1];
  }
}

TEST(OracleTest, CachesRepeatedQueries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/*//b[c]");
  Pattern p2 = MustParseXPath("a//*/b");
  oracle.Contained(p1, p2);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 0u);
  for (int i = 0; i < 5; ++i) oracle.Contained(p1, p2);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 5u);
}

TEST(OracleTest, KeyIsDirectional) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  EXPECT_TRUE(oracle.Contained(p1, p2));
  EXPECT_FALSE(oracle.Contained(p2, p1));
  EXPECT_EQ(oracle.size(), 2u);
}

TEST(OracleTest, IsomorphicPatternsShareEntries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a[b][c]/d");
  Pattern p1_shuffled = MustParseXPath("a[c][b]/d");
  Pattern p2 = MustParseXPath("a//d");
  oracle.Contained(p1, p2);
  oracle.Contained(p1_shuffled, p2);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.hits(), 1u);
}

TEST(OracleTest, EquivalentUsesTwoEntries) {
  ContainmentOracle oracle;
  Pattern p1 = MustParseXPath("a/*//b");
  Pattern p2 = MustParseXPath("a//*/b");
  EXPECT_TRUE(oracle.Equivalent(p1, p2));
  EXPECT_EQ(oracle.size(), 2u);
  EXPECT_TRUE(oracle.Equivalent(p2, p1));  // Mirrored keys already cached.
  EXPECT_EQ(oracle.size(), 2u);
  EXPECT_EQ(oracle.hits(), 2u);
}

TEST(OracleTest, ClearResets) {
  ContainmentOracle oracle;
  oracle.Contained(MustParseXPath("a"), MustParseXPath("*"));
  oracle.Clear();
  EXPECT_EQ(oracle.size(), 0u);
  EXPECT_EQ(oracle.hits(), 0u);
  EXPECT_EQ(oracle.misses(), 0u);
}

TEST(OracleTest, ContainedManyMatchesScalarCalls) {
  ContainmentOracle oracle;
  Pattern a = MustParseXPath("a/b");
  Pattern b = MustParseXPath("a//b");
  Pattern c = MustParseXPath("a//*/b");
  std::vector<char> results =
      oracle.ContainedMany({{&a, &b}, {&b, &a}, {&a, &c}, {&a, &b}});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0] != 0, Contained(a, b));
  EXPECT_EQ(results[1] != 0, Contained(b, a));
  EXPECT_EQ(results[2] != 0, Contained(a, c));
  EXPECT_EQ(results[3] != 0, Contained(a, b));
  // The duplicate pair answers from the entry filled by its first
  // occurrence.
  EXPECT_EQ(oracle.misses(), 3u);
  EXPECT_EQ(oracle.hits(), 1u);
}

TEST(OracleTest, CanonicalFingerprintRespectsIsomorphism) {
  EXPECT_EQ(MustParseXPath("a[b][c]/d").CanonicalFingerprint(),
            MustParseXPath("a[c][b]/d").CanonicalFingerprint());
  // Distinct edge types, labels and output nodes must all separate.
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            MustParseXPath("a//b").CanonicalFingerprint());
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            MustParseXPath("a/c").CanonicalFingerprint());
  Pattern out_at_root = MustParseXPath("a/b");
  out_at_root.set_output(out_at_root.root());
  EXPECT_NE(MustParseXPath("a/b").CanonicalFingerprint(),
            out_at_root.CanonicalFingerprint());
  EXPECT_EQ(Pattern::Empty().CanonicalFingerprint(),
            Pattern::Empty().CanonicalFingerprint());
}

TEST(OracleTest, BoundedCacheEvictsAndKeepsAnswering) {
  ContainmentOracle oracle(/*capacity=*/8);
  Rng rng(42);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 4;
  for (int i = 0; i < 64; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
  }
  EXPECT_LE(oracle.size(), 2 * oracle.capacity());
  EXPECT_GT(oracle.evictions(), 0u);
}

TEST(OracleTest, SecondChanceEvictionKeepsHotEntries) {
  // Second-chance (clock) eviction: entries that answered a lookup since
  // the last sweep survive an eviction cycle, cold entries go first.
  ContainmentOracle oracle(/*capacity=*/8);
  std::vector<std::pair<Pattern, Pattern>> pairs;
  for (int i = 0; i < 8; ++i) {
    std::string label = "l" + std::to_string(i);
    pairs.emplace_back(MustParseXPath(label + "/b"),
                       MustParseXPath(label + "//b"));
  }
  for (auto& [p1, p2] : pairs) oracle.Contained(p1, p2);
  ASSERT_EQ(oracle.misses(), 8u);
  // Mark entries 0..2 hot.
  for (int i = 0; i < 3; ++i) {
    oracle.Contained(pairs[static_cast<size_t>(i)].first,
                     pairs[static_cast<size_t>(i)].second);
  }
  ASSERT_EQ(oracle.hits(), 3u);
  // The 9th distinct pair triggers an eviction cycle.
  Pattern extra1 = MustParseXPath("extra/b");
  Pattern extra2 = MustParseXPath("extra//b");
  oracle.Contained(extra1, extra2);
  EXPECT_GT(oracle.evictions(), 0u);
  // The hot entries survived: re-querying them hits without new misses.
  const uint64_t misses_before = oracle.misses();
  for (int i = 0; i < 3; ++i) {
    oracle.Contained(pairs[static_cast<size_t>(i)].first,
                     pairs[static_cast<size_t>(i)].second);
  }
  EXPECT_EQ(oracle.misses(), misses_before);
  EXPECT_EQ(oracle.hits(), 6u);
}

TEST(OracleTest, AbsorbFromMergesEntriesAndCounters) {
  ContainmentOracle a;
  ContainmentOracle b;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  Pattern p3 = MustParseXPath("a[c]/b");
  EXPECT_TRUE(a.Contained(p1, p2));
  EXPECT_TRUE(b.Contained(p3, p2));
  b.AbsorbFrom(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.misses(), 2u);  // Own miss plus a's folded-in miss.
  // a's entry now answers from b's cache.
  const uint64_t misses_before = b.misses();
  EXPECT_TRUE(b.Contained(p1, p2));
  EXPECT_EQ(b.misses(), misses_before);
}

TEST(OracleTest, FallbackReadThrough) {
  ContainmentOracle shared;
  Pattern p1 = MustParseXPath("a/b");
  Pattern p2 = MustParseXPath("a//b");
  EXPECT_TRUE(shared.Contained(p1, p2));

  ContainmentOracle shard;
  shard.set_fallback(&shared);
  // The shard answers from the frozen shared table without computing.
  EXPECT_TRUE(shard.Contained(p1, p2));
  EXPECT_EQ(shard.misses(), 0u);
  EXPECT_EQ(shard.hits(), 1u);
  // New pairs computed in the shard stay local until absorbed.
  Pattern p3 = MustParseXPath("a[c]/b");
  EXPECT_TRUE(shard.Contained(p3, p2));
  EXPECT_EQ(shard.misses(), 1u);
  EXPECT_EQ(shared.size(), 1u);  // Unchanged by the shard's activity.
  shared.AbsorbFrom(shard);
  const uint64_t misses_before = shared.misses();
  EXPECT_TRUE(shared.Contained(p3, p2));
  EXPECT_EQ(shared.misses(), misses_before);
}

TEST(OracleTest, RandomizedAgreement) {
  ContainmentOracle oracle;
  Rng rng(777);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 2;
  for (int i = 0; i < 30; ++i) {
    Pattern p1 = RandomPattern(rng, options);
    Pattern p2 = RandomPattern(rng, options);
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
    // Second pass must hit the cache with the same answers.
    EXPECT_EQ(oracle.Contained(p1, p2), Contained(p1, p2));
  }
  EXPECT_GT(oracle.hits(), 0u);
}

}  // namespace
}  // namespace xpv
