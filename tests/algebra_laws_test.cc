// Algebraic laws tying the pattern operations together: composition
// associativity, minimization laws, lifted-output serialization, and the
// weak-equivalence composition property (Prop 3.7).

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

TEST(AlgebraLawsTest, ComposeIsAssociative) {
  Rng rng(246);
  PatternGenOptions options;
  options.max_depth = 2;
  options.max_branches = 2;
  options.wildcard_prob = 0.5;
  options.alphabet_size = 2;
  int nonempty = 0;
  for (int round = 0; round < 60; ++round) {
    Pattern a = RandomPattern(rng, options);
    Pattern b = RandomPattern(rng, options);
    Pattern c = RandomPattern(rng, options);
    Pattern left = Compose(Compose(a, b), c);
    Pattern right = Compose(a, Compose(b, c));
    EXPECT_TRUE(Isomorphic(left, right))
        << ToXPath(a) << " | " << ToXPath(b) << " | " << ToXPath(c);
    if (!left.IsEmpty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 5);  // The sweep must exercise nontrivial cases.
}

TEST(AlgebraLawsTest, ComposeWithSingleWildcardIsIdentityOnStructure) {
  // The single-node wildcard pattern is a unit for composition on the
  // right (V = *) up to the root label: *'s output is its root, so
  // R ∘ * = R with glb-label root. When root(R) is labeled, that label
  // survives.
  Pattern r = MustParseXPath("a[x]/b");
  Pattern unit = MustParseXPath("*");
  EXPECT_TRUE(Isomorphic(Compose(r, unit), r));
  // And on the left: * ∘ V = V with its output label glb'ed with *.
  Pattern v = MustParseXPath("a/b[c]");
  EXPECT_TRUE(Isomorphic(Compose(unit, v), v));
}

TEST(AlgebraLawsTest, MinimizationIsIdempotent) {
  Rng rng(135);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 3;
  options.alphabet_size = 2;
  for (int round = 0; round < 15; ++round) {
    Pattern p = RandomPattern(rng, options);
    Pattern once = RemoveRedundantBranches(p);
    Pattern twice = RemoveRedundantBranches(once);
    EXPECT_TRUE(Isomorphic(once, twice)) << ToXPath(p);
    EXPECT_TRUE(Equivalent(p, once)) << ToXPath(p);
  }
}

TEST(AlgebraLawsTest, MinimizationCommutesWithEquivalence) {
  // Two syntactically different but equivalent patterns minimize to
  // equivalent (not necessarily isomorphic) results.
  Pattern p1 = MustParseXPath("a[b][b][c]/d");
  Pattern p2 = MustParseXPath("a[c][b]/d");
  ASSERT_TRUE(Equivalent(p1, p2));
  EXPECT_TRUE(Equivalent(RemoveRedundantBranches(p1),
                         RemoveRedundantBranches(p2)));
}

TEST(AlgebraLawsTest, LiftedOutputSerializesAndRoundTrips) {
  // After lifting, the old spine below the output serializes as a
  // predicate; the round trip must preserve the pattern exactly.
  Pattern q = MustParseXPath("a/b/c[x]/d");
  for (int j = 0; j <= 3; ++j) {
    Pattern lifted = LiftOutput(q, j);
    Pattern reparsed = MustParseXPath(ToXPath(lifted));
    EXPECT_TRUE(Isomorphic(lifted, reparsed))
        << "j=" << j << ": " << ToXPath(lifted);
    SelectionInfo info(reparsed);
    EXPECT_EQ(info.depth(), j);
  }
}

TEST(AlgebraLawsTest, SubUpperPartitionNodeCounts) {
  Rng rng(864);
  PatternGenOptions options;
  options.max_depth = 4;
  options.max_branches = 3;
  for (int round = 0; round < 20; ++round) {
    Pattern p = RandomPattern(rng, options);
    SelectionInfo info(p);
    for (int k = 0; k <= info.depth(); ++k) {
      Pattern sub = SubPattern(p, k);
      Pattern upper = UpperPattern(p, k);
      // P>=k is exactly the subtree rooted at the k-node; P<=k is P minus
      // the subtree rooted at the (k+1)-node. (The k-node's own branches
      // belong to both parts.)
      EXPECT_EQ(sub.size(),
                static_cast<int>(p.SubtreeNodes(info.KNode(k)).size()))
          << ToXPath(p) << " at k=" << k;
      int pruned = k < info.depth()
                       ? static_cast<int>(
                             p.SubtreeNodes(info.KNode(k + 1)).size())
                       : 0;
      EXPECT_EQ(upper.size(), p.size() - pruned)
          << ToXPath(p) << " at k=" << k;
    }
  }
}

TEST(AlgebraLawsTest, Prop37WeakEquivalenceOfCompositions) {
  // Prop 3.7: root(V) = out(V) and R ∘ V ≡w P imply R ∘ V ≡w P ∘ V.
  Pattern v = MustParseXPath("a[x]");
  Pattern p = MustParseXPath("a[x]/b");
  Pattern r = MustParseXPath("a/b");
  Pattern rv = Compose(r, v);
  ASSERT_TRUE(WeaklyEquivalent(rv, p));  // Equivalence implies it.
  EXPECT_TRUE(WeaklyEquivalent(rv, Compose(p, v)));
}

TEST(AlgebraLawsTest, RelaxThenComposeVsComposeThenRelax) {
  // Relaxation of R's root edges commutes with composition in the
  // containment direction: Compose(R_r//, V) ⊒ Compose(R, V).
  Rng rng(975);
  PatternGenOptions options;
  options.max_depth = 2;
  options.max_branches = 2;
  options.wildcard_prob = 0.5;
  options.alphabet_size = 2;
  for (int round = 0; round < 20; ++round) {
    Pattern r = RandomPattern(rng, options);
    Pattern v = RandomPattern(rng, options);
    Pattern rv = Compose(r, v);
    Pattern relaxed_rv = Compose(RelaxRootEdges(r), v);
    if (rv.IsEmpty()) {
      EXPECT_TRUE(relaxed_rv.IsEmpty());
      continue;
    }
    EXPECT_TRUE(Contained(rv, relaxed_rv))
        << ToXPath(r) << " over " << ToXPath(v);
  }
}

}  // namespace
}  // namespace xpv
