#include "rewrite/rules.h"

#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

ConditionsReport Report(const char* p, const char* v) {
  return EvaluateConditions(MustParseXPath(p), MustParseXPath(v));
}

std::optional<NecessaryViolation> Violation(const char* p, const char* v) {
  return ViolatesBasicNecessaryConditions(MustParseXPath(p),
                                          MustParseXPath(v));
}

TEST(NecessaryTest, DepthExceeded) {
  auto v = Violation("a/b", "a/b/c");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rule, RuleId::kDepthExceeded);
}

TEST(NecessaryTest, SelectionLabelMismatchSigmaSigma) {
  auto v = Violation("a/b/c", "a/d");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rule, RuleId::kSelectionLabelMismatch);
}

TEST(NecessaryTest, SelectionLabelMismatchStarVsSigma) {
  // Prop 3.1(3): labels at each selection depth below k must be identical
  // *as symbols* — '*' vs 'b' is a mismatch in both directions.
  auto v = Violation("a/*/c/d", "a/b/c");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rule, RuleId::kSelectionLabelMismatch);
  auto v2 = Violation("a/b/c/d", "a/*/c");
  ASSERT_TRUE(v2.has_value());
}

TEST(NecessaryTest, ViewOutputLabelIncompatibleWithKNode) {
  // out(V) labeled b, k-node of P labeled '*': glb can never be '*'.
  auto v = Violation("a/*/c", "a/b");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rule, RuleId::kSelectionLabelMismatch);
  // out(V) labeled b vs k-node labeled c: no glb at all.
  auto v2 = Violation("a/c/d", "a/b");
  ASSERT_TRUE(v2.has_value());
}

TEST(NecessaryTest, WildcardViewOutputIsCompatible) {
  EXPECT_FALSE(Violation("a/b/c", "a/*").has_value());
  EXPECT_FALSE(Violation("a/*/c", "a/*").has_value());
}

TEST(NecessaryTest, RootLabelsMustAgree) {
  EXPECT_TRUE(Violation("a/b", "x/b").has_value());
  EXPECT_TRUE(Violation("a/b", "*/b").has_value());
}

TEST(DirectRulesTest, EqualDepths) {
  ConditionsReport r = Report("a//*[x]//*[y]", "a//*[z]//*");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kEqualDepths);
}

TEST(DirectRulesTest, ViewOutputIsRoot) {
  ConditionsReport r = Report("a[x]//*/b", "a[y]");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kViewOutputIsRoot);
}

TEST(DirectRulesTest, StableSubPattern) {
  // P>=1 = b//d has a non-wildcard root -> stable (Thm 4.3 + Prop 4.1).
  ConditionsReport r = Report("a//b//d", "a//b");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kStableSubPattern);
}

TEST(DirectRulesTest, ChildOnlyQueryPrefix) {
  // P>=1 = */c//c is not stable-sufficient; P's first selection edge is a
  // child edge, so Thm 4.4 applies.
  ConditionsReport r = Report("a/*/c//c", "a/*[c]");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kChildOnlyQueryPrefix);
}

TEST(DirectRulesTest, DescendantIntoViewOutput) {
  // P>=1 unstable, P's prefix has //, and a descendant edge enters out(V):
  // Thm 4.9.
  ConditionsReport r = Report("a//*/c//c", "a//*[c]");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(),
            RuleId::kDescendantIntoViewOutput);
}

TEST(DirectRulesTest, ChildOnlyViewPath) {
  // P's prefix has //, V's output edge is a child edge and V's whole
  // selection path is child-only: Thm 4.10 (covers both candidates).
  ConditionsReport r = Report("a//*/c//c", "a/*[c]");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kChildOnlyViewPath);
  EXPECT_FALSE(r.completeness->sub_candidate_only);
}

TEST(DirectRulesTest, CorrespondingLastDescendant) {
  // The last descendant selection edge of P (depth 1) corresponds to a
  // descendant edge of V; the k-node is a wildcard so Thm 4.3 cannot fire
  // first (Thm 4.16).
  ConditionsReport r = Report("a//*/*/c", "a//*[c]/*");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.front(),
            RuleId::kCorrespondingLastDescendant);
}

TEST(DirectRulesTest, GeneralizedNormalForm) {
  // P = a//*//*//* is linear, hence every P>=i is linear and P is in
  // GNF/* (Thm 5.4); none of the earlier conditions applies (wildcard
  // k-node, // in P's prefix, V's path mixed with its deepest // not
  // corresponding to P's last descendant edge).
  ConditionsReport r = Report("a//*//*//*", "a//*[q]/*");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_EQ(r.completeness->chain.back(),
            RuleId::kGeneralizedNormalForm);
  EXPECT_FALSE(r.completeness->sub_candidate_only);
}

TEST(TransformRulesTest, SuffixReductionEnablesCorrespondence) {
  // Cor 5.7 flavor: P's deepest selection // is at depth 1 where V has a
  // child edge, so Thm 4.16 does not fire directly; V's deepest // (depth
  // 2) is at least as deep as P's, and after the *//-suffix reduction the
  // correspondence holds.
  ConditionsReport r = Report("a//*[b]/*/*/b", "a/*//*/*");
  ASSERT_TRUE(r.completeness.has_value());
  ASSERT_GE(r.completeness->chain.size(), 2u);
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kSuffixReduction);
  EXPECT_EQ(r.completeness->chain.back(),
            RuleId::kCorrespondingLastDescendant);
}

TEST(TransformRulesTest, StableReductionChain) {
  // P>=1 = b/... is stable; after reducing to (P>=1, V>=1) the query
  // prefix down to the k-node is child-only (Prop 5.1 + Thm 4.4 =
  // Cor 5.2).
  ConditionsReport r = Report("a//b/*//*[x]/x", "a//b/*");
  ASSERT_TRUE(r.completeness.has_value());
  ASSERT_GE(r.completeness->chain.size(), 2u);
  EXPECT_EQ(r.completeness->chain.front(), RuleId::kStableReduction);
  EXPECT_EQ(r.completeness->chain.back(), RuleId::kChildOnlyQueryPrefix);
}

TEST(TransformRulesTest, DeepDescendantNeedsSectionFiveMachinery) {
  // P has a descendant edge below the k-node (depth 4) with a non-* label
  // (c) between the k-node and that edge — the Fig-4/P2 situation where
  // Section 5.3's extension+lifting (possibly after the suffix reduction)
  // is required; no direct rule applies.
  ConditionsReport r = Report("a//*/*/c//*[x]/x", "a//*/*");
  ASSERT_TRUE(r.completeness.has_value());
  EXPECT_GE(r.completeness->chain.size(), 2u);
}

TEST(TransformRulesTest, NoConditionApplies) {
  // An instance outside every sufficient condition: wildcard selection
  // labels, // into an unstable branching 1-node, V's deepest // above
  // P's deepest //, and no non-* selection label at depth >= k to lift to.
  ConditionsReport r = Report("a//*[b//x]/*//*[b//x]/*", "a//*[b//x]/*");
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_FALSE(r.completeness.has_value());
}

TEST(RuleNameTest, AllRulesHaveNames) {
  for (RuleId id :
       {RuleId::kDepthExceeded, RuleId::kSelectionLabelMismatch,
        RuleId::kEqualDepths, RuleId::kViewOutputIsRoot,
        RuleId::kStableSubPattern, RuleId::kChildOnlyQueryPrefix,
        RuleId::kDescendantIntoViewOutput, RuleId::kChildOnlyViewPath,
        RuleId::kCorrespondingLastDescendant,
        RuleId::kGeneralizedNormalForm, RuleId::kStableReduction,
        RuleId::kSuffixReduction, RuleId::kExtendLiftReduction}) {
    EXPECT_FALSE(RuleName(id).empty());
    EXPECT_EQ(RuleName(id).find("unknown"), std::string::npos);
  }
}

}  // namespace
}  // namespace xpv
