// Robustness and scale tests: deep/wide patterns and documents through
// every layer (parsers, serializer, algebra, evaluation, containment fast
// paths), malformed-input handling, and adversarial label content.

#include <gtest/gtest.h>

#include <string>

#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"
#include "rewrite/engine.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace xpv {
namespace {

std::string DeepChainExpr(int depth) {
  std::string expr = "a";
  for (int i = 1; i <= depth; ++i) expr += i % 3 == 0 ? "//n" : "/n";
  return expr;
}

TEST(RobustnessTest, DeepPatternRoundTrip) {
  const int kDepth = 500;
  Pattern p = MustParseXPath(DeepChainExpr(kDepth));
  SelectionInfo info(p);
  EXPECT_EQ(info.depth(), kDepth);
  Pattern reparsed = MustParseXPath(ToXPath(p));
  EXPECT_TRUE(Isomorphic(p, reparsed));
}

TEST(RobustnessTest, DeepPatternAlgebra) {
  Pattern p = MustParseXPath(DeepChainExpr(400));
  Pattern sub = SubPattern(p, 200);
  Pattern upper = UpperPattern(p, 200);
  SelectionInfo si(sub), ui(upper);
  EXPECT_EQ(si.depth(), 200);
  EXPECT_EQ(ui.depth(), 200);
  EXPECT_TRUE(Isomorphic(Compose(sub, upper), p));
}

TEST(RobustnessTest, DeepPatternCandidates) {
  Pattern p = MustParseXPath(DeepChainExpr(300));
  NaturalCandidates c = MakeNaturalCandidates(p, 150);
  SelectionInfo info(c.sub);
  EXPECT_EQ(info.depth(), 150);
}

TEST(RobustnessTest, WidePatternHandling) {
  Pattern p(L("root"));
  for (int i = 0; i < 400; ++i) {
    std::string name = "w";
    name.append(std::to_string(i % 20));
    p.AddChild(p.root(), L(name), EdgeType::kChild);
  }
  Pattern reparsed = MustParseXPath(ToXPath(p));
  EXPECT_TRUE(Isomorphic(p, reparsed));
  EXPECT_TRUE(ExistsPatternHomomorphism(p, p));
}

TEST(RobustnessTest, DeepDocumentEvaluation) {
  std::string open, close;
  for (int i = 0; i < 600; ++i) {
    open += "<n>";
    close += "</n>";
  }
  auto doc = ParseXml("<a>" + open + "<hit/>" + close + "</a>");
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_EQ(Eval(MustParseXPath("a//hit"), doc.value()).size(), 1u);
  EXPECT_EQ(Eval(MustParseXPath("a//n//hit"), doc.value()).size(), 1u);
  EXPECT_TRUE(Eval(MustParseXPath("a/hit"), doc.value()).empty());
}

TEST(RobustnessTest, WideDocumentEvaluation) {
  std::string xml = "<a>";
  for (int i = 0; i < 2000; ++i) xml += "<b/>";
  xml += "</a>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Eval(MustParseXPath("a/b"), doc.value()).size(), 2000u);
  // Round trip through the writer.
  auto round = ParseXml(WriteXml(doc.value()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().size(), doc.value().size());
}

TEST(RobustnessTest, EngineOnDeepInstances) {
  Pattern p = MustParseXPath(DeepChainExpr(120));
  Pattern v = UpperPattern(p, 60);
  RewriteResult result = DecideRewrite(p, v);
  EXPECT_EQ(result.status, RewriteStatus::kFound);
}

TEST(RobustnessTest, LabelsWithXmlSpecialNames) {
  // Names valid in our grammar but worth exercising: dots, dashes,
  // underscores, digits after the first character.
  Pattern p = MustParseXPath("ns.elem/sub-elem/_x/e2");
  EXPECT_EQ(p.size(), 4);
  EXPECT_TRUE(Isomorphic(p, MustParseXPath(ToXPath(p))));
}

TEST(RobustnessTest, ParserRejectsGarbageWithoutCrashing) {
  const char* garbage[] = {
      "///",     "a[[b]]", "a[b",   "]a",   "a//",      "a[/b]",
      "*[*][",   "a/b]c",  "//",    "[a]",  "a b c",    "a/*[]",
  };
  for (const char* g : garbage) {
    EXPECT_FALSE(ParseXPath(g).ok()) << g;
  }
}

TEST(RobustnessTest, XmlParserRejectsGarbageWithoutCrashing) {
  const char* garbage[] = {
      "<",        "<a",      "<a><b>", "</a>",     "<a/><b/>",
      "<a attr>", "<a 1=2>", "<>",     "<a></b\\>", "text only",
  };
  for (const char* g : garbage) {
    EXPECT_FALSE(ParseXml(g).ok()) << g;
  }
}

TEST(RobustnessTest, ContainmentOnDeepChains) {
  // Hom fast path must handle long chains without recursion issues.
  Pattern deep1 = MustParseXPath(DeepChainExpr(200));
  Pattern deep2 = MustParseXPath(DeepChainExpr(200));
  EXPECT_TRUE(Contained(deep1, deep2));
}

TEST(RobustnessTest, ManyBranchesSameLabel) {
  std::string expr = "a";
  for (int i = 0; i < 60; ++i) expr += "[b]";
  expr += "/c";
  Pattern p = MustParseXPath(expr);
  Pattern min_form = MustParseXPath("a[b]/c");
  EXPECT_TRUE(Equivalent(p, min_form));
}

TEST(RobustnessTest, AsciiAndDotOnBigPatterns) {
  Pattern p = MustParseXPath(DeepChainExpr(100));
  EXPECT_FALSE(p.ToAscii().empty());
}

}  // namespace
}  // namespace xpv
