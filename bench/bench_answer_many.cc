// Experiment C11: the batched answering pipeline.
//
// Measures ViewCache::AnswerMany — view-pruning index, shared candidate
// bundles, duplicate folding and the worker-parallel oracle shards —
// against the sequential per-query Answer loop on cache-style traffic
// (a hot set of repeated queries over materialized views, plus misses).
// The tracked claim: batches of >= 64 queries answer at >= 2x the
// throughput of the sequential loop.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/service.h"
#include "bench_util.h"
#include "pattern/xpath_parser.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {
namespace {

/// A catalogue document: two small structured regions (books, journal
/// articles) embedded in a large amount of unrelated content — the regime
/// where answering from materialized views pays.
Tree CatalogueDoc(int noise_nodes, int entries) {
  Tree doc(L("lib"));
  NodeId section = doc.AddChild(doc.root(), L("section"));
  for (int i = 0; i < entries; ++i) {
    NodeId book = doc.AddChild(section, L("book"));
    NodeId title = doc.AddChild(book, L("title"));
    doc.AddChild(title, L("text"));
    doc.AddChild(book, L("author"));
  }
  NodeId journal = doc.AddChild(doc.root(), L("journal"));
  for (int i = 0; i < entries / 2; ++i) {
    NodeId article = doc.AddChild(journal, L("article"));
    doc.AddChild(article, L("title"));
    doc.AddChild(article, L("ref"));
  }
  NodeId misc = doc.AddChild(doc.root(), L("misc"));
  NodeId cur = misc;
  for (int i = 0; i < noise_nodes; ++i) {
    cur = doc.AddChild(cur, L(i % 3 == 0 ? "x" : (i % 3 == 1 ? "y" : "z")));
    if (i % 7 == 0) cur = misc;
  }
  return doc;
}

std::vector<ViewDefinition> CatalogueViews() {
  return {
      {"books", MustParseXPath("lib/section/book")},
      {"articles", MustParseXPath("lib/journal/article")},
  };
}

/// The distinct query pool: 12 view-answerable queries and 4 misses that
/// fall back to full-document evaluation.
std::vector<Pattern> QueryPool() {
  return {
      MustParseXPath("lib/section/book/title"),        // Hot.
      MustParseXPath("lib/section/book/author"),       // Hot.
      MustParseXPath("lib/journal/article/title"),     // Hot.
      MustParseXPath("lib/section/book//text"),        // Hot.
      MustParseXPath("lib/section/book"),
      MustParseXPath("lib/section/book/title/text"),
      MustParseXPath("lib/section/book[author]/title"),
      MustParseXPath("lib/journal/article/ref"),
      MustParseXPath("lib/journal/article//title"),
      MustParseXPath("lib/journal/article"),
      MustParseXPath("lib/section/book[title]/author"),
      MustParseXPath("lib/section/book/*"),
      MustParseXPath("lib/misc/x"),    // Miss.
      MustParseXPath("lib/misc/x/y"),  // Miss.
      MustParseXPath("lib/misc//z"),   // Miss.
      MustParseXPath("lib/*/nothing"), // Miss.
  };
}

/// Cache-style traffic: 75% of the batch cycles over the four hot queries,
/// the rest walks the whole pool. Deterministic.
std::vector<Pattern> Traffic(int batch_size) {
  std::vector<Pattern> pool = QueryPool();
  std::vector<Pattern> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    // 3 of every 4 slots rotate uniformly over the 4 hot queries (the
    // i/4 shift keeps all four in rotation); the 4th slot walks the pool.
    const size_t pick = (i % 4 != 3)
                            ? static_cast<size_t>(i + i / 4) % 4
                            : static_cast<size_t>(i / 4) % pool.size();
    batch.push_back(pool[pick]);
  }
  return batch;
}

void VerifyBatchIdentity() {
  Tree doc = CatalogueDoc(2048, 32);
  ViewCache batched(doc);
  ViewCache sequential(doc);
  for (const ViewDefinition& view : CatalogueViews()) {
    batched.AddView(view);
    sequential.AddView(view);
  }
  std::vector<Pattern> batch = Traffic(64);
  std::vector<CacheAnswer> answers = batched.AnswerMany(batch, 4);
  for (size_t i = 0; i < batch.size(); ++i) {
    CacheAnswer expected = sequential.Answer(batch[i]);
    if (answers[i].hit != expected.hit ||
        answers[i].outputs != expected.outputs) {
      std::abort();
    }
  }
  std::printf(
      "C11 check: AnswerMany(4 workers) == sequential Answer loop on a "
      "%d-query batch (%llu cache hits)\n",
      64, static_cast<unsigned long long>(batched.stats().hits));
}

/// The sequential seed path: one Answer per query.
void BM_AnswerSequentialLoop(benchmark::State& state) {
  Tree doc = CatalogueDoc(8192, 64);
  ViewCache cache(doc);
  for (const ViewDefinition& view : CatalogueViews()) cache.AddView(view);
  std::vector<Pattern> batch = Traffic(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    size_t outputs = 0;
    for (const Pattern& query : batch) outputs += cache.Answer(query).outputs.size();
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_AnswerSequentialLoop)->Arg(64)->Arg(256)->UseRealTime();

void BM_AnswerManyBatch(benchmark::State& state) {
  Tree doc = CatalogueDoc(8192, 64);
  ViewCache cache(doc);
  for (const ViewDefinition& view : CatalogueViews()) cache.AddView(view);
  std::vector<Pattern> batch = Traffic(static_cast<int>(state.range(0)));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    std::vector<CacheAnswer> answers = cache.AnswerMany(batch, workers);
    benchmark::DoNotOptimize(answers.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  state.counters["workers"] = workers;
}
// Wall-clock timing: with workers > 1 the work runs on pool threads whose
// CPU time Google Benchmark's per-process CPU clock does not attribute.
BENCHMARK(BM_AnswerManyBatch)
    ->ArgsProduct({{64, 256}, {1, 4}})
    ->ArgNames({"batch", "workers"})
    ->UseRealTime();

/// The Service-level batch planner on repeated multi-document traffic: the
/// same cross-document batch re-issued against one Service (memo=1, the
/// default epoch-keyed AnswerCache) vs. the unmemoized pipeline (memo=0).
/// The tracked claim: the memoized repeated batch reaches >= 1.5x the
/// unmemoized throughput (in practice far more — a warm batch answers
/// entirely from the memo without touching the rewrite engine).
void BM_ServiceRepeatedBatch(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  const bool memo = state.range(1) != 0;
  constexpr int kDocs = 8;

  ServiceOptions options;
  if (!memo) options.answer_cache_capacity = 0;
  Service service(options);
  std::vector<DocumentId> docs;
  for (int d = 0; d < kDocs; ++d) {
    DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
    for (const ViewDefinition& view : CatalogueViews()) {
      if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
    }
    docs.push_back(id);
  }
  // Cache-style traffic fanned over the documents: the same query set
  // repeats on every document (the cross-document dedup regime).
  std::vector<Pattern> traffic = Traffic(batch_size);
  std::vector<BatchItem> items;
  items.reserve(traffic.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    items.push_back(
        {docs[i % docs.size()], Query(std::move(traffic[i]))});
  }

  for (auto _ : state) {
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
  state.counters["memo"] = memo ? 1 : 0;
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ServiceRepeatedBatch)
    ->ArgsProduct({{64, 256}, {0, 1}})
    ->ArgNames({"batch", "memo"})
    ->UseRealTime();

/// The deadline tax: the SAME repeated memoized batch as
/// BM_ServiceRepeatedBatch(memo=1) but every call carries a generous
/// (never-expiring) deadline through CallOptions — so the combined
/// cancel token exists and every cooperative poll point actually loads
/// it. The tracked claim: within noise of the deadline-free path (the
/// polls are amortized reads of one atomic).
void BM_ServiceBatchWithDeadline(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  constexpr int kDocs = 8;
  Service service;
  std::vector<DocumentId> docs;
  for (int d = 0; d < kDocs; ++d) {
    DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
    for (const ViewDefinition& view : CatalogueViews()) {
      if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
    }
    docs.push_back(id);
  }
  std::vector<Pattern> traffic = Traffic(batch_size);
  std::vector<BatchItem> items;
  items.reserve(traffic.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    items.push_back({docs[i % docs.size()], Query(std::move(traffic[i]))});
  }

  for (auto _ : state) {
    CallOptions call;
    call.num_workers = 1;
    call.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(1);
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, call);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ServiceBatchWithDeadline)->Arg(64)->Arg(256)->UseRealTime();

/// The cold floor: every iteration answers the batch through a FRESH
/// Service — empty containment oracle, answer memo disabled — so nothing
/// is amortized across iterations. The containment DP, the rewrite
/// pipeline, and the evaluator all run from scratch on every batch. This
/// is the path the SIMD bit kernel, the arena scratch, and the banked
/// candidate bundles attack; Service construction and view
/// materialization are excluded from the timed region.
void BM_ColdAnswerBatch(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  constexpr int kDocs = 8;
  ServiceOptions options;
  options.answer_cache_capacity = 0;  // Cold by construction: no memo.
  std::vector<Pattern> traffic = Traffic(batch_size);

  for (auto _ : state) {
    state.PauseTiming();
    Service service(options);
    std::vector<DocumentId> docs;
    for (int d = 0; d < kDocs; ++d) {
      DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
      for (const ViewDefinition& view : CatalogueViews()) {
        if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
      }
      docs.push_back(id);
    }
    std::vector<BatchItem> items;
    items.reserve(traffic.size());
    for (size_t i = 0; i < traffic.size(); ++i) {
      items.push_back({docs[i % docs.size()], Query(traffic[i])});
    }
    state.ResumeTiming();
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ColdAnswerBatch)->Arg(64)->Arg(256)->UseRealTime();

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C11", "batched answering pipeline (index + bundles + worker shards)",
      "Claims: AnswerMany equals the sequential Answer loop answer-for-"
      "answer and reaches >= 2x its throughput on batches of >= 64 "
      "queries; the Service batch planner's answer memo reaches >= 1.5x "
      "the unmemoized pipeline on repeated multi-document batches.");
  xpv::VerifyBatchIdentity();
  xpv::benchutil::InitWithJsonOutput(argc, argv, "BENCH_answer_many.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
