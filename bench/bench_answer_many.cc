// Experiment C11: the batched answering pipeline.
//
// Measures ViewCache::AnswerMany — view-pruning index, shared candidate
// bundles, duplicate folding and the worker-parallel oracle shards —
// against the sequential per-query Answer loop on cache-style traffic
// (a hot set of repeated queries over materialized views, plus misses).
// The tracked claim: batches of >= 64 queries answer at >= 2x the
// throughput of the sequential loop.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/service.h"
#include "bench_util.h"
#include "pattern/xpath_parser.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {
namespace {

/// A catalogue document: two small structured regions (books, journal
/// articles) embedded in a large amount of unrelated content — the regime
/// where answering from materialized views pays.
Tree CatalogueDoc(int noise_nodes, int entries) {
  Tree doc(L("lib"));
  NodeId section = doc.AddChild(doc.root(), L("section"));
  for (int i = 0; i < entries; ++i) {
    NodeId book = doc.AddChild(section, L("book"));
    NodeId title = doc.AddChild(book, L("title"));
    doc.AddChild(title, L("text"));
    doc.AddChild(book, L("author"));
  }
  NodeId journal = doc.AddChild(doc.root(), L("journal"));
  for (int i = 0; i < entries / 2; ++i) {
    NodeId article = doc.AddChild(journal, L("article"));
    doc.AddChild(article, L("title"));
    doc.AddChild(article, L("ref"));
  }
  NodeId misc = doc.AddChild(doc.root(), L("misc"));
  NodeId cur = misc;
  for (int i = 0; i < noise_nodes; ++i) {
    cur = doc.AddChild(cur, L(i % 3 == 0 ? "x" : (i % 3 == 1 ? "y" : "z")));
    if (i % 7 == 0) cur = misc;
  }
  return doc;
}

std::vector<ViewDefinition> CatalogueViews() {
  return {
      {"books", MustParseXPath("lib/section/book")},
      {"articles", MustParseXPath("lib/journal/article")},
  };
}

/// The distinct query pool: 12 view-answerable queries and 4 misses that
/// fall back to full-document evaluation.
std::vector<Pattern> QueryPool() {
  return {
      MustParseXPath("lib/section/book/title"),        // Hot.
      MustParseXPath("lib/section/book/author"),       // Hot.
      MustParseXPath("lib/journal/article/title"),     // Hot.
      MustParseXPath("lib/section/book//text"),        // Hot.
      MustParseXPath("lib/section/book"),
      MustParseXPath("lib/section/book/title/text"),
      MustParseXPath("lib/section/book[author]/title"),
      MustParseXPath("lib/journal/article/ref"),
      MustParseXPath("lib/journal/article//title"),
      MustParseXPath("lib/journal/article"),
      MustParseXPath("lib/section/book[title]/author"),
      MustParseXPath("lib/section/book/*"),
      MustParseXPath("lib/misc/x"),    // Miss.
      MustParseXPath("lib/misc/x/y"),  // Miss.
      MustParseXPath("lib/misc//z"),   // Miss.
      MustParseXPath("lib/*/nothing"), // Miss.
  };
}

/// Cache-style traffic: 75% of the batch cycles over the four hot queries,
/// the rest walks the whole pool. Deterministic.
std::vector<Pattern> Traffic(int batch_size) {
  std::vector<Pattern> pool = QueryPool();
  std::vector<Pattern> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    // 3 of every 4 slots rotate uniformly over the 4 hot queries (the
    // i/4 shift keeps all four in rotation); the 4th slot walks the pool.
    const size_t pick = (i % 4 != 3)
                            ? static_cast<size_t>(i + i / 4) % 4
                            : static_cast<size_t>(i / 4) % pool.size();
    batch.push_back(pool[pick]);
  }
  return batch;
}

void VerifyBatchIdentity() {
  Tree doc = CatalogueDoc(2048, 32);
  ViewCache batched(doc);
  ViewCache sequential(doc);
  for (const ViewDefinition& view : CatalogueViews()) {
    batched.AddView(view);
    sequential.AddView(view);
  }
  std::vector<Pattern> batch = Traffic(64);
  std::vector<CacheAnswer> answers = batched.AnswerMany(batch, 4);
  for (size_t i = 0; i < batch.size(); ++i) {
    CacheAnswer expected = sequential.Answer(batch[i]);
    if (answers[i].hit != expected.hit ||
        answers[i].outputs != expected.outputs) {
      std::abort();
    }
  }
  std::printf(
      "C11 check: AnswerMany(4 workers) == sequential Answer loop on a "
      "%d-query batch (%llu cache hits)\n",
      64, static_cast<unsigned long long>(batched.stats().hits));
}

/// The sequential seed path: one Answer per query.
void BM_AnswerSequentialLoop(benchmark::State& state) {
  Tree doc = CatalogueDoc(8192, 64);
  ViewCache cache(doc);
  for (const ViewDefinition& view : CatalogueViews()) cache.AddView(view);
  std::vector<Pattern> batch = Traffic(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    size_t outputs = 0;
    for (const Pattern& query : batch) outputs += cache.Answer(query).outputs.size();
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_AnswerSequentialLoop)->Arg(64)->Arg(256)->UseRealTime();

void BM_AnswerManyBatch(benchmark::State& state) {
  Tree doc = CatalogueDoc(8192, 64);
  ViewCache cache(doc);
  for (const ViewDefinition& view : CatalogueViews()) cache.AddView(view);
  std::vector<Pattern> batch = Traffic(static_cast<int>(state.range(0)));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    std::vector<CacheAnswer> answers = cache.AnswerMany(batch, workers);
    benchmark::DoNotOptimize(answers.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  state.counters["workers"] = workers;
}
// Wall-clock timing: with workers > 1 the work runs on pool threads whose
// CPU time Google Benchmark's per-process CPU clock does not attribute.
BENCHMARK(BM_AnswerManyBatch)
    ->ArgsProduct({{64, 256}, {1, 4}})
    ->ArgNames({"batch", "workers"})
    ->UseRealTime();

/// The Service-level batch planner on repeated multi-document traffic: the
/// same cross-document batch re-issued against one Service (memo=1, the
/// default epoch-keyed AnswerCache) vs. the unmemoized pipeline (memo=0).
/// The tracked claim: the memoized repeated batch reaches >= 1.5x the
/// unmemoized throughput (in practice far more — a warm batch answers
/// entirely from the memo without touching the rewrite engine).
void BM_ServiceRepeatedBatch(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  const bool memo = state.range(1) != 0;
  constexpr int kDocs = 8;

  ServiceOptions options;
  if (!memo) options.answer_cache_capacity = 0;
  Service service(options);
  std::vector<DocumentId> docs;
  for (int d = 0; d < kDocs; ++d) {
    DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
    for (const ViewDefinition& view : CatalogueViews()) {
      if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
    }
    docs.push_back(id);
  }
  // Cache-style traffic fanned over the documents: the same query set
  // repeats on every document (the cross-document dedup regime).
  std::vector<Pattern> traffic = Traffic(batch_size);
  std::vector<BatchItem> items;
  items.reserve(traffic.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    items.push_back(
        {docs[i % docs.size()], Query(std::move(traffic[i]))});
  }

  for (auto _ : state) {
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
  state.counters["memo"] = memo ? 1 : 0;
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ServiceRepeatedBatch)
    ->ArgsProduct({{64, 256}, {0, 1}})
    ->ArgNames({"batch", "memo"})
    ->UseRealTime();

/// The deadline tax: the SAME repeated memoized batch as
/// BM_ServiceRepeatedBatch(memo=1) but every call carries a generous
/// (never-expiring) deadline through CallOptions — so the combined
/// cancel token exists and every cooperative poll point actually loads
/// it. The tracked claim: within noise of the deadline-free path (the
/// polls are amortized reads of one atomic).
void BM_ServiceBatchWithDeadline(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  constexpr int kDocs = 8;
  Service service;
  std::vector<DocumentId> docs;
  for (int d = 0; d < kDocs; ++d) {
    DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
    for (const ViewDefinition& view : CatalogueViews()) {
      if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
    }
    docs.push_back(id);
  }
  std::vector<Pattern> traffic = Traffic(batch_size);
  std::vector<BatchItem> items;
  items.reserve(traffic.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    items.push_back({docs[i % docs.size()], Query(std::move(traffic[i]))});
  }

  for (auto _ : state) {
    CallOptions call;
    call.num_workers = 1;
    call.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(1);
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, call);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ServiceBatchWithDeadline)->Arg(64)->Arg(256)->UseRealTime();

/// The cold floor: every iteration answers the batch through a FRESH
/// Service — empty containment oracle, answer memo disabled — so nothing
/// is amortized across iterations. The containment DP, the rewrite
/// pipeline, and the evaluator all run from scratch on every batch. This
/// is the path the SIMD bit kernel, the arena scratch, and the banked
/// candidate bundles attack; Service construction and view
/// materialization are excluded from the timed region.
void BM_ColdAnswerBatch(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  constexpr int kDocs = 8;
  ServiceOptions options;
  options.answer_cache_capacity = 0;  // Cold by construction: no memo.
  std::vector<Pattern> traffic = Traffic(batch_size);

  for (auto _ : state) {
    state.PauseTiming();
    Service service(options);
    std::vector<DocumentId> docs;
    for (int d = 0; d < kDocs; ++d) {
      DocumentId id = service.AddDocument(CatalogueDoc(1024, 32));
      for (const ViewDefinition& view : CatalogueViews()) {
        if (!service.AddView(id, view.name, view.pattern).ok()) std::abort();
      }
      docs.push_back(id);
    }
    std::vector<BatchItem> items;
    items.reserve(traffic.size());
    for (size_t i = 0; i < traffic.size(); ++i) {
      items.push_back({docs[i % docs.size()], Query(traffic[i])});
    }
    state.ResumeTiming();
    ServiceResult<BatchAnswers> batch = service.AnswerBatch(items, 1);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["docs"] = kDocs;
}
BENCHMARK(BM_ColdAnswerBatch)->Arg(64)->Arg(256)->UseRealTime();

/// The PR-9 update regime: a write-heavy loop of small deltas, each
/// followed by re-answering the hot queries. incremental=1 goes through
/// `UpdateDocument` (views spliced or proven untouched, memo preserved
/// via per-view epochs); incremental=0 is the pre-PR-9 equivalent —
/// `ReplaceDocument` with the post-delta tree plus re-`AddView`, which
/// re-materializes every view and orphans the whole answer memo. The
/// deltas land in the noise region (labels disjoint from both views), so
/// the incremental path proves the views untouched and the re-answers
/// replay as memo hits. The tracked claim: incremental=1 sustains >= 3x
/// the items/s of incremental=0.
void BM_UpdateHeavyBatch(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Service service;
  DocumentId doc = service.AddDocument(CatalogueDoc(4096, 32));
  for (const ViewDefinition& view : CatalogueViews()) {
    if (!service.AddView(doc, view.name, view.pattern).ok()) std::abort();
  }
  // The replace twin mutates its own shadow tree with the same deltas and
  // ships the result wholesale.
  Tree shadow = CatalogueDoc(4096, 32);
  NodeId misc = kNoNode;
  for (NodeId n = 0; n < shadow.size(); ++n) {
    if (shadow.label(n) == L("misc")) misc = n;
  }
  if (misc == kNoNode) std::abort();

  const std::vector<Pattern> hot = {
      MustParseXPath("lib/section/book/title"),
      MustParseXPath("lib/section/book/author"),
      MustParseXPath("lib/journal/article/title"),
      MustParseXPath("lib/journal/article/ref"),
  };
  // Warm the memo so the incremental path starts from the steady state.
  for (const Pattern& q : hot) {
    if (!service.Answer(doc, Query(q)).ok()) std::abort();
  }

  int flip = 0;
  for (auto _ : state) {
    // One small delta: graft a 2-node noise subtree under <misc> and
    // relabel one noise node. Insert-only, so node ids stay stable and
    // the memo survives compaction-free.
    Tree graft(L("x"));
    graft.AddChild(graft.root(), L("y"));
    DocumentDelta delta;
    delta.InsertSubtree(misc, std::move(graft));
    delta.Relabel(misc + 1, L(++flip % 2 == 0 ? "y" : "z"));

    if (incremental) {
      if (!service.UpdateDocument(doc, std::move(delta)).ok()) std::abort();
    } else {
      (void)shadow.ApplyDelta(delta);  // discard: shadow-tree bookkeeping; the report is unused on the replace arm
      if (!service.ReplaceDocument(doc, shadow).ok()) std::abort();
      for (const ViewDefinition& view : CatalogueViews()) {
        if (!service.AddView(doc, view.name, view.pattern).ok()) std::abort();
      }
    }
    size_t outputs = 0;
    for (const Pattern& q : hot) {
      ServiceResult<Answer> answer = service.Answer(doc, Query(q));
      if (!answer.ok()) std::abort();
      outputs += answer.value().outputs.size();
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(1 + hot.size()));
  ServiceStats stats = service.stats();
  state.counters["incremental"] = incremental ? 1 : 0;
  state.counters["memo_hits"] = static_cast<double>(stats.answer_cache_hits);
  state.counters["views_untouched"] =
      static_cast<double>(stats.update_views_untouched);
}
BENCHMARK(BM_UpdateHeavyBatch)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"incremental"})
    ->UseRealTime();

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C11", "batched answering pipeline (index + bundles + worker shards)",
      "Claims: AnswerMany equals the sequential Answer loop answer-for-"
      "answer and reaches >= 2x its throughput on batches of >= 64 "
      "queries; the Service batch planner's answer memo reaches >= 1.5x "
      "the unmemoized pipeline on repeated multi-document batches; the "
      "incremental update loop (UpdateDocument + re-answer) reaches >= 3x "
      "the ReplaceDocument-equivalent's throughput on small deltas.");
  xpv::VerifyBatchIdentity();
  xpv::benchutil::InitWithJsonOutput(argc, argv, "BENCH_answer_many.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
