// Experiment F1 (Figure 1, Sections 2.3-2.4): composition mechanics.
//
// Verifies at startup that the reconstructed Figure-1 instance behaves as
// the paper states (R is an equivalent rewriting of P using V; the merged
// node is labeled by the glb), then measures the cost of composition and
// of the equivalence test R ∘ V ≡ P as the patterns grow.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

void VerifyFigureOne() {
  Pattern v = MustParseXPath("a[e]/*");
  Pattern p = MustParseXPath("a[e]//*/b[d]");
  Pattern r = MustParseXPath("*//b[d]");
  Pattern rv = Compose(r, v);
  bool ok = Equivalent(rv, p);
  std::printf("F1 check: R = %s, V = %s, P = %s\n", ToXPath(r).c_str(),
              ToXPath(v).c_str(), ToXPath(p).c_str());
  std::printf("F1 check: R∘V = %s, R∘V ≡ P: %s\n", ToXPath(rv).c_str(),
              ok ? "yes" : "NO (BUG)");
  if (!ok) std::abort();
}

/// Composition cost vs pattern size (linear-time operation).
void BM_Compose(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Pattern v = benchutil::ChainQuery(depth, depth / 2, false);
  Pattern r = benchutil::ChainQuery(depth, depth / 2, true);
  // Make the composition label-compatible: relabel r's root to match
  // out(v) ('b') or wildcard.
  r.set_label(r.root(), LabelStore::kWildcard);
  for (auto _ : state) {
    Pattern rv = Compose(r, v);
    benchmark::DoNotOptimize(rv.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Compose)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// Equivalence-test cost for the Figure-1 family as the wildcard chain
/// between the view output and the query output grows (this drives the
/// canonical-model expansion bound).
void BM_Fig1EquivalenceTest(benchmark::State& state) {
  const int stars = static_cast<int>(state.range(0));
  // P = a[e]//(*/)^stars b[d], V = a[e]/*.
  std::string pexpr = "a[e]//*";
  for (int i = 1; i < stars; ++i) pexpr += "/*";
  pexpr += "/b[d]";
  Pattern p = MustParseXPath(pexpr);
  Pattern v = MustParseXPath("a[e]/*");
  Pattern r = RelaxRootEdges(SubPattern(p, 1));
  Pattern rv = Compose(r, v);
  for (auto _ : state) {
    bool eq = Equivalent(rv, p);
    benchmark::DoNotOptimize(eq);
  }
  state.counters["stars"] = stars;
}
BENCHMARK(BM_Fig1EquivalenceTest)->DenseRange(1, 6);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "F1", "Figure 1 (composition R ∘ V)",
      "Claim: R∘V merges out(V) with root(R) under the glb label and "
      "R(V(t)) = (R∘V)(t); R is an equivalent rewriting of P using V.");
  xpv::VerifyFigureOne();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
