// Experiment C10 (substrate validation): the evaluation engine that powers
// every containment test and the view cache runs in O(|P| * |t|).
//
// Measures Eval(P, t) while scaling the document with the pattern fixed,
// the pattern with the document fixed, and both together; reports BigO
// fits. Also measures weak evaluation (identical asymptotics).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

/// Builds a tree with exactly `n` nodes: breadth-first fanout-3 shape with
/// labels cycling over a0..a3 (deterministic, so sizes actually scale).
Tree ExactSizeDoc(int n) {
  Tree t(L("a0"));
  std::vector<NodeId> frontier = {t.root()};
  size_t next = 0;
  int label = 1;
  while (t.size() < n) {
    NodeId parent = frontier[next];
    std::string name = "a";
    name.append(std::to_string(label));
    NodeId c = t.AddChild(parent, L(name));
    label = (label + 1) % 4;
    frontier.push_back(c);
    if (t.children(parent).size() >= 3) ++next;
  }
  return t;
}

void BM_EvalScalingDocument(benchmark::State& state) {
  Tree t = ExactSizeDoc(static_cast<int>(state.range(0)));
  Pattern p = MustParseXPath("a0//a1[a2]/*//a3");
  for (auto _ : state) {
    std::vector<NodeId> out = Eval(p, t);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_EvalScalingDocument)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_EvalScalingPattern(benchmark::State& state) {
  Tree t = ExactSizeDoc(4096);
  Pattern p = benchutil::ChainQuery(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)) / 2,
                                    true);
  for (auto _ : state) {
    std::vector<NodeId> out = Eval(p, t);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetComplexityN(p.size());
}
BENCHMARK(BM_EvalScalingPattern)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_WeakEval(benchmark::State& state) {
  Tree t = ExactSizeDoc(static_cast<int>(state.range(0)));
  Pattern p = MustParseXPath("a1[a2]//a3");
  for (auto _ : state) {
    std::vector<NodeId> out = EvalWeak(p, t);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_WeakEval)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C10", "evaluation-engine scaling (substrate)",
      "The embedding DP behind every containment test and view answer is "
      "O(|P| * |t|): both single-factor sweeps should fit O(N).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
