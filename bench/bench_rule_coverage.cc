// Experiment C6 (Sections 4-5): coverage of the sufficient conditions.
//
// The paper argues its conditions "cover most of the queries and views
// that are used in real-world scenarios" (Section 6: it is not easy to
// contrive meaningful queries and views that beat all the methods). This
// bench quantifies that on synthetic workloads: for each (P, V) instance
// it records how the engine decided — candidate hit, certified
// nonexistence (and by which rule chain), or unknown — across workload
// mixes of increasing adversarialness, and prints a coverage table.
// It also times the conditions evaluator itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rewrite/engine.h"
#include "rewrite/rules.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

struct Coverage {
  int found = 0;
  int not_exists_necessary = 0;
  int not_exists_conditions = 0;
  int unknown = 0;
  std::map<std::string, int> by_rule;
  int total() const {
    return found + not_exists_necessary + not_exists_conditions + unknown;
  }
};

enum class Mix { kPrefixViews, kPerturbedViews, kUnrelated };

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kPrefixViews:
      return "prefix views (always rewritable)";
    case Mix::kPerturbedViews:
      return "perturbed views (adversarial)";
    case Mix::kUnrelated:
      return "unrelated random views";
  }
  return "?";
}

Coverage RunWorkload(Mix mix, int count, uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions options;
  options.min_depth = 1;
  options.max_depth = 4;
  options.max_branches = 2;
  options.alphabet_size = 3;
  Coverage coverage;
  for (int i = 0; i < count; ++i) {
    Pattern p = RandomPattern(rng, options);
    Pattern v = Pattern::Empty();
    int k = -1;
    switch (mix) {
      case Mix::kPrefixViews:
        v = PrefixView(rng, p, &k);
        break;
      case Mix::kPerturbedViews:
        v = PerturbedView(rng, p, &k);
        break;
      case Mix::kUnrelated:
        v = RandomPattern(rng, options);
        break;
    }
    RewriteResult result = DecideRewrite(p, v);
    switch (result.status) {
      case RewriteStatus::kFound:
        ++coverage.found;
        break;
      case RewriteStatus::kNotExists:
        if (result.violation.has_value()) {
          ++coverage.not_exists_necessary;
          ++coverage.by_rule[RuleName(result.violation->rule)];
        } else {
          ++coverage.not_exists_conditions;
          if (result.completeness.has_value()) {
            ++coverage.by_rule[RuleName(result.completeness->chain.back())];
          }
        }
        break;
      case RewriteStatus::kUnknown:
        ++coverage.unknown;
        break;
    }
  }
  return coverage;
}

void PrintCoverage() {
  std::printf("%-38s %8s %10s %10s %8s %9s\n", "workload", "found",
              "no(nec.)", "no(cond.)", "unknown", "decided%");
  for (Mix mix :
       {Mix::kPrefixViews, Mix::kPerturbedViews, Mix::kUnrelated}) {
    Coverage c = RunWorkload(mix, 400, 2024);
    double decided =
        100.0 * (c.total() - c.unknown) / static_cast<double>(c.total());
    std::printf("%-38s %8d %10d %10d %8d %8.1f%%\n", MixName(mix), c.found,
                c.not_exists_necessary, c.not_exists_conditions, c.unknown,
                decided);
  }
  std::printf("\nDecisive rule histogram (perturbed mix):\n");
  Coverage c = RunWorkload(Mix::kPerturbedViews, 400, 2024);
  for (const auto& [rule, count] : c.by_rule) {
    std::printf("  %-55s %5d\n", rule.c_str(), count);
  }
  std::printf("\n");
}

void BM_ConditionsEvaluator(benchmark::State& state) {
  Rng rng(77);
  PatternGenOptions options;
  options.min_depth = 2;
  options.max_depth = 5;
  options.max_branches = 3;
  std::vector<std::pair<Pattern, Pattern>> instances;
  for (int i = 0; i < 64; ++i) {
    Pattern p = RandomPattern(rng, options);
    int k = -1;
    Pattern v = PerturbedView(rng, p, &k);
    instances.emplace_back(std::move(p), std::move(v));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, v] = instances[i++ % instances.size()];
    ConditionsReport report = EvaluateConditions(p, v);
    benchmark::DoNotOptimize(report.completeness.has_value());
  }
}
BENCHMARK(BM_ConditionsEvaluator);

void BM_FullDecision(benchmark::State& state) {
  Rng rng(78);
  PatternGenOptions options;
  options.min_depth = 1;
  options.max_depth = 4;
  options.max_branches = 2;
  options.alphabet_size = 3;
  std::vector<std::pair<Pattern, Pattern>> instances;
  for (int i = 0; i < 64; ++i) {
    Pattern p = RandomPattern(rng, options);
    int k = -1;
    Pattern v = PerturbedView(rng, p, &k);
    instances.emplace_back(std::move(p), std::move(v));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, v] = instances[i++ % instances.size()];
    RewriteResult result = DecideRewrite(p, v);
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_FullDecision);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C6", "coverage of the sufficient conditions (Sections 4-5)",
      "Claim: the conditions decide (Found or certified NotExists) the "
      "vast majority of instances; Unknown is rare.");
  xpv::PrintCoverage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
