// Experiment C11 (open problem 4, Section 6): "given a set of queries that
// are frequently asked, what is an optimal set of views that should be
// maintained so that the queries could be evaluated as quickly as
// possible?"
//
// Exercises the greedy prefix-view selection: coverage achieved per view
// budget on synthetic workloads, and the cost of the selection itself
// (each candidate scoring runs the full rewrite engine per query).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "pattern/serializer.h"
#include "util/rng.h"
#include "views/view_selection.h"
#include "workload/generator.h"

namespace xpv {
namespace {

std::vector<WorkloadQuery> SyntheticWorkload(int queries, uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions options;
  options.min_depth = 2;
  options.max_depth = 4;
  options.max_branches = 2;
  options.alphabet_size = 3;  // Small alphabet => shared prefixes.
  std::vector<WorkloadQuery> workload;
  for (int i = 0; i < queries; ++i) {
    workload.push_back(
        {RandomPattern(rng, options), 1.0 + static_cast<double>(i % 5)});
  }
  return workload;
}

void PrintCoverageCurve() {
  std::vector<WorkloadQuery> workload = SyntheticWorkload(40, 4242);
  std::printf("%-12s %14s %14s\n", "view budget", "covered wt.", "coverage");
  for (int budget = 1; budget <= 6; ++budget) {
    ViewSelectionOptions options;
    options.max_views = budget;
    ViewSelectionResult result = SelectViews(workload, options);
    std::printf("%-12d %14.1f %13.1f%%\n", budget, result.covered_weight,
                100.0 * result.covered_weight / result.total_weight);
  }
  ViewSelectionOptions options;
  options.max_views = 3;
  ViewSelectionResult result = SelectViews(workload, options);
  std::printf("\nchosen views at budget 3:\n");
  for (const CandidateView& view : result.chosen) {
    std::printf("  %-28s answers %zu queries, weight %.1f\n",
                ToXPath(view.pattern).c_str(), view.answers.size(),
                view.covered_weight);
  }
  std::printf("\n");
}

void BM_CandidateEnumeration(benchmark::State& state) {
  std::vector<WorkloadQuery> workload =
      SyntheticWorkload(static_cast<int>(state.range(0)), 99);
  for (auto _ : state) {
    std::vector<CandidateView> candidates =
        EnumerateCandidateViews(workload);
    benchmark::DoNotOptimize(candidates.size());
  }
  state.counters["queries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CandidateEnumeration)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_GreedySelection(benchmark::State& state) {
  std::vector<WorkloadQuery> workload =
      SyntheticWorkload(static_cast<int>(state.range(0)), 99);
  ViewSelectionOptions options;
  options.max_views = 4;
  for (auto _ : state) {
    ViewSelectionResult result = SelectViews(workload, options);
    benchmark::DoNotOptimize(result.covered_weight);
  }
  state.counters["queries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GreedySelection)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C11", "view selection for a query workload (open problem 4)",
      "Greedy prefix-view selection: coverage per view budget and the "
      "cost of scoring candidates with the rewrite engine.");
  xpv::PrintCoverageCurve();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
