// Experiment C1 (Section 1 / Section 4): "natural rewriting candidates...
// can be constructed in linear time".
//
// Measures MakeNaturalCandidates over patterns of growing size (both deep
// chains and wide branchy patterns) and reports the asymptotic fit; the
// expected shape is O(N).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "pattern/properties.h"
#include "rewrite/candidates.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

void BM_CandidatesDeepChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Pattern p = benchutil::ChainQuery(depth, /*branches=*/depth / 2, true);
  const int k = depth / 2;
  for (auto _ : state) {
    NaturalCandidates c = MakeNaturalCandidates(p, k);
    benchmark::DoNotOptimize(c.sub.size());
  }
  state.SetComplexityN(p.size());
}
BENCHMARK(BM_CandidatesDeepChain)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Complexity(benchmark::oN);

void BM_CandidatesWideBranches(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  // Fixed shallow spine, growing branch count at the k-node.
  Pattern p(L("a"));
  NodeId mid = p.AddChild(p.root(), LabelStore::kWildcard,
                          EdgeType::kDescendant);
  NodeId out = p.AddChild(mid, L("b"), EdgeType::kChild);
  p.set_output(out);
  for (int i = 0; i < branches; ++i) {
    NodeId br = p.AddChild(mid, L("e"), EdgeType::kChild);
    p.AddChild(br, L("f"), EdgeType::kDescendant);
  }
  for (auto _ : state) {
    NaturalCandidates c = MakeNaturalCandidates(p, 1);
    benchmark::DoNotOptimize(c.relaxed.size());
  }
  state.SetComplexityN(p.size());
}
BENCHMARK(BM_CandidatesWideBranches)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Complexity(benchmark::oN);

void BM_CandidatesRandomPatterns(benchmark::State& state) {
  Rng rng(1234);
  PatternGenOptions options;
  options.min_depth = 3;
  options.max_depth = 8;
  options.max_branches = static_cast<int>(state.range(0));
  options.max_branch_size = 4;
  std::vector<Pattern> patterns;
  for (int i = 0; i < 64; ++i) patterns.push_back(RandomPattern(rng, options));
  size_t i = 0;
  for (auto _ : state) {
    const Pattern& p = patterns[i++ % patterns.size()];
    NaturalCandidates c = MakeNaturalCandidates(p, 2);
    benchmark::DoNotOptimize(c.sub.size());
  }
}
BENCHMARK(BM_CandidatesRandomPatterns)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C1", "linear-time candidate construction (Sections 1 & 4)",
      "Claim: both natural candidates are built in time linear in |P| "
      "(look for an O(N) complexity fit below).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
