// Experiment F4 (Figure 4, Sections 4.1.3 & 5.3): query/view correlation,
// label extension and output lifting.
//
// Verifies which completeness machinery applies to each of (V,P1), (V,P2),
// (V,P3) — Thm 4.16 directly for P1, Section-5 transformations for P2,
// Cor 5.7-style reasoning for P3 — then measures the cost of evaluating
// the conditions engine and of the extension/lifting transform.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/rules.h"

namespace xpv {
namespace {

Pattern V() { return MustParseXPath("a/*//*[b]/*"); }
Pattern P1() { return MustParseXPath("a/*//*[b]/*/*/e"); }
Pattern P2() { return MustParseXPath("a/*//*[b]/*/c//b"); }
Pattern P3() { return MustParseXPath("a//*[b]/*/*/*/e"); }

void VerifyFigureFour() {
  Pattern v = V(), p1 = P1(), p2 = P2(), p3 = P3();
  SelectionInfo vi(v);

  {
    SelectionInfo pi(p1);
    int j = pi.DeepestDescendantSelectionEdge();
    bool thm416 = j >= 1 && j <= vi.depth() &&
                  vi.SelectionEdge(j) == EdgeType::kDescendant;
    std::printf("F4 check: (V,P1): last // of P1 at depth %d, corresponds "
                "in V: %s (paper: yes, Thm 4.16)\n",
                j, thm416 ? "yes" : "NO");
    if (!thm416) std::abort();
  }
  {
    SelectionInfo pi(p2);
    int j = pi.DeepestDescendantSelectionEdge();
    std::printf("F4 check: (V,P2): last // of P2 at depth %d > k = %d, no "
                "corresponding edge (paper: needs Section 5.3)\n",
                j, vi.depth());
    if (j <= vi.depth()) std::abort();
    ConditionsReport report = EvaluateConditions(p2, v);
    if (!report.completeness.has_value()) std::abort();
    bool section5 = false;
    for (RuleId id : report.completeness->chain) {
      if (id == RuleId::kSuffixReduction ||
          id == RuleId::kExtendLiftReduction ||
          id == RuleId::kStableReduction) {
        section5 = true;
      }
    }
    std::printf("F4 check: (V,P2) resolved via Section-5 transform chain: "
                "%s\n", section5 ? "yes" : "NO");
    if (!section5) std::abort();
  }
  {
    SelectionInfo pi(p3);
    int j = pi.DeepestDescendantSelectionEdge();
    bool direct416 = vi.SelectionEdge(j) == EdgeType::kDescendant;
    bool cor57 = vi.DeepestDescendantSelectionEdge() >= j;
    std::printf("F4 check: (V,P3): Thm 4.16 direct: %s (paper: no); "
                "Cor 5.7 premise: %s (paper: yes)\n",
                direct416 ? "YES" : "no", cor57 ? "yes" : "NO");
    if (direct416 || !cor57) std::abort();
    if (!EvaluateConditions(p3, v).completeness.has_value()) std::abort();
  }
}

void BM_Fig4ConditionsP1(benchmark::State& state) {
  Pattern p = P1(), v = V();
  for (auto _ : state) {
    ConditionsReport report = EvaluateConditions(p, v);
    benchmark::DoNotOptimize(report.completeness.has_value());
  }
}
BENCHMARK(BM_Fig4ConditionsP1);

void BM_Fig4ConditionsP2TransformChain(benchmark::State& state) {
  Pattern p = P2(), v = V();
  for (auto _ : state) {
    ConditionsReport report = EvaluateConditions(p, v);
    benchmark::DoNotOptimize(report.completeness.has_value());
  }
}
BENCHMARK(BM_Fig4ConditionsP2TransformChain);

void BM_Fig4ConditionsP3(benchmark::State& state) {
  Pattern p = P3(), v = V();
  for (auto _ : state) {
    ConditionsReport report = EvaluateConditions(p, v);
    benchmark::DoNotOptimize(report.completeness.has_value());
  }
}
BENCHMARK(BM_Fig4ConditionsP3);

void BM_Fig4ExtendAndLift(benchmark::State& state) {
  Pattern p = P2();
  LabelId mu = Labels().Fresh("mu_bench");
  for (auto _ : state) {
    Pattern lifted = LiftOutput(Extend(p, mu), 4);
    benchmark::DoNotOptimize(lifted.size());
  }
}
BENCHMARK(BM_Fig4ExtendAndLift);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "F4", "Figure 4 (correlation, label extension, output lifting)",
      "Claims: Thm 4.16 applies to (V,P1) but not (V,P2)/(V,P3); Cor 5.7 "
      "covers P3; Section 5.3's extension+lifting covers P2.");
  xpv::VerifyFigureFour();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
