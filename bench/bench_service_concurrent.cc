// Experiment C12: the thread-safe serving facade under concurrent callers.
//
// Measures xpv::Service with multiple caller threads sharing one Service:
// single-query Answer throughput (per-call oracle shard + striped shared
// locks), cross-document AnswerBatch throughput, and a mixed
// readers-plus-writer workload (AddView/RemoveView churn on one document
// while the others keep answering). The tracked claim: caller concurrency
// adds no correctness cost and the lock striping keeps concurrent Answer
// throughput within a small factor of the single-threaded facade.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/service.h"
#include "bench_util.h"
#include "eval/evaluator.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

/// A catalogue document (same family as bench_answer_many): structured
/// regions that views cover plus unrelated noise.
Tree CatalogueDoc(int noise_nodes, int entries) {
  Tree doc(L("lib"));
  NodeId section = doc.AddChild(doc.root(), L("section"));
  for (int i = 0; i < entries; ++i) {
    NodeId book = doc.AddChild(section, L("book"));
    NodeId title = doc.AddChild(book, L("title"));
    doc.AddChild(title, L("text"));
    doc.AddChild(book, L("author"));
  }
  NodeId misc = doc.AddChild(doc.root(), L("misc"));
  NodeId cur = misc;
  for (int i = 0; i < noise_nodes; ++i) {
    cur = doc.AddChild(cur, L(i % 3 == 0 ? "x" : (i % 3 == 1 ? "y" : "z")));
    if (i % 7 == 0) cur = misc;
  }
  return doc;
}

const char* const kQueries[] = {
    "lib/section/book/title", "lib/section/book/author",
    "lib/section/book//text", "lib/section/book[author]/title",
    "lib/section/book",       "lib/misc/x",
};

struct SharedService {
  Service service;
  std::vector<DocumentId> docs;

  explicit SharedService(int num_docs) {
    for (int d = 0; d < num_docs; ++d) {
      DocumentId id = service.AddDocument(CatalogueDoc(1024, 24));
      docs.push_back(id);
      ServiceResult<ViewId> view =
          service.AddView(id, "books", "lib/section/book");
      if (!view.ok()) std::abort();
    }
  }
};

void VerifyConcurrentIdentity() {
  // The bench's own sanity gate: answers through the shared Service equal
  // direct evaluation for every (document, query).
  SharedService shared(2);
  for (DocumentId doc : shared.docs) {
    for (const char* q : kQueries) {
      ServiceResult<Answer> answer = shared.service.Answer(doc, q);
      if (!answer.ok()) std::abort();
      const Tree* tree = shared.service.document(doc);
      if (answer.value().outputs != Eval(MustParseXPath(q), *tree)) {
        std::abort();
      }
    }
  }
  std::printf(
      "C12 check: concurrent-facade answers == direct evaluation over "
      "%zu (doc, query) pairs\n",
      shared.docs.size() * std::size(kQueries));
}

/// Concurrent single-query Answer: every benchmark thread hammers the
/// SAME Service (its own rotation over documents and queries).
void BM_ServiceAnswerConcurrent(benchmark::State& state) {
  static SharedService* shared = new SharedService(4);
  int i = state.thread_index();
  size_t outputs = 0;
  for (auto _ : state) {
    const DocumentId doc =
        shared->docs[static_cast<size_t>(i) % shared->docs.size()];
    const char* query = kQueries[static_cast<size_t>(i) % std::size(kQueries)];
    ServiceResult<Answer> answer = shared->service.Answer(doc, query);
    if (!answer.ok()) std::abort();
    outputs += answer.value().outputs.size();
    ++i;
  }
  benchmark::DoNotOptimize(outputs);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceAnswerConcurrent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// Concurrent cross-document batches: each thread submits 64-item batches
/// spanning all documents through the shared pool.
void BM_ServiceBatchConcurrent(benchmark::State& state) {
  static SharedService* shared = new SharedService(4);
  std::vector<BatchItem> items;
  for (int k = 0; k < 64; ++k) {
    items.push_back(
        {shared->docs[static_cast<size_t>(k) % shared->docs.size()],
         kQueries[static_cast<size_t>(k) % std::size(kQueries)]});
  }
  for (auto _ : state) {
    ServiceResult<BatchAnswers> batch =
        shared->service.AnswerBatch(items, /*num_workers=*/2);
    if (!batch.ok()) std::abort();
    benchmark::DoNotOptimize(batch.value().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_ServiceBatchConcurrent)
    ->Threads(1)
    ->Threads(2)
    ->UseRealTime();

/// Readers under writer churn: thread 0 cycles AddView/RemoveView on one
/// document while the other threads answer against the rest — the striped
/// locks confine the writer to its own shard.
void BM_ServiceAnswerUnderViewChurn(benchmark::State& state) {
  static SharedService* shared = new SharedService(4);
  int i = state.thread_index();
  size_t work = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0 && state.threads() > 1) {
      const DocumentId churn = shared->docs.back();
      ServiceResult<ViewId> view = shared->service.AddView(
          churn, "churn-" + std::to_string(i % 2), "lib/section/book/title");
      if (view.ok()) {
        if (!shared->service.RemoveView(view.value()).ok()) std::abort();
      }
      ++work;
    } else {
      const DocumentId doc =
          shared->docs[static_cast<size_t>(i) % (shared->docs.size() - 1)];
      ServiceResult<Answer> answer = shared->service.Answer(
          doc, kQueries[static_cast<size_t>(i) % std::size(kQueries)]);
      if (!answer.ok()) std::abort();
      work += answer.value().outputs.size();
    }
    ++i;
  }
  benchmark::DoNotOptimize(work);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceAnswerUnderViewChurn)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C12", "concurrent multi-tenant serving facade (xpv::Service)",
      "Claims: concurrent Answer/AnswerBatch callers over one Service are "
      "safe (striped shard locks + synchronized oracle) and answers stay "
      "identical to direct evaluation; writer churn on one document does "
      "not block the others.");
  xpv::VerifyConcurrentIdentity();
  xpv::benchutil::InitWithJsonOutput(argc, argv,
                                     "BENCH_service_concurrent.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
