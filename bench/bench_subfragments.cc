// Experiment C4 (Section 1, after [17]): the rewriting problem is PTIME on
// the homomorphism sub-fragments.
//
// Compares the homomorphism baseline (Xu & Özsoyoglu-style) against the
// full coNP engine on workloads drawn from XP^{//,[]} (no wildcards) and
// XP^{/,[],*} (no descendant edges), verifying agreement and measuring the
// polynomial-vs-exponential gap on instances where the coNP engine cannot
// use its own fast path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "rewrite/baseline.h"
#include "rewrite/engine.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

struct Instance {
  Pattern p;
  Pattern v;
};

std::vector<Instance> MakeWorkload(int fragment, int count, uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions options;
  options.min_depth = 2;
  options.max_depth = 4;
  options.max_branches = 3;
  options.alphabet_size = 3;
  std::vector<Instance> out;
  while (static_cast<int>(out.size()) < count) {
    Pattern p = RandomSubFragmentPattern(rng, options, fragment);
    int k = -1;
    Pattern v = rng.Chance(0.5) ? PrefixView(rng, p, &k)
                                : PerturbedView(rng, p, &k);
    // PerturbedView may introduce wildcards/descendant edges; re-filter.
    BaselineResult probe = HomomorphismBaselineRewrite(p, v);
    if (!probe.applicable) continue;
    out.push_back({std::move(p), std::move(v)});
  }
  return out;
}

void VerifyAgreement() {
  int decided = 0;
  for (int fragment = 0; fragment < 2; ++fragment) {
    std::vector<Instance> workload = MakeWorkload(fragment, 60, 7 + fragment);
    for (const Instance& inst : workload) {
      BaselineResult baseline = HomomorphismBaselineRewrite(inst.p, inst.v);
      RewriteResult full = DecideRewrite(inst.p, inst.v);
      if (full.status == RewriteStatus::kUnknown) continue;
      bool full_found = full.status == RewriteStatus::kFound;
      if (baseline.found != full_found) {
        std::printf("C4 DISAGREEMENT on fragment %d!\n", fragment);
        std::abort();
      }
      ++decided;
    }
  }
  std::printf("C4 check: baseline and coNP engine agree on %d decided "
              "sub-fragment instances\n", decided);
}

void BM_BaselinePTime(benchmark::State& state) {
  std::vector<Instance> workload =
      MakeWorkload(static_cast<int>(state.range(0)), 32, 99);
  size_t i = 0;
  for (auto _ : state) {
    const Instance& inst = workload[i++ % workload.size()];
    BaselineResult result = HomomorphismBaselineRewrite(inst.p, inst.v);
    benchmark::DoNotOptimize(result.found);
  }
  state.SetLabel(state.range(0) == 0 ? "XP{//,[]}" : "XP{/,[],*}");
}
BENCHMARK(BM_BaselinePTime)->Arg(0)->Arg(1);

void BM_FullEngineOnSubFragment(benchmark::State& state) {
  std::vector<Instance> workload =
      MakeWorkload(static_cast<int>(state.range(0)), 32, 99);
  size_t i = 0;
  for (auto _ : state) {
    const Instance& inst = workload[i++ % workload.size()];
    RewriteResult result = DecideRewrite(inst.p, inst.v);
    benchmark::DoNotOptimize(result.status);
  }
  state.SetLabel(state.range(0) == 0 ? "XP{//,[]}" : "XP{/,[],*}");
}
BENCHMARK(BM_FullEngineOnSubFragment)->Arg(0)->Arg(1);

/// Scaling within the no-wildcard fragment: baseline stays polynomial as
/// queries grow.
void BM_BaselineScaling(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Pattern p = benchutil::ChainQuery(depth, depth, true);
  // Remove wildcards: relabel spine nodes.
  for (NodeId n = 0; n < p.size(); ++n) {
    if (p.label(n) == LabelStore::kWildcard) p.set_label(n, L("m"));
  }
  Rng rng(5);
  int k = -1;
  Pattern v = PrefixView(rng, p, &k);
  for (auto _ : state) {
    BaselineResult result = HomomorphismBaselineRewrite(p, v);
    benchmark::DoNotOptimize(result.found);
  }
  state.SetComplexityN(p.size());
}
BENCHMARK(BM_BaselineScaling)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C4", "PTIME rewriting on the homomorphism sub-fragments ([17])",
      "Claims: the homomorphism baseline agrees with the coNP engine on "
      "sub-fragment workloads and scales polynomially.");
  xpv::VerifyAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
