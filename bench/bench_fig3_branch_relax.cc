// Experiment F3 (Figure 3, Lemma 4.12): branch relaxation.
//
// Verifies the chain B ⊑ B_r// ⊑ B' ≡ B on the reconstructed Figure-3
// branch (hence B ≡ B_r//), plus the negative control with a Σ-label on
// the child path, and measures the equivalence test as the wildcard child
// path grows (star-chain length drives the canonical-model bound).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

std::string WildcardPathBranch(int path_len, bool all_descendant) {
  // *[ */*/.../*[//a][//b] ] with path_len wildcard steps.
  std::string expr = "*[";
  const char* sep = all_descendant ? "//" : "/";
  for (int i = 0; i < path_len; ++i) {
    expr += (i == 0 && !all_descendant) ? "" : sep;
    if (i == 0 && all_descendant) {
      // Leading // inside a predicate.
    }
    expr += "*";
  }
  expr += "[//a][//b]]";
  if (all_descendant) {
    // Rebuild with a leading // for the first step.
    expr = "*[//*";
    for (int i = 1; i < path_len; ++i) expr += "//*";
    expr += "[//a][//b]]";
  }
  return expr;
}

void VerifyFigureThree() {
  Pattern b = MustParseXPath(WildcardPathBranch(2, false));
  Pattern b_prime = MustParseXPath(WildcardPathBranch(2, true));
  Pattern b_relaxed = RelaxRootEdges(b);
  bool c1 = Contained(b, b_relaxed);
  bool c2 = Contained(b_relaxed, b_prime);
  bool c3 = Equivalent(b_prime, b);
  bool conclusion = Equivalent(b, b_relaxed);
  std::printf("F3 check: B = %s\n", ToXPath(b).c_str());
  std::printf("F3 check: B ⊑ B_r//: %s, B_r// ⊑ B': %s, B' ≡ B: %s => "
              "B ≡ B_r//: %s\n",
              c1 ? "yes" : "NO", c2 ? "yes" : "NO", c3 ? "yes" : "NO",
              conclusion ? "yes" : "NO");
  if (!(c1 && c2 && c3 && conclusion)) std::abort();

  // Negative control: a Σ-label on the path breaks the lemma's premise.
  Pattern bad = MustParseXPath("*[c/*[//a]]");
  if (Equivalent(bad, RelaxRootEdges(bad))) std::abort();
  std::printf("F3 check: with Σ-label on the path, B ≢ B_r// (as "
              "expected)\n");
}

void BM_Fig3RelaxationEquivalence(benchmark::State& state) {
  const int path_len = static_cast<int>(state.range(0));
  Pattern b = MustParseXPath(WildcardPathBranch(path_len, false));
  Pattern b_relaxed = RelaxRootEdges(b);
  for (auto _ : state) {
    bool eq = Equivalent(b, b_relaxed);
    benchmark::DoNotOptimize(eq);
  }
  state.counters["star_path"] = path_len;
}
BENCHMARK(BM_Fig3RelaxationEquivalence)->DenseRange(1, 5);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "F3", "Figure 3 (branch relaxation B, B', B_r//)",
      "Claim (Lemma 4.12): along a maximal all-wildcard child path ending "
      "in descendant-only edges, B ⊑ B_r// ⊑ B' ≡ B, hence B ≡ B_r//.");
  xpv::VerifyFigureThree();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
