// Experiment C9 (ablation): memoizing the containment oracle.
//
// The paper's algorithm spends all of its super-polynomial time inside
// containment tests (Section 4: "the only inefficient step"). Cache-style
// deployments ask many containment questions about overlapping patterns;
// this ablation quantifies how much a canonical-encoding-keyed memo saves
// on a repeated-workload mix, and what the hit rate looks like.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "containment/containment.h"
#include "containment/oracle.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

std::vector<std::pair<Pattern, Pattern>> RepeatedWorkload(int distinct,
                                                          int repeats,
                                                          uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions options;
  options.max_depth = 3;
  options.max_branches = 2;
  options.alphabet_size = 3;
  std::vector<std::pair<Pattern, Pattern>> base;
  for (int i = 0; i < distinct; ++i) {
    base.emplace_back(RandomPattern(rng, options),
                      RandomPattern(rng, options));
  }
  std::vector<std::pair<Pattern, Pattern>> workload;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& pair : base) workload.push_back(pair);
  }
  return workload;
}

void BM_WithoutOracle(benchmark::State& state) {
  auto workload = RepeatedWorkload(16, static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    int contained = 0;
    for (const auto& [p1, p2] : workload) {
      contained += Contained(p1, p2) ? 1 : 0;
    }
    benchmark::DoNotOptimize(contained);
  }
  state.counters["queries"] = static_cast<double>(workload.size());
}
BENCHMARK(BM_WithoutOracle)->Arg(1)->Arg(4)->Arg(16);

void BM_WithOracle(benchmark::State& state) {
  auto workload = RepeatedWorkload(16, static_cast<int>(state.range(0)), 5);
  double hit_rate = 0.0;
  for (auto _ : state) {
    ContainmentOracle oracle;
    int contained = 0;
    for (const auto& [p1, p2] : workload) {
      contained += oracle.Contained(p1, p2) ? 1 : 0;
    }
    benchmark::DoNotOptimize(contained);
    hit_rate = static_cast<double>(oracle.hits()) /
               static_cast<double>(oracle.hits() + oracle.misses());
  }
  state.counters["queries"] = static_cast<double>(workload.size());
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_WithOracle)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C9", "containment-oracle memoization (ablation)",
      "The coNP containment tests dominate the engine's cost; memoization "
      "amortizes them across repeated cache workloads.");
  xpv::benchutil::InitWithJsonOutput(argc, argv, "BENCH_oracle_cache.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
