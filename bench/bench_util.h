#ifndef XPV_BENCH_BENCH_UTIL_H_
#define XPV_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark binaries. Each bench binary corresponds
// to one experiment id of DESIGN.md / EXPERIMENTS.md and starts by printing
// a header naming the experiment and the paper artifact it regenerates.

#include <cstdio>
#include <string>

#include "pattern/pattern.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "xml/tree.h"

namespace xpv::benchutil {

inline void PrintHeader(const char* experiment_id, const char* artifact,
                        const char* claim) {
  std::printf("==============================================================\n");
  std::printf("Experiment %s — %s\n", experiment_id, artifact);
  std::printf("%s\n", claim);
  std::printf("==============================================================\n");
}

/// A chain query a/*/*/.../b of the given depth with `branches` predicate
/// branches attached along the spine — the scalable family used by several
/// benches.
inline Pattern ChainQuery(int depth, int branches, bool descendant_first) {
  Pattern p(L("a"));
  NodeId spine = p.root();
  for (int i = 1; i <= depth; ++i) {
    EdgeType et = (i == 1 && descendant_first) ? EdgeType::kDescendant
                                               : EdgeType::kChild;
    LabelId label =
        (i == depth) ? L("b") : LabelStore::kWildcard;
    spine = p.AddChild(spine, label, et);
  }
  p.set_output(spine);
  for (int b = 0; b < branches; ++b) {
    NodeId attach = static_cast<NodeId>(b % p.size());
    p.AddChild(attach, L("e"), EdgeType::kChild);
  }
  return p;
}

/// A balanced document with `fanout`^`depth`-ish nodes over a small
/// alphabet, for evaluation-heavy benches.
inline Tree BalancedDoc(int depth, int fanout, uint64_t seed) {
  Rng rng(seed);
  TreeGenOptions options;
  options.max_depth = depth;
  options.max_fanout = fanout;
  options.max_nodes = 1 << 16;
  options.alphabet_size = 4;
  return RandomTree(rng, options);
}

}  // namespace xpv::benchutil

#endif  // XPV_BENCH_BENCH_UTIL_H_
