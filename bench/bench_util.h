#ifndef XPV_BENCH_BENCH_UTIL_H_
#define XPV_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark binaries. Each bench binary corresponds
// to one experiment id of DESIGN.md / EXPERIMENTS.md and starts by printing
// a header naming the experiment and the paper artifact it regenerates.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "pattern/xpath_parser.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "xml/tree.h"

namespace xpv::benchutil {

inline void PrintHeader(const char* experiment_id, const char* artifact,
                        const char* claim) {
  std::printf("==============================================================\n");
  std::printf("Experiment %s — %s\n", experiment_id, artifact);
  std::printf("%s\n", claim);
  std::printf("==============================================================\n");
}

/// The CPU model string from /proc/cpuinfo, or "unknown" off-Linux. Two
/// result files are only comparable when this matches.
inline std::string CpuModelName() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  std::string model = "unknown";
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model.assign(colon + 1);
        while (!model.empty() && model.front() == ' ') model.erase(0, 1);
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

/// Which bit-kernel the binary was built with (the XPV_SIMD CMake flag).
inline const char* SimdMode() {
#ifdef XPV_SIMD_AVX2
  return "avx2";
#else
  return "off";
#endif
}

/// Initializes Google Benchmark so that results are also written as
/// machine-readable JSON to `json_path` (e.g. "BENCH_containment.json"),
/// unless the caller passed their own --benchmark_out on the command
/// line. The perf trajectory of the tracked benches is compared across
/// PRs from these files.
inline void InitWithJsonOutput(int argc, char** argv, const char* json_path) {
  static std::vector<std::string> storage;
  static std::vector<char*> args;
  storage.assign(argv, argv + argc);
  bool has_out = false;
  for (const std::string& arg : storage) {
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default output file.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    storage.push_back(std::string("--benchmark_out=") + json_path);
    storage.push_back("--benchmark_out_format=json");
  }
  args.clear();
  for (std::string& arg : storage) args.push_back(arg.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  // Provenance in every result file: a JSON is only comparable to another
  // when the machine, the bit-kernel build mode, and the source tree match.
  benchmark::AddCustomContext("cpu_model", CpuModelName());
  benchmark::AddCustomContext("simd", SimdMode());
#ifdef XPV_GIT_SHA
  benchmark::AddCustomContext("git_sha", XPV_GIT_SHA);
#else
  benchmark::AddCustomContext("git_sha", "unknown");
#endif
}

/// A chain query a/*/*/.../b of the given depth with `branches` predicate
/// branches attached along the spine — the scalable family used by several
/// benches.
inline Pattern ChainQuery(int depth, int branches, bool descendant_first) {
  Pattern p(L("a"));
  NodeId spine = p.root();
  for (int i = 1; i <= depth; ++i) {
    EdgeType et = (i == 1 && descendant_first) ? EdgeType::kDescendant
                                               : EdgeType::kChild;
    LabelId label =
        (i == depth) ? L("b") : LabelStore::kWildcard;
    spine = p.AddChild(spine, label, et);
  }
  p.set_output(spine);
  for (int b = 0; b < branches; ++b) {
    NodeId attach = static_cast<NodeId>(b % p.size());
    p.AddChild(attach, L("e"), EdgeType::kChild);
  }
  return p;
}

/// A balanced document with `fanout`^`depth`-ish nodes over a small
/// alphabet, for evaluation-heavy benches.
inline Tree BalancedDoc(int depth, int fanout, uint64_t seed) {
  Rng rng(seed);
  TreeGenOptions options;
  options.max_depth = depth;
  options.max_fanout = fanout;
  options.max_nodes = 1 << 16;
  options.alphabet_size = 4;
  return RandomTree(rng, options);
}

}  // namespace xpv::benchutil

#endif  // XPV_BENCH_BENCH_UTIL_H_
