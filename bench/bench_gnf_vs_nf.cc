// Experiment C8 (ablation, Section 6): "the generalized normal form
// presented in Section 5.1 covers a much larger class of queries than the
// corresponding normal forms presented in [10] because it is based only on
// properties of the selection path (rather than the whole query)".
//
// Measures the membership rates of NF/* vs GNF/* on random pattern
// populations of varying shapes, verifies the inclusion NF/* ⊆ GNF/*, and
// times both predicates.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "rewrite/gnf.h"
#include "rewrite/nf.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace xpv {
namespace {

struct Rates {
  int nf = 0;
  int gnf = 0;
  int total = 0;
};

Rates MeasureRates(double wildcard_prob, double descendant_prob,
                   int branches, int count, uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions options;
  options.min_depth = 2;
  options.max_depth = 5;
  options.max_branches = branches;
  options.wildcard_prob = wildcard_prob;
  options.descendant_prob = descendant_prob;
  Rates rates;
  for (int i = 0; i < count; ++i) {
    Pattern p = RandomPattern(rng, options);
    bool nf = IsInNormalFormNfStar(p);
    bool gnf = IsInGeneralizedNormalForm(p);
    if (nf && !gnf) {
      std::printf("C8 INCLUSION VIOLATION (NF but not GNF)!\n");
      std::abort();
    }
    rates.nf += nf ? 1 : 0;
    rates.gnf += gnf ? 1 : 0;
    ++rates.total;
  }
  return rates;
}

void PrintCoverageTable() {
  std::printf("%-44s %8s %8s %8s\n", "pattern population (600 samples each)",
              "NF/*", "GNF/*", "gap");
  struct Row {
    const char* name;
    double wildcard, descendant;
    int branches;
  } rows[] = {
      {"mild (*=0.2, //=0.2, <=2 branches)", 0.2, 0.2, 2},
      {"wildcard-heavy (*=0.6, //=0.3, <=2 branches)", 0.6, 0.3, 2},
      {"descendant-heavy (*=0.3, //=0.6, <=2 branches)", 0.3, 0.6, 2},
      {"branchy (*=0.4, //=0.4, <=4 branches)", 0.4, 0.4, 4},
      {"adversarial (*=0.7, //=0.7, <=4 branches)", 0.7, 0.7, 4},
  };
  for (const Row& row : rows) {
    Rates r = MeasureRates(row.wildcard, row.descendant, row.branches, 600,
                           42);
    std::printf("%-44s %7.1f%% %7.1f%% %+7.1f%%\n", row.name,
                100.0 * r.nf / r.total, 100.0 * r.gnf / r.total,
                100.0 * (r.gnf - r.nf) / r.total);
  }
  std::printf("\n");
}

void BM_NfMembership(benchmark::State& state) {
  Rng rng(7);
  PatternGenOptions options;
  options.max_depth = 6;
  options.max_branches = 4;
  std::vector<Pattern> pool;
  for (int i = 0; i < 128; ++i) pool.push_back(RandomPattern(rng, options));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsInNormalFormNfStar(pool[i++ % pool.size()]));
  }
}
BENCHMARK(BM_NfMembership);

void BM_GnfMembership(benchmark::State& state) {
  Rng rng(7);
  PatternGenOptions options;
  options.max_depth = 6;
  options.max_branches = 4;
  std::vector<Pattern> pool;
  for (int i = 0; i < 128; ++i) pool.push_back(RandomPattern(rng, options));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsInGeneralizedNormalForm(pool[i++ % pool.size()]));
  }
}
BENCHMARK(BM_GnfMembership);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C8", "GNF/* vs NF/* coverage ablation (Section 6)",
      "Claim: GNF/* strictly generalizes NF/* and covers many more "
      "patterns, because it constrains only the selection path.");
  xpv::PrintCoverageTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
