// Experiment F2 (Figure 2, Section 4): natural rewriting candidates.
//
// Verifies the figure's central claim — P≥1 ∘ V ≢ P while P≥1_r// ∘ V ≡ P
// — and measures the full two-candidate decision procedure on the Figure-2
// family as the query deepens.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"
#include "rewrite/engine.h"

namespace xpv {
namespace {

void VerifyFigureTwo() {
  Pattern v = MustParseXPath("a[e]/*");
  Pattern p = MustParseXPath("a[e]//*/b[d]");
  NaturalCandidates c = MakeNaturalCandidates(p, 1);
  bool sub_is_rewriting = Equivalent(Compose(c.sub, v), p);
  bool relaxed_is_rewriting = Equivalent(Compose(c.relaxed, v), p);
  std::printf("F2 check: P>=1 = %s       -> rewriting? %s (paper: no)\n",
              ToXPath(c.sub).c_str(), sub_is_rewriting ? "yes" : "no");
  std::printf("F2 check: P>=1_r// = %s  -> rewriting? %s (paper: yes)\n",
              ToXPath(c.relaxed).c_str(),
              relaxed_is_rewriting ? "yes" : "no");
  if (sub_is_rewriting || !relaxed_is_rewriting) std::abort();
}

std::string FigureTwoQuery(int depth) {
  std::string expr = "a[e]//*";
  for (int i = 1; i < depth; ++i) expr += "/*";
  expr += "/b[d]";
  return expr;
}

/// Full engine decision on the Figure-2 family: two candidate tests, the
/// second one succeeding.
void BM_Fig2EngineDecision(benchmark::State& state) {
  Pattern p = MustParseXPath(FigureTwoQuery(static_cast<int>(state.range(0))));
  Pattern v = MustParseXPath("a[e]/*");
  for (auto _ : state) {
    RewriteResult result = DecideRewrite(p, v);
    if (result.status != RewriteStatus::kFound) std::abort();
    benchmark::DoNotOptimize(result.rewriting.size());
  }
}
BENCHMARK(BM_Fig2EngineDecision)->DenseRange(1, 5);

/// Candidate construction alone (the linear-time part).
void BM_Fig2CandidateConstruction(benchmark::State& state) {
  Pattern p = MustParseXPath(FigureTwoQuery(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    NaturalCandidates c = MakeNaturalCandidates(p, 1);
    benchmark::DoNotOptimize(c.sub.size());
    benchmark::DoNotOptimize(c.relaxed.size());
  }
}
BENCHMARK(BM_Fig2CandidateConstruction)->DenseRange(1, 5);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "F2", "Figure 2 (natural candidates and their compositions)",
      "Claim: P>=1 is not a rewriting but its root-relaxation P>=1_r// is; "
      "the engine finds it with two equivalence tests.");
  xpv::VerifyFigureTwo();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
