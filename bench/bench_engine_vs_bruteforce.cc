// Experiments C3 & C7 (Section 4 vs Proposition 3.4): the paper's central
// practical claim — under the completeness conditions, rewriting-existence
// is decided by *two containment tests* over linear-time candidates,
// whereas the generic decision procedure (Prop 3.4) enumerates a space of
// candidate patterns that grows explosively.
//
// Expected shape: the candidate engine's cost is flat in the brute-force
// budget and orders of magnitude below enumeration; enumeration counts
// grow combinatorially with the node bound.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "pattern/algebra.h"
#include "pattern/xpath_parser.h"
#include "rewrite/bruteforce.h"
#include "rewrite/engine.h"

namespace xpv {
namespace {

/// The Figure-2 family instance: candidates decide it with two tests; the
/// rewriting (*//b[d]) has 3 nodes, so brute force must enumerate a fair
/// chunk of the <=3-node pattern space to find it.
Pattern Query() { return MustParseXPath("a[e]//*/b[d]"); }
Pattern View() { return MustParseXPath("a[e]/*"); }

void BM_CandidateEngine(benchmark::State& state) {
  Pattern p = Query(), v = View();
  for (auto _ : state) {
    RewriteResult result = DecideRewrite(p, v);
    if (result.status != RewriteStatus::kFound) std::abort();
    benchmark::DoNotOptimize(result.stats.equivalence_tests);
  }
}
BENCHMARK(BM_CandidateEngine);

void BM_BruteForce(benchmark::State& state) {
  Pattern p = Query(), v = View();
  BruteForceOptions options;
  options.max_nodes = static_cast<int>(state.range(0));
  options.budget = 1000000;
  uint64_t tested = 0;
  for (auto _ : state) {
    BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
    tested = outcome.candidates_tested;
    benchmark::DoNotOptimize(outcome.found.has_value());
  }
  state.counters["candidates_tested"] = static_cast<double>(tested);
  state.counters["max_nodes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BruteForce)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

/// Enumeration-space growth (C7): candidates visited when no rewriting
/// exists, as the node bound grows (the decidability construction's cost).
void BM_BruteForceExhaustion(benchmark::State& state) {
  Pattern p = MustParseXPath("a/b");
  Pattern v = MustParseXPath("a/b[x]");  // No rewriting exists.
  BruteForceOptions options;
  options.max_nodes = static_cast<int>(state.range(0));
  options.budget = 1000000;
  uint64_t tested = 0;
  for (auto _ : state) {
    BruteForceOutcome outcome = BruteForceRewrite(p, v, options);
    if (outcome.found.has_value()) std::abort();
    tested = outcome.candidates_tested;
  }
  state.counters["candidates_tested"] = static_cast<double>(tested);
}
BENCHMARK(BM_BruteForceExhaustion)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C3/C7", "two-containment-test engine vs Prop 3.4 enumeration",
      "Claim: the natural-candidate algorithm decides with 2 equivalence "
      "tests; generic enumeration grows combinatorially with the bound.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
