// Experiment C2 (Section 2.2, after [14]): containment complexity.
//
// The paper rests on containment being coNP-complete for XP^{//,[],*} and
// PTIME (homomorphism) on the sub-fragments. This bench shows the shape:
//   * the homomorphism test scales polynomially with pattern size;
//   * the canonical-model test grows exponentially with the number of
//     descendant edges (the model count is bound^(#desc edges));
//   * the expansion bound grows with the star-chain length of the RHS.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "pattern/properties.h"
#include "pattern/xpath_parser.h"

namespace xpv {
namespace {

/// A no-wildcard branchy pattern (homomorphism fragment) of given size.
Pattern HomPattern(int branches) {
  Pattern p(L("a"));
  NodeId spine = p.AddChild(p.root(), L("b"), EdgeType::kDescendant);
  for (int i = 0; i < branches; ++i) {
    NodeId br = p.AddChild(spine, L("c"), EdgeType::kChild);
    p.AddChild(br, L("d"), EdgeType::kDescendant);
  }
  NodeId out = p.AddChild(spine, L("z"), EdgeType::kChild);
  p.set_output(out);
  return p;
}

void BM_HomomorphismTest(benchmark::State& state) {
  Pattern p1 = HomPattern(static_cast<int>(state.range(0)));
  Pattern p2 = HomPattern(static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    bool hom = ExistsPatternHomomorphism(p2, p1);
    benchmark::DoNotOptimize(hom);
  }
  state.SetComplexityN(p1.size());
}
BENCHMARK(BM_HomomorphismTest)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity();

/// Canonical-model containment where the fast path cannot fire: cost is
/// exponential in the number of descendant edges of the LHS.
void BM_CanonicalModelTest_DescEdges(benchmark::State& state) {
  const int desc_edges = static_cast<int>(state.range(0));
  // P1 = a//*[q]//*[q]...//b with `desc_edges` descendant hops; P2 is the
  // all-wildcard variant, so containment holds but rarely via homomorphism.
  std::string p1 = "a";
  std::string p2 = "a";
  for (int i = 0; i < desc_edges - 1; ++i) {
    p1 += "//*[q]";
    p2 += "//*";
  }
  p1 += "//b";
  p2 += "//*";
  ContainmentOptions no_hom;
  no_hom.use_homomorphism_fast_path = false;
  Pattern lhs = MustParseXPath(p1);
  Pattern rhs = MustParseXPath(p2);
  uint64_t models = 0;
  for (auto _ : state) {
    ContainmentStats stats;
    bool contained = Contained(lhs, rhs, nullptr, &stats, no_hom);
    benchmark::DoNotOptimize(contained);
    models = stats.models_checked;
  }
  state.counters["desc_edges"] = desc_edges;
  state.counters["models"] = static_cast<double>(models);
}
BENCHMARK(BM_CanonicalModelTest_DescEdges)->DenseRange(1, 6);

/// Cost vs star-chain length of the RHS (drives the expansion bound).
void BM_CanonicalModelTest_StarChain(benchmark::State& state) {
  const int stars = static_cast<int>(state.range(0));
  std::string rhs_expr = "a//*";
  for (int i = 1; i < stars; ++i) rhs_expr += "/*";
  rhs_expr += "/b";
  std::string lhs_expr = "a/*";
  for (int i = 1; i < stars; ++i) lhs_expr += "/*";
  lhs_expr += "//b";
  Pattern lhs = MustParseXPath(lhs_expr);
  Pattern rhs = MustParseXPath(rhs_expr);
  ContainmentOptions no_hom;
  no_hom.use_homomorphism_fast_path = false;
  for (auto _ : state) {
    bool contained = Contained(lhs, rhs, nullptr, nullptr, no_hom);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["star_chain"] = stars;
  state.counters["bound"] = ExpansionBound(rhs);
}
BENCHMARK(BM_CanonicalModelTest_StarChain)->DenseRange(1, 6);

/// The fast path in action: equivalent no-wildcard patterns decided by
/// homomorphism vs forced canonical enumeration.
void BM_FastPathComparison(benchmark::State& state) {
  Pattern p1 = MustParseXPath("a//b[c][c/d]//e");
  Pattern p2 = MustParseXPath("a//b[c/d]//e");
  const bool use_hom = state.range(0) != 0;
  ContainmentOptions options;
  options.use_homomorphism_fast_path = use_hom;
  for (auto _ : state) {
    bool eq = Contained(p1, p2, nullptr, nullptr, options) &&
              Contained(p2, p1, nullptr, nullptr, options);
    benchmark::DoNotOptimize(eq);
  }
  state.SetLabel(use_hom ? "hom-fast-path" : "canonical-only");
}
BENCHMARK(BM_FastPathComparison)->Arg(1)->Arg(0);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C2", "containment complexity (Section 2.2, [14])",
      "Claims: homomorphism test is polynomial; the canonical-model test "
      "is exponential in #descendant-edges with base = star-chain bound.");
  xpv::benchutil::InitWithJsonOutput(argc, argv, "BENCH_containment.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
