// Experiment C5 (Section 2.4 / Prop 2.4): answering queries from
// materialized views.
//
// Verifies the end-to-end identity R(V(t)) = P(t) on generated documents,
// then measures the payoff the paper's introduction motivates: once V(t)
// is materialized, answering P through the rewriting touches only the view
// results, which is much cheaper than evaluating P over the full document
// when |V(t)| << |t|.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {
namespace {

/// A document shaped like a library catalogue: a small `lib/section/book`
/// region embedded in a large amount of unrelated content.
Tree CatalogueDoc(int noise_nodes, int books) {
  Tree doc(L("lib"));
  NodeId section = doc.AddChild(doc.root(), L("section"));
  for (int i = 0; i < books; ++i) {
    NodeId book = doc.AddChild(section, L("book"));
    NodeId title = doc.AddChild(book, L("title"));
    doc.AddChild(title, L("text"));
    doc.AddChild(book, L("author"));
  }
  // Noise: deep unrelated subtrees.
  NodeId misc = doc.AddChild(doc.root(), L("misc"));
  NodeId cur = misc;
  for (int i = 0; i < noise_nodes; ++i) {
    cur = doc.AddChild(cur, L(i % 3 == 0 ? "x" : (i % 3 == 1 ? "y" : "z")));
    if (i % 7 == 0) cur = misc;
  }
  return doc;
}

void VerifyIdentity() {
  Tree doc = CatalogueDoc(500, 50);
  Pattern v = MustParseXPath("lib/section/book");
  Pattern p = MustParseXPath("lib/section/book/title");
  MaterializedView view({"books", v}, doc);
  RewriteResult rewrite = DecideRewrite(p, v);
  if (rewrite.status != RewriteStatus::kFound) std::abort();
  std::vector<NodeId> via_view = view.Apply(rewrite.rewriting);
  std::vector<NodeId> direct = Eval(p, doc);
  if (via_view != direct) std::abort();
  std::printf("C5 check: R(V(t)) = P(t) on a %d-node document (%zu "
              "results)\n", doc.size(), direct.size());
}

void BM_DirectEvaluation(benchmark::State& state) {
  Tree doc = CatalogueDoc(static_cast<int>(state.range(0)), 64);
  Pattern p = MustParseXPath("lib/section/book/title");
  for (auto _ : state) {
    std::vector<NodeId> out = Eval(p, doc);
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["doc_nodes"] = doc.size();
}
BENCHMARK(BM_DirectEvaluation)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);

/// Answering through the materialized view: the rewriting is applied to the
/// copied view results only (a shipped-results cache), independent of the
/// noise size.
void BM_AnswerFromMaterializedCopies(benchmark::State& state) {
  Tree doc = CatalogueDoc(static_cast<int>(state.range(0)), 64);
  Pattern v = MustParseXPath("lib/section/book");
  Pattern p = MustParseXPath("lib/section/book/title");
  MaterializedView view({"books", v}, doc);
  std::vector<Tree> copies = view.MaterializeCopies();
  RewriteResult rewrite = DecideRewrite(p, v);
  if (rewrite.status != RewriteStatus::kFound) std::abort();
  const Pattern& r = rewrite.rewriting;
  for (auto _ : state) {
    size_t results = 0;
    for (const Tree& t : copies) results += Eval(r, t).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["doc_nodes"] = doc.size();
  state.counters["view_results"] = static_cast<double>(copies.size());
}
BENCHMARK(BM_AnswerFromMaterializedCopies)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);

/// Full cache pipeline including the rewrite decision per query.
void BM_CachePipeline(benchmark::State& state) {
  Tree doc = CatalogueDoc(8192, 64);
  ViewCache cache(doc);
  cache.AddView({"books", MustParseXPath("lib/section/book")});
  Pattern queries[] = {
      MustParseXPath("lib/section/book/title"),
      MustParseXPath("lib/section/book/author"),
      MustParseXPath("lib/section/book//text"),
      MustParseXPath("lib/misc/x"),  // Miss.
  };
  size_t i = 0;
  for (auto _ : state) {
    CacheAnswer answer = cache.Answer(queries[i++ % 4]);
    benchmark::DoNotOptimize(answer.outputs.size());
  }
}
BENCHMARK(BM_CachePipeline);

}  // namespace
}  // namespace xpv

int main(int argc, char** argv) {
  xpv::benchutil::PrintHeader(
      "C5", "materialized-view answering (Section 2.4, Prop 2.4)",
      "Claims: R(V(t)) = P(t); answering via the view is insensitive to "
      "document regions outside the view.");
  xpv::VerifyIdentity();
  xpv::benchutil::InitWithJsonOutput(argc, argv, "BENCH_view_cache.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
