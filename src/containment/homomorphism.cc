#include "containment/homomorphism.h"

#include <vector>

namespace xpv {

bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to) {
  if (from.IsEmpty() || to.IsEmpty()) return false;
  const size_t nf = static_cast<size_t>(from.size());
  const size_t nt = static_cast<size_t>(to.size());

  // down[q * nt + p]: the subtree of `from` rooted at q maps with q -> p,
  // respecting the output constraint. sub aggregates down over the subtree
  // of p (for descendant-edge witnesses).
  std::vector<char> down(nf * nt, 0);
  std::vector<char> sub(nf * nt, 0);

  for (NodeId q = from.size() - 1; q >= 0; --q) {
    const LabelId qlabel = from.label(q);
    char* down_row = &down[static_cast<size_t>(q) * nt];
    char* sub_row = &sub[static_cast<size_t>(q) * nt];
    for (NodeId p = to.size() - 1; p >= 0; --p) {
      bool ok = qlabel == LabelStore::kWildcard || qlabel == to.label(p);
      // Output preservation: out(from) may only map to out(to).
      if (ok && q == from.output() && p != to.output()) ok = false;
      if (ok) {
        for (NodeId c : from.children(q)) {
          const char* c_down = &down[static_cast<size_t>(c) * nt];
          const char* c_sub = &sub[static_cast<size_t>(c) * nt];
          bool found = false;
          if (from.edge(c) == EdgeType::kChild) {
            // Child edges must map to child edges.
            for (NodeId w : to.children(p)) {
              if (from.edge(c) == EdgeType::kChild &&
                  to.edge(w) == EdgeType::kChild &&
                  c_down[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          } else {
            // Descendant edges map to any downward path of >= 1 edges.
            for (NodeId w : to.children(p)) {
              if (c_sub[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
      }
      down_row[static_cast<size_t>(p)] = ok ? 1 : 0;
      char agg = down_row[static_cast<size_t>(p)];
      if (agg == 0) {
        for (NodeId w : to.children(p)) {
          if (sub_row[static_cast<size_t>(w)] != 0) {
            agg = 1;
            break;
          }
        }
      }
      sub_row[static_cast<size_t>(p)] = agg;
    }
  }

  return down[static_cast<size_t>(from.root()) * nt +
              static_cast<size_t>(to.root())] != 0;
}

}  // namespace xpv
