#include "containment/homomorphism.h"

#include <bit>
#include <vector>

#include "containment/bitmatrix.h"
#include "containment/pattern_masks.h"

namespace xpv {
namespace {

/// Reusable buffers: the homomorphism test runs once per containment call
/// (it is the PTIME fast path), so its setup cost must stay allocation-free.
/// The label/edge masks live in the shared `PatternMasks`; only the DP rows
/// and gather rows are local to this kernel.
struct HomScratch {
  PatternMasks masks;
  std::vector<BitWord> down;  // to.size() rows x words.
  std::vector<BitWord> sub;
  std::vector<BitWord> child_or;  // 1 x words.
  std::vector<BitWord> sub_or;

  void Ensure(std::vector<BitWord>& v, size_t words) {
    if (v.size() < words) v.resize(words);
  }
};

HomScratch& Scratch() {
  static thread_local HomScratch scratch;
  return scratch;
}

/// Single-word kernel: every bit-row over `from` fits one BitWord, so the
/// child-witness join is one OR per child of p and the per-candidate check
/// two AND-compares — no inner word loops.
bool HomSingleWord(const Pattern& from, const Pattern& to, HomScratch& s) {
  const size_t nt = static_cast<size_t>(to.size());
  s.Ensure(s.down, nt);
  s.Ensure(s.sub, nt);
  const BitWord out_bit = BitWord{1} << from.output();

  for (NodeId p = to.size() - 1; p >= 0; --p) {
    BitWord child_or = 0;
    BitWord sub_or = 0;
    for (NodeId w : to.children(p)) {
      if (to.edge(w) == EdgeType::kChild) {
        child_or |= s.down[static_cast<size_t>(w)];
      }
      sub_or |= s.sub[static_cast<size_t>(w)];
    }
    BitWord res = *s.masks.CandidateRow(to.label(p));
    // Leaves of `from` have no witness requirements; only candidates with
    // children need the subset tests.
    BitWord pending = res & s.masks.has_req()[0];
    while (pending != 0) {
      const int q = std::countr_zero(pending);
      pending &= pending - 1;
      const BitWord nc = *s.masks.need_child(static_cast<NodeId>(q));
      const BitWord nd = *s.masks.need_desc(static_cast<NodeId>(q));
      if ((child_or & nc) != nc || (sub_or & nd) != nd) {
        res &= ~(BitWord{1} << q);
      }
    }
    if (p != to.output()) res &= ~out_bit;
    s.down[static_cast<size_t>(p)] = res;
    s.sub[static_cast<size_t>(p)] = res | sub_or;
  }
  return (s.down[static_cast<size_t>(to.root())] >> from.root()) & 1;
}

/// General multi-word kernel, same recurrences.
bool HomMultiWord(const Pattern& from, const Pattern& to, HomScratch& s,
                  int words) {
  const size_t rows = static_cast<size_t>(to.size()) * words;
  s.Ensure(s.down, rows);
  s.Ensure(s.sub, rows);
  s.Ensure(s.child_or, static_cast<size_t>(words));
  s.Ensure(s.sub_or, static_cast<size_t>(words));

  for (NodeId p = to.size() - 1; p >= 0; --p) {
    ZeroRow(s.child_or.data(), words);
    ZeroRow(s.sub_or.data(), words);
    for (NodeId w : to.children(p)) {
      if (to.edge(w) == EdgeType::kChild) {
        OrRow(s.child_or.data(), s.down.data() + static_cast<size_t>(w) * words,
              words);
      }
      OrRow(s.sub_or.data(), s.sub.data() + static_cast<size_t>(w) * words,
            words);
    }
    BitWord* down_row = s.down.data() + static_cast<size_t>(p) * words;
    const BitWord* cand = s.masks.CandidateRow(to.label(p));
    std::copy(cand, cand + words, down_row);
    for (int wi = 0; wi < words; ++wi) {
      BitWord pending = down_row[wi] & s.masks.has_req()[wi];
      while (pending != 0) {
        const int b = std::countr_zero(pending);
        pending &= pending - 1;
        const NodeId q = static_cast<NodeId>(wi * kBitWordBits + b);
        if (!ContainsAllBits(s.child_or.data(), s.masks.need_child(q), words) ||
            !ContainsAllBits(s.sub_or.data(), s.masks.need_desc(q), words)) {
          down_row[wi] &= ~(BitWord{1} << b);
        }
      }
    }
    if (p != to.output()) ClearBit(down_row, from.output());
    BitWord* sub_row = s.sub.data() + static_cast<size_t>(p) * words;
    for (int wi = 0; wi < words; ++wi) {
      sub_row[wi] = down_row[wi] | s.sub_or[wi];
    }
  }
  return TestBit(s.down.data() + static_cast<size_t>(to.root()) * words,
                 from.root());
}

}  // namespace

bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to) {
  if (from.IsEmpty() || to.IsEmpty()) return false;
  // Transposed bit-parallel DP, one bit-row per node p of `to`, one bit per
  // node q of `from`:
  //   down(q,p) = the subtree of `from` rooted at q maps with q -> p,
  //               respecting edge kinds and the output constraint;
  //   sub(q,p)  = down(q,w) for some w in the subtree of p.
  // Child edges of `from` must land on child edges of `to` (so child_or
  // accumulates only child-edge children of p); descendant edges may
  // traverse any downward path of >= 1 edges (sub_or over all children).
  HomScratch& s = Scratch();
  s.masks.Build(from);
  const int words = s.masks.words();
  return words == 1 ? HomSingleWord(from, to, s)
                    : HomMultiWord(from, to, s, words);
}

}  // namespace xpv
