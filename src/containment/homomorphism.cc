#include "containment/homomorphism.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "containment/bitmatrix.h"

namespace xpv {
namespace {

/// Reusable buffers: the homomorphism test runs once per containment call
/// (it is the PTIME fast path), so its setup cost must stay allocation-free.
struct HomScratch {
  std::vector<BitWord> down;        // to.size() rows x words.
  std::vector<BitWord> sub;
  std::vector<BitWord> need_child;  // from.size() rows x words.
  std::vector<BitWord> need_desc;
  std::vector<BitWord> wildcard;    // 1 x words.
  std::vector<BitWord> has_req;     // 1 x words: nodes with any children.
  std::vector<BitWord> label_masks;
  std::vector<LabelId> labels;
  std::vector<BitWord> child_or;    // 1 x words.
  std::vector<BitWord> sub_or;

  void Ensure(std::vector<BitWord>& v, size_t words) {
    if (v.size() < words) v.resize(words);
  }
};

HomScratch& Scratch() {
  static thread_local HomScratch scratch;
  return scratch;
}

/// Builds the per-`from` masks into `s`. Returns the number of words per
/// bit-row over `from`'s nodes.
int BuildMasks(const Pattern& from, HomScratch& s) {
  const int nf = from.size();
  const int words = BitWordsFor(nf);
  const size_t rows = static_cast<size_t>(nf) * static_cast<size_t>(words);
  s.Ensure(s.need_child, rows);
  s.Ensure(s.need_desc, rows);
  s.Ensure(s.wildcard, static_cast<size_t>(words));
  s.Ensure(s.has_req, static_cast<size_t>(words));
  std::fill_n(s.need_child.begin(), rows, 0);
  std::fill_n(s.need_desc.begin(), rows, 0);
  std::fill_n(s.wildcard.begin(), static_cast<size_t>(words), 0);
  std::fill_n(s.has_req.begin(), static_cast<size_t>(words), 0);

  s.labels.clear();
  for (NodeId q = 0; q < nf; ++q) {
    if (!from.children(q).empty()) SetBit(s.has_req.data(), q);
    for (NodeId c : from.children(q)) {
      BitWord* row = (from.edge(c) == EdgeType::kChild ? s.need_child.data()
                                                       : s.need_desc.data()) +
                     static_cast<size_t>(q) * words;
      SetBit(row, c);
    }
    const LabelId l = from.label(q);
    if (l != LabelStore::kWildcard &&
        std::find(s.labels.begin(), s.labels.end(), l) == s.labels.end()) {
      s.labels.push_back(l);
    }
  }

  const size_t mask_rows = s.labels.size() * static_cast<size_t>(words);
  s.Ensure(s.label_masks, mask_rows);
  std::fill_n(s.label_masks.begin(), mask_rows, 0);
  for (NodeId q = 0; q < nf; ++q) {
    const LabelId l = from.label(q);
    if (l == LabelStore::kWildcard) {
      SetBit(s.wildcard.data(), q);
    } else {
      const auto it = std::find(s.labels.begin(), s.labels.end(), l);
      SetBit(s.label_masks.data() +
                 static_cast<size_t>(it - s.labels.begin()) * words,
             q);
    }
  }
  for (size_t i = 0; i < s.labels.size(); ++i) {
    OrRow(s.label_masks.data() + i * words, s.wildcard.data(), words);
  }
  return words;
}

const BitWord* CandidateRow(const HomScratch& s, LabelId tree_label,
                            int words) {
  const auto it = std::find(s.labels.begin(), s.labels.end(), tree_label);
  if (it == s.labels.end()) return s.wildcard.data();
  return s.label_masks.data() +
         static_cast<size_t>(it - s.labels.begin()) * words;
}

/// Single-word kernel: every bit-row over `from` fits one BitWord, so the
/// child-witness join is one OR per child of p and the per-candidate check
/// two AND-compares — no inner word loops.
bool HomSingleWord(const Pattern& from, const Pattern& to, HomScratch& s) {
  const size_t nt = static_cast<size_t>(to.size());
  s.Ensure(s.down, nt);
  s.Ensure(s.sub, nt);
  const BitWord out_bit = BitWord{1} << from.output();

  for (NodeId p = to.size() - 1; p >= 0; --p) {
    BitWord child_or = 0;
    BitWord sub_or = 0;
    for (NodeId w : to.children(p)) {
      if (to.edge(w) == EdgeType::kChild) {
        child_or |= s.down[static_cast<size_t>(w)];
      }
      sub_or |= s.sub[static_cast<size_t>(w)];
    }
    BitWord res = *CandidateRow(s, to.label(p), 1);
    // Leaves of `from` have no witness requirements; only candidates with
    // children need the subset tests.
    BitWord pending = res & s.has_req[0];
    while (pending != 0) {
      const int q = std::countr_zero(pending);
      pending &= pending - 1;
      const BitWord nc = s.need_child[static_cast<size_t>(q)];
      const BitWord nd = s.need_desc[static_cast<size_t>(q)];
      if ((child_or & nc) != nc || (sub_or & nd) != nd) {
        res &= ~(BitWord{1} << q);
      }
    }
    if (p != to.output()) res &= ~out_bit;
    s.down[static_cast<size_t>(p)] = res;
    s.sub[static_cast<size_t>(p)] = res | sub_or;
  }
  return (s.down[static_cast<size_t>(to.root())] >> from.root()) & 1;
}

/// General multi-word kernel, same recurrences.
bool HomMultiWord(const Pattern& from, const Pattern& to, HomScratch& s,
                  int words) {
  const size_t rows = static_cast<size_t>(to.size()) * words;
  s.Ensure(s.down, rows);
  s.Ensure(s.sub, rows);
  s.Ensure(s.child_or, static_cast<size_t>(words));
  s.Ensure(s.sub_or, static_cast<size_t>(words));

  for (NodeId p = to.size() - 1; p >= 0; --p) {
    ZeroRow(s.child_or.data(), words);
    ZeroRow(s.sub_or.data(), words);
    for (NodeId w : to.children(p)) {
      if (to.edge(w) == EdgeType::kChild) {
        OrRow(s.child_or.data(), s.down.data() + static_cast<size_t>(w) * words,
              words);
      }
      OrRow(s.sub_or.data(), s.sub.data() + static_cast<size_t>(w) * words,
            words);
    }
    BitWord* down_row = s.down.data() + static_cast<size_t>(p) * words;
    const BitWord* cand = CandidateRow(s, to.label(p), words);
    std::copy(cand, cand + words, down_row);
    for (int wi = 0; wi < words; ++wi) {
      BitWord pending = down_row[wi] & s.has_req[static_cast<size_t>(wi)];
      while (pending != 0) {
        const int b = std::countr_zero(pending);
        pending &= pending - 1;
        const size_t q = static_cast<size_t>(wi) * kBitWordBits + b;
        if (!ContainsAllBits(s.child_or.data(), s.need_child.data() + q * words,
                             words) ||
            !ContainsAllBits(s.sub_or.data(), s.need_desc.data() + q * words,
                             words)) {
          down_row[wi] &= ~(BitWord{1} << b);
        }
      }
    }
    if (p != to.output()) ClearBit(down_row, from.output());
    BitWord* sub_row = s.sub.data() + static_cast<size_t>(p) * words;
    for (int wi = 0; wi < words; ++wi) {
      sub_row[wi] = down_row[wi] | s.sub_or[wi];
    }
  }
  return TestBit(s.down.data() + static_cast<size_t>(to.root()) * words,
                 from.root());
}

}  // namespace

bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to) {
  if (from.IsEmpty() || to.IsEmpty()) return false;
  // Transposed bit-parallel DP, one bit-row per node p of `to`, one bit per
  // node q of `from`:
  //   down(q,p) = the subtree of `from` rooted at q maps with q -> p,
  //               respecting edge kinds and the output constraint;
  //   sub(q,p)  = down(q,w) for some w in the subtree of p.
  // Child edges of `from` must land on child edges of `to` (so child_or
  // accumulates only child-edge children of p); descendant edges may
  // traverse any downward path of >= 1 edges (sub_or over all children).
  HomScratch& s = Scratch();
  const int words = BuildMasks(from, s);
  return words == 1 ? HomSingleWord(from, to, s)
                    : HomMultiWord(from, to, s, words);
}

}  // namespace xpv
