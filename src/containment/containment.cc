#include "containment/containment.h"

#include <algorithm>
#include <cassert>

#include "containment/homomorphism.h"
#include "pattern/canonical.h"
#include "pattern/properties.h"
#include "util/cancel.h"

namespace xpv {

int ExpansionBound(const Pattern& p2) { return StarChainLength(p2) + 2; }

void ContainmentContext::BuildSuffix(const Pattern& p1, NodeId from) {
  for (NodeId n = from; n < p1.size(); ++n) {
    tree_start_[static_cast<size_t>(n)] = model_tree_.size();
    NodeId attach = pattern_to_tree_[static_cast<size_t>(p1.parent(n))];
    for (int i = 1; i < node_len_[static_cast<size_t>(n)]; ++i) {
      attach = model_tree_.AddChild(attach, LabelStore::kBottom);
    }
    const LabelId l = p1.label(n);
    pattern_to_tree_[static_cast<size_t>(n)] = model_tree_.AddChild(
        attach, l == LabelStore::kWildcard ? LabelStore::kBottom : l);
  }
}

bool ContainmentContext::ProducesOutputOnChain(
    const Pattern& p2, const std::vector<NodeId>& selection_path,
    NodeId output, bool weak) {
  // Every root-anchored embedding of P2 with out(P2) -> output maps the
  // selection path s_0..s_d onto ancestors of `output`: s_d -> output, and
  // each s_{k-1} onto the parent (child edge) or a proper ancestor
  // (descendant edge) of s_k's image. So o ∈ P2(t) reduces to a DP along
  // output's ancestor chain — O(d * depth(output)) bit probes instead of a
  // placement sweep over the whole model. chain_/dp_* are arena storage
  // sized for the tallest possible model by CanonicalModelsPass.
  size_t len = 0;
  for (NodeId v = output; v != kNoNode; v = model_tree_.parent(v)) {
    chain_[len++] = v;
  }
  std::reverse(chain_, chain_ + len);  // chain_[0] = root.

  const NodeId s0 = selection_path[0];
  for (size_t i = 0; i < len; ++i) {
    const bool allowed = kernel_.Down(chain_[i], s0);
    dp_cur_[i] = (weak ? allowed : (i == 0 && allowed)) ? 1 : 0;
  }
  for (size_t k = 1; k < selection_path.size(); ++k) {
    const NodeId sk = selection_path[k];
    if (p2.edge(sk) == EdgeType::kChild) {
      for (size_t i = len; i-- > 1;) {
        dp_next_[i] =
            (dp_cur_[i - 1] != 0 && kernel_.Down(chain_[i], sk)) ? 1 : 0;
      }
      dp_next_[0] = 0;
    } else {
      bool any_above = false;
      for (size_t i = 0; i < len; ++i) {
        dp_next_[i] = (any_above && kernel_.Down(chain_[i], sk)) ? 1 : 0;
        any_above = any_above || dp_cur_[i] != 0;
      }
    }
    std::swap(dp_cur_, dp_next_);
  }
  return dp_cur_[len - 1] != 0;
}

bool ContainmentContext::CanonicalModelsPass(const Pattern& p1,
                                             const Pattern& p2, bool weak,
                                             ContainmentWitness* witness,
                                             ContainmentStats* stats) {
  const int bound = ExpansionBound(p2);
  const int np = p1.size();

  // All enumeration state for this pass comes from the context arena; the
  // capacities are fixed up front (max_rows bounds both the model size and
  // its height), so nothing reallocates while the odometer runs.
  const int max_rows = np + (np - 1) * (bound - 1);
  arena_.Reset();
  desc_targets_ = arena_.AllocateArray<NodeId>(static_cast<size_t>(np));
  lengths_ = arena_.AllocateArray<int>(static_cast<size_t>(np));
  node_len_ = arena_.AllocateArray<int>(static_cast<size_t>(np));
  tree_start_ = arena_.AllocateArray<NodeId>(static_cast<size_t>(np));
  pattern_to_tree_ = arena_.AllocateArray<NodeId>(static_cast<size_t>(np));
  dirty_mark_ = arena_.AllocateArray<char>(static_cast<size_t>(max_rows));
  chain_ = arena_.AllocateArray<NodeId>(static_cast<size_t>(max_rows));
  dp_cur_ = arena_.AllocateArray<char>(static_cast<size_t>(max_rows));
  dp_next_ = arena_.AllocateArray<char>(static_cast<size_t>(max_rows));

  int m = 0;
  for (NodeId n = 1; n < np; ++n) {
    if (p1.edge(n) == EdgeType::kDescendant) desc_targets_[m++] = n;
  }
  std::fill_n(lengths_, static_cast<size_t>(m), 1);
  std::fill_n(node_len_, static_cast<size_t>(np), 1);
  std::fill_n(tree_start_, static_cast<size_t>(np), 0);
  std::fill_n(pattern_to_tree_, static_cast<size_t>(np), 0);

  // Initial model: all expansions length 1 (the τ-transformation).
  model_tree_.TruncateTo(1);
  {
    const LabelId l = p1.label(p1.root());
    model_tree_.set_label(model_tree_.root(),
                          l == LabelStore::kWildcard ? LabelStore::kBottom : l);
  }
  BuildSuffix(p1, 1);

  SelectionInfo p2_info(p2);
  const std::vector<NodeId>& path = p2_info.path();
  kernel_.Compute(p2, model_tree_, np + m * (bound - 1));

  // The odometer is the engine's only super-polynomial loop (bound^m
  // models), so it is the one place a deadline MUST be able to interrupt:
  // the amortized check below polls the caller's installed CancelToken
  // every kStride models and unwinds with CancelledError on expiry.
  CancelCheck cancel_check;
  while (true) {
    cancel_check.Tick();
    if (stats != nullptr) ++stats->models_checked;
    const NodeId output = pattern_to_tree_[static_cast<size_t>(p1.output())];
    if (!ProducesOutputOnChain(p2, path, output, weak)) {
      if (witness != nullptr) {
        *witness = ContainmentWitness{model_tree_, output};
      }
      return false;
    }

    // Advance the odometer. The *last* descendant edge (largest pattern id)
    // is the fastest digit, so consecutive models share all tree nodes
    // built for pattern ids below the changed target — the shared prefix
    // the incremental kernel update relies on.
    int j = m - 1;
    while (j >= 0 && lengths_[static_cast<size_t>(j)] == bound) {
      lengths_[static_cast<size_t>(j)] = 1;
      --j;
    }
    if (j < 0) return true;  // All models checked.
    ++lengths_[static_cast<size_t>(j)];
    for (int i = j; i < m; ++i) {
      node_len_[static_cast<size_t>(desc_targets_[static_cast<size_t>(i)])] =
          lengths_[static_cast<size_t>(i)];
    }

    // Rebuild the tree suffix for pattern nodes >= the changed target.
    const NodeId rebuild_from = desc_targets_[static_cast<size_t>(j)];
    const NodeId suffix_start = tree_start_[static_cast<size_t>(rebuild_from)];
    model_tree_.TruncateTo(suffix_start);
    BuildSuffix(p1, rebuild_from);

    // Surviving rows whose subtrees changed: the ancestors of every splice
    // point (tree parents of rebuilt pattern nodes that lie in the kept
    // prefix). Everything else below `suffix_start` is untouched.
    std::fill_n(dirty_mark_, static_cast<size_t>(suffix_start), 0);
    dirty_prefix_.clear();
    for (NodeId n = rebuild_from; n < np; ++n) {
      if (p1.parent(n) >= rebuild_from) continue;
      NodeId a = pattern_to_tree_[static_cast<size_t>(p1.parent(n))];
      while (a != kNoNode && dirty_mark_[static_cast<size_t>(a)] == 0) {
        dirty_mark_[static_cast<size_t>(a)] = 1;
        dirty_prefix_.push_back(a);
        a = model_tree_.parent(a);
      }
    }
    std::sort(dirty_prefix_.begin(), dirty_prefix_.end(),
              std::greater<NodeId>());
    kernel_.Update(model_tree_, suffix_start, dirty_prefix_);
  }
}

bool ContainmentContext::Contained(const Pattern& p1, const Pattern& p2,
                                   ContainmentWitness* witness,
                                   ContainmentStats* stats,
                                   const ContainmentOptions& options) {
  // Υ ⊑ anything; P ⊑ Υ only for P = Υ.
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) {
    if (witness != nullptr) {
      CanonicalModel tau = Tau(p1);
      *witness = ContainmentWitness{tau.tree, tau.output};
    }
    return false;
  }
  if (options.use_homomorphism_fast_path &&
      ExistsPatternHomomorphism(p2, p1)) {
    if (stats != nullptr) stats->homomorphism_hit = true;
    return true;
  }
  return CanonicalModelsPass(p1, p2, /*weak=*/false, witness, stats);
}

bool ContainmentContext::Equivalent(const Pattern& p1, const Pattern& p2,
                                    ContainmentStats* stats,
                                    const ContainmentOptions& options) {
  return Contained(p1, p2, nullptr, stats, options) &&
         Contained(p2, p1, nullptr, stats, options);
}

bool ContainmentContext::WeaklyContained(const Pattern& p1, const Pattern& p2,
                                         ContainmentWitness* witness,
                                         ContainmentStats* stats) {
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) {
    if (witness != nullptr) {
      CanonicalModel tau = Tau(p1);
      *witness = ContainmentWitness{tau.tree, tau.output};
    }
    return false;
  }
  // Containment implies weak containment only pointwise per embedding; the
  // homomorphism fast path remains sound here: a homomorphism h : P2 -> P1
  // turns any weak embedding e of P1 into the weak embedding e∘h of P2 with
  // the same output (h preserves the root and output, and weak embeddings
  // compose with homomorphisms).
  if (ExistsPatternHomomorphism(p2, p1)) {
    if (stats != nullptr) stats->homomorphism_hit = true;
    return true;
  }
  return CanonicalModelsPass(p1, p2, /*weak=*/true, witness, stats);
}

bool ContainmentContext::WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                                          ContainmentStats* stats) {
  return WeaklyContained(p1, p2, nullptr, stats) &&
         WeaklyContained(p2, p1, nullptr, stats);
}

namespace {

// The free functions share one context per thread: containment never calls
// itself recursively, so the scratch buffers (and their warmth) can be
// reused by every caller without threading a context around.
ContainmentContext& ThreadContext() {
  static thread_local ContainmentContext context;
  return context;
}

}  // namespace

bool Contained(const Pattern& p1, const Pattern& p2,
               ContainmentWitness* witness, ContainmentStats* stats,
               const ContainmentOptions& options) {
  return ThreadContext().Contained(p1, p2, witness, stats, options);
}

bool Equivalent(const Pattern& p1, const Pattern& p2, ContainmentStats* stats,
                const ContainmentOptions& options) {
  return ThreadContext().Equivalent(p1, p2, stats, options);
}

bool WeaklyContained(const Pattern& p1, const Pattern& p2,
                     ContainmentWitness* witness, ContainmentStats* stats) {
  return ThreadContext().WeaklyContained(p1, p2, witness, stats);
}

bool WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                      ContainmentStats* stats) {
  return ThreadContext().WeaklyEquivalent(p1, p2, stats);
}

}  // namespace xpv
