#include "containment/containment.h"

#include "containment/homomorphism.h"
#include "eval/evaluator.h"
#include "pattern/canonical.h"
#include "pattern/properties.h"

namespace xpv {
namespace {

/// Shared core of the strong and weak tests: checks that for every bounded
/// canonical model of p1, the canonical output is (weakly) produced by p2.
bool CanonicalModelsPass(const Pattern& p1, const Pattern& p2, bool weak,
                         ContainmentWitness* witness,
                         ContainmentStats* stats) {
  const int bound = ExpansionBound(p2);
  CanonicalModelEnumerator en(p1, bound);
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  while (en.Next(&model)) {
    if (stats != nullptr) ++stats->models_checked;
    const bool produced =
        weak ? WeaklyProducesOutput(p2, model.tree, model.output)
             : ProducesOutput(p2, model.tree, model.output);
    if (!produced) {
      if (witness != nullptr) {
        *witness = ContainmentWitness{model.tree, model.output};
      }
      return false;
    }
  }
  return true;
}

}  // namespace

int ExpansionBound(const Pattern& p2) { return StarChainLength(p2) + 2; }

bool Contained(const Pattern& p1, const Pattern& p2,
               ContainmentWitness* witness, ContainmentStats* stats,
               const ContainmentOptions& options) {
  // Υ ⊑ anything; P ⊑ Υ only for P = Υ.
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) {
    if (witness != nullptr) {
      CanonicalModel tau = Tau(p1);
      *witness = ContainmentWitness{tau.tree, tau.output};
    }
    return false;
  }
  if (options.use_homomorphism_fast_path &&
      ExistsPatternHomomorphism(p2, p1)) {
    if (stats != nullptr) stats->homomorphism_hit = true;
    return true;
  }
  return CanonicalModelsPass(p1, p2, /*weak=*/false, witness, stats);
}

bool Equivalent(const Pattern& p1, const Pattern& p2, ContainmentStats* stats,
                const ContainmentOptions& options) {
  return Contained(p1, p2, nullptr, stats, options) &&
         Contained(p2, p1, nullptr, stats, options);
}

bool WeaklyContained(const Pattern& p1, const Pattern& p2,
                     ContainmentWitness* witness, ContainmentStats* stats) {
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) {
    if (witness != nullptr) {
      CanonicalModel tau = Tau(p1);
      *witness = ContainmentWitness{tau.tree, tau.output};
    }
    return false;
  }
  // Containment implies weak containment only pointwise per embedding; the
  // homomorphism fast path remains sound here: a homomorphism h : P2 -> P1
  // turns any weak embedding e of P1 into the weak embedding e∘h of P2 with
  // the same output (h preserves the root and output, and weak embeddings
  // compose with homomorphisms).
  if (ExistsPatternHomomorphism(p2, p1)) {
    if (stats != nullptr) stats->homomorphism_hit = true;
    return true;
  }
  return CanonicalModelsPass(p1, p2, /*weak=*/true, witness, stats);
}

bool WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                      ContainmentStats* stats) {
  return WeaklyContained(p1, p2, nullptr, stats) &&
         WeaklyContained(p2, p1, nullptr, stats);
}

}  // namespace xpv
