#ifndef XPV_CONTAINMENT_BITMATRIX_H_
#define XPV_CONTAINMENT_BITMATRIX_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace xpv {

/// One machine word of a bit-row.
using BitWord = uint64_t;

inline constexpr int kBitWordBits = 64;

/// Number of words needed for `bits` columns.
inline int BitWordsFor(int bits) {
  return (bits + kBitWordBits - 1) / kBitWordBits;
}

inline bool TestBit(const BitWord* row, int i) {
  return (row[i / kBitWordBits] >> (i % kBitWordBits)) & 1u;
}

inline void SetBit(BitWord* row, int i) {
  row[i / kBitWordBits] |= BitWord{1} << (i % kBitWordBits);
}

inline void ClearBit(BitWord* row, int i) {
  row[i / kBitWordBits] &= ~(BitWord{1} << (i % kBitWordBits));
}

/// dst |= src, word-wise.
inline void OrRow(BitWord* dst, const BitWord* src, int words) {
  for (int i = 0; i < words; ++i) dst[i] |= src[i];
}

/// dst &= src, word-wise.
inline void AndRow(BitWord* dst, const BitWord* src, int words) {
  for (int i = 0; i < words; ++i) dst[i] &= src[i];
}

inline void ZeroRow(BitWord* dst, int words) {
  std::memset(dst, 0, static_cast<size_t>(words) * sizeof(BitWord));
}

/// (row & required) == required: every required bit is present in `row`.
inline bool ContainsAllBits(const BitWord* row, const BitWord* required,
                            int words) {
  for (int i = 0; i < words; ++i) {
    if ((row[i] & required[i]) != required[i]) return false;
  }
  return true;
}

inline bool AnyBit(const BitWord* row, int words) {
  for (int i = 0; i < words; ++i) {
    if (row[i] != 0) return true;
  }
  return false;
}

/// A dense boolean matrix stored as 64-bit words, row-major. Rows are
/// word-aligned so row operations (OR/AND/subset tests) sweep whole words —
/// this is the storage behind the bit-parallel embedding kernel, which
/// packs one DP row per *tree* node with one bit per *pattern* node.
///
/// `Reset` reuses the underlying buffer: growing within previously used
/// capacity performs no allocation, which the canonical-model enumeration
/// loop relies on (one matrix serves hundreds of models).
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Shapes the matrix to `rows` x `cols` bits and zeroes it. Keeps the
  /// underlying allocation when capacity suffices.
  void Reset(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = BitWordsFor(cols);
    const size_t need =
        static_cast<size_t>(rows) * static_cast<size_t>(words_per_row_);
    if (words_.size() < need) words_.resize(need);
    std::memset(words_.data(), 0, need * sizeof(BitWord));
  }

  /// Shapes the matrix without zeroing. Rows carry garbage until written;
  /// callers must write every row they later read (the anchored evaluation
  /// path computes exactly the rows it consults, skipping the full-matrix
  /// memset that would otherwise cost O(rows) on large documents).
  void ResizeNoZero(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = BitWordsFor(cols);
    const size_t need =
        static_cast<size_t>(rows) * static_cast<size_t>(words_per_row_);
    if (words_.size() < need) words_.resize(need);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int words_per_row() const { return words_per_row_; }

  BitWord* row(int r) {
    return words_.data() + static_cast<size_t>(r) * words_per_row_;
  }
  const BitWord* row(int r) const {
    return words_.data() + static_cast<size_t>(r) * words_per_row_;
  }

  bool Test(int r, int c) const { return TestBit(row(r), c); }
  void Set(int r, int c) { SetBit(row(r), c); }
  void Clear(int r, int c) { ClearBit(row(r), c); }

  /// Zeroes row `r` only.
  void ZeroRowAt(int r) { ZeroRow(row(r), words_per_row_); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  std::vector<BitWord> words_;
};

}  // namespace xpv

#endif  // XPV_CONTAINMENT_BITMATRIX_H_
