#ifndef XPV_CONTAINMENT_BITMATRIX_H_
#define XPV_CONTAINMENT_BITMATRIX_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#if defined(XPV_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace xpv {

/// One machine word of a bit-row.
using BitWord = uint64_t;

inline constexpr int kBitWordBits = 64;

/// Alignment in bytes of every `BitMatrix` backing buffer (one AVX2 lane).
/// Rows keep their natural word stride — padding each row to a whole lane
/// measurably hurt narrow matrices (a one-word-row DP grew 4x in footprint
/// and fell out of L1) while buying nothing, since the wide kernels use
/// unaligned loads and only engage at >= `kRowWordAlign` logical words.
/// Wide configurations (e.g. the 256-bit packed evaluation groups) land on
/// lane-aligned rows naturally: 4-word stride from a 32-byte base.
inline constexpr size_t kRowByteAlign = 32;

/// Words per AVX2 lane (4 x 64 = 256 bits) — the wide kernels' step size.
inline constexpr int kRowWordAlign =
    static_cast<int>(kRowByteAlign / sizeof(BitWord));

/// Number of words needed for `bits` columns.
inline int BitWordsFor(int bits) {
  return (bits + kBitWordBits - 1) / kBitWordBits;
}

inline bool TestBit(const BitWord* row, int i) {
  return (row[i / kBitWordBits] >> (i % kBitWordBits)) & 1u;
}

inline void SetBit(BitWord* row, int i) {
  row[i / kBitWordBits] |= BitWord{1} << (i % kBitWordBits);
}

inline void ClearBit(BitWord* row, int i) {
  row[i / kBitWordBits] &= ~(BitWord{1} << (i % kBitWordBits));
}

// --------------------------------------------------------------------------
// Scalar row kernels. These are the portable fallback AND the reference the
// randomized property tests pin the SIMD variants against — they stay
// compiled (and callable) in every build configuration.
// --------------------------------------------------------------------------

/// dst |= src, word-wise.
inline void OrRowScalar(BitWord* dst, const BitWord* src, int words) {
  for (int i = 0; i < words; ++i) dst[i] |= src[i];
}

/// dst &= src, word-wise.
inline void AndRowScalar(BitWord* dst, const BitWord* src, int words) {
  for (int i = 0; i < words; ++i) dst[i] &= src[i];
}

/// dst = a | b, word-wise.
inline void OrRowsIntoScalar(BitWord* dst, const BitWord* a, const BitWord* b,
                             int words) {
  for (int i = 0; i < words; ++i) dst[i] = a[i] | b[i];
}

/// (row & required) == required: every required bit is present in `row`.
inline bool ContainsAllBitsScalar(const BitWord* row, const BitWord* required,
                                  int words) {
  for (int i = 0; i < words; ++i) {
    if ((row[i] & required[i]) != required[i]) return false;
  }
  return true;
}

inline bool AnyBitScalar(const BitWord* row, int words) {
  for (int i = 0; i < words; ++i) {
    if (row[i] != 0) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Wide row kernels. Under XPV_SIMD=avx2 each iteration processes one
// 256-bit lane (4 words) with a scalar tail for the remainder, so callers
// may pass any word count and unaligned rows (loads/stores are unaligned;
// BitMatrix alignment only improves their throughput). With XPV_SIMD=off
// the public names are the scalar kernels directly.
//
// AVX2 codegen is scoped to the *Wide bodies via the `target("avx2")`
// attribute instead of a TU-wide -mavx2 flag: letting the compiler emit
// 256-bit code everywhere measurably regressed copy-heavy non-kernel code
// (the serving fan-out slowed ~2x), while the attribute confines VEX
// encoding to the kernels and gets a vzeroupper on every exit, so the
// surrounding SSE code never pays a transition penalty. The flip side of
// the attribute is that these bodies can never be inlined into
// default-target callers — a real call per row op, ruinous for one-word
// rows (a small pattern's whole DP row), where the 256-bit loop would not
// even run. The public entry points therefore dispatch on width: narrow
// rows take the always-inlinable scalar loop, and only rows with at least
// one full lane pay the call and get 256-bit codegen.
// --------------------------------------------------------------------------

#if defined(XPV_SIMD_AVX2)

#define XPV_TARGET_AVX2 __attribute__((target("avx2")))

XPV_TARGET_AVX2 inline void OrRowWide(BitWord* dst, const BitWord* src,
                                  int words) {
  int i = 0;
  for (; i + kRowWordAlign <= words; i += kRowWordAlign) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

XPV_TARGET_AVX2 inline void AndRowWide(BitWord* dst, const BitWord* src,
                                   int words) {
  int i = 0;
  for (; i + kRowWordAlign <= words; i += kRowWordAlign) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < words; ++i) dst[i] &= src[i];
}

XPV_TARGET_AVX2 inline void OrRowsIntoWide(BitWord* dst, const BitWord* a,
                                       const BitWord* b, int words) {
  int i = 0;
  for (; i + kRowWordAlign <= words; i += kRowWordAlign) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < words; ++i) dst[i] = a[i] | b[i];
}

XPV_TARGET_AVX2 inline bool ContainsAllBitsWide(const BitWord* row,
                                            const BitWord* required,
                                            int words) {
  int i = 0;
  for (; i + kRowWordAlign <= words; i += kRowWordAlign) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i q =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(required + i));
    // testc(r, q) == 1 iff (~r & q) == 0, i.e. required ⊆ row.
    if (!_mm256_testc_si256(r, q)) return false;
  }
  for (; i < words; ++i) {
    if ((row[i] & required[i]) != required[i]) return false;
  }
  return true;
}

XPV_TARGET_AVX2 inline bool AnyBitWide(const BitWord* row, int words) {
  int i = 0;
  for (; i + kRowWordAlign <= words; i += kRowWordAlign) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    if (!_mm256_testz_si256(r, r)) return true;
  }
  for (; i < words; ++i) {
    if (row[i] != 0) return true;
  }
  return false;
}

inline void OrRow(BitWord* dst, const BitWord* src, int words) {
  if (words >= kRowWordAlign) return OrRowWide(dst, src, words);
  OrRowScalar(dst, src, words);
}

inline void AndRow(BitWord* dst, const BitWord* src, int words) {
  if (words >= kRowWordAlign) return AndRowWide(dst, src, words);
  AndRowScalar(dst, src, words);
}

inline void OrRowsInto(BitWord* dst, const BitWord* a, const BitWord* b,
                       int words) {
  if (words >= kRowWordAlign) return OrRowsIntoWide(dst, a, b, words);
  OrRowsIntoScalar(dst, a, b, words);
}

inline bool ContainsAllBits(const BitWord* row, const BitWord* required,
                            int words) {
  if (words >= kRowWordAlign) return ContainsAllBitsWide(row, required, words);
  return ContainsAllBitsScalar(row, required, words);
}

inline bool AnyBit(const BitWord* row, int words) {
  if (words >= kRowWordAlign) return AnyBitWide(row, words);
  return AnyBitScalar(row, words);
}

#else  // !XPV_SIMD_AVX2

inline void OrRow(BitWord* dst, const BitWord* src, int words) {
  OrRowScalar(dst, src, words);
}

inline void AndRow(BitWord* dst, const BitWord* src, int words) {
  AndRowScalar(dst, src, words);
}

inline void OrRowsInto(BitWord* dst, const BitWord* a, const BitWord* b,
                       int words) {
  OrRowsIntoScalar(dst, a, b, words);
}

inline bool ContainsAllBits(const BitWord* row, const BitWord* required,
                            int words) {
  return ContainsAllBitsScalar(row, required, words);
}

inline bool AnyBit(const BitWord* row, int words) {
  return AnyBitScalar(row, words);
}

#endif  // XPV_SIMD_AVX2

inline void ZeroRow(BitWord* dst, int words) {
  std::memset(dst, 0, static_cast<size_t>(words) * sizeof(BitWord));
}

inline void CopyRow(BitWord* dst, const BitWord* src, int words) {
  std::memcpy(dst, src, static_cast<size_t>(words) * sizeof(BitWord));
}

/// A dense boolean matrix stored as 64-bit words, row-major. The backing
/// buffer is 32-byte aligned and rows keep their natural word stride, so
/// row operations (OR/AND/subset tests) sweep whole words — whole AVX2
/// lanes under `XPV_SIMD=avx2` once rows are >= 4 words, where the stride
/// puts every row on a lane boundary anyway. This is the storage behind
/// the bit-parallel embedding kernel, which packs one DP row per *tree*
/// node with one bit per *pattern* node.
///
/// `Reset` reuses the underlying buffer: growing within previously used
/// capacity performs no allocation, which the canonical-model enumeration
/// loop relies on (one matrix serves hundreds of models).
class BitMatrix {
 public:
  BitMatrix() = default;

  BitMatrix(BitMatrix&&) = default;
  BitMatrix& operator=(BitMatrix&&) = default;

  /// Shapes the matrix to `rows` x `cols` bits and zeroes it. Keeps the
  /// underlying allocation when capacity suffices.
  void Reset(int rows, int cols) {
    Shape(rows, cols);
    std::memset(words_.get(), 0,
                static_cast<size_t>(rows) *
                    static_cast<size_t>(words_per_row_) * sizeof(BitWord));
  }

  /// Shapes the matrix without zeroing. Rows carry garbage until written;
  /// callers must write every row they later read (the anchored evaluation
  /// path computes exactly the rows it consults, skipping the full-matrix
  /// memset that would otherwise cost O(rows) on large documents).
  void ResizeNoZero(int rows, int cols) { Shape(rows, cols); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int words_per_row() const { return words_per_row_; }

  BitWord* row(int r) {
    return words_.get() + static_cast<size_t>(r) * words_per_row_;
  }
  const BitWord* row(int r) const {
    return words_.get() + static_cast<size_t>(r) * words_per_row_;
  }

  bool Test(int r, int c) const { return TestBit(row(r), c); }
  void Set(int r, int c) { SetBit(row(r), c); }
  void Clear(int r, int c) { ClearBit(row(r), c); }

  /// Zeroes row `r` only.
  void ZeroRowAt(int r) { ZeroRow(row(r), words_per_row_); }

 private:
  struct AlignedFree {
    void operator()(BitWord* p) const {
      ::operator delete[](p, std::align_val_t{kRowByteAlign});
    }
  };

  /// Sets the shape, reallocating (content-discarding) only when the
  /// capacity is insufficient. Both `Reset` and `ResizeNoZero` overwrite
  /// or invalidate every row, so nothing needs preserving across growth.
  void Shape(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = BitWordsFor(cols);
    const size_t need =
        static_cast<size_t>(rows) * static_cast<size_t>(words_per_row_);
    if (capacity_ < need) {
      words_.reset(static_cast<BitWord*>(::operator new[](
          need * sizeof(BitWord), std::align_val_t{kRowByteAlign})));
      capacity_ = need;
    }
  }

  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  size_t capacity_ = 0;
  std::unique_ptr<BitWord[], AlignedFree> words_;
};

}  // namespace xpv

#endif  // XPV_CONTAINMENT_BITMATRIX_H_
