#ifndef XPV_CONTAINMENT_HOMOMORPHISM_H_
#define XPV_CONTAINMENT_HOMOMORPHISM_H_

#include "pattern/pattern.h"

namespace xpv {

/// Decides the existence of a *pattern homomorphism* h : `from` -> `to`:
///   * h(root(from)) = root(to) and h(out(from)) = out(to);
///   * label-preserving: every node of `from` labeled l in Σ maps to a node
///     labeled l (wildcard nodes map anywhere);
///   * child edges map to child edges;
///   * descendant edges map to paths of one or more edges (of any types).
///
/// Existence of a homomorphism from P2 to P1 implies P1 ⊑ P2 (sound), and
/// by [14] it is also complete — i.e. P1 ⊑ P2 iff such a homomorphism
/// exists — when both patterns lie in XP^{//,[]} (no wildcards) or both in
/// XP^{/,[],*} (no descendant edges). It is NOT complete on the linear
/// fragment XP^{//,*}: a/*//b ≡ a//*/b holds with no homomorphism either
/// way (that fragment's PTIME containment uses a different algorithm).
///
/// Runs in O(|from| * |to| * max-degree) time (polynomial).
[[nodiscard]] bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to);

}  // namespace xpv

#endif  // XPV_CONTAINMENT_HOMOMORPHISM_H_
