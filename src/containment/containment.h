#ifndef XPV_CONTAINMENT_CONTAINMENT_H_
#define XPV_CONTAINMENT_CONTAINMENT_H_

#include <cstdint>
#include <optional>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// A witness refuting containment P1 ⊑ P2: a tree and an output node with
/// output ∈ P1(tree) but output ∉ P2(tree) (weak semantics for the weak
/// variants). Witness trees are canonical models of P1, so they use the
/// internal ⊥ label for wildcards and expansion paths.
struct ContainmentWitness {
  Tree tree;
  NodeId output;
};

/// Counters describing how a containment call was decided; useful for the
/// benchmark harness.
struct ContainmentStats {
  /// True if the PTIME homomorphism fast path proved containment.
  bool homomorphism_hit = false;
  /// Canonical models generated and checked.
  uint64_t models_checked = 0;
};

/// Knobs for the containment tests.
struct ContainmentOptions {
  /// Try the (sound) homomorphism test first and return early on success.
  bool use_homomorphism_fast_path = true;
};

/// The expansion bound used by the canonical-model test when the
/// right-hand side is `p2`: (longest chain of consecutive *-nodes linked by
/// child edges in p2) + 2. By Miklau & Suciu [14], checking canonical
/// models whose descendant-edge expansions have length up to this bound is
/// complete for containment.
int ExpansionBound(const Pattern& p2);

/// Decides P1 ⊑ P2 (Definition 2.2) for arbitrary patterns of
/// XP^{//,[],*}. coNP-complete in general [14]; implemented as the
/// canonical-model test with the homomorphism fast path. If `witness` is
/// non-null and the answer is false, a counterexample is stored.
bool Contained(const Pattern& p1, const Pattern& p2,
               ContainmentWitness* witness = nullptr,
               ContainmentStats* stats = nullptr,
               const ContainmentOptions& options = {});

/// Decides P1 ≡ P2 (containment in both directions).
bool Equivalent(const Pattern& p1, const Pattern& p2,
                ContainmentStats* stats = nullptr,
                const ContainmentOptions& options = {});

/// Decides weak containment P1 ⊑w P2 (Definition 2.3): P1^w(t) ⊆ P2^w(t)
/// for all trees. Same canonical-model technique with weak-output checks.
bool WeaklyContained(const Pattern& p1, const Pattern& p2,
                     ContainmentWitness* witness = nullptr,
                     ContainmentStats* stats = nullptr);

/// Decides weak equivalence P1 ≡w P2.
bool WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                      ContainmentStats* stats = nullptr);

}  // namespace xpv

#endif  // XPV_CONTAINMENT_CONTAINMENT_H_
