#ifndef XPV_CONTAINMENT_CONTAINMENT_H_
#define XPV_CONTAINMENT_CONTAINMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "eval/evaluator.h"
#include "pattern/pattern.h"
#include "util/arena.h"
#include "xml/tree.h"

namespace xpv {

/// A witness refuting containment P1 ⊑ P2: a tree and an output node with
/// output ∈ P1(tree) but output ∉ P2(tree) (weak semantics for the weak
/// variants). Witness trees are canonical models of P1, so they use the
/// internal ⊥ label for wildcards and expansion paths.
struct ContainmentWitness {
  Tree tree;
  NodeId output;
};

/// Counters describing how a containment call was decided; useful for the
/// benchmark harness.
struct ContainmentStats {
  /// True if the PTIME homomorphism fast path proved containment.
  bool homomorphism_hit = false;
  /// Canonical models generated and checked.
  uint64_t models_checked = 0;
};

/// Knobs for the containment tests.
struct ContainmentOptions {
  /// Try the (sound) homomorphism test first and return early on success.
  bool use_homomorphism_fast_path = true;
};

/// The expansion bound used by the canonical-model test when the
/// right-hand side is `p2`: (longest chain of consecutive *-nodes linked by
/// child edges in p2) + 2. By Miklau & Suciu [14], checking canonical
/// models whose descendant-edge expansions have length up to this bound is
/// complete for containment.
int ExpansionBound(const Pattern& p2);

/// Reusable state for containment testing: the scratch canonical-model
/// tree, the bit-parallel embedding kernel (`EvalScratch`), and the
/// enumeration bookkeeping all live here and are reused across models and
/// across calls, so the coNP loop performs no per-model allocation.
///
/// The enumeration is *incremental*: models are ordered so that advancing
/// the expansion odometer rebuilds only a suffix of the scratch tree's
/// node ids, and only the DP rows of that suffix plus the ancestors of the
/// splice points are recomputed. Checking "does P2 produce the canonical
/// output" is a DP along the output's ancestor chain (every root-anchored
/// embedding maps the selection path onto that chain), so no full-tree
/// placement sweep runs either.
///
/// Hot-path callers may hold their own context and issue every test
/// through it; the free functions below share one thread-local context,
/// so they too amortize scratch buffers across calls (containment never
/// recurses into itself). Not thread-safe; use one context per thread.
class ContainmentContext {
 public:
  ContainmentContext() = default;

  ContainmentContext(const ContainmentContext&) = delete;
  ContainmentContext& operator=(const ContainmentContext&) = delete;

  /// Decides P1 ⊑ P2 (Definition 2.2); see `Contained` below.
  [[nodiscard]] bool Contained(const Pattern& p1, const Pattern& p2,
                               ContainmentWitness* witness = nullptr,
                 ContainmentStats* stats = nullptr,
                 const ContainmentOptions& options = {});

  /// Decides P1 ≡ P2 (containment in both directions).
  [[nodiscard]] bool Equivalent(const Pattern& p1, const Pattern& p2,
                                ContainmentStats* stats = nullptr,
                  const ContainmentOptions& options = {});

  /// Decides weak containment P1 ⊑w P2 (Definition 2.3).
  [[nodiscard]] bool WeaklyContained(const Pattern& p1, const Pattern& p2,
                                     ContainmentWitness* witness = nullptr,
                       ContainmentStats* stats = nullptr);

  /// Decides weak equivalence P1 ≡w P2.
  [[nodiscard]] bool WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                                      ContainmentStats* stats = nullptr);

 private:
  bool CanonicalModelsPass(const Pattern& p1, const Pattern& p2, bool weak,
                           ContainmentWitness* witness,
                           ContainmentStats* stats);
  /// Rebuilds the scratch tree for pattern nodes [from, p1.size()).
  void BuildSuffix(const Pattern& p1, NodeId from);
  /// o ∈ P2(model) (resp. P2^w(model)) given up-to-date kernel tables.
  bool ProducesOutputOnChain(const Pattern& p2,
                             const std::vector<NodeId>& selection_path,
                             NodeId output, bool weak);

  EvalScratch kernel_;
  Tree model_tree_{LabelStore::kBottom};

  // Enumeration state, bump-allocated from `arena_` at the start of each
  // CanonicalModelsPass with capacities fixed by (|p1|, bound): the
  // odometer and the output-chain DP touch no heap between models. The
  // arena is rewound per pass (keeping its blocks), so repeated calls on
  // one context run entirely in warm storage. The pointers below are only
  // valid within the pass that allocated them.
  Arena arena_;
  NodeId* desc_targets_ = nullptr;  // Pattern nodes entered by //-edges.
  int* lengths_ = nullptr;          // Odometer: expansion length per target.
  int* node_len_ = nullptr;         // Per-pattern-node expansion length.
  NodeId* tree_start_ = nullptr;    // First tree id built for each node.
  NodeId* pattern_to_tree_ = nullptr;
  char* dirty_mark_ = nullptr;
  // Output-chain DP scratch (capacity = max model height):
  NodeId* chain_ = nullptr;
  char* dp_cur_ = nullptr;
  char* dp_next_ = nullptr;
  // Kept as a vector: `EvalScratch::Update` takes the dirty-ancestor list
  // by vector reference (capacity is retained across models all the same).
  std::vector<NodeId> dirty_prefix_;
};

/// Decides P1 ⊑ P2 (Definition 2.2) for arbitrary patterns of
/// XP^{//,[],*}. coNP-complete in general [14]; implemented as the
/// canonical-model test with the homomorphism fast path. If `witness` is
/// non-null and the answer is false, a counterexample is stored.
[[nodiscard]] bool Contained(const Pattern& p1, const Pattern& p2,
                             ContainmentWitness* witness = nullptr,
               ContainmentStats* stats = nullptr,
               const ContainmentOptions& options = {});

/// Decides P1 ≡ P2 (containment in both directions).
[[nodiscard]] bool Equivalent(const Pattern& p1, const Pattern& p2,
                              ContainmentStats* stats = nullptr,
                const ContainmentOptions& options = {});

/// Decides weak containment P1 ⊑w P2 (Definition 2.3): P1^w(t) ⊆ P2^w(t)
/// for all trees. Same canonical-model technique with weak-output checks.
[[nodiscard]] bool WeaklyContained(const Pattern& p1, const Pattern& p2,
                                   ContainmentWitness* witness = nullptr,
                     ContainmentStats* stats = nullptr);

/// Decides weak equivalence P1 ≡w P2.
[[nodiscard]] bool WeaklyEquivalent(const Pattern& p1, const Pattern& p2,
                                    ContainmentStats* stats = nullptr);

}  // namespace xpv

#endif  // XPV_CONTAINMENT_CONTAINMENT_H_
