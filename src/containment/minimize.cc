#include "containment/minimize.h"

#include <cassert>
#include <vector>

#include "containment/containment.h"
#include "pattern/algebra.h"

namespace xpv {

Pattern RemoveSubtree(const Pattern& p, NodeId n) {
  assert(n != p.root());
  std::vector<NodeId> map(static_cast<size_t>(p.size()), kNoNode);
  Pattern result(p.label(p.root()));
  map[static_cast<size_t>(p.root())] = result.root();
  for (NodeId v = 1; v < p.size(); ++v) {
    if (v == n) continue;
    NodeId parent_img = map[static_cast<size_t>(p.parent(v))];
    if (parent_img == kNoNode) continue;  // Inside the removed subtree.
    map[static_cast<size_t>(v)] =
        result.AddChild(parent_img, p.label(v), p.edge(v));
  }
  assert(map[static_cast<size_t>(p.output())] != kNoNode);
  result.set_output(map[static_cast<size_t>(p.output())]);
  return result;
}

Pattern RemoveRedundantBranches(const Pattern& p) {
  if (p.IsEmpty()) return p;
  Pattern current = p;
  bool changed = true;
  while (changed) {
    changed = false;
    // Nodes whose subtree contains the output cannot be removed.
    std::vector<char> holds_output(static_cast<size_t>(current.size()), 0);
    for (NodeId cur = current.output(); cur != kNoNode;
         cur = current.parent(cur)) {
      holds_output[static_cast<size_t>(cur)] = 1;
    }
    for (NodeId n = 1; n < current.size(); ++n) {
      if (holds_output[static_cast<size_t>(n)] != 0) continue;
      Pattern candidate = RemoveSubtree(current, n);
      if (Contained(candidate, current)) {
        current = std::move(candidate);
        changed = true;
        break;  // Node ids shifted; restart the scan.
      }
    }
  }
  return current;
}

}  // namespace xpv
