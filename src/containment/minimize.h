#ifndef XPV_CONTAINMENT_MINIMIZE_H_
#define XPV_CONTAINMENT_MINIMIZE_H_

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// Returns `p` with the subtree rooted at `n` removed (n must not be the
/// root and the subtree must not contain the output node).
[[nodiscard]] Pattern RemoveSubtree(const Pattern& p, NodeId n);

/// Removes redundant branches until the pattern is non-redundant in the
/// sense of [10]: no subtree hanging off the pattern can be deleted while
/// preserving equivalence. Each candidate deletion is validated with a full
/// containment test (deleting a branch relaxes the pattern, so P ⊑ P'
/// always holds; the branch is redundant iff P' ⊑ P).
///
/// Exponential in the worst case (it performs coNP containment tests), but
/// patterns are query-sized. Note [10] shows non-redundancy does not
/// necessarily coincide with minimality in XP^{//,[],*}; this function
/// implements non-redundancy only.
[[nodiscard]] Pattern RemoveRedundantBranches(const Pattern& p);

}  // namespace xpv

#endif  // XPV_CONTAINMENT_MINIMIZE_H_
