#include "containment/oracle.h"

namespace xpv {

bool ContainmentOracle::Contained(const Pattern& p1, const Pattern& p2) {
  std::string key = p1.CanonicalEncoding();
  key += '\x1f';
  key += p2.CanonicalEncoding();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  bool result = xpv::Contained(p1, p2);
  cache_.emplace(std::move(key), result);
  return result;
}

bool ContainmentOracle::Equivalent(const Pattern& p1, const Pattern& p2) {
  return Contained(p1, p2) && Contained(p2, p1);
}

void ContainmentOracle::Clear() {
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace xpv
