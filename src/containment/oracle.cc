#include "containment/oracle.h"

#include "util/cancel.h"
#include "util/fault.h"

namespace xpv {

ContainmentOracle::Entry& ContainmentOracle::InsertEntry(const PairKey& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  if (cache_.size() >= capacity_) EvictHalf();
  return cache_.emplace(key, Entry{0, 0, 0, 0, 0}).first->second;
}

bool ContainmentOracle::ContainedByFingerprint(uint64_t fp1, uint64_t fp2,
                                               const Pattern& p1,
                                               const Pattern& p2) {
  const bool swapped = fp1 > fp2;
  const PairKey key = swapped ? PairKey{fp2, fp1} : PairKey{fp1, fp2};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    Entry& entry = it->second;
    if (swapped ? entry.rev_known : entry.fwd_known) {
      ++hits_;
      entry.ref = 1;
      return swapped ? entry.rev : entry.fwd;
    }
  }
  // Shard read-through: probe the fallback table and copy whatever it
  // knows about this pair, so repeated batches amortize across the shared
  // oracle. Without a fallback mutex the fallback is frozen for the
  // batch's duration; with one (the concurrent Service wiring) the probe
  // takes the shared lock so other calls may absorb their shards.
  if (fallback_ != nullptr) {
    Entry parent{0, 0, 0, 0, 0};
    bool found = false;
    {
      // Conditional locking (a frozen fallback needs none) is inherently
      // dynamic, so this uses the analysis-invisible movable handle; the
      // fallback's own fields carry no capability to re-assert.
      ReaderLockHandle lock;
      if (fallback_mu_ != nullptr) lock = ReaderLockHandle(*fallback_mu_);
      auto fit = fallback_->cache_.find(key);
      if (fit != fallback_->cache_.end()) {
        parent = fit->second;
        found = true;
      }
    }
    if (found && (swapped ? parent.rev_known : parent.fwd_known)) {
      Entry& entry = InsertEntry(key);
      known_directions_ += (parent.fwd_known && !entry.fwd_known) +
                           (parent.rev_known && !entry.rev_known);
      entry.fwd_known |= parent.fwd_known;
      entry.fwd |= parent.fwd_known ? parent.fwd : 0;
      entry.rev_known |= parent.rev_known;
      entry.rev |= parent.rev_known ? parent.rev : 0;
      entry.ref = 1;
      ++hits_;
      return swapped ? entry.rev : entry.fwd;
    }
  }
  ++misses_;
  // The free function computes through the thread-local ContainmentContext,
  // so scratch buffers stay warm across oracle instances as well as calls.
  // Attached shards route the computation through the shared wrapper's
  // single-flight registry: a stampede of shards missing one direction
  // runs the DP once.
  const bool result = flights_ != nullptr
                          ? flights_->ContainedSingleFlight(fp1, fp2, p1, p2)
                          : xpv::Contained(p1, p2);
  Entry& entry = InsertEntry(key);
  if (swapped) {
    if (!entry.rev_known) ++known_directions_;
    entry.rev_known = 1;
    entry.rev = result ? 1 : 0;
  } else {
    if (!entry.fwd_known) ++known_directions_;
    entry.fwd_known = 1;
    entry.fwd = result ? 1 : 0;
  }
  return result;
}

std::optional<bool> ContainmentOracle::ProbeDirection(uint64_t fp1,
                                                      uint64_t fp2) const {
  const bool swapped = fp1 > fp2;
  const PairKey key = swapped ? PairKey{fp2, fp1} : PairKey{fp1, fp2};
  auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  const Entry& entry = it->second;
  if (swapped ? !entry.rev_known : !entry.fwd_known) return std::nullopt;
  return (swapped ? entry.rev : entry.fwd) != 0;
}

void ContainmentOracle::StoreDirection(uint64_t fp1, uint64_t fp2,
                                       bool value) {
  const bool swapped = fp1 > fp2;
  const PairKey key = swapped ? PairKey{fp2, fp1} : PairKey{fp1, fp2};
  Entry& entry = InsertEntry(key);
  if (swapped) {
    if (!entry.rev_known) ++known_directions_;
    entry.rev_known = 1;
    entry.rev = value ? 1 : 0;
  } else {
    if (!entry.fwd_known) ++known_directions_;
    entry.fwd_known = 1;
    entry.fwd = value ? 1 : 0;
  }
}

void SynchronizedOracle::SyncBudgetLocked() {
  const size_t bytes = oracle_.entry_count() * kEntryFootprint;
  oracle_entry_bytes_.store(bytes, std::memory_order_relaxed);
  if (budget_ == nullptr) return;
  if (bytes > charged_bytes_) {
    budget_->Charge(bytes - charged_bytes_);
  } else if (bytes < charged_bytes_) {
    budget_->Release(charged_bytes_ - bytes);
  }
  charged_bytes_ = bytes;
}

size_t SynchronizedOracle::ShrinkHalf() {
  WriterLock lock(mu_);
  const size_t before = oracle_.entry_count();
  if (before > 1) oracle_.EvictHalf();
  SyncBudgetLocked();
  return before - oracle_.entry_count();
}

bool SynchronizedOracle::ContainedSingleFlight(uint64_t fp1, uint64_t fp2,
                                               const Pattern& p1,
                                               const Pattern& p2) {
  const DirectionKey key{fp1, fp2};
  auto probe = [&]() -> std::optional<bool> {
    // Registry-lock probe: a leader publishes through the shared table
    // BEFORE erasing its flight, so a thread that finds no flight here
    // sees any already-published value instead of recomputing it.
    ReaderLock lock(mu_);
    return oracle_.ProbeDirection(fp1, fp2);
  };
  auto flight = flights_.Join(key, probe);
  for (;;) {
    if (flight.immediate.has_value()) return *flight.immediate;
    if (flight.ticket.leader()) {
      // The DP runs with no lock held; only the write-through takes the
      // exclusive lock, and only for a hash-table insert. A throw here
      // (cancellation, injected fault) abandons the flight via the
      // ticket's unwind, and the waiters below re-elect.
      fault::Point("oracle.fill");
      const bool value = xpv::Contained(p1, p2);
      {
        WriterLock lock(mu_);
        oracle_.StoreDirection(fp1, fp2, value);
        SyncBudgetLocked();
      }
      flights_.Publish(flight.ticket, value);
      return value;
    }
    // Deadline-aware wait: the poll throws CancelledError on expiry and
    // the flight stays pending for everyone else.
    if (std::optional<bool> value =
            flights_.WaitPolling(flight.ticket, [] { PollCancellation(); })) {
      return *value;
    }
    // The leader abandoned (unwound). Re-join: exactly one waiter comes
    // back as the new leader and recomputes; the rest wait on its fresh
    // flight. A value published in the race window is caught by `probe`.
    flight = flights_.Join(key, probe);
  }
}

bool ContainmentOracle::Contained(const Pattern& p1, const Pattern& p2) {
  return ContainedByFingerprint(p1.CanonicalFingerprint(),
                                p2.CanonicalFingerprint(), p1, p2);
}

bool ContainmentOracle::Equivalent(const Pattern& p1, const Pattern& p2) {
  const uint64_t fp1 = p1.CanonicalFingerprint();
  const uint64_t fp2 = p2.CanonicalFingerprint();
  // Short-circuits: the reverse direction is only computed (or even looked
  // up) when the forward one holds. Both directions share one cache entry.
  return ContainedByFingerprint(fp1, fp2, p1, p2) &&
         ContainedByFingerprint(fp2, fp1, p2, p1);
}

std::vector<char> ContainmentOracle::ContainedMany(
    const std::vector<std::pair<const Pattern*, const Pattern*>>& pairs) {
  // Fingerprint each distinct pattern object once (batches routinely pass
  // the same query against many candidates).
  std::unordered_map<const Pattern*, uint64_t> fingerprints;
  auto fingerprint_of = [&](const Pattern* p) {
    auto [it, inserted] = fingerprints.try_emplace(p, 0);
    if (inserted) it->second = p->CanonicalFingerprint();
    return it->second;
  };
  std::vector<char> results;
  results.reserve(pairs.size());
  for (const auto& [lhs, rhs] : pairs) {
    results.push_back(ContainedByFingerprint(fingerprint_of(lhs),
                                             fingerprint_of(rhs), *lhs, *rhs)
                          ? 1
                          : 0);
  }
  return results;
}

void ContainmentOracle::AbsorbFrom(const ContainmentOracle& other) {
  // Capacity-aware merge: count the genuinely new keys, then make room
  // with ONE sweep that spares every key the merge is about to write.
  // Letting InsertEntry's EvictHalf fire mid-merge used to evict the
  // batch's own entries absorbed moments earlier.
  // The counting pass is skipped when even the no-overlap worst case
  // fits — the common case, and this often runs under the shared
  // oracle's exclusive lock where every extra probe blocks readers.
  if (cache_.size() + other.cache_.size() > capacity_) {
    size_t new_keys = 0;
    for (const auto& [key, src] : other.cache_) {
      if ((src.fwd_known || src.rev_known) &&
          cache_.find(key) == cache_.end()) {
        ++new_keys;
      }
    }
    if (cache_.size() + new_keys > capacity_) {
      EvictAtLeastSparing(cache_.size() + new_keys - capacity_,
                          other.cache_);
    }
  }
  for (const auto& [key, src] : other.cache_) {
    if (!src.fwd_known && !src.rev_known) continue;
    Entry& dst = cache_.try_emplace(key, Entry{0, 0, 0, 0, 0}).first->second;
    known_directions_ += (src.fwd_known && !dst.fwd_known) +
                         (src.rev_known && !dst.rev_known);
    dst.fwd_known |= src.fwd_known;
    dst.fwd |= src.fwd_known ? src.fwd : 0;
    dst.rev_known |= src.rev_known;
    dst.rev |= src.rev_known ? src.rev : 0;
    dst.ref |= src.ref;
  }
  hits_ += other.hits_;
  misses_ += other.misses_;
  // `other`'s evictions are that shard's churn, not this table's: folding
  // them double-reported batch churn (the shard's evicted entries were
  // read-through copies the shared table still holds).
}

void ContainmentOracle::EvictAtLeastSparing(size_t need, const Table& spare) {
  // Second-chance sweep over the non-spared entries: cold entries go
  // first, hot entries trade their reference bit for survival on the
  // first pass and are eligible on the next. Stops early (leaving the
  // table over capacity) when only spared entries remain.
  size_t evicted = 0;
  bool progress = true;
  while (evicted < need && progress) {
    progress = false;
    for (auto it = cache_.begin(); it != cache_.end() && evicted < need;) {
      if (spare.find(it->first) != spare.end()) {
        ++it;
        continue;
      }
      if (it->second.ref != 0) {
        it->second.ref = 0;
        progress = true;
        ++it;
        continue;
      }
      known_directions_ -= it->second.fwd_known + it->second.rev_known;
      ++evictions_;
      it = cache_.erase(it);
      ++evicted;
      progress = true;
    }
  }
}

void ContainmentOracle::EvictHalf() {
  // Second-chance (clock) sweep: entries hit since the last sweep trade
  // their reference bit for survival, cold entries are evicted, until half
  // the table is gone. A first pass over an all-hot table clears every
  // reference bit, so the loop terminates on the second pass at the latest.
  //
  // Fresh entries enter with ref = 0: an entry earns survival by answering
  // a lookup, which keeps one-shot pairs from displacing proven-hot ones.
  // The flip side is that a single warm-up batch larger than the capacity
  // can evict its own prefill before the engine reads it — size `capacity`
  // to the batch (the parallel shards inherit the shared oracle's).
  const size_t target = cache_.size() / 2;
  while (cache_.size() > target) {
    for (auto it = cache_.begin();
         it != cache_.end() && cache_.size() > target;) {
      if (it->second.ref != 0) {
        it->second.ref = 0;
        ++it;
      } else {
        known_directions_ -= it->second.fwd_known + it->second.rev_known;
        ++evictions_;
        it = cache_.erase(it);
      }
    }
  }
}

void ContainmentOracle::Clear() {
  cache_.clear();
  known_directions_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace xpv
