#include "containment/oracle.h"

namespace xpv {

bool ContainmentOracle::ContainedByFingerprint(uint64_t fp1, uint64_t fp2,
                                               const Pattern& p1,
                                               const Pattern& p2) {
  const bool swapped = fp1 > fp2;
  const PairKey key = swapped ? PairKey{fp2, fp1} : PairKey{fp1, fp2};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    const Entry& entry = it->second;
    if (swapped ? entry.rev_known : entry.fwd_known) {
      ++hits_;
      return swapped ? entry.rev : entry.fwd;
    }
  } else {
    if (cache_.size() >= capacity_) EvictHalf();
    it = cache_.emplace(key, Entry{0, 0, 0, 0}).first;
  }
  ++misses_;
  // The free function computes through the thread-local ContainmentContext,
  // so scratch buffers stay warm across oracle instances as well as calls.
  const bool result = xpv::Contained(p1, p2);
  Entry& entry = it->second;
  if (swapped) {
    entry.rev_known = 1;
    entry.rev = result ? 1 : 0;
  } else {
    entry.fwd_known = 1;
    entry.fwd = result ? 1 : 0;
  }
  ++known_directions_;
  return result;
}

bool ContainmentOracle::Contained(const Pattern& p1, const Pattern& p2) {
  return ContainedByFingerprint(p1.CanonicalFingerprint(),
                                p2.CanonicalFingerprint(), p1, p2);
}

bool ContainmentOracle::Equivalent(const Pattern& p1, const Pattern& p2) {
  const uint64_t fp1 = p1.CanonicalFingerprint();
  const uint64_t fp2 = p2.CanonicalFingerprint();
  // Short-circuits: the reverse direction is only computed (or even looked
  // up) when the forward one holds. Both directions share one cache entry.
  return ContainedByFingerprint(fp1, fp2, p1, p2) &&
         ContainedByFingerprint(fp2, fp1, p2, p1);
}

std::vector<char> ContainmentOracle::ContainedMany(
    const std::vector<std::pair<const Pattern*, const Pattern*>>& pairs) {
  // Fingerprint each distinct pattern object once (batches routinely pass
  // the same query against many candidates).
  std::unordered_map<const Pattern*, uint64_t> fingerprints;
  auto fingerprint_of = [&](const Pattern* p) {
    auto [it, inserted] = fingerprints.try_emplace(p, 0);
    if (inserted) it->second = p->CanonicalFingerprint();
    return it->second;
  };
  std::vector<char> results;
  results.reserve(pairs.size());
  for (const auto& [lhs, rhs] : pairs) {
    results.push_back(ContainedByFingerprint(fingerprint_of(lhs),
                                             fingerprint_of(rhs), *lhs, *rhs)
                          ? 1
                          : 0);
  }
  return results;
}

void ContainmentOracle::EvictHalf() {
  bool drop = true;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (drop) {
      known_directions_ -= it->second.fwd_known + it->second.rev_known;
      ++evictions_;
      it = cache_.erase(it);
    } else {
      ++it;
    }
    drop = !drop;
  }
}

void ContainmentOracle::Clear() {
  cache_.clear();
  known_directions_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace xpv
