#ifndef XPV_CONTAINMENT_ORACLE_H_
#define XPV_CONTAINMENT_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "containment/containment.h"
#include "pattern/pattern.h"
#include "util/hash.h"
#include "util/memory_budget.h"
#include "util/single_flight.h"
#include "util/sync.h"

namespace xpv {

class SynchronizedOracle;

/// A memoizing wrapper around the containment test.
///
/// The engine's equivalence tests are the only non-polynomial step of the
/// rewriting algorithm (Section 4), and cache-style applications
/// (`ViewCache`, the rule-coverage workloads) ask many containment
/// questions about overlapping patterns.
///
/// Keys are *interned 64-bit canonical fingerprints*
/// (`Pattern::CanonicalFingerprint`), so structurally isomorphic patterns
/// share entries without ever materializing encoding strings. One cache
/// entry carries both directions of a pattern pair (A ⊑ B and B ⊑ A) —
/// equivalence tests touch a single entry — and the table is bounded:
/// when `capacity` entries are reached, half the table is evicted by a
/// second-chance (clock) sweep — entries that have been hit since the
/// last sweep get their reference bit cleared and survive, cold entries
/// go first (counted in `evictions()`).
///
/// All misses are computed through the thread-local `ContainmentContext`
/// behind the free `Contained` function, so the canonical-model scratch
/// buffers amortize across every oracle instance on the thread. Not
/// thread-safe; use one oracle per thread.
///
/// For batch parallelism, an oracle can act as a *shard* over a shared
/// read-only parent set via `set_fallback`: local misses first probe the
/// fallback's table (copying what they find), and only then compute. A
/// fleet of shards over one frozen shared oracle is lock-free; after the
/// batch, `AbsorbFrom` merges each shard's entries (and counters) back
/// into the shared oracle. This is the `ViewCache::AnswerMany` pipeline.
///
/// Because entries are keyed on pattern fingerprints only (documents never
/// enter the cache), one oracle is safely shared across documents: the
/// `xpv::Service` facade injects a single oracle into every per-document
/// `ViewCache`, so a (query, view) pair decided for one document answers
/// instantly for all others.
class ContainmentOracle {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  ContainmentOracle() = default;
  explicit ContainmentOracle(size_t capacity) : capacity_(capacity) {}

  ContainmentOracle(const ContainmentOracle&) = delete;
  ContainmentOracle& operator=(const ContainmentOracle&) = delete;

  /// Memoized Contained(p1, p2).
  [[nodiscard]] bool Contained(const Pattern& p1, const Pattern& p2);

  /// Memoized equivalence. Both directions live in one cache entry, and
  /// the second direction is only computed when the first holds.
  [[nodiscard]] bool Equivalent(const Pattern& p1, const Pattern& p2);

  /// Batch interface: answers `out[i] = pairs[i].first ⊑ pairs[i].second`.
  /// Fingerprints are computed once per distinct pattern object in the
  /// batch, and duplicate pairs are answered from the entry filled by
  /// their first occurrence. Pointers must be non-null and alive for the
  /// duration of the call.
  [[nodiscard]] std::vector<char> ContainedMany(
      const std::vector<std::pair<const Pattern*, const Pattern*>>& pairs);

  /// Installs a read-only fallback probed on local misses (not owned; may
  /// be null to detach). With `fallback_mu` null the fallback must not be
  /// mutated while this oracle is in use — the single-owner batch path
  /// freezes the shared oracle, points every worker shard at it, and
  /// merges afterwards. With `fallback_mu` non-null every fallback probe
  /// takes the shared lock, so the fallback may concurrently absorb other
  /// shards under the exclusive lock (the `SynchronizedOracle` wiring of
  /// the thread-safe `xpv::Service`).
  ///
  /// With `flights` non-null (the `AttachShard` wiring), misses that
  /// survive the fallback probe run *single-flight*: concurrent shards
  /// missing the same directional pair rendezvous in the wrapper's
  /// flight registry and exactly one of them runs the containment DP
  /// (see `SynchronizedOracle::ContainedSingleFlight`).
  void set_fallback(const ContainmentOracle* fallback,
                    SharedMutex* fallback_mu = nullptr,
                    SynchronizedOracle* flights = nullptr) {
    fallback_ = fallback;
    fallback_mu_ = fallback_mu;
    flights_ = flights;
  }

  /// Merges every cached direction of `other` into this oracle: directions
  /// this table does not know are copied; directions both know are left
  /// as-is (they agree — containment is deterministic). Also folds
  /// `other`'s hit/miss counters into this oracle's, so a batch's sharded
  /// statistics survive the merge. `other`'s evictions are NOT folded:
  /// `evictions()` counts entries dropped from *this* table only.
  ///
  /// The merge is capacity-aware: room for the incoming keys is made with
  /// one up-front sweep that never evicts a key `other` is about to
  /// contribute, so merging a large shard into a near-capacity table
  /// cannot churn out the batch's own hot entries mid-merge.
  void AbsorbFrom(const ContainmentOracle& other);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Number of cached directional answers (an entry whose two directions
  /// are both known counts twice).
  size_t size() const { return known_directions_; }
  /// Number of resident pair entries (each holds up to two directions).
  size_t entry_count() const { return cache_.size(); }
  size_t capacity() const { return capacity_; }

  /// Drops all cached entries and resets the counters.
  void Clear();

 private:
  /// Unordered pair of fingerprints; `fwd` answers lo ⊑ hi, `rev` hi ⊑ lo
  /// (lo/hi by fingerprint value, with the query direction normalized at
  /// lookup time).
  struct PairKey {
    uint64_t lo;
    uint64_t hi;
    bool operator==(const PairKey& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return static_cast<size_t>(Mix64(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL)));
    }
  };
  struct Entry {
    uint8_t fwd_known : 1;
    uint8_t fwd : 1;
    uint8_t rev_known : 1;
    uint8_t rev : 1;
    /// Second-chance reference bit: set when the entry answers a lookup,
    /// cleared by the eviction sweep.
    uint8_t ref : 1;
  };

  using Table = std::unordered_map<PairKey, Entry, PairKeyHash>;

  /// Looks up / computes one direction given precomputed fingerprints.
  bool ContainedByFingerprint(uint64_t fp1, uint64_t fp2, const Pattern& p1,
                              const Pattern& p2);
  /// Reads the cached fp1 ⊑ fp2 direction, if known. Counts nothing and
  /// touches no reference bit (used by `SynchronizedOracle` under its
  /// own locks).
  std::optional<bool> ProbeDirection(uint64_t fp1, uint64_t fp2) const;
  /// Writes one computed direction (eviction-aware; counts nothing).
  void StoreDirection(uint64_t fp1, uint64_t fp2, bool value);
  friend class SynchronizedOracle;
  /// Inserts `key` (evicting if full) and returns its entry.
  Entry& InsertEntry(const PairKey& key);
  void EvictHalf();
  /// Second-chance sweep evicting at least `need` entries, never touching
  /// keys present in `spare` (the set an in-flight merge is about to
  /// write). May evict fewer when only spared entries remain — the table
  /// then temporarily exceeds capacity until the next organic insert.
  void EvictAtLeastSparing(size_t need, const Table& spare);

  Table cache_;
  size_t capacity_ = kDefaultCapacity;
  size_t known_directions_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  const ContainmentOracle* fallback_ = nullptr;
  SharedMutex* fallback_mu_ = nullptr;
  SynchronizedOracle* flights_ = nullptr;
};

/// A `shared_mutex`-synchronized owner of a shared `ContainmentOracle` —
/// the concurrency wrapper the thread-safe `xpv::Service` serves through.
///
/// Concurrent `Answer`/`AnswerBatch` calls never touch the shared table
/// directly: each call answers through a private shard oracle whose
/// read-through probes take this wrapper's shared lock (`AttachShard`
/// wires `ContainmentOracle::set_fallback` with the mutex), and publishes
/// the shard's new entries and counters back with `Absorb` under the
/// exclusive lock. Containment misses therefore compute outside any lock;
/// the critical sections are hash-table probes and merges only.
class SynchronizedOracle {
 public:
  explicit SynchronizedOracle(
      size_t capacity = ContainmentOracle::kDefaultCapacity)
      : oracle_(capacity) {}

  ~SynchronizedOracle() {
    // Locked for the guarded read's sake only: destruction implies no
    // concurrent users, but the discipline holds everywhere.
    WriterLock lock(mu_);
    if (budget_ != nullptr) budget_->Release(charged_bytes_);
  }

  /// Points byte accounting at the Service's shared `MemoryBudget` (not
  /// owned; may be null). Setup-time only — must not race serving calls.
  void SetMemoryBudget(MemoryBudget* budget) { budget_ = budget; }

  /// Halves the shared table (exclusive lock) — the memory ladder's
  /// second rung. Every evicted direction is recomputable; correctness
  /// is untouched. Returns the pair entries dropped.
  size_t ShrinkHalf();

  /// Estimated resident bytes of the shared table (racy snapshot).
  size_t resident_bytes() const {
    return oracle_entry_bytes_.load(std::memory_order_relaxed);
  }

  /// Points `shard`'s read-through at the shared table and its miss path
  /// at this wrapper's single-flight registry. Probes take the shared
  /// lock; this wrapper must outlive the shard's use.
  void AttachShard(ContainmentOracle* shard) {
    shard->set_fallback(&oracle_, &mu_, this);
  }

  /// The single-flight miss path attached shards compute through:
  /// concurrent misses of the same *directional* pair (fp1 ⊑ fp2 — exact
  /// fingerprints, never hashes: a collision would return the wrong
  /// answer) elect one leader, who runs the containment DP with no lock
  /// held, writes the direction through to the shared table, and wakes
  /// the waiters with the value. Late arrivals re-probe the shared table
  /// under the registry lock, so a published direction is never
  /// recomputed. The wait is deadline-aware (the caller's installed
  /// `CancelToken` is polled; expiry throws `CancelledError` and leaves
  /// the flight intact for other waiters). When a leader unwinds without
  /// publishing, the waiters re-join and exactly one is promoted to
  /// re-run the DP — one dead leader costs one retry, not a stampede.
  [[nodiscard]] bool ContainedSingleFlight(uint64_t fp1, uint64_t fp2,
                                           const Pattern& p1,
                                           const Pattern& p2);

  uint64_t single_flight_leads() const { return flights_.leads(); }
  uint64_t single_flight_joins() const { return flights_.joins(); }
  uint64_t single_flight_abandons() const { return flights_.abandons(); }

  /// Publishes a shard's entries and hit/miss counters into the shared
  /// table (exclusive lock; capacity-aware, see `AbsorbFrom`). A shard
  /// that computed nothing (`misses() == 0` — every entry it holds is a
  /// read-through copy OF this table) folds only its hit counter, and
  /// does so atomically WITHOUT the exclusive lock: hot fully-cached
  /// traffic neither merges tables nor blocks concurrent read-throughs.
  void Absorb(const ContainmentOracle& shard) {
    if (shard.misses() == 0) {
      folded_hits_.fetch_add(shard.hits(), std::memory_order_relaxed);
      return;
    }
    WriterLock lock(mu_);
    oracle_.AbsorbFrom(shard);
    SyncBudgetLocked();
  }

  // Counter snapshots (shared lock; `folded_hits_` holds the hits of
  // miss-free shards folded outside the lock).
  uint64_t hits() const {
    return Snapshot(&ContainmentOracle::hits) +
           folded_hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const { return Snapshot(&ContainmentOracle::misses); }
  uint64_t evictions() const { return Snapshot(&ContainmentOracle::evictions); }
  size_t size() const { return Snapshot(&ContainmentOracle::size); }
  /// Immutable after construction; snapshotted anyway so every access to
  /// the wrapped oracle goes through the lock discipline.
  size_t capacity() const { return Snapshot(&ContainmentOracle::capacity); }

  /// The wrapped oracle, unsynchronized — for single-threaded setup,
  /// teardown and tests only. Must not race attached shards or `Absorb`.
  /// Escape hatch: the caller's contract is external quiescence, which
  /// the analysis cannot see — this accessor exists to bypass the lock.
  ContainmentOracle& unsynchronized() XPV_NO_THREAD_SAFETY_ANALYSIS {
    return oracle_;
  }
  const ContainmentOracle& unsynchronized() const
      XPV_NO_THREAD_SAFETY_ANALYSIS {
    return oracle_;
  }

 private:
  /// Directional containment question, compared exactly.
  struct DirectionKey {
    uint64_t from;
    uint64_t to;
    bool operator==(const DirectionKey& other) const {
      return from == other.from && to == other.to;
    }
  };
  struct DirectionKeyHash {
    size_t operator()(const DirectionKey& k) const {
      return static_cast<size_t>(
          Mix64(k.from ^ (k.to * 0x9E3779B97F4A7C15ULL) ^ 0x5851F42D4C957F2DULL));
    }
  };

  template <typename R>
  R Snapshot(R (ContainmentOracle::*getter)() const) const {
    ReaderLock lock(mu_);
    return (oracle_.*getter)();
  }

  /// Reconciles the budget charge with the table's current entry count
  /// (requires the exclusive lock). Entries are fixed-size, so bytes are
  /// tracked as count × footprint rather than per-insert plumbing.
  void SyncBudgetLocked() XPV_REQUIRES(mu_);

  /// Estimated heap footprint of one resident pair entry (key + packed
  /// directions + hash-node overhead).
  static constexpr size_t kEntryFootprint =
      sizeof(uint64_t) * 2 + sizeof(uint8_t) + 4 * sizeof(void*);

  mutable SharedMutex mu_;
  ContainmentOracle oracle_ XPV_GUARDED_BY(mu_);
  MemoryBudget* budget_ = nullptr;
  /// Bytes currently charged to `budget_` (mutated under the exclusive
  /// lock; read lock-free by `resident_bytes`).
  size_t charged_bytes_ XPV_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> oracle_entry_bytes_{0};
  std::atomic<uint64_t> folded_hits_{0};
  SingleFlight<DirectionKey, bool, DirectionKeyHash> flights_;
};

}  // namespace xpv

#endif  // XPV_CONTAINMENT_ORACLE_H_
