#ifndef XPV_CONTAINMENT_ORACLE_H_
#define XPV_CONTAINMENT_ORACLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "containment/containment.h"
#include "pattern/pattern.h"

namespace xpv {

/// A memoizing wrapper around the containment test.
///
/// The engine's equivalence tests are the only non-polynomial step of the
/// rewriting algorithm (Section 4), and cache-style applications
/// (`ViewCache`, the rule-coverage workloads) ask many containment
/// questions about overlapping patterns. Keys are pairs of canonical
/// encodings, so structurally isomorphic patterns share entries. Not
/// thread-safe; use one oracle per thread.
class ContainmentOracle {
 public:
  ContainmentOracle() = default;

  ContainmentOracle(const ContainmentOracle&) = delete;
  ContainmentOracle& operator=(const ContainmentOracle&) = delete;

  /// Memoized Contained(p1, p2).
  bool Contained(const Pattern& p1, const Pattern& p2);

  /// Memoized equivalence (two containment lookups).
  bool Equivalent(const Pattern& p1, const Pattern& p2);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

  /// Drops all cached entries.
  void Clear();

 private:
  std::unordered_map<std::string, bool> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xpv

#endif  // XPV_CONTAINMENT_ORACLE_H_
