#ifndef XPV_CONTAINMENT_PATTERN_MASKS_H_
#define XPV_CONTAINMENT_PATTERN_MASKS_H_

#include <cstddef>
#include <vector>

#include "containment/bitmatrix.h"
#include "pattern/pattern.h"

namespace xpv {

/// The per-pattern bit masks shared by every bit-parallel kernel: the
/// embedding DP over documents (`EvalScratch`) and the pattern-homomorphism
/// test both need, for a pattern P with one bit per node q,
///
///   need_child(q) = q's children reached by child edges,
///   need_desc(q)  = q's children reached by descendant edges,
///   wildcard      = the *-labeled nodes,
///   has_req       = the nodes with at least one child,
///   CandidateRow(l) = the nodes a target node labeled `l` can host
///                     (exact-label matches plus every wildcard node).
///
/// Kernel-specific details (the homomorphism test's output-bit clearing and
/// child-edge-only witness join, the evaluator's tree-row storage) stay in
/// the kernels; this object only owns the label/edge mask setup.
///
/// `Build` reuses the underlying buffers, so one `PatternMasks` amortizes
/// across calls exactly like the kernels' scratch state.
class PatternMasks {
 public:
  PatternMasks() = default;

  PatternMasks(const PatternMasks&) = delete;
  PatternMasks& operator=(const PatternMasks&) = delete;

  /// (Re)builds all masks for `p` (nonempty).
  void Build(const Pattern& p);

  /// (Re)builds *combined* masks for `count` nonempty patterns packed into
  /// one bit-space: pattern i's node q lives at bit `offset(i) + q`, where
  /// offset(i) is the prefix sum of the earlier patterns' sizes. Every
  /// per-node row (`need_child`/`need_desc`, indexed by packed bit id)
  /// references only bits of its own pattern, so a single DP pass over a
  /// document decides all patterns at once while their table entries stay
  /// independent. `CandidateRow` merges labels across patterns: a label
  /// used by pattern A but not B yields A's exact matches plus every
  /// pattern's wildcard bits — exactly the union of the per-pattern rows.
  void BuildMany(const Pattern* const* patterns, size_t count);

  /// Words per bit-row over the pattern's nodes.
  int words() const { return words_; }

  const BitWord* need_child(NodeId q) const {
    return need_child_.data() + static_cast<size_t>(q) * words_;
  }
  const BitWord* need_desc(NodeId q) const {
    return need_desc_.data() + static_cast<size_t>(q) * words_;
  }
  const BitWord* wildcard() const { return wildcard_.data(); }
  const BitWord* has_req() const { return has_req_.data(); }

  /// The candidate row for a target node labeled `label`: bits of the
  /// pattern nodes whose label matches (their own label or '*'). Labels
  /// not occurring in the pattern share the wildcard row.
  const BitWord* CandidateRow(LabelId label) const;

 private:
  static void EnsureZeroed(std::vector<BitWord>* v, size_t words);

  int words_ = 0;
  std::vector<BitWord> need_child_;  // One row per pattern node.
  std::vector<BitWord> need_desc_;
  std::vector<BitWord> wildcard_;  // Single rows.
  std::vector<BitWord> has_req_;
  std::vector<LabelId> labels_;      // Distinct non-* labels in p ...
  std::vector<BitWord> label_masks_; // ... and their candidate rows.
};

}  // namespace xpv

#endif  // XPV_CONTAINMENT_PATTERN_MASKS_H_
