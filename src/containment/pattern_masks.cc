#include "containment/pattern_masks.h"

#include <algorithm>

namespace xpv {

void PatternMasks::EnsureZeroed(std::vector<BitWord>* v, size_t words) {
  if (v->size() < words) v->resize(words);
  std::fill_n(v->begin(), words, 0);
}

void PatternMasks::Build(const Pattern& p) {
  const int np = p.size();
  words_ = BitWordsFor(np);
  const size_t rows = static_cast<size_t>(np) * static_cast<size_t>(words_);
  EnsureZeroed(&need_child_, rows);
  EnsureZeroed(&need_desc_, rows);
  EnsureZeroed(&wildcard_, static_cast<size_t>(words_));
  EnsureZeroed(&has_req_, static_cast<size_t>(words_));

  labels_.clear();
  for (NodeId q = 0; q < np; ++q) {
    if (!p.children(q).empty()) SetBit(has_req_.data(), q);
    for (NodeId c : p.children(q)) {
      BitWord* row = (p.edge(c) == EdgeType::kChild ? need_child_.data()
                                                    : need_desc_.data()) +
                     static_cast<size_t>(q) * words_;
      SetBit(row, c);
    }
    const LabelId l = p.label(q);
    if (l != LabelStore::kWildcard &&
        std::find(labels_.begin(), labels_.end(), l) == labels_.end()) {
      labels_.push_back(l);
    }
  }

  EnsureZeroed(&label_masks_, labels_.size() * static_cast<size_t>(words_));
  for (NodeId q = 0; q < np; ++q) {
    const LabelId l = p.label(q);
    if (l == LabelStore::kWildcard) {
      SetBit(wildcard_.data(), q);
    } else {
      const auto it = std::find(labels_.begin(), labels_.end(), l);
      SetBit(label_masks_.data() +
                 static_cast<size_t>(it - labels_.begin()) * words_,
             q);
    }
  }
  for (size_t i = 0; i < labels_.size(); ++i) {
    OrRow(label_masks_.data() + i * words_, wildcard_.data(), words_);
  }
}

const BitWord* PatternMasks::CandidateRow(LabelId label) const {
  const auto it = std::find(labels_.begin(), labels_.end(), label);
  if (it == labels_.end()) return wildcard_.data();
  return label_masks_.data() +
         static_cast<size_t>(it - labels_.begin()) * words_;
}

}  // namespace xpv
