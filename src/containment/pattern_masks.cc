#include "containment/pattern_masks.h"

#include <algorithm>

namespace xpv {

void PatternMasks::EnsureZeroed(std::vector<BitWord>* v, size_t words) {
  if (v->size() < words) v->resize(words);
  std::fill_n(v->begin(), words, 0);
}

void PatternMasks::Build(const Pattern& p) {
  const Pattern* single[] = {&p};
  BuildMany(single, 1);
}

void PatternMasks::BuildMany(const Pattern* const* patterns, size_t count) {
  int total = 0;
  for (size_t i = 0; i < count; ++i) total += patterns[i]->size();
  words_ = BitWordsFor(total);
  const size_t rows =
      static_cast<size_t>(total) * static_cast<size_t>(words_);
  EnsureZeroed(&need_child_, rows);
  EnsureZeroed(&need_desc_, rows);
  EnsureZeroed(&wildcard_, static_cast<size_t>(words_));
  EnsureZeroed(&has_req_, static_cast<size_t>(words_));

  labels_.clear();
  int offset = 0;
  for (size_t i = 0; i < count; ++i) {
    const Pattern& p = *patterns[i];
    const int np = p.size();
    for (NodeId q = 0; q < np; ++q) {
      const NodeId qb = offset + q;  // Packed bit id of (pattern i, q).
      if (!p.children(q).empty()) SetBit(has_req_.data(), qb);
      for (NodeId c : p.children(q)) {
        BitWord* row = (p.edge(c) == EdgeType::kChild ? need_child_.data()
                                                      : need_desc_.data()) +
                       static_cast<size_t>(qb) * words_;
        SetBit(row, offset + c);
      }
      const LabelId l = p.label(q);
      if (l != LabelStore::kWildcard &&
          std::find(labels_.begin(), labels_.end(), l) == labels_.end()) {
        labels_.push_back(l);
      }
    }
    offset += np;
  }

  EnsureZeroed(&label_masks_, labels_.size() * static_cast<size_t>(words_));
  offset = 0;
  for (size_t i = 0; i < count; ++i) {
    const Pattern& p = *patterns[i];
    const int np = p.size();
    for (NodeId q = 0; q < np; ++q) {
      const LabelId l = p.label(q);
      if (l == LabelStore::kWildcard) {
        SetBit(wildcard_.data(), offset + q);
      } else {
        const auto it = std::find(labels_.begin(), labels_.end(), l);
        SetBit(label_masks_.data() +
                   static_cast<size_t>(it - labels_.begin()) * words_,
               offset + q);
      }
    }
    offset += np;
  }
  for (size_t i = 0; i < labels_.size(); ++i) {
    OrRow(label_masks_.data() + i * words_, wildcard_.data(), words_);
  }
}

const BitWord* PatternMasks::CandidateRow(LabelId label) const {
  const auto it = std::find(labels_.begin(), labels_.end(), label);
  if (it == labels_.end()) return wildcard_.data();
  return label_masks_.data() +
         static_cast<size_t>(it - labels_.begin()) * words_;
}

}  // namespace xpv
