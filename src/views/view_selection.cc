#include "views/view_selection.h"

#include <map>
#include <set>
#include <utility>

#include "containment/oracle.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "rewrite/candidates.h"
#include "rewrite/engine.h"
#include "views/view_index.h"

namespace xpv {

std::vector<CandidateView> EnumerateCandidateViews(
    const std::vector<WorkloadQuery>& workload, ContainmentOracle* oracle) {
  // Collect deduplicated prefix views.
  std::map<std::string, Pattern> prefixes;
  for (const WorkloadQuery& query : workload) {
    if (query.pattern.IsEmpty()) continue;
    SelectionInfo info(query.pattern);
    // k starts at 1: the k = 0 prefix is a root-anchored view whose
    // materialization is (essentially) the whole document, which defeats
    // the purpose of caching.
    for (int k = 1; k < info.depth(); ++k) {
      Pattern prefix = UpperPattern(query.pattern, k);
      prefixes.emplace(prefix.CanonicalEncoding(), std::move(prefix));
    }
  }

  ContainmentOracle local_oracle;
  if (oracle == nullptr) oracle = &local_oracle;
  RewriteOptions rewrite_options;
  rewrite_options.oracle = oracle;

  // Summarize each workload query once; scoring a candidate view against
  // the workload is then an O(1) admissibility probe per query.
  std::vector<SelectionSummary> query_summaries(workload.size());
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    if (workload[qi].pattern.IsEmpty()) continue;
    query_summaries[qi] = SummarizeSelection(workload[qi].pattern);
  }

  std::vector<CandidateView> candidates;
  candidates.reserve(prefixes.size());
  BundlePool bundle_pool;  // Bundle storage recycled across view prefixes.
  std::vector<const CandidateBundle*> bundle_of(workload.size());
  std::vector<std::pair<const Pattern*, const Pattern*>> pairs;
  for (auto& [key, view] : prefixes) {
    CandidateView candidate;
    const SelectionSummary view_summary = SummarizeSelection(view);
    candidate.depth = view_summary.depth;

    // Build each admissible (query, view) candidate bundle exactly once:
    // its forward containment pairs warm the oracle through ContainedMany
    // in one batch, and the same bundle then feeds DecideRewrite below
    // (reverse directions stay lazy).
    bundle_pool.Rewind();
    bundle_of.assign(workload.size(), nullptr);
    pairs.clear();
    pairs.reserve(2 * workload.size());
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      const WorkloadQuery& query = workload[qi];
      if (query.pattern.IsEmpty()) continue;
      if (!AdmissibleBySummaries(query_summaries[qi], view_summary)) {
        continue;  // The engine would certify kNotExists from Prop 3.1.
      }
      const CandidateBundle& bundle =
          bundle_pool.Build(query.pattern, view, candidate.depth);
      bundle_of[qi] = &bundle;
      AppendBundlePairs(bundle, query.pattern, &pairs);
    }
    // discard: batch call warms the oracle's memo — the per-pair answers
    // are re-read from it by the DecideRewrite calls below.
    (void)oracle->ContainedMany(pairs);

    for (int qi = 0; qi < static_cast<int>(workload.size()); ++qi) {
      const WorkloadQuery& query = workload[static_cast<size_t>(qi)];
      if (bundle_of[static_cast<size_t>(qi)] == nullptr) continue;
      RewriteResult result =
          DecideRewrite(query.pattern, view, rewrite_options,
                        bundle_of[static_cast<size_t>(qi)]);
      if (result.status == RewriteStatus::kFound) {
        candidate.answers.push_back(qi);
        candidate.covered_weight += query.weight;
      }
    }
    candidate.pattern = std::move(view);
    if (!candidate.answers.empty()) {
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

ViewSelectionResult SelectViews(const std::vector<WorkloadQuery>& workload,
                                const ViewSelectionOptions& options) {
  ViewSelectionResult result;
  for (const WorkloadQuery& query : workload) {
    result.total_weight += query.weight;
  }

  std::vector<CandidateView> candidates =
      EnumerateCandidateViews(workload, options.oracle);
  std::set<int> covered;
  std::vector<char> used(candidates.size(), 0);

  for (int round = 0; round < options.max_views; ++round) {
    int best = -1;
    double best_gain = 0.0;
    for (int ci = 0; ci < static_cast<int>(candidates.size()); ++ci) {
      if (used[static_cast<size_t>(ci)] != 0) continue;
      double gain = 0.0;
      for (int qi : candidates[static_cast<size_t>(ci)].answers) {
        if (covered.find(qi) == covered.end()) {
          gain += workload[static_cast<size_t>(qi)].weight;
        }
      }
      // Tie-break toward deeper (cheaper-to-store) views.
      if (gain > best_gain ||
          (gain == best_gain && best >= 0 && gain > 0.0 &&
           candidates[static_cast<size_t>(ci)].depth >
               candidates[static_cast<size_t>(best)].depth)) {
        best = ci;
        best_gain = gain;
      }
    }
    if (best < 0 || best_gain <= 0.0) break;
    used[static_cast<size_t>(best)] = 1;
    for (int qi : candidates[static_cast<size_t>(best)].answers) {
      covered.insert(qi);
    }
    result.covered_weight += best_gain;
    result.chosen.push_back(candidates[static_cast<size_t>(best)]);
  }
  return result;
}

}  // namespace xpv
