#include "views/view_cache.h"

#include <algorithm>

#include "eval/evaluator.h"

namespace xpv {

MaterializedView::MaterializedView(ViewDefinition definition, const Tree& doc)
    : definition_(std::move(definition)), doc_(&doc) {
  outputs_ = Eval(definition_.pattern, doc);
}

std::vector<Tree> MaterializedView::MaterializeCopies() const {
  std::vector<Tree> copies;
  copies.reserve(outputs_.size());
  for (NodeId o : outputs_) copies.push_back(doc_->ExtractSubtree(o));
  return copies;
}

std::vector<NodeId> MaterializedView::Apply(const Pattern& r) const {
  if (r.IsEmpty() || outputs_.empty()) return {};
  Evaluator evaluator(r, *doc_);
  std::vector<NodeId> all;
  for (NodeId o : outputs_) {
    std::vector<NodeId> part = evaluator.OutputsAnchoredAt(o);
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ViewCache::ViewCache(const Tree& doc, RewriteOptions options)
    : doc_(&doc), options_(options) {
  options_.oracle = &oracle_;
}

int ViewCache::AddView(ViewDefinition definition) {
  views_.emplace_back(std::move(definition), *doc_);
  return static_cast<int>(views_.size()) - 1;
}

CacheAnswer ViewCache::Answer(const Pattern& query) {
  ++stats_.queries;
  CacheAnswer answer;
  for (const MaterializedView& view : views_) {
    RewriteResult result =
        DecideRewrite(query, view.definition().pattern, options_);
    if (result.status == RewriteStatus::kFound) {
      answer.hit = true;
      answer.view_name = view.definition().name;
      answer.rewriting = result.rewriting;
      answer.outputs = view.Apply(result.rewriting);
      ++stats_.hits;
      return answer;
    }
    if (result.status == RewriteStatus::kUnknown) ++stats_.rewrite_unknown;
  }
  answer.outputs = Eval(query, *doc_);
  return answer;
}

}  // namespace xpv
