#include "views/view_cache.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "eval/evaluator.h"
#include "pattern/properties.h"
#include "rewrite/candidates.h"
#include "rewrite/rules.h"

namespace xpv {

MaterializedView::MaterializedView(ViewDefinition definition, const Tree& doc)
    : definition_(std::move(definition)), doc_(&doc) {
  outputs_ = Eval(definition_.pattern, doc);
}

std::vector<Tree> MaterializedView::MaterializeCopies() const {
  std::vector<Tree> copies;
  copies.reserve(outputs_.size());
  for (NodeId o : outputs_) copies.push_back(doc_->ExtractSubtree(o));
  return copies;
}

std::vector<NodeId> MaterializedView::Apply(const Pattern& r) const {
  if (r.IsEmpty() || outputs_.empty()) return {};
  Evaluator evaluator(r, *doc_);
  std::vector<NodeId> all;
  for (NodeId o : outputs_) {
    std::vector<NodeId> part = evaluator.OutputsAnchoredAt(o);
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ViewCache::ViewCache(const Tree& doc, RewriteOptions options)
    : doc_(&doc), options_(options) {
  options_.oracle = &oracle_;
}

int ViewCache::AddView(ViewDefinition definition) {
  views_.emplace_back(std::move(definition), *doc_);
  return static_cast<int>(views_.size()) - 1;
}

CacheAnswer ViewCache::Answer(const Pattern& query) {
  ++stats_.queries;
  CacheAnswer answer;
  // Υ selects nothing; the rewrite engine requires nonempty patterns.
  if (query.IsEmpty()) return answer;
  for (const MaterializedView& view : views_) {
    RewriteResult result =
        DecideRewrite(query, view.definition().pattern, options_);
    if (result.status == RewriteStatus::kFound) {
      answer.hit = true;
      answer.view_name = view.definition().name;
      answer.rewriting = result.rewriting;
      answer.outputs = view.Apply(result.rewriting);
      ++stats_.hits;
      return answer;
    }
    if (result.status == RewriteStatus::kUnknown) ++stats_.rewrite_unknown;
  }
  answer.outputs = Eval(query, *doc_);
  return answer;
}

std::vector<CacheAnswer> ViewCache::AnswerMany(
    const std::vector<Pattern>& queries) {
  // Warm the oracle with one batch: for each query, the forward
  // natural-candidate containment tests of its *first* admissible view —
  // `Answer` probes views in order and earlier views fail the necessary
  // conditions without any containment test, so exactly these tests are
  // guaranteed to run. Later views' tests stay lazy (they only run when
  // every earlier view missed), as do all reverse directions.
  std::vector<int> view_depths;
  view_depths.reserve(views_.size());
  for (const MaterializedView& view : views_) {
    view_depths.push_back(SelectionInfo(view.definition().pattern).depth());
  }
  std::deque<Pattern> compositions;
  std::vector<std::pair<const Pattern*, const Pattern*>> pairs;
  pairs.reserve(2 * queries.size());
  for (const Pattern& query : queries) {
    if (query.IsEmpty()) continue;
    for (size_t vi = 0; vi < views_.size(); ++vi) {
      const Pattern& vp = views_[vi].definition().pattern;
      if (ViolatesBasicNecessaryConditions(query, vp).has_value()) continue;
      AppendNaturalCandidatePairs(query, vp, view_depths[vi], &compositions,
                                  &pairs);
      break;
    }
  }
  oracle_.ContainedMany(pairs);

  std::vector<CacheAnswer> answers;
  answers.reserve(queries.size());
  for (const Pattern& query : queries) answers.push_back(Answer(query));
  return answers;
}

}  // namespace xpv
