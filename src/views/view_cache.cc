#include "views/view_cache.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <utility>

#include "eval/evaluator.h"
#include "rewrite/candidates.h"
#include "util/thread_pool.h"

namespace xpv {

namespace {
// Cap on the total packed width of one multi-pattern evaluation group
// (`MultiEvaluator`): the DP row cost grows with the group's bit count, so
// the cap keeps each pass cheap per row while still amortizing the
// per-row fixed costs (child iteration, label lookup) across the group.
// Four machine words comfortably packs a realistic batch's worth of
// query-sized patterns.
constexpr int kMaxPackedBits = 256;
}  // namespace

MaterializedView::MaterializedView(ViewDefinition definition, const Tree& doc)
    : definition_(std::move(definition)), doc_(&doc) {
  outputs_ = Eval(definition_.pattern, doc);
}

MaterializedView::~MaterializedView() = default;
MaterializedView::MaterializedView(MaterializedView&&) noexcept = default;
MaterializedView& MaterializedView::operator=(MaterializedView&&) noexcept =
    default;

bool MaterializedView::ApplyUpdate(const TreeDeltaReport& report) {
  if (inc_ != nullptr) {
    inc_->ApplyUpdate(*doc_, report);
    outputs_ = inc_->outputs();
    return true;
  }
  // Cold DP state (first dirty update, or a skipped delta dropped it):
  // pay one full pass and keep the rows for the next delta. The pattern
  // pointer the state captures is this slot's `definition_` — stable, the
  // cache never moves a view it updates.
  inc_ = std::make_unique<IncrementalEvaluator>(definition_.pattern, *doc_);
  outputs_ = inc_->outputs();
  return false;
}

void MaterializedView::RemapOutputs(const std::vector<NodeId>& remap) {
  for (NodeId& o : outputs_) {
    assert(static_cast<size_t>(o) < remap.size() &&
           remap[static_cast<size_t>(o)] != kNoNode);
    o = remap[static_cast<size_t>(o)];
  }
}

void MaterializedView::Rematerialize() {
  inc_.reset();
  outputs_ = Eval(definition_.pattern, *doc_);
}

size_t MaterializedView::EstimatedBytes() const {
  // Estimate of the dominant payloads: the stored output ids, the name,
  // and the definition pattern's per-node arrays (labels, parents, edges,
  // child lists). The document is NOT counted — it is owned elsewhere.
  size_t bytes = sizeof(MaterializedView);
  bytes += outputs_.capacity() * sizeof(NodeId);
  if (inc_ != nullptr) bytes += inc_->EstimatedBytes();
  bytes += definition_.name.capacity();
  bytes += static_cast<size_t>(definition_.pattern.size()) *
           (sizeof(LabelId) + sizeof(NodeId) + sizeof(EdgeType) +
            sizeof(std::vector<NodeId>));
  return bytes;
}

std::vector<Tree> MaterializedView::MaterializeCopies() const {
  std::vector<Tree> copies;
  copies.reserve(outputs_.size());
  for (NodeId o : outputs_) copies.push_back(doc_->ExtractSubtree(o));
  return copies;
}

std::vector<NodeId> MaterializedView::Apply(const Pattern& r) const {
  if (r.IsEmpty() || outputs_.empty()) return {};
  // Anchored evaluation: the embedding DP is computed only over the union
  // of the stored subtrees, so the cost tracks the materialized result
  // size, not the document size. ONE multi-anchor selection sweep answers
  // every stored output together (already sorted and deduplicated), and
  // the thread-local kernel keeps the DP tables' storage warm across
  // Apply calls — a cold batch applies dozens of rewritings, and each
  // used to reallocate both bit-matrices and run one sweep per output.
  static thread_local EvalScratch apply_scratch;
  Evaluator evaluator(r, *doc_, outputs_, &apply_scratch);
  return evaluator.OutputsAnchoredAtAll(outputs_);
}

std::vector<std::vector<NodeId>> MaterializedView::ApplyMany(
    const std::vector<const Pattern*>& rs) const {
  std::vector<std::vector<NodeId>> results(rs.size());
  if (outputs_.empty()) return results;
  std::vector<size_t> todo;  // Nonempty rewritings, in order.
  todo.reserve(rs.size());
  for (size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i]->IsEmpty()) todo.push_back(i);
  }
  // Pack the group into bounded-width sub-groups; each runs one anchored
  // DP over the stored subtrees and one multi-anchor sweep per rewriting.
  static thread_local EvalScratch apply_scratch;
  std::vector<const Pattern*> group;
  std::vector<size_t> group_idx;
  for (size_t g = 0; g < todo.size();) {
    group.clear();
    group_idx.clear();
    int bits = 0;
    while (g < todo.size() &&
           (group.empty() || bits + rs[todo[g]]->size() <= kMaxPackedBits)) {
      bits += rs[todo[g]]->size();
      group.push_back(rs[todo[g]]);
      group_idx.push_back(todo[g]);
      ++g;
    }
    MultiEvaluator evaluator(group, *doc_, outputs_, &apply_scratch);
    for (size_t k = 0; k < group.size(); ++k) {
      results[group_idx[k]] = evaluator.OutputsAnchoredAtAll(k, outputs_);
    }
  }
  return results;
}

ViewCache::ViewCache(const Tree& doc, RewriteOptions options,
                     ContainmentOracle* oracle)
    : doc_(&doc), options_(options) {
  if (oracle == nullptr) {
    owned_oracle_ = std::make_unique<ContainmentOracle>();
    oracle = owned_oracle_.get();
  }
  oracle_ = oracle;
  options_.oracle = oracle_;
}

ViewCache::~ViewCache() = default;
ViewCache::ViewCache(ViewCache&&) noexcept = default;
ViewCache& ViewCache::operator=(ViewCache&&) noexcept = default;

int ViewCache::AddView(ViewDefinition definition) {
  if (!free_slots_.empty()) {
    // Recycle the most recently tombstoned slot instead of growing
    // views_/active_/index_ forever under remove/re-add churn. ReplaceView
    // revives the slot (and unlinks it from the free list).
    const int slot = free_slots_.back();
    ReplaceView(slot, std::move(definition));
    return slot;
  }
  views_.emplace_back(std::move(definition), *doc_);
  active_.push_back(1);
  slot_bytes_.push_back(views_.back().EstimatedBytes());
  charge_.Set(charge_.bytes() + slot_bytes_.back());
  ++active_views_;
  index_.Add(views_.back().definition().pattern);
  ++epoch_;
  view_epochs_.push_back(1);
  return static_cast<int>(views_.size()) - 1;
}

void ViewCache::ReplaceView(int index, ViewDefinition definition) {
  const size_t i = static_cast<size_t>(index);
  views_[i] = MaterializedView(std::move(definition), *doc_);
  const size_t new_bytes = views_[i].EstimatedBytes();
  charge_.Set(charge_.bytes() - slot_bytes_[i] + new_bytes);
  slot_bytes_[i] = new_bytes;
  index_.Replace(index, views_[i].definition().pattern);
  if (active_[i] == 0) {
    // Reviving a tombstone: unlink it from the free list, or a later
    // AddView would recycle the slot and clobber this live view.
    free_slots_.erase(
        std::remove(free_slots_.begin(), free_slots_.end(), index),
        free_slots_.end());
    active_[i] = 1;
    ++active_views_;
  }
  ++epoch_;
  ++view_epochs_[i];
}

void ViewCache::RemoveView(int index) {
  const size_t i = static_cast<size_t>(index);
  if (active_[i] == 0) return;
  views_[i] = MaterializedView();  // Drop the materialized data.
  charge_.Set(charge_.bytes() - slot_bytes_[i]);
  slot_bytes_[i] = 0;
  index_.Remove(index);
  active_[i] = 0;
  --active_views_;
  free_slots_.push_back(index);
  ++epoch_;
  ++view_epochs_[i];
}

ViewUpdateStats ViewCache::ApplyUpdate(const TreeDeltaReport& report,
                                       double fallback_fraction) {
  ViewUpdateStats stats;
  if (report.touched_nodes == 0) return stats;  // Empty delta: no-op.
  ++doc_epoch_;
  // Compaction renumbered nodes: every id stored anywhere in the cache
  // stack (view outputs aside, which are remapped below) went stale, so
  // the shape epoch bumps and with it every memo key for this document.
  if (report.compacted) ++epoch_;
  // Fallback test: the rows the incremental path would recompute (touched
  // region + dirty ancestor chains + inserted suffix) as a fraction of the
  // document. Past the threshold a full per-view pass is both simpler and
  // no slower, and it resets the persistent DP state's size.
  const double dirty_rows = static_cast<double>(
      report.touched_nodes + static_cast<int>(report.dirty_prefix_desc.size()) +
      (report.new_size - static_cast<int>(report.suffix_start)));
  stats.fell_back =
      dirty_rows > fallback_fraction * static_cast<double>(report.new_size);
  size_t total_bytes = 0;
  for (size_t i = 0; i < views_.size(); ++i) {
    if (active_[i] == 0) continue;
    MaterializedView& view = views_[i];
    const int slot = static_cast<int>(i);
    if (stats.fell_back) {
      view.Rematerialize();
      ++view_epochs_[i];
      ++stats.views_rematerialized;
    } else if (DeltaMayAffectView(index_.view_summary(slot), report)) {
      if (view.ApplyUpdate(report)) {
        ++stats.views_patched;
      } else {
        ++stats.views_rematerialized;
      }
      ++view_epochs_[i];
    } else {
      // Provably unaffected: the stored outputs are already correct (the
      // delta can neither add nor remove an embedding of this pattern) —
      // at most their ids moved under compaction. A rewriting served
      // through the view reads subtree content below the outputs, so the
      // per-view epoch still bumps when the delta spliced inside one of
      // the result subtrees (the memo must not replay those answers);
      // under compaction the shape-epoch bump above already orphaned
      // every old entry, and post-update node structure is unreliable for
      // pre-delta anchor ids, so the walk is skipped.
      bool region_dirty = false;
      if (report.compacted) {
        view.RemapOutputs(report.remap);
      } else {
        const std::vector<NodeId>& outs = view.outputs();
        for (NodeId a : report.splice_anchors_old) {
          // Anchors are pre-existing nodes and, with no compaction, old
          // nodes keep their ids and parents — the post-delta parent
          // chain IS the pre-delta one.
          for (NodeId n = a;; n = doc_->parent(n)) {
            if (std::binary_search(outs.begin(), outs.end(), n)) {
              region_dirty = true;
              break;
            }
            if (n == doc_->root()) break;
          }
          if (region_dirty) break;
        }
      }
      if (region_dirty) ++view_epochs_[i];
      // The skipped delta leaves the persistent DP rows describing a tree
      // that no longer exists; the next dirty update must rebuild.
      view.DropIncrementalState();
      ++stats.views_untouched;
    }
    slot_bytes_[i] = view.EstimatedBytes();
  }
  for (size_t b : slot_bytes_) total_bytes += b;
  charge_.Set(total_bytes);
  return stats;
}

bool ViewCache::FindRewrite(const Pattern& query,
                            const SelectionSummary& summary, int prebuilt_vi,
                            const CandidateBundle* prebuilt,
                            const RewriteOptions& options, CacheStats* stats,
                            int* vi_out, Pattern* rewriting_out) const {
  for (int vi = 0; vi < index_.size(); ++vi) {
    // O(1) pruning: views that fail the necessary conditions never reach
    // the engine (this is what `ViolatesBasicNecessaryConditions` would
    // certify as kNotExists).
    if (!index_.Admissible(summary, vi)) continue;
    const MaterializedView& view = views_[static_cast<size_t>(vi)];
    const Pattern& vp = view.definition().pattern;
    // Non-prebuilt bundles are rebuilt into thread-local recycled storage:
    // only one is live at a time (DecideRewrite copies anything it
    // returns), so each view scan reuses the previous scan's buffers.
    static thread_local CandidateBundle scratch_bundle;
    static thread_local std::vector<NodeId> scratch_map;
    const CandidateBundle* bundle = prebuilt;
    if (vi != prebuilt_vi || bundle == nullptr) {
      MakeCandidateBundleInto(query, vp, index_.view_summary(vi).depth,
                              &scratch_bundle, &scratch_map);
      bundle = &scratch_bundle;
    }
    RewriteResult result = DecideRewrite(query, vp, options, bundle);
    if (result.status == RewriteStatus::kFound) {
      *vi_out = vi;
      *rewriting_out = std::move(result.rewriting);
      ++stats->hits;
      return true;
    }
    if (result.status == RewriteStatus::kUnknown) ++stats->rewrite_unknown;
  }
  return false;
}

CacheAnswer ViewCache::ScanViews(const Pattern& query,
                                 const SelectionSummary& summary,
                                 int prebuilt_vi,
                                 const CandidateBundle* prebuilt,
                                 const RewriteOptions& options,
                                 CacheStats* stats) const {
  CacheAnswer answer;
  int vi = -1;
  if (FindRewrite(query, summary, prebuilt_vi, prebuilt, options, stats, &vi,
                  &answer.rewriting)) {
    const MaterializedView& view = views_[static_cast<size_t>(vi)];
    answer.hit = true;
    answer.view_slot = vi;
    answer.view_name = view.definition().name;
    answer.outputs = view.Apply(answer.rewriting);
    return answer;
  }
  // Fallback: no view answers the query; evaluate over the full document.
  // The thread-local kernel keeps the full-size DP tables allocated across
  // fallbacks (they are by far the largest per-query buffers).
  static thread_local EvalScratch fallback_scratch;
  answer.outputs = Eval(query, *doc_, &fallback_scratch);
  return answer;
}

CacheAnswer ViewCache::Answer(const Pattern& query) {
  return AnswerThrough(query, oracle_, &stats_);
}

CacheAnswer ViewCache::AnswerThrough(const Pattern& query,
                                     ContainmentOracle* oracle,
                                     CacheStats* stats) const {
  ++stats->queries;
  // Υ selects nothing; the rewrite engine requires nonempty patterns.
  if (query.IsEmpty()) return CacheAnswer{};
  RewriteOptions options = options_;
  options.oracle = oracle;
  const SelectionSummary summary = SummarizeSelection(query);
  return ScanViews(query, summary, -1, nullptr, options, stats);
}

CacheAnswer ViewCache::AnswerConcurrent(const Pattern& query,
                                        SynchronizedOracle* shared,
                                        CacheStats* stats) const {
  // A private shard keeps the heavy containment work outside any lock:
  // read-throughs take the shared lock, the merge the exclusive one.
  ContainmentOracle local(shared->capacity());
  shared->AttachShard(&local);
  CacheAnswer answer = AnswerThrough(query, &local, stats);
  shared->Absorb(local);
  return answer;
}

std::vector<CacheAnswer> ViewCache::AnswerMany(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool) {
  return AnswerManyImpl(queries, num_workers, pool, &pool_, nullptr, &stats_);
}

std::vector<CacheAnswer> ViewCache::AnswerManyConcurrent(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
    SynchronizedOracle* shared, CacheStats* stats) const {
  return AnswerManyImpl(queries, num_workers, pool, nullptr, shared, stats);
}

std::vector<PlannedAnswer> ViewCache::AnswerPlannedConcurrent(
    const std::vector<PlannedQuery>& queries, int num_workers,
    ThreadPool* pool, SynchronizedOracle* shared) const {
  return ExecutePlan(queries, num_workers, pool, nullptr, shared);
}

std::vector<CacheAnswer> ViewCache::AnswerManyImpl(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
    std::unique_ptr<ThreadPool>* lazy_pool, SynchronizedOracle* shared,
    CacheStats* stats) const {
  // One plan entry per *distinct* query (canonical fingerprint — the same
  // identity the oracle keys on); duplicates are fanned out at the end.
  std::deque<SelectionSummary> summaries;  // Stable addresses for the plan.
  std::vector<PlannedQuery> plan;
  std::vector<int> item_of(queries.size(), -1);
  {
    std::unordered_map<uint64_t, int> first_by_fp;
    first_by_fp.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].IsEmpty()) continue;
      const uint64_t fp = queries[i].CanonicalFingerprint();
      auto [it, inserted] =
          first_by_fp.try_emplace(fp, static_cast<int>(plan.size()));
      if (inserted) {
        summaries.push_back(SummarizeSelection(queries[i]));
        plan.push_back(PlannedQuery{&queries[i], &summaries.back()});
      }
      item_of[i] = it->second;
    }
  }

  std::vector<PlannedAnswer> planned =
      ExecutePlan(plan, num_workers, pool, lazy_pool, shared);

  // Fan the distinct answers out to the original order; statistics
  // accumulate exactly as a sequential Answer loop would have.
  std::vector<CacheAnswer> answers;
  answers.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ++stats->queries;
    if (item_of[i] < 0) {
      answers.push_back(CacheAnswer{});
      continue;
    }
    const PlannedAnswer& item = planned[static_cast<size_t>(item_of[i])];
    answers.push_back(item.answer);
    stats->hits += item.delta.hits;
    stats->rewrite_unknown += item.delta.rewrite_unknown;
  }
  return answers;
}

std::vector<PlannedAnswer> ViewCache::ExecutePlan(
    const std::vector<PlannedQuery>& queries, int num_workers,
    ThreadPool* pool, std::unique_ptr<ThreadPool>* lazy_pool,
    SynchronizedOracle* shared) const {
  std::vector<PlannedAnswer> answers(queries.size());

  // Answers entries [begin, end) through `oracle`: builds each entry's
  // candidate bundle over its first admissible view once, warms the oracle
  // with the forward pairs in one ContainedMany batch, then scans. Runs on
  // worker threads; touches only the given range and local state.
  auto process = [this, &queries, &answers](int begin, int end,
                                            ContainmentOracle* oracle) {
    RewriteOptions options = options_;
    options.oracle = oracle;
    // Recycled per-worker bundle storage (stable addresses for `pairs`):
    // the pool outlives the chunk on its worker thread, so every chunk
    // after the first rebuilds its bundles into warm buffers.
    static thread_local BundlePool bundle_pool;
    bundle_pool.Rewind();
    std::vector<const CandidateBundle*> bundle_of(
        static_cast<size_t>(end - begin), nullptr);
    std::vector<int> first_admissible(static_cast<size_t>(end - begin), -1);
    std::vector<std::pair<const Pattern*, const Pattern*>> pairs;
    pairs.reserve(2 * static_cast<size_t>(end - begin));
    for (int ii = begin; ii < end; ++ii) {
      const PlannedQuery& item = queries[static_cast<size_t>(ii)];
      const int vi = index_.FirstAdmissible(*item.summary);
      first_admissible[static_cast<size_t>(ii - begin)] = vi;
      if (vi < 0) continue;
      const CandidateBundle& bundle = bundle_pool.Build(
          *item.pattern, views_[static_cast<size_t>(vi)].definition().pattern,
          index_.view_summary(vi).depth);
      bundle_of[static_cast<size_t>(ii - begin)] = &bundle;
      AppendBundlePairs(bundle, *item.pattern, &pairs);
    }
    // discard: batch call warms the oracle's memo — the per-pair answers
    // are re-read from it by the DecideRewrite calls below.
    (void)oracle->ContainedMany(pairs);
    // Rewrite decisions first, answer production batched afterwards: the
    // chunk's hits are grouped per view so each view runs ONE anchored DP
    // for all its rewritings (`ApplyMany`), and the misses share packed
    // full-document evaluations (`MultiEvaluator`) instead of one DP pass
    // per query. Per item the produced answer — and the stats delta, which
    // `FindRewrite` fills during the decision — is identical to a
    // sequential `ScanViews`.
    std::vector<std::pair<int, int>> hits;  // (view slot, item index).
    std::vector<int> misses;
    for (int ii = begin; ii < end; ++ii) {
      const PlannedQuery& item = queries[static_cast<size_t>(ii)];
      PlannedAnswer& out = answers[static_cast<size_t>(ii)];
      out.delta.queries = 1;
      int vi = -1;
      if (FindRewrite(*item.pattern, *item.summary,
                      first_admissible[static_cast<size_t>(ii - begin)],
                      bundle_of[static_cast<size_t>(ii - begin)], options,
                      &out.delta, &vi, &out.answer.rewriting)) {
        out.answer.hit = true;
        out.answer.view_slot = vi;
        out.answer.view_name =
            views_[static_cast<size_t>(vi)].definition().name;
        hits.emplace_back(vi, ii);
      } else {
        misses.push_back(ii);
      }
    }
    std::sort(hits.begin(), hits.end());  // Group by view, items in order.
    std::vector<const Pattern*> group;
    std::vector<int> group_items;
    for (size_t h = 0; h < hits.size();) {
      const int vi = hits[h].first;
      group.clear();
      group_items.clear();
      while (h < hits.size() && hits[h].first == vi) {
        group_items.push_back(hits[h].second);
        group.push_back(
            &answers[static_cast<size_t>(hits[h].second)].answer.rewriting);
        ++h;
      }
      std::vector<std::vector<NodeId>> outs =
          views_[static_cast<size_t>(vi)].ApplyMany(group);
      for (size_t k = 0; k < group_items.size(); ++k) {
        answers[static_cast<size_t>(group_items[k])].answer.outputs =
            std::move(outs[k]);
      }
    }
    if (!misses.empty()) {
      // Full-document fallbacks, packed in bounded-width groups (plan
      // entries are nonempty by construction). The thread-local kernel
      // keeps the full-size DP tables allocated across chunks.
      static thread_local EvalScratch fallback_scratch;
      for (size_t m = 0; m < misses.size();) {
        group.clear();
        group_items.clear();
        int bits = 0;
        while (m < misses.size()) {
          const Pattern* p =
              queries[static_cast<size_t>(misses[m])].pattern;
          if (!group.empty() && bits + p->size() > kMaxPackedBits) break;
          bits += p->size();
          group.push_back(p);
          group_items.push_back(misses[m]);
          ++m;
        }
        MultiEvaluator evaluator(group, *doc_, &fallback_scratch);
        for (size_t k = 0; k < group_items.size(); ++k) {
          answers[static_cast<size_t>(group_items[k])].answer.outputs =
              evaluator.Outputs(k);
        }
      }
    }
  };

  const int n_items = static_cast<int>(queries.size());
  int workers = std::clamp(num_workers, 1, std::max(n_items, 1));
  // Concurrent callers own pool creation; without one the batch runs on
  // the calling thread (the chunk partition — and hence the answers and
  // statistics — is unaffected by how chunks are executed).
  if (pool == nullptr && lazy_pool == nullptr) workers = 1;
  if (workers <= 1 || n_items <= 1) {
    if (shared == nullptr) {
      process(0, n_items, oracle_);
    } else {
      ContainmentOracle local(shared->capacity());
      shared->AttachShard(&local);
      process(0, n_items, &local);
      shared->Absorb(local);
    }
  } else {
    if (pool == nullptr) {
      // Grow the private pool in place — never join a pool mid-life.
      if (*lazy_pool == nullptr) {
        *lazy_pool = std::make_unique<ThreadPool>(workers);
      } else {
        (*lazy_pool)->EnsureThreads(workers);
      }
      pool = lazy_pool->get();
    }
    // Per-worker shards read through the shared oracle: in single-owner
    // mode it stays frozen until every worker has finished; in
    // synchronized mode probes take the shared lock. The merge below
    // publishes the batch's new entries (and counters) back into it.
    std::vector<std::unique_ptr<ContainmentOracle>> shards;
    shards.reserve(static_cast<size_t>(workers));
    const size_t shard_capacity =
        shared != nullptr ? shared->capacity() : oracle_->capacity();
    for (int w = 0; w < workers; ++w) {
      shards.push_back(std::make_unique<ContainmentOracle>(shard_capacity));
      if (shared != nullptr) {
        shared->AttachShard(shards.back().get());
      } else {
        shards.back()->set_fallback(oracle_);
      }
    }
    // The group is awaited rather than the pool: the Service shares ONE
    // pool across concurrent batches, and this batch must not wait out
    // (or be starved by) the others' submissions. The group carries the
    // submitting call's cancel token, and each worker task re-installs it
    // as its thread's current token — the caller's deadline reaches the
    // kernels on every worker, and once it expires the still-queued
    // chunks are skipped instead of ground through.
    const CancelToken cancel = CancelScope::Current();
    ThreadPool::TaskGroup group(pool, cancel);
    const int base = n_items / workers;
    const int extra = n_items % workers;
    int begin = 0;
    for (int w = 0; w < workers; ++w) {
      const int end = begin + base + (w < extra ? 1 : 0);
      ContainmentOracle* shard = shards[static_cast<size_t>(w)].get();
      group.Submit([&process, begin, end, shard, &cancel] {
        CancelScope scope(cancel);
        PollCancellation();  // Don't start a chunk on a dead deadline.
        process(begin, end, shard);
      });
      begin = end;
    }
    group.Wait();
    // Completed shards are absorbed even when a worker failed — their
    // containment entries are valid regardless — and the first worker
    // exception then resurfaces here with its original type, for the
    // facade to map into a structured error.
    for (const auto& shard : shards) {
      if (shared != nullptr) {
        shared->Absorb(*shard);
      } else {
        oracle_->AbsorbFrom(*shard);
      }
    }
    group.RethrowIfFailed();
  }
  return answers;
}

}  // namespace xpv
