#include "views/view_cache.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include "eval/evaluator.h"
#include "rewrite/candidates.h"
#include "util/thread_pool.h"

namespace xpv {

MaterializedView::MaterializedView(ViewDefinition definition, const Tree& doc)
    : definition_(std::move(definition)), doc_(&doc) {
  outputs_ = Eval(definition_.pattern, doc);
}

std::vector<Tree> MaterializedView::MaterializeCopies() const {
  std::vector<Tree> copies;
  copies.reserve(outputs_.size());
  for (NodeId o : outputs_) copies.push_back(doc_->ExtractSubtree(o));
  return copies;
}

std::vector<NodeId> MaterializedView::Apply(const Pattern& r) const {
  if (r.IsEmpty() || outputs_.empty()) return {};
  // Anchored evaluation: the embedding DP is computed only over the union
  // of the stored subtrees, so the cost tracks the materialized result
  // size, not the document size.
  Evaluator evaluator(r, *doc_, outputs_);
  std::vector<NodeId> all;
  for (NodeId o : outputs_) {
    std::vector<NodeId> part = evaluator.OutputsAnchoredAt(o);
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ViewCache::ViewCache(const Tree& doc, RewriteOptions options,
                     ContainmentOracle* oracle)
    : doc_(&doc), options_(options) {
  if (oracle == nullptr) {
    owned_oracle_ = std::make_unique<ContainmentOracle>();
    oracle = owned_oracle_.get();
  }
  oracle_ = oracle;
  options_.oracle = oracle_;
}

ViewCache::~ViewCache() = default;
ViewCache::ViewCache(ViewCache&&) noexcept = default;
ViewCache& ViewCache::operator=(ViewCache&&) noexcept = default;

int ViewCache::AddView(ViewDefinition definition) {
  if (!free_slots_.empty()) {
    // Recycle the most recently tombstoned slot instead of growing
    // views_/active_/index_ forever under remove/re-add churn. ReplaceView
    // revives the slot (and unlinks it from the free list).
    const int slot = free_slots_.back();
    ReplaceView(slot, std::move(definition));
    return slot;
  }
  views_.emplace_back(std::move(definition), *doc_);
  active_.push_back(1);
  ++active_views_;
  index_.Add(views_.back().definition().pattern);
  ++epoch_;
  return static_cast<int>(views_.size()) - 1;
}

void ViewCache::ReplaceView(int index, ViewDefinition definition) {
  const size_t i = static_cast<size_t>(index);
  views_[i] = MaterializedView(std::move(definition), *doc_);
  index_.Replace(index, views_[i].definition().pattern);
  if (active_[i] == 0) {
    // Reviving a tombstone: unlink it from the free list, or a later
    // AddView would recycle the slot and clobber this live view.
    free_slots_.erase(
        std::remove(free_slots_.begin(), free_slots_.end(), index),
        free_slots_.end());
    active_[i] = 1;
    ++active_views_;
  }
  ++epoch_;
}

void ViewCache::RemoveView(int index) {
  const size_t i = static_cast<size_t>(index);
  if (active_[i] == 0) return;
  views_[i] = MaterializedView();  // Drop the materialized data.
  index_.Remove(index);
  active_[i] = 0;
  --active_views_;
  free_slots_.push_back(index);
  ++epoch_;
}

CacheAnswer ViewCache::ScanViews(const Pattern& query,
                                 const SelectionSummary& summary,
                                 int prebuilt_vi,
                                 const CandidateBundle* prebuilt,
                                 const RewriteOptions& options,
                                 CacheStats* stats) const {
  CacheAnswer answer;
  for (int vi = 0; vi < index_.size(); ++vi) {
    // O(1) pruning: views that fail the necessary conditions never reach
    // the engine (this is what `ViolatesBasicNecessaryConditions` would
    // certify as kNotExists).
    if (!index_.Admissible(summary, vi)) continue;
    const MaterializedView& view = views_[static_cast<size_t>(vi)];
    const Pattern& vp = view.definition().pattern;
    CandidateBundle local;
    const CandidateBundle* bundle = prebuilt;
    if (vi != prebuilt_vi || bundle == nullptr) {
      local = MakeCandidateBundle(query, vp, index_.view_summary(vi).depth);
      bundle = &local;
    }
    RewriteResult result = DecideRewrite(query, vp, options, bundle);
    if (result.status == RewriteStatus::kFound) {
      answer.hit = true;
      answer.view_name = view.definition().name;
      answer.rewriting = result.rewriting;
      answer.outputs = view.Apply(result.rewriting);
      ++stats->hits;
      return answer;
    }
    if (result.status == RewriteStatus::kUnknown) ++stats->rewrite_unknown;
  }
  answer.outputs = Eval(query, *doc_);
  return answer;
}

CacheAnswer ViewCache::Answer(const Pattern& query) {
  return AnswerThrough(query, oracle_, &stats_);
}

CacheAnswer ViewCache::AnswerThrough(const Pattern& query,
                                     ContainmentOracle* oracle,
                                     CacheStats* stats) const {
  ++stats->queries;
  // Υ selects nothing; the rewrite engine requires nonempty patterns.
  if (query.IsEmpty()) return CacheAnswer{};
  RewriteOptions options = options_;
  options.oracle = oracle;
  const SelectionSummary summary = SummarizeSelection(query);
  return ScanViews(query, summary, -1, nullptr, options, stats);
}

CacheAnswer ViewCache::AnswerConcurrent(const Pattern& query,
                                        SynchronizedOracle* shared,
                                        CacheStats* stats) const {
  // A private shard keeps the heavy containment work outside any lock:
  // read-throughs take the shared lock, the merge the exclusive one.
  ContainmentOracle local(shared->capacity());
  shared->AttachShard(&local);
  CacheAnswer answer = AnswerThrough(query, &local, stats);
  shared->Absorb(local);
  return answer;
}

std::vector<CacheAnswer> ViewCache::AnswerMany(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool) {
  return AnswerManyImpl(queries, num_workers, pool, &pool_, nullptr, &stats_);
}

std::vector<CacheAnswer> ViewCache::AnswerManyConcurrent(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
    SynchronizedOracle* shared, CacheStats* stats) const {
  return AnswerManyImpl(queries, num_workers, pool, nullptr, shared, stats);
}

std::vector<PlannedAnswer> ViewCache::AnswerPlannedConcurrent(
    const std::vector<PlannedQuery>& queries, int num_workers,
    ThreadPool* pool, SynchronizedOracle* shared) const {
  return ExecutePlan(queries, num_workers, pool, nullptr, shared);
}

std::vector<CacheAnswer> ViewCache::AnswerManyImpl(
    const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
    std::unique_ptr<ThreadPool>* lazy_pool, SynchronizedOracle* shared,
    CacheStats* stats) const {
  // One plan entry per *distinct* query (canonical fingerprint — the same
  // identity the oracle keys on); duplicates are fanned out at the end.
  std::deque<SelectionSummary> summaries;  // Stable addresses for the plan.
  std::vector<PlannedQuery> plan;
  std::vector<int> item_of(queries.size(), -1);
  {
    std::unordered_map<uint64_t, int> first_by_fp;
    first_by_fp.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].IsEmpty()) continue;
      const uint64_t fp = queries[i].CanonicalFingerprint();
      auto [it, inserted] =
          first_by_fp.try_emplace(fp, static_cast<int>(plan.size()));
      if (inserted) {
        summaries.push_back(SummarizeSelection(queries[i]));
        plan.push_back(PlannedQuery{&queries[i], &summaries.back()});
      }
      item_of[i] = it->second;
    }
  }

  std::vector<PlannedAnswer> planned =
      ExecutePlan(plan, num_workers, pool, lazy_pool, shared);

  // Fan the distinct answers out to the original order; statistics
  // accumulate exactly as a sequential Answer loop would have.
  std::vector<CacheAnswer> answers;
  answers.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ++stats->queries;
    if (item_of[i] < 0) {
      answers.push_back(CacheAnswer{});
      continue;
    }
    const PlannedAnswer& item = planned[static_cast<size_t>(item_of[i])];
    answers.push_back(item.answer);
    stats->hits += item.delta.hits;
    stats->rewrite_unknown += item.delta.rewrite_unknown;
  }
  return answers;
}

std::vector<PlannedAnswer> ViewCache::ExecutePlan(
    const std::vector<PlannedQuery>& queries, int num_workers,
    ThreadPool* pool, std::unique_ptr<ThreadPool>* lazy_pool,
    SynchronizedOracle* shared) const {
  std::vector<PlannedAnswer> answers(queries.size());

  // Answers entries [begin, end) through `oracle`: builds each entry's
  // candidate bundle over its first admissible view once, warms the oracle
  // with the forward pairs in one ContainedMany batch, then scans. Runs on
  // worker threads; touches only the given range and local state.
  auto process = [this, &queries, &answers](int begin, int end,
                                            ContainmentOracle* oracle) {
    RewriteOptions options = options_;
    options.oracle = oracle;
    std::deque<CandidateBundle> bundles;  // Stable addresses for `pairs`.
    std::vector<const CandidateBundle*> bundle_of(
        static_cast<size_t>(end - begin), nullptr);
    std::vector<int> first_admissible(static_cast<size_t>(end - begin), -1);
    std::vector<std::pair<const Pattern*, const Pattern*>> pairs;
    pairs.reserve(2 * static_cast<size_t>(end - begin));
    for (int ii = begin; ii < end; ++ii) {
      const PlannedQuery& item = queries[static_cast<size_t>(ii)];
      const int vi = index_.FirstAdmissible(*item.summary);
      first_admissible[static_cast<size_t>(ii - begin)] = vi;
      if (vi < 0) continue;
      bundles.push_back(MakeCandidateBundle(
          *item.pattern, views_[static_cast<size_t>(vi)].definition().pattern,
          index_.view_summary(vi).depth));
      bundle_of[static_cast<size_t>(ii - begin)] = &bundles.back();
      AppendBundlePairs(bundles.back(), *item.pattern, &pairs);
    }
    oracle->ContainedMany(pairs);
    for (int ii = begin; ii < end; ++ii) {
      const PlannedQuery& item = queries[static_cast<size_t>(ii)];
      PlannedAnswer& out = answers[static_cast<size_t>(ii)];
      out.delta.queries = 1;
      out.answer = ScanViews(
          *item.pattern, *item.summary,
          first_admissible[static_cast<size_t>(ii - begin)],
          bundle_of[static_cast<size_t>(ii - begin)], options, &out.delta);
    }
  };

  const int n_items = static_cast<int>(queries.size());
  int workers = std::clamp(num_workers, 1, std::max(n_items, 1));
  // Concurrent callers own pool creation; without one the batch runs on
  // the calling thread (the chunk partition — and hence the answers and
  // statistics — is unaffected by how chunks are executed).
  if (pool == nullptr && lazy_pool == nullptr) workers = 1;
  if (workers <= 1 || n_items <= 1) {
    if (shared == nullptr) {
      process(0, n_items, oracle_);
    } else {
      ContainmentOracle local(shared->capacity());
      shared->AttachShard(&local);
      process(0, n_items, &local);
      shared->Absorb(local);
    }
  } else {
    if (pool == nullptr) {
      // Grow the private pool in place — never join a pool mid-life.
      if (*lazy_pool == nullptr) {
        *lazy_pool = std::make_unique<ThreadPool>(workers);
      } else {
        (*lazy_pool)->EnsureThreads(workers);
      }
      pool = lazy_pool->get();
    }
    // Per-worker shards read through the shared oracle: in single-owner
    // mode it stays frozen until every worker has finished; in
    // synchronized mode probes take the shared lock. The merge below
    // publishes the batch's new entries (and counters) back into it.
    std::vector<std::unique_ptr<ContainmentOracle>> shards;
    shards.reserve(static_cast<size_t>(workers));
    const size_t shard_capacity =
        shared != nullptr ? shared->capacity() : oracle_->capacity();
    for (int w = 0; w < workers; ++w) {
      shards.push_back(std::make_unique<ContainmentOracle>(shard_capacity));
      if (shared != nullptr) {
        shared->AttachShard(shards.back().get());
      } else {
        shards.back()->set_fallback(oracle_);
      }
    }
    // The group is awaited rather than the pool: the Service shares ONE
    // pool across concurrent batches, and this batch must not wait out
    // (or be starved by) the others' submissions.
    ThreadPool::TaskGroup group(pool);
    const int base = n_items / workers;
    const int extra = n_items % workers;
    int begin = 0;
    for (int w = 0; w < workers; ++w) {
      const int end = begin + base + (w < extra ? 1 : 0);
      ContainmentOracle* shard = shards[static_cast<size_t>(w)].get();
      group.Submit([&process, begin, end, shard] {
        process(begin, end, shard);
      });
      begin = end;
    }
    group.Wait();
    for (const auto& shard : shards) {
      if (shared != nullptr) {
        shared->Absorb(*shard);
      } else {
        oracle_->AbsorbFrom(*shard);
      }
    }
  }
  return answers;
}

}  // namespace xpv
