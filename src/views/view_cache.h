#ifndef XPV_VIEWS_VIEW_CACHE_H_
#define XPV_VIEWS_VIEW_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "containment/oracle.h"
#include "pattern/pattern.h"
#include "rewrite/engine.h"
#include "util/memory_budget.h"
#include "views/view_index.h"
#include "xml/tree.h"

namespace xpv {

class IncrementalEvaluator;
class ThreadPool;

/// A named view definition.
struct ViewDefinition {
  std::string name;
  Pattern pattern;
};

/// A view materialized over one document: V has been applied to `doc` and
/// the result V(doc) — a set of subtrees of doc, identified by their root
/// nodes — is stored (Section 2.4).
///
/// Subtrees are kept as node ids into the original document rather than
/// deep copies: applying a rewriting R to the view then amounts to
/// evaluating R anchored at each stored node, which is exactly R(V(t)).
/// The anchored evaluation computes its embedding DP only over the stored
/// subtrees, so `Apply` costs O(|V(t)|-region), not O(|doc|) — the paper's
/// "answering through the view is insensitive to the rest of the
/// document". `MaterializeCopies()` produces standalone subtree copies
/// when a shipped-result cache is being simulated (see bench_view_cache).
class MaterializedView {
 public:
  /// Evaluates `definition.pattern` over `doc`. `doc` must outlive this.
  MaterializedView(ViewDefinition definition, const Tree& doc);

  /// An inert tombstone (empty definition, no outputs) — the state of a
  /// removed view slot awaiting reuse. `Apply` answers empty; `doc()` must
  /// not be called.
  MaterializedView() : definition_{std::string(), Pattern::Empty()} {}

  // Move-only (the persistent evaluator state is uniquely owned); defined
  // out of line — `IncrementalEvaluator` is incomplete here.
  ~MaterializedView();
  MaterializedView(MaterializedView&&) noexcept;
  MaterializedView& operator=(MaterializedView&&) noexcept;

  const ViewDefinition& definition() const { return definition_; }
  const Tree& doc() const { return *doc_; }

  /// Root nodes (in `doc`) of the subtrees in V(doc), sorted.
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Deep copies of the result subtrees.
  [[nodiscard]] std::vector<Tree> MaterializeCopies() const;

  /// Applies a rewriting `r` to the materialized result: the union over
  /// o in outputs() of r(doc^o), as sorted node ids of `doc`. By
  /// Proposition 2.4 this equals (r ∘ V)(doc).
  [[nodiscard]] std::vector<NodeId> Apply(const Pattern& r) const;

  /// Estimated heap bytes held by this view (stored output ids, name,
  /// definition pattern) — what the owning cache charges against the
  /// service's `MemoryBudget`.
  size_t EstimatedBytes() const;

  /// `Apply` for several rewritings at once, sharing the anchored
  /// embedding DP over the stored subtrees: the group is packed into one
  /// bit space (`MultiEvaluator`), so n small rewritings cost roughly one
  /// DP pass plus n cheap selection sweeps instead of n passes. Result i
  /// equals `Apply(*rs[i])` exactly (empty rewritings yield empty
  /// results). The batched-answering path groups a cold batch's hits per
  /// view through this.
  [[nodiscard]] std::vector<std::vector<NodeId>> ApplyMany(
      const std::vector<const Pattern*>& rs) const;

  // ------------------------------------------------- incremental updates
  //
  // The owning cache drives these after `Tree::ApplyDelta` mutated the
  // document in place (same `Tree` object — `doc()` stays valid). A view
  // may only be updated while settled in its cache slot: the persistent
  // evaluator state created here points into this object's `definition_`,
  // so it must never be created on a view that will still be moved.

  /// Patches the stored result set after a delta this view is dirty
  /// under. Reuses the persistent bit-parallel DP state when present —
  /// remapping rows under compaction and recomputing only the delta's
  /// suffix and dirty-ancestor rows — and builds it with one full DP pass
  /// when absent (first dirty update, or the state was dropped by a
  /// skipped delta). Returns true on the incremental path, false when the
  /// full pass ran. Afterwards `outputs()` equals a fresh evaluation of
  /// the definition over the mutated document, bit for bit.
  [[nodiscard]] bool ApplyUpdate(const TreeDeltaReport& report);

  /// Rewrites the stored output ids through a compaction remap. Only
  /// valid on views the delta provably did not affect (every output
  /// survives); sorted order is preserved (remaps are order-preserving).
  void RemapOutputs(const std::vector<NodeId>& remap);

  /// Re-evaluates the view from scratch in place (the fallback when a
  /// delta's dirty region is too large) and drops the persistent DP state.
  void Rematerialize();

  /// Drops the persistent DP state. Called on views that skip a delta:
  /// their DP rows describe a tree shape that is now stale, so the next
  /// dirty update must rebuild rather than patch.
  void DropIncrementalState() { inc_.reset(); }

 private:
  ViewDefinition definition_;
  const Tree* doc_ = nullptr;
  std::vector<NodeId> outputs_;
  /// Persistent row state of the embedding DP over (pattern, doc), kept
  /// across updates so a delta recomputes only its affected rows. Lazily
  /// built by the first dirty `ApplyUpdate`; null until then and for
  /// views that never see a dirty delta.
  std::unique_ptr<IncrementalEvaluator> inc_;
};

/// Outcome of answering one query through the cache.
struct CacheAnswer {
  /// True if some cached view admitted an equivalent rewriting.
  bool hit = false;
  /// Slot index of the view used (when hit), -1 otherwise. The memo layer
  /// keys validity on it: a hit answer stays valid while that view's
  /// per-view epoch stands, a miss answer only while the whole document
  /// does (see `ViewCache::view_epoch`/`doc_epoch`).
  int view_slot = -1;
  /// Name of the view used (when hit).
  std::string view_name;
  /// The rewriting applied (when hit).
  Pattern rewriting = Pattern::Empty();
  /// Query result, as sorted node ids of the document. Always filled:
  /// on a miss the query is evaluated directly against the document.
  std::vector<NodeId> outputs;
};

/// Aggregate statistics of a cache session.
struct CacheStats {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t rewrite_unknown = 0;  ///< Queries where some view got kUnknown.
};

/// One pre-resolved entry of a batch plan: a *distinct* (by canonical
/// fingerprint) nonempty query whose selection summary was already built by
/// the planner. `Service::AnswerBatch` canonicalizes a cross-document batch
/// once — parse, fingerprint, summary per distinct query, service-wide —
/// and hands every document slice these shared entries, so the per-query
/// setup cost is paid once per batch instead of once per (document, query).
/// Both pointers must stay alive and unmoved for the duration of the call.
struct PlannedQuery {
  const Pattern* pattern = nullptr;
  const SelectionSummary* summary = nullptr;
};

/// The answer of one planned (distinct) query plus the serving-stats delta
/// of its scan (`delta.queries == 1`). The caller fans duplicates out by
/// replaying the delta per request — and the `AnswerCache` memoizes the
/// pair, so a memo hit is stats-identical to an unmemoized scan.
struct PlannedAnswer {
  CacheAnswer answer;
  CacheStats delta;
};

/// What one `ViewCache::ApplyUpdate` did to the view set — the facade
/// folds these into the service's update counters.
struct ViewUpdateStats {
  int views_patched = 0;         ///< Incrementally patched via the DP state.
  int views_rematerialized = 0;  ///< Paid a full evaluation pass.
  int views_untouched = 0;       ///< Provably unaffected: no evaluation.
  bool fell_back = false;  ///< Dirty region over threshold: full rebuild.
};

/// A materialized-view cache over a single document: the end-to-end
/// application from the paper's introduction (answering queries from
/// cached views). For each query P it consults the view-pruning index
/// (per-view selection summaries built at `AddView` time), then asks the
/// rewrite engine for an equivalent rewriting R with R ∘ V ≡ P over each
/// admissible view, and on success answers R(V(t)) without touching the
/// parts of the document outside the view; otherwise it falls back to
/// direct evaluation.
///
/// `AnswerMany` runs the batched pipeline: index pruning → one candidate
/// bundle per distinct (query, first-admissible-view) pair, shared between
/// the oracle warm-up and the engine → optional worker-parallel answering
/// over per-worker oracle shards that read through the (frozen) shared
/// oracle and are merged back afterwards (`ContainmentOracle::AbsorbFrom`).
class ViewCache {
 public:
  /// `doc` must outlive the cache. When `oracle` is non-null the cache
  /// uses it instead of creating its own — the multi-document
  /// `xpv::Service` injects ONE shared oracle into every per-document
  /// cache so equivalence tests amortize across documents; it is not
  /// owned and must outlive the cache. When null, the cache owns a
  /// private oracle (heap-allocated, so moving the cache is safe).
  explicit ViewCache(const Tree& doc, RewriteOptions options = {},
                     ContainmentOracle* oracle = nullptr);
  ~ViewCache();

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  // Movable: the oracle lives on the heap (or externally), so the
  // `options_.oracle` pointer stays valid across moves. A moved-from
  // cache may only be destroyed or assigned to. (Defined out of line —
  // the defaulted bodies need the complete ThreadPool type.)
  ViewCache(ViewCache&&) noexcept;
  ViewCache& operator=(ViewCache&&) noexcept;

  /// Materializes and registers a view. Returns its slot index: a
  /// tombstoned slot when one is free (remove/re-add churn recycles slots
  /// instead of growing `views()` and the index forever), otherwise a new
  /// slot at the end of `views()`. Recycling preserves the deque's
  /// pointer-stability guarantee — live slots never move either way.
  int AddView(ViewDefinition definition);

  /// Re-materializes slot `index` with a new definition — the slot-reuse
  /// half of the remove/re-add lifecycle (`xpv::Service` recycles removed
  /// view slots through this). The slot keeps its position in the
  /// deterministic probe order.
  void ReplaceView(int index, ViewDefinition definition);

  /// Tombstones slot `index`: the view stops answering, its materialized
  /// data is dropped, and the slot can be revived with `ReplaceView`.
  void RemoveView(int index);

  /// True when slot `index` holds a live (non-tombstoned) view.
  bool view_active(int index) const {
    return index >= 0 && index < static_cast<int>(views_.size()) &&
           active_[static_cast<size_t>(index)] != 0;
  }

  /// Number of live views (`views().size()` minus the tombstoned slots).
  int num_active_views() const { return active_views_; }

  /// Applies the consequences of a document delta (already applied to the
  /// tree via `Tree::ApplyDelta`) to every live view. Per view it decides
  /// dirtiness from the selection summary (`DeltaMayAffectView`): dirty
  /// views are incrementally patched (or pay one full pass when their DP
  /// state is cold) and bump their per-view epoch; provably untouched
  /// views do no evaluation at all — at most an output-id remap under
  /// compaction — and keep their epoch, so their memoized answers stay
  /// valid. When the dirty region exceeds `fallback_fraction` of the new
  /// document, every view is fully re-materialized instead (worst case is
  /// never worse than a document replace). Bumps `doc_epoch()` (and the
  /// shape `epoch()` too when the delta compacted node ids, which
  /// invalidates every stored id). Not thread-safe — the facade holds the
  /// document stripe exclusively.
  [[nodiscard]] ViewUpdateStats ApplyUpdate(const TreeDeltaReport& report,
                                            double fallback_fraction);

  /// The view-set epoch: a monotonic counter bumped by every `AddView`,
  /// `ReplaceView` and `RemoveView` — and by every `ApplyUpdate` whose
  /// delta compacted node ids (stored ids went stale cache-wide). Answers
  /// are a pure function of (document, view set, query), so an
  /// epoch-tagged answer is valid exactly while the epoch stands — the
  /// `AnswerCache` keys on it and invalidation is one integer compare
  /// (see the epoch contract there).
  uint64_t epoch() const { return epoch_; }

  /// The document epoch: bumped by every non-empty `ApplyUpdate`. The
  /// validity stamp of memoized *miss* answers — they were computed over
  /// the whole document, so any update invalidates them.
  uint64_t doc_epoch() const { return doc_epoch_; }

  /// The per-view epoch of slot `slot`: bumped when the view's definition
  /// changes (`AddView`/`ReplaceView`/`RemoveView` on that slot) and when
  /// an update dirties the view — either its output set may have changed
  /// (`DeltaMayAffectView`) or the delta spliced content inside one of its
  /// result subtrees (a rewriting applied through the view reads that
  /// content). The validity stamp of memoized *hit* answers through this
  /// view: updates that provably don't affect the view leave its epoch —
  /// and so its memoized answers — untouched.
  uint64_t view_epoch(int slot) const {
    return view_epochs_[static_cast<size_t>(slot)];
  }

  /// All view slots, including tombstones (check `view_active`). A deque
  /// so growth never moves existing elements: pointers into a slot (e.g.
  /// `Service::view`'s `ViewDefinition*`) stay valid until that slot is
  /// removed or replaced, even across concurrent `AddView`s.
  const std::deque<MaterializedView>& views() const { return views_; }

  /// Answers `query` (see CacheAnswer).
  [[nodiscard]] CacheAnswer Answer(const Pattern& query);

  /// Answers a batch of queries; the result (answers and `stats()` deltas)
  /// is identical to looping `Answer`, for every worker count.
  ///
  /// Batch-level work sharing: duplicate queries (by canonical
  /// fingerprint) are answered once; each distinct query's
  /// natural-candidate bundle over its first admissible view is built
  /// exactly once and shared between the `ContainedMany` oracle warm-up
  /// and `DecideRewrite`. With `num_workers` > 1 the distinct queries are
  /// partitioned into `num_workers` chunks over a worker pool; each chunk
  /// answers through its own oracle shard (reading through the shared
  /// oracle, which is frozen for the duration of the batch), and the
  /// shards are absorbed into the shared oracle afterwards, so the whole
  /// batch is lock-free.
  ///
  /// `pool`, when non-null, supplies the worker threads (not owned; the
  /// `Service` layer shares ONE pool across all documents). Its thread
  /// count need not match `num_workers` — the chunk/shard partition, and
  /// hence the answers and statistics, depend only on `num_workers`.
  /// When null, the cache lazily creates a private pool.
  [[nodiscard]] std::vector<CacheAnswer> AnswerMany(
      const std::vector<Pattern>& queries, int num_workers = 1,
      ThreadPool* pool = nullptr);

  // ------------------------------------------------- concurrent serving
  //
  // The const entry points below are the thread-safe `xpv::Service` path:
  // they touch no ViewCache state (`stats_`, the owned oracle and the lazy
  // pool stay untouched), answer through caller-provided oracles, and
  // report statistics into a caller-owned delta. The caller must hold the
  // view set stable for the duration of the call (the Service's per-shard
  // stripe lock, in shared mode) — answers are identical to the mutating
  // `Answer`/`AnswerMany` for every worker count.

  /// Answers one query through `oracle` (read: a per-call shard the caller
  /// later absorbs into its shared oracle). Adds the query/hit/unknown
  /// counts of this one scan onto `*stats`.
  [[nodiscard]] CacheAnswer AnswerThrough(const Pattern& query,
                                          ContainmentOracle* oracle,
                                          CacheStats* stats) const;

  /// Answers one query via a private shard attached to `shared`
  /// (read-through under the shared lock, absorbed back afterwards).
  [[nodiscard]] CacheAnswer AnswerConcurrent(const Pattern& query,
                                             SynchronizedOracle* shared,
                                             CacheStats* stats) const;

  /// The batched pipeline against a synchronized shared oracle: worker
  /// shards read through `shared` under its shared lock and are absorbed
  /// back under the exclusive lock. `pool` must be non-null when
  /// `num_workers` > 1 (the Service owns pool creation); when null the
  /// batch degrades to one worker. Answers and statistics are identical
  /// to `AnswerMany` for every worker count.
  [[nodiscard]] std::vector<CacheAnswer> AnswerManyConcurrent(
      const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
      SynchronizedOracle* shared, CacheStats* stats) const;

  /// The planner's flavor of the batched pipeline: `queries` are already
  /// distinct, nonempty and summarized (one `PlannedQuery` per canonical
  /// fingerprint — the `Service` batch planner builds them once across all
  /// documents), so this runs only the per-(document, query) work: first
  /// admissible view, candidate bundle, oracle warm-up, scan. Returns one
  /// `PlannedAnswer` per entry, in order; `delta.queries` is always 1.
  /// Same locking contract and worker semantics as `AnswerManyConcurrent`
  /// — for identical inputs the answers and deltas are identical to it
  /// for every worker count.
  [[nodiscard]] std::vector<PlannedAnswer> AnswerPlannedConcurrent(
      const std::vector<PlannedQuery>& queries, int num_workers,
      ThreadPool* pool, SynchronizedOracle* shared) const;

  /// Points materialized-result byte accounting at the service's shared
  /// `MemoryBudget` (not owned; may be null). Charges the bytes of any
  /// views already resident. Setup-time only — must not race serving.
  void SetMemoryBudget(MemoryBudget* budget) {
    charge_ = ScopedCharge(budget);
    size_t total = 0;
    for (size_t b : slot_bytes_) total += b;
    charge_.Set(total);
  }

  /// Estimated bytes of all live materialized results.
  size_t resident_view_bytes() const { return charge_.bytes(); }

  const CacheStats& stats() const { return stats_; }

  /// The cache's memoizing containment oracle (repeated queries amortize
  /// their equivalence tests through it).
  const ContainmentOracle& oracle() const { return *oracle_; }

  /// The view-pruning index (per-view selection summaries).
  const ViewIndex& index() const { return index_; }

 private:
  /// The rewrite-decision half of a view scan: probes the admissible views
  /// for `query` (summarized as `summary`) in registration order;
  /// `prebuilt` optionally supplies the candidate bundle for view
  /// `prebuilt_vi`. On the first view admitting an equivalent rewriting,
  /// stores its slot in `*vi_out`, the rewriting in `*rewriting_out`,
  /// counts the hit, and returns true; otherwise returns false (the caller
  /// owns the fallback evaluation). Thread-safe: everything mutable is
  /// reached through `options`/`stats`.
  bool FindRewrite(const Pattern& query, const SelectionSummary& summary,
                   int prebuilt_vi, const CandidateBundle* prebuilt,
                   const RewriteOptions& options, CacheStats* stats,
                   int* vi_out, Pattern* rewriting_out) const;

  /// `FindRewrite` plus the answer production: applies the rewriting on a
  /// hit, evaluates the query over the full document on a miss. The
  /// sequential serving path; the batched pipeline calls `FindRewrite`
  /// directly and batches the applies/fallbacks per document instead.
  CacheAnswer ScanViews(const Pattern& query, const SelectionSummary& summary,
                        int prebuilt_vi, const CandidateBundle* prebuilt,
                        const RewriteOptions& options,
                        CacheStats* stats) const;

  /// The shared batch pipeline behind `AnswerMany` (shared == nullptr:
  /// single-owner mode on `oracle_`, with `lazy_pool` supplying the
  /// private pool when no external one is given) and
  /// `AnswerManyConcurrent` (shared != nullptr: shards read through /
  /// absorb into `shared`; `lazy_pool` is null — the caller owns pools).
  /// Dedups + summarizes, then runs `ExecutePlan` and fans the distinct
  /// answers back out.
  std::vector<CacheAnswer> AnswerManyImpl(
      const std::vector<Pattern>& queries, int num_workers, ThreadPool* pool,
      std::unique_ptr<ThreadPool>* lazy_pool, SynchronizedOracle* shared,
      CacheStats* stats) const;

  /// The execution core: answers the distinct, summarized `queries`
  /// (bundle + warm-up + scan), partitioned over `num_workers` oracle
  /// shards. The chunk partition depends only on (queries.size(),
  /// num_workers), so answers and deltas are worker-count-invariant.
  std::vector<PlannedAnswer> ExecutePlan(
      const std::vector<PlannedQuery>& queries, int num_workers,
      ThreadPool* pool, std::unique_ptr<ThreadPool>* lazy_pool,
      SynchronizedOracle* shared) const;

  const Tree* doc_;
  RewriteOptions options_;  // options_.oracle == oracle_.
  std::unique_ptr<ContainmentOracle> owned_oracle_;  // Null when injected.
  ContainmentOracle* oracle_;  // owned_oracle_.get() or the injected one.
  std::deque<MaterializedView> views_;  // Stable slots; see views().
  std::vector<char> active_;  // Parallel to views_: 0 = tombstoned slot.
  std::vector<size_t> slot_bytes_;  // Parallel to views_: charged bytes.
  ScopedCharge charge_;  // Running budget charge for the live views.
  std::vector<int> free_slots_;  // Tombstoned slots awaiting AddView reuse.
  int active_views_ = 0;
  uint64_t epoch_ = 0;  // See epoch().
  uint64_t doc_epoch_ = 0;  // See doc_epoch().
  std::vector<uint64_t> view_epochs_;  // Parallel to views_; see view_epoch().
  ViewIndex index_;
  CacheStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // Lazily created by AnswerMany when
                                      // no external pool is supplied.
};

}  // namespace xpv

#endif  // XPV_VIEWS_VIEW_CACHE_H_
