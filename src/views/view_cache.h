#ifndef XPV_VIEWS_VIEW_CACHE_H_
#define XPV_VIEWS_VIEW_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "containment/oracle.h"
#include "pattern/pattern.h"
#include "rewrite/engine.h"
#include "xml/tree.h"

namespace xpv {

/// A named view definition.
struct ViewDefinition {
  std::string name;
  Pattern pattern;
};

/// A view materialized over one document: V has been applied to `doc` and
/// the result V(doc) — a set of subtrees of doc, identified by their root
/// nodes — is stored (Section 2.4).
///
/// Subtrees are kept as node ids into the original document rather than
/// deep copies: applying a rewriting R to the view then amounts to
/// evaluating R anchored at each stored node, which is exactly R(V(t)).
/// `MaterializeCopies()` produces standalone subtree copies when a
/// shipped-result cache is being simulated (see bench_view_cache).
class MaterializedView {
 public:
  /// Evaluates `definition.pattern` over `doc`. `doc` must outlive this.
  MaterializedView(ViewDefinition definition, const Tree& doc);

  const ViewDefinition& definition() const { return definition_; }
  const Tree& doc() const { return *doc_; }

  /// Root nodes (in `doc`) of the subtrees in V(doc), sorted.
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Deep copies of the result subtrees.
  std::vector<Tree> MaterializeCopies() const;

  /// Applies a rewriting `r` to the materialized result: the union over
  /// o in outputs() of r(doc^o), as sorted node ids of `doc`. By
  /// Proposition 2.4 this equals (r ∘ V)(doc).
  std::vector<NodeId> Apply(const Pattern& r) const;

 private:
  ViewDefinition definition_;
  const Tree* doc_;
  std::vector<NodeId> outputs_;
};

/// Outcome of answering one query through the cache.
struct CacheAnswer {
  /// True if some cached view admitted an equivalent rewriting.
  bool hit = false;
  /// Name of the view used (when hit).
  std::string view_name;
  /// The rewriting applied (when hit).
  Pattern rewriting = Pattern::Empty();
  /// Query result, as sorted node ids of the document. Always filled:
  /// on a miss the query is evaluated directly against the document.
  std::vector<NodeId> outputs;
};

/// Aggregate statistics of a cache session.
struct CacheStats {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t rewrite_unknown = 0;  ///< Queries where some view got kUnknown.
};

/// A materialized-view cache over a single document: the end-to-end
/// application from the paper's introduction (answering queries from
/// cached views). For each query P it scans the cached views, asks the
/// rewrite engine for an equivalent rewriting R with R ∘ V ≡ P, and on
/// success answers R(V(t)) without touching the parts of the document
/// outside the view; otherwise it falls back to direct evaluation.
class ViewCache {
 public:
  /// `doc` must outlive the cache.
  explicit ViewCache(const Tree& doc, RewriteOptions options = {});

  // Not copyable or movable (the engine options point at the internal
  // oracle).
  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// Materializes and registers a view. Returns its index.
  int AddView(ViewDefinition definition);

  const std::vector<MaterializedView>& views() const { return views_; }

  /// Answers `query` (see CacheAnswer).
  CacheAnswer Answer(const Pattern& query);

  /// Answers a batch of queries. Before the per-query scans, the
  /// natural-candidate containment tests each query is guaranteed to need
  /// (those of its first admissible view, forward direction) are pushed
  /// through the oracle's `ContainedMany` in one call, so fingerprints are
  /// shared across the batch and the scans answer from the cache.
  std::vector<CacheAnswer> AnswerMany(const std::vector<Pattern>& queries);

  const CacheStats& stats() const { return stats_; }

  /// The cache's memoizing containment oracle (repeated queries amortize
  /// their equivalence tests through it).
  const ContainmentOracle& oracle() const { return oracle_; }

 private:
  const Tree* doc_;
  RewriteOptions options_;
  ContainmentOracle oracle_;
  std::vector<MaterializedView> views_;
  CacheStats stats_;
};

}  // namespace xpv

#endif  // XPV_VIEWS_VIEW_CACHE_H_
