#ifndef XPV_VIEWS_VIEW_SELECTION_H_
#define XPV_VIEWS_VIEW_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

class ContainmentOracle;

/// A query with a frequency weight (how often it is asked).
struct WorkloadQuery {
  Pattern pattern = Pattern::Empty();
  double weight = 1.0;
};

/// A candidate view together with the workload queries it can answer.
struct CandidateView {
  Pattern pattern = Pattern::Empty();
  /// Indices into the workload of queries with an equivalent rewriting
  /// over this view.
  std::vector<int> answers;
  /// Total weight of those queries.
  double covered_weight = 0.0;
  /// Materialization-cost proxy: the view's depth (shallower views select
  /// more of the document and cost more to store).
  int depth = 0;
};

/// Result of view selection.
struct ViewSelectionResult {
  /// Chosen views (subset of the candidates, in selection order).
  std::vector<CandidateView> chosen;
  /// Weight of workload queries answerable from at least one chosen view.
  double covered_weight = 0.0;
  /// Total workload weight.
  double total_weight = 0.0;
};

/// Options for view selection.
struct ViewSelectionOptions {
  /// Maximum number of views to select.
  int max_views = 3;
  /// Per-query rewrite decisions use the standard engine; kUnknown counts
  /// as not answerable (sound under-approximation).
  /// Optional shared containment oracle. Candidate scoring asks
  /// O(#views * #queries) overlapping equivalence questions; a shared
  /// oracle amortizes them. Not owned; may be null (a call-local oracle is
  /// used then).
  ContainmentOracle* oracle = nullptr;
};

/// Enumerates candidate views for a workload: all proper selection-path
/// prefixes P≤k (1 <= k < depth) of every workload query, deduplicated,
/// each scored by the workload weight it covers (via the rewrite engine).
/// This is the natural candidate space: prefix views always answer their
/// own query. The k = 0 prefix (a view materializing essentially the
/// whole document) is deliberately excluded.
///
/// Scoring batches the natural-candidate containment tests of each view
/// against the whole workload through `ContainmentOracle::ContainedMany`
/// before running the per-query engine decisions, which then hit the
/// oracle's cache.
std::vector<CandidateView> EnumerateCandidateViews(
    const std::vector<WorkloadQuery>& workload,
    ContainmentOracle* oracle = nullptr);

/// Greedy weighted set cover over the candidate views: repeatedly picks
/// the candidate covering the most yet-uncovered workload weight, up to
/// `options.max_views`. This is the classical (1 - 1/e)-approximation for
/// coverage, instantiated for the paper's fourth open problem ("given a
/// set of queries that are frequently asked, what is an optimal set of
/// views that should be maintained?", Section 6).
ViewSelectionResult SelectViews(const std::vector<WorkloadQuery>& workload,
                                const ViewSelectionOptions& options = {});

}  // namespace xpv

#endif  // XPV_VIEWS_VIEW_SELECTION_H_
