#ifndef XPV_VIEWS_ANSWER_CACHE_H_
#define XPV_VIEWS_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "views/view_cache.h"

namespace xpv {

/// A bounded memo of fully-computed answers, keyed on
/// (document scope, view-set epoch, query fingerprint) — the batch-level
/// answer memoization the serving facade's `AnswerBatch` planner probes
/// before touching the rewrite engine.
///
/// The epoch is the invalidation contract: every mutation of a document's
/// view set (`AddView`/`RemoveView`/`ReplaceView`) or of the document
/// itself (`ReplaceDocument`, slot recycling) bumps a monotonic counter,
/// and the key carries the epoch *observed while the answer was computed*
/// (under the same lock that held the view set stable). A lookup therefore
/// needs no validation beyond key equality — an entry computed against a
/// superseded view set can never be returned, because no future lookup
/// carries its epoch; stale entries die by construction and are swept out
/// by the eviction clock (they can never be referenced again, so they are
/// always the first to go).
///
/// Each entry stores the `CacheAnswer` *and* the serving-stats delta of
/// the one unmemoized scan that produced it (`delta.queries == 1`), so a
/// memo hit replays exactly the counters the rewrite pipeline would have
/// produced — the memoized path is stats-identical, not just
/// answer-identical.
///
/// Concurrency follows the `SynchronizedOracle` discipline: `Lookup`
/// probes under the shared lock (the reference bit and the counters are
/// atomics), a miss computes its answer with NO cache lock held, and
/// `Insert` publishes under the exclusive lock. Two racing fillers of the
/// same key insert the same value (answers are deterministic for a fixed
/// (document, view set, query)); the second insert is a no-op.
///
/// A capacity of 0 disables the cache: `Lookup` always misses without
/// counting and `Insert` drops the entry — the switch equivalence tests
/// and benchmarks compare against.
class AnswerCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 13;

  /// The memo key. `scope` identifies the document slot (any value stable
  /// for the slot's lifetime — the Service uses the slot's address),
  /// `epoch` the view-set epoch observed under the slot's lock, and
  /// `fingerprint` the query's `Pattern::CanonicalFingerprint()`.
  struct Key {
    uint64_t scope = 0;
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;

    friend bool operator==(const Key& a, const Key& b) {
      return a.scope == b.scope && a.epoch == b.epoch &&
             a.fingerprint == b.fingerprint;
    }
  };

  /// One memoized answer plus the serving-stats delta of the scan that
  /// computed it (`delta.queries == 1`; a hit replays the delta verbatim).
  struct Entry {
    CacheAnswer answer;
    CacheStats delta;
  };

  /// Counter snapshot. `hits`/`misses` count `Lookup` outcomes,
  /// `insertions` successful `Insert`s (re-inserting a present key does
  /// not count), `evictions` entries dropped by the capacity sweep,
  /// `erased` entries dropped by `EraseScope` (document removal).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t erased = 0;
  };

  explicit AnswerCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// False when constructed with capacity 0 (memoization off).
  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }

  /// Probes the memo (shared lock). On a hit returns the entry (shared
  /// ownership — a hit is a pointer copy, not a deep copy of the answer
  /// vectors, and the entry stays valid across a concurrent eviction)
  /// and marks the slot referenced for the eviction clock. Null on miss.
  std::shared_ptr<const Entry> Lookup(const Key& key) const;

  /// Publishes a computed entry (exclusive lock), evicting cold entries
  /// when the table is full. A present key keeps its existing entry.
  void Insert(const Key& key, Entry entry);

  /// Drops every entry of `scope`, any epoch (exclusive lock). Called
  /// when a document is removed or replaced: its entries are already
  /// unreachable (the epoch advanced), but their answer vectors would
  /// otherwise stay resident until capacity pressure sweeps them — on a
  /// quiet service, indefinitely. Returns the number of entries dropped
  /// (counted in `stats().erased`, not `evictions`).
  size_t EraseScope(uint64_t scope);

  /// Number of resident entries.
  size_t size() const;

  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed),
                 insertions_.load(std::memory_order_relaxed),
                 evictions_.load(std::memory_order_relaxed),
                 erased_.load(std::memory_order_relaxed)};
  }

  /// Drops every entry and resets the counters.
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = Mix64(k.scope);
      h = HashCombine64(h, k.epoch);
      h = HashCombine64(h, k.fingerprint);
      return static_cast<size_t>(h);
    }
  };

  /// A resident entry plus its second-chance reference bit. The bit is
  /// set by `Lookup` under the *shared* lock, hence atomic; the node
  /// itself is only created/destroyed under the exclusive lock. The
  /// entry is immutable and shared out to readers, so eviction only
  /// drops a reference.
  struct Slot {
    explicit Slot(Entry entry_in)
        : entry(std::make_shared<const Entry>(std::move(entry_in))) {}
    Slot(Slot&& other) noexcept
        : entry(std::move(other.entry)),
          ref(other.ref.load(std::memory_order_relaxed)) {}

    std::shared_ptr<const Entry> entry;
    /// Mutable: `Lookup` marks references under the SHARED lock.
    mutable std::atomic<uint8_t> ref{1};
  };

  /// Second-chance sweep making room for one insert. Requires the
  /// exclusive lock. Referenced slots get their bit cleared and survive;
  /// at least one entry is always evicted.
  void EvictSome();

  mutable std::shared_mutex mu_;
  std::unordered_map<Key, Slot, KeyHash> table_;
  const size_t capacity_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> erased_{0};
};

}  // namespace xpv

#endif  // XPV_VIEWS_ANSWER_CACHE_H_
