#ifndef XPV_VIEWS_ANSWER_CACHE_H_
#define XPV_VIEWS_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/sync.h"
#include "util/memory_budget.h"
#include "util/single_flight.h"
#include "views/view_cache.h"

namespace xpv {

/// A bounded memo of fully-computed answers, keyed on
/// (document scope, view-set epoch, query fingerprint) — the batch-level
/// answer memoization the serving facade's `AnswerBatch` planner probes
/// before touching the rewrite engine.
///
/// The epoch is the invalidation contract: every mutation of a document's
/// view set (`AddView`/`RemoveView`/`ReplaceView`) or of the document
/// itself (`ReplaceDocument`, slot recycling) bumps a monotonic counter,
/// and the key carries the epoch *observed while the answer was computed*
/// (under the same lock that held the view set stable). A lookup therefore
/// needs no validation beyond key equality — an entry computed against a
/// superseded view set can never be returned, because no future lookup
/// carries its epoch; stale entries die by construction and are swept out
/// by the eviction clock (they can never be referenced again, so they are
/// always the first to go).
///
/// Each entry stores the `CacheAnswer` *and* the serving-stats delta of
/// the one unmemoized scan that produced it (`delta.queries == 1`), so a
/// memo hit replays exactly the counters the rewrite pipeline would have
/// produced — the memoized path is stats-identical, not just
/// answer-identical.
///
/// Concurrency follows the `SynchronizedOracle` discipline: `Lookup`
/// probes under the shared lock (the reference bit and the counters are
/// atomics), a miss computes its answer with NO cache lock held, and
/// `Insert` publishes under the exclusive lock. Two racing fillers of the
/// same key insert the same value (answers are deterministic for a fixed
/// (document, view set, query)); the second insert is a no-op.
///
/// On top of that last-writer-wins baseline, `BeginFill`/`Publish` give
/// misses *single-flight* semantics: concurrent misses of one key
/// rendezvous on an in-flight record, exactly one caller (the leader)
/// runs the rewrite pipeline, and the waiters receive the leader's entry
/// through the flight latch — the redundant computations are not merely
/// wasted, they are never started. Waiters of a leader that unwound
/// without publishing wake empty-handed and compute for themselves.
///
/// With the *doorkeeper* enabled (a serving-facade policy, off by
/// default), inserts under capacity pressure must present their key
/// twice before being admitted: a small direct-mapped table of recently
/// rejected key hashes lets second-time keys through and turns one-off
/// queries away, so a scan of singletons cannot sweep the proven-hot
/// memo entries out. Rejections are counted in
/// `stats().doorkeeper_rejects`; a rejected `Publish` still hands the
/// entry to its waiters (admission gates residency, never correctness).
///
/// A capacity of 0 disables the cache: `Lookup` always misses without
/// counting and `Insert` drops the entry — the switch equivalence tests
/// and benchmarks compare against.
class AnswerCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 13;

  /// The memo key. `scope` identifies the document slot (any value stable
  /// for the slot's lifetime — the Service uses the slot's address),
  /// `epoch` the view-set epoch observed under the slot's lock, and
  /// `fingerprint` the query's `Pattern::CanonicalFingerprint()`.
  struct Key {
    uint64_t scope = 0;
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;

    friend bool operator==(const Key& a, const Key& b) {
      return a.scope == b.scope && a.epoch == b.epoch &&
             a.fingerprint == b.fingerprint;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = Mix64(k.scope);
      h = HashCombine64(h, k.epoch);
      h = HashCombine64(h, k.fingerprint);
      return static_cast<size_t>(h);
    }
  };

  /// One memoized answer plus the serving-stats delta of the scan that
  /// computed it (`delta.queries == 1`; a hit replays the delta verbatim).
  struct Entry {
    CacheAnswer answer;
    CacheStats delta;
    /// Freshness stamp captured when the answer was computed, under the
    /// same lock that held the document stable: the per-view epoch of
    /// `answer.view_slot` for hit answers, the document epoch for miss
    /// answers (see `ViewCache::view_epoch`/`doc_epoch`). Incremental
    /// document updates bump exactly the epochs they invalidate, so the
    /// serving facade revalidates each memo hit with one integer compare;
    /// a stale entry is recomputed and re-`Insert`ed (which replaces it —
    /// see below).
    uint64_t validity = 0;
  };

  /// Counter snapshot. `hits`/`misses` count `Lookup` outcomes,
  /// `insertions` successful `Insert`s (re-inserting a present key does
  /// not count), `evictions` entries dropped by the capacity sweep,
  /// `erased` entries dropped by `EraseScope` (document removal),
  /// `doorkeeper_rejects` inserts turned away by first-time admission
  /// under pressure.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t erased = 0;
    uint64_t doorkeeper_rejects = 0;
    /// Inserts dropped while admission was paused (`set_admitting(false)`
    /// — the memory ladder's last reversible step before refusing
    /// anything). Dropping an insert never affects correctness: the
    /// caller already holds the computed answer.
    uint64_t admission_drops = 0;
  };

  /// Single-flight counters (never reset; see `SingleFlight`).
  struct FillStats {
    uint64_t leads = 0;
    uint64_t joins = 0;
    uint64_t abandons = 0;
  };

  /// `budget`, when non-null, is charged with each resident entry's
  /// estimated bytes (released on evict/erase/clear) — the Service's
  /// shared `MemoryBudget`. Not owned; must outlive the cache and be set
  /// before concurrent use (construction time).
  explicit AnswerCache(size_t capacity = kDefaultCapacity,
                       bool doorkeeper = false,
                       MemoryBudget* budget = nullptr)
      : capacity_(capacity),
        door_(doorkeeper && capacity > 0 ? kDoorkeeperSlots : 0, 0),
        budget_(budget) {}

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  ~AnswerCache() {
    if (budget_ != nullptr) {
      budget_->Release(bytes_.load(std::memory_order_relaxed));
    }
  }

  /// False when constructed with capacity 0 (memoization off).
  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }

  /// Probes the memo (shared lock). On a hit returns the entry (shared
  /// ownership — a hit is a pointer copy, not a deep copy of the answer
  /// vectors, and the entry stays valid across a concurrent eviction)
  /// and marks the slot referenced for the eviction clock. Null on miss.
  [[nodiscard]] std::shared_ptr<const Entry> Lookup(const Key& key) const;

  /// Publishes a computed entry (exclusive lock), evicting cold entries
  /// when the table is full. A present key keeps its existing entry when
  /// the validity stamps are equal (two racing fillers of one key compute
  /// the same answer) and is REPLACED when they differ — the
  /// stale-refresh path: the facade recomputed an answer whose stamp an
  /// update invalidated, and the resident entry must not outlive it.
  /// Subject to doorkeeper admission when enabled (replacement is not —
  /// the key already proved itself resident).
  void Insert(const Key& key, Entry entry);

  /// Counts the resident entries of `scope` (any epoch) satisfying
  /// `pred`, under the shared lock. The update path reports through this
  /// how many memoized answers survived a document delta.
  size_t CountScope(uint64_t scope,
                    const std::function<bool(const Key&, const Entry&)>& pred)
      const;

  /// The outcome of `BeginFill`: an immediate entry (`hit()`), leadership
  /// of a new flight (`leader()` — compute, then `Publish`; destroying
  /// the handle unresolved abandons the flight and wakes the waiters
  /// into self-compute), or followership (`Wait()`).
  class Fill {
   public:
    Fill() = default;

    /// Engaged when the probe answered immediately (memo entry resident,
    /// or published by a concurrent leader during the arm).
    [[nodiscard]] bool hit() const noexcept { return entry_ != nullptr; }
    const std::shared_ptr<const Entry>& entry() const { return entry_; }

    /// True when this caller must compute and `Publish`.
    [[nodiscard]] bool leader() const noexcept { return ticket_.leader(); }

    /// Follower only: blocks until a leader publishes and returns its
    /// entry. The wait is deadline-aware (the caller's installed
    /// `CancelToken` is polled every few ms; expiry throws
    /// `CancelledError`) and *re-electing*: when the leader unwinds
    /// without publishing, the waiters re-join the key and exactly one
    /// is promoted — `Wait` returns null with `leader()` now true, and
    /// that caller (alone) computes and `Publish`es. The rest keep
    /// waiting on the new flight. A dead leader therefore costs one
    /// retry, not a thundering herd.
    [[nodiscard]] std::shared_ptr<const Entry> Wait();

   private:
    friend class AnswerCache;
    using Ticket =
        SingleFlight<Key, std::shared_ptr<const Entry>, KeyHash>::Ticket;

    AnswerCache* owner_ = nullptr;
    Key key_{};
    std::shared_ptr<const Entry> entry_;
    Ticket ticket_;
  };

  /// Single-flight probe-or-arm. Requires `enabled()`. Probes the memo;
  /// on a resident entry returns a hit, otherwise joins (or starts) the
  /// in-flight fill for `key`. The race window between the probe and the
  /// arm is closed by re-probing under the flight registry lock — a
  /// caller can never lead a key whose entry is already published.
  [[nodiscard]] Fill BeginFill(const Key& key);

  /// Leader only: publishes the computed entry — inserts it into the
  /// table (subject to doorkeeper admission) and resolves the flight,
  /// waking every waiter with the shared entry. Returns the shared entry
  /// so the leader serves from the same allocation.
  [[nodiscard]] std::shared_ptr<const Entry> Publish(Fill& fill, Entry entry);

  /// Halves residency (exclusive lock): runs the second-chance sweep
  /// until at most half the entries remain. The memory ladder's first
  /// rung — reclaims answer-vector bytes without touching correctness
  /// (every dropped entry is recomputable). Returns entries dropped
  /// (counted in `stats().evictions`).
  size_t ShrinkHalf();

  /// Pauses (false) or resumes (true) admission of NEW entries. While
  /// paused, `Insert`/`Publish` drop the entry instead of making it
  /// resident (counted in `stats().admission_drops`); lookups, waiter
  /// hand-off, and eviction are unaffected. The ladder's last rung:
  /// the cache stops growing but never refuses to serve.
  void set_admitting(bool admitting) {
    admitting_.store(admitting, std::memory_order_relaxed);
  }
  bool admitting() const {
    return admitting_.load(std::memory_order_relaxed);
  }

  /// Estimated resident bytes (slot payloads; racy snapshot).
  size_t resident_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Drops every entry of `scope`, any epoch (exclusive lock). Called
  /// when a document is removed or replaced: its entries are already
  /// unreachable (the epoch advanced), but their answer vectors would
  /// otherwise stay resident until capacity pressure sweeps them — on a
  /// quiet service, indefinitely. Returns the number of entries dropped
  /// (counted in `stats().erased`, not `evictions`).
  size_t EraseScope(uint64_t scope);

  /// Number of resident entries.
  size_t size() const;

  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed),
                 insertions_.load(std::memory_order_relaxed),
                 evictions_.load(std::memory_order_relaxed),
                 erased_.load(std::memory_order_relaxed),
                 doorkeeper_rejects_.load(std::memory_order_relaxed),
                 admission_drops_.load(std::memory_order_relaxed)};
  }

  FillStats fill_stats() const {
    return FillStats{fills_.leads(), fills_.joins(), fills_.abandons()};
  }

  bool doorkeeper_enabled() const { return !door_.empty(); }

  /// Drops every entry and resets the counters.
  void Clear();

 private:
  /// A resident entry plus its second-chance reference bit. The bit is
  /// set by `Lookup` under the *shared* lock, hence atomic; the node
  /// itself is only created/destroyed under the exclusive lock. The
  /// entry is immutable and shared out to readers, so eviction only
  /// drops a reference.
  struct Slot {
    explicit Slot(std::shared_ptr<const Entry> entry_in, size_t bytes_in)
        : entry(std::move(entry_in)), bytes(bytes_in) {}
    Slot(Slot&& other) noexcept
        : entry(std::move(other.entry)),
          bytes(other.bytes),
          ref(other.ref.load(std::memory_order_relaxed)) {}

    std::shared_ptr<const Entry> entry;
    /// Estimated payload bytes, captured at insert so the budget release
    /// on eviction matches the charge exactly (the entry is immutable).
    size_t bytes = 0;
    /// Mutable: `Lookup` marks references under the SHARED lock.
    mutable std::atomic<uint8_t> ref{1};
  };

  /// Estimated heap footprint of one entry (payload vectors + node).
  static size_t EntryBytes(const Entry& entry);

  /// Second-chance sweep making room for one insert. Requires the
  /// exclusive lock. Referenced slots get their bit cleared and survive;
  /// at least one entry is always evicted.
  void EvictSome() XPV_REQUIRES(mu_);

  /// Shared implementation of `Insert`/`Publish`: admission check,
  /// eviction, emplace. The entry arrives pre-shared so `Publish` hands
  /// the very same allocation to table, leader, and waiters.
  void InsertShared(const Key& key, std::shared_ptr<const Entry> entry);

  /// Doorkeeper admission (requires the exclusive lock; key not
  /// resident, table at capacity). First presentation of a key hash is
  /// remembered and rejected; the second one is admitted.
  bool AdmitUnderPressure(const Key& key) XPV_REQUIRES(mu_);

  /// Returns the resident entry for `key` (marking it referenced and
  /// counting a hit) or nullopt. Takes the shared lock itself — the
  /// registry-lock probe `BeginFill` and the re-election path share.
  std::optional<std::shared_ptr<const Entry>> ProbeTable(const Key& key);

  /// Uncharges one slot's bytes (cache counter + shared budget); call
  /// immediately before erasing the slot, under the exclusive lock.
  void ReleaseSlotBytes(const Slot& slot) XPV_REQUIRES(mu_);

  static constexpr size_t kDoorkeeperSlots = 1024;  // Power of two.

  mutable SharedMutex mu_;
  std::unordered_map<Key, Slot, KeyHash> table_ XPV_GUARDED_BY(mu_);
  const size_t capacity_;
  /// Direct-mapped recent-reject filter; empty when the doorkeeper is
  /// off. Guarded by the exclusive lock (only `Insert` paths touch it).
  std::vector<uint64_t> door_ XPV_GUARDED_BY(mu_);
  SingleFlight<Key, std::shared_ptr<const Entry>, KeyHash> fills_;
  /// Shared service budget (may be null). Charged on residency only —
  /// entries handed to waiters without admission carry no charge.
  MemoryBudget* const budget_;
  std::atomic<bool> admitting_{true};
  std::atomic<size_t> bytes_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> erased_{0};
  std::atomic<uint64_t> doorkeeper_rejects_{0};
  std::atomic<uint64_t> admission_drops_{0};
};

}  // namespace xpv

#endif  // XPV_VIEWS_ANSWER_CACHE_H_
