#include "views/answer_cache.h"

#include <algorithm>
#include <optional>

#include "util/cancel.h"

namespace xpv {

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Fill::Wait() {
  for (;;) {
    std::optional<std::shared_ptr<const Entry>> value =
        owner_->fills_.WaitPolling(ticket_, [] { PollCancellation(); });
    if (value.has_value()) return *value;
    // The leader abandoned (exception unwind). Re-join the key: the
    // first waiter through the registry lock is promoted to the new
    // leader — it alone returns null with `leader()` now true and
    // computes — while the rest land on the promoted waiter's fresh
    // flight and keep waiting. One dead leader costs one retry; a
    // publish that races the re-join is caught by the table probe.
    auto result = owner_->fills_.Join(
        key_, [&] { return owner_->ProbeTable(key_); });
    if (result.immediate.has_value()) return *result.immediate;
    ticket_ = std::move(result.ticket);
    if (ticket_.leader()) return nullptr;
  }
}

AnswerCache::Fill AnswerCache::BeginFill(const Key& key) {
  Fill fill;
  fill.owner_ = this;
  fill.key_ = key;
  if (std::shared_ptr<const Entry> entry = Lookup(key)) {
    fill.entry_ = std::move(entry);
    return fill;
  }
  // Registry-lock probe: a leader that published between our Lookup
  // miss and this Join already erased its flight AFTER inserting, so
  // the table re-probe here sees its entry — we can never lead a key
  // that is already resident.
  auto result = fills_.Join(key, [&] { return ProbeTable(key); });
  if (result.immediate.has_value()) {
    fill.entry_ = std::move(*result.immediate);
    return fill;
  }
  fill.ticket_ = std::move(result.ticket);
  return fill;
}

std::optional<std::shared_ptr<const AnswerCache::Entry>>
AnswerCache::ProbeTable(const Key& key) {
  ReaderLock lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  it->second.ref.store(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Publish(Fill& fill,
                                                              Entry entry) {
  std::shared_ptr<const Entry> shared =
      std::make_shared<const Entry>(std::move(entry));
  InsertShared(fill.key_, shared);  // Before the flight erase: see probe.
  fill.owner_->fills_.Publish(fill.ticket_, shared);
  return shared;
}

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Lookup(
    const Key& key) const {
  if (!enabled()) return nullptr;
  ReaderLock lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.ref.store(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

void AnswerCache::Insert(const Key& key, Entry entry) {
  InsertShared(key, std::make_shared<const Entry>(std::move(entry)));
}

size_t AnswerCache::EntryBytes(const Entry& entry) {
  // An estimate of the dominant heap payloads, not an allocator audit:
  // the answer's node-id vector, the view name, the rewriting's per-node
  // arrays, plus the node itself. Captured once at insert so the release
  // on eviction matches the charge exactly.
  size_t bytes = sizeof(Slot) + sizeof(Entry);
  bytes += entry.answer.view_name.capacity();
  bytes += entry.answer.outputs.capacity() * sizeof(NodeId);
  bytes += static_cast<size_t>(entry.answer.rewriting.size()) *
           (sizeof(LabelId) + sizeof(NodeId) + sizeof(EdgeType) +
            sizeof(std::vector<NodeId>));
  return bytes;
}

void AnswerCache::ReleaseSlotBytes(const Slot& slot) {
  bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
  if (budget_ != nullptr) budget_->Release(slot.bytes);
}

void AnswerCache::InsertShared(const Key& key,
                               std::shared_ptr<const Entry> entry) {
  if (!enabled()) return;
  if (!admitting()) {
    // Admission paused (memory ladder, last rung): the entry is dropped
    // — never refused. The caller already holds the computed answer and
    // `Publish` still hands this same allocation to every waiter.
    admission_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t bytes = EntryBytes(*entry);
  WriterLock lock(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    // Equal stamps: a racing filler already published this very answer.
    if (it->second.entry->validity == entry->validity) return;
    // Stale refresh: an update invalidated the resident entry's stamp and
    // the facade recomputed — the fresher answer takes the slot (no
    // doorkeeper: the key already proved itself resident).
    ReleaseSlotBytes(it->second);
    table_.erase(it);
    table_.emplace(key, Slot(std::move(entry), bytes));
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (budget_ != nullptr) budget_->Charge(bytes);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (table_.size() >= capacity_) {
    if (!AdmitUnderPressure(key)) {
      doorkeeper_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    EvictSome();
  }
  table_.emplace(key, Slot(std::move(entry), bytes));
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (budget_ != nullptr) budget_->Charge(bytes);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool AnswerCache::AdmitUnderPressure(const Key& key) {
  if (door_.empty()) return true;  // Doorkeeper off.
  const uint64_t tag = static_cast<uint64_t>(KeyHash{}(key)) | 1;  // 0 = empty.
  uint64_t& slot = door_[static_cast<size_t>(tag) & (kDoorkeeperSlots - 1)];
  if (slot == tag) {
    slot = 0;  // Second presentation: admit and recycle the slot.
    return true;
  }
  slot = tag;  // First presentation (or collision): remember, reject.
  return false;
}

size_t AnswerCache::EraseScope(uint64_t scope) {
  if (!enabled()) return 0;
  WriterLock lock(mu_);
  size_t erased = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->first.scope == scope) {
      ReleaseSlotBytes(it->second);
      it = table_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  erased_.fetch_add(erased, std::memory_order_relaxed);
  return erased;
}

size_t AnswerCache::ShrinkHalf() {
  if (!enabled()) return 0;
  WriterLock lock(mu_);
  const size_t target = table_.size() / 2;
  size_t evicted = 0;
  // Cold entries first (second-chance bit), then front-drop if the
  // table is all-hot — the ladder must actually reclaim when asked.
  for (auto it = table_.begin();
       it != table_.end() && table_.size() > target;) {
    if (it->second.ref.exchange(0, std::memory_order_relaxed) != 0) {
      ++it;
      continue;
    }
    ReleaseSlotBytes(it->second);
    it = table_.erase(it);
    ++evicted;
  }
  for (auto it = table_.begin();
       it != table_.end() && table_.size() > target;) {
    ReleaseSlotBytes(it->second);
    it = table_.erase(it);
    ++evicted;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

size_t AnswerCache::CountScope(
    uint64_t scope,
    const std::function<bool(const Key&, const Entry&)>& pred) const {
  if (!enabled()) return 0;
  ReaderLock lock(mu_);
  size_t count = 0;
  for (const auto& kv : table_) {
    if (kv.first.scope == scope && pred(kv.first, *kv.second.entry)) ++count;
  }
  return count;
}

size_t AnswerCache::size() const {
  ReaderLock lock(mu_);
  return table_.size();
}

void AnswerCache::Clear() {
  WriterLock lock(mu_);
  for (const auto& kv : table_) ReleaseSlotBytes(kv.second);
  table_.clear();
  std::fill(door_.begin(), door_.end(), 0);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  erased_.store(0, std::memory_order_relaxed);
  doorkeeper_rejects_.store(0, std::memory_order_relaxed);
  admission_drops_.store(0, std::memory_order_relaxed);
}

void AnswerCache::EvictSome() {
  // Second-chance clock over the whole table: entries referenced since
  // the last sweep survive (bit cleared), cold entries go. Entries keyed
  // on superseded epochs can never be referenced again, so they are
  // always cold by the second sweep — stale answers cannot pin the table.
  const size_t target = table_.size() / 2 + 1;
  size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end() && evicted < target;) {
    if (it->second.ref.exchange(0, std::memory_order_relaxed) != 0) {
      ++it;
      continue;
    }
    ReleaseSlotBytes(it->second);
    it = table_.erase(it);
    ++evicted;
  }
  // All-hot table: drop from the front so the insert always finds room.
  for (auto it = table_.begin(); it != table_.end() && evicted < 1;) {
    ReleaseSlotBytes(it->second);
    it = table_.erase(it);
    ++evicted;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

}  // namespace xpv
