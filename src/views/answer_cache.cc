#include "views/answer_cache.h"

#include <algorithm>
#include <mutex>
#include <optional>

namespace xpv {

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Fill::Wait() {
  std::optional<std::shared_ptr<const Entry>> value =
      owner_->fills_.Wait(ticket_);
  return value.has_value() ? *value : nullptr;
}

AnswerCache::Fill AnswerCache::BeginFill(const Key& key) {
  Fill fill;
  fill.owner_ = this;
  fill.key_ = key;
  if (std::shared_ptr<const Entry> entry = Lookup(key)) {
    fill.entry_ = std::move(entry);
    return fill;
  }
  auto result = fills_.Join(
      key, [&]() -> std::optional<std::shared_ptr<const Entry>> {
        // Registry-lock probe: a leader that published between our
        // Lookup miss and this Join already erased its flight AFTER
        // inserting, so the table re-probe here sees its entry — we can
        // never lead a key that is already resident.
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = table_.find(key);
        if (it == table_.end()) return std::nullopt;
        it->second.ref.store(1, std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.entry;
      });
  if (result.immediate.has_value()) {
    fill.entry_ = std::move(*result.immediate);
    return fill;
  }
  fill.ticket_ = std::move(result.ticket);
  return fill;
}

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Publish(Fill& fill,
                                                              Entry entry) {
  std::shared_ptr<const Entry> shared =
      std::make_shared<const Entry>(std::move(entry));
  InsertShared(fill.key_, shared);  // Before the flight erase: see probe.
  fill.owner_->fills_.Publish(fill.ticket_, shared);
  return shared;
}

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Lookup(
    const Key& key) const {
  if (!enabled()) return nullptr;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.ref.store(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

void AnswerCache::Insert(const Key& key, Entry entry) {
  InsertShared(key, std::make_shared<const Entry>(std::move(entry)));
}

void AnswerCache::InsertShared(const Key& key,
                               std::shared_ptr<const Entry> entry) {
  if (!enabled()) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (table_.count(key) > 0) return;  // A racing filler already published.
  if (table_.size() >= capacity_) {
    if (!AdmitUnderPressure(key)) {
      doorkeeper_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    EvictSome();
  }
  table_.emplace(key, Slot(std::move(entry)));
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool AnswerCache::AdmitUnderPressure(const Key& key) {
  if (door_.empty()) return true;  // Doorkeeper off.
  const uint64_t tag = static_cast<uint64_t>(KeyHash{}(key)) | 1;  // 0 = empty.
  uint64_t& slot = door_[static_cast<size_t>(tag) & (kDoorkeeperSlots - 1)];
  if (slot == tag) {
    slot = 0;  // Second presentation: admit and recycle the slot.
    return true;
  }
  slot = tag;  // First presentation (or collision): remember, reject.
  return false;
}

size_t AnswerCache::EraseScope(uint64_t scope) {
  if (!enabled()) return 0;
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t erased = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->first.scope == scope) {
      it = table_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  erased_.fetch_add(erased, std::memory_order_relaxed);
  return erased;
}

size_t AnswerCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return table_.size();
}

void AnswerCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  table_.clear();
  std::fill(door_.begin(), door_.end(), 0);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  erased_.store(0, std::memory_order_relaxed);
  doorkeeper_rejects_.store(0, std::memory_order_relaxed);
}

void AnswerCache::EvictSome() {
  // Second-chance clock over the whole table: entries referenced since
  // the last sweep survive (bit cleared), cold entries go. Entries keyed
  // on superseded epochs can never be referenced again, so they are
  // always cold by the second sweep — stale answers cannot pin the table.
  const size_t target = table_.size() / 2 + 1;
  size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end() && evicted < target;) {
    if (it->second.ref.exchange(0, std::memory_order_relaxed) != 0) {
      ++it;
      continue;
    }
    it = table_.erase(it);
    ++evicted;
  }
  // All-hot table: drop from the front so the insert always finds room.
  for (auto it = table_.begin(); it != table_.end() && evicted < 1;) {
    it = table_.erase(it);
    ++evicted;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

}  // namespace xpv
