#include "views/answer_cache.h"

#include <mutex>

namespace xpv {

std::shared_ptr<const AnswerCache::Entry> AnswerCache::Lookup(
    const Key& key) const {
  if (!enabled()) return nullptr;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.ref.store(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

void AnswerCache::Insert(const Key& key, Entry entry) {
  if (!enabled()) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (table_.count(key) > 0) return;  // A racing filler already published.
  if (table_.size() >= capacity_) EvictSome();
  table_.emplace(key, Slot(std::move(entry)));
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

size_t AnswerCache::EraseScope(uint64_t scope) {
  if (!enabled()) return 0;
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t erased = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->first.scope == scope) {
      it = table_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  erased_.fetch_add(erased, std::memory_order_relaxed);
  return erased;
}

size_t AnswerCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return table_.size();
}

void AnswerCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  table_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  erased_.store(0, std::memory_order_relaxed);
}

void AnswerCache::EvictSome() {
  // Second-chance clock over the whole table: entries referenced since
  // the last sweep survive (bit cleared), cold entries go. Entries keyed
  // on superseded epochs can never be referenced again, so they are
  // always cold by the second sweep — stale answers cannot pin the table.
  const size_t target = table_.size() / 2 + 1;
  size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end() && evicted < target;) {
    if (it->second.ref.exchange(0, std::memory_order_relaxed) != 0) {
      ++it;
      continue;
    }
    it = table_.erase(it);
    ++evicted;
  }
  // All-hot table: drop from the front so the insert always finds room.
  for (auto it = table_.begin(); it != table_.end() && evicted < 1;) {
    it = table_.erase(it);
    ++evicted;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

}  // namespace xpv
