#include "views/view_index.h"

#include <cassert>
#include <limits>
#include <utility>

#include "util/hash.h"

namespace xpv {
namespace {

/// Mixes a (selection depth, label) pair into one of 64 buckets. The exact
/// mixer is immaterial; it only has to spread (depth, label) pairs so the
/// subset prefilter rejects label clashes with high probability.
uint64_t PrefixBit(int depth, LabelId label) {
  const uint64_t seed =
      (static_cast<uint64_t>(static_cast<uint32_t>(label)) << 20) ^
      static_cast<uint64_t>(static_cast<uint32_t>(depth));
  return uint64_t{1} << (Mix64(seed) & 63);
}

}  // namespace

SelectionSummary SummarizeSelection(const Pattern& pattern) {
  assert(!pattern.IsEmpty());
  SelectionSummary summary;
  // Root -> output path, without building a full SelectionInfo (no
  // node-depth table is needed for pruning).
  std::vector<NodeId> reversed;
  for (NodeId cur = pattern.output(); cur != kNoNode;
       cur = pattern.parent(cur)) {
    reversed.push_back(cur);
  }
  summary.depth = static_cast<int>(reversed.size()) - 1;
  summary.path_labels.reserve(reversed.size());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    summary.path_labels.push_back(pattern.label(*it));
  }
  for (int i = 0; i < summary.depth; ++i) {
    summary.prefix_mask |=
        PrefixBit(i, summary.path_labels[static_cast<size_t>(i)]);
  }
  return summary;
}

bool AdmissibleBySummaries(const SelectionSummary& query,
                           const SelectionSummary& view) {
  const int k = view.depth;
  // Prop 3.1(1): depth(V) <= depth(P).
  if (k > query.depth) return false;
  // O(1) prefilter for Prop 3.1(3) on the proper prefix: a matching view
  // has every (depth, label) bit of its prefix present in the query's mask
  // (the query path is at least as long). A missing bit proves a clash.
  if ((view.prefix_mask & ~query.prefix_mask) != 0) return false;
  // Exact prefix compare (the mask is only a filter: 64 buckets collide).
  for (int i = 0; i < k; ++i) {
    if (view.path_labels[static_cast<size_t>(i)] !=
        query.path_labels[static_cast<size_t>(i)]) {
      return false;
    }
  }
  // At depth k the label of R∘V is glb(label(root(R)), label(out(V))):
  // solvable iff out(V) is '*' or labeled exactly like the k-node of P.
  const LabelId out_label = view.path_labels[static_cast<size_t>(k)];
  return out_label == LabelStore::kWildcard ||
         out_label == query.path_labels[static_cast<size_t>(k)];
}

int ViewIndex::Add(const Pattern& view_pattern) {
  views_.push_back(SummarizeSelection(view_pattern));
  return static_cast<int>(views_.size()) - 1;
}

void ViewIndex::Replace(int vi, const Pattern& view_pattern) {
  views_[static_cast<size_t>(vi)] = SummarizeSelection(view_pattern);
}

void ViewIndex::Remove(int vi) {
  // A depth no query can reach makes the slot inadmissible via the Prop
  // 3.1(1) check — no extra branch in the hot Admissible path.
  SelectionSummary tombstone;
  tombstone.depth = std::numeric_limits<int>::max();
  views_[static_cast<size_t>(vi)] = std::move(tombstone);
}

int ViewIndex::FirstAdmissible(const SelectionSummary& query) const {
  for (int vi = 0; vi < size(); ++vi) {
    if (Admissible(query, vi)) return vi;
  }
  return -1;
}

void ViewIndex::AppendAdmissible(const SelectionSummary& query,
                                 std::vector<int>* out) const {
  for (int vi = 0; vi < size(); ++vi) {
    if (Admissible(query, vi)) out->push_back(vi);
  }
}

}  // namespace xpv
