#include "views/view_index.h"

#include <cassert>
#include <limits>
#include <utility>

#include "util/hash.h"

namespace xpv {
namespace {

/// Mixes a (selection depth, label) pair into one of 64 buckets. The exact
/// mixer is immaterial; it only has to spread (depth, label) pairs so the
/// subset prefilter rejects label clashes with high probability.
uint64_t PrefixBit(int depth, LabelId label) {
  const uint64_t seed =
      (static_cast<uint64_t>(static_cast<uint32_t>(label)) << 20) ^
      static_cast<uint64_t>(static_cast<uint32_t>(depth));
  return uint64_t{1} << (Mix64(seed) & 63);
}

}  // namespace

SelectionSummary SummarizeSelection(const Pattern& pattern) {
  assert(!pattern.IsEmpty());
  SelectionSummary summary;
  // Root -> output path, without building a full SelectionInfo (no
  // node-depth table is needed for pruning).
  std::vector<NodeId> reversed;
  for (NodeId cur = pattern.output(); cur != kNoNode;
       cur = pattern.parent(cur)) {
    reversed.push_back(cur);
  }
  summary.depth = static_cast<int>(reversed.size()) - 1;
  summary.path_labels.reserve(reversed.size());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    summary.path_labels.push_back(pattern.label(*it));
  }
  for (int i = 0; i < summary.depth; ++i) {
    summary.prefix_mask |=
        PrefixBit(i, summary.path_labels[static_cast<size_t>(i)]);
  }
  // Whole-pattern dirtiness facts (ids are topological, so each node's
  // depth is its parent's + 1 and one forward pass suffices).
  std::vector<int> node_depth(static_cast<size_t>(pattern.size()), 0);
  for (NodeId n = 0; n < pattern.size(); ++n) {
    if (n != 0) {
      node_depth[static_cast<size_t>(n)] =
          node_depth[static_cast<size_t>(pattern.parent(n))] + 1;
      if (pattern.edge(n) == EdgeType::kDescendant) {
        summary.has_descendant = true;
      }
    }
    if (node_depth[static_cast<size_t>(n)] > summary.max_node_depth) {
      summary.max_node_depth = node_depth[static_cast<size_t>(n)];
    }
    if (pattern.label(n) == LabelStore::kWildcard) {
      summary.has_wildcard = true;
    } else {
      summary.label_bloom |= LabelBloomBit(pattern.label(n));
    }
  }
  return summary;
}

bool DeltaMayAffectView(const SelectionSummary& view,
                        const TreeDeltaReport& report) {
  // Depth bound: with no descendant edge, a root-anchored embedding maps a
  // depth-k pattern node to a depth-k tree node, so a delta whose every
  // touched node is deeper than the deepest pattern node cannot add or
  // remove an embedding (inserts/deletes strictly below that depth change
  // no witness; the bound also covers relabels).
  if (!view.has_descendant &&
      view.max_node_depth < report.min_affected_depth) {
    return false;
  }
  // Label disjointness: with no wildcard, every node an embedding touches
  // carries one of the pattern's labels. A delta whose touched labels
  // (inserted, deleted, and both sides of each relabel) are disjoint from
  // them can neither create a new witness nor destroy an existing one.
  if (!view.has_wildcard && (view.label_bloom & report.label_bloom) == 0) {
    return false;
  }
  return true;
}

bool AdmissibleBySummaries(const SelectionSummary& query,
                           const SelectionSummary& view) {
  const int k = view.depth;
  // Prop 3.1(1): depth(V) <= depth(P).
  if (k > query.depth) return false;
  // O(1) prefilter for Prop 3.1(3) on the proper prefix: a matching view
  // has every (depth, label) bit of its prefix present in the query's mask
  // (the query path is at least as long). A missing bit proves a clash.
  if ((view.prefix_mask & ~query.prefix_mask) != 0) return false;
  // Exact prefix compare (the mask is only a filter: 64 buckets collide).
  for (int i = 0; i < k; ++i) {
    if (view.path_labels[static_cast<size_t>(i)] !=
        query.path_labels[static_cast<size_t>(i)]) {
      return false;
    }
  }
  // At depth k the label of R∘V is glb(label(root(R)), label(out(V))):
  // solvable iff out(V) is '*' or labeled exactly like the k-node of P.
  const LabelId out_label = view.path_labels[static_cast<size_t>(k)];
  return out_label == LabelStore::kWildcard ||
         out_label == query.path_labels[static_cast<size_t>(k)];
}

int ViewIndex::Add(const Pattern& view_pattern) {
  views_.push_back(SummarizeSelection(view_pattern));
  return static_cast<int>(views_.size()) - 1;
}

void ViewIndex::Replace(int vi, const Pattern& view_pattern) {
  views_[static_cast<size_t>(vi)] = SummarizeSelection(view_pattern);
}

void ViewIndex::Remove(int vi) {
  // A depth no query can reach makes the slot inadmissible via the Prop
  // 3.1(1) check — no extra branch in the hot Admissible path.
  SelectionSummary tombstone;
  tombstone.depth = std::numeric_limits<int>::max();
  views_[static_cast<size_t>(vi)] = std::move(tombstone);
}

int ViewIndex::FirstAdmissible(const SelectionSummary& query) const {
  for (int vi = 0; vi < size(); ++vi) {
    if (Admissible(query, vi)) return vi;
  }
  return -1;
}

void ViewIndex::AppendAdmissible(const SelectionSummary& query,
                                 std::vector<int>* out) const {
  for (int vi = 0; vi < size(); ++vi) {
    if (Admissible(query, vi)) out->push_back(vi);
  }
}

}  // namespace xpv
