#ifndef XPV_VIEWS_VIEW_INDEX_H_
#define XPV_VIEWS_VIEW_INDEX_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// Precomputed pruning summary of one pattern's selection path, the facts
/// the necessary conditions of Prop 3.1 consume:
///
///   depth        — number of selection edges (k for a view, d for a query),
///   path_labels  — the selection-node labels, root first (depth + 1 of
///                  them; wildcards included as ordinary symbols),
///   prefix_mask  — a 64-bit set of hash(depth_i, label_i) over the proper
///                  prefix (all selection nodes except the output node).
///
/// Summaries are built once — per view at `AddView` time, per query at the
/// start of `Answer` — so the per-(query, view) admissibility check does no
/// pattern traversal at all: a depth compare, one O(1) bitset subset test
/// that rejects most label clashes, and only on survival the exact O(k)
/// label compare. This replaces re-deriving `SelectionInfo` +
/// `ViolatesBasicNecessaryConditions` for every (query, view) pair in the
/// serving loop.
struct SelectionSummary {
  int depth = 0;
  std::vector<LabelId> path_labels;
  uint64_t prefix_mask = 0;
};

/// Builds the summary of a nonempty pattern. O(|pattern|).
SelectionSummary SummarizeSelection(const Pattern& pattern);

/// True iff `ViolatesBasicNecessaryConditions(query, view)` would return
/// no violation, computed from the summaries alone:
///   (1) depth(view) <= depth(query),
///   (2) the selection labels agree at depths 0..k-1,
///   (3) the view's output label is '*' or equals the query's k-node label.
bool AdmissibleBySummaries(const SelectionSummary& query,
                           const SelectionSummary& view);

/// The view-pruning index of the serving path: one `SelectionSummary` per
/// registered view. `Answer` summarizes the query once and probes every
/// view in O(1) expected time, visiting only the admissible ones; the
/// batch warm-up asks for `FirstAdmissible` (the view whose candidate
/// tests are guaranteed to run), and `AppendAdmissible` exposes the whole
/// per-query admissible list for batch planners.
class ViewIndex {
 public:
  /// Registers a view pattern (nonempty); returns its index.
  int Add(const Pattern& view_pattern);

  /// Replaces the summary at slot `vi` (view slot reuse in the cache's
  /// remove/re-add lifecycle). The slot keeps its position, so the
  /// deterministic probe order is preserved.
  void Replace(int vi, const Pattern& view_pattern);

  /// Deactivates slot `vi`: the view stops being admissible for every
  /// query (and so is never probed) until `Replace` revives the slot.
  void Remove(int vi);

  int size() const { return static_cast<int>(views_.size()); }
  const SelectionSummary& view_summary(int vi) const {
    return views_[static_cast<size_t>(vi)];
  }

  /// True iff view `vi` passes the necessary conditions against the query
  /// summarized by `query`.
  bool Admissible(const SelectionSummary& query, int vi) const {
    return AdmissibleBySummaries(query, views_[static_cast<size_t>(vi)]);
  }

  /// Index of the first admissible view (the one `Answer` probes first),
  /// or -1 when every view is pruned.
  int FirstAdmissible(const SelectionSummary& query) const;

  /// Appends all admissible view indices, in registration order.
  void AppendAdmissible(const SelectionSummary& query,
                        std::vector<int>* out) const;

 private:
  std::vector<SelectionSummary> views_;
};

}  // namespace xpv

#endif  // XPV_VIEWS_VIEW_INDEX_H_
