#ifndef XPV_VIEWS_VIEW_INDEX_H_
#define XPV_VIEWS_VIEW_INDEX_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// Precomputed pruning summary of one pattern's selection path, the facts
/// the necessary conditions of Prop 3.1 consume:
///
///   depth        — number of selection edges (k for a view, d for a query),
///   path_labels  — the selection-node labels, root first (depth + 1 of
///                  them; wildcards included as ordinary symbols),
///   prefix_mask  — a 64-bit set of hash(depth_i, label_i) over the proper
///                  prefix (all selection nodes except the output node).
///
/// Summaries are built once — per view at `AddView` time, per query at the
/// start of `Answer` — so the per-(query, view) admissibility check does no
/// pattern traversal at all: a depth compare, one O(1) bitset subset test
/// that rejects most label clashes, and only on survival the exact O(k)
/// label compare. This replaces re-deriving `SelectionInfo` +
/// `ViolatesBasicNecessaryConditions` for every (query, view) pair in the
/// serving loop.
struct SelectionSummary {
  int depth = 0;
  std::vector<LabelId> path_labels;
  uint64_t prefix_mask = 0;

  // Whole-pattern facts consumed by the update path's per-view dirtiness
  // test (`DeltaMayAffectView`); unlike the selection-path fields above,
  // these cover every pattern node, not just the selection spine.

  /// Deepest pattern node, in edges from the pattern root. When the
  /// pattern has no descendant edge, a root-anchored embedding maps a
  /// depth-k pattern node to a depth-k tree node, so no embedding reaches
  /// tree nodes deeper than this.
  int max_node_depth = 0;
  /// 64-bit Bloom filter over every non-wildcard node label
  /// (`LabelBloomBit`, shared with `TreeDeltaReport::label_bloom`).
  uint64_t label_bloom = 0;
  bool has_wildcard = false;    ///< Some node is labeled '*'.
  bool has_descendant = false;  ///< Some edge is a descendant edge.
};

/// Builds the summary of a nonempty pattern. O(|pattern|).
SelectionSummary SummarizeSelection(const Pattern& pattern);

/// True unless the summary PROVES the delta cannot change the view's
/// root-anchored output set: returns false when every touched tree node is
/// deeper than the deepest pattern node (descendant-free patterns only) or
/// when the pattern's labels are disjoint from every label the delta
/// touched (wildcard-free patterns only). A false return means the view's
/// stored outputs — and its evaluator state — are untouched by the delta.
bool DeltaMayAffectView(const SelectionSummary& view,
                        const TreeDeltaReport& report);

/// True iff `ViolatesBasicNecessaryConditions(query, view)` would return
/// no violation, computed from the summaries alone:
///   (1) depth(view) <= depth(query),
///   (2) the selection labels agree at depths 0..k-1,
///   (3) the view's output label is '*' or equals the query's k-node label.
bool AdmissibleBySummaries(const SelectionSummary& query,
                           const SelectionSummary& view);

/// The view-pruning index of the serving path: one `SelectionSummary` per
/// registered view. `Answer` summarizes the query once and probes every
/// view in O(1) expected time, visiting only the admissible ones; the
/// batch warm-up asks for `FirstAdmissible` (the view whose candidate
/// tests are guaranteed to run), and `AppendAdmissible` exposes the whole
/// per-query admissible list for batch planners.
class ViewIndex {
 public:
  /// Registers a view pattern (nonempty); returns its index.
  int Add(const Pattern& view_pattern);

  /// Replaces the summary at slot `vi` (view slot reuse in the cache's
  /// remove/re-add lifecycle). The slot keeps its position, so the
  /// deterministic probe order is preserved.
  void Replace(int vi, const Pattern& view_pattern);

  /// Deactivates slot `vi`: the view stops being admissible for every
  /// query (and so is never probed) until `Replace` revives the slot.
  void Remove(int vi);

  int size() const { return static_cast<int>(views_.size()); }
  const SelectionSummary& view_summary(int vi) const {
    return views_[static_cast<size_t>(vi)];
  }

  /// True iff view `vi` passes the necessary conditions against the query
  /// summarized by `query`.
  bool Admissible(const SelectionSummary& query, int vi) const {
    return AdmissibleBySummaries(query, views_[static_cast<size_t>(vi)]);
  }

  /// Index of the first admissible view (the one `Answer` probes first),
  /// or -1 when every view is pruned.
  int FirstAdmissible(const SelectionSummary& query) const;

  /// Appends all admissible view indices, in registration order.
  void AppendAdmissible(const SelectionSummary& query,
                        std::vector<int>* out) const;

 private:
  std::vector<SelectionSummary> views_;
};

}  // namespace xpv

#endif  // XPV_VIEWS_VIEW_INDEX_H_
