#ifndef XPV_UTIL_RNG_H_
#define XPV_UTIL_RNG_H_

#include <cstdint>

namespace xpv {

/// Deterministic pseudo-random number generator (splitmix64 core).
///
/// The workload generators and the property-based tests need streams that
/// are reproducible across platforms and standard-library versions, which
/// `std::mt19937` + `std::uniform_int_distribution` does not guarantee.
/// This generator is small, fast and fully specified.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // 53-bit mantissa gives a uniform double in [0,1).
    double u = static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
  }

 private:
  uint64_t state_;
};

}  // namespace xpv

#endif  // XPV_UTIL_RNG_H_
