#include "util/thread_pool.h"

#include <utility>

namespace xpv {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and drained.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace xpv
