#include "util/thread_pool.h"

#include <utility>

namespace xpv {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::EnsureThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  // pending_ goes up BEFORE the enqueue (a fast worker may finish and
  // decrement first otherwise), and comes back down if the enqueue
  // throws (e.g. bad_alloc) — a wedged count would hang Wait() and the
  // draining destructor forever.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  try {
    pool_->Submit([this, task = std::move(task)] {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_.notify_all();
    });
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
    throw;
  }
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and drained.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace xpv
