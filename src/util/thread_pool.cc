#include "util/thread_pool.h"

#include <utility>

#include "util/fault.h"

namespace xpv {

ThreadPool::ThreadPool(int num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads < 1) num_threads = 1;
  // Locked so the guarded `workers_` writes stay inside the proven
  // discipline — the freshly spawned workers contend on mu_ immediately.
  MutexLock lock(mu_);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::EnsureThreads(int num_threads) {
  MutexLock lock(mu_);
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  MutexLock lock(mu_);
  return static_cast<int>(workers_.size());
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

ThreadPool::~ThreadPool() {
  // The workers move out from under the lock before joining: joining
  // while holding mu_ would deadlock (workers need it to drain), and
  // reading `workers_` unlocked would breach its guard.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers) t.join();
}

void ThreadPool::TaskGroup::RunTask(const std::function<void()>& task) {
  // Queued tasks of a cancelled (or already-failed) group are skipped
  // without running their body: a dead batch stops consuming workers the
  // moment its token flips, instead of grinding through the backlog. The
  // expiry check is the cooperative cancel contract — tasks already
  // running poll their own token.
  bool skip = cancel_.Expired();
  if (!skip) {
    MutexLock lock(mu_);
    skip = error_ != nullptr;
  }
  if (skip) {
    MutexLock lock(mu_);
    ++skipped_;
    return;
  }
  try {
    fault::Point("pool.task");
    task();
  } catch (...) {
    // First escapee fails the group; the rest are redundant (the cancel
    // below drains the remaining queue as skips). Captured, not rethrown
    // on the worker: the group's owner receives it via RethrowIfFailed.
    {
      MutexLock lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    cancel_.Cancel();
  }
}

void ThreadPool::TaskGroup::Finish() {
  MutexLock lock(mu_);
  if (--pending_ == 0) cv_.NotifyAll();
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  // pending_ goes up BEFORE the enqueue (a fast worker may finish and
  // decrement first otherwise), and comes back down if the enqueue
  // throws (e.g. bad_alloc) — a wedged count would hang Wait() and the
  // draining destructor forever.
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  std::function<void()> wrapped = [this, task = std::move(task)] {
    RunTask(task);
    Finish();
  };
  try {
    // Backpressure: when the pool's bounded queue refuses, the task runs
    // inline on the submitting thread — the batch makes progress at
    // caller-pays speed instead of growing an unbounded backlog (and a
    // group can never deadlock on its own submissions).
    if (!pool_->TrySubmit(wrapped)) {
      wrapped();
    }
  } catch (...) {
    Finish();
    throw;
  }
}

void ThreadPool::TaskGroup::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) cv_.Wait(mu_);
}

bool ThreadPool::TaskGroup::ok() const {
  MutexLock lock(mu_);
  return error_ == nullptr;
}

void ThreadPool::TaskGroup::RethrowIfFailed() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    error = error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

uint64_t ThreadPool::TaskGroup::skipped() const {
  MutexLock lock(mu_);
  return skipped_;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()>& task) {
  {
    MutexLock lock(mu_);
    if (max_queue_ != 0 && queue_.size() >= max_queue_) {
      queue_rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
    if (queue_.empty()) break;  // stopping_ and drained.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.Unlock();
    // Safety net for raw-Submit tasks: an escaping exception must never
    // std::terminate a worker (it would take the whole service down).
    // TaskGroup tasks capture their own exceptions before this; anything
    // caught here had no owner to report to, so it is counted and
    // dropped.
    try {
      task();
    } catch (...) {
      uncaught_task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.Lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
  }
}

}  // namespace xpv
