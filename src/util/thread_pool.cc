#include "util/thread_pool.h"

#include <utility>

#include "util/fault.h"

namespace xpv {

ThreadPool::ThreadPool(int num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::EnsureThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::TaskGroup::RunTask(const std::function<void()>& task) {
  // Queued tasks of a cancelled (or already-failed) group are skipped
  // without running their body: a dead batch stops consuming workers the
  // moment its token flips, instead of grinding through the backlog. The
  // expiry check is the cooperative cancel contract — tasks already
  // running poll their own token.
  bool skip = cancel_.Expired();
  if (!skip) {
    std::lock_guard<std::mutex> lock(mu_);
    skip = error_ != nullptr;
  }
  if (skip) {
    std::lock_guard<std::mutex> lock(mu_);
    ++skipped_;
    return;
  }
  try {
    fault::Point("pool.task");
    task();
  } catch (...) {
    // First escapee fails the group; the rest are redundant (the cancel
    // below drains the remaining queue as skips). Captured, not rethrown
    // on the worker: the group's owner receives it via RethrowIfFailed.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    cancel_.Cancel();
  }
}

void ThreadPool::TaskGroup::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) cv_.notify_all();
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  // pending_ goes up BEFORE the enqueue (a fast worker may finish and
  // decrement first otherwise), and comes back down if the enqueue
  // throws (e.g. bad_alloc) — a wedged count would hang Wait() and the
  // draining destructor forever.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  std::function<void()> wrapped = [this, task = std::move(task)] {
    RunTask(task);
    Finish();
  };
  try {
    // Backpressure: when the pool's bounded queue refuses, the task runs
    // inline on the submitting thread — the batch makes progress at
    // caller-pays speed instead of growing an unbounded backlog (and a
    // group can never deadlock on its own submissions).
    if (!pool_->TrySubmit(wrapped)) {
      wrapped();
    }
  } catch (...) {
    Finish();
    throw;
  }
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::TaskGroup::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ == nullptr;
}

void ThreadPool::TaskGroup::RethrowIfFailed() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

uint64_t ThreadPool::TaskGroup::skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()>& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_queue_ != 0 && queue_.size() >= max_queue_) {
      queue_rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and drained.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    // Safety net for raw-Submit tasks: an escaping exception must never
    // std::terminate a worker (it would take the whole service down).
    // TaskGroup tasks capture their own exceptions before this; anything
    // caught here had no owner to report to, so it is counted and
    // dropped.
    try {
      task();
    } catch (...) {
      uncaught_task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace xpv
