#ifndef XPV_UTIL_THREAD_POOL_H_
#define XPV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xpv {

/// A small fixed-size worker pool: `num_threads` std::threads draining a
/// FIFO work queue. Built for batch pipelines (`ViewCache::AnswerMany`)
/// that submit a handful of chunk tasks and then barrier on `Wait`.
///
/// Semantics:
///  - `Submit` enqueues a task; any worker may pick it up.
///  - `Wait` blocks until the queue is empty AND no task is running, so
///    after it returns every effect of every submitted task is visible to
///    the caller (the mutex hand-off orders the memory).
///  - Tasks must not submit to the pool they run on and must not throw.
///
/// The pool is reusable: Submit/Wait cycles can repeat, and the threads
/// park on the condition variable between batches. Destruction joins all
/// workers (outstanding tasks finish first).
///
/// `Submit`, `Wait`, `EnsureThreads` and `num_threads` are safe to call
/// from multiple threads; note that `Wait` blocks until the whole queue is
/// drained, including tasks submitted by other callers.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished — including tasks
  /// submitted by OTHER callers sharing this pool. Single-owner batches
  /// only; concurrent callers should await a `TaskGroup` instead.
  void Wait();

  /// A set of tasks that can be awaited independently of other callers'
  /// submissions to the same pool: `Wait` returns when THIS group's tasks
  /// have finished, no matter how busy the shared pool is — a batch
  /// cannot be starved by other batches' sustained submissions.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Drains the group: submitted task wrappers touch this object after
    /// running, so destruction (including exception unwind between
    /// Submit calls) must wait them out rather than dangle.
    ~TaskGroup() { Wait(); }

    void Submit(std::function<void()> task);

    /// Blocks until every task submitted through this group has finished.
    /// The usual pool memory-ordering guarantee applies to the group.
    void Wait();

   private:
    ThreadPool* pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    int pending_ = 0;
  };

  /// Grows the pool *in place* to at least `num_threads` workers: existing
  /// workers keep running (and keep their queued tasks); only the missing
  /// ones are spawned. Never shrinks. Safe while tasks are in flight —
  /// this is how the serving layer adapts to alternating batch sizes
  /// without joining and re-spawning a live pool.
  void EnsureThreads(int num_threads);

  int num_threads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: work or stop.
  std::condition_variable idle_cv_;   // Signals Wait: queue drained.
  std::deque<std::function<void()>> queue_;
  int active_ = 0;     // Tasks currently executing.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xpv

#endif  // XPV_UTIL_THREAD_POOL_H_
