#ifndef XPV_UTIL_THREAD_POOL_H_
#define XPV_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/sync.h"

namespace xpv {

/// A small fixed-size worker pool: `num_threads` std::threads draining a
/// FIFO work queue. Built for batch pipelines (`ViewCache::AnswerMany`)
/// that submit a handful of chunk tasks and then barrier on `Wait`.
///
/// Semantics:
///  - `Submit` enqueues a task; any worker may pick it up.
///  - `TrySubmit` is the bounded flavor: when the pool was built with a
///    queue bound and the queue is full, it refuses (returns false)
///    instead of growing the backlog — the backpressure primitive the
///    serving layer's admission control sits on. The caller runs the task
///    inline or sheds it; `Submit` ignores the bound (internal callers
///    that must not be refused).
///  - `Wait` blocks until the queue is empty AND no task is running, so
///    after it returns every effect of every submitted task is visible to
///    the caller (the mutex hand-off orders the memory).
///  - Tasks must not submit to the pool they run on. A task that throws
///    no longer terminates the process: the pool catches the escapee and
///    counts it (`uncaught_task_exceptions`) — but raw-`Submit` tasks
///    have nowhere to report, so prefer `TaskGroup`, which captures the
///    exception and rethrows it to the awaiting owner.
///
/// The pool is reusable: Submit/Wait cycles can repeat, and the threads
/// park on the condition variable between batches. Destruction joins all
/// workers (outstanding tasks finish first).
///
/// `Submit`, `TrySubmit`, `Wait`, `EnsureThreads` and `num_threads` are
/// safe to call from multiple threads; note that `Wait` blocks until the
/// whole queue is drained, including tasks submitted by other callers.
class ThreadPool {
 public:
  /// `max_queue` == 0 leaves the queue unbounded; otherwise `TrySubmit`
  /// refuses once `max_queue` tasks are waiting (running tasks don't
  /// count — the bound is on backlog, not concurrency).
  explicit ThreadPool(int num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Bounded enqueue: false when the queue bound is configured and
  /// reached (the task is NOT consumed — the caller still owns running
  /// or shedding it). Rejections are counted in `queue_rejections()`.
  [[nodiscard]] bool TrySubmit(std::function<void()>& task);

  /// Blocks until all submitted tasks have finished — including tasks
  /// submitted by OTHER callers sharing this pool. Single-owner batches
  /// only; concurrent callers should await a `TaskGroup` instead.
  void Wait();

  /// A set of tasks that can be awaited independently of other callers'
  /// submissions to the same pool: `Wait` returns when THIS group's tasks
  /// have finished, no matter how busy the shared pool is — a batch
  /// cannot be starved by other batches' sustained submissions.
  ///
  /// Overload safety:
  ///  - A `cancel` token makes the group cooperative: tasks still queued
  ///    when the token expires are *skipped* (they complete without
  ///    running their body), so a cancelled batch stops consuming workers
  ///    instead of grinding through a dead backlog.
  ///  - An exception escaping a task body *fails the group*: the first
  ///    escapee is captured, the group's token is cancelled (draining the
  ///    remaining queued tasks as skips), and `RethrowIfFailed` rethrows
  ///    it on the awaiting thread — a structured error for the owner, not
  ///    `std::terminate` on a worker.
  ///  - When the pool's bounded queue refuses a submission, the task runs
  ///    inline on the submitting thread — backpressure degrades to
  ///    caller-pays, never to loss or deadlock.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool, CancelToken cancel = {})
        : pool_(pool), cancel_(std::move(cancel)) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Drains the group: submitted task wrappers touch this object after
    /// running, so destruction (including exception unwind between
    /// Submit calls) must wait them out rather than dangle.
    ~TaskGroup() { Wait(); }

    void Submit(std::function<void()> task);

    /// Blocks until every task submitted through this group has finished
    /// (ran, was skipped by cancellation, or failed). The usual pool
    /// memory-ordering guarantee applies to the group.
    void Wait();

    /// After `Wait`: true when no task body threw.
    [[nodiscard]] bool ok() const;

    /// After `Wait`: rethrows the first captured task exception, if any —
    /// the group's failure surfaces on the awaiting thread with its
    /// original type (`CancelledError`, `FaultInjectedError`, ...).
    void RethrowIfFailed();

    /// Tasks whose bodies were skipped because the group was cancelled
    /// (or had already failed) before they ran.
    [[nodiscard]] uint64_t skipped() const;

   private:
    /// Runs one task body under the group's protocol (skip / capture).
    void RunTask(const std::function<void()>& task);
    void Finish();  // Decrements pending_, notifies the waiter.

    ThreadPool* pool_;
    CancelToken cancel_;
    mutable Mutex mu_;
    CondVar cv_;
    int pending_ XPV_GUARDED_BY(mu_) = 0;
    uint64_t skipped_ XPV_GUARDED_BY(mu_) = 0;
    std::exception_ptr error_ XPV_GUARDED_BY(mu_);  // First task-body escapee.
  };

  /// Grows the pool *in place* to at least `num_threads` workers: existing
  /// workers keep running (and keep their queued tasks); only the missing
  /// ones are spawned. Never shrinks. Safe while tasks are in flight —
  /// this is how the serving layer adapts to alternating batch sizes
  /// without joining and re-spawning a live pool.
  void EnsureThreads(int num_threads);

  int num_threads() const;

  /// Tasks currently waiting in the queue (racy snapshot; telemetry).
  size_t queue_depth() const;

  /// `TrySubmit` refusals since construction.
  uint64_t queue_rejections() const {
    return queue_rejections_.load(std::memory_order_relaxed);
  }

  /// Exceptions that escaped raw-`Submit` task bodies (caught by the
  /// worker's safety net; `TaskGroup` tasks capture their own and never
  /// reach it).
  uint64_t uncaught_task_exceptions() const {
    return uncaught_task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar work_cv_;  // Signals workers: work or stop.
  CondVar idle_cv_;  // Signals Wait: queue drained.
  std::deque<std::function<void()>> queue_ XPV_GUARDED_BY(mu_);
  const size_t max_queue_;  // 0 = unbounded.
  int active_ XPV_GUARDED_BY(mu_) = 0;  // Tasks currently executing.
  bool stopping_ XPV_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ XPV_GUARDED_BY(mu_);
  std::atomic<uint64_t> queue_rejections_{0};
  std::atomic<uint64_t> uncaught_task_exceptions_{0};
};

}  // namespace xpv

#endif  // XPV_UTIL_THREAD_POOL_H_
