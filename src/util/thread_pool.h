#ifndef XPV_UTIL_THREAD_POOL_H_
#define XPV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xpv {

/// A small fixed-size worker pool: `num_threads` std::threads draining a
/// FIFO work queue. Built for batch pipelines (`ViewCache::AnswerMany`)
/// that submit a handful of chunk tasks and then barrier on `Wait`.
///
/// Semantics:
///  - `Submit` enqueues a task; any worker may pick it up.
///  - `Wait` blocks until the queue is empty AND no task is running, so
///    after it returns every effect of every submitted task is visible to
///    the caller (the mutex hand-off orders the memory).
///  - Tasks must not submit to the pool they run on and must not throw.
///
/// The pool is reusable: Submit/Wait cycles can repeat, and the threads
/// park on the condition variable between batches. Destruction joins all
/// workers (outstanding tasks finish first).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: work or stop.
  std::condition_variable idle_cv_;   // Signals Wait: queue drained.
  std::deque<std::function<void()>> queue_;
  int active_ = 0;     // Tasks currently executing.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xpv

#endif  // XPV_UTIL_THREAD_POOL_H_
