#ifndef XPV_UTIL_RESULT_H_
#define XPV_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace xpv {

/// A minimal value-or-error holder used by the parsers, the serving facade
/// and other fallible operations. The library does not use exceptions;
/// fallible entry points return `Result<T, E>` and callers are expected to
/// check `ok()` before dereferencing.
///
/// `E` defaults to `std::string` (a bare human-readable message); richer
/// layers substitute structured error types (`XPathParseError`,
/// `ServiceError`). The error is boxed internally so `Result<T, T>` and
/// `Result<std::string>` stay unambiguous.
///
/// The class itself is `[[nodiscard]]`: a call that returns any `Result`
/// instantiation (including the `Status`/`ServiceResult`/`ServiceStatus`
/// aliases) and drops the value is a compile error under the project's
/// `-Werror=unused-result`. A deliberate discard must be spelled
/// `(void)call()` with a `// discard:` justification on the same line —
/// `tools/check_contracts.py` rejects unexplained casts.
template <typename T, typename E = std::string>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result carrying `error`.
  static Result Error(E error) {
    return Result(ErrorBox{std::move(error)});
  }

  /// True if this result holds a value.
  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }

  /// The held value. Requires `ok()`.
  [[nodiscard]] const T& value() const {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() {
    assert(ok());
    return std::get<0>(storage_);
  }

  /// Moves the held value out, returning it *by value* (the previous
  /// `T&&` return made it easy to bind a reference to the spent
  /// internals). Requires `ok()`; the result is left holding a
  /// moved-from value.
  [[nodiscard]] T take() {
    assert(ok());
    return std::move(std::get<0>(storage_));
  }

  /// The held value, or `fallback` when this result is an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }
  [[nodiscard]] T value_or(T fallback) && {
    return ok() ? std::move(std::get<0>(storage_)) : std::move(fallback);
  }

  /// The error. Requires `!ok()`.
  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(storage_).error;
  }

 private:
  struct ErrorBox {
    E error;
  };
  explicit Result(ErrorBox box) : storage_(std::move(box)) {}

  std::variant<T, ErrorBox> storage_;
};

/// The `Result<void, E>` specialization: success carries no value, so this
/// is a plain "did it work" status for mutation APIs. Default-constructed
/// means success. `[[nodiscard]]` like the primary template: a dropped
/// status is a dropped error.
template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  /// Constructs a successful status.
  Result() = default;

  /// Constructs an error status carrying `error`.
  static Result Error(E error) { return Result(std::move(error)); }

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }

  /// The error. Requires `!ok()`.
  [[nodiscard]] const E& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  explicit Result(E error) : error_(std::move(error)) {}

  std::optional<E> error_;
};

/// Status of a fallible mutation with a string diagnostic and no payload.
using Status = Result<void>;

/// Explicitly-named success value for `Status`-returning functions.
inline Status OkStatus() { return Status(); }

}  // namespace xpv

#endif  // XPV_UTIL_RESULT_H_
