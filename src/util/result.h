#ifndef XPV_UTIL_RESULT_H_
#define XPV_UTIL_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace xpv {

/// A minimal value-or-error holder used by the parsers and other fallible
/// operations. The library does not use exceptions; fallible entry points
/// return `Result<T>` and callers are expected to check `ok()` before
/// dereferencing.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result carrying a human-readable message.
  static Result Error(std::string message) {
    return Result(ErrorTag{}, std::move(message));
  }

  /// True if this result holds a value.
  bool ok() const { return storage_.index() == 0; }

  /// The held value. Requires `ok()`.
  const T& value() const {
    assert(ok());
    return std::get<0>(storage_);
  }
  T& value() {
    assert(ok());
    return std::get<0>(storage_);
  }

  /// Moves the held value out. Requires `ok()`.
  T&& take() {
    assert(ok());
    return std::move(std::get<0>(storage_));
  }

  /// The error message. Requires `!ok()`.
  const std::string& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

 private:
  struct ErrorTag {};
  Result(ErrorTag, std::string message) : storage_(std::move(message)) {}

  std::variant<T, std::string> storage_;
};

}  // namespace xpv

#endif  // XPV_UTIL_RESULT_H_
