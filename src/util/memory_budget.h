#ifndef XPV_UTIL_MEMORY_BUDGET_H_
#define XPV_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace xpv {

/// Shared byte accounting for the serving layer's caches: the answer
/// memo, the containment oracle and the materialized-view result sets all
/// charge their resident bytes against one budget, so the `Service` can
/// see total cache pressure and run its degradation ladder (shrink the
/// memo, shrink the oracle, pause memo admission) *before* any component
/// would have to refuse a write.
///
/// Charges are estimates (container bytes, not allocator-exact) and
/// advisory: `Charge` never fails — the budget observes, the policy layer
/// reacts. All methods are thread-safe; a limit of 0 means unlimited
/// (accounting still runs so telemetry can report usage).
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// True when a limit is configured.
  [[nodiscard]] bool limited() const noexcept { return limit_ != 0; }
  size_t limit() const { return limit_; }

  void Charge(size_t bytes) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }

  /// True when a limit is set and usage has reached it — the signal the
  /// degradation ladder fires on.
  [[nodiscard]] bool OverLimit() const noexcept {
    return limited() && used() >= limit_;
  }

  /// True when usage has fallen below `fraction` of the limit — the
  /// hysteresis signal for undoing reversible degradation steps (memo
  /// admission resumes below the low watermark, not at limit-minus-one).
  [[nodiscard]] bool Below(double fraction) const noexcept {
    return !limited() ||
           used() < static_cast<size_t>(static_cast<double>(limit_) * fraction);
  }

 private:
  const size_t limit_;
  std::atomic<uint64_t> used_{0};
};

/// A move-safe running charge against a budget: `Set` adjusts the charged
/// amount by the delta, destruction releases whatever is still charged,
/// and a moved-from holder holds nothing — components with defaulted move
/// operations (e.g. `ViewCache`) embed one and never double-release. A
/// default-constructed holder (no budget) tracks bytes without charging.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(MemoryBudget* budget) : budget_(budget) {}

  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      if (budget_ != nullptr) budget_->Release(bytes_);
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  ~ScopedCharge() {
    if (budget_ != nullptr) budget_->Release(bytes_);
  }

  /// Adjusts the charge to exactly `bytes` (charging or releasing the
  /// difference).
  void Set(size_t bytes) {
    if (budget_ != nullptr) {
      if (bytes > bytes_) {
        budget_->Charge(bytes - bytes_);
      } else {
        budget_->Release(bytes_ - bytes);
      }
    }
    bytes_ = bytes;
  }

  size_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace xpv

#endif  // XPV_UTIL_MEMORY_BUDGET_H_
