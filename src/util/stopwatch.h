#ifndef XPV_UTIL_STOPWATCH_H_
#define XPV_UTIL_STOPWATCH_H_

#include <chrono>

namespace xpv {

/// Wall-clock stopwatch used by the examples and ad-hoc measurements.
/// (The bench/ binaries use google-benchmark's own timing instead.)
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xpv

#endif  // XPV_UTIL_STOPWATCH_H_
