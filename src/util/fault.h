#ifndef XPV_UTIL_FAULT_H_
#define XPV_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace xpv {
namespace fault {

/// Thrown by an armed fault-injection point. Defined in every build (the
/// catch sites compile unconditionally); only ever thrown when the hooks
/// are compiled in AND armed. The serving facade converts it into the
/// structured `kInternal` error — an injected fault must surface exactly
/// like a real allocation failure would: structured, never a crash.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const char* site)
      : std::runtime_error(std::string("injected fault at ") + site),
        site_(site) {}

  const char* site() const { return site_; }

 private:
  const char* site_;
};

#ifdef XPV_FAULT_INJECTION

/// True when the hooks are compiled in (`-DXPV_FAULT_INJECTION=on`). The
/// default build compiles them to empty inline functions — zero overhead,
/// asserted by `FaultInjectionTest.HooksCompiledOutInDefaultBuild`.
inline constexpr bool kEnabled = true;

/// Process-wide injector state. Deterministically seeded: every thread
/// derives its stream from (seed, thread ordinal), so a single-threaded
/// run replays exactly and a multi-threaded run is reproducible up to
/// scheduling (the chaos suite asserts invariants, not exact histories).
struct InjectorState {
  std::atomic<uint32_t> per_million{0};  ///< Failure probability; 0 = off.
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> epoch{0};     ///< Bumped per Arm(); reseeds threads.
  std::atomic<uint64_t> injected{0};  ///< Faults thrown since process start.
  std::atomic<uint64_t> next_thread_ordinal{0};
};

inline InjectorState& GlobalInjector() {
  static InjectorState state;
  return state;
}

/// Arms every fault point with probability `per_million` / 1e6, streams
/// seeded from `seed`. Thread-safe; `per_million == 0` disarms.
inline void Arm(uint64_t seed, uint32_t per_million) {
  InjectorState& g = GlobalInjector();
  g.seed.store(seed, std::memory_order_relaxed);
  g.per_million.store(per_million, std::memory_order_relaxed);
  g.epoch.fetch_add(1, std::memory_order_relaxed);
}

inline void Disarm() { GlobalInjector().per_million.store(0); }

inline uint64_t InjectedCount() {
  return GlobalInjector().injected.load(std::memory_order_relaxed);
}

namespace internal {
/// splitmix64 — the repo's standard cheap mixer (util/hash.h duplicates
/// it; kept local so this header stays dependency-free for the library's
/// lowest layer).
inline uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct ThreadStream {
  uint64_t state = 0;
  uint64_t epoch = ~uint64_t{0};
  uint64_t ordinal = 0;
  bool ordinal_minted = false;
};

inline thread_local ThreadStream tls_stream;
}  // namespace internal

/// A fault-injection point. When armed, throws `FaultInjectedError(site)`
/// with the configured probability, drawn from this thread's
/// deterministic stream. Hook points live at allocation-heavy sites
/// (view materialization), oracle/memo fills, and pool task boundaries —
/// the places a real bad_alloc or backend failure would originate.
inline void Point(const char* site) {
  InjectorState& g = GlobalInjector();
  const uint32_t per_million = g.per_million.load(std::memory_order_relaxed);
  if (per_million == 0) return;
  internal::ThreadStream& s = internal::tls_stream;
  if (!s.ordinal_minted) {
    s.ordinal = g.next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
    s.ordinal_minted = true;
  }
  const uint64_t epoch = g.epoch.load(std::memory_order_relaxed);
  if (s.epoch != epoch) {
    s.epoch = epoch;
    s.state = internal::Mix(g.seed.load(std::memory_order_relaxed) ^
                            internal::Mix(s.ordinal + 1));
  }
  s.state = internal::Mix(s.state);
  if (s.state % 1000000u < per_million) {
    g.injected.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(site);
  }
}

#else  // !XPV_FAULT_INJECTION

inline constexpr bool kEnabled = false;

/// No-op hooks: the default build carries zero fault-injection overhead —
/// `Point` is an empty inline function the optimizer erases entirely.
inline void Point(const char*) {}
inline void Arm(uint64_t, uint32_t) {}
inline void Disarm() {}
inline uint64_t InjectedCount() { return 0; }

#endif  // XPV_FAULT_INJECTION

}  // namespace fault
}  // namespace xpv

#endif  // XPV_UTIL_FAULT_H_
