#ifndef XPV_UTIL_SINGLE_FLIGHT_H_
#define XPV_UTIL_SINGLE_FLIGHT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/sync.h"

namespace xpv {

/// Collapses a stampede of concurrent cache misses of one key into a
/// single computation: the first thread to arrive *leads* (computes and
/// publishes), every other thread *joins* (blocks on a per-key latch and
/// receives the leader's value). Keys are compared EXACTLY — never by
/// hash alone — because a collision would hand a waiter the wrong value.
///
/// Protocol:
///   auto jr = flights.Join(key, probe);
///   if (jr.immediate) return *jr.immediate;            // probe hit
///   if (jr.ticket.leader()) {
///     Value v = compute();
///     publish_side_effect(v);   // e.g. insert into the backing cache
///     flights.Publish(jr.ticket, v);
///     return v;
///   }
///   if (std::optional<Value> v = flights.Wait(jr.ticket)) return *v;
///   return compute();           // leader abandoned (exception unwind)
///
/// The optional `probe` runs under the registry lock at the moment this
/// thread would otherwise become leader, and `Publish` removes the key
/// from the registry under the same lock AFTER the caller's publish side
/// effect. A thread arriving after the in-flight entry disappeared
/// therefore re-probes the backing store and finds the freshly published
/// value — the window where a second computation of the same key could
/// start is closed, not merely narrowed. `probe` must not acquire any
/// lock that other threads hold while calling into this registry.
///
/// A leader ticket destroyed without `Publish` (exception unwind)
/// *abandons* the flight: waiters wake with `nullopt` and compute for
/// themselves, so an abandoned key never strands its queue.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class SingleFlight {
  struct Flight {
    Mutex m;
    CondVar cv;
    int state XPV_GUARDED_BY(m) = 0;  // 0 pending, 1 published, 2 abandoned.
    Value value XPV_GUARDED_BY(m){};
  };

 public:
  /// A participation handle. Move-only; a leader ticket that goes out of
  /// scope unresolved abandons its flight (waking all waiters).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        flight_ = std::move(other.flight_);
        key_ = other.key_;
        leader_ = other.leader_;
        resolved_ = other.resolved_;
        other.owner_ = nullptr;
        other.flight_ = nullptr;
        other.leader_ = false;
        other.resolved_ = false;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// False for a default-constructed / moved-from / probe-hit ticket.
    [[nodiscard]] bool valid() const noexcept { return flight_ != nullptr; }
    [[nodiscard]] bool leader() const noexcept { return leader_; }

   private:
    friend class SingleFlight;
    void Release() {
      if (owner_ != nullptr && flight_ != nullptr && leader_ && !resolved_) {
        owner_->Abandon(*this);
      }
    }

    SingleFlight* owner_ = nullptr;
    std::shared_ptr<Flight> flight_;
    Key key_{};
    bool leader_ = false;
    bool resolved_ = false;
  };

  struct JoinResult {
    /// Engaged when `probe` answered under the registry lock (the value
    /// was published between the caller's miss and this Join).
    std::optional<Value> immediate;
    Ticket ticket;
  };

  /// Joins (or starts) the flight for `key`. `probe()` is invoked under
  /// the registry lock only when this thread is about to lead; an engaged
  /// return short-circuits the flight entirely.
  template <typename ProbeFn>
  [[nodiscard]] JoinResult Join(const Key& key, ProbeFn&& probe)
      XPV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      joins_.fetch_add(1, std::memory_order_relaxed);
      JoinResult r;
      r.ticket.owner_ = this;
      r.ticket.flight_ = it->second;
      r.ticket.key_ = key;
      r.ticket.leader_ = false;
      return r;
    }
    if (std::optional<Value> v = probe()) {
      return JoinResult{std::move(v), Ticket{}};
    }
    auto flight = std::make_shared<Flight>();
    flights_.emplace(key, flight);
    leads_.fetch_add(1, std::memory_order_relaxed);
    JoinResult r;
    r.ticket.owner_ = this;
    r.ticket.flight_ = std::move(flight);
    r.ticket.key_ = key;
    r.ticket.leader_ = true;
    return r;
  }

  [[nodiscard]] JoinResult Join(const Key& key) {
    return Join(key, [] { return std::optional<Value>(); });
  }

  /// Leader only: resolves the flight with `value`, waking every waiter.
  /// Call AFTER the publish side effect (cache insert): the key leaves
  /// the registry here, and late arrivals re-probe the backing store.
  void Publish(Ticket& ticket, Value value) {
    EraseFlight(ticket);
    {
      MutexLock fl(ticket.flight_->m);
      ticket.flight_->state = 1;
      ticket.flight_->value = std::move(value);
    }
    ticket.flight_->cv.NotifyAll();
    ticket.resolved_ = true;
  }

  /// Follower only: blocks until the leader publishes (returns the value)
  /// or abandons (returns nullopt — compute for yourself).
  [[nodiscard]] std::optional<Value> Wait(Ticket& ticket) {
    MutexLock fl(ticket.flight_->m);
    while (ticket.flight_->state == 0) {
      ticket.flight_->cv.Wait(ticket.flight_->m);
    }
    ticket.resolved_ = true;
    if (ticket.flight_->state == 1) return ticket.flight_->value;
    return std::nullopt;
  }

  /// `Wait` with a cooperative escape hatch: `poll()` is invoked every few
  /// milliseconds while blocked, so a joiner holding a deadline or cancel
  /// token is never stranded on the latch — its poll throws
  /// (`CancelledError`), the wait unwinds, and the flight is untouched
  /// (non-leader tickets never abandon). The latency is bounded by the
  /// poll period, not by the leader's computation.
  template <typename PollFn>
  [[nodiscard]] std::optional<Value> WaitPolling(Ticket& ticket,
                                                 PollFn&& poll) {
    MutexLock fl(ticket.flight_->m);
    while (ticket.flight_->state == 0) {
      if (!ticket.flight_->cv.WaitFor(ticket.flight_->m,
                                      std::chrono::milliseconds(2))) {
        fl.Unlock();
        poll();  // May throw; the flight stays pending for other waiters.
        fl.Lock();
      }
    }
    ticket.resolved_ = true;
    if (ticket.flight_->state == 1) return ticket.flight_->value;
    return std::nullopt;
  }

  uint64_t leads() const { return leads_.load(std::memory_order_relaxed); }
  uint64_t joins() const { return joins_.load(std::memory_order_relaxed); }
  uint64_t abandons() const {
    return abandons_.load(std::memory_order_relaxed);
  }

  /// In-flight keys right now (for tests; racy by nature).
  size_t pending() const XPV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return flights_.size();
  }

 private:
  void Abandon(Ticket& ticket) {
    EraseFlight(ticket);
    {
      MutexLock fl(ticket.flight_->m);
      ticket.flight_->state = 2;
    }
    ticket.flight_->cv.NotifyAll();
    ticket.resolved_ = true;
    abandons_.fetch_add(1, std::memory_order_relaxed);
  }

  void EraseFlight(const Ticket& ticket) XPV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = flights_.find(ticket.key_);
    if (it != flights_.end() && it->second == ticket.flight_) {
      flights_.erase(it);
    }
  }

  mutable Mutex mu_;
  std::unordered_map<Key, std::shared_ptr<Flight>, Hash> flights_
      XPV_GUARDED_BY(mu_);
  std::atomic<uint64_t> leads_{0};
  std::atomic<uint64_t> joins_{0};
  std::atomic<uint64_t> abandons_{0};
};

}  // namespace xpv

#endif  // XPV_UTIL_SINGLE_FLIGHT_H_
