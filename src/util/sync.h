#ifndef XPV_UTIL_SYNC_H_
#define XPV_UTIL_SYNC_H_

// The project's only doorway to the standard synchronization primitives.
//
// Every mutex, shared mutex and condition variable in the tree lives
// behind the wrappers below so that Clang Thread Safety Analysis
// (-Wthread-safety) can prove the locking discipline at compile time:
// which fields a capability guards (`XPV_GUARDED_BY`), which helpers may
// only run with a lock held (`XPV_REQUIRES` / `XPV_REQUIRES_SHARED`),
// and which scopes acquire and release. On GCC — and on any compiler
// without the attributes — everything collapses to zero-cost
// passthroughs over the std types.
//
// Two tiers of RAII locks:
//
//  - `MutexLock` / `ReaderLock` / `WriterLock` are SCOPED_CAPABILITY
//    types: block-scoped, non-movable, fully visible to the analysis.
//    Use these everywhere a lock begins and ends in one lexical scope —
//    which is almost everywhere.
//
//  - `ReaderLockHandle` / `WriterLockHandle` are movable and
//    default-constructible, for the few places whose locking is
//    inherently dynamic: the `Service` access structs that carry a
//    stripe lock across a return, the address-ordered stripe *vector*
//    in `AnswerBatchUnderScope`, and conditional fallback locking in
//    the containment oracle. The analysis cannot track a lock that is
//    moved or stored, so these handles are deliberately invisible to
//    it; code holding one re-enters the proven world by calling
//    `mu.AssertHeld()` / `mu.AssertShared()` at the point of use, which
//    tells the analysis (truthfully) that the capability is held.
//
// `tools/lint_invariants.py` enforces that no other file names a raw
// std sync primitive; `tests/compile_fail/` proves the annotations
// reject real violations under clang.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Annotation macros (no-ops outside clang).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define XPV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define XPV_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares a type to be a capability (lock) the analysis tracks.
#define XPV_CAPABILITY(x) XPV_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define XPV_SCOPED_CAPABILITY XPV_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read with `x` held (shared) / written with `x`
/// held exclusively.
#define XPV_GUARDED_BY(x) XPV_THREAD_ANNOTATION__(guarded_by(x))

/// The *pointee* of this pointer is guarded by `x`.
#define XPV_PT_GUARDED_BY(x) XPV_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capability exclusively / shared.
#define XPV_REQUIRES(...) \
  XPV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define XPV_REQUIRES_SHARED(...) \
  XPV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not already be held).
#define XPV_ACQUIRE(...) \
  XPV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define XPV_ACQUIRE_SHARED(...) \
  XPV_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define XPV_RELEASE(...) \
  XPV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define XPV_RELEASE_SHARED(...) \
  XPV_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define XPV_RELEASE_GENERIC(...) \
  XPV_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquire; the boolean result tells whether it
/// succeeded.
#define XPV_TRY_ACQUIRE(...) \
  XPV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define XPV_TRY_ACQUIRE_SHARED(...) \
  XPV_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions
/// that acquire it themselves).
#define XPV_EXCLUDES(...) XPV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion visible to the analysis: after the call, the
/// capability is known to be held. The bridge from the movable handles
/// back into the proven world.
#define XPV_ASSERT_HELD(...) \
  XPV_THREAD_ANNOTATION__(assert_capability(__VA_ARGS__))
#define XPV_ASSERT_SHARED(...) \
  XPV_THREAD_ANNOTATION__(assert_shared_capability(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define XPV_RETURN_CAPABILITY(x) XPV_THREAD_ANNOTATION__(lock_returned(x))

/// Named escape hatch. Every use site must carry a comment justifying
/// why the locking pattern is beyond the analysis (the invariant linter
/// counts bare uses as violations of taste, reviewers as violations of
/// policy).
#define XPV_NO_THREAD_SAFETY_ANALYSIS \
  XPV_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace xpv {

// ---------------------------------------------------------------------------
// Capabilities.
// ---------------------------------------------------------------------------

/// A plain exclusive mutex. Same cost and semantics as `std::mutex`;
/// the annotations are the only addition.
class XPV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XPV_ACQUIRE() { m_.lock(); }
  void Unlock() XPV_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool TryLock() XPV_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Tells the analysis this thread holds the mutex (no runtime check;
  /// the std primitives expose no ownership query). Used at the seam
  /// where a movable handle re-enters annotated code.
  void AssertHeld() const XPV_ASSERT_HELD() {}

  /// The raw primitive — for `CondVar` and the scoped/movable locks in
  /// this header only. Deliberately invisible to the analysis.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// A reader/writer mutex. Same cost and semantics as
/// `std::shared_mutex`.
class XPV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() XPV_ACQUIRE() { m_.lock(); }
  void Unlock() XPV_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool TryLock() XPV_TRY_ACQUIRE(true) { return m_.try_lock(); }

  void LockShared() XPV_ACQUIRE_SHARED() { m_.lock_shared(); }
  void UnlockShared() XPV_RELEASE_SHARED() { m_.unlock_shared(); }
  [[nodiscard]] bool TryLockShared() XPV_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

  void AssertHeld() const XPV_ASSERT_HELD() {}
  void AssertShared() const XPV_ASSERT_SHARED() {}

  std::shared_mutex& native() { return m_; }

 private:
  std::shared_mutex m_;
};

// ---------------------------------------------------------------------------
// Scoped locks (tier 1: fully analysis-visible, non-movable).
// ---------------------------------------------------------------------------

/// Exclusive RAII lock on a `Mutex`. Relockable: `Unlock()` releases
/// early, `Lock()` re-acquires — both visible to the analysis — so a
/// worker loop can drop the lock around a task body without leaving
/// the proven world.
class XPV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XPV_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.native().lock();
  }
  ~MutexLock() XPV_RELEASE_GENERIC() {
    if (held_) mu_.native().unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() XPV_RELEASE() {
    mu_.native().unlock();
    held_ = false;
  }
  void Lock() XPV_ACQUIRE() {
    mu_.native().lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Shared (reader) RAII lock on a `SharedMutex`.
class XPV_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) XPV_ACQUIRE_SHARED(mu)
      : mu_(mu), held_(true) {
    mu_.native().lock_shared();
  }
  ~ReaderLock() XPV_RELEASE_GENERIC() {
    if (held_) mu_.native().unlock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  void Unlock() XPV_RELEASE() {
    mu_.native().unlock_shared();
    held_ = false;
  }

 private:
  SharedMutex& mu_;
  bool held_;
};

/// Exclusive (writer) RAII lock on a `SharedMutex`.
class XPV_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) XPV_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.native().lock();
  }
  ~WriterLock() XPV_RELEASE_GENERIC() {
    if (held_) mu_.native().unlock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void Unlock() XPV_RELEASE() {
    mu_.native().unlock();
    held_ = false;
  }

 private:
  SharedMutex& mu_;
  bool held_;
};

// ---------------------------------------------------------------------------
// Movable lock handles (tier 2: analysis-invisible by design).
// ---------------------------------------------------------------------------

/// Movable shared lock for dynamic disciplines: stored in the
/// `Service` access structs, collected into the address-ordered stripe
/// vector, or engaged conditionally. The analysis does not see it;
/// code that holds one calls `mu.AssertShared()` where it touches
/// guarded state.
class ReaderLockHandle {
 public:
  ReaderLockHandle() = default;
  explicit ReaderLockHandle(SharedMutex& mu) : lock_(mu.native()) {}
  ReaderLockHandle(ReaderLockHandle&&) = default;
  ReaderLockHandle& operator=(ReaderLockHandle&&) = default;

  void Unlock() { lock_.unlock(); }
  bool owns() const { return lock_.owns_lock(); }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Movable exclusive lock; the writer-side counterpart of
/// `ReaderLockHandle`. Same rules: invisible to the analysis, pair
/// with `mu.AssertHeld()` at use sites.
class WriterLockHandle {
 public:
  WriterLockHandle() = default;
  explicit WriterLockHandle(SharedMutex& mu) : lock_(mu.native()) {}
  WriterLockHandle(WriterLockHandle&&) = default;
  WriterLockHandle& operator=(WriterLockHandle&&) = default;

  void Unlock() { lock_.unlock(); }
  bool owns() const { return lock_.owns_lock(); }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

// ---------------------------------------------------------------------------
// Condition variable.
// ---------------------------------------------------------------------------

/// Condition variable over a `Mutex`. Waits adopt the caller's already
/// held lock (the `XPV_REQUIRES` contract) and hand it back on return,
/// so the capability is continuously held from the analysis's point of
/// view — which matches reality: the wait re-acquires before
/// returning.
///
/// There are deliberately no predicate overloads: a lambda predicate
/// is a separate function to the analysis, so guarded reads inside it
/// would need their own annotations. Write the standard loop instead —
///     while (!condition) cv.Wait(mu);
/// — which keeps the guarded reads in the function that provably holds
/// the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, re-acquires `mu`.
  void Wait(Mutex& mu) XPV_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still owns the mutex, as annotated.
  }

  /// Timed wait; false on timeout. Spurious wakeups return true, so
  /// callers loop on their condition either way.
  template <typename Rep, typename Period>
  [[nodiscard]] bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      XPV_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xpv

#endif  // XPV_UTIL_SYNC_H_
