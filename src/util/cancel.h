#ifndef XPV_UTIL_CANCEL_H_
#define XPV_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

namespace xpv {

/// Thrown by cooperative cancellation points (`PollCancellation`) when the
/// installed `CancelToken` has expired. The serving facade catches it at
/// its entry points and converts it into the structured
/// `kDeadlineExceeded`/`kCancelled` errors — no caller of `src/api/` ever
/// sees this type escape.
class CancelledError : public std::exception {
 public:
  explicit CancelledError(bool deadline_exceeded)
      : deadline_exceeded_(deadline_exceeded) {}

  /// True when a deadline ran out, false for an explicit `Cancel()`.
  [[nodiscard]] bool deadline_exceeded() const noexcept {
    return deadline_exceeded_;
  }

  const char* what() const noexcept override {
    return deadline_exceeded_ ? "deadline exceeded" : "cancelled";
  }

 private:
  bool deadline_exceeded_;
};

/// A shared, copyable cancellation handle: an optional deadline plus an
/// explicit cancel flag, checked *cooperatively* at pipeline phase
/// boundaries and (amortized) inside the long-running kernels. A
/// default-constructed token is null — it never expires and costs one
/// pointer test to poll.
///
/// Tokens form at most one level of linkage: a token built with
/// `Derived()` also expires when its parent does (the serving facade links
/// a caller-provided cancel handle with a per-call deadline this way).
class CancelToken {
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::shared_ptr<State> parent;  // At most one level deep.

    bool Expired(bool* deadline_exceeded) const {
      if (cancelled.load(std::memory_order_relaxed)) {
        *deadline_exceeded = false;
        return true;
      }
      if (has_deadline &&
          std::chrono::steady_clock::now() >= deadline) {
        *deadline_exceeded = true;
        return true;
      }
      if (parent != nullptr) return parent->Expired(deadline_exceeded);
      return false;
    }
  };

 public:
  /// Null token: `Expired()` is always false, `Cancel()` is a no-op.
  CancelToken() = default;

  /// A cancellable token with no deadline (expires only via `Cancel`).
  [[nodiscard]] static CancelToken Cancellable() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// A token that expires at `deadline` (and via `Cancel`).
  [[nodiscard]] static CancelToken WithDeadline(
      std::chrono::steady_clock::time_point deadline) {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    t.state_->has_deadline = true;
    t.state_->deadline = deadline;
    return t;
  }

  /// A token that expires at `deadline` OR when `*this` expires — the
  /// facade combines a caller's explicit cancel handle with the per-call
  /// deadline through this. Requires `*this` to be underived (one level).
  [[nodiscard]] CancelToken Derived(
      std::chrono::steady_clock::time_point deadline) const {
    CancelToken t = WithDeadline(deadline);
    t.state_->parent = state_;
    return t;
  }

  /// False for the null token.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Signals explicit cancellation. Thread-safe; no-op on a null token.
  /// Cooperative: in-flight work observes it at its next poll.
  void Cancel() {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point>
  deadline() const {
    if (state_ == nullptr || !state_->has_deadline) return std::nullopt;
    return state_->deadline;
  }

  /// True when cancelled or past the deadline (of this token or its
  /// parent). Reads the clock only when a deadline is set.
  [[nodiscard]] bool Expired() const {
    bool unused;
    return state_ != nullptr && state_->Expired(&unused);
  }

  /// Throws `CancelledError` when expired; otherwise returns.
  void Poll() const {
    bool deadline_exceeded;
    if (state_ != nullptr && state_->Expired(&deadline_exceeded)) {
      throw CancelledError(deadline_exceeded);
    }
  }

 private:
  friend class CancelScope;
  std::shared_ptr<State> state_;
};

namespace internal {
/// The thread's installed cancellation token (null when none). A raw
/// pointer into the scope-owned token keeps the poll fast-path to one
/// thread-local read and one null test.
inline thread_local const CancelToken* tls_cancel_token = nullptr;
}  // namespace internal

/// Installs `token` as the thread's current cancellation token for the
/// scope's lifetime (restoring the previous one on exit). The deep kernels
/// — the canonical-model odometer, the evaluation DP walks, the
/// single-flight latches — poll the *current* token through
/// `PollCancellation()`, so threading a deadline through the whole
/// pipeline is one scope at the entry point plus one per worker task (the
/// batch pipeline re-installs the submitting call's token on its workers).
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token)
      : token_(token), previous_(internal::tls_cancel_token) {
    internal::tls_cancel_token = token_.valid() ? &token_ : nullptr;
  }
  ~CancelScope() { internal::tls_cancel_token = previous_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The thread's current token; a null token when no scope is active.
  [[nodiscard]] static CancelToken Current() {
    return internal::tls_cancel_token == nullptr ? CancelToken()
                                                 : *internal::tls_cancel_token;
  }

 private:
  const CancelToken token_;
  const CancelToken* const previous_;
};

/// Cooperative cancellation point: throws `CancelledError` when the
/// thread's current token has expired; a no-op (one thread-local read)
/// when no token is installed. Call at phase boundaries; inside hot loops
/// amortize through `CancelCheck`.
inline void PollCancellation() {
  const CancelToken* token = internal::tls_cancel_token;
  if (token != nullptr) token->Poll();
}

/// Amortized poll for hot loops: `Tick()` is one increment and one mask
/// test (branch-cheap — the canonical-model odometer and the DP row walks
/// call it per model/row); every `kStride` ticks it reads the clock via
/// `PollCancellation`.
class CancelCheck {
 public:
  static constexpr uint32_t kStride = 256;

  void Tick() {
    if ((++count_ & (kStride - 1)) == 0) PollCancellation();
  }

 private:
  uint32_t count_ = 0;
};

}  // namespace xpv

#endif  // XPV_UTIL_CANCEL_H_
