#ifndef XPV_UTIL_HASH_H_
#define XPV_UTIL_HASH_H_

#include <cstdint>

namespace xpv {

/// The SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used
/// wherever the codebase folds ids/fingerprints into hash-table keys
/// (answer-memo keys, composite fingerprints). Not cryptographic.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Order-sensitive combination of two mixed words (boost-style, with the
/// golden-ratio odd constant): combine(a, b) != combine(b, a).
inline uint64_t HashCombine64(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace xpv

#endif  // XPV_UTIL_HASH_H_
