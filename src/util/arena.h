#ifndef XPV_UTIL_ARENA_H_
#define XPV_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace xpv {

/// A bump allocator for per-call scratch: allocation is a pointer bump,
/// `Reset` rewinds to the start *keeping every block*, so a warm arena
/// serves an arbitrary sequence of scratch lifetimes with zero heap
/// traffic. This is the storage discipline behind the cold-path loops —
/// the canonical-model odometer and the selection sweeps reset their arena
/// between models/calls instead of re-malloc'ing vectors.
///
/// Only trivially-destructible types may live here (nothing is ever
/// destroyed, only rewound). Not thread-safe: one arena belongs to one
/// kernel object (`EvalScratch`, `ContainmentContext`), which is itself
/// confined to a thread.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB
  /// Every block base is aligned this much, so any requested alignment up
  /// to 64 is absolute, not just block-relative (bit rows want 32).
  static constexpr size_t kBlockAlign = 64;

  explicit Arena(size_t first_block_bytes = kDefaultBlockBytes)
      : first_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two, <= 64).
  /// Valid until the next `Reset`.
  void* Allocate(size_t bytes, size_t align) {
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++block_;
      offset_ = 0;
    }
    AppendBlock(bytes + align);
    Block& b = blocks_.back();
    const size_t aligned = (offset_ + align - 1) & ~(align - 1);
    offset_ = aligned + bytes;
    return b.data.get() + aligned;
  }

  /// Typed array allocation. `T` must be trivially destructible (the arena
  /// never runs destructors) and is returned uninitialized.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is rewound, never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to the first block. Every block is kept; previously returned
  /// pointers become invalid (their storage will be handed out again).
  void Reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Total bytes owned across all blocks (observability / tests).
  size_t CapacityBytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  size_t BlockCount() const { return blocks_.size(); }

 private:
  struct AlignedFree {
    void operator()(std::byte* p) const {
      ::operator delete(p, std::align_val_t{kBlockAlign});
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], AlignedFree> data;
    size_t size = 0;
  };

  void AppendBlock(size_t min_bytes) {
    // Geometric growth keeps the block list short; a request larger than
    // the doubled size gets its own exactly-sized block.
    size_t size = blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    Block b;
    b.data.reset(static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kBlockAlign})));
    b.size = size;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;   // Current block index.
  size_t offset_ = 0;  // Bump offset within the current block.
};

}  // namespace xpv

#endif  // XPV_UTIL_ARENA_H_
