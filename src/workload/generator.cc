#include "workload/generator.h"

#include <cassert>
#include <string>

#include "pattern/algebra.h"
#include "pattern/canonical.h"
#include "pattern/properties.h"

namespace xpv {

LabelId GenLabel(int i) {
  std::string name = "a";
  name.append(std::to_string(i));
  return L(name);
}

namespace {

LabelId DrawLabel(Rng& rng, const PatternGenOptions& options) {
  if (rng.Chance(options.wildcard_prob)) return LabelStore::kWildcard;
  return GenLabel(rng.IntIn(0, options.alphabet_size - 1));
}

EdgeType DrawEdge(Rng& rng, const PatternGenOptions& options) {
  return rng.Chance(options.descendant_prob) ? EdgeType::kDescendant
                                             : EdgeType::kChild;
}

}  // namespace

Pattern RandomPattern(Rng& rng, const PatternGenOptions& options) {
  const int depth = rng.IntIn(options.min_depth, options.max_depth);
  Pattern p(DrawLabel(rng, options));
  NodeId spine = p.root();
  for (int i = 0; i < depth; ++i) {
    spine = p.AddChild(spine, DrawLabel(rng, options), DrawEdge(rng, options));
  }
  p.set_output(spine);

  const int branches = rng.IntIn(0, options.max_branches);
  for (int b = 0; b < branches; ++b) {
    // Attach a small chain/branch at any existing node.
    NodeId attach = static_cast<NodeId>(rng.Below(
        static_cast<uint64_t>(p.size())));
    int branch_size = rng.IntIn(1, options.max_branch_size);
    NodeId cur = attach;
    for (int i = 0; i < branch_size; ++i) {
      cur = p.AddChild(cur, DrawLabel(rng, options), DrawEdge(rng, options));
      // Occasionally fork within the branch.
      if (rng.Chance(0.25)) cur = attach;
    }
  }
  return p;
}

Tree RandomTree(Rng& rng, const TreeGenOptions& options) {
  Tree t(GenLabel(rng.IntIn(0, options.alphabet_size - 1)));
  std::vector<std::pair<NodeId, int>> frontier = {{t.root(), 0}};
  while (t.size() < options.max_nodes && !frontier.empty()) {
    size_t pick = rng.Below(frontier.size());
    auto [node, depth] = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<long>(pick));
    if (depth >= options.max_depth) continue;
    int fanout = rng.IntIn(0, options.max_fanout);
    for (int i = 0; i < fanout && t.size() < options.max_nodes; ++i) {
      NodeId c = t.AddChild(
          node, GenLabel(rng.IntIn(0, options.alphabet_size - 1)));
      frontier.push_back({c, depth + 1});
    }
  }
  return t;
}

Pattern PrefixView(Rng& rng, const Pattern& p, int* k_out) {
  SelectionInfo info(p);
  const int k = rng.IntIn(0, info.depth());
  if (k_out != nullptr) *k_out = k;
  return UpperPattern(p, k);
}

Pattern PerturbedView(Rng& rng, const Pattern& p, int* k_out) {
  Pattern v = PrefixView(rng, p, k_out);
  const int perturbations = rng.IntIn(0, 2);
  for (int i = 0; i < perturbations; ++i) {
    if (v.size() <= 1) break;
    NodeId n = 1 + static_cast<NodeId>(rng.Below(
                       static_cast<uint64_t>(v.size() - 1)));
    switch (rng.Below(3)) {
      case 0:
        v.set_edge(n, EdgeType::kDescendant);
        break;
      case 1:
        v.set_label(n, LabelStore::kWildcard);
        break;
      case 2: {
        // Delete a branch node if it is a leaf off the selection path.
        if (v.children(n).empty() && n != v.output()) {
          // Rebuild without n by marking: simplest is label it '*' instead
          // when it cannot be removed cheaply; removal handled by
          // RemoveSubtree in containment/minimize.h, but that would add a
          // dependency here; wildcarding is an adequate generalization.
          v.set_label(n, LabelStore::kWildcard);
        }
        break;
      }
    }
  }
  return v;
}

Pattern RandomSubFragmentPattern(Rng& rng, const PatternGenOptions& options,
                                 int fragment) {
  PatternGenOptions adjusted = options;
  switch (fragment) {
    case 0:  // XP^{//,[]}: no wildcards.
      adjusted.wildcard_prob = 0.0;
      break;
    case 1:  // XP^{/,[],*}: no descendant edges.
      adjusted.descendant_prob = 0.0;
      break;
    case 2:  // XP^{//,*}: linear.
      adjusted.max_branches = 0;
      break;
    default:
      assert(false);
  }
  return RandomPattern(rng, adjusted);
}

DocumentDelta RandomDelta(Rng& rng, const Tree& doc,
                          const DeltaGenOptions& options) {
  DocumentDelta delta;
  // A shadow copy tracks the evolving id space (inserts append) and which
  // ids earlier ops of this delta killed, so every drawn target is live.
  Tree shadow = doc;
  std::vector<uint8_t> dead(static_cast<size_t>(shadow.size()), 0);
  const int ops = rng.IntIn(1, std::max(1, options.max_ops));
  for (int i = 0; i < ops; ++i) {
    std::vector<NodeId> live;
    for (NodeId n = 0; n < shadow.size(); ++n) {
      if (dead[static_cast<size_t>(n)] == 0) live.push_back(n);
    }
    const NodeId target = live[rng.Below(live.size())];
    const double roll =
        static_cast<double>(rng.Below(1000)) / 1000.0;
    if (roll < options.insert_prob) {
      TreeGenOptions sub_options;
      sub_options.max_nodes = rng.IntIn(1, std::max(1, options.max_insert_nodes));
      sub_options.max_depth = 3;
      sub_options.alphabet_size = options.alphabet_size;
      Tree sub = RandomTree(rng, sub_options);
      shadow.GraftCopy(target, sub);
      dead.resize(static_cast<size_t>(shadow.size()), 0);
      delta.InsertSubtree(target, std::move(sub));
    } else if (roll < options.insert_prob + options.delete_prob &&
               target != shadow.root()) {
      for (NodeId n : shadow.SubtreeNodes(target)) {
        dead[static_cast<size_t>(n)] = 1;
      }
      delta.DeleteSubtree(target);
    } else {
      const LabelId label = GenLabel(rng.IntIn(0, options.alphabet_size - 1));
      shadow.set_label(target, label);
      delta.Relabel(target, label);
    }
  }
  return delta;
}

Tree DocumentWithMatches(Rng& rng, const Pattern& p,
                         const TreeGenOptions& options, int copies) {
  Tree doc = RandomTree(rng, options);
  for (int i = 0; i < copies; ++i) {
    CanonicalModelEnumerator en(p, /*max_len=*/2);
    // Draw a random bounded canonical model of p.
    std::vector<int> lengths(en.DescendantEdgeTargets().size());
    for (int& len : lengths) len = rng.IntIn(1, 2);
    CanonicalModel model = en.Build(lengths);
    // Canonical models use ⊥ for wildcards; relabel those to random Σ
    // labels so the document looks natural (wildcards match any label).
    for (NodeId n = 0; n < model.tree.size(); ++n) {
      if (model.tree.label(n) == LabelStore::kBottom) {
        model.tree.set_label(
            n, GenLabel(rng.IntIn(0, options.alphabet_size - 1)));
      }
    }
    NodeId graft_at = static_cast<NodeId>(rng.Below(
        static_cast<uint64_t>(doc.size())));
    // Graft the model's children under a node labeled like the model root:
    // simplest faithful embedding is grafting the whole model as a child of
    // a random node — matches of p anchored below the root still witness
    // weak matches; for root-anchored matches the caller can query with a
    // '*//' prefix or we graft under the root. Keep both possible.
    doc.GraftCopy(graft_at, model.tree);
  }
  return doc;
}

}  // namespace xpv
