#ifndef XPV_WORKLOAD_GENERATOR_H_
#define XPV_WORKLOAD_GENERATOR_H_

#include <vector>

#include "pattern/pattern.h"
#include "util/rng.h"
#include "xml/tree.h"

namespace xpv {

/// Shape knobs for random pattern generation. The generator first draws a
/// selection path (spine) and then attaches branch subtrees, matching how
/// the paper's figures are built.
struct PatternGenOptions {
  int min_depth = 1;          ///< Minimum selection-path length.
  int max_depth = 4;          ///< Maximum selection-path length.
  int max_branches = 3;       ///< Branch subtrees attached to random nodes.
  int max_branch_size = 3;    ///< Nodes per branch subtree.
  double wildcard_prob = 0.3; ///< Probability a node is labeled '*'.
  double descendant_prob = 0.35;  ///< Probability an edge is '//'.
  int alphabet_size = 4;      ///< Labels drawn from {a0..a(n-1)}.
};

/// Draws a random pattern of XP^{//,[],*}.
Pattern RandomPattern(Rng& rng, const PatternGenOptions& options);

/// Shape knobs for random document generation.
struct TreeGenOptions {
  int max_nodes = 200;
  int max_depth = 8;
  int max_fanout = 4;
  int alphabet_size = 4;  ///< Labels drawn from {a0..a(n-1)}.
};

/// Draws a random document tree.
Tree RandomTree(Rng& rng, const TreeGenOptions& options);

/// The i-th generator label ("a0", "a1", ...).
LabelId GenLabel(int i);

/// Derives a view from a query such that a rewriting is guaranteed to
/// exist: V = P≤k for a random 0 <= k <= depth(P) (then P≥k ∘ V is
/// isomorphic to P, so P≥k is a rewriting). Returns the view and sets
/// `*k_out` to the chosen prefix depth.
Pattern PrefixView(Rng& rng, const Pattern& p, int* k_out);

/// Derives a "perturbed" view from a query: starts from P≤k and then
/// randomly generalizes it (relaxes a child edge to a descendant edge,
/// wildcards a branch label, or deletes a branch). The resulting instances
/// may or may not admit rewritings — this is the adversarial mix used by
/// the rule-coverage bench (C6).
Pattern PerturbedView(Rng& rng, const Pattern& p, int* k_out);

/// A random pattern constrained to one of the three homomorphism
/// sub-fragments (used by the C4 bench): 0 = no wildcards, 1 = no
/// descendant edges, 2 = linear.
Pattern RandomSubFragmentPattern(Rng& rng, const PatternGenOptions& options,
                                 int fragment);

/// Builds a document guaranteed to contain matches of `p`: `copies`
/// canonical models of p grafted at random nodes of a random backbone.
Tree DocumentWithMatches(Rng& rng, const Pattern& p,
                         const TreeGenOptions& options, int copies);

/// Shape knobs for random document deltas and mixed read-write request
/// streams (PR 9).
struct DeltaGenOptions {
  int max_ops = 4;           ///< Ops per delta, drawn from [1, max_ops].
  double insert_prob = 0.4;  ///< P(op is a subtree insert).
  double delete_prob = 0.3;  ///< P(op is a subtree delete); rest relabel.
  int max_insert_nodes = 6;  ///< Nodes per inserted subtree.
  int alphabet_size = 4;     ///< Labels drawn from {a0..a(n-1)}.
  /// Read-write mix for request-stream drivers (benches, fuzzers): the
  /// fraction of stream steps that are document updates rather than query
  /// answers. `RandomDelta` itself ignores it — drivers draw
  /// `rng.Chance(write_fraction)` per step and call `RandomDelta` on the
  /// write branch.
  double write_fraction = 0.1;
};

/// Draws a random delta that is valid against `doc` (per
/// `Tree::ValidateDelta`): ordered inserts, deletes and relabels whose
/// node ids reference the op-by-op evolving id space. The generator never
/// deletes the root and never references a node an earlier op of the same
/// delta deleted, so every op is observable in the final document.
DocumentDelta RandomDelta(Rng& rng, const Tree& doc,
                          const DeltaGenOptions& options);

}  // namespace xpv

#endif  // XPV_WORKLOAD_GENERATOR_H_
