#ifndef XPV_API_SERVICE_H_
#define XPV_API_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "containment/oracle.h"
#include "pattern/pattern.h"
#include "rewrite/engine.h"
#include "util/cancel.h"
#include "util/memory_budget.h"
#include "util/result.h"
#include "views/answer_cache.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {

class ThreadPool;

/// Machine-readable classification of a `Service` failure. Every fallible
/// entry point of the serving facade reports one of these through
/// `ServiceResult` — no user input can reach an assert/abort through
/// `src/api/`.
enum class ServiceErrorCode {
  kParseError,         ///< Malformed XPath or XML input.
  kUnknownDocument,    ///< The handle was never minted (default/invalid).
  kDuplicateViewName,  ///< The document already has a view with this name.
  kEmptyPattern,       ///< The pattern is the empty pattern Υ.
  /// `UpdateDocument`: the delta references a node outside the document's
  /// (op-by-op evolving) id space, omits an insert subtree, or tries to
  /// delete the root. Detected by validation before any mutation — the
  /// document is unchanged.
  kInvalidDelta,
  /// The handle no longer (or never did) resolve on this Service: its
  /// target was removed or replaced, its slot was recycled for a newer
  /// object, or it was minted by a *different* Service instance. Stale
  /// handles are detected exactly — a recycled slot never silently
  /// resolves to the wrong document or view.
  kStaleHandle,
  /// The call's deadline expired before the item was answered. Items
  /// answered before expiry are returned alongside (partial batches); an
  /// already-expired call fails every item without planning any work.
  kDeadlineExceeded,
  /// The caller's `CancelToken` fired before the item was answered.
  kCancelled,
  /// Admission control refused the call: too many in-flight serving
  /// calls. Fails fast (no planning, no locks); `retry_after_ms` carries
  /// a backoff hint.
  kOverloaded,
  /// An internal fault (injected fault, allocation failure) was absorbed
  /// into a structured error instead of crashing. The Service stays
  /// consistent; the request may be retried.
  kInternal,
};

/// Stable identifier string for a code (e.g. "parse_error").
const char* ToString(ServiceErrorCode code);

/// A structured `Service` failure: code, human-readable message (for parse
/// errors including the one-line `position N: ...` summary plus caret
/// context), and — for `kParseError` on XPath input — the byte offset of
/// the offending character (-1 when unavailable).
struct ServiceError {
  ServiceErrorCode code = ServiceErrorCode::kParseError;
  std::string message;
  int64_t offset = -1;
  /// For `kOverloaded`: suggested backoff before retrying, scaled by how
  /// far past the admission limit the Service is. -1 otherwise.
  int64_t retry_after_ms = -1;
};

/// `Result` flavors used by the facade: structured errors, not strings.
/// `ServiceStatus` is the payload-free flavor of the mutation APIs
/// (`RemoveDocument`, `ReplaceDocument`, `RemoveView`).
template <typename T>
using ServiceResult = Result<T, ServiceError>;
using ServiceStatus = Result<void, ServiceError>;

/// Generation-tagged handle to a document registered with a `Service`.
///
/// `slot` is the dense storage index, `generation` disambiguates
/// successive occupants of a recycled slot, and `service` is the instance
/// tag of the minting Service — a handle fed to a different Service (which
/// also mints slots from 0) is rejected with `kStaleHandle` instead of
/// silently resolving to an unrelated document.
struct DocumentId {
  int32_t slot = -1;
  uint32_t generation = 0;
  uint32_t service = 0;

  [[nodiscard]] bool valid() const noexcept {
    return slot >= 0 && generation != 0 && service != 0;
  }
  friend bool operator==(DocumentId a, DocumentId b) {
    return a.slot == b.slot && a.generation == b.generation &&
           a.service == b.service;
  }
  friend bool operator!=(DocumentId a, DocumentId b) { return !(a == b); }
};

/// Generation-tagged handle to a view: the owning document plus the view's
/// slot within that document's cache and the slot's generation at mint
/// time. View generations are minted monotonically per document slot, so
/// neither `RemoveView` slot reuse nor `ReplaceDocument` (which drops all
/// views) can resurrect an old handle.
struct ViewId {
  DocumentId document;
  int32_t slot = -1;
  uint32_t generation = 0;

  [[nodiscard]] bool valid() const noexcept {
    return document.valid() && slot >= 0 && generation != 0;
  }
  friend bool operator==(ViewId a, ViewId b) {
    return a.document == b.document && a.slot == b.slot &&
           a.generation == b.generation;
  }
  friend bool operator!=(ViewId a, ViewId b) { return !(a == b); }
};

/// A typed query request: either an already-built `Pattern` or an XPath
/// string the Service parses on demand. Batches deduplicate requests by
/// the pattern's canonical fingerprint (two textually different XPaths for
/// isomorphic patterns are answered once). XPath parse failures surface as
/// `ServiceError`s; inside a batch they fail only their own slot.
class Query {
 public:
  Query(Pattern pattern)  // NOLINT(runtime/explicit)
      : pattern_(std::move(pattern)), has_pattern_(true) {}
  Query(std::string xpath)  // NOLINT(runtime/explicit)
      : pattern_(Pattern::Empty()), xpath_(std::move(xpath)) {}
  Query(std::string_view xpath)  // NOLINT(runtime/explicit)
      : Query(std::string(xpath)) {}
  // A null C string is treated as empty (which parses to a structured
  // "empty expression" error) — never undefined behavior.
  Query(const char* xpath)  // NOLINT(runtime/explicit)
      : Query(std::string(xpath == nullptr ? "" : xpath)) {}

  [[nodiscard]] bool holds_pattern() const noexcept { return has_pattern_; }
  /// The held pattern. Requires `holds_pattern()`.
  const Pattern& pattern() const { return pattern_; }
  /// The held XPath string. Requires `!holds_pattern()`.
  const std::string& xpath() const { return xpath_; }

 private:
  Pattern pattern_;
  std::string xpath_;
  bool has_pattern_ = false;
};

/// The serving-facade answer is the cache answer: hit/miss, the view and
/// rewriting used, and the query result as sorted node ids of the
/// document.
using Answer = CacheAnswer;

/// One request of a cross-document batch.
struct BatchItem {
  DocumentId document;
  Query query;
};

/// Per-item outcomes of `Service::AnswerBatch`, parallel to the request
/// vector: a slot fails alone (malformed XPath, stale handle) without
/// disturbing the other answers.
struct BatchAnswers {
  std::vector<ServiceResult<Answer>> answers;

  size_t size() const { return answers.size(); }
};

/// Per-call serving knobs for `Answer`/`AnswerBatch`. Deadlines and
/// cancellation are cooperative: the pipeline polls the combined token at
/// phase boundaries, between per-document batch slices, inside the
/// canonical-model odometer and the evaluation walks (amortized), and
/// while parked on single-flight latches — an expired call returns
/// structured `kDeadlineExceeded` per item with the already-answered
/// prefix intact, never a hang. Any item answered under a deadline is
/// bit-identical to the unconstrained answer.
struct CallOptions {
  /// Absolute deadline for the call. Unset = use the Service's
  /// `default_deadline` (which may itself be "none").
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Caller-held cancellation handle; `cancel.Cancel()` from any thread
  /// aborts the call at its next poll with `kCancelled` items. A default
  /// (null) token never fires.
  CancelToken cancel;
  /// `AnswerBatch` only: worker count; <= 0 means
  /// `ServiceOptions::default_workers`.
  int num_workers = 0;
};

/// Aggregated serving statistics across every document of a `Service`.
struct ServiceStats {
  uint64_t documents = 0;
  uint64_t views = 0;
  uint64_t queries = 0;          ///< Queries answered (hits + misses).
  uint64_t hits = 0;             ///< Answered through a view rewriting.
  uint64_t rewrite_unknown = 0;  ///< Queries where some view got kUnknown.
  uint64_t failed_requests = 0;  ///< Requests rejected with a ServiceError.
  uint64_t oracle_hits = 0;      ///< Shared containment-oracle hits.
  uint64_t oracle_misses = 0;    ///< Shared containment-oracle misses.
  /// Worker threads alive in the shared pool. The pool only ever grows in
  /// place (up to the hardware cap), so alternating small and large
  /// batches reuse threads instead of joining and re-spawning them.
  uint64_t pool_threads = 0;
  /// Epoch-keyed answer-memo counters (see `AnswerCache`): a hit served a
  /// stored answer without touching the rewrite engine; serving counters
  /// (`queries`/`hits`/`rewrite_unknown`) are unaffected either way — a
  /// memo hit replays the stored scan's deltas verbatim.
  uint64_t answer_cache_hits = 0;
  uint64_t answer_cache_misses = 0;
  uint64_t answer_cache_evictions = 0;
  uint64_t answer_cache_entries = 0;  ///< Resident memo entries.
  /// Inserts the memo's doorkeeper turned away: under capacity pressure a
  /// key must be presented twice before it may evict a resident entry, so
  /// one-off queries cannot sweep out the proven-hot memo.
  uint64_t answer_cache_doorkeeper_rejects = 0;
  // ----- overload / robustness counters (PR 7) -----
  uint64_t deadline_exceeded = 0;  ///< Items failed on an expired deadline.
  uint64_t cancelled = 0;          ///< Items failed on explicit cancel.
  uint64_t overloaded = 0;         ///< Calls refused by admission control.
  uint64_t internal_errors = 0;    ///< Faults absorbed into kInternal.
  uint64_t inflight_calls = 0;     ///< Serving calls running right now.
  /// Shared memory budget: estimated resident bytes across the answer
  /// memo, the containment oracle and all materialized views, and the
  /// configured limit (0 = unlimited; accounting still runs).
  uint64_t memory_used_bytes = 0;
  uint64_t memory_limit_bytes = 0;
  /// Degradation-ladder transitions: each rung fires only while the rung
  /// above left the budget over limit. Memo admission pauses are undone
  /// (with hysteresis) once usage falls below the low watermark.
  uint64_t memory_memo_shrinks = 0;
  uint64_t memory_oracle_shrinks = 0;
  uint64_t memory_admission_pauses = 0;
  uint64_t memory_admission_resumes = 0;
  /// Memo inserts dropped while admission was paused (the write was
  /// acknowledged and served; only memoization was skipped).
  uint64_t answer_cache_admission_drops = 0;
  /// Pool tasks refused by the bounded queue (ran inline on the
  /// submitting thread instead — backpressure, not failure).
  uint64_t pool_queue_rejections = 0;
  // ----- incremental update counters (PR 9) -----
  uint64_t updates_applied = 0;  ///< `UpdateDocument` calls that landed.
  /// Per-update view outcomes, summed: views patched through the
  /// persistent DP state vs. views that paid a full evaluation pass
  /// (cold DP state, or the whole update fell back) vs. views the
  /// dirtiness test proved untouched (no evaluation at all).
  uint64_t update_views_patched = 0;
  uint64_t update_views_rematerialized = 0;
  uint64_t update_views_untouched = 0;
  /// Updates whose dirty region exceeded `update_fallback_fraction` and
  /// re-materialized every view instead of patching.
  uint64_t update_fallbacks = 0;
  /// Memoized answers for this document still valid after an update
  /// (untouched views' hit entries) — the per-view epoch contract at work.
  uint64_t update_memo_entries_preserved = 0;
};

/// Configuration of a `Service`.
struct ServiceOptions {
  /// Engine options used by every per-document cache. The `oracle` field
  /// is ignored: the Service always injects its own shared oracle.
  RewriteOptions rewrite;
  /// Capacity of the shared containment oracle.
  size_t oracle_capacity = ContainmentOracle::kDefaultCapacity;
  /// Capacity (in entries) of the epoch-keyed answer memo probed by
  /// `Answer`/`AnswerBatch` before the rewrite engine runs. 0 disables
  /// memoization entirely (every request recomputes — the baseline the
  /// equivalence tests and benches compare against).
  size_t answer_cache_capacity = AnswerCache::kDefaultCapacity;
  /// Doorkeeper admission for the answer memo (see `AnswerCache`): under
  /// capacity pressure, first-seen keys are rejected once before they may
  /// displace resident entries. Only bites when the memo is full.
  bool answer_cache_doorkeeper = true;
  /// Worker count used by `AnswerBatch` when the call passes 0.
  int default_workers = 1;
  /// Default per-call deadline applied when a call does not carry its
  /// own (`CallOptions::deadline` wins). Zero = no default deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Admission control: maximum concurrently executing serving calls
  /// (`Answer` + `AnswerBatch`). Calls past the limit fail fast with
  /// `kOverloaded` and a retry-after hint. 0 = unlimited.
  int max_inflight_calls = 0;
  /// Bound on the shared pool's task queue; a full queue makes batch
  /// submission run chunks inline on the submitting thread
  /// (backpressure) instead of growing the queue. 0 = unbounded.
  size_t max_queued_tasks = 0;
  /// Shared byte budget across the answer memo, the containment oracle
  /// and all materialized views. When estimated usage crosses the limit
  /// the Service degrades gracefully (shrink memo -> shrink oracle ->
  /// pause memo admission) instead of refusing writes. 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// `UpdateDocument` fallback threshold: when the delta's dirty region
  /// (touched nodes + dirty ancestor rows + inserted suffix) exceeds this
  /// fraction of the post-delta document, incremental per-view patching
  /// is abandoned and every view is fully re-materialized — the update's
  /// worst case is then one evaluation pass per view, never worse than
  /// `ReplaceDocument` plus re-adding the views.
  double update_fallback_fraction = 0.5;
};

/// The multi-document serving facade — the paper's end-to-end story (a
/// cache answering many users' queries from materialized views) behind one
/// stable front door:
///
///   Service service;
///   auto doc = service.AddDocument("<a><b><c/></b></a>");
///   service.AddView(doc.value(), "b-view", "a/b");
///   auto answer = service.Answer(doc.value(), "a/b/c");
///
/// Documents and views are interned behind generation-tagged
/// `DocumentId`/`ViewId` handles whose slots are recycled through free
/// lists: `RemoveDocument`/`RemoveView`/`ReplaceDocument` invalidate
/// outstanding handles *detectably* — every later use reports
/// `kStaleHandle` instead of resolving to the slot's new occupant. A
/// handle minted by another Service instance is rejected the same way.
/// Every fallible entry point returns `ServiceResult`/`ServiceStatus`
/// with a structured `ServiceError` instead of asserting.
///
/// Internally the Service owns ONE shared `ContainmentOracle` (behind a
/// `SynchronizedOracle`), ONE lazily created, grow-in-place `ThreadPool`,
/// and ONE epoch-keyed `AnswerCache`, injected into a `ViewCache` per
/// document: equivalence tests amortize across documents. `AnswerBatch`
/// is a service-wide batch planner — every query of a cross-document
/// batch is canonicalized ONCE (parse + canonical fingerprint + selection
/// summary per distinct fingerprint, across all documents), each
/// document's slice is probed against the answer memo, and only the
/// misses run the batched/parallel `ViewCache` pipeline on the shared
/// pool. A batch asking the same query over 50 documents pays the
/// per-query setup once; a repeated batch answers from the memo without
/// touching the rewrite engine at all.
///
/// Thread safety: `Answer`, `AnswerBatch`, `document`, `view`, `cache`,
/// `num_views`, `num_documents` and `stats` are *shared* operations — any
/// number may run concurrently from multiple threads. `AddDocument`,
/// `AddView`, `RemoveDocument`, `RemoveView` and `ReplaceDocument` are
/// *exclusive* per document (a striped `shared_mutex` per document slot;
/// `AddDocument`/`RemoveDocument` additionally serialize on the slot
/// table) and may run concurrently with shared operations on *other*
/// documents. Answers never tear: a query observes the view set either
/// before or after a concurrent mutation, and its outputs always equal
/// direct evaluation against the document. Pointers returned by
/// `document`/`view`/`cache` stay valid until that document (or view) is
/// removed or replaced — do not use them across a concurrent removal.
/// Move construction/assignment and destruction require external
/// quiescence. Movable, not copyable.
class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;
  Service(Service&&) noexcept;
  Service& operator=(Service&&) noexcept;

  // ------------------------------------------------------------ documents

  /// Registers an already-built document. Infallible. Handles minted for
  /// previously removed slots carry a fresh generation.
  [[nodiscard]] DocumentId AddDocument(Tree document);

  /// Parses `xml` and registers the resulting document.
  [[nodiscard]] ServiceResult<DocumentId> AddDocument(std::string_view xml);

  /// Removes the document and all its views. The document handle and
  /// every `ViewId` on it become stale; the slot is recycled for future
  /// `AddDocument` calls with a bumped generation, so the old handles are
  /// rejected with `kStaleHandle` forever.
  [[nodiscard]] ServiceStatus RemoveDocument(DocumentId id);

  /// Replaces the document behind `id` in place: the *document* handle
  /// stays valid and now serves the new tree; all existing views are
  /// dropped (their `ViewId`s become stale — a view materialized over the
  /// old tree cannot answer for the new one).
  [[nodiscard]] ServiceStatus ReplaceDocument(DocumentId id, Tree document);

  /// As above, from XML (adds: parse error).
  [[nodiscard]] ServiceStatus ReplaceDocument(DocumentId id, std::string_view xml);

  /// Applies an ordered list of subtree inserts, subtree deletes and node
  /// relabels to the document *in place*, incrementally maintaining every
  /// layer above it: the bit-parallel DP re-runs only over the touched
  /// region (touched subtrees + dirty ancestor chains), materialized views
  /// splice their result sets instead of re-evaluating, and views the
  /// per-view dirtiness test proves untouched do no work at all — their
  /// memoized answers survive the update as cache hits (per-view epochs;
  /// see the README's "Incremental updates" section for the contract).
  ///
  /// Unlike `ReplaceDocument`, views SURVIVE: every `ViewId` remains
  /// valid and serves the post-delta document. Node-id stability: without
  /// delete compaction ids are stable; with deletes, surviving nodes are
  /// compacted order-preservingly and all stored answers re-key (the
  /// answer memo for this document is invalidated wholesale).
  ///
  /// When the dirty region exceeds `ServiceOptions::
  /// update_fallback_fraction` of the post-delta document, the update
  /// falls back to fully re-materializing every view (counted in
  /// `ServiceStats::update_fallbacks`).
  ///
  /// Errors: `kInvalidDelta` (validation failed; document unchanged),
  /// `kStaleHandle`/`kUnknownDocument`, `kDeadlineExceeded`/`kCancelled`
  /// (only before mutation begins — an update that started applying runs
  /// to completion), `kInternal` (injected fault or allocation failure
  /// before mutation; document unchanged).
  [[nodiscard]] ServiceStatus UpdateDocument(DocumentId id, DocumentDelta delta);

  /// As above with deadline/cancellation. The token is honored up to the
  /// point of no return (validation and admission), then masked: a delta
  /// is applied atomically or not at all, never half-way.
  [[nodiscard]] ServiceStatus UpdateDocument(DocumentId id, DocumentDelta delta,
                               const CallOptions& call);

  /// Number of live documents.
  [[nodiscard]] int num_documents() const;

  /// The document behind `id`, or null when `id` is stale/unknown.
  [[nodiscard]] const Tree* document(DocumentId id) const;

  // ---------------------------------------------------------------- views

  /// Materializes `pattern` over the document and registers it under
  /// `name` (unique per document; a removed view's name may be reused).
  /// Errors: stale/unknown document, duplicate view name, empty pattern.
  [[nodiscard]] ServiceResult<ViewId> AddView(DocumentId document, std::string name,
                                Pattern pattern);

  /// As above, from an XPath expression (adds: parse error with offset).
  [[nodiscard]] ServiceResult<ViewId> AddView(DocumentId document, std::string name,
                                std::string_view xpath);

  /// Removes one view: its handle becomes stale, its name and slot are
  /// recycled (the slot with a fresh generation).
  [[nodiscard]] ServiceStatus RemoveView(ViewId id);

  /// Number of live views on `document` (0 when stale/unknown).
  [[nodiscard]] int num_views(DocumentId document) const;

  /// The view definition behind `id`, or null when `id` is stale/unknown.
  [[nodiscard]] const ViewDefinition* view(ViewId id) const;

  // -------------------------------------------------------------- serving

  /// Answers one query against one document, probing the epoch-keyed
  /// answer memo first (a repeat of a recently answered query under an
  /// unchanged view set skips the rewrite engine; answers and serving
  /// stats are identical either way). An empty pattern selects nothing
  /// and answers with an empty miss (matching `ViewCache`); a malformed
  /// XPath or stale/unknown document is a `ServiceError`.
  /// Safe to call concurrently with other shared operations and with
  /// mutations of other documents.
  /// (`xpv::Answer` is qualified because the member name shadows it.)
  [[nodiscard]] ServiceResult<xpv::Answer> Answer(DocumentId document, const Query& query);

  /// As above with per-call deadline/cancellation and admission control:
  /// an expired or cancelled call returns `kDeadlineExceeded`/
  /// `kCancelled`; past the in-flight limit it returns `kOverloaded`
  /// without planning any work.
  [[nodiscard]] ServiceResult<xpv::Answer> Answer(DocumentId document, const Query& query,
                                    const CallOptions& call);

  /// Answers a cross-document batch through the service-wide planner:
  /// items are resolved (documents looked up, XPath parsed), every
  /// distinct query (by canonical fingerprint) is summarized ONCE across
  /// all documents, each document slice probes the epoch-keyed answer
  /// memo, and the remaining misses run the batched/parallel `ViewCache`
  /// pipeline (shared candidate bundles, oracle shards) over the
  /// Service's shared pool. Answers come back in request order; a failed
  /// item (parse error, stale/unknown document) occupies its slot as an
  /// error without affecting the other items.
  ///
  /// `num_workers` <= 0 means `options.default_workers`. Answers and
  /// serving statistics are identical for every worker count, and
  /// identical with the memo on or off.
  [[nodiscard]] ServiceResult<BatchAnswers> AnswerBatch(const std::vector<BatchItem>& items,
                                          int num_workers = 0);

  /// As above with per-call deadline/cancellation and admission control.
  /// An already-expired call fails every item with `kDeadlineExceeded`
  /// in O(items) time (no locks, no planning — the <1ms fast path). A
  /// deadline expiring mid-batch returns the already-answered items
  /// (bit-identical to an unconstrained run) and fails the rest; the
  /// whole call errors with `kOverloaded` past the in-flight limit.
  [[nodiscard]] ServiceResult<BatchAnswers> AnswerBatch(const std::vector<BatchItem>& items,
                                          const CallOptions& call);

  // ------------------------------------------------------------ telemetry

  /// Aggregated statistics (computed on demand; safe concurrently).
  [[nodiscard]] ServiceStats stats() const;

  /// The shared containment oracle's table, unsynchronized — requires
  /// external quiescence (no concurrent Service calls); tests and
  /// telemetry only. Its raw `hits()` can lag `stats().oracle_hits`:
  /// fully-cached calls fold their hit counts outside the table (see
  /// `SynchronizedOracle::Absorb`), and only `stats()` adds them back.
  const ContainmentOracle& oracle() const;

  /// The per-document cache behind `id`, or null when `id` is
  /// stale/unknown — read-only escape hatch for view inspection and
  /// tests. Note: the Service's concurrent answer paths do NOT maintain
  /// the cache's own `stats()` (serving counters live in `stats()` at
  /// the Service level).
  [[nodiscard]] const ViewCache* cache(DocumentId id) const;

  /// The shared worker pool (null until a parallel batch created it) —
  /// test-only identity check that batches reuse one grow-in-place pool.
  const ThreadPool* pool_for_testing() const;

  /// The epoch-keyed answer memo (its own synchronization; safe
  /// concurrently) — telemetry and tests.
  const AnswerCache& answer_cache() const;

 private:
  struct Shard;    // One live document: tree + cache + view slot table.
  struct DocSlot;  // One document slot: stripe lock + generation + shard.
  struct State;    // All Service state, heap-stable so moves are cheap.
  struct SharedAccess;     // Stripe (shared) + live shard, or an error.
  struct ExclusiveAccess;  // Stripe (unique) + live shard + slot, or error.

  /// Validates tag + slot range and returns the slot (never null on Ok).
  /// The caller must still check `generation`/`shard` under the slot lock.
  DocSlot* FindSlot(DocumentId id, ServiceError* error) const;
  /// The shared preamble of every per-document entry point: resolve the
  /// slot, take its stripe in the named mode, and check liveness. On
  /// failure the returned access carries the error (no lock held).
  SharedAccess LockLiveShared(DocumentId id) const;
  ExclusiveAccess LockLiveExclusive(DocumentId id);
  /// All slot pointers, snapshotted under (then released from) the table
  /// lock — the telemetry walk must not hold it across stripe waits.
  std::vector<DocSlot*> SnapshotSlots() const;
  /// Lazily creates or grows (never replaces) the shared pool so it has
  /// >= `workers` threads, capped by the hardware.
  ThreadPool* EnsurePool(int workers);
  /// `Answer`'s body, run under the public wrapper's installed
  /// `CancelScope` — cancellation and fault exceptions propagate out to
  /// the wrapper, which maps them to structured errors.
  ServiceResult<xpv::Answer> AnswerUnderScope(DocumentId document,
                                              const Query& query);
  /// `AnswerBatch`'s body, run under the wrapper's `CancelScope`. A
  /// deadline/cancel firing mid-batch is handled HERE, per document
  /// slice: answered items keep their answers, the rest fail — only
  /// planning-phase cancellation propagates to the wrapper.
  BatchAnswers AnswerBatchUnderScope(const std::vector<BatchItem>& items,
                                     int workers);
  /// The call's effective cancellation token: the caller's deadline (or
  /// `options.default_deadline` when unset) linked to the caller's
  /// explicit cancel handle. Null when neither is configured.
  CancelToken MakeCallToken(const CallOptions& call) const;
  /// Runs the degradation ladder when the shared budget is over limit
  /// (shrink memo -> shrink oracle -> pause memo admission), and undoes
  /// the admission pause with hysteresis once pressure clears. At most
  /// one thread relieves at a time; others skip.
  void RelievePressure();

  std::unique_ptr<State> state_;
};

}  // namespace xpv

#endif  // XPV_API_SERVICE_H_
