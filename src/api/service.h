#ifndef XPV_API_SERVICE_H_
#define XPV_API_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "containment/oracle.h"
#include "pattern/pattern.h"
#include "rewrite/engine.h"
#include "util/result.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace xpv {

class ThreadPool;

/// Machine-readable classification of a `Service` failure. Every fallible
/// entry point of the serving facade reports one of these through
/// `ServiceResult` — no user input can reach an assert/abort through
/// `src/api/`.
enum class ServiceErrorCode {
  kParseError,         ///< Malformed XPath or XML input.
  kUnknownDocument,    ///< The `DocumentId` was not minted by this Service.
  kDuplicateViewName,  ///< The document already has a view with this name.
  kEmptyPattern,       ///< The pattern is the empty pattern Υ.
};

/// Stable identifier string for a code (e.g. "parse_error").
const char* ToString(ServiceErrorCode code);

/// A structured `Service` failure: code, human-readable message (for parse
/// errors including the one-line `position N: ...` summary plus caret
/// context), and — for `kParseError` on XPath input — the byte offset of
/// the offending character (-1 when unavailable).
struct ServiceError {
  ServiceErrorCode code = ServiceErrorCode::kParseError;
  std::string message;
  int64_t offset = -1;
};

/// `Result` flavors used by the facade: structured errors, not strings.
/// `ServiceStatus` is the payload-free flavor for mutation APIs (e.g. a
/// future RemoveDocument); no current entry point returns it.
template <typename T>
using ServiceResult = Result<T, ServiceError>;
using ServiceStatus = Result<void, ServiceError>;

/// Interned handle to a document registered with a `Service`.
struct DocumentId {
  int32_t value = -1;

  bool valid() const { return value >= 0; }
  friend bool operator==(DocumentId a, DocumentId b) {
    return a.value == b.value;
  }
  friend bool operator!=(DocumentId a, DocumentId b) {
    return a.value != b.value;
  }
};

/// Interned handle to a view: the owning document plus the view's index
/// within that document's cache (the same index `ViewCache::AddView`
/// returns).
struct ViewId {
  DocumentId document;
  int32_t index = -1;

  bool valid() const { return document.valid() && index >= 0; }
  friend bool operator==(ViewId a, ViewId b) {
    return a.document == b.document && a.index == b.index;
  }
  friend bool operator!=(ViewId a, ViewId b) { return !(a == b); }
};

/// A typed query request: either an already-built `Pattern` or an XPath
/// string the Service parses on demand. Batches deduplicate requests by
/// the pattern's canonical fingerprint (two textually different XPaths for
/// isomorphic patterns are answered once). XPath parse failures surface as
/// `ServiceError`s; inside a batch they fail only their own slot.
class Query {
 public:
  Query(Pattern pattern)  // NOLINT(runtime/explicit)
      : pattern_(std::move(pattern)), has_pattern_(true) {}
  Query(std::string xpath)  // NOLINT(runtime/explicit)
      : pattern_(Pattern::Empty()), xpath_(std::move(xpath)) {}
  Query(std::string_view xpath)  // NOLINT(runtime/explicit)
      : Query(std::string(xpath)) {}
  // A null C string is treated as empty (which parses to a structured
  // "empty expression" error) — never undefined behavior.
  Query(const char* xpath)  // NOLINT(runtime/explicit)
      : Query(std::string(xpath == nullptr ? "" : xpath)) {}

  bool holds_pattern() const { return has_pattern_; }
  /// The held pattern. Requires `holds_pattern()`.
  const Pattern& pattern() const { return pattern_; }
  /// The held XPath string. Requires `!holds_pattern()`.
  const std::string& xpath() const { return xpath_; }

 private:
  Pattern pattern_;
  std::string xpath_;
  bool has_pattern_ = false;
};

/// The serving-facade answer is the cache answer: hit/miss, the view and
/// rewriting used, and the query result as sorted node ids of the
/// document.
using Answer = CacheAnswer;

/// One request of a cross-document batch.
struct BatchItem {
  DocumentId document;
  Query query;
};

/// Per-item outcomes of `Service::AnswerBatch`, parallel to the request
/// vector: a slot fails alone (malformed XPath, unknown document) without
/// disturbing the other answers.
struct BatchAnswers {
  std::vector<ServiceResult<Answer>> answers;

  size_t size() const { return answers.size(); }
};

/// Aggregated serving statistics across every document of a `Service`.
struct ServiceStats {
  uint64_t documents = 0;
  uint64_t views = 0;
  uint64_t queries = 0;          ///< Queries answered (hits + misses).
  uint64_t hits = 0;             ///< Answered through a view rewriting.
  uint64_t rewrite_unknown = 0;  ///< Queries where some view got kUnknown.
  uint64_t failed_requests = 0;  ///< Requests rejected with a ServiceError.
  uint64_t oracle_hits = 0;      ///< Shared containment-oracle hits.
  uint64_t oracle_misses = 0;    ///< Shared containment-oracle misses.
};

/// Configuration of a `Service`.
struct ServiceOptions {
  /// Engine options used by every per-document cache. The `oracle` field
  /// is ignored: the Service always injects its own shared oracle.
  RewriteOptions rewrite;
  /// Capacity of the shared containment oracle.
  size_t oracle_capacity = ContainmentOracle::kDefaultCapacity;
  /// Worker count used by `AnswerBatch` when the call passes 0.
  int default_workers = 1;
};

/// The multi-document serving facade — the paper's end-to-end story (a
/// cache answering many users' queries from materialized views) behind one
/// stable front door:
///
///   Service service;
///   auto doc = service.AddDocument("<a><b><c/></b></a>");
///   service.AddView(doc.value(), "b-view", "a/b");
///   auto answer = service.Answer(doc.value(), "a/b/c");
///
/// Documents and views are interned behind `DocumentId`/`ViewId` handles;
/// requests are `Query` values (pattern or XPath string); every fallible
/// entry point returns `ServiceResult`/`ServiceStatus` with a structured
/// `ServiceError` instead of asserting.
///
/// Internally the Service owns ONE shared `ContainmentOracle` and ONE
/// lazily created `ThreadPool`, injected into a `ViewCache` per document:
/// equivalence tests amortize across documents, and `AnswerBatch` routes
/// each document's slice of a cross-document batch through the
/// batched/parallel `AnswerMany` pipeline on the shared pool.
///
/// Not thread-safe: serialize calls externally (the parallelism lives
/// inside `AnswerBatch`). Movable, not copyable.
class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;
  Service(Service&&) noexcept;
  Service& operator=(Service&&) noexcept;

  // ------------------------------------------------------------ documents

  /// Registers an already-built document. Infallible.
  DocumentId AddDocument(Tree document);

  /// Parses `xml` and registers the resulting document.
  ServiceResult<DocumentId> AddDocument(std::string_view xml);

  int num_documents() const { return static_cast<int>(shards_.size()); }

  /// The document behind `id`, or null when `id` is unknown.
  const Tree* document(DocumentId id) const;

  // ---------------------------------------------------------------- views

  /// Materializes `pattern` over the document and registers it under
  /// `name` (unique per document). Errors: unknown document, duplicate
  /// view name, empty pattern.
  ServiceResult<ViewId> AddView(DocumentId document, std::string name,
                                Pattern pattern);

  /// As above, from an XPath expression (adds: parse error with offset).
  ServiceResult<ViewId> AddView(DocumentId document, std::string name,
                                std::string_view xpath);

  /// Number of views on `document` (0 when unknown).
  int num_views(DocumentId document) const;

  /// The view definition behind `id`, or null when `id` is unknown.
  const ViewDefinition* view(ViewId id) const;

  // -------------------------------------------------------------- serving

  /// Answers one query against one document. An empty pattern selects
  /// nothing and answers with an empty miss (matching `ViewCache`); a
  /// malformed XPath or unknown document is a `ServiceError`.
  /// (`xpv::Answer` is qualified because the member name shadows it.)
  ServiceResult<xpv::Answer> Answer(DocumentId document, const Query& query);

  /// Answers a cross-document batch: items are resolved (documents looked
  /// up, XPath parsed), grouped per document, and each document's slice is
  /// answered by the batched/parallel `ViewCache::AnswerMany` pipeline
  /// (dedup by canonical fingerprint, shared candidate bundles, oracle
  /// shards) over the Service's shared pool. Answers come back in request
  /// order; a failed item (parse error, unknown document) occupies its
  /// slot as an error without affecting the other items.
  ///
  /// `num_workers` <= 0 means `options.default_workers`. Answers are
  /// identical for every worker count.
  ServiceResult<BatchAnswers> AnswerBatch(const std::vector<BatchItem>& items,
                                          int num_workers = 0);

  // ------------------------------------------------------------ telemetry

  /// Aggregated statistics (computed on demand).
  ServiceStats stats() const;

  /// The shared containment oracle.
  const ContainmentOracle& oracle() const { return *oracle_; }

  /// The per-document cache behind `id`, or null when `id` is unknown —
  /// read-only escape hatch for telemetry and tests.
  const ViewCache* cache(DocumentId id) const;

 private:
  struct Shard;  // One document: tree + per-document ViewCache + view names.

  Shard* Find(DocumentId id);
  const Shard* Find(DocumentId id) const;
  /// Lazily (re)creates the shared pool so it has >= `workers` threads.
  ThreadPool* EnsurePool(int workers);

  ServiceOptions options_;
  std::unique_ptr<ContainmentOracle> oracle_;  // Shared across documents.
  std::unique_ptr<ThreadPool> pool_;           // Shared across documents.
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t failed_requests_ = 0;
};

}  // namespace xpv

#endif  // XPV_API_SERVICE_H_
