#ifndef XPV_API_XPV_H_
#define XPV_API_XPV_H_

/// The library's public entry header. Applications (and the bundled
/// examples/tools) include `api/service.h` for the multi-document serving
/// facade, or this umbrella when they also drive the lower-level research
/// surfaces directly: pattern algebra, containment with witnesses,
/// rewriting decisions with explanations, evaluation, view selection, and
/// the XML/XPath front ends. Everything here is `namespace xpv`.
///
/// Headers outside `src/api/` are implementation-organized and may move
/// between releases; downstream code should reach them only through this
/// file.

#include "api/service.h"

// Front ends: XPath fragment XP^{//,[],*} and element-only XML.
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

// The data model: labeled trees, tree patterns, their algebra and
// serializations.
#include "pattern/algebra.h"
#include "pattern/dot.h"
#include "pattern/pattern.h"
#include "pattern/serializer.h"
#include "xml/label.h"
#include "xml/tree.h"

// Decision procedures and evaluation.
#include "containment/containment.h"
#include "containment/minimize.h"
#include "containment/oracle.h"
#include "eval/evaluator.h"
#include "rewrite/engine.h"

// Workload-driven view recommendation.
#include "views/view_selection.h"

#endif  // XPV_API_XPV_H_
