#include "api/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pattern/xpath_parser.h"
#include "util/fault.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

ServiceError MakeError(ServiceErrorCode code, std::string message,
                       int64_t offset = -1) {
  return ServiceError{code, std::move(message), offset, -1};
}

/// The structured error for an expired cancellation, from either the
/// thrown form (mid-call) or the token itself (the pre-call fast path).
/// Explicit cancellation wins over a deadline that also lapsed — the
/// caller asked for the abort, the clock merely agreed.
ServiceError CancelError(bool deadline_exceeded) {
  return deadline_exceeded
             ? MakeError(ServiceErrorCode::kDeadlineExceeded,
                         "deadline exceeded before the item was answered")
             : MakeError(ServiceErrorCode::kCancelled,
                         "call cancelled before the item was answered");
}

ServiceError InternalError(const std::exception& e) {
  return MakeError(ServiceErrorCode::kInternal,
                   std::string("internal fault absorbed: ") + e.what());
}

ServiceError XPathError(std::string_view what, std::string_view input,
                        const XPathParseError& error) {
  return MakeError(
      ServiceErrorCode::kParseError,
      std::string(what) + ": " + error.Format(input),
      static_cast<int64_t>(error.offset));
}

ServiceError StaleError(std::string message) {
  return MakeError(ServiceErrorCode::kStaleHandle, std::move(message));
}

ServiceError StaleDocumentError(DocumentId id) {
  return StaleError("stale document handle (slot " + std::to_string(id.slot) +
                    ", generation " + std::to_string(id.generation) +
                    "): the document was removed or replaced");
}

ServiceError StaleViewError(ViewId id) {
  return StaleError("stale view handle (slot " + std::to_string(id.slot) +
                    ", generation " + std::to_string(id.generation) +
                    "): the view was removed");
}

/// Mints unique, nonzero instance tags for `Service` objects process-wide,
/// so a handle can prove which Service minted it.
uint32_t MintServiceTag() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Resolves a `Query` to the pattern to answer: the borrowed pattern of a
/// pattern-holding query, or the XPath parse result placed in `*storage`.
/// Null on parse failure with `*error` filled — the caller counts the
/// failure. Shared by `Answer` and the `AnswerBatch` planner so the two
/// paths cannot drift in error wording or accounting.
const Pattern* ResolveQueryPattern(const Query& query, Pattern* storage,
                                   ServiceError* error) {
  if (query.holds_pattern()) return &query.pattern();
  Result<Pattern, XPathParseError> parsed = ParseXPathDetailed(query.xpath());
  if (!parsed.ok()) {
    *error = XPathError("query", query.xpath(), parsed.error());
    return nullptr;
  }
  *storage = parsed.take();
  return storage;
}

}  // namespace

const char* ToString(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kParseError:
      return "parse_error";
    case ServiceErrorCode::kUnknownDocument:
      return "unknown_document";
    case ServiceErrorCode::kDuplicateViewName:
      return "duplicate_view_name";
    case ServiceErrorCode::kEmptyPattern:
      return "empty_pattern";
    case ServiceErrorCode::kInvalidDelta:
      return "invalid_delta";
    case ServiceErrorCode::kStaleHandle:
      return "stale_handle";
    case ServiceErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServiceErrorCode::kCancelled:
      return "cancelled";
    case ServiceErrorCode::kOverloaded:
      return "overloaded";
    case ServiceErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

/// One live document. Heap-allocated so the `Tree` (whose address the
/// cache and its materialized views capture) and the cache stay put while
/// the slot table grows.
struct Service::Shard {
  Shard(Tree tree_in, const RewriteOptions& options, ContainmentOracle* oracle,
        MemoryBudget* budget)
      : tree(std::move(tree_in)), cache(tree, options, oracle) {
    // Materialized-view result bytes count against the shared budget from
    // the first AddView on.
    cache.SetMemoryBudget(budget);
  }

  Tree tree;
  ViewCache cache;
  std::unordered_map<std::string, int32_t> view_slot_by_name;

  /// Mint-time generation of each view slot, parallel to `cache.views()`
  /// (liveness itself is the cache's `view_active`; slot recycling is the
  /// cache's own tombstone free list). Generations come from the
  /// DocSlot's monotonic counter, so a recycled view slot never reuses
  /// one.
  std::vector<uint32_t> view_generations;

  /// True when `id` resolves to a live view of this shard: slot in range,
  /// not tombstoned, and minted under the same generation.
  bool ResolvesView(ViewId id) const {
    return id.slot >= 0 &&
           id.slot < static_cast<int32_t>(view_generations.size()) &&
           cache.view_active(id.slot) &&
           view_generations[static_cast<size_t>(id.slot)] == id.generation;
  }

  // Serving statistics. Answer paths hold the stripe lock in *shared*
  // mode, so concurrent answers fold their per-call deltas atomically.
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> rewrite_unknown{0};

  void FoldStats(const CacheStats& delta) {
    queries.fetch_add(delta.queries, std::memory_order_relaxed);
    hits.fetch_add(delta.hits, std::memory_order_relaxed);
    rewrite_unknown.fetch_add(delta.rewrite_unknown,
                              std::memory_order_relaxed);
  }
};

/// One document slot: the stripe lock, the slot generation, and the
/// current occupant. Slots are heap-stable (the table holds pointers) and
/// never destroyed while the Service lives, so a resolved `DocSlot*`
/// outlives any table growth.
struct Service::DocSlot {
  /// Stripe: shared = answer/lookup, exclusive = mutate this document.
  /// Answer paths hold it through movable handles (the access structs,
  /// the batch's address-ordered stripe vector), which the analysis
  /// cannot track — those paths re-enter the checked world with
  /// `mu.AssertShared()` / `mu.AssertHeld()` at their guarded accesses.
  mutable SharedMutex mu;
  /// Bumped when the occupant is removed; handles carry the mint-time
  /// value, so a recycled slot rejects its previous occupants' handles.
  uint32_t generation XPV_GUARDED_BY(mu) = 1;
  /// Monotonic view-generation mint for this slot's whole lifetime: view
  /// handles stay detectably stale across `RemoveView` slot reuse AND
  /// across `ReplaceDocument` (which rebuilds the view table from
  /// scratch).
  uint32_t next_view_generation XPV_GUARDED_BY(mu) = 1;
  /// Answer-memo epoch contribution of this slot's PREVIOUS occupants:
  /// `RemoveDocument`/`ReplaceDocument` advance it past the dying cache's
  /// epoch, so `Epoch()` is monotonic across the slot's whole lifetime —
  /// an answer memoized against any earlier occupant (or earlier view
  /// set) can never be keyed equal to the current one.
  uint64_t epoch_base XPV_GUARDED_BY(mu) = 0;
  /// Null while the slot is free.
  std::unique_ptr<Shard> shard XPV_GUARDED_BY(mu);

  /// The slot's current view-set epoch, the invalidation key of the
  /// `AnswerCache` (see its contract). Requires a live shard.
  uint64_t Epoch() const XPV_REQUIRES_SHARED(mu) {
    return epoch_base + shard->cache.epoch();
  }

  /// Folds the dying occupant's epochs into `epoch_base` so the next
  /// occupant starts strictly above every epoch ever observed on this
  /// slot. Requires a live shard.
  void AdvanceEpochPastShard() XPV_REQUIRES(mu) {
    epoch_base += shard->cache.epoch() + 1;
  }

  /// Freshness stamp for a memoized answer computed NOW: the per-view
  /// epoch of the serving view for view hits, the document epoch for
  /// rewrite misses. `UpdateDocument` bumps exactly the epochs an update
  /// invalidates, so an entry is stale iff its stored stamp differs from
  /// this value — one integer compare at probe time. Requires a live
  /// shard; the stripe (shared suffices) orders the read against updates.
  uint64_t MemoValidity(const CacheAnswer& answer) const
      XPV_REQUIRES_SHARED(mu) {
    return answer.view_slot >= 0
               ? shard->cache.view_epoch(answer.view_slot)
               : shard->cache.doc_epoch();
  }

  /// True when a resident memo entry is still current (see MemoValidity).
  bool MemoFresh(const AnswerCache::Entry& entry) const
      XPV_REQUIRES_SHARED(mu) {
    return entry.validity == MemoValidity(entry.answer);
  }
};

/// All Service state, heap-stable behind one pointer so moves are cheap
/// and the mutexes never have to move.
struct Service::State {
  explicit State(ServiceOptions options_in)
      : options(std::move(options_in)), tag(MintServiceTag()),
        oracle(options.oracle_capacity) {
    // The shared oracle is the only one the caches ever see; a caller-set
    // rewrite.oracle would dangle across documents, so it is cleared (the
    // per-call oracle is injected by the concurrent answer paths).
    options.rewrite.oracle = nullptr;
    oracle.SetMemoryBudget(&budget);
  }

  ServiceOptions options;
  const uint32_t tag;
  SynchronizedOracle oracle;  // Shared across documents.
  /// The shared byte budget (declared before `answers`, whose constructor
  /// takes its address). Advisory: components charge their resident
  /// bytes; `RelievePressure` reacts when the total crosses the limit.
  MemoryBudget budget{options.memory_budget_bytes};
  /// The epoch-keyed answer memo shared across documents (its own
  /// shared_mutex; lock order: any stripe before the memo's lock — memo
  /// code never touches stripes).
  AnswerCache answers{options.answer_cache_capacity,
                      options.answer_cache_doorkeeper, &budget};

  Mutex pool_mu;  // Guards pool creation/growth.
  std::unique_ptr<ThreadPool> pool XPV_GUARDED_BY(pool_mu);  // Shared.

  /// Guards the slot table and the free list. Lock order: `table_mu`
  /// before any `DocSlot::mu`; no code acquires `table_mu` while holding
  /// a stripe.
  mutable SharedMutex table_mu;
  std::vector<std::unique_ptr<DocSlot>> slots XPV_GUARDED_BY(table_mu);
  std::vector<int32_t> free_slots XPV_GUARDED_BY(table_mu);

  std::atomic<uint64_t> failed_requests{0};

  // ----- overload / robustness state (PR 7) -----
  /// Serving calls currently executing (admission control compares this
  /// against `options.max_inflight_calls`).
  std::atomic<int> inflight{0};
  std::atomic<uint64_t> deadline_items{0};
  std::atomic<uint64_t> cancelled_items{0};
  std::atomic<uint64_t> overload_rejects{0};
  std::atomic<uint64_t> internal_errors{0};
  /// Degradation-ladder transition counters and the single-relief guard
  /// (at most one thread walks the ladder at a time; others skip — the
  /// ladder is idempotent under pressure, re-running it concurrently
  /// would only thrash the caches).
  std::atomic<uint64_t> memo_shrinks{0};
  std::atomic<uint64_t> oracle_shrinks{0};
  std::atomic<uint64_t> admission_pauses{0};
  std::atomic<uint64_t> admission_resumes{0};
  std::atomic<bool> relieving{false};

  // ----- incremental update counters (PR 9) -----
  // Cumulative across the document lifecycle (stored here, not on the
  // shard, so retirement needs no folding).
  std::atomic<uint64_t> updates_applied{0};
  std::atomic<uint64_t> update_views_patched{0};
  std::atomic<uint64_t> update_views_rematerialized{0};
  std::atomic<uint64_t> update_views_untouched{0};
  std::atomic<uint64_t> update_fallbacks{0};
  std::atomic<uint64_t> update_memo_entries_preserved{0};

  /// RAII admission slot: acquired on construction, `admitted()` tells
  /// whether the call fit under the limit (release only happens when it
  /// did — a refused call never holds a slot).
  struct InflightSlot {
    explicit InflightSlot(State* state) : state_(state) {
      const int limit = state_->options.max_inflight_calls;
      occupancy_ = state_->inflight.fetch_add(1, std::memory_order_relaxed);
      admitted_ = limit <= 0 || occupancy_ < limit;
      if (!admitted_) {
        state_->inflight.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    ~InflightSlot() {
      if (admitted_) {
        state_->inflight.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    InflightSlot(const InflightSlot&) = delete;
    InflightSlot& operator=(const InflightSlot&) = delete;

    bool admitted() const { return admitted_; }

    /// The `kOverloaded` error for a refused call: the retry hint grows
    /// with how far past the limit the Service is (10ms per excess call,
    /// clamped to [10ms, 1s]) so a stampede spreads out instead of
    /// hammering in lockstep.
    ServiceError OverloadError() const {
      const int limit = state_->options.max_inflight_calls;
      ServiceError error = MakeError(
          ServiceErrorCode::kOverloaded,
          "admission control: " + std::to_string(occupancy_) +
              " serving calls in flight (limit " + std::to_string(limit) +
              ")");
      error.retry_after_ms = std::min<int64_t>(
          1000, 10 * static_cast<int64_t>(occupancy_ - limit + 1));
      return error;
    }

   private:
    State* state_;
    int occupancy_ = 0;
    bool admitted_ = false;
  };

  void CountCancel(bool deadline_exceeded, uint64_t items = 1) {
    failed_requests.fetch_add(items, std::memory_order_relaxed);
    (deadline_exceeded ? deadline_items : cancelled_items)
        .fetch_add(items, std::memory_order_relaxed);
  }

  // Serving counters of shards that were removed/replaced: `stats()`
  // totals must stay cumulative (monotonic) across document lifecycle.
  // `retire_epoch` ticks once per completed retirement; the stats() walk
  // retries when it observes a tick, so a removal racing the walk can
  // neither drop a shard's counters (folded but slot already visited)
  // nor double-count them.
  std::atomic<uint64_t> retired_queries{0};
  std::atomic<uint64_t> retired_hits{0};
  std::atomic<uint64_t> retired_rewrite_unknown{0};
  std::atomic<uint64_t> retire_epoch{0};

  void CountFailure() {
    failed_requests.fetch_add(1, std::memory_order_relaxed);
  }

  /// Folds a dying shard's counters into the retired totals. Requires the
  /// shard's stripe held exclusively (no concurrent folds).
  void RetireShard(const Shard& shard) {
    retired_queries.fetch_add(shard.queries.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    retired_hits.fetch_add(shard.hits.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    retired_rewrite_unknown.fetch_add(
        shard.rewrite_unknown.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retire_epoch.fetch_add(1, std::memory_order_release);
  }

  /// True when `slot` currently serves the document `id` was minted for.
  static bool Live(const DocSlot& slot, DocumentId id)
      XPV_REQUIRES_SHARED(slot.mu) {
    return slot.generation == id.generation && slot.shard != nullptr;
  }
};

Service::Service(ServiceOptions options)
    : state_(std::make_unique<State>(std::move(options))) {}

Service::~Service() = default;
Service::Service(Service&&) noexcept = default;
Service& Service::operator=(Service&&) noexcept = default;

/// Result of the shared-mode entry preamble: on success `shard` is
/// non-null, `slot` is its DocSlot (for epoch/scope reads) and `stripe`
/// holds the slot's lock; on failure `shard` is null, no lock is held,
/// and `error` explains why.
struct Service::SharedAccess {
  ReaderLockHandle stripe;
  DocSlot* slot = nullptr;
  Shard* shard = nullptr;
  ServiceError error;
};

/// Exclusive-mode flavor; also exposes the DocSlot for generation mints.
struct Service::ExclusiveAccess {
  WriterLockHandle stripe;
  DocSlot* slot = nullptr;
  Shard* shard = nullptr;
  ServiceError error;
};

Service::SharedAccess Service::LockLiveShared(DocumentId id) const {
  SharedAccess access;
  DocSlot* slot = FindSlot(id, &access.error);
  if (slot == nullptr) return access;
  access.stripe = ReaderLockHandle(slot->mu);
  slot->mu.AssertShared();  // Held via the movable handle above.
  if (!State::Live(*slot, id)) {
    access.stripe.Unlock();
    access.error = StaleDocumentError(id);
    return access;
  }
  access.slot = slot;
  access.shard = slot->shard.get();
  return access;
}

Service::ExclusiveAccess Service::LockLiveExclusive(DocumentId id) {
  ExclusiveAccess access;
  DocSlot* slot = FindSlot(id, &access.error);
  if (slot == nullptr) return access;
  access.stripe = WriterLockHandle(slot->mu);
  slot->mu.AssertHeld();  // Held via the movable handle above.
  if (!State::Live(*slot, id)) {
    access.stripe.Unlock();
    access.error = StaleDocumentError(id);
    return access;
  }
  access.slot = slot;
  access.shard = slot->shard.get();
  return access;
}

Service::DocSlot* Service::FindSlot(DocumentId id, ServiceError* error) const {
  if (id.slot < 0 || id.generation == 0 || id.service == 0) {
    *error = MakeError(ServiceErrorCode::kUnknownDocument,
                       "document handle was never minted (slot " +
                           std::to_string(id.slot) + ")");
    return nullptr;
  }
  if (id.service != state_->tag) {
    *error = StaleError(
        "document handle was minted by a different Service instance");
    return nullptr;
  }
  ReaderLock table(state_->table_mu);
  if (id.slot >= static_cast<int32_t>(state_->slots.size())) {
    *error = StaleDocumentError(id);
    return nullptr;
  }
  return state_->slots[static_cast<size_t>(id.slot)].get();
}

ThreadPool* Service::EnsurePool(int workers) {
  if (workers <= 1) return nullptr;
  // Threads are an execution resource, not part of the answer: the shard
  // partition (and hence every answer) depends only on the caller's
  // num_workers, so the pool size is capped by the hardware instead of
  // trusting the request — a huge num_workers must not exhaust
  // std::thread and terminate the process.
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = std::max(4, static_cast<int>(hw));
  const int threads = std::min(workers, cap);
  MutexLock lock(state_->pool_mu);
  if (state_->pool == nullptr) {
    state_->pool = std::make_unique<ThreadPool>(
        threads, state_->options.max_queued_tasks);
  } else {
    // Grow in place, never shrink, and NEVER replace: concurrent batches
    // may be running on this pool, and alternating small/large batches
    // must reuse the max-size pool instead of joining and re-spawning
    // threads per batch.
    state_->pool->EnsureThreads(threads);
  }
  return state_->pool.get();
}

CancelToken Service::MakeCallToken(const CallOptions& call) const {
  std::optional<std::chrono::steady_clock::time_point> deadline =
      call.deadline;
  if (!deadline.has_value() &&
      state_->options.default_deadline.count() > 0) {
    deadline =
        std::chrono::steady_clock::now() + state_->options.default_deadline;
  }
  // Derived() links the caller's explicit cancel handle (possibly null)
  // under the deadline, so EITHER expires the call.
  if (deadline.has_value()) return call.cancel.Derived(*deadline);
  return call.cancel;
}

void Service::RelievePressure() {
  State* s = state_.get();
  if (!s->budget.limited()) return;
  if (!s->budget.OverLimit()) {
    // Hysteresis re-admission: a paused memo resumes only once usage has
    // fallen well below the limit (not at limit-minus-one-byte), so the
    // ladder cannot flap on every insert.
    if (!s->answers.admitting() && s->budget.Below(0.7)) {
      s->answers.set_admitting(true);
      s->admission_resumes.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  bool expected = false;
  if (!s->relieving.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire)) {
    return;  // Another thread is already walking the ladder.
  }
  // The ladder: each rung runs only while the rung above left the budget
  // over limit. Writes are never refused — worst case the memo stops
  // memoizing (admission paused) while views and oracle keep serving.
  if (s->answers.ShrinkHalf() > 0) {
    s->memo_shrinks.fetch_add(1, std::memory_order_relaxed);
  }
  if (s->budget.OverLimit() && s->oracle.ShrinkHalf() > 0) {
    s->oracle_shrinks.fetch_add(1, std::memory_order_relaxed);
  }
  if (s->budget.OverLimit() && s->answers.admitting()) {
    s->answers.set_admitting(false);
    s->admission_pauses.fetch_add(1, std::memory_order_relaxed);
  }
  s->relieving.store(false, std::memory_order_release);
}

DocumentId Service::AddDocument(Tree document) {
  auto shard = std::make_unique<Shard>(std::move(document),
                                       state_->options.rewrite,
                                       &state_->oracle.unsynchronized(),
                                       &state_->budget);
  int32_t s;
  DocSlot* slot;
  {
    WriterLock table(state_->table_mu);
    if (!state_->free_slots.empty()) {
      s = state_->free_slots.back();
      state_->free_slots.pop_back();
    } else {
      state_->slots.push_back(std::make_unique<DocSlot>());
      s = static_cast<int32_t>(state_->slots.size()) - 1;
    }
    slot = state_->slots[static_cast<size_t>(s)].get();
  }
  // The stripe is taken AFTER releasing the table lock: a recycled slot's
  // stripe may still be held shared by stale-handle readers (e.g. a long
  // batch that resolved the slot before its generation check), and
  // waiting them out must not stall the whole service behind the table
  // writer. The slot itself is private here — it is off the free list and
  // its generation rejects every outstanding handle.
  WriterLock stripe(slot->mu);
  slot->shard = std::move(shard);
  return DocumentId{s, slot->generation, state_->tag};
}

ServiceResult<DocumentId> Service::AddDocument(std::string_view xml) {
  Result<Tree> parsed = ParseXml(xml);
  if (!parsed.ok()) {
    state_->CountFailure();
    return ServiceResult<DocumentId>::Error(
        MakeError(ServiceErrorCode::kParseError, "document: " + parsed.error()));
  }
  return AddDocument(parsed.take());
}

ServiceStatus Service::RemoveDocument(DocumentId id) {
  {
    // The stripe waits out in-flight answers on THIS document only —
    // traffic on other documents is untouched (holding the table lock
    // here would stall the whole service behind a long batch).
    ExclusiveAccess access = LockLiveExclusive(id);
    if (access.shard == nullptr) {
      state_->CountFailure();
      return ServiceStatus::Error(std::move(access.error));
    }
    access.slot->mu.AssertHeld();  // Held via access.stripe.
    state_->RetireShard(*access.shard);
    access.slot->AdvanceEpochPastShard();
    // Purge the dead document's memoized answers eagerly: they are
    // already unreachable (the epoch advanced), but their output vectors
    // would otherwise stay resident until capacity pressure sweeps them.
    // Under the exclusive stripe the slot cannot be recycled yet, so no
    // live entry of a successor can be swept by mistake.
    state_->answers.EraseScope(reinterpret_cast<uintptr_t>(access.slot));
    access.slot->shard.reset();
    ++access.slot->generation;
  }
  // The stripe is released before the table lock (order: table before
  // stripe, never the reverse). No double-free of the slot is possible —
  // a racing RemoveDocument fails the generation check above, and the
  // slot cannot be re-minted before this push because it is not on the
  // free list yet.
  WriterLock table(state_->table_mu);
  state_->free_slots.push_back(id.slot);
  return ServiceStatus();
}

ServiceStatus Service::ReplaceDocument(DocumentId id, Tree document) {
  ExclusiveAccess access = LockLiveExclusive(id);
  if (access.shard == nullptr) {
    state_->CountFailure();
    return ServiceStatus::Error(std::move(access.error));
  }
  access.slot->mu.AssertHeld();  // Held via access.stripe.
  // The document handle survives (same slot generation); every view dies
  // with the old shard, and `next_view_generation` is monotonic across the
  // swap, so the dropped views' handles stay detectably stale even after
  // their slots are re-minted on the new shard. (Shard construction is
  // cheap — the tree moves, the cache starts empty — so building it under
  // the stripe is fine.)
  state_->RetireShard(*access.shard);
  access.slot->AdvanceEpochPastShard();
  // Purge the replaced document's memoized answers (see RemoveDocument).
  state_->answers.EraseScope(reinterpret_cast<uintptr_t>(access.slot));
  access.slot->shard = std::make_unique<Shard>(
      std::move(document), state_->options.rewrite,
      &state_->oracle.unsynchronized(), &state_->budget);
  return ServiceStatus();
}

ServiceStatus Service::ReplaceDocument(DocumentId id, std::string_view xml) {
  Result<Tree> parsed = ParseXml(xml);
  if (!parsed.ok()) {
    state_->CountFailure();
    return ServiceStatus::Error(
        MakeError(ServiceErrorCode::kParseError, "document: " + parsed.error()));
  }
  return ReplaceDocument(id, parsed.take());
}

ServiceStatus Service::UpdateDocument(DocumentId id, DocumentDelta delta) {
  return UpdateDocument(id, std::move(delta), CallOptions{});
}

ServiceStatus Service::UpdateDocument(DocumentId id, DocumentDelta delta,
                                      const CallOptions& call) {
  const CancelToken token = MakeCallToken(call);
  if (token.Expired()) {
    const bool dl = !token.cancelled();
    state_->CountCancel(dl);
    return ServiceStatus::Error(CancelError(dl));
  }
  ExclusiveAccess access = LockLiveExclusive(id);
  if (access.shard == nullptr) {
    state_->CountFailure();
    return ServiceStatus::Error(std::move(access.error));
  }
  access.slot->mu.AssertHeld();  // Held via access.stripe.
  Shard* shard = access.shard;
  // --------------------------------------------- pre-mutation: abortable
  // Validation, the last cancellation poll and the fault hook all run
  // BEFORE the first byte of the document mutates: any abort here leaves
  // the document, its views and its memoized answers exactly as they were.
  std::string why;
  if (!shard->tree.ValidateDelta(delta, &why)) {
    state_->CountFailure();
    return ServiceStatus::Error(
        MakeError(ServiceErrorCode::kInvalidDelta, "delta: " + why));
  }
  try {
    CancelScope scope(token);
    PollCancellation();
    fault::Point("service.update");
  } catch (const CancelledError& e) {
    state_->CountCancel(e.deadline_exceeded());
    return ServiceStatus::Error(CancelError(e.deadline_exceeded()));
  } catch (const std::exception& e) {
    state_->CountFailure();
    state_->internal_errors.fetch_add(1, std::memory_order_relaxed);
    return ServiceStatus::Error(InternalError(e));
  }
  // ------------------------------------------ apply: the point of no return
  // The delta is applied under a MASKED cancellation scope: the evaluator
  // kernels poll the ambient token, and a half-applied delta must never
  // exist — once mutation starts, the update runs to completion even if
  // the caller's deadline lapses mid-apply.
  const uint64_t scope_key = reinterpret_cast<uintptr_t>(access.slot);
  TreeDeltaReport report;
  ViewUpdateStats vstats;
  {
    CancelScope mask{CancelToken()};  // A default token never expires.
    try {
      report = shard->tree.ApplyDelta(delta);
      vstats = shard->cache.ApplyUpdate(
          report, state_->options.update_fallback_fraction);
    } catch (const std::exception& e) {
      // Allocation failure mid-apply (injected faults cannot fire here —
      // the hook is pre-mutation). Best-effort consistency restoration:
      // force the full-fallback path of ApplyUpdate against the tree as
      // it now stands, which re-materializes every view from scratch and
      // orphans every memoized answer for this document. The views and
      // memo are then consistent with whatever tree state landed.
      TreeDeltaReport full;
      full.old_size = full.new_size = shard->tree.size();
      full.suffix_start = shard->tree.size();
      full.compacted = true;  // Bump the shape epoch: orphan all memo keys.
      full.touched_nodes = std::max<size_t>(1, shard->tree.size());
      try {
        // discard: recovery path — the update stats feed telemetry only,
        // and this re-materialization is accounted as an internal error
        // below, not as a regular update.
        (void)shard->cache.ApplyUpdate(full, /*fallback_fraction=*/0.0);
      } catch (const std::exception&) {
        // Even recovery failed (allocation). The stale views remain; the
        // epoch bump below still fences the memo.
      }
      state_->answers.EraseScope(scope_key);
      state_->CountFailure();
      state_->internal_errors.fetch_add(1, std::memory_order_relaxed);
      return ServiceStatus::Error(InternalError(e));
    }
  }
  if (report.compacted) {
    // Deletes re-keyed the surviving node ids: every memoized answer for
    // this document stores pre-delta ids. The cache's shape-epoch bump
    // already unkeyed them; purge eagerly so their output vectors do not
    // linger until capacity pressure (mirrors ReplaceDocument).
    state_->answers.EraseScope(scope_key);
  }
  // Count the memoized answers that survived (still keyed AND still
  // fresh) — the per-view epoch contract's observable win. Only
  // non-compacted updates can preserve entries.
  if (report.touched_nodes > 0 && !report.compacted &&
      state_->answers.enabled()) {
    const uint64_t cur_epoch = access.slot->Epoch();
    const ViewCache& cache = shard->cache;
    const size_t preserved = state_->answers.CountScope(
        scope_key,
        [&cache, cur_epoch](const AnswerCache::Key& k,
                            const AnswerCache::Entry& e) {
          if (k.epoch != cur_epoch) return false;
          const int vs = e.answer.view_slot;
          return e.validity == (vs >= 0 ? cache.view_epoch(vs)
                                        : cache.doc_epoch());
        });
    state_->update_memo_entries_preserved.fetch_add(
        preserved, std::memory_order_relaxed);
  }
  state_->updates_applied.fetch_add(1, std::memory_order_relaxed);
  state_->update_views_patched.fetch_add(
      static_cast<uint64_t>(vstats.views_patched), std::memory_order_relaxed);
  state_->update_views_rematerialized.fetch_add(
      static_cast<uint64_t>(vstats.views_rematerialized),
      std::memory_order_relaxed);
  state_->update_views_untouched.fetch_add(
      static_cast<uint64_t>(vstats.views_untouched), std::memory_order_relaxed);
  if (vstats.fell_back) {
    state_->update_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  // Re-materialization and DP state may have charged the shared budget;
  // react outside the stripe (the ladder takes the memo and oracle locks).
  access.stripe.Unlock();
  RelievePressure();
  return ServiceStatus();
}

/// Snapshots the slot pointers under the table lock and RELEASES it
/// before any stripe is touched: stats/num_documents must not couple
/// table writers to a slow exclusive operation on one document. The
/// pointers stay valid — slots are heap-stable for the Service's life.
std::vector<Service::DocSlot*> Service::SnapshotSlots() const {
  ReaderLock table(state_->table_mu);
  std::vector<DocSlot*> slots;
  slots.reserve(state_->slots.size());
  for (const auto& slot : state_->slots) slots.push_back(slot.get());
  return slots;
}

int Service::num_documents() const {
  int n = 0;
  for (DocSlot* slot : SnapshotSlots()) {
    ReaderLock stripe(slot->mu);
    if (slot->shard != nullptr) ++n;
  }
  return n;
}

const Tree* Service::document(DocumentId id) const {
  SharedAccess access = LockLiveShared(id);
  return access.shard == nullptr ? nullptr : &access.shard->tree;
}

ServiceResult<ViewId> Service::AddView(DocumentId document, std::string name,
                                       Pattern pattern) {
  ExclusiveAccess access = LockLiveExclusive(document);
  if (access.shard == nullptr) {
    state_->CountFailure();
    return ServiceResult<ViewId>::Error(std::move(access.error));
  }
  access.slot->mu.AssertHeld();  // Held via access.stripe.
  Shard* shard = access.shard;
  if (pattern.IsEmpty()) {
    state_->CountFailure();
    return ServiceResult<ViewId>::Error(
        MakeError(ServiceErrorCode::kEmptyPattern,
                  "view '" + name + "': the empty pattern selects nothing"));
  }
  if (shard->view_slot_by_name.count(name) > 0) {
    state_->CountFailure();
    return ServiceResult<ViewId>::Error(
        MakeError(ServiceErrorCode::kDuplicateViewName,
                  "document already has a view named '" + name + "'"));
  }
  // The cache recycles tombstoned slots through its own free list (churn
  // keeps views()/index bounded); a re-added name always mints a FRESH
  // generation below, so a dead handle can never resurrect on the slot.
  // Materialization is the allocation-heavy step: a fault (injected or
  // real bad_alloc) before any shard bookkeeping mutates surfaces as a
  // structured kInternal with the document unchanged.
  int32_t vs;
  try {
    fault::Point("service.add_view");
    vs = shard->cache.AddView(ViewDefinition{name, std::move(pattern)});
  } catch (const std::exception& e) {
    state_->CountFailure();
    state_->internal_errors.fetch_add(1, std::memory_order_relaxed);
    return ServiceResult<ViewId>::Error(InternalError(e));
  }
  if (static_cast<size_t>(vs) >= shard->view_generations.size()) {
    shard->view_generations.resize(static_cast<size_t>(vs) + 1);
  }
  const uint32_t generation = access.slot->next_view_generation++;
  shard->view_generations[static_cast<size_t>(vs)] = generation;
  shard->view_slot_by_name.emplace(std::move(name), vs);
  const ViewId id{document, vs, generation};
  // View bytes just charged the shared budget; react before returning
  // (outside the stripe — the ladder takes the memo and oracle locks).
  access.stripe.Unlock();
  RelievePressure();
  return id;
}

ServiceResult<ViewId> Service::AddView(DocumentId document, std::string name,
                                       std::string_view xpath) {
  Result<Pattern, XPathParseError> parsed = ParseXPathDetailed(xpath);
  if (!parsed.ok()) {
    state_->CountFailure();
    return ServiceResult<ViewId>::Error(
        XPathError("view '" + name + "'", xpath, parsed.error()));
  }
  return AddView(document, std::move(name), parsed.take());
}

ServiceStatus Service::RemoveView(ViewId id) {
  ExclusiveAccess access = LockLiveExclusive(id.document);
  if (access.shard == nullptr) {
    state_->CountFailure();
    return ServiceStatus::Error(std::move(access.error));
  }
  Shard* shard = access.shard;
  if (!shard->ResolvesView(id)) {
    state_->CountFailure();
    return ServiceStatus::Error(StaleViewError(id));
  }
  shard->view_slot_by_name.erase(
      shard->cache.views()[static_cast<size_t>(id.slot)].definition().name);
  shard->cache.RemoveView(id.slot);  // Tombstones + queues the slot.
  return ServiceStatus();
}

int Service::num_views(DocumentId document) const {
  SharedAccess access = LockLiveShared(document);
  return access.shard == nullptr ? 0
                                 : access.shard->cache.num_active_views();
}

const ViewDefinition* Service::view(ViewId id) const {
  SharedAccess access = LockLiveShared(id.document);
  if (access.shard == nullptr || !access.shard->ResolvesView(id)) {
    return nullptr;
  }
  return &access.shard->cache.views()[static_cast<size_t>(id.slot)]
              .definition();
}

ServiceResult<xpv::Answer> Service::Answer(DocumentId document,
                                           const Query& query) {
  return Answer(document, query, CallOptions{});
}

ServiceResult<xpv::Answer> Service::Answer(DocumentId document,
                                           const Query& query,
                                           const CallOptions& call) {
  const CancelToken token = MakeCallToken(call);
  if (token.Expired()) {
    // Fast path: an already-dead call fails before any parsing or lock.
    const bool dl = !token.cancelled();
    state_->CountCancel(dl);
    return ServiceResult<xpv::Answer>::Error(CancelError(dl));
  }
  State::InflightSlot slot(state_.get());
  if (!slot.admitted()) {
    state_->CountFailure();
    state_->overload_rejects.fetch_add(1, std::memory_order_relaxed);
    return ServiceResult<xpv::Answer>::Error(slot.OverloadError());
  }
  CancelScope scope(token);
  try {
    ServiceResult<xpv::Answer> result = AnswerUnderScope(document, query);
    RelievePressure();
    return result;
  } catch (const CancelledError& e) {
    state_->CountCancel(e.deadline_exceeded());
    return ServiceResult<xpv::Answer>::Error(
        CancelError(e.deadline_exceeded()));
  } catch (const std::exception& e) {
    // Injected faults and allocation failures surface structurally; the
    // Service's own state is consistent (every mutation above either
    // completed or unwound without effect).
    state_->CountFailure();
    state_->internal_errors.fetch_add(1, std::memory_order_relaxed);
    return ServiceResult<xpv::Answer>::Error(InternalError(e));
  }
}

ServiceResult<xpv::Answer> Service::AnswerUnderScope(DocumentId document,
                                                     const Query& query) {
  // Parse BEFORE the stripe lock (no document state involved): the
  // critical section covers only the answering itself, and parse-failure
  // requests never touch the lock at all.
  Pattern parsed_storage = Pattern::Empty();
  ServiceError parse_error;
  const Pattern* pattern =
      ResolveQueryPattern(query, &parsed_storage, &parse_error);
  if (pattern == nullptr) {
    state_->CountFailure();
    return ServiceResult<xpv::Answer>::Error(std::move(parse_error));
  }
  SharedAccess access = LockLiveShared(document);
  if (access.shard == nullptr) {
    state_->CountFailure();
    return ServiceResult<xpv::Answer>::Error(std::move(access.error));
  }
  access.slot->mu.AssertShared();  // Held via access.stripe.
  // Epoch-keyed memo probe: the key binds the answer to the view set
  // observed under the stripe we hold, so a hit is exactly what the
  // rewrite pipeline would compute — and replaying the stored delta keeps
  // the serving counters identical too. Empty patterns skip the memo
  // (they answer constant-empty without touching the engine anyway).
  AnswerCache::Key key;
  const bool memoize = state_->answers.enabled() && !pattern->IsEmpty();
  AnswerCache::Fill fill;
  if (memoize) {
    key = AnswerCache::Key{reinterpret_cast<uintptr_t>(access.slot),
                           access.slot->Epoch(),
                           pattern->CanonicalFingerprint()};
    // Single-flight probe-or-arm: a resident entry answers immediately; a
    // miss either leads (computes below and publishes) or joins a fill
    // already in flight for this exact key and receives the leader's
    // entry — a stampede of identical cold queries runs the rewrite
    // pipeline once. Waiting is safe here: leader and followers hold the
    // same stripe in SHARED mode, and the leader only ever blocks on
    // short hash-table critical sections.
    fill = state_->answers.BeginFill(key);
    if (fill.hit()) {
      // Revalidate against the per-view epochs: an in-place update bumps
      // exactly the epochs of the views it touched (and the doc epoch),
      // leaving the key's shape epoch alone — a hit whose stamp went
      // stale is recomputed below and REPLACES the resident entry.
      if (access.slot->MemoFresh(*fill.entry())) {
        access.shard->FoldStats(fill.entry()->delta);
        return fill.entry()->answer;  // The one copy: into the reply.
      }
    } else if (!fill.leader()) {
      if (std::shared_ptr<const AnswerCache::Entry> entry = fill.Wait()) {
        // A leader from BEFORE an intervening update may have published a
        // now-stale entry (it held the stripe shared earlier, not now):
        // same revalidation as the table hit.
        if (access.slot->MemoFresh(*entry)) {
          access.shard->FoldStats(entry->delta);
          return entry->answer;
        }
      }
      // Every earlier leader unwound without publishing and Wait()
      // re-elected US (fill.leader() is now true) — or the entry it
      // published is stale: compute below. A re-elected leader publishes
      // through its fill; a stale-refresh inserts directly.
    }
  }
  CacheStats delta;
  xpv::Answer answer =
      access.shard->cache.AnswerConcurrent(*pattern, &state_->oracle, &delta);
  access.shard->FoldStats(delta);
  if (memoize) {
    // Memoization is an optimization: a fault in the memo write is
    // absorbed and the computed answer still returned. An unpublished
    // leader fill abandons its flight on unwind — waiters re-elect.
    try {
      fault::Point("service.memo_write");
      AnswerCache::Entry entry{answer, delta,
                               access.slot->MemoValidity(answer)};
      if (fill.leader()) {
        // discard: the shared entry is for waiters; this leader serves
        // the answer it already holds by value.
        (void)state_->answers.Publish(fill, std::move(entry));
      } else {
        // Stale-refresh path (the probe hit but failed revalidation, so
        // no flight is armed): Insert replaces the stale resident entry —
        // the validity stamps differ by construction.
        state_->answers.Insert(key, std::move(entry));
      }
    } catch (const CancelledError&) {
      throw;
    } catch (const std::exception&) {
    }
  }
  return answer;
}

ServiceResult<BatchAnswers> Service::AnswerBatch(
    const std::vector<BatchItem>& items, int num_workers) {
  CallOptions call;
  call.num_workers = num_workers;
  return AnswerBatch(items, call);
}

ServiceResult<BatchAnswers> Service::AnswerBatch(
    const std::vector<BatchItem>& items, const CallOptions& call) {
  const size_t n = items.size();
  const CancelToken token = MakeCallToken(call);
  if (token.Expired()) {
    // The O(items) fast path: an already-expired call fails every item
    // with a structured error before any parsing, planning or lock —
    // constant work per item regardless of document or query size.
    const bool dl = !token.cancelled();
    state_->CountCancel(dl, n);
    BatchAnswers out;
    out.answers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.answers.push_back(ServiceResult<xpv::Answer>::Error(CancelError(dl)));
    }
    return out;
  }
  State::InflightSlot slot(state_.get());
  if (!slot.admitted()) {
    state_->CountFailure();
    state_->overload_rejects.fetch_add(1, std::memory_order_relaxed);
    return ServiceResult<BatchAnswers>::Error(slot.OverloadError());
  }
  const int workers = call.num_workers > 0
                          ? call.num_workers
                          : std::max(state_->options.default_workers, 1);
  CancelScope scope(token);
  try {
    BatchAnswers out = AnswerBatchUnderScope(items, workers);
    RelievePressure();
    return out;
  } catch (const CancelledError& e) {
    // Cancellation escaped the per-slice handling (it fired during the
    // pre-stripe planning phase, before any item was answered): every
    // item fails, still structurally.
    state_->CountCancel(e.deadline_exceeded(), n);
    BatchAnswers out;
    out.answers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.answers.push_back(
          ServiceResult<xpv::Answer>::Error(CancelError(e.deadline_exceeded())));
    }
    return out;
  } catch (const std::exception& e) {
    state_->CountFailure();
    state_->internal_errors.fetch_add(1, std::memory_order_relaxed);
    return ServiceResult<BatchAnswers>::Error(InternalError(e));
  }
}

BatchAnswers Service::AnswerBatchUnderScope(
    const std::vector<BatchItem>& items, int workers) {
  const size_t n = items.size();

  // ---------------------------------------------------- plan (pre-stripe)
  // Resolve every item up front (document slot lookup, XPath parse) and
  // canonicalize the queries ONCE service-wide: one plan entry per
  // distinct canonical fingerprint, carrying the pattern and its
  // selection summary. A batch asking the same query over many documents
  // pays parse + fingerprint + summary once, not once per (document,
  // query); candidate bundles stay per (document, query) and are fed from
  // this shared plan. A failed item keeps its error and stays out of the
  // batch; everything else proceeds.
  struct Resolved {
    DocSlot* slot = nullptr;  // Pre-generation-check resolution.
    Shard* shard = nullptr;   // Filled under the stripe lock below.
    int plan = -1;            // Plan entry; -1 = empty pattern (or failed).
    std::optional<ServiceError> error;  // Set iff the item failed.
  };
  struct PlanEntry {
    Pattern pattern;
    uint64_t fingerprint = 0;
    SelectionSummary summary;
  };
  std::vector<Resolved> resolved(n);
  std::deque<PlanEntry> plan;  // Stable addresses: PlannedQuery points in.
  std::unordered_map<uint64_t, int> plan_by_fp;
  // Batches routinely repeat a handful of documents: FindSlot (one table
  // lock + validation) runs once per distinct same-tag handle, keyed on
  // (slot, generation). The cache stores FindSlot's actual outcome —
  // pointer AND error — so the two paths cannot drift.
  struct CachedResolution {
    DocSlot* slot = nullptr;
    ServiceError error;  // FindSlot's error iff slot == nullptr.
  };
  std::unordered_map<uint64_t, CachedResolution> slot_cache;
  auto pack = [](DocumentId d) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(d.slot)) << 32) |
           static_cast<uint64_t>(d.generation);
  };
  for (size_t i = 0; i < n; ++i) {
    Resolved& r = resolved[i];
    const DocumentId id = items[i].document;
    // Only well-formed same-tag handles are cacheable: (slot, generation)
    // keys them uniquely, and FindSlot is deterministic for them within
    // this call.
    const bool cacheable =
        id.service == state_->tag && id.slot >= 0 && id.generation != 0;
    ServiceError slot_error;
    auto cached = cacheable ? slot_cache.find(pack(id)) : slot_cache.end();
    if (cached != slot_cache.end()) {
      r.slot = cached->second.slot;
      slot_error = cached->second.error;
    } else {
      r.slot = FindSlot(id, &slot_error);
      if (cacheable) {
        slot_cache.emplace(pack(id), CachedResolution{r.slot, slot_error});
      }
    }
    if (r.slot == nullptr) {
      state_->CountFailure();
      r.error = std::move(slot_error);
      continue;
    }
    const Query& query = items[i].query;
    Pattern parsed_storage = Pattern::Empty();
    ServiceError parse_error;
    const Pattern* pattern =
        ResolveQueryPattern(query, &parsed_storage, &parse_error);
    if (pattern == nullptr) {
      state_->CountFailure();
      r.error = std::move(parse_error);
      r.slot = nullptr;
      continue;
    }
    if (pattern->IsEmpty()) continue;  // Constant-empty answer; no plan.
    const uint64_t fp = pattern->CanonicalFingerprint();
    auto [entry, inserted] =
        plan_by_fp.try_emplace(fp, static_cast<int>(plan.size()));
    if (inserted) {
      // The only per-batch copy of a caller-held pattern happens here,
      // once per DISTINCT fingerprint; duplicates (and every later
      // document slice) share the plan entry's instance.
      SelectionSummary summary = SummarizeSelection(*pattern);
      plan.push_back(PlanEntry{query.holds_pattern()
                                   ? *pattern
                                   : std::move(parsed_storage),
                               fp, std::move(summary)});
    }
    r.plan = entry->second;
  }

  // Take the stripe locks of every distinct slot in shared mode for the
  // whole answering phase (the view sets must not mutate mid-batch), then
  // finish the per-item generation checks under them. The locks are
  // acquired in one canonical order (slot address) so two concurrent
  // batches over overlapping document sets cannot chase each other's
  // stripes in opposite directions.
  std::vector<DocSlot*> distinct_slots;
  {
    std::unordered_set<DocSlot*> seen;
    for (size_t i = 0; i < n; ++i) {
      DocSlot* slot = resolved[i].slot;
      if (slot != nullptr && seen.insert(slot).second) {
        distinct_slots.push_back(slot);
      }
    }
  }
  std::sort(distinct_slots.begin(), distinct_slots.end());
  std::vector<ReaderLockHandle> stripes;
  stripes.reserve(distinct_slots.size());
  std::unordered_map<DocSlot*, size_t> stripe_index;
  for (DocSlot* slot : distinct_slots) {
    stripe_index.emplace(slot, stripes.size());
    stripes.emplace_back(slot->mu);
  }
  std::vector<char> stripe_live(stripes.size(), 0);
  std::vector<uint64_t> stripe_epoch(stripes.size(), 0);
  std::unordered_map<Shard*, size_t> stripe_of_shard;
  for (size_t i = 0; i < n; ++i) {
    Resolved& r = resolved[i];
    if (r.slot == nullptr) continue;
    r.slot->mu.AssertShared();  // Held via the stripe vector above.
    if (!State::Live(*r.slot, items[i].document)) {
      state_->CountFailure();
      r.error = StaleDocumentError(items[i].document);
      r.slot = nullptr;
      continue;
    }
    const size_t si = stripe_index.at(r.slot);
    stripe_live[si] = 1;
    // The memo epoch is read under the stripe we hold for the whole
    // answering phase: answers computed below are valid exactly for this
    // epoch, and a concurrent writer (blocked on the stripe) bumps it
    // before the view set can change.
    stripe_epoch[si] = r.slot->Epoch();
    r.shard = r.slot->shard.get();
    stripe_of_shard.emplace(r.shard, si);
  }
  // Drop the stripes of slots every item failed on (stale handles to a
  // freed slot) — holding a dead slot's lock for the whole answering
  // phase would needlessly delay an AddDocument recycling it.
  for (size_t k = 0; k < stripes.size(); ++k) {
    if (stripe_live[k] == 0) stripes[k].Unlock();
  }

  // Group the live items per document shard (in request order — the order
  // a per-document answering loop would see) and run each document's
  // slice through the batched/parallel pipeline on the shared pool.
  std::vector<Shard*> shard_order;
  std::unordered_map<Shard*, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < n; ++i) {
    if (resolved[i].shard == nullptr) continue;
    auto [it, inserted] =
        by_shard.try_emplace(resolved[i].shard, std::vector<size_t>());
    if (inserted) shard_order.push_back(resolved[i].shard);
    it->second.push_back(i);
  }
  std::vector<std::optional<CacheAnswer>> answers(n);
  size_t live_items = 0;
  for (Shard* shard : shard_order) live_items += by_shard[shard].size();
  ThreadPool* pool =
      EnsurePool(std::min<int>(workers, static_cast<int>(live_items)));
  const bool memoize = state_->answers.enabled();
  // A deadline/cancel (or absorbed-then-rethrown fault) firing inside a
  // slice aborts THAT slice and every later one; items already answered
  // keep their answers (bit-identical to an unconstrained run — answers
  // are pure functions of document, view set and query), the rest take
  // the abort error in the fan-out below. Remaining stripes are still
  // released in order.
  bool aborted = false;
  std::optional<ServiceError> abort_error;
  for (Shard* shard : shard_order) {
    const std::vector<size_t>& indices = by_shard[shard];
    // `stripes`/`stripe_epoch` were built in `distinct_slots` order, so
    // the stripe index recovers the shard's DocSlot (the memo scope).
    const size_t si = stripe_of_shard.at(shard);
    if (aborted) {
      stripes[si].Unlock();
      continue;
    }
    try {
      // A crisp slice boundary: once the call is dead no further slice
      // starts, even a fully-memoized one that would never poll again.
      PollCancellation();
      DocSlot* const slice_slot = distinct_slots[si];
      slice_slot->mu.AssertShared();  // Held via the stripe vector.
      const uint64_t scope = reinterpret_cast<uintptr_t>(slice_slot);
      const uint64_t epoch = stripe_epoch[si];

      // Distinct plan entries of this slice, in first-appearance order (the
      // order the per-document pipeline would have deduplicated them in).
      std::vector<int> slice_plan;
      std::unordered_map<int, int> slice_pos;
      for (size_t i : indices) {
        const int p = resolved[i].plan;
        if (p < 0) continue;
        if (slice_pos.try_emplace(p, static_cast<int>(slice_plan.size()))
                .second) {
          slice_plan.push_back(p);
        }
      }

      // Memo probe per distinct (slot, epoch, fingerprint): a hit replays a
      // stored scan (answer + stats delta, held by pointer — no deep copy)
      // without touching the rewrite engine. Misses arm single-flight
      // fills: keys nobody else is computing are led (computed by the
      // pipeline below), keys already in flight elsewhere are joined and
      // waited on LAST — every fill this slice leads is published before
      // the first wait, so two batches joining each other's keys always
      // drain (each publishes its own leads first; no wait cycle exists).
      std::vector<std::shared_ptr<const AnswerCache::Entry>> memo_entries(
          slice_plan.size());
      // Fills are kept ONLY for misses (leaders in compute order, joiners
      // with their slice position). A warm slice keeps both lists empty —
      // empty vectors never allocate, so the all-hit fast path stays free
      // of per-slice heap traffic (a hit's Fill lives and dies inside its
      // loop iteration; only its entry pointer survives).
      std::vector<AnswerCache::Fill> lead_fills;
      std::vector<std::pair<size_t, AnswerCache::Fill>> join_fills;
      std::vector<PlannedAnswer> computed;  // Parallel to compute_pos.
      std::vector<PlannedQuery> to_compute;
      std::vector<size_t> compute_pos;
      // Parallel to compute_pos: index into lead_fills, or -1 for a
      // stale-refresh recompute (the probe hit but failed per-view-epoch
      // revalidation — no flight armed; published via Insert, which
      // replaces the stale resident entry).
      std::vector<int> compute_fill;
      for (size_t k = 0; k < slice_plan.size(); ++k) {
        const PlanEntry& entry = plan[static_cast<size_t>(slice_plan[k])];
        if (memoize) {
          AnswerCache::Fill fill =
              state_->answers.BeginFill({scope, epoch, entry.fingerprint});
          if (fill.hit()) {
            // Revalidate the stamp (see AnswerUnderScope): an in-place
            // update leaves the key's shape epoch alone and bumps only
            // the touched views' epochs.
            if (slice_slot->MemoFresh(*fill.entry())) {
              memo_entries[k] = fill.entry();
              continue;
            }
            compute_fill.push_back(-1);
          } else if (!fill.leader()) {
            // In flight elsewhere; wait after computing our own leads.
            join_fills.emplace_back(k, std::move(fill));
            continue;
          } else {
            compute_fill.push_back(static_cast<int>(lead_fills.size()));
            lead_fills.push_back(std::move(fill));
          }
        }
        to_compute.push_back(PlannedQuery{&entry.pattern, &entry.summary});
        compute_pos.push_back(k);
      }
      if (!to_compute.empty()) {
        computed = shard->cache.AnswerPlannedConcurrent(to_compute, workers,
                                                        pool, &state_->oracle);
        if (memoize) {
          // Memo-write faults are absorbed: `computed` (which `answer_of`
          // points into) is already in hand, and unpublished lead fills
          // abandon their flights on slice exit — waiters re-elect.
          try {
            fault::Point("service.memo_write");
            for (size_t j = 0; j < computed.size(); ++j) {
              // Keyed at the epoch observed under the stripe: if a writer
              // has queued behind us, the entry is dead on arrival, never
              // wrong. Publishing resolves the fill, waking every waiter.
              AnswerCache::Entry entry{
                  computed[j].answer, computed[j].delta,
                  slice_slot->MemoValidity(computed[j].answer)};
              const int f = compute_fill[j];
              if (f >= 0) {
                // discard: the shared entry is for waiters; the batch
                // already holds this answer in `computed`.
                (void)state_->answers.Publish(
                    lead_fills[static_cast<size_t>(f)], std::move(entry));
              } else {
                state_->answers.Insert(
                    {scope, epoch,
                     plan[static_cast<size_t>(slice_plan[compute_pos[j]])]
                         .fingerprint},
                    std::move(entry));
              }
            }
          } catch (const CancelledError&) {
            throw;
          } catch (const std::exception&) {
          }
        }
      }
      // Collect the joined fills (all our leads are already published). A
      // null Wait() means every earlier leader of that key unwound and the
      // re-elected flight is now OURS — keep the promoted fill so the
      // recovery below publishes through it, waking the other waiters. A
      // STALE waited entry (published by a leader whose stripe hold
      // predates an intervening update) recomputes too, but without a
      // flight — its refresh lands via a replacing Insert.
      std::vector<std::pair<size_t, AnswerCache::Fill>> orphan_fills;
      std::vector<size_t> stale_pos;
      for (auto& [k, fill] : join_fills) {
        memo_entries[k] = fill.Wait();
        if (memo_entries[k] == nullptr) {
          orphan_fills.emplace_back(k, std::move(fill));
        } else if (!slice_slot->MemoFresh(*memo_entries[k])) {
          memo_entries[k] = nullptr;
          stale_pos.push_back(k);
        }
      }
      if (!orphan_fills.empty() || !stale_pos.empty()) {
        // Rare recovery path: compute the keys we now lead (or must
        // refresh) ourselves — orphans first, then stale refreshes.
        std::vector<PlannedQuery> orphan_queries;
        orphan_queries.reserve(orphan_fills.size() + stale_pos.size());
        for (const auto& [k, fill] : orphan_fills) {
          const PlanEntry& entry = plan[static_cast<size_t>(slice_plan[k])];
          orphan_queries.push_back(PlannedQuery{&entry.pattern, &entry.summary});
        }
        for (size_t k : stale_pos) {
          const PlanEntry& entry = plan[static_cast<size_t>(slice_plan[k])];
          orphan_queries.push_back(PlannedQuery{&entry.pattern, &entry.summary});
        }
        std::vector<PlannedAnswer> recovered = shard->cache.AnswerPlannedConcurrent(
            orphan_queries, workers, pool, &state_->oracle);
        for (size_t j = 0; j < recovered.size(); ++j) {
          const bool orphan = j < orphan_fills.size();
          const size_t k =
              orphan ? orphan_fills[j].first : stale_pos[j - orphan_fills.size()];
          const uint64_t validity =
              slice_slot->MemoValidity(recovered[j].answer);
          // The slice's answer must not depend on the memo write landing:
          // keep a local entry, absorb memo-write faults (the abandoned
          // flight re-elects among any remaining waiters).
          memo_entries[k] = std::make_shared<const AnswerCache::Entry>(
              AnswerCache::Entry{recovered[j].answer, recovered[j].delta,
                                 validity});
          try {
            fault::Point("service.memo_write");
            AnswerCache::Entry entry{recovered[j].answer, recovered[j].delta,
                                     validity};
            if (orphan) {
              // discard: the shared entry is for waiters; `memo_entries[k]`
              // was populated above from the same recovered answer.
              (void)state_->answers.Publish(orphan_fills[j].second,
                                            std::move(entry));
            } else {
              state_->answers.Insert(
                  {scope, epoch,
                   plan[static_cast<size_t>(slice_plan[k])].fingerprint},
                  std::move(entry));
            }
          } catch (const CancelledError&) {
            throw;
          } catch (const std::exception&) {
          }
        }
      }
      // The distinct answers of this slice, by plan position: pointers into
      // the shared memo entry (hits) or into `computed` (misses) — nothing
      // is deep-copied until the per-request fan-out below.
      std::vector<const CacheAnswer*> answer_of(slice_plan.size(), nullptr);
      std::vector<const CacheStats*> delta_of(slice_plan.size(), nullptr);
      for (size_t k = 0; k < slice_plan.size(); ++k) {
        if (memo_entries[k] != nullptr) {
          answer_of[k] = &memo_entries[k]->answer;
          delta_of[k] = &memo_entries[k]->delta;
        }
      }
      for (size_t j = 0; j < compute_pos.size(); ++j) {
        answer_of[compute_pos[j]] = &computed[j].answer;
        delta_of[compute_pos[j]] = &computed[j].delta;
      }

      // Fold serving stats and fan the slice out in request order —
      // duplicates replay the distinct entry's delta, exactly as the
      // unplanned pipeline's fan-out did.
      CacheStats delta;
      for (size_t i : indices) {
        ++delta.queries;
        const int p = resolved[i].plan;
        if (p < 0) {
          answers[i] = CacheAnswer{};  // Empty pattern: constant empty miss.
          continue;
        }
        const size_t k = static_cast<size_t>(slice_pos.at(p));
        delta.hits += delta_of[k]->hits;
        delta.rewrite_unknown += delta_of[k]->rewrite_unknown;
        answers[i] = *answer_of[k];
      }
      shard->FoldStats(delta);
    } catch (const CancelledError& e) {
      aborted = true;
      abort_error = CancelError(e.deadline_exceeded());
    } catch (const std::exception& e) {
      // An injected fault (or bad_alloc) inside the pipeline fails this
      // slice's unanswered items structurally; earlier slices' answers
      // stand. Unpublished fills abandon on unwind — waiters re-elect.
      aborted = true;
      abort_error = InternalError(e);
    }
    // This document's slice is done — release its stripe so writers on it
    // are not held for the remaining documents' slices. (Each live slot
    // maps to exactly one shard, so each stripe unlocks exactly once.)
    stripes[si].Unlock();
  }

  BatchAnswers out;
  out.answers.reserve(n);
  uint64_t aborted_items = 0;
  for (size_t i = 0; i < n; ++i) {
    if (resolved[i].error.has_value()) {
      out.answers.push_back(
          ServiceResult<xpv::Answer>::Error(std::move(*resolved[i].error)));
    } else if (answers[i].has_value()) {
      out.answers.push_back(std::move(*answers[i]));
    } else {
      // The item's slice aborted before its fan-out: partial batch.
      ++aborted_items;
      out.answers.push_back(ServiceResult<xpv::Answer>::Error(
          abort_error.has_value() ? *abort_error : CancelError(true)));
    }
  }
  if (aborted_items > 0) {
    if (abort_error.has_value() &&
        abort_error->code == ServiceErrorCode::kInternal) {
      state_->failed_requests.fetch_add(aborted_items,
                                        std::memory_order_relaxed);
      state_->internal_errors.fetch_add(aborted_items,
                                        std::memory_order_relaxed);
    } else {
      state_->CountCancel(!abort_error.has_value() ||
                              abort_error->code ==
                                  ServiceErrorCode::kDeadlineExceeded,
                          aborted_items);
    }
  }
  return out;
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.failed_requests =
      state_->failed_requests.load(std::memory_order_relaxed);
  // Cumulative serving counters: live shards plus retired (removed or
  // replaced) ones, so totals never go backwards across the lifecycle.
  // The walk retries when a retirement completed mid-walk — otherwise a
  // shard folded into retired_* after its slot was visited would be
  // counted twice, or one folded before the retired_* read but reset
  // before its slot's visit would be dropped.
  // Bounded retries: under sustained retirement churn the walk accepts
  // the last (at-most-one-retirement-skewed) snapshot instead of
  // spinning until the writers pause.
  const std::vector<DocSlot*> slots = SnapshotSlots();
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t epoch =
        state_->retire_epoch.load(std::memory_order_acquire);
    stats.documents = 0;
    stats.views = 0;
    stats.queries = state_->retired_queries.load(std::memory_order_relaxed);
    stats.hits = state_->retired_hits.load(std::memory_order_relaxed);
    stats.rewrite_unknown =
        state_->retired_rewrite_unknown.load(std::memory_order_relaxed);
    for (DocSlot* slot : slots) {
      ReaderLock stripe(slot->mu);
      if (slot->shard == nullptr) continue;
      ++stats.documents;
      stats.views +=
          static_cast<uint64_t>(slot->shard->cache.num_active_views());
      stats.queries += slot->shard->queries.load(std::memory_order_relaxed);
      stats.hits += slot->shard->hits.load(std::memory_order_relaxed);
      stats.rewrite_unknown +=
          slot->shard->rewrite_unknown.load(std::memory_order_relaxed);
    }
    if (state_->retire_epoch.load(std::memory_order_acquire) == epoch) break;
  }
  stats.oracle_hits = state_->oracle.hits();
  stats.oracle_misses = state_->oracle.misses();
  const AnswerCache::Stats memo = state_->answers.stats();
  stats.answer_cache_hits = memo.hits;
  stats.answer_cache_misses = memo.misses;
  stats.answer_cache_evictions = memo.evictions;
  stats.answer_cache_entries = state_->answers.size();
  stats.answer_cache_doorkeeper_rejects = memo.doorkeeper_rejects;
  stats.answer_cache_admission_drops = memo.admission_drops;
  stats.deadline_exceeded =
      state_->deadline_items.load(std::memory_order_relaxed);
  stats.cancelled = state_->cancelled_items.load(std::memory_order_relaxed);
  stats.overloaded = state_->overload_rejects.load(std::memory_order_relaxed);
  stats.internal_errors =
      state_->internal_errors.load(std::memory_order_relaxed);
  stats.inflight_calls = static_cast<uint64_t>(
      std::max(0, state_->inflight.load(std::memory_order_relaxed)));
  stats.memory_used_bytes = state_->budget.used();
  stats.memory_limit_bytes = state_->budget.limit();
  stats.memory_memo_shrinks =
      state_->memo_shrinks.load(std::memory_order_relaxed);
  stats.memory_oracle_shrinks =
      state_->oracle_shrinks.load(std::memory_order_relaxed);
  stats.memory_admission_pauses =
      state_->admission_pauses.load(std::memory_order_relaxed);
  stats.memory_admission_resumes =
      state_->admission_resumes.load(std::memory_order_relaxed);
  stats.updates_applied =
      state_->updates_applied.load(std::memory_order_relaxed);
  stats.update_views_patched =
      state_->update_views_patched.load(std::memory_order_relaxed);
  stats.update_views_rematerialized =
      state_->update_views_rematerialized.load(std::memory_order_relaxed);
  stats.update_views_untouched =
      state_->update_views_untouched.load(std::memory_order_relaxed);
  stats.update_fallbacks =
      state_->update_fallbacks.load(std::memory_order_relaxed);
  stats.update_memo_entries_preserved =
      state_->update_memo_entries_preserved.load(std::memory_order_relaxed);
  {
    MutexLock lock(state_->pool_mu);
    stats.pool_threads =
        state_->pool == nullptr
            ? 0
            : static_cast<uint64_t>(state_->pool->num_threads());
    stats.pool_queue_rejections =
        state_->pool == nullptr ? 0 : state_->pool->queue_rejections();
  }
  return stats;
}

const ContainmentOracle& Service::oracle() const {
  return state_->oracle.unsynchronized();
}

const ViewCache* Service::cache(DocumentId id) const {
  SharedAccess access = LockLiveShared(id);
  return access.shard == nullptr ? nullptr : &access.shard->cache;
}

const ThreadPool* Service::pool_for_testing() const {
  MutexLock lock(state_->pool_mu);
  return state_->pool.get();
}

const AnswerCache& Service::answer_cache() const { return state_->answers; }

}  // namespace xpv
