#include "api/service.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "pattern/xpath_parser.h"
#include "util/thread_pool.h"
#include "xml/xml_parser.h"

namespace xpv {
namespace {

ServiceError MakeError(ServiceErrorCode code, std::string message,
                       int64_t offset = -1) {
  return ServiceError{code, std::move(message), offset};
}

ServiceError XPathError(std::string_view what, std::string_view input,
                        const XPathParseError& error) {
  return MakeError(
      ServiceErrorCode::kParseError,
      std::string(what) + ": " + error.Format(input),
      static_cast<int64_t>(error.offset));
}

}  // namespace

const char* ToString(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kParseError:
      return "parse_error";
    case ServiceErrorCode::kUnknownDocument:
      return "unknown_document";
    case ServiceErrorCode::kDuplicateViewName:
      return "duplicate_view_name";
    case ServiceErrorCode::kEmptyPattern:
      return "empty_pattern";
  }
  return "unknown";
}

/// One served document. Heap-allocated so the `Tree` (whose address the
/// cache and its materialized views capture) and the cache stay put while
/// `shards_` grows.
struct Service::Shard {
  Shard(Tree tree_in, const RewriteOptions& options, ContainmentOracle* oracle)
      : tree(std::move(tree_in)), cache(tree, options, oracle) {}

  Tree tree;
  ViewCache cache;
  std::unordered_map<std::string, int32_t> view_index_by_name;
};

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      oracle_(std::make_unique<ContainmentOracle>(options_.oracle_capacity)) {
  // The shared oracle is the only one the caches ever see; a caller-set
  // rewrite.oracle would dangle across documents, so it is overwritten.
  options_.rewrite.oracle = oracle_.get();
}

Service::~Service() = default;
Service::Service(Service&&) noexcept = default;
Service& Service::operator=(Service&&) noexcept = default;

Service::Shard* Service::Find(DocumentId id) {
  if (id.value < 0 || id.value >= static_cast<int32_t>(shards_.size())) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(id.value)].get();
}

const Service::Shard* Service::Find(DocumentId id) const {
  return const_cast<Service*>(this)->Find(id);
}

ThreadPool* Service::EnsurePool(int workers) {
  if (workers <= 1) return nullptr;
  // Threads are an execution resource, not part of the answer: the shard
  // partition (and hence every answer) depends only on the caller's
  // num_workers, so the pool size is capped by the hardware instead of
  // trusting the request — a huge num_workers must not exhaust
  // std::thread and terminate the process.
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = std::max(4, static_cast<int>(hw));
  const int threads = std::min(workers, cap);
  if (pool_ == nullptr || pool_->num_threads() < threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

DocumentId Service::AddDocument(Tree document) {
  shards_.push_back(std::make_unique<Shard>(std::move(document),
                                            options_.rewrite, oracle_.get()));
  return DocumentId{static_cast<int32_t>(shards_.size()) - 1};
}

ServiceResult<DocumentId> Service::AddDocument(std::string_view xml) {
  Result<Tree> parsed = ParseXml(xml);
  if (!parsed.ok()) {
    ++failed_requests_;
    return ServiceResult<DocumentId>::Error(
        MakeError(ServiceErrorCode::kParseError, "document: " + parsed.error()));
  }
  return AddDocument(parsed.take());
}

const Tree* Service::document(DocumentId id) const {
  const Shard* shard = Find(id);
  return shard == nullptr ? nullptr : &shard->tree;
}

ServiceResult<ViewId> Service::AddView(DocumentId document, std::string name,
                                       Pattern pattern) {
  Shard* shard = Find(document);
  if (shard == nullptr) {
    ++failed_requests_;
    return ServiceResult<ViewId>::Error(
        MakeError(ServiceErrorCode::kUnknownDocument,
                  "unknown document id " + std::to_string(document.value)));
  }
  if (pattern.IsEmpty()) {
    ++failed_requests_;
    return ServiceResult<ViewId>::Error(
        MakeError(ServiceErrorCode::kEmptyPattern,
                  "view '" + name + "': the empty pattern selects nothing"));
  }
  if (shard->view_index_by_name.count(name) > 0) {
    ++failed_requests_;
    return ServiceResult<ViewId>::Error(
        MakeError(ServiceErrorCode::kDuplicateViewName,
                  "document already has a view named '" + name + "'"));
  }
  const int32_t index =
      shard->cache.AddView(ViewDefinition{name, std::move(pattern)});
  shard->view_index_by_name.emplace(std::move(name), index);
  return ViewId{document, index};
}

ServiceResult<ViewId> Service::AddView(DocumentId document, std::string name,
                                       std::string_view xpath) {
  Result<Pattern, XPathParseError> parsed = ParseXPathDetailed(xpath);
  if (!parsed.ok()) {
    ++failed_requests_;
    return ServiceResult<ViewId>::Error(
        XPathError("view '" + name + "'", xpath, parsed.error()));
  }
  return AddView(document, std::move(name), parsed.take());
}

int Service::num_views(DocumentId document) const {
  const Shard* shard = Find(document);
  return shard == nullptr
             ? 0
             : static_cast<int>(shard->cache.views().size());
}

const ViewDefinition* Service::view(ViewId id) const {
  const Shard* shard = Find(id.document);
  if (shard == nullptr || id.index < 0 ||
      id.index >= static_cast<int32_t>(shard->cache.views().size())) {
    return nullptr;
  }
  return &shard->cache.views()[static_cast<size_t>(id.index)].definition();
}

ServiceResult<xpv::Answer> Service::Answer(DocumentId document,
                                      const Query& query) {
  Shard* shard = Find(document);
  if (shard == nullptr) {
    ++failed_requests_;
    return ServiceResult<xpv::Answer>::Error(
        MakeError(ServiceErrorCode::kUnknownDocument,
                  "unknown document id " + std::to_string(document.value)));
  }
  if (query.holds_pattern()) {
    return shard->cache.Answer(query.pattern());
  }
  Result<Pattern, XPathParseError> parsed = ParseXPathDetailed(query.xpath());
  if (!parsed.ok()) {
    ++failed_requests_;
    return ServiceResult<xpv::Answer>::Error(
        XPathError("query", query.xpath(), parsed.error()));
  }
  return shard->cache.Answer(parsed.value());
}

ServiceResult<BatchAnswers> Service::AnswerBatch(
    const std::vector<BatchItem>& items, int num_workers) {
  const int workers =
      num_workers > 0 ? num_workers : std::max(options_.default_workers, 1);
  const size_t n = items.size();

  // Resolve every item up front: look the document up and parse XPath
  // queries. A failed item keeps its error and stays out of the batch;
  // everything else proceeds.
  struct Resolved {
    Shard* shard = nullptr;
    Pattern pattern = Pattern::Empty();
    std::optional<ServiceError> error;  // Set iff the item failed.
  };
  std::vector<Resolved> resolved(n);
  for (size_t i = 0; i < n; ++i) {
    Resolved& r = resolved[i];
    r.shard = Find(items[i].document);
    if (r.shard == nullptr) {
      ++failed_requests_;
      r.error = MakeError(
          ServiceErrorCode::kUnknownDocument,
          "unknown document id " + std::to_string(items[i].document.value));
      continue;
    }
    const Query& query = items[i].query;
    if (query.holds_pattern()) {
      r.pattern = query.pattern();
      continue;
    }
    Result<Pattern, XPathParseError> parsed =
        ParseXPathDetailed(query.xpath());
    if (!parsed.ok()) {
      ++failed_requests_;
      r.error = XPathError("query", query.xpath(), parsed.error());
      r.shard = nullptr;
      continue;
    }
    r.pattern = parsed.take();
  }

  // Group the live items per document shard (in request order — the order
  // a per-document `AnswerMany` loop would see) and run each document's
  // slice through the batched/parallel pipeline on the shared pool.
  std::vector<Shard*> shard_order;
  std::unordered_map<Shard*, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < n; ++i) {
    if (resolved[i].shard == nullptr) continue;
    auto [it, inserted] =
        by_shard.try_emplace(resolved[i].shard, std::vector<size_t>());
    if (inserted) shard_order.push_back(resolved[i].shard);
    it->second.push_back(i);
  }
  std::vector<std::optional<CacheAnswer>> answers(n);
  size_t live_items = 0;
  for (Shard* shard : shard_order) live_items += by_shard[shard].size();
  ThreadPool* pool =
      EnsurePool(std::min<int>(workers, static_cast<int>(live_items)));
  for (Shard* shard : shard_order) {
    const std::vector<size_t>& indices = by_shard[shard];
    std::vector<Pattern> queries;
    queries.reserve(indices.size());
    // The patterns are dead after this copy-out (only `error` is read
    // below), so move them instead of deep-copying.
    for (size_t i : indices) queries.push_back(std::move(resolved[i].pattern));
    std::vector<CacheAnswer> slice =
        shard->cache.AnswerMany(queries, workers, pool);
    for (size_t k = 0; k < indices.size(); ++k) {
      answers[indices[k]] = std::move(slice[k]);
    }
  }

  BatchAnswers out;
  out.answers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (resolved[i].error.has_value()) {
      out.answers.push_back(
          ServiceResult<xpv::Answer>::Error(std::move(*resolved[i].error)));
    } else {
      out.answers.push_back(std::move(*answers[i]));
    }
  }
  return out;
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.documents = shards_.size();
  stats.failed_requests = failed_requests_;
  for (const auto& shard : shards_) {
    stats.views += shard->cache.views().size();
    const CacheStats& cache_stats = shard->cache.stats();
    stats.queries += cache_stats.queries;
    stats.hits += cache_stats.hits;
    stats.rewrite_unknown += cache_stats.rewrite_unknown;
  }
  stats.oracle_hits = oracle_->hits();
  stats.oracle_misses = oracle_->misses();
  return stats;
}

const ViewCache* Service::cache(DocumentId id) const {
  const Shard* shard = Find(id);
  return shard == nullptr ? nullptr : &shard->cache;
}

}  // namespace xpv
