#include "xml/xml_writer.h"

#include <functional>

namespace xpv {

std::string WriteXml(const Tree& tree) {
  std::string out;
  std::function<void(NodeId, int)> write = [&](NodeId n, int indent) {
    out.append(static_cast<size_t>(indent) * 2, ' ');
    const std::string& name = LabelName(tree.label(n));
    if (tree.children(n).empty()) {
      out += "<" + name + "/>\n";
      return;
    }
    out += "<" + name + ">\n";
    for (NodeId c : tree.children(n)) write(c, indent + 1);
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += "</" + name + ">\n";
  };
  write(tree.root(), 0);
  return out;
}

}  // namespace xpv
