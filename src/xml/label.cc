#include "xml/label.h"

#include <cassert>

namespace xpv {

LabelStore::LabelStore() {
  // Reserve the distinguished symbols at fixed ids. Locked not for
  // exclusion (no other thread can see the object yet) but so the
  // guarded-field accesses stay inside the proven discipline.
  MutexLock lock(mu_);
  names_.push_back("*");
  index_.emplace("*", kWildcard);
  names_.push_back("#bot");
  index_.emplace("#bot", kBottom);
}

LabelId LabelStore::Intern(std::string_view name) {
  MutexLock lock(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

const std::string& LabelStore::Name(LabelId id) const {
  MutexLock lock(mu_);
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

LabelId LabelStore::Fresh(std::string_view hint) {
  MutexLock lock(mu_);
  std::string name;
  name.reserve(hint.size() + 24);
  name.push_back('#');
  name.append(hint);
  name.append(std::to_string(fresh_counter_++));
  // Fresh names cannot collide with user labels ('#' prefix) and the counter
  // makes them distinct from each other and from #bot.
  assert(index_.find(name) == index_.end());
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

bool LabelStore::IsSigma(LabelId id) const {
  MutexLock lock(mu_);
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  const std::string& n = names_[static_cast<size_t>(id)];
  return id != kWildcard && (n.empty() || n[0] != '#');
}

size_t LabelStore::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

LabelStore& Labels() {
  // Never-destroyed singleton (allowed pattern for non-trivial globals).
  static LabelStore* store = new LabelStore();
  return *store;
}

bool LabelGlb(LabelId a, LabelId b, LabelId* out) {
  if (a == b) {
    *out = a;
    return true;
  }
  if (a == LabelStore::kWildcard) {
    *out = b;
    return true;
  }
  if (b == LabelStore::kWildcard) {
    *out = a;
    return true;
  }
  return false;
}

}  // namespace xpv
