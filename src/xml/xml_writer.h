#ifndef XPV_XML_XML_WRITER_H_
#define XPV_XML_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace xpv {

/// Serializes `tree` as indented element-only XML. Inverse of `ParseXml` up
/// to whitespace (round trip preserves the labeled tree exactly).
std::string WriteXml(const Tree& tree);

}  // namespace xpv

#endif  // XPV_XML_XML_WRITER_H_
