#include "xml/tree.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace xpv {

Tree::Tree(LabelId root_label) {
  labels_.push_back(root_label);
  parents_.push_back(kNoNode);
  children_.emplace_back();
}

NodeId Tree::AddChild(NodeId parent, LabelId label) {
  assert(parent >= 0 && parent < size());
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  // Reuse a spare child list left behind by TruncateTo (it is empty but
  // keeps its heap buffer); only grow when none is banked.
  if (children_.size() < labels_.size()) children_.emplace_back();
  children_[static_cast<size_t>(parent)].push_back(id);
  return id;
}

void Tree::TruncateTo(int new_size) {
  assert(new_size >= 1 && new_size <= size());
  // Children lists hold ids in increasing order, so the node being removed
  // (largest remaining id) is always the last entry of its parent's list.
  for (NodeId n = size() - 1; n >= new_size; --n) {
    std::vector<NodeId>& siblings =
        children_[static_cast<size_t>(parents_[static_cast<size_t>(n)])];
    assert(!siblings.empty() && siblings.back() == n);
    siblings.pop_back();
  }
  labels_.resize(static_cast<size_t>(new_size));
  parents_.resize(static_cast<size_t>(new_size));
  // The removed nodes' child lists are banked, not destroyed: `clear()`
  // keeps each vector's buffer, and `AddChild` re-adopts the slots in
  // order. The canonical-model odometer truncates and regrows one tree
  // buffer thousands of times per containment call — without the bank,
  // every regrown node would re-malloc its (tiny) child list.
  for (size_t i = static_cast<size_t>(new_size); i < children_.size(); ++i) {
    children_[i].clear();
  }
}

int Tree::Depth(NodeId n) const {
  int depth = 0;
  for (NodeId cur = n; parents_[static_cast<size_t>(cur)] != kNoNode;
       cur = parents_[static_cast<size_t>(cur)]) {
    ++depth;
  }
  return depth;
}

bool Tree::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  for (NodeId cur = n; cur != kNoNode; cur = parents_[static_cast<size_t>(cur)]) {
    if (cur == anc) return true;
  }
  return false;
}

int Tree::SubtreeHeight(NodeId n) const {
  int best = 0;
  for (NodeId c : children(n)) best = std::max(best, 1 + SubtreeHeight(c));
  return best;
}

std::vector<NodeId> Tree::SubtreeNodes(NodeId n) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

Tree Tree::ExtractSubtree(NodeId n) const {
  Tree result(label(n));
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId dst) {
    for (NodeId c : children(src)) {
      NodeId nc = result.AddChild(dst, label(c));
      copy(c, nc);
    }
  };
  copy(n, result.root());
  return result;
}

NodeId Tree::GraftCopy(NodeId parent, const Tree& sub) {
  NodeId new_root = AddChild(parent, sub.label(sub.root()));
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId dst) {
    for (NodeId c : sub.children(src)) {
      NodeId nc = AddChild(dst, sub.label(c));
      copy(c, nc);
    }
  };
  copy(sub.root(), new_root);
  return new_root;
}

std::string Tree::CanonicalEncoding(NodeId n) const {
  std::vector<std::string> kids;
  kids.reserve(children(n).size());
  for (NodeId c : children(n)) kids.push_back(CanonicalEncoding(c));
  std::sort(kids.begin(), kids.end());
  std::string out;
  out.push_back('(');
  out.append(std::to_string(label(n)));
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

std::string Tree::ToAscii() const {
  std::string out;
  std::function<void(NodeId, std::string, bool)> render =
      [&](NodeId n, std::string prefix, bool last) {
        out += prefix;
        if (n != root()) out += last ? "`-" : "|-";
        out += LabelName(label(n));
        out += "\n";
        std::string child_prefix =
            prefix + (n == root() ? "" : (last ? "  " : "| "));
        const auto& kids = children(n);
        for (size_t i = 0; i < kids.size(); ++i) {
          render(kids[i], child_prefix, i + 1 == kids.size());
        }
      };
  render(root(), "", true);
  return out;
}

}  // namespace xpv
