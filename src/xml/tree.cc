#include "xml/tree.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "util/hash.h"

namespace xpv {

void DocumentDelta::InsertSubtree(NodeId parent, Tree sub) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kInsertSubtree;
  op.node = parent;
  op.subtree.emplace(std::move(sub));
  ops.push_back(std::move(op));
}

void DocumentDelta::DeleteSubtree(NodeId node) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kDeleteSubtree;
  op.node = node;
  ops.push_back(std::move(op));
}

void DocumentDelta::Relabel(NodeId node, LabelId label) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRelabel;
  op.node = node;
  op.label = label;
  ops.push_back(std::move(op));
}

Tree::Tree(LabelId root_label) {
  labels_.push_back(root_label);
  parents_.push_back(kNoNode);
  children_.emplace_back();
}

NodeId Tree::AddChild(NodeId parent, LabelId label) {
  assert(parent >= 0 && parent < size());
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  // Reuse a spare child list left behind by TruncateTo (it is empty but
  // keeps its heap buffer); only grow when none is banked.
  if (children_.size() < labels_.size()) children_.emplace_back();
  children_[static_cast<size_t>(parent)].push_back(id);
  return id;
}

void Tree::TruncateTo(int new_size) {
  assert(new_size >= 1 && new_size <= size());
  // Children lists hold ids in increasing order, so the node being removed
  // (largest remaining id) is always the last entry of its parent's list.
  for (NodeId n = size() - 1; n >= new_size; --n) {
    std::vector<NodeId>& siblings =
        children_[static_cast<size_t>(parents_[static_cast<size_t>(n)])];
    assert(!siblings.empty() && siblings.back() == n);
    siblings.pop_back();
  }
  labels_.resize(static_cast<size_t>(new_size));
  parents_.resize(static_cast<size_t>(new_size));
  // The removed nodes' child lists are banked, not destroyed: `clear()`
  // keeps each vector's buffer, and `AddChild` re-adopts the slots in
  // order. The canonical-model odometer truncates and regrows one tree
  // buffer thousands of times per containment call — without the bank,
  // every regrown node would re-malloc its (tiny) child list.
  for (size_t i = static_cast<size_t>(new_size); i < children_.size(); ++i) {
    children_[i].clear();
  }
}

int Tree::Depth(NodeId n) const {
  int depth = 0;
  for (NodeId cur = n; parents_[static_cast<size_t>(cur)] != kNoNode;
       cur = parents_[static_cast<size_t>(cur)]) {
    ++depth;
  }
  return depth;
}

bool Tree::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  for (NodeId cur = n; cur != kNoNode; cur = parents_[static_cast<size_t>(cur)]) {
    if (cur == anc) return true;
  }
  return false;
}

int Tree::SubtreeHeight(NodeId n) const {
  int best = 0;
  for (NodeId c : children(n)) best = std::max(best, 1 + SubtreeHeight(c));
  return best;
}

std::vector<NodeId> Tree::SubtreeNodes(NodeId n) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

Tree Tree::ExtractSubtree(NodeId n) const {
  Tree result(label(n));
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId dst) {
    for (NodeId c : children(src)) {
      NodeId nc = result.AddChild(dst, label(c));
      copy(c, nc);
    }
  };
  copy(n, result.root());
  return result;
}

NodeId Tree::GraftCopy(NodeId parent, const Tree& sub) {
  NodeId new_root = AddChild(parent, sub.label(sub.root()));
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId dst) {
    for (NodeId c : sub.children(src)) {
      NodeId nc = AddChild(dst, sub.label(c));
      copy(c, nc);
    }
  };
  copy(sub.root(), new_root);
  return new_root;
}

bool Tree::ValidateDelta(const DocumentDelta& delta, std::string* why) const {
  // Ids grow as ops insert; deletes never shrink the id space until the
  // whole delta is applied, so a running size bound is the whole check.
  NodeId cur_size = size();
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    const DeltaOp& op = delta.ops[i];
    const char* what = nullptr;
    switch (op.kind) {
      case DeltaOp::Kind::kInsertSubtree:
        if (!op.subtree.has_value()) {
          what = "insert op carries no subtree";
        } else if (op.node < 0 || op.node >= cur_size) {
          what = "insert parent out of range";
        } else {
          cur_size += op.subtree->size();
        }
        break;
      case DeltaOp::Kind::kDeleteSubtree:
        if (op.node < 0 || op.node >= cur_size) {
          what = "delete target out of range";
        } else if (op.node == root()) {
          what = "delta may not delete the root";
        }
        break;
      case DeltaOp::Kind::kRelabel:
        if (op.node < 0 || op.node >= cur_size) {
          what = "relabel target out of range";
        }
        break;
    }
    if (what != nullptr) {
      if (why != nullptr) {
        *why = std::string(what) + " (op " + std::to_string(i) + ")";
      }
      return false;
    }
  }
  return true;
}

TreeDeltaReport Tree::ApplyDelta(const DocumentDelta& delta) {
  assert(ValidateDelta(delta, nullptr));
  TreeDeltaReport report;
  report.old_size = size();
  report.min_affected_depth = std::numeric_limits<int32_t>::max();
  const NodeId old_size = size();

  // Phase 1: apply ops. Inserts append, deletes only MARK (ids stay stable
  // for the rest of the op list), relabels write in place. `structural`
  // collects the pre-compaction ids whose DP rows change directly (child
  // set changed or label changed).
  std::vector<uint8_t> marked(static_cast<size_t>(old_size), 0);
  std::vector<NodeId> structural;
  auto lowest_old_ancestor = [&](NodeId n) {
    while (n >= old_size) n = parent(n);
    return n;
  };
  int relabeled = 0;
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOp::Kind::kInsertSubtree: {
        GraftCopy(op.node, *op.subtree);
        marked.resize(labels_.size(), 0);
        for (NodeId n = static_cast<NodeId>(marked.size()) - op.subtree->size();
             n < size(); ++n) {
          report.label_bloom |= LabelBloomBit(label(n));
        }
        structural.push_back(op.node);
        report.min_affected_depth =
            std::min(report.min_affected_depth, Depth(op.node) + 1);
        report.splice_anchors_old.push_back(lowest_old_ancestor(op.node));
        break;
      }
      case DeltaOp::Kind::kDeleteSubtree: {
        marked[static_cast<size_t>(op.node)] = 1;
        structural.push_back(parent(op.node));
        report.min_affected_depth =
            std::min(report.min_affected_depth, Depth(op.node));
        report.splice_anchors_old.push_back(lowest_old_ancestor(op.node));
        break;
      }
      case DeltaOp::Kind::kRelabel: {
        report.label_bloom |= LabelBloomBit(label(op.node));
        report.label_bloom |= LabelBloomBit(op.label);
        set_label(op.node, op.label);
        structural.push_back(op.node);
        report.min_affected_depth =
            std::min(report.min_affected_depth, Depth(op.node));
        report.splice_anchors_old.push_back(lowest_old_ancestor(op.node));
        ++relabeled;
        break;
      }
    }
  }
  const NodeId pre_size = size();
  const int inserted = pre_size - old_size;

  // Phase 2: propagate deletion marks downward (parents have smaller ids,
  // so one ascending pass reaches every descendant — including nodes
  // inserted under a region a later op deleted).
  std::vector<uint8_t> dead = std::move(marked);
  int deleted = 0;
  bool any_dead = false;
  for (NodeId n = 1; n < pre_size; ++n) {
    dead[static_cast<size_t>(n)] =
        static_cast<uint8_t>(dead[static_cast<size_t>(n)] |
                             dead[static_cast<size_t>(parent(n))]);
    if (dead[static_cast<size_t>(n)]) {
      report.label_bloom |= LabelBloomBit(label(n));
      ++deleted;
      any_dead = true;
    }
  }
  report.compacted = any_dead;
  report.touched_nodes = inserted + deleted + relabeled;

  // Phase 3: the dirty prefix, collected in PRE-compaction id space while
  // the parent links still describe it — ancestor chains of every
  // structurally changed node, restricted to surviving pre-existing nodes
  // (inserted ones are the suffix and recomputed from scratch anyway).
  std::vector<NodeId> dirty_pre;
  for (NodeId a : structural) {
    for (NodeId x = a; x != kNoNode; x = parents_[static_cast<size_t>(x)]) {
      if (x < old_size && !dead[static_cast<size_t>(x)]) dirty_pre.push_back(x);
    }
  }

  // Phase 4: compact (order-preserving, so the topological invariant and
  // the survivors' relative order hold; inserted survivors land past every
  // pre-existing survivor because their pre-ids already did).
  if (any_dead) {
    report.remap.assign(static_cast<size_t>(pre_size), kNoNode);
    NodeId next = 0;
    for (NodeId n = 0; n < pre_size; ++n) {
      if (!dead[static_cast<size_t>(n)]) {
        report.remap[static_cast<size_t>(n)] = next++;
      }
      if (n == old_size - 1) report.suffix_start = next;
    }
    report.new_size = next;
    for (NodeId n = 0; n < pre_size; ++n) {
      const NodeId nn = report.remap[static_cast<size_t>(n)];
      if (nn == kNoNode) continue;
      labels_[static_cast<size_t>(nn)] = labels_[static_cast<size_t>(n)];
      const NodeId p = parents_[static_cast<size_t>(n)];
      parents_[static_cast<size_t>(nn)] =
          p == kNoNode ? kNoNode : report.remap[static_cast<size_t>(p)];
    }
    labels_.resize(static_cast<size_t>(report.new_size));
    parents_.resize(static_cast<size_t>(report.new_size));
    // Child lists are rebuilt wholesale; cleared tails stay banked for
    // AddChild, exactly like TruncateTo.
    for (std::vector<NodeId>& kids : children_) kids.clear();
    for (NodeId n = 1; n < report.new_size; ++n) {
      children_[static_cast<size_t>(parents_[static_cast<size_t>(n)])]
          .push_back(n);
    }
  } else {
    report.new_size = pre_size;
    report.suffix_start = old_size;
  }

  // Phase 5: map the dirty prefix to post-delta ids, deduplicate, and
  // order it the way `EvalScratch::Update` consumes (strictly decreasing).
  std::vector<NodeId>& dirty = report.dirty_prefix_desc;
  dirty.reserve(dirty_pre.size());
  for (NodeId x : dirty_pre) {
    dirty.push_back(report.compacted ? report.remap[static_cast<size_t>(x)]
                                     : x);
  }
  std::sort(dirty.begin(), dirty.end(), std::greater<NodeId>());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  std::sort(report.splice_anchors_old.begin(),
            report.splice_anchors_old.end());
  report.splice_anchors_old.erase(
      std::unique(report.splice_anchors_old.begin(),
                  report.splice_anchors_old.end()),
      report.splice_anchors_old.end());
  return report;
}

std::string Tree::CanonicalEncoding(NodeId n) const {
  std::vector<std::string> kids;
  kids.reserve(children(n).size());
  for (NodeId c : children(n)) kids.push_back(CanonicalEncoding(c));
  std::sort(kids.begin(), kids.end());
  std::string out;
  out.push_back('(');
  out.append(std::to_string(label(n)));
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

std::string Tree::ToAscii() const {
  std::string out;
  std::function<void(NodeId, std::string, bool)> render =
      [&](NodeId n, std::string prefix, bool last) {
        out += prefix;
        if (n != root()) out += last ? "`-" : "|-";
        out += LabelName(label(n));
        out += "\n";
        std::string child_prefix =
            prefix + (n == root() ? "" : (last ? "  " : "| "));
        const auto& kids = children(n);
        for (size_t i = 0; i < kids.size(); ++i) {
          render(kids[i], child_prefix, i + 1 == kids.size());
        }
      };
  render(root(), "", true);
  return out;
}

}  // namespace xpv
