#ifndef XPV_XML_TREE_H_
#define XPV_XML_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/label.h"

namespace xpv {

/// Dense node identifier within a Tree. The root is always node 0.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// A rooted, labeled, unordered tree representing an XML document
/// (Section 2.1 of the paper). Nodes live in a flat arena and are addressed
/// by `NodeId`; ids are assigned in creation order, and since children can
/// only be added to existing nodes, ids are topologically sorted (every
/// node's id is greater than its parent's). Many algorithms rely on this to
/// run bottom-up passes by iterating ids in reverse.
class Tree {
 public:
  /// Creates a tree with a single root node labeled `root_label`.
  explicit Tree(LabelId root_label);

  /// Adds a child labeled `label` under `parent` and returns its id.
  NodeId AddChild(NodeId parent, LabelId label);

  /// Number of nodes.
  int size() const { return static_cast<int>(labels_.size()); }

  NodeId root() const { return 0; }
  LabelId label(NodeId n) const { return labels_[static_cast<size_t>(n)]; }
  NodeId parent(NodeId n) const { return parents_[static_cast<size_t>(n)]; }
  const std::vector<NodeId>& children(NodeId n) const {
    return children_[static_cast<size_t>(n)];
  }

  /// Replaces the label of `n`.
  void set_label(NodeId n, LabelId label) {
    labels_[static_cast<size_t>(n)] = label;
  }

  /// Depth of `n` (number of edges from the root; the root has depth 0).
  int Depth(NodeId n) const;

  /// True if `anc` is an ancestor of `n` (every node is its own ancestor).
  bool IsAncestorOrSelf(NodeId anc, NodeId n) const;

  /// Height of the subtree rooted at `n`: the maximal number of edges on a
  /// path from `n` to a leaf below it.
  int SubtreeHeight(NodeId n) const;

  /// Ids of all nodes in the subtree rooted at `n`, in preorder.
  std::vector<NodeId> SubtreeNodes(NodeId n) const;

  /// Removes every node with id >= `new_size`, keeping the first
  /// `new_size` nodes (ids are topologically sorted, so the remainder is a
  /// valid tree). Requires 1 <= new_size <= size(). Together with
  /// `AddChild` this lets one tree buffer be reused across the
  /// canonical-model enumeration: consecutive models share a prefix of
  /// node ids, so only the changed suffix is rebuilt.
  void TruncateTo(int new_size);

  /// Deep-copies the subtree rooted at `n` into a standalone tree.
  Tree ExtractSubtree(NodeId n) const;

  /// Grafts a deep copy of `sub` (whole tree) as a new child of `parent`.
  /// Returns the id of the copied root.
  NodeId GraftCopy(NodeId parent, const Tree& sub);

  /// A canonical textual encoding of the subtree rooted at `n`, invariant
  /// under reordering of siblings. Two subtrees are isomorphic (as unordered
  /// labeled trees) iff their encodings are equal.
  std::string CanonicalEncoding(NodeId n) const;

  /// Multi-line ASCII rendering, for debugging and the example binaries.
  std::string ToAscii() const;

 private:
  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace xpv

#endif  // XPV_XML_TREE_H_
