#ifndef XPV_XML_TREE_H_
#define XPV_XML_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/hash.h"
#include "xml/label.h"

namespace xpv {

/// Dense node identifier within a Tree. The root is always node 0.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

class Tree;
struct DocumentDelta;

/// One label's bit position in the 64-bit label Bloom filters that
/// `TreeDeltaReport::label_bloom` and the per-view pattern summaries
/// share — both sides must hash identically for the disjointness test.
inline uint64_t LabelBloomBit(LabelId label) {
  return uint64_t{1} << (Mix64(static_cast<uint64_t>(label)) & 63u);
}

/// What `Tree::ApplyDelta` changed — everything the incremental layers
/// above (evaluator row reuse, per-view dirtiness, memo invalidation) need
/// to know about the delta, computed in one pass while applying it.
struct TreeDeltaReport {
  int old_size = 0;  ///< Node count before the delta.
  int new_size = 0;  ///< Node count after the delta.

  /// True iff the delta deleted at least one node, forcing id compaction:
  /// every surviving node's id may have changed (per `remap`). When false,
  /// ids of pre-existing nodes are untouched and `remap` is empty.
  bool compacted = false;

  /// Only when `compacted`: pre-compaction id -> post-compaction id
  /// (`kNoNode` for deleted nodes). Indexed over the pre-compaction id
  /// space `[0, old_size + inserted)`; order-preserving, so surviving
  /// pre-existing nodes keep their relative order and occupy
  /// `[0, suffix_start)` while surviving inserted nodes form the tail.
  std::vector<NodeId> remap;

  /// First post-delta id of a node inserted by this delta: every id >=
  /// `suffix_start` is newly inserted (and needs its DP rows computed from
  /// scratch); every id below it is a surviving pre-existing node.
  NodeId suffix_start = 0;

  /// Surviving pre-existing nodes (post-delta ids, all < `suffix_start`)
  /// whose bit-parallel DP rows must be recomputed: relabeled nodes, nodes
  /// whose child set changed, and all their ancestors — strictly
  /// decreasing, the order `EvalScratch::Update` consumes.
  std::vector<NodeId> dirty_prefix_desc;

  /// Pre-delta ids of the nodes whose subtree CONTENT changed (insert
  /// parents, delete parents, relabeled nodes), each mapped to its lowest
  /// pre-existing ancestor. A materialized view's stored answer region is
  /// affected iff one of its output nodes is an ancestor-or-self of one of
  /// these — the per-view region-dirtiness test.
  std::vector<NodeId> splice_anchors_old;

  /// Minimum tree depth at which the delta can change any embedding: the
  /// shallowest relabel/delete depth, or insert-parent depth + 1. A view
  /// whose pattern has no descendant edge and whose deepest node sits
  /// above this cannot be affected. INT32_MAX for an empty delta.
  int min_affected_depth = 0;

  /// 64-bit Bloom filter over every label the delta touched: labels of
  /// inserted and deleted nodes, and both the old and new label of each
  /// relabel. A view whose pattern has no wildcard and whose label Bloom
  /// is disjoint from this cannot be affected.
  uint64_t label_bloom = 0;

  /// Inserted + deleted + relabeled node count — the dirty-region size the
  /// facade's fallback threshold compares against `new_size`.
  int touched_nodes = 0;
};

/// A rooted, labeled, unordered tree representing an XML document
/// (Section 2.1 of the paper). Nodes live in a flat arena and are addressed
/// by `NodeId`; ids are assigned in creation order, and since children can
/// only be added to existing nodes, ids are topologically sorted (every
/// node's id is greater than its parent's). Many algorithms rely on this to
/// run bottom-up passes by iterating ids in reverse.
class Tree {
 public:
  /// Creates a tree with a single root node labeled `root_label`.
  explicit Tree(LabelId root_label);

  /// Adds a child labeled `label` under `parent` and returns its id.
  NodeId AddChild(NodeId parent, LabelId label);

  /// Number of nodes.
  int size() const { return static_cast<int>(labels_.size()); }

  NodeId root() const { return 0; }
  LabelId label(NodeId n) const { return labels_[static_cast<size_t>(n)]; }
  NodeId parent(NodeId n) const { return parents_[static_cast<size_t>(n)]; }
  const std::vector<NodeId>& children(NodeId n) const {
    return children_[static_cast<size_t>(n)];
  }

  /// Replaces the label of `n`.
  void set_label(NodeId n, LabelId label) {
    labels_[static_cast<size_t>(n)] = label;
  }

  /// Depth of `n` (number of edges from the root; the root has depth 0).
  int Depth(NodeId n) const;

  /// True if `anc` is an ancestor of `n` (every node is its own ancestor).
  [[nodiscard]] bool IsAncestorOrSelf(NodeId anc, NodeId n) const;

  /// Height of the subtree rooted at `n`: the maximal number of edges on a
  /// path from `n` to a leaf below it.
  int SubtreeHeight(NodeId n) const;

  /// Ids of all nodes in the subtree rooted at `n`, in preorder.
  std::vector<NodeId> SubtreeNodes(NodeId n) const;

  /// Removes every node with id >= `new_size`, keeping the first
  /// `new_size` nodes (ids are topologically sorted, so the remainder is a
  /// valid tree). Requires 1 <= new_size <= size(). Together with
  /// `AddChild` this lets one tree buffer be reused across the
  /// canonical-model enumeration: consecutive models share a prefix of
  /// node ids, so only the changed suffix is rebuilt.
  void TruncateTo(int new_size);

  /// Deep-copies the subtree rooted at `n` into a standalone tree.
  [[nodiscard]] Tree ExtractSubtree(NodeId n) const;

  /// Grafts a deep copy of `sub` (whole tree) as a new child of `parent`.
  /// Returns the id of the copied root.
  NodeId GraftCopy(NodeId parent, const Tree& sub);

  /// Checks that `delta` is applicable to this tree without mutating it:
  /// every op must name a node inside the (evolving) id space and no
  /// delete may remove the root. On failure returns false and, when `why`
  /// is non-null, describes the first offending op.
  [[nodiscard]] bool ValidateDelta(const DocumentDelta& delta,
                                   std::string* why) const;

  /// Applies `delta` in place and reports the affected region. Requires
  /// `ValidateDelta(delta)`. Inserts append ids, deletes mark and then
  /// compact once at the end (preserving the relative order of survivors,
  /// so the topological id invariant holds throughout); when nothing is
  /// deleted, every pre-existing node keeps its id.
  [[nodiscard]] TreeDeltaReport ApplyDelta(const DocumentDelta& delta);

  /// A canonical textual encoding of the subtree rooted at `n`, invariant
  /// under reordering of siblings. Two subtrees are isomorphic (as unordered
  /// labeled trees) iff their encodings are equal.
  [[nodiscard]] std::string CanonicalEncoding(NodeId n) const;

  /// Multi-line ASCII rendering, for debugging and the example binaries.
  std::string ToAscii() const;

 private:
  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
};

/// One primitive mutation of a `DocumentDelta`: a subtree insert, a
/// subtree delete, or a node relabel.
struct DeltaOp {
  enum class Kind : uint8_t { kInsertSubtree, kDeleteSubtree, kRelabel };

  Kind kind = Kind::kRelabel;
  /// Insert: the parent the subtree is grafted under. Delete: the root of
  /// the removed subtree. Relabel: the node whose label changes.
  NodeId node = 0;
  LabelId label = 0;            ///< Relabel only: the new label.
  std::optional<Tree> subtree;  ///< Insert only: the grafted subtree.
};

/// An ordered list of subtree inserts, subtree deletes and node relabels —
/// the unit of change `Service::UpdateDocument` applies.
///
/// Ops are interpreted in order, and node ids refer to the tree as produced
/// by the preceding ops: inserted nodes get fresh ids appended past the
/// current size (`GraftCopy` order), and deletions do NOT renumber anything
/// until the whole delta has been applied — so an op may reference nodes a
/// previous op of the same delta inserted, and ids named by later ops stay
/// stable across earlier deletes. Deleting an already-deleted node is a
/// no-op; inserting under a deleted node inserts nodes that die with it.
struct DocumentDelta {
  std::vector<DeltaOp> ops;

  void InsertSubtree(NodeId parent, Tree sub);
  void DeleteSubtree(NodeId node);
  void Relabel(NodeId node, LabelId label);
  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
};

}  // namespace xpv

#endif  // XPV_XML_TREE_H_
