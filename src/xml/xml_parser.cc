#include "xml/xml_parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace xpv {
namespace {

/// Hand-rolled single-pass scanner over the input buffer. Keeps a cursor and
/// 1-based line tracking for error messages.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }

  char Take() {
    char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void Skip(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Take();
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Take();
  }

  /// Advances past the first occurrence of `terminator`. Returns false if the
  /// input ends first.
  bool SkipPast(std::string_view terminator) {
    while (!AtEnd()) {
      if (PeekIs(terminator)) {
        Skip(terminator.size());
        return true;
      }
      Take();
    }
    return false;
  }

  std::string TakeName() {
    std::string name;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ':') {
        name.push_back(Take());
      } else {
        break;
      }
    }
    return name;
  }

  int line() const { return line_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

std::string ErrorAt(const Scanner& s, const std::string& message) {
  return "XML parse error (line " + std::to_string(s.line()) + "): " + message;
}

/// Skips attributes up to (but not including) '>' or '/>'. Returns an error
/// message on malformed input, std::nullopt on success.
std::optional<std::string> SkipAttributes(Scanner& s) {
  while (true) {
    s.SkipWhitespace();
    if (s.AtEnd()) return "unterminated start tag";
    char c = s.Peek();
    if (c == '>' || c == '/') return std::nullopt;
    std::string attr = s.TakeName();
    if (attr.empty()) return "malformed attribute name";
    s.SkipWhitespace();
    if (s.AtEnd() || s.Peek() != '=') return "expected '=' after attribute";
    s.Take();
    s.SkipWhitespace();
    if (s.AtEnd() || (s.Peek() != '"' && s.Peek() != '\'')) {
      return "expected quoted attribute value";
    }
    char quote = s.Take();
    while (!s.AtEnd() && s.Peek() != quote) s.Take();
    if (s.AtEnd()) return "unterminated attribute value";
    s.Take();  // Closing quote.
  }
}

}  // namespace

Result<Tree> ParseXml(std::string_view input) {
  Scanner s(input);
  std::optional<Tree> tree;
  // Stack of open element node ids; empty before the root opens and after it
  // closes.
  std::vector<NodeId> open;
  std::vector<std::string> open_names;
  bool root_closed = false;

  while (true) {
    // Skip text content and whitespace between tags.
    while (!s.AtEnd() && s.Peek() != '<') {
      if (!std::isspace(static_cast<unsigned char>(s.Peek())) && open.empty()) {
        return Result<Tree>::Error(
            ErrorAt(s, "text content outside the root element"));
      }
      s.Take();
    }
    if (s.AtEnd()) break;

    if (s.PeekIs("<!--")) {
      if (!s.SkipPast("-->")) {
        return Result<Tree>::Error(ErrorAt(s, "unterminated comment"));
      }
      continue;
    }
    if (s.PeekIs("<?")) {
      if (!s.SkipPast("?>")) {
        return Result<Tree>::Error(
            ErrorAt(s, "unterminated processing instruction"));
      }
      continue;
    }
    if (s.PeekIs("<!")) {  // DOCTYPE or other declaration: skip to '>'.
      if (!s.SkipPast(">")) {
        return Result<Tree>::Error(ErrorAt(s, "unterminated declaration"));
      }
      continue;
    }

    if (s.PeekIs("</")) {
      s.Skip(2);
      std::string name = s.TakeName();
      s.SkipWhitespace();
      if (s.AtEnd() || s.Peek() != '>') {
        return Result<Tree>::Error(ErrorAt(s, "malformed end tag"));
      }
      s.Take();
      if (open.empty()) {
        return Result<Tree>::Error(
            ErrorAt(s, "end tag </" + name + "> with no open element"));
      }
      if (open_names.back() != name) {
        return Result<Tree>::Error(
            ErrorAt(s, "mismatched end tag </" + name + ">, expected </" +
                           open_names.back() + ">"));
      }
      open.pop_back();
      open_names.pop_back();
      if (open.empty()) root_closed = true;
      continue;
    }

    // Start tag.
    s.Take();  // '<'
    std::string name = s.TakeName();
    if (name.empty()) {
      return Result<Tree>::Error(ErrorAt(s, "malformed start tag"));
    }
    if (name[0] == '#') {
      return Result<Tree>::Error(
          ErrorAt(s, "tag names starting with '#' are reserved"));
    }
    if (auto err = SkipAttributes(s)) {
      return Result<Tree>::Error(ErrorAt(s, *err));
    }
    bool self_closing = false;
    if (s.Peek() == '/') {
      s.Take();
      self_closing = true;
    }
    if (s.AtEnd() || s.Peek() != '>') {
      return Result<Tree>::Error(ErrorAt(s, "expected '>' to close tag"));
    }
    s.Take();

    if (root_closed) {
      return Result<Tree>::Error(
          ErrorAt(s, "multiple root elements (second is <" + name + ">)"));
    }
    NodeId node;
    if (!tree.has_value()) {
      tree.emplace(L(name));
      node = tree->root();
    } else {
      if (open.empty()) {
        return Result<Tree>::Error(
            ErrorAt(s, "multiple root elements (second is <" + name + ">)"));
      }
      node = tree->AddChild(open.back(), L(name));
    }
    if (!self_closing) {
      open.push_back(node);
      open_names.push_back(name);
    } else if (node == tree->root()) {
      root_closed = true;
    }
  }

  if (!tree.has_value()) {
    return Result<Tree>::Error("XML parse error: no root element");
  }
  if (!open.empty()) {
    return Result<Tree>::Error("XML parse error: unclosed element <" +
                               open_names.back() + ">");
  }
  return *std::move(tree);
}

}  // namespace xpv
