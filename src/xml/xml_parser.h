#ifndef XPV_XML_XML_PARSER_H_
#define XPV_XML_XML_PARSER_H_

#include <string_view>

#include "util/result.h"
#include "xml/tree.h"

namespace xpv {

/// Parses a subset of XML into a `Tree`.
///
/// The paper's data model is element-only labeled trees, so this parser keeps
/// exactly the element structure and discards everything else:
///   * elements: `<a>...</a>` and `<a/>`; tag names become node labels;
///   * attributes are parsed for well-formedness and discarded;
///   * text content, comments (`<!-- -->`), processing instructions
///     (`<? ?>`), a leading XML declaration, and DOCTYPE lines are skipped;
///   * exactly one root element is required.
///
/// Tag names must not start with '#' (that prefix is reserved for the
/// library's internal labels) and must not be `*`.
[[nodiscard]] Result<Tree> ParseXml(std::string_view input);

}  // namespace xpv

#endif  // XPV_XML_XML_PARSER_H_
