#ifndef XPV_XML_LABEL_H_
#define XPV_XML_LABEL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/sync.h"

namespace xpv {

/// Dense identifier for an interned label. Labels come from the infinite
/// alphabet Σ of the paper, plus the reserved wildcard symbol `*` (which is
/// not in Σ) and internal symbols used by the algorithms (the special label
/// ⊥ of canonical models, fresh labels for counterexample paths, and fresh
/// µ labels for the extension technique of Section 5.3).
using LabelId = int32_t;

/// Process-wide label interner.
///
/// A single global store keeps label handling out of every API signature;
/// patterns and trees carry `LabelId`s only. Access it through `Labels()`.
/// All methods are thread-safe.
///
/// Naming convention: user-visible labels (Σ) must not start with '#'.
/// Internal labels produced by `Fresh()` and the reserved ⊥ all start with
/// '#', so the algorithms' assumption "⊥ and fresh labels do not occur in
/// the patterns at hand" is enforced syntactically.
class LabelStore {
 public:
  /// The id of the wildcard symbol `*`. Always 0.
  static constexpr LabelId kWildcard = 0;
  /// The id of the special label ⊥ used by canonical models. Always 1.
  static constexpr LabelId kBottom = 1;

  LabelStore();

  LabelStore(const LabelStore&) = delete;
  LabelStore& operator=(const LabelStore&) = delete;

  /// Interns `name` and returns its id. Idempotent.
  LabelId Intern(std::string_view name);

  /// Returns the spelling of `id`.
  const std::string& Name(LabelId id) const;

  /// Returns a brand-new label guaranteed distinct from every label interned
  /// so far. `hint` is embedded in the spelling for readability.
  LabelId Fresh(std::string_view hint);

  /// True if `id` denotes a symbol of Σ (not the wildcard, not internal).
  bool IsSigma(LabelId id) const;

  /// Number of labels interned so far.
  size_t size() const;

 private:
  mutable Mutex mu_;
  // A deque so references returned by `Name()` stay valid while other
  // threads intern: growth never moves existing elements, which the
  // parallel answering path relies on (workers may `Fresh()` µ-labels
  // while peers format explanations through `LabelName`).
  std::deque<std::string> names_ XPV_GUARDED_BY(mu_);
  std::unordered_map<std::string, LabelId> index_ XPV_GUARDED_BY(mu_);
  int64_t fresh_counter_ XPV_GUARDED_BY(mu_) = 0;
};

/// Returns the process-wide label store.
LabelStore& Labels();

/// Convenience: interns `name` in the global store.
inline LabelId L(std::string_view name) { return Labels().Intern(name); }

/// Convenience: the spelling of `id` in the global store.
inline const std::string& LabelName(LabelId id) { return Labels().Name(id); }

/// Greatest lower bound of two labels (Section 2.3 of the paper):
/// glb(l,l) = glb(l,*) = glb(*,l) = l for l in Σ ∪ {*}; for distinct
/// Σ-labels the glb is the inconsistent symbol ⊤, represented here by
/// returning false. On success, `*out` receives the glb.
bool LabelGlb(LabelId a, LabelId b, LabelId* out);

}  // namespace xpv

#endif  // XPV_XML_LABEL_H_
