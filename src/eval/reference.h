#ifndef XPV_EVAL_REFERENCE_H_
#define XPV_EVAL_REFERENCE_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// Naive reference implementations, retained verbatim from the pre-kernel
/// code: byte-per-cell DP tables, per-child witness scans, one full
/// evaluation per canonical model. They exist so the randomized property
/// tests can check the bit-parallel kernel, the incremental canonical-model
/// loop and the scratch-reuse paths against an independent oracle — do not
/// use them on hot paths.
namespace reference {

/// P(t), computed with the naive evaluator.
std::vector<NodeId> Eval(const Pattern& p, const Tree& t);

/// P^w(t), computed with the naive evaluator.
std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t);

/// o ∈ P(t) / o ∈ P^w(t), via full naive evaluation.
bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o);
bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o);

/// Pattern homomorphism existence, naive quadratic DP.
bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to);

/// P1 ⊑ P2 by enumerating every canonical model from scratch (no
/// homomorphism fast path, no incremental reuse).
bool Contained(const Pattern& p1, const Pattern& p2);

/// P1 ⊑w P2, same technique with weak-output checks.
bool WeaklyContained(const Pattern& p1, const Pattern& p2);

}  // namespace reference
}  // namespace xpv

#endif  // XPV_EVAL_REFERENCE_H_
