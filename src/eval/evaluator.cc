#include "eval/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pattern/properties.h"

namespace xpv {

void EvalScratch::BuildPatternMasks(const Pattern& p) {
  const int np = p.size();
  words_ = BitWordsFor(np);
  need_child_.Reset(np, np);
  need_desc_.Reset(np, np);
  if (static_cast<int>(wildcard_mask_.size()) < words_) {
    wildcard_mask_.resize(static_cast<size_t>(words_));
    has_req_mask_.resize(static_cast<size_t>(words_));
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  ZeroRow(wildcard_mask_.data(), words_);
  ZeroRow(has_req_mask_.data(), words_);

  mask_labels_.clear();
  for (NodeId q = 0; q < np; ++q) {
    if (!p.children(q).empty()) SetBit(has_req_mask_.data(), q);
    for (NodeId c : p.children(q)) {
      if (p.edge(c) == EdgeType::kChild) {
        need_child_.Set(q, c);
      } else {
        need_desc_.Set(q, c);
      }
    }
    const LabelId l = p.label(q);
    if (l != LabelStore::kWildcard &&
        std::find(mask_labels_.begin(), mask_labels_.end(), l) ==
            mask_labels_.end()) {
      mask_labels_.push_back(l);
    }
  }

  // Candidate row per distinct pattern label: wildcard nodes match any tree
  // label, exact nodes match their own.
  label_masks_.Reset(static_cast<int>(mask_labels_.size()), np);
  for (NodeId q = 0; q < np; ++q) {
    const LabelId l = p.label(q);
    if (l == LabelStore::kWildcard) {
      SetBit(wildcard_mask_.data(), q);
    } else {
      const auto it = std::find(mask_labels_.begin(), mask_labels_.end(), l);
      label_masks_.Set(static_cast<int>(it - mask_labels_.begin()), q);
    }
  }
  for (int i = 0; i < label_masks_.rows(); ++i) {
    OrRow(label_masks_.row(i), wildcard_mask_.data(), words_);
  }
}

void EvalScratch::ComputeRow(NodeId v) {
  const Tree& t = *tree_;
  // Word-parallel child-witness join: one OR per tree child accumulates,
  // for every pattern node at once, whether its subtree embeds at a child
  // (child_or) or anywhere strictly below v (sub_or).
  ZeroRow(child_or_.data(), words_);
  ZeroRow(sub_or_.data(), words_);
  for (NodeId w : t.children(v)) {
    OrRow(child_or_.data(), down_.row(w), words_);
    OrRow(sub_or_.data(), sub_.row(w), words_);
  }

  // Candidates by label, then per candidate two subset tests replace the
  // per-child scan of the naive kernel.
  BitWord* down_row = down_.row(v);
  const LabelId tl = t.label(v);
  const auto it = std::find(mask_labels_.begin(), mask_labels_.end(), tl);
  if (it == mask_labels_.end()) {
    std::copy(wildcard_mask_.data(), wildcard_mask_.data() + words_, down_row);
  } else {
    const BitWord* cand =
        label_masks_.row(static_cast<int>(it - mask_labels_.begin()));
    std::copy(cand, cand + words_, down_row);
  }
  for (int wi = 0; wi < words_; ++wi) {
    // Leaf pattern nodes have no witness requirements — only candidates
    // with children need the subset tests.
    BitWord pending = down_row[wi] & has_req_mask_[static_cast<size_t>(wi)];
    while (pending != 0) {
      const int b = std::countr_zero(pending);
      pending &= pending - 1;
      const NodeId q = static_cast<NodeId>(wi * kBitWordBits + b);
      if (!ContainsAllBits(child_or_.data(), need_child_.row(q), words_) ||
          !ContainsAllBits(sub_or_.data(), need_desc_.row(q), words_)) {
        down_row[wi] &= ~(BitWord{1} << b);
      }
    }
  }

  BitWord* sub_row = sub_.row(v);
  for (int wi = 0; wi < words_; ++wi) {
    sub_row[wi] = down_row[wi] | sub_or_[wi];
  }
}

void EvalScratch::Compute(const Pattern& p, const Tree& t,
                          int row_capacity_hint) {
  assert(!p.IsEmpty());
  pattern_ = &p;
  tree_ = &t;
  BuildPatternMasks(p);
  const int rows = std::max(t.size(), row_capacity_hint);
  down_.Reset(rows, p.size());
  sub_.Reset(rows, p.size());
  // Tree ids are topologically sorted; reverse order visits children first.
  for (NodeId v = t.size() - 1; v >= 0; --v) ComputeRow(v);
}

void EvalScratch::Update(const Tree& t, NodeId suffix_start,
                         const std::vector<NodeId>& dirty_prefix_desc) {
  assert(pattern_ != nullptr);
  tree_ = &t;
  if (t.size() > down_.rows()) {
    // Grow preserving the prefix rows (suffix rows are rewritten below).
    const int np = pattern_->size();
    BitMatrix grown;
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(down_.row(v), down_.row(v) + words_, grown.row(v));
    }
    std::swap(down_, grown);
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(sub_.row(v), sub_.row(v) + words_, grown.row(v));
    }
    std::swap(sub_, grown);
  }
  for (NodeId v = t.size() - 1; v >= suffix_start; --v) ComputeRow(v);
  for (NodeId v : dirty_prefix_desc) {
    assert(v < suffix_start);
    ComputeRow(v);
  }
}

Evaluator::Evaluator(const Pattern& p, const Tree& t)
    : pattern_(p), tree_(t) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  selection_path_ = info.path();
  scratch_.Compute(p, t);
}

std::vector<NodeId> Evaluator::RunSelectionSweep(
    std::vector<char> current) const {
  const size_t nt = static_cast<size_t>(tree_.size());
  for (size_t k = 1; k < selection_path_.size(); ++k) {
    NodeId sk = selection_path_[k];
    std::vector<char> next(nt, 0);
    if (pattern_.edge(sk) == EdgeType::kChild) {
      for (NodeId v = 1; v < tree_.size(); ++v) {
        if (current[static_cast<size_t>(tree_.parent(v))] != 0 &&
            scratch_.Down(v, sk)) {
          next[static_cast<size_t>(v)] = 1;
        }
      }
    } else {
      // reach[v] = some proper ancestor of v is in `current`.
      std::vector<char> reach(nt, 0);
      for (NodeId v = 1; v < tree_.size(); ++v) {
        NodeId par = tree_.parent(v);
        reach[static_cast<size_t>(v)] =
            (current[static_cast<size_t>(par)] != 0 ||
             reach[static_cast<size_t>(par)] != 0)
                ? 1
                : 0;
        if (reach[static_cast<size_t>(v)] != 0 && scratch_.Down(v, sk)) {
          next[static_cast<size_t>(v)] = 1;
        }
      }
    }
    current.swap(next);
  }
  std::vector<NodeId> outputs;
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (current[static_cast<size_t>(v)] != 0) outputs.push_back(v);
  }
  return outputs;
}

std::vector<NodeId> Evaluator::OutputsAnchoredAt(NodeId anchor) const {
  std::vector<char> initial(static_cast<size_t>(tree_.size()), 0);
  if (CanEmbedAt(selection_path_[0], anchor)) {
    initial[static_cast<size_t>(anchor)] = 1;
  }
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Evaluator::WeakOutputs() const {
  const size_t nt = static_cast<size_t>(tree_.size());
  NodeId s0 = selection_path_[0];
  std::vector<char> initial(nt, 0);
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (scratch_.Down(v, s0)) initial[static_cast<size_t>(v)] = 1;
  }
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Eval(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).Outputs();
}

std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).WeakOutputs();
}

bool IsModel(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return false;
  return !Eval(p, t).empty();
}

bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = Eval(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = EvalWeak(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

}  // namespace xpv
